// Package shangrila is a from-scratch Go reproduction of "Shangri-La:
// Achieving High Performance from Compiled Network Applications while
// Enabling Ease of Programming" (Chen et al., PLDI 2005): the Baker
// packet-processing language, the aggressively optimizing compiler
// (profiling, aggregation, PAC, SOAR, PHR, delayed-update software
// caching, dual-bank register allocation, stack layout), a thin runtime
// system, and a behavioral model of the Intel IXP2400 network processor
// that the compiled code executes on.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The root bench_test.go regenerates every table and figure of the
// paper's evaluation; cmd/shangrila-bench does the same from the command
// line.
package shangrila
