// L3-Switch example: compile the paper's flagship benchmark at two
// optimization levels, compare forwarding rates, and demonstrate the
// delayed-update software cache: a route change pushed through the
// control plane mid-run takes effect with bounded staleness while the
// data path keeps forwarding at full rate.
package main

import (
	"fmt"
	"log"

	"shangrila/internal/apps"
	"shangrila/internal/driver"
	"shangrila/internal/harness"
	"shangrila/internal/rts"
)

func main() {
	app := apps.L3Switch()

	fmt.Println("=== compiling L3-Switch at BASE and +SWC ===")
	for _, lvl := range []driver.Level{driver.LevelBase, driver.LevelSWC} {
		r, err := harness.Run(app,
			harness.WithLevel(lvl),
			harness.WithMEs(6),
			harness.WithWindows(100_000, 500_000),
			harness.WithSeed(7),
			harness.WithTrace(384),
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6v %5.2f Gbps  %4.1f mem accesses/packet  code %v\n",
			lvl, r.Gbps, r.Total(), r.CodeSizes)
	}

	fmt.Println("\n=== live route update through the control plane ===")
	res, err := harness.Compile(app, driver.LevelSWC, 7)
	if err != nil {
		log.Fatal(err)
	}
	trc := app.Trace(res.Prog.Types, 8, 256)
	rt, err := rts.New(res.Image, res.Prog, trc, rts.Options{NumMEs: 4})
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range app.Controls {
		if err := rt.Control(c.Name, c.Args...); err != nil {
			log.Fatal(err)
		}
	}
	// Schedule a route change at cycle 200k: 10.1/16 moves to next hop 42.
	// The XScale writes the table's home location in SRAM and raises the
	// update flag; each ME's software cache picks the change up at its
	// next delayed-update check (§5.2, Figure 8).
	rt.ControlAt(200_000, "l3switch.add_route", 0x0a010000, 16, 42)
	rt.ControlAt(200_000, "l3switch.add_neighbor", 42, 0x0bb0, 0x11000042, 1)
	if err := rt.Run(400_000); err != nil {
		log.Fatal(err)
	}
	st := rt.M.Snapshot()
	fmt.Printf("forwarded %d packets at %.2f Gbps across the update\n",
		st.TxPackets, st.Gbps(rt.M.Cfg.ClockMHz))
	fmt.Println("(delivery during the staleness window used the old next hop —")
	fmt.Println(" the bounded error §5.2 trades for coherence traffic)")
}
