// Quickstart: write a tiny Baker packet program, compile it through the
// whole Shangri-La pipeline, and run it both functionally (host
// interpreter) and on the IXP2400 model.
package main

import (
	"fmt"
	"log"

	"shangrila/internal/driver"
	"shangrila/internal/packet"
	"shangrila/internal/profiler"
	"shangrila/internal/rts"
	"shangrila/internal/trace"
)

// A minimal "port mirror with TTL guard": IPv4 packets with a live TTL
// are forwarded with the TTL decremented, everything else is dropped.
const src = `
protocol ether { dst_hi:16; dst_lo:32; src_hi:16; src_lo:32; type:16; demux { 14 }; }
protocol ipv4  { ver:4; hlen:4; tos:8; length:16; id:16; flags:3; frag:13;
                 ttl:8; proto:8; cksum:16; srcip:32; dstip:32; demux { hlen << 2 }; }
metadata { rx_port:8; }
const ETH_IP = 0x0800;

module mirror {
    uint forwarded;
    uint dropped;
    channel out : ether;

    ppf guard(ether ph) {
        if (ph->type == ETH_IP) {
            ipv4 iph = packet_decap(ph);
            uint ttl = iph->ttl;
            if (ttl > 1) {
                iph->ttl = ttl - 1;
                forwarded += 1;
                ether eph = packet_encap(iph);
                channel_put(out, eph);
            } else {
                dropped += 1;
                packet_drop(iph);
            }
        } else {
            dropped += 1;
            packet_drop(ph);
        }
    }

    wiring { rx -> guard; out -> tx; }
}
`

func main() {
	// 1. Lower the source so we can build a packet trace against its
	// protocol declarations.
	prog, err := driver.LowerSource("mirror.baker", src)
	if err != nil {
		log.Fatal(err)
	}
	tp := prog.Types
	mkPacket := func(ttl uint32) *packet.Packet {
		p, err := trace.Build([]trace.Layer{
			{Proto: tp.Protocols["ether"], Fields: map[string]uint32{"type": 0x0800}},
			{Proto: tp.Protocols["ipv4"], Fields: map[string]uint32{
				"ver": 4, "hlen": 5, "ttl": ttl, "dstip": 0x0a000001}, Size: 20},
		}, 64, tp.Metadata.Bytes)
		if err != nil {
			log.Fatal(err)
		}
		return p
	}
	var profTrace []*packet.Packet
	for i := 0; i < 64; i++ {
		profTrace = append(profTrace, mkPacket(uint32(1+i%8)))
	}

	// 2. Run it functionally first: the host interpreter is the same
	// engine the compiler's Functional profiler uses.
	session, err := profiler.NewSession(prog)
	if err != nil {
		log.Fatal(err)
	}
	if err := session.Inject(mkPacket(9)); err != nil {
		log.Fatal(err)
	}
	if err := session.Inject(mkPacket(1)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("functional run: %d forwarded, %d dropped\n",
		session.Stats.Forwarded, session.Stats.Dropped)

	// 3. Compile at full optimization. (Each compilation consumes the
	// program, so lower a fresh copy.)
	prog2, _ := driver.LowerSource("mirror.baker", src)
	res, err := driver.CompileIR(prog2, driver.Config{
		Level:        driver.LevelSWC,
		ProfileTrace: profTrace,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d ME aggregate(s), %d instructions\n",
		len(res.Image.MECode), len(res.Image.MECode[0].Program.Code))

	// 4. Run the compiled binary on the IXP2400 model with 4 MEs.
	var runTrace []*packet.Packet
	for i := 0; i < 128; i++ {
		runTrace = append(runTrace, mkPacket(uint32(1+i%8)))
	}
	rt, err := rts.New(res.Image, res.Prog, runTrace, rts.Options{NumMEs: 4, CaptureLimit: 4})
	if err != nil {
		log.Fatal(err)
	}
	if err := rt.Run(500_000); err != nil {
		log.Fatal(err)
	}
	st := rt.M.Snapshot()
	fmt.Printf("simulated:  %.2f Gbps, %d forwarded, %d dropped (ttl<=1)\n",
		st.Gbps(rt.M.Cfg.ClockMHz), st.TxPackets, st.FreedPackets)
	if len(rt.TxCapture) > 0 {
		fmt.Printf("first transmitted frame (%dB): % x...\n",
			len(rt.TxCapture[0].Frame), rt.TxCapture[0].Frame[:24])
	}
}
