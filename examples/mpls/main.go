// MPLS example: run the label-switching benchmark functionally and
// inspect its label operations — swaps, pops (including multi-label
// stacks that loop back through the pop channel), pushes and edge
// imposition — then measure it on the IXP model. The unbounded label
// stack is the paper's Figure 9 case: the IPv4 payload's offset cannot be
// resolved statically, which is exactly what SOAR's ⊥offset lattice value
// models.
package main

import (
	"fmt"
	"log"

	"shangrila/internal/apps"
	"shangrila/internal/baker/parser"
	"shangrila/internal/baker/types"
	"shangrila/internal/driver"
	"shangrila/internal/harness"
	"shangrila/internal/lower"
	"shangrila/internal/profiler"
)

func main() {
	app := apps.MPLS()

	// Functional pass: count label operations over a trace.
	astProg, err := parser.Parse("mpls.baker", app.Source)
	if err != nil {
		log.Fatal(err)
	}
	tp, err := types.Check(astProg)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := lower.Lower(tp)
	if err != nil {
		log.Fatal(err)
	}
	s, err := profiler.NewSession(prog)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range app.Controls {
		if err := s.Control(c.Name, c.Args...); err != nil {
			log.Fatal(err)
		}
	}
	for _, p := range app.Trace(tp, 99, 500) {
		if err := s.Inject(p); err != nil {
			log.Fatal(err)
		}
	}
	read := func(name string) uint32 {
		v, err := s.ReadGlobalWord("mplsapp."+name, 0)
		if err != nil {
			log.Fatal(err)
		}
		return v
	}
	fmt.Println("=== label operations over 500 packets ===")
	fmt.Printf("swapped %d   popped %d   pushed %d   imposed (LER) %d\n",
		read("swapped"), read("popped"), read("pushed"), read("imposed"))
	fmt.Printf("forwarded %d, dropped %d\n", s.Stats.Forwarded, s.Stats.Dropped)

	// Grown frames show label pushes on the wire.
	grown := 0
	for _, o := range s.Out {
		if len(o.P.Bytes())-o.Head > 64 {
			grown++
		}
	}
	fmt.Printf("%d frames left larger than they arrived (pushed labels)\n\n", grown)

	// Compiled run across optimization levels.
	fmt.Println("=== forwarding rate on the IXP2400 model (6 MEs) ===")
	for _, lvl := range []driver.Level{driver.LevelBase, driver.LevelPAC, driver.LevelSWC} {
		res, err := harness.Compile(app, lvl, 7)
		if err != nil {
			log.Fatal(err)
		}
		r, err := harness.Run(app,
			harness.WithCompiled(res),
			harness.WithMEs(6),
			harness.WithWindows(100_000, 500_000),
			harness.WithSeed(7),
			harness.WithTrace(384))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6v %5.2f Gbps (%4.1f accesses/packet)\n", lvl, r.Gbps, r.Total())
	}
}
