// Firewall example: exercise the ordered-rule classifier — allowed flows,
// policy denies, default deny — and show a live rule being installed
// through the control plane while traffic flows on the IXP model.
package main

import (
	"fmt"
	"log"

	"shangrila/internal/apps"
	"shangrila/internal/baker/parser"
	"shangrila/internal/baker/types"
	"shangrila/internal/driver"
	"shangrila/internal/harness"
	"shangrila/internal/lower"
	"shangrila/internal/profiler"
	"shangrila/internal/trace"
)

func main() {
	app := apps.Firewall()

	astProg, err := parser.Parse("firewall.baker", app.Source)
	if err != nil {
		log.Fatal(err)
	}
	tp, err := types.Check(astProg)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := lower.Lower(tp)
	if err != nil {
		log.Fatal(err)
	}
	s, err := profiler.NewSession(prog)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range app.Controls {
		if err := s.Control(c.Name, c.Args...); err != nil {
			log.Fatal(err)
		}
	}

	// Hand-crafted probes against the installed policy.
	probe := func(label string, src, dst, sport, dport, proto uint32) {
		p, err := trace.Build([]trace.Layer{
			{Proto: tp.Protocols["ether"], Fields: map[string]uint32{"type": 0x0800}},
			{Proto: tp.Protocols["ipv4tcp"], Fields: map[string]uint32{
				"ver": 4, "hlen": 5, "ttl": 33, "proto": proto,
				"src": src, "dst": dst, "sport": sport, "dport": dport}},
		}, 64, tp.Metadata.Bytes)
		if err != nil {
			log.Fatal(err)
		}
		before := s.Stats.Forwarded
		if err := s.Inject(p); err != nil {
			log.Fatal(err)
		}
		verdict := "DENIED"
		if s.Stats.Forwarded > before {
			verdict = "allowed"
		}
		fmt.Printf("%-34s -> %s\n", label, verdict)
	}
	fmt.Println("=== policy probes ===")
	probe("10.1.2.3:5000 -> web 192.168.1.1:80", 0x0a010203, 0xc0a80101, 5000, 80, 6)
	probe("10.1.2.3:5000 -> telnet x.x:23", 0x0a010203, 0xdeadbeef, 5000, 23, 6)
	probe("blacklisted 49.51.0.9 -> any:8080", 0x31330009, 0x01020304, 40000, 8080, 6)
	probe("unmatched 127.0.0.1 SCTP", 0x7f000001, 0x7f000001, 7, 7, 132)
	probe("10.9.9.9:9999 -> DNS 8.8.8.8:53", 0x0a090909, 0x08080808, 9999, 53, 17)

	// Live policy change: open TCP/8080 to a server, then re-probe.
	fmt.Println("\n=== installing a new allow rule at runtime ===")
	if err := s.Control("firewall.add_rule",
		6, 0, 0, 0xc0a80150, 0xffffffff, 0, 65535, 8080, 8080, 6, 1, 2); err != nil {
		log.Fatal(err)
	}
	probe("anyone -> 192.168.1.80:8080", 0x22334455, 0xc0a80150, 777, 8080, 6)

	// Compiled run.
	fmt.Println("\n=== forwarding rate on the IXP2400 model (6 MEs) ===")
	res, err := harness.Compile(app, driver.LevelSWC, 7)
	if err != nil {
		log.Fatal(err)
	}
	r, err := harness.Run(app,
		harness.WithCompiled(res),
		harness.WithMEs(6),
		harness.WithWindows(100_000, 500_000),
		harness.WithSeed(7),
		harness.WithTrace(384))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("+SWC: %.2f Gbps, %.1f memory accesses/packet\n", r.Gbps, r.Total())
}
