// Command shangrila-bench regenerates the paper's evaluation through the
// experiment registry: every experiment (Figure 6's memory
// micro-benchmark, Table 1's per-packet access counts, the Figures 13-15
// forwarding-rate sweeps, load–latency curves, control-plane churn
// timelines, the multi-NPU cluster scaling/drain scenarios, and the
// compiler-fuzzing campaign of seeded random Baker programs checked
// against the host reference interpreter) self-registers with its name,
// synopsis and private flags, and the CLI generates its usage text and
// -experiment value set from the registry — run `shangrila-bench -h` for
// the authoritative list. Unknown experiment names are rejected with the
// valid set and a nonzero exit.
//
// Every run prints the resolved traffic/generator seed so any result —
// including a fuzz divergence — can be replayed exactly with -seed (or
// -fuzz-seed for a campaign's generator range).
//
// Sweep points fan out across worker goroutines and every measurement —
// forwarding rates, per-packet accesses, telemetry, compile pass timings,
// latency histograms, cluster topologies, fuzz campaign statistics —
// lands in one machine-readable JSON report (schema shangrila-bench/v6).
//
// With -stalls every sweep point carries a conservative per-ME stall
// breakdown (stall_breakdown in the report); -trace additionally runs one
// representative point (the first app at -O) and writes it as Chrome
// trace_event JSON — sweep points themselves run concurrently and are
// never traced.
//
// With -engine parallel every measured machine runs on the sharded
// simulation engine (-shards worker goroutines per point); with -engine
// compiled it runs staged-compilation dispatch, where predecoded runs
// execute as specialized native closures (optionally sharded with
// -shards). Results are bit-identical to the serial default, and the
// report records the engine and shard count per point.
//
// -cpuprofile/-memprofile profile the benchmark process itself (for
// `go tool pprof`), covering compilation and every sweep worker — the
// host-side cost, as opposed to the simulated-cycle attribution of
// -stalls/-trace.
package main

import (
	"flag"
	"fmt"
	"os"

	"shangrila/internal/apps"
	"shangrila/internal/harness"
)

func main() {
	registry := harness.Experiments()
	common := harness.RegisterCommonFlags(flag.CommandLine)
	exp := flag.String("experiment", "all",
		"experiments to run, comma-separated: "+registry.UsageSpec())
	quick := flag.Bool("quick", false, "shorter measurement windows (noisier)")
	report := flag.String("report", "bench_report.json", "machine-readable report path (empty disables)")
	workers := flag.Int("workers", 0, "sweep worker goroutines (0 = GOMAXPROCS)")
	stalls := flag.Bool("stalls", false, "attach per-ME stall breakdowns to every sweep point")
	tracePath := flag.String("trace", "", "write one representative traced run as Chrome trace_event JSON")
	prof := harness.RegisterProfileFlags(flag.CommandLine)
	expFlags := registry.BindFlags(flag.CommandLine)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: shangrila-bench [-experiment %s] [flags]\n\nexperiments:\n%s\nflags:\n",
			registry.UsageSpec(), registry.Synopses())
		flag.PrintDefaults()
	}
	flag.Parse()

	selected, err := registry.Select(*exp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shangrila-bench: %v\n", err)
		os.Exit(2)
	}
	if err := prof.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "shangrila-bench: %v\n", err)
		os.Exit(1)
	}

	cfg := harness.DefaultRunConfig()
	cfg.Seed = common.Seed
	figWarm, figMeas := int64(60_000), int64(400_000)
	loads := harness.DefaultLoads()
	if *quick {
		cfg.Warmup, cfg.Measure = 60_000, 250_000
		figWarm, figMeas = 30_000, 150_000
		loads = []float64{0.5, 1.5, 3}
	}
	opts, err := common.Options()
	if err != nil {
		fmt.Fprintf(os.Stderr, "shangrila-bench: %v\n", err)
		os.Exit(2)
	}
	opts = append(opts,
		harness.WithTelemetry(0),
		harness.WithWorkers(*workers),
	)
	if *stalls {
		opts = append(opts, harness.WithStallBreakdown())
	}

	ctx := &harness.ExpContext{
		Out:     os.Stdout,
		Quick:   *quick,
		Common:  common,
		Opts:    opts,
		Cfg:     cfg,
		FigWarm: figWarm,
		FigMeas: figMeas,
		Loads:   loads,
		Report:  harness.NewReportBuilder(),
	}
	fmt.Printf("seed %d (replay with -seed %d)\n", common.Seed, common.Seed)
	// An experiment failure (e.g. a diverging fuzz campaign) must not lose
	// the report: whatever sections were built — including the failing
	// campaign's minimized reproducers — are still written before exiting
	// nonzero, so CI can archive the evidence.
	var expErr error
	for _, e := range selected {
		ctx.Report.RecordExperiment(e.Name)
		if err := e.Run(ctx, expFlags[e.Name]); err != nil {
			fmt.Fprintf(os.Stderr, "shangrila-bench: %s: %v\n", e.Name, err)
			expErr = err
			break
		}
	}

	if *tracePath != "" && expErr == nil {
		// Sweep points run concurrently and never stream Chrome traces
		// (one JSON document per writer), so trace one representative
		// point — the first app at the requested -O level — with a
		// dedicated Run.
		lvl, err := common.DriverLevel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "shangrila-bench: trace: %v\n", err)
			os.Exit(2)
		}
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "shangrila-bench: trace: %v\n", err)
			os.Exit(1)
		}
		app := apps.All()[0]
		tOpts := append(append([]harness.Option{}, opts...),
			harness.WithLevel(lvl),
			harness.WithWindows(cfg.Warmup, cfg.Measure),
			harness.WithStallBreakdown(),
			harness.WithChromeTrace(f))
		if _, err := harness.Run(app, tOpts...); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "shangrila-bench: trace: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "shangrila-bench: trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (Chrome trace_event JSON, %s at %v)\n", *tracePath, app.Name, lvl)
	}

	if *report != "" && !ctx.Report.Empty() {
		f, err := os.Create(*report)
		if err != nil {
			fmt.Fprintf(os.Stderr, "shangrila-bench: report: %v\n", err)
			os.Exit(1)
		}
		rep := ctx.Report.Report()
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "shangrila-bench: report: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "shangrila-bench: report: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (seed %d; %d sweep points, %d load curves, %d churn timelines, %d cluster runs, %d fuzz campaigns)\n",
			*report, common.Seed, len(rep.Points), len(rep.LoadLatency), len(rep.Churn), len(rep.Cluster), len(rep.Fuzz))
	}
	if err := prof.Stop(); err != nil {
		fmt.Fprintf(os.Stderr, "shangrila-bench: %v\n", err)
		os.Exit(1)
	}
	if expErr != nil {
		os.Exit(1)
	}
}
