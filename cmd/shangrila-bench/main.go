// Command shangrila-bench regenerates the paper's evaluation: Figure 6
// (memory micro-benchmark), Table 1 (per-packet dynamic memory accesses)
// and Figures 13-15 (forwarding rate vs enabled MEs per optimization
// level for L3-Switch, Firewall and MPLS). Sweep points fan out across
// worker goroutines and every point's measurement — forwarding rate,
// per-packet accesses, simulator telemetry, compile pass timings — is
// written to a machine-readable JSON report.
//
// Usage:
//
//	shangrila-bench [-exp all|fig6|table1|fig13|fig14|fig15] [-quick]
//	                [-report bench_report.json] [-workers N]
//	                [-dump-ir pass|all] [-dump-ir-dir dir] [-verify-ir]
package main

import (
	"flag"
	"fmt"
	"os"

	"shangrila/internal/apps"
	"shangrila/internal/driver"
	"shangrila/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all|fig6|table1|fig13|fig14|fig15")
	quick := flag.Bool("quick", false, "shorter measurement windows (noisier)")
	seed := flag.Uint64("seed", 1234, "traffic seed")
	report := flag.String("report", "bench_report.json", "machine-readable report path (empty disables)")
	workers := flag.Int("workers", 0, "sweep worker goroutines (0 = GOMAXPROCS)")
	dumpIR := flag.String("dump-ir", "", "dump IR after the named compiler pass (or \"all\")")
	dumpDir := flag.String("dump-ir-dir", "", "write IR dumps to this directory instead of stdout")
	verifyIR := flag.Bool("verify-ir", false, "run the IR verifier after every compiler pass")
	flag.Parse()

	cfg := harness.DefaultRunConfig()
	cfg.Seed = *seed
	figWarm, figMeas := int64(60_000), int64(400_000)
	if *quick {
		cfg.Warmup, cfg.Measure = 60_000, 250_000
		figWarm, figMeas = 30_000, 150_000
	}
	opts := []harness.Option{
		harness.WithTelemetry(0),
		harness.WithWorkers(*workers),
	}
	if *dumpIR != "" || *dumpDir != "" {
		pass := *dumpIR
		if pass == "" {
			pass = "all"
		}
		opts = append(opts, harness.WithDumpIR(pass, *dumpDir))
	}
	if *verifyIR {
		opts = append(opts, harness.WithVerifyIR(driver.VerifyOn))
	}

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "shangrila-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	var all []*harness.Result
	run("fig6", func() error {
		pts, err := harness.Figure6(figWarm, figMeas)
		if err != nil {
			return err
		}
		fmt.Println(harness.FormatFigure6(pts))
		return nil
	})
	run("table1", func() error {
		rows, err := harness.Table1(cfg, opts...)
		if err != nil {
			return err
		}
		fmt.Println("Table 1 — dynamic memory accesses per packet")
		fmt.Println(harness.FormatTable1(rows))
		all = append(all, rows...)
		return nil
	})
	figs := []struct {
		name  string
		app   func() *apps.App
		title string
	}{
		{"fig13", apps.L3Switch, "Figure 13: L3-Switch"},
		{"fig14", apps.Firewall, "Figure 14: Firewall"},
		{"fig15", apps.MPLS, "Figure 15: MPLS"},
	}
	for _, f := range figs {
		f := f
		run(f.name, func() error {
			series, results, err := harness.FigureResults(f.app(), cfg, 6, opts...)
			if err != nil {
				return err
			}
			fmt.Println(harness.FormatFigure(f.title, series))
			all = append(all, results...)
			return nil
		})
	}

	if *report != "" && len(all) > 0 {
		f, err := os.Create(*report)
		if err != nil {
			fmt.Fprintf(os.Stderr, "shangrila-bench: report: %v\n", err)
			os.Exit(1)
		}
		if err := harness.BuildReport(all).WriteJSON(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "shangrila-bench: report: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "shangrila-bench: report: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d sweep points)\n", *report, len(all))
	}
}
