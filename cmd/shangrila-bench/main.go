// Command shangrila-bench regenerates the paper's evaluation: Figure 6
// (memory micro-benchmark), Table 1 (per-packet dynamic memory accesses)
// and Figures 13-15 (forwarding rate vs enabled MEs per optimization
// level for L3-Switch, Firewall and MPLS), plus load–latency curves from
// the open-loop workload engine (the Figure 9 discussion). Sweep points
// fan out across worker goroutines and every point's measurement —
// forwarding rate, per-packet accesses, simulator telemetry, compile pass
// timings, latency histograms — is written to a machine-readable JSON
// report.
//
// With -stalls every sweep point carries a conservative per-ME stall
// breakdown (stall_breakdown in the report); -trace additionally runs one
// representative point (the first app at -O) and writes it as Chrome
// trace_event JSON — sweep points themselves run concurrently and are
// never traced.
//
// With -engine parallel every measured machine runs on the sharded
// simulation engine (-shards worker goroutines per point; results are
// bit-identical to the serial default, and the report records the engine
// and shard count per point).
//
// Usage:
//
//	shangrila-bench [-experiment all|fig6|table1|fig13|fig14|fig15|loadlatency|churn]
//	                [-quick] [-report bench_report.json] [-workers N]
//	                [-O level] [-seed n]
//	                [-engine serial|parallel] [-shards n]
//	                [-stalls] [-trace trace.json]
//	                [-cpuprofile cpu.pb] [-memprofile mem.pb]
//	                [-arrival fixed|poisson|onoff] [-sizes 64|imix|trimodal]
//	                [-flows n] [-zipf s]
//	                [-churn-rate u/s] [-churn-burst n] [-churn-arrival fixed|poisson]
//	                [-swc-check-limit n]
//	                [-dump-ir pass|all] [-dump-ir-dir dir] [-verify-ir]
//
// -cpuprofile/-memprofile profile the benchmark process itself (for
// `go tool pprof`), covering compilation and every sweep worker — the
// host-side cost, as opposed to the simulated-cycle attribution of
// -stalls/-trace.
package main

import (
	"flag"
	"fmt"
	"os"

	"shangrila/internal/apps"
	"shangrila/internal/driver"
	"shangrila/internal/harness"
)

func main() {
	common := harness.RegisterCommonFlags(flag.CommandLine)
	exp := flag.String("experiment", "all", "experiment: all|fig6|table1|fig13|fig14|fig15|loadlatency|churn")
	quick := flag.Bool("quick", false, "shorter measurement windows (noisier)")
	report := flag.String("report", "bench_report.json", "machine-readable report path (empty disables)")
	workers := flag.Int("workers", 0, "sweep worker goroutines (0 = GOMAXPROCS)")
	stalls := flag.Bool("stalls", false, "attach per-ME stall breakdowns to every sweep point")
	tracePath := flag.String("trace", "", "write one representative traced run as Chrome trace_event JSON")
	prof := harness.RegisterProfileFlags(flag.CommandLine)
	flag.Parse()
	if err := prof.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "shangrila-bench: %v\n", err)
		os.Exit(1)
	}

	cfg := harness.DefaultRunConfig()
	cfg.Seed = common.Seed
	figWarm, figMeas := int64(60_000), int64(400_000)
	loads := harness.DefaultLoads()
	if *quick {
		cfg.Warmup, cfg.Measure = 60_000, 250_000
		figWarm, figMeas = 30_000, 150_000
		loads = []float64{0.5, 1.5, 3}
	}
	opts, err := common.Options()
	if err != nil {
		fmt.Fprintf(os.Stderr, "shangrila-bench: %v\n", err)
		os.Exit(2)
	}
	opts = append(opts,
		harness.WithTelemetry(0),
		harness.WithWorkers(*workers),
	)
	if *stalls {
		opts = append(opts, harness.WithStallBreakdown())
	}

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "shangrila-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	var all []*harness.Result
	var curves []*harness.LoadCurve
	var churn []*harness.ChurnResult
	run("fig6", func() error {
		pts, err := harness.Figure6(figWarm, figMeas)
		if err != nil {
			return err
		}
		fmt.Println(harness.FormatFigure6(pts))
		return nil
	})
	run("table1", func() error {
		rows, err := harness.Table1(cfg, opts...)
		if err != nil {
			return err
		}
		fmt.Println("Table 1 — dynamic memory accesses per packet")
		fmt.Println(harness.FormatTable1(rows))
		all = append(all, rows...)
		return nil
	})
	figs := []struct {
		name  string
		app   func() *apps.App
		title string
	}{
		{"fig13", apps.L3Switch, "Figure 13: L3-Switch"},
		{"fig14", apps.Firewall, "Figure 14: Firewall"},
		{"fig15", apps.MPLS, "Figure 15: MPLS"},
	}
	for _, f := range figs {
		f := f
		run(f.name, func() error {
			series, results, err := harness.FigureResults(f.app(), cfg, 6, opts...)
			if err != nil {
				return err
			}
			fmt.Println(harness.FormatFigure(f.title, series))
			all = append(all, results...)
			return nil
		})
	}
	run("loadlatency", func() error {
		lvl, err := common.DriverLevel()
		if err != nil {
			return err
		}
		shape, err := common.TrafficShape()
		if err != nil {
			return err
		}
		// BASE is the contrast curve; -O picks the optimized one.
		levels := []driver.Level{driver.LevelBase}
		if lvl != driver.LevelBase {
			levels = append(levels, lvl)
		}
		llOpts := append(append([]harness.Option{}, opts...),
			harness.WithWindows(cfg.Warmup, cfg.Measure),
			harness.WithWorkload(shape))
		curves, err = harness.LoadLatency(apps.All(), levels, loads, llOpts...)
		if err != nil {
			return err
		}
		fmt.Println("Load–latency curves (offered load sweep, Figure 9 shape)")
		fmt.Println(harness.FormatLoadLatency(curves))
		return nil
	})

	run("churn", func() error {
		lvl, err := common.DriverLevel()
		if err != nil {
			return err
		}
		chOpts := append(append([]harness.Option{}, opts...),
			harness.WithLevel(lvl),
			harness.WithWindows(figWarm, figMeas))
		churn, err = harness.ChurnExperiment(apps.All(), chOpts...)
		if err != nil {
			return err
		}
		fmt.Println("Control-plane churn — goodput/latency under update storms")
		fmt.Println(harness.FormatChurn(churn))
		return nil
	})

	if *tracePath != "" {
		// Sweep points run concurrently and never stream Chrome traces
		// (one JSON document per writer), so trace one representative
		// point — the first app at the requested -O level — with a
		// dedicated Run.
		lvl, err := common.DriverLevel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "shangrila-bench: trace: %v\n", err)
			os.Exit(2)
		}
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "shangrila-bench: trace: %v\n", err)
			os.Exit(1)
		}
		app := apps.All()[0]
		tOpts := append(append([]harness.Option{}, opts...),
			harness.WithLevel(lvl),
			harness.WithWindows(cfg.Warmup, cfg.Measure),
			harness.WithStallBreakdown(),
			harness.WithChromeTrace(f))
		if _, err := harness.Run(app, tOpts...); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "shangrila-bench: trace: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "shangrila-bench: trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (Chrome trace_event JSON, %s at %v)\n", *tracePath, app.Name, lvl)
	}

	if *report != "" && (len(all) > 0 || len(curves) > 0 || len(churn) > 0) {
		f, err := os.Create(*report)
		if err != nil {
			fmt.Fprintf(os.Stderr, "shangrila-bench: report: %v\n", err)
			os.Exit(1)
		}
		rep := harness.BuildReport(all)
		rep.LoadLatency = curves
		rep.Churn = churn
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "shangrila-bench: report: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "shangrila-bench: report: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d sweep points, %d load curves, %d churn timelines)\n",
			*report, len(all), len(curves), len(churn))
	}
	if err := prof.Stop(); err != nil {
		fmt.Fprintf(os.Stderr, "shangrila-bench: %v\n", err)
		os.Exit(1)
	}
}
