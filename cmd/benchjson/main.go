// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document. `make bench` pipes the simulator
// benchmark suite through it to produce BENCH_sim.json, which CI uploads
// as an artifact so per-commit ns/op and allocs/op are comparable across
// runs without rerunning anything.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line. NsPerOp, BytesPerOp and
// AllocsPerOp mirror testing.BenchmarkResult; Metrics carries custom
// units reported via b.ReportMetric (e.g. simcycles/s, Gbps@…).
type Benchmark struct {
	Name        string             `json:"name"`
	Package     string             `json:"package,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
	// Engine and Shards are parsed from engine-variant sub-benchmark
	// names ("…/serial", "…/parallel-shards=4", "…/compiled",
	// "…/compiled-shards=4") so simulator numbers from different engines
	// are never compared as one series. Chips is parsed from cluster
	// sub-benchmarks ("…/chips=4") — the multi-NPU line-card size, a
	// different series per chip count.
	Engine string `json:"engine,omitempty"`
	Shards int    `json:"shards,omitempty"`
	Chips  int    `json:"chips,omitempty"`
	// GOMAXPROCS is the per-benchmark parallelism testing encodes in the
	// name suffix ("BenchmarkFoo-8"); NumCPU is the host's logical CPU
	// count. Recorded per entry so a number measured on a loaded 4-core
	// runner is never compared against a 32-core one as the same series.
	GOMAXPROCS int `json:"gomaxprocs,omitempty"`
	NumCPU     int `json:"num_cpu,omitempty"`
}

// Report is the whole document.
type Report struct {
	Date       string      `json:"date"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	rep := Report{
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line, pkg); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseLine parses one result line: name, iteration count, then
// value/unit pairs ("12345 ns/op", "0 allocs/op", "3.000 Gbps@dram8Bx2").
func parseLine(line, pkg string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	// Strip the GOMAXPROCS suffix testing appends ("BenchmarkFoo-8"),
	// keeping its value: it is the parallelism the benchmark ran at.
	name := f[0]
	procs := runtime.GOMAXPROCS(0)
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if n, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
			procs = n
		}
	}
	b := Benchmark{Name: name, Package: pkg, Iterations: iters,
		GOMAXPROCS: procs, NumCPU: runtime.NumCPU()}
	for _, elem := range strings.Split(name, "/")[1:] {
		switch {
		case elem == "serial":
			b.Engine = "serial"
		case elem == "compiled":
			b.Engine = "compiled"
		case strings.HasPrefix(elem, "parallel-shards="):
			if n, err := strconv.Atoi(strings.TrimPrefix(elem, "parallel-shards=")); err == nil {
				b.Engine = "parallel"
				b.Shards = n
			}
		case strings.HasPrefix(elem, "compiled-shards="):
			if n, err := strconv.Atoi(strings.TrimPrefix(elem, "compiled-shards=")); err == nil {
				b.Engine = "compiled"
				b.Shards = n
			}
		case strings.HasPrefix(elem, "chips="):
			if n, err := strconv.Atoi(strings.TrimPrefix(elem, "chips=")); err == nil {
				b.Chips = n
			}
		}
	}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}
