// Command ixpsim compiles a benchmark application and runs it on the
// IXP2400 model, reporting the forwarding rate and per-packet memory
// access profile. With -gbps the open-loop workload engine drives the
// machine (arrival process, size mix, flow locality) and the output
// gains offered load, drop causes and Rx→Tx latency quantiles.
//
// With -experiment the run dispatches through the experiment registry
// against the one named app instead of a plain measurement: -experiment
// churn applies a seeded control-plane update storm mid-run
// (-churn-rate/-churn-burst/-churn-arrival) and prints the bucketed
// goodput/latency/flush timeline; -experiment cluster replicates the app
// across a multi-NPU line card (-chips, -cluster-*) behind the flow-hash
// load balancer and prints the goodput-scaling and drain series;
// -experiment fuzz runs the app through the differential oracle — every
// optimization level checked packet-for-packet against the host
// reference interpreter. Unknown names are rejected with the valid set
// and a nonzero exit.
//
// Every plain measurement echoes the resolved -seed so a run (or a
// divergence) can be replayed exactly.
//
// With -stalls every simulated cycle of the measured window is attributed
// to compute, memory latency, memory-controller queueing, ring
// backpressure or idle, per ME; with -trace the whole run is exported as
// Chrome trace_event JSON for chrome://tracing or Perfetto.
//
// With -engine parallel the simulation runs on the sharded engine: MEs
// are partitioned across -shards worker goroutines (0 = one per core, at
// most one per ME) under conservative time windows. With -engine
// compiled each predecoded straight-line run is staged into a
// specialized native closure at load time (constants folded, wired-zero
// reads elided) and dispatched on one goroutine, or — with -shards n —
// inside the parallel engine's shard phases. Results are bit-identical
// across all engines — the flags only trade host cores and load-time
// staging for wall-clock time.
//
// Usage:
//
//	ixpsim [-O level] [-mes n] [-cycles n] [-seed n]
//	       [-experiment name] [experiment flags]
//	       [-engine serial|parallel|compiled] [-shards n]
//	       [-gbps g] [-arrival fixed|poisson|onoff] [-sizes 64|imix|trimodal]
//	       [-flows n] [-zipf s]
//	       [-stalls] [-trace out.json]
//	       [-cpuprofile cpu.pb] [-memprofile mem.pb]
//	       [-dump-ir pass|all] [-dump-ir-dir dir] [-verify-ir]
//	       l3switch|mpls|firewall
//
// -cpuprofile/-memprofile profile the simulator process itself (for
// `go tool pprof`), as opposed to -stalls/-trace which attribute
// simulated cycles.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"shangrila/internal/apps"
	"shangrila/internal/cg"
	"shangrila/internal/harness"
)

// appExperiments returns the registry entries that can run against one
// explicit app (the only kind ixpsim dispatches), with their names.
func appExperiments(reg *harness.ExperimentRegistry) (names []string, byName map[string]*harness.Experiment) {
	byName = map[string]*harness.Experiment{}
	for _, name := range reg.Names() {
		if e, ok := reg.Lookup(name); ok && e.RunApp != nil {
			names = append(names, name)
			byName[name] = e
		}
	}
	return names, byName
}

func main() {
	registry := harness.Experiments()
	expNames, expByName := appExperiments(registry)
	common := harness.RegisterCommonFlags(flag.CommandLine)
	mes := flag.Int("mes", 6, "enabled packet-processing MEs (1..6)")
	cycles := flag.Int64("cycles", 1_000_000, "measured simulation cycles (600 MHz core)")
	warm := flag.Int64("warmup", 150_000, "warm-up cycles before counters reset")
	stalls := flag.Bool("stalls", false, "print the per-ME stall breakdown of the measured window")
	exp := flag.String("experiment", "",
		"run a registered experiment against the app: "+strings.Join(expNames, "|")+" (empty = plain measurement)")
	tracePath := flag.String("trace", "", "write the run as Chrome trace_event JSON to this file")
	prof := harness.RegisterProfileFlags(flag.CommandLine)
	expFlags := registry.BindFlags(flag.CommandLine)
	flag.Parse()
	if err := prof.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "ixpsim: %v\n", err)
		os.Exit(1)
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ixpsim [flags] l3switch|mpls|firewall")
		os.Exit(2)
	}
	var app *apps.App
	for _, a := range apps.All() {
		if a.Name == flag.Arg(0) {
			app = a
		}
	}
	if app == nil {
		fmt.Fprintf(os.Stderr, "ixpsim: unknown app %q\n", flag.Arg(0))
		os.Exit(2)
	}
	lvl, err := common.DriverLevel()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ixpsim: %v\n", err)
		os.Exit(2)
	}
	opts, err := common.Options()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ixpsim: %v\n", err)
		os.Exit(2)
	}
	opts = append(opts,
		harness.WithLevel(lvl),
		harness.WithMEs(*mes),
		harness.WithWindows(*warm, *cycles),
		harness.WithTrace(384),
		harness.WithTelemetry(0),
	)
	if *stalls {
		opts = append(opts, harness.WithStallBreakdown())
	}
	if *exp != "" {
		e, ok := expByName[*exp]
		if !ok {
			fmt.Fprintf(os.Stderr, "ixpsim: unknown experiment %q (valid: %s)\n",
				*exp, strings.Join(expNames, "|"))
			os.Exit(2)
		}
		cfg := harness.DefaultRunConfig()
		cfg.Seed = common.Seed
		cfg.NumMEs = *mes
		cfg.Warmup, cfg.Measure = *warm, *cycles
		ctx := &harness.ExpContext{
			Out:     os.Stdout,
			Common:  common,
			Opts:    opts,
			Cfg:     cfg,
			FigWarm: *warm,
			FigMeas: *cycles,
			Loads:   harness.DefaultLoads(),
			Report:  harness.NewReportBuilder(),
		}
		ctx.Report.RecordExperiment(e.Name)
		if err := e.RunApp(ctx, app, expFlags[e.Name]); err != nil {
			fmt.Fprintf(os.Stderr, "ixpsim: %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		if err := prof.Stop(); err != nil {
			fmt.Fprintf(os.Stderr, "ixpsim: %v\n", err)
			os.Exit(1)
		}
		return
	}
	var traceFile *os.File
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ixpsim: %v\n", err)
			os.Exit(1)
		}
		traceFile = f
		opts = append(opts, harness.WithChromeTrace(f))
	}
	r, err := harness.Run(app, opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ixpsim: %v\n", err)
		os.Exit(1)
	}
	if traceFile != nil {
		if err := traceFile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "ixpsim: trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (Chrome trace_event JSON; open in chrome://tracing)\n", *tracePath)
	}
	fmt.Printf("%s at %v on %d ME(s), seed %d: %.2f Gbps (%d packets in %.2f ms simulated)\n",
		app.Name, lvl, *mes, common.Seed, r.Gbps, r.TxPackets, float64(*cycles)/600e3)
	fmt.Printf("pipeline: %d stage(s), code %v instructions\n", r.Stages, r.CodeSizes)
	if r.Workload != nil {
		fmt.Printf("\noffered %.2f Gbps (%s arrivals, %s sizes): goodput %.2f Gbps, drop %.2f%%\n",
			r.OfferedGbps, r.Workload.Arrival, r.Workload.Sizes,
			r.Gbps, 100*r.DropRate())
		fmt.Printf("  drops: rx-ring %d, app %d; channel-ring backpressure events %d\n",
			r.RxDropped, r.AppDrops, r.ChanOverflows)
		if lat := r.Latency; lat != nil && lat.Count > 0 {
			fmt.Printf("  latency (Rx→Tx cycles): p50 %d  p90 %d  p99 %d  max %d (%d samples)\n",
				lat.P50, lat.P90, lat.P99, lat.Max, lat.Count)
		}
	}
	fmt.Println("\nper-packet dynamic memory accesses (Table 1 columns):")
	fmt.Printf("  packet: scratch %.1f  sram %.1f  dram %.1f\n", r.PktScratch, r.PktSRAM, r.PktDRAM)
	fmt.Printf("  app:    scratch %.1f  sram %.1f\n", r.AppScratch, r.AppSRAM)
	fmt.Printf("  total:  %.1f\n", r.Total())
	if tel := r.Telemetry; tel != nil {
		fmt.Println("\ntelemetry (measured window):")
		fmt.Print("  ME utilization: ")
		for i, u := range tel.MEUtilization {
			if i > 0 {
				fmt.Print(" ")
			}
			fmt.Printf("%.0f%%", u*100)
		}
		fmt.Printf("\n  controller saturation: scratch %.0f%%  sram %.0f%%  dram %.0f%%\n",
			tel.CtrlSaturation["scratch"]*100, tel.CtrlSaturation["sram"]*100,
			tel.CtrlSaturation["dram"]*100)
		fmt.Printf("  ring max occupancy: %v\n", tel.RingMaxOcc)
	}
	if r.Stalls != nil {
		fmt.Println()
		fmt.Print(r.Stalls)
	}
	if err := prof.Stop(); err != nil {
		fmt.Fprintf(os.Stderr, "ixpsim: %v\n", err)
		os.Exit(1)
	}
	_ = cg.CodeStoreLimit
}
