// Command ixpsim compiles a benchmark application and runs it on the
// IXP2400 model, reporting the forwarding rate and per-packet memory
// access profile.
//
// Usage:
//
//	ixpsim [-O level] [-mes n] [-cycles n] [-seed n]
//	       [-dump-ir pass|all] [-dump-ir-dir dir] [-verify-ir]
//	       l3switch|mpls|firewall
package main

import (
	"flag"
	"fmt"
	"os"

	"shangrila/internal/apps"
	"shangrila/internal/cg"
	"shangrila/internal/driver"
	"shangrila/internal/harness"
)

func main() {
	level := flag.Int("O", 6, "optimization level 0..6 (BASE..+SWC)")
	mes := flag.Int("mes", 6, "enabled packet-processing MEs (1..6)")
	cycles := flag.Int64("cycles", 1_000_000, "measured simulation cycles (600 MHz core)")
	warm := flag.Int64("warmup", 150_000, "warm-up cycles before counters reset")
	seed := flag.Uint64("seed", 1234, "traffic generator seed")
	dumpIR := flag.String("dump-ir", "", "dump IR after the named compiler pass (or \"all\")")
	dumpDir := flag.String("dump-ir-dir", "", "write IR dumps to this directory instead of stdout")
	verifyIR := flag.Bool("verify-ir", false, "run the IR verifier after every compiler pass")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ixpsim [flags] l3switch|mpls|firewall")
		os.Exit(2)
	}
	var app *apps.App
	for _, a := range apps.All() {
		if a.Name == flag.Arg(0) {
			app = a
		}
	}
	if app == nil {
		fmt.Fprintf(os.Stderr, "ixpsim: unknown app %q\n", flag.Arg(0))
		os.Exit(2)
	}
	lvl := driver.Level(*level)
	opts := []harness.Option{
		harness.WithLevel(lvl),
		harness.WithMEs(*mes),
		harness.WithWindows(*warm, *cycles),
		harness.WithSeed(*seed),
		harness.WithTrace(384),
		harness.WithTelemetry(0),
	}
	if *dumpIR != "" || *dumpDir != "" {
		pass := *dumpIR
		if pass == "" {
			pass = "all"
		}
		opts = append(opts, harness.WithDumpIR(pass, *dumpDir))
	}
	if *verifyIR {
		opts = append(opts, harness.WithVerifyIR(driver.VerifyOn))
	}
	r, err := harness.Run(app, opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ixpsim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%s at %v on %d ME(s): %.2f Gbps (%d packets in %.2f ms simulated)\n",
		app.Name, lvl, *mes, r.Gbps, r.TxPackets, float64(*cycles)/600e3)
	fmt.Printf("pipeline: %d stage(s), code %v instructions\n", r.Stages, r.CodeSizes)
	fmt.Println("\nper-packet dynamic memory accesses (Table 1 columns):")
	fmt.Printf("  packet: scratch %.1f  sram %.1f  dram %.1f\n", r.PktScratch, r.PktSRAM, r.PktDRAM)
	fmt.Printf("  app:    scratch %.1f  sram %.1f\n", r.AppScratch, r.AppSRAM)
	fmt.Printf("  total:  %.1f\n", r.Total())
	if tel := r.Telemetry; tel != nil {
		fmt.Println("\ntelemetry (measured window):")
		fmt.Print("  ME utilization: ")
		for i, u := range tel.MEUtilization {
			if i > 0 {
				fmt.Print(" ")
			}
			fmt.Printf("%.0f%%", u*100)
		}
		fmt.Printf("\n  controller saturation: scratch %.0f%%  sram %.0f%%  dram %.0f%%\n",
			tel.CtrlSaturation["scratch"]*100, tel.CtrlSaturation["sram"]*100,
			tel.CtrlSaturation["dram"]*100)
		fmt.Printf("  ring max occupancy: %v\n", tel.RingMaxOcc)
	}
	_ = cg.CodeStoreLimit
}
