// Command shangrilac is the Shangri-La compiler driver: it compiles a
// Baker program (one of the built-in benchmark applications or a .baker
// source file) through the full pipeline — functional profiling, scalar
// optimization, PAC, SOAR, aggregation, PHR, SWC and code generation —
// and prints a compilation report.
//
// Usage:
//
//	shangrilac [-O level] [-cgir] [-mes n] l3switch|mpls|firewall
//	shangrilac [-O level] [-cgir] [-mes n] path/to/app.baker
//
// Levels: 0=BASE 1=-O1 2=-O2 3=+PAC 4=+SOAR 5=+PHR 6=+SWC (default 6).
package main

import (
	"flag"
	"fmt"
	"os"

	"shangrila/internal/aggregate"
	"shangrila/internal/apps"
	"shangrila/internal/driver"
	"shangrila/internal/harness"
	"shangrila/internal/packet"
	"shangrila/internal/trace"
	"shangrila/internal/workload"
)

func main() {
	level := flag.Int("O", 6, "optimization level 0..6 (BASE..+SWC)")
	dumpCGIR := flag.Bool("cgir", false, "disassemble the generated ME code")
	mes := flag.Int("mes", 6, "microengines available to the aggregation planner")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: shangrilac [flags] <app|file.baker>")
		flag.Usage()
		os.Exit(2)
	}
	if *level < 0 || *level > int(driver.LevelSWC) {
		fmt.Fprintln(os.Stderr, "shangrilac: -O must be 0..6")
		os.Exit(2)
	}
	lvl := driver.Level(*level)

	res, name, err := compileTarget(flag.Arg(0), lvl, *mes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shangrilac: %v\n", err)
		os.Exit(1)
	}
	rep := res.Report
	fmt.Printf("compiled %s at %v\n\n", name, lvl)
	fmt.Print(rep.Plan.String())
	fmt.Printf("\nME code stores (limit 4096):\n")
	for i, c := range res.Image.MECode {
		fmt.Printf("  aggregate %d (%v): %d instructions, %dB stack\n",
			i, c.Agg.PPFs, len(c.Program.Code), c.Program.StackBytes)
	}
	if rep.SOAR != nil {
		fmt.Printf("\nSOAR: %d/%d packet accesses offset-resolved, %d alignment-only; %d/%d encaps resolved\n",
			rep.SOAR.ResolvedOffset, rep.SOAR.Accesses, rep.SOAR.ResolvedAlign,
			rep.SOAR.EncapsResolved, rep.SOAR.EncapsTotal)
	}
	if rep.PAC != nil {
		fmt.Printf("PAC: %d load clusters, %d store clusters, %d accesses removed\n",
			rep.PAC.LoadClusters, rep.PAC.StoreClusters, rep.PAC.AccessesRemoved)
	}
	if rep.PHR != nil {
		fmt.Printf("PHR: %d metadata fields localized, %d accesses removed, %d encap pairs eliminated\n",
			rep.PHR.FieldsLocalized, rep.PHR.AccessesRemoved, rep.PHR.PairsEliminated)
	}
	for _, c := range rep.SWCCands {
		fmt.Printf("SWC: caching %s (est. hit rate %.2f, update check every %d packets)\n",
			c.Global.Name, c.HitRate, c.CheckLimit)
	}
	if *dumpCGIR {
		for _, c := range res.Image.MECode {
			fmt.Printf("\n=== %v ===\n", c.Agg.PPFs)
			for pc, in := range c.Program.Code {
				fmt.Printf("%4d: %v", pc, in)
				if in.Comment != "" {
					fmt.Printf("  ; %s", in.Comment)
				}
				fmt.Println()
			}
		}
	}
}

// compileTarget resolves the argument to a built-in app or source file.
func compileTarget(arg string, lvl driver.Level, mes int) (*driver.Result, string, error) {
	for _, a := range apps.All() {
		if a.Name == arg {
			res, err := compileWithMEs(a, lvl, mes)
			return res, a.Name, err
		}
	}
	src, err := os.ReadFile(arg)
	if err != nil {
		return nil, "", fmt.Errorf("%q is not a built-in app (l3switch|mpls|firewall) and cannot be read: %v", arg, err)
	}
	prog, err := driver.LowerSource(arg, string(src))
	if err != nil {
		return nil, "", err
	}
	// Generic profiling trace: 64-byte frames with randomized bytes in
	// the rx protocol's fields.
	r := workload.NewSource(42)
	var profTrace []*packet.Packet
	entryProto := prog.Types.Entry.InProto
	for i := 0; i < 256; i++ {
		fields := map[string]uint32{}
		for _, f := range entryProto.Fields {
			if f.Bits <= 32 {
				fields[f.Name] = r.Uint32()
			}
		}
		size := entryProto.FixedSize
		if size < 0 {
			size = entryProto.HeaderMin
		}
		p, err := trace.Build([]trace.Layer{{Proto: entryProto, Fields: fields, Size: size}},
			64, prog.Types.Metadata.Bytes)
		if err != nil {
			return nil, "", err
		}
		profTrace = append(profTrace, p)
	}
	cfg := driver.Config{Level: lvl, ProfileTrace: profTrace}
	cfg.Agg = aggregate.DefaultConfig()
	cfg.Agg.NumMEs = mes
	res, err := driver.CompileIR(prog, cfg)
	return res, arg, err
}

func compileWithMEs(a *apps.App, lvl driver.Level, mes int) (*driver.Result, error) {
	if mes == 6 {
		return harness.Compile(a, lvl, 42)
	}
	prog, err := driver.LowerSource(a.Name+".baker", a.Source)
	if err != nil {
		return nil, err
	}
	cfg := driver.Config{
		Level:        lvl,
		ProfileTrace: a.Trace(prog.Types, 42, 512),
		Controls:     a.Controls,
		Agg:          aggregate.DefaultConfig(),
	}
	cfg.Agg.NumMEs = mes
	return driver.CompileIR(prog, cfg)
}
