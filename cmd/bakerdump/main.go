// Command bakerdump is the Baker frontend inspector: it lexes, parses,
// type-checks and lowers a Baker program, dumping the requested stage.
//
// Usage:
//
//	bakerdump [-stage tokens|ast|types|ir] file.baker
//	bakerdump [-stage ...] l3switch|mpls|firewall
package main

import (
	"flag"
	"fmt"
	"os"

	"shangrila/internal/apps"
	"shangrila/internal/baker/lexer"
	"shangrila/internal/baker/parser"
	"shangrila/internal/baker/token"
	"shangrila/internal/baker/types"
	"shangrila/internal/lower"
)

func main() {
	stage := flag.String("stage", "ir", "dump stage: tokens|ast|types|ir")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: bakerdump [-stage s] <file.baker|app>")
		os.Exit(2)
	}
	name := flag.Arg(0)
	var src string
	for _, a := range apps.All() {
		if a.Name == name {
			src = a.Source
		}
	}
	if src == "" {
		b, err := os.ReadFile(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bakerdump: %v\n", err)
			os.Exit(1)
		}
		src = string(b)
	}

	if *stage == "tokens" {
		toks, errs := lexer.ScanAll(name, src)
		for _, tk := range toks {
			if tk.Kind == token.EOF {
				break
			}
			fmt.Printf("%s\t%v\n", tk.Pos, tk)
		}
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, e)
		}
		return
	}

	prog, err := parser.Parse(name, src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bakerdump: parse: %v\n", err)
		os.Exit(1)
	}
	if *stage == "ast" {
		fmt.Printf("protocols: %d, modules: %d, consts: %d\n",
			len(prog.Protocols), len(prog.Modules), len(prog.Consts))
		for _, p := range prog.Protocols {
			fmt.Printf("protocol %s (%d fields)\n", p.Name, len(p.Fields))
		}
		for _, m := range prog.Modules {
			fmt.Printf("module %s: %d structs, %d globals, %d channels, %d funcs, %d wires\n",
				m.Name, len(m.Structs), len(m.Globals), len(m.Chans), len(m.Funcs), len(m.Wiring))
			for _, f := range m.Funcs {
				fmt.Printf("  %s %s (%d params)\n", f.Kind, f.Name, len(f.Params))
			}
		}
		return
	}

	tp, err := types.Check(prog)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bakerdump: check: %v\n", err)
		os.Exit(1)
	}
	if *stage == "types" {
		for _, p := range tp.ProtoByID {
			fmt.Printf("protocol %s: min %dB, fixed %d\n", p.Name, p.HeaderMin, p.FixedSize)
			for _, f := range p.Fields {
				fmt.Printf("  %-12s bits [%d,%d)\n", f.Name, f.BitOff, f.BitOff+f.Bits)
			}
		}
		fmt.Printf("metadata: %dB\n", tp.Metadata.Bytes)
		for name, g := range tp.Globals {
			fmt.Printf("global %-28s %-14s %s\n", name, g.Type, g.Space)
		}
		for _, ch := range tp.ChanByID {
			fmt.Printf("channel %s : %s -> %s\n", ch.Name, ch.Proto.Name, ch.Consumer)
		}
		return
	}

	ir, err := lower.Lower(tp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bakerdump: lower: %v\n", err)
		os.Exit(1)
	}
	for _, fname := range ir.Order {
		fmt.Println(ir.Funcs[fname].String())
	}
}
