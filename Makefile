GO ?= go

.PHONY: all build test vet fmt-check race churn-claims verify fuzz-ci bench bench-smoke bench-loadlatency bench-churn bench-cluster clean

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt-check:
	@fmt_out=$$(gofmt -l .); \
	if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; \
	fi

# Race-check the concurrent packages: the sweep runner's worker pool,
# the metrics instruments it samples, the trace-enabled machine tests,
# the parallel sharded and staged-compilation engines (including the
# full differential suite replayed on both inside ./internal/harness/),
# and the multi-NPU cluster scheduler's shared balancer and epoch
# barriers. The second leg re-runs the engine determinism tests at
# several GOMAXPROCS settings so shard scheduling is exercised under
# contention and on a single P.
race:
	$(GO) test -race ./internal/harness/ ./internal/metrics/ ./internal/ixp/ ./internal/cluster/
	$(GO) test -race -cpu 1,2,8 -run 'TestParallel|TestEngine|TestCompiled' ./internal/ixp/

# The dynamic-control-plane gate, run explicitly (and with -count=1, so
# a cached `test` result can never mask a regression): SWC delayed-update
# coherency under an update storm, rule-flip convergence, byte-identical
# incremental-vs-cold compiles, and churn report determinism.
churn-claims:
	$(GO) test -count=1 -run \
		'TestSWCCoherencyUnderChurnStorm|TestFirewallRuleFlipConverges|TestIncrementalPacketDifferential|TestChurnDeterminism' \
		./internal/harness/

# Tier-1 verification: everything CI gates on. `test` includes the
# checked-in fuzz-corpus replay (internal/harness/testdata/fuzz-corpus),
# so every previously minimized compiler-bug reproducer re-runs through
# the full differential oracle on each verify.
verify: build vet fmt-check test race churn-claims

# Compiler-fuzzing gate (~1-2 min): 500 seeded random Baker programs,
# each compiled at every cumulative optimization level and checked
# packet-for-packet against the host reference interpreter, plus one
# invalid mutant per program through the frontend negative checker. The
# seed is fixed so a red run replays exactly:
#   go run ./cmd/shangrila-bench -experiment fuzz -fuzz-n 500 -fuzz-seed 4242
# Campaign stats (programs/sec, feature histogram, minimized failures)
# land in fuzz_report.json for CI to archive.
fuzz-ci: build
	$(GO) run ./cmd/shangrila-bench -experiment fuzz -fuzz-n 500 -fuzz-seed 4242 \
		-report fuzz_report.json
	@test -s fuzz_report.json && echo "fuzz-ci: report OK"

# Host-performance benchmark suite → BENCH_sim.json (ns/op, B/op,
# allocs/op and custom metrics per benchmark). BenchmarkSimulator fans
# out into serial, parallel-shards=N, compiled and compiled-shards=N
# sub-benchmarks (BenchmarkFigure6 into serial and compiled), recorded
# as separate entries (with engine/shards fields) so the engines'
# numbers are never merged. CI uploads the file as an artifact so
# simulator throughput is comparable per commit.
bench: build
	$(GO) test -run xxx -bench 'BenchmarkSimulator$$|BenchmarkCluster$$|BenchmarkFigure6$$|BenchmarkCompiler$$' \
		-benchmem . > /tmp/bench_raw.txt
	$(GO) test -run xxx -bench 'BenchmarkEventCore$$|BenchmarkTracerOverhead|BenchmarkEngineALU' \
		-benchmem ./internal/ixp/ >> /tmp/bench_raw.txt
	@cat /tmp/bench_raw.txt
	$(GO) run ./cmd/benchjson < /tmp/bench_raw.txt > BENCH_sim.json
	@echo "wrote BENCH_sim.json"

# Quick end-to-end pass over the evaluation binary: short windows, report
# written to a scratch location.
bench-smoke: build
	$(GO) run ./cmd/shangrila-bench -quick -experiment table1 -report /tmp/bench_report.json
	@test -s /tmp/bench_report.json && echo "bench-smoke: report OK"

# Short load-latency sweep: goodput/drop/latency curves per app at BASE
# and the -O default (+SWC), exported into the bench report with stall
# breakdowns, plus one representative run as a Chrome trace_event file.
bench-loadlatency: build
	$(GO) run ./cmd/shangrila-bench -quick -experiment loadlatency -stalls \
		-report bench_report.json -trace trace.json
	@test -s bench_report.json && echo "bench-loadlatency: report OK"
	@test -s trace.json && echo "bench-loadlatency: trace OK"

# Short churn experiment: per-app goodput/latency timelines under a
# control-plane update storm plus the full-vs-incremental compile-latency
# comparison, written to its own report so CI can archive the timelines.
bench-churn: build
	$(GO) run ./cmd/shangrila-bench -quick -experiment churn -report churn_report.json
	@test -s churn_report.json && echo "bench-churn: report OK"

# Short multi-NPU cluster experiment: goodput scaling at doubling chip
# counts plus the chip-drain scenario on a 4-chip line card, every chip
# advancing on its own worker, written to its own report so CI can
# archive the topology and per-chip series.
bench-cluster: build
	$(GO) run ./cmd/shangrila-bench -quick -experiment cluster -chips 4 -workers 4 \
		-report cluster_report.json
	@test -s cluster_report.json && echo "bench-cluster: report OK"

clean:
	rm -f bench_report.json trace.json BENCH_sim.json churn_report.json cluster_report.json fuzz_report.json
