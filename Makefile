GO ?= go

.PHONY: all build test vet fmt-check race verify bench-smoke bench-loadlatency clean

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt-check:
	@fmt_out=$$(gofmt -l .); \
	if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; \
	fi

# Race-check the concurrent packages: the sweep runner's worker pool and
# the metrics instruments it samples.
race:
	$(GO) test -race ./internal/harness/ ./internal/metrics/

# Tier-1 verification: everything CI gates on.
verify: build vet fmt-check test race

# Quick end-to-end pass over the evaluation binary: short windows, report
# written to a scratch location.
bench-smoke: build
	$(GO) run ./cmd/shangrila-bench -quick -experiment table1 -report /tmp/bench_report.json
	@test -s /tmp/bench_report.json && echo "bench-smoke: report OK"

# Short load-latency sweep: goodput/drop/latency curves per app at BASE
# and the -O default (+SWC), exported into the bench report.
bench-loadlatency: build
	$(GO) run ./cmd/shangrila-bench -quick -experiment loadlatency -report bench_report.json
	@test -s bench_report.json && echo "bench-loadlatency: report OK"

clean:
	rm -f bench_report.json
