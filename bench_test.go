package shangrila

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (§6). Each benchmark iteration regenerates the experiment's
// full data series on the IXP2400 model and reports the headline number
// as a custom metric, printing the same rows/curves the paper shows with
// -v. Absolute Gbps depends on the calibrated machine model (see
// EXPERIMENTS.md); the shapes — who wins, by what factor, where the
// memory-bandwidth knees fall — are the reproduction targets.
//
// Run: go test -bench=. -benchmem
//
// Individual experiments:
//
//	go test -bench=BenchmarkFigure6 -v
//	go test -bench=BenchmarkTable1 -v
//	go test -bench=BenchmarkFigure13 -v   (L3-Switch)
//	go test -bench=BenchmarkFigure14 -v   (Firewall)
//	go test -bench=BenchmarkFigure15 -v   (MPLS)

import (
	"fmt"
	"os"
	"testing"

	"shangrila/internal/apps"
	"shangrila/internal/driver"
	"shangrila/internal/harness"
	"shangrila/internal/ixp"
)

func benchCfg() harness.RunConfig {
	cfg := harness.DefaultRunConfig()
	cfg.Warmup = 120_000
	cfg.Measure = 600_000
	return cfg
}

// BenchmarkFigure6 regenerates the memory micro-experiment: forwarding
// rate vs. memory accesses per 64-byte packet for each level and width,
// six MEs running a pure access loop. The sweep runs once per engine —
// the points are bit-identical across engines, so the sub-benchmarks
// compare host wall-clock for the same simulation.
func BenchmarkFigure6(b *testing.B) {
	run := func(b *testing.B, engine ixp.EngineSpec) {
		var last []harness.Fig6Point
		for i := 0; i < b.N; i++ {
			pts, err := harness.Figure6Engine(50_000, 300_000, engine)
			if err != nil {
				b.Fatal(err)
			}
			last = pts
		}
		b.Log("\n" + harness.FormatFigure6(last))
		for _, p := range last {
			if p.Accesses == 2 && p.Bytes == 8 {
				b.ReportMetric(p.Gbps, "Gbps@dram8Bx2")
			}
		}
	}
	b.Run("serial", func(b *testing.B) { run(b, nil) })
	b.Run("compiled", func(b *testing.B) { run(b, ixp.EngineCompiled{}) })
}

// BenchmarkTable1 regenerates the per-packet dynamic memory access table
// for all three applications across the paper's configuration rows. The
// app × level grid fans out over the sweep runner's workers; the last
// iteration's results (with telemetry) are written to bench_report.json.
func BenchmarkTable1(b *testing.B) {
	var rows []*harness.Result
	for i := 0; i < b.N; i++ {
		r, err := harness.Table1(benchCfg(), harness.WithTelemetry(0))
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	b.Log("\n" + harness.FormatTable1(rows))
	f, err := os.Create("bench_report.json")
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	if err := harness.BuildReport(rows).WriteJSON(f); err != nil {
		b.Fatal(err)
	}
	b.Log("wrote bench_report.json")
	for _, r := range rows {
		if r.Level == driver.LevelSWC {
			b.ReportMetric(r.Total(), "accesses/pkt:"+r.App+"+SWC")
		}
	}
}

func benchFigure(b *testing.B, a *apps.App, title string) {
	var series []*harness.FigureSeries
	for i := 0; i < b.N; i++ {
		s, err := harness.FigureRates(a, benchCfg(), 6)
		if err != nil {
			b.Fatal(err)
		}
		series = s
	}
	b.Log("\n" + harness.FormatFigure(title, series))
	for _, s := range series {
		if s.Level == driver.LevelSWC {
			b.ReportMetric(s.Gbps[len(s.Gbps)-1], "Gbps@6ME+SWC")
		}
		if s.Level == driver.LevelBase {
			b.ReportMetric(s.Gbps[len(s.Gbps)-1], "Gbps@6ME-BASE")
		}
	}
}

// BenchmarkFigure13 regenerates the L3-Switch forwarding-rate curves
// (optimization level × enabled MEs).
func BenchmarkFigure13(b *testing.B) {
	benchFigure(b, apps.L3Switch(), "Figure 13: L3-Switch")
}

// BenchmarkFigure14 regenerates the Firewall forwarding-rate curves.
func BenchmarkFigure14(b *testing.B) {
	benchFigure(b, apps.Firewall(), "Figure 14: Firewall")
}

// BenchmarkFigure15 regenerates the MPLS forwarding-rate curves.
func BenchmarkFigure15(b *testing.B) {
	benchFigure(b, apps.MPLS(), "Figure 15: MPLS")
}

// BenchmarkCompiler measures whole-pipeline compile time for the largest
// application at full optimization (an ablation of compiler cost, not a
// paper figure).
func BenchmarkCompiler(b *testing.B) {
	a := apps.MPLS()
	for i := 0; i < b.N; i++ {
		if _, err := harness.Compile(a, driver.LevelSWC, 7); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulator measures raw simulation speed (cycles simulated per
// wall second) on the optimized L3-Switch: the serial interpreter, the
// parallel sharded engine at several shard counts, the staged-compilation
// engine, and the compiled+sharded composition. The engines are
// bit-identical, so the sub-benchmarks measure the same simulation; the
// engine variant is encoded in the sub-benchmark name (not the GOMAXPROCS
// suffix) so benchjson keys each entry as its own series.
func BenchmarkSimulator(b *testing.B) {
	a := apps.L3Switch()
	res, err := harness.Compile(a, driver.LevelSWC, 7)
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchCfg()
	run := func(b *testing.B, engine ixp.EngineSpec) {
		opts := append(cfg.Options(), harness.WithCompiled(res))
		if engine != nil {
			opts = append(opts, harness.WithEngine(engine))
		}
		b.ResetTimer()
		var cycles int64
		for i := 0; i < b.N; i++ {
			r, err := harness.Run(a, opts...)
			if err != nil {
				b.Fatal(err)
			}
			_ = r
			cycles += cfg.Warmup + cfg.Measure
		}
		b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "simcycles/s")
	}
	b.Run("serial", func(b *testing.B) { run(b, nil) })
	for _, shards := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("parallel-shards=%d", shards), func(b *testing.B) {
			run(b, ixp.EngineParallel{Shards: shards})
		})
	}
	b.Run("compiled", func(b *testing.B) { run(b, ixp.EngineCompiled{}) })
	b.Run("compiled-shards=4", func(b *testing.B) {
		run(b, ixp.EngineCompiled{Shards: 4})
	})
}

// BenchmarkCluster measures the multi-NPU line-card simulation: the
// optimized L3-Switch replicated across doubling chip counts behind the
// ECMP flow-hash balancer, every chip advancing concurrently. The chip
// count is encoded in the sub-benchmark name ("chips=N") so benchjson
// keys each cluster size as its own series.
func BenchmarkCluster(b *testing.B) {
	a := apps.L3Switch()
	res, err := harness.Compile(a, driver.LevelSWC, 7)
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchCfg()
	for _, chips := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("chips=%d", chips), func(b *testing.B) {
			p := harness.ClusterParams{Chips: chips, Flows: 65_536, DrainChip: harness.NoDrain}
			opts := append(cfg.Options(),
				harness.WithCompiled(res), harness.WithWorkers(chips))
			b.ResetTimer()
			var last *harness.ClusterResult
			for i := 0; i < b.N; i++ {
				r, err := harness.ClusterRun(a, p, opts...)
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			chipCycles := float64(chips) * float64(cfg.Warmup+cfg.Measure) * float64(b.N)
			b.ReportMetric(chipCycles/b.Elapsed().Seconds(), "simcycles/s")
			b.ReportMetric(last.AggregateGbps, "Gbps")
		})
	}
}
