module shangrila

go 1.22
