package workload

import (
	"fmt"
	"math"
)

// Control-plane churn arrival processes. Churn reuses the data-plane
// arrival names where they make sense; ON/OFF burstiness is expressed
// through Burst instead (updates arrive in back-to-back groups).
const (
	ChurnArrivalFixed   = ArrivalFixed
	ChurnArrivalPoisson = ArrivalPoisson
)

// ChurnSpec describes a deterministic control-plane update stream: route
// add/withdraw or rule-update events against a fixed population of
// policy items, at a configurable rate with optional bursts. The zero
// values of the optional fields pick documented defaults (Normalize).
type ChurnSpec struct {
	Seed          uint64  `json:"seed"`
	UpdatesPerSec float64 `json:"updates_per_sec"`
	// Arrival is the inter-burst arrival process (fixed or poisson).
	Arrival string `json:"arrival,omitempty"`
	// Burst is the number of back-to-back updates per arrival (>= 1);
	// updates inside a burst are separated by zero gap, modelling a BGP
	// batch or a policy push touching several rules at once.
	Burst int `json:"burst,omitempty"`
	// Items is the population of churned policy items (routes, firewall
	// rules, label entries); each update picks one uniformly.
	Items int `json:"items,omitempty"`
	// WithdrawFraction is the probability an update withdraws its item
	// instead of (re-)announcing it with new state.
	WithdrawFraction float64 `json:"withdraw_fraction,omitempty"`
}

// Normalize fills defaults and validates, returning the effective spec.
func (sp ChurnSpec) Normalize() (ChurnSpec, error) {
	if sp.Arrival == "" {
		sp.Arrival = ChurnArrivalFixed
	}
	if sp.Burst == 0 {
		sp.Burst = 1
	}
	if sp.Items == 0 {
		sp.Items = 1
	}
	switch sp.Arrival {
	case ChurnArrivalFixed, ChurnArrivalPoisson:
	default:
		return sp, fmt.Errorf("workload: unknown churn arrival process %q", sp.Arrival)
	}
	switch {
	case sp.UpdatesPerSec <= 0:
		return sp, fmt.Errorf("workload: churn rate must be positive (got %v updates/s)", sp.UpdatesPerSec)
	case sp.Burst < 1:
		return sp, fmt.Errorf("workload: churn burst must be >= 1 update (got %d)", sp.Burst)
	case sp.Items < 1:
		return sp, fmt.Errorf("workload: churn item population must be >= 1 (got %d)", sp.Items)
	case sp.WithdrawFraction < 0 || sp.WithdrawFraction >= 1:
		return sp, fmt.Errorf("workload: withdraw fraction must be in [0,1) (got %v)", sp.WithdrawFraction)
	}
	return sp, nil
}

// ChurnEvent is one control-plane update: the time since the previous
// event, the policy item it touches, that item's per-item update count
// (1-based — the consumer maps it to concrete policy state), and whether
// the item is withdrawn rather than re-announced.
type ChurnEvent struct {
	GapSeconds float64
	Item       int
	Version    uint64
	Withdraw   bool
}

// ChurnStream generates a deterministic update sequence from a
// ChurnSpec. Like Stream it is not goroutine-safe.
type ChurnStream struct {
	spec     ChurnSpec
	src      *Source
	versions []uint64 // per-item update counts
	inBurst  int      // updates remaining in the current burst
}

// NewChurnStream validates the spec (filling defaults) and builds a
// stream.
func NewChurnStream(sp ChurnSpec) (*ChurnStream, error) {
	sp, err := sp.Normalize()
	if err != nil {
		return nil, err
	}
	return &ChurnStream{
		spec:     sp,
		src:      NewSource(sp.Seed),
		versions: make([]uint64, sp.Items),
	}, nil
}

// Spec returns the stream's effective (normalized) spec.
func (cs *ChurnStream) Spec() ChurnSpec { return cs.spec }

// Next generates one update. The long-run event rate converges to the
// spec's UpdatesPerSec for both arrival processes: bursts of size B
// arrive every B/rate seconds (fixed exactly, Poisson in expectation)
// with zero gap inside a burst.
func (cs *ChurnStream) Next() ChurnEvent {
	var gap float64
	if cs.inBurst > 0 {
		cs.inBurst--
	} else {
		mean := float64(cs.spec.Burst) / cs.spec.UpdatesPerSec
		switch cs.spec.Arrival {
		case ChurnArrivalPoisson:
			gap = mean * -math.Log(1-cs.src.Float64())
		default: // fixed
			gap = mean
		}
		cs.inBurst = cs.spec.Burst - 1
	}
	item := cs.src.Intn(cs.spec.Items)
	withdraw := cs.spec.WithdrawFraction > 0 && cs.src.Float64() < cs.spec.WithdrawFraction
	cs.versions[item]++
	return ChurnEvent{
		GapSeconds: gap,
		Item:       item,
		Version:    cs.versions[item],
		Withdraw:   withdraw,
	}
}
