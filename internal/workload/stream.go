package workload

import "math"

// Pkt is one generated arrival: the wire frame length, the flow the
// packet belongs to, and the time until the next arrival.
type Pkt struct {
	FrameBytes int
	Flow       int
	GapSeconds float64
}

// Stream generates a deterministic packet sequence from a Spec. Streams
// are not goroutine-safe; the sweep runner gives each machine its own.
type Stream struct {
	spec    Spec
	src     *Source
	zipfCDF []float64 // cumulative flow popularity
	sizes   []sizeClass
	sizeCDF []float64

	// ON/OFF state: packets left in the current burst and the bits it
	// has carried (the OFF gap repays them at the offered rate).
	burstLeft int
	burstBits float64
}

// NewStream validates the spec (filling defaults) and builds a stream.
func NewStream(sp Spec) (*Stream, error) {
	sp, err := sp.Normalize()
	if err != nil {
		return nil, err
	}
	st := &Stream{spec: sp, src: NewSource(sp.Seed), sizes: sp.sizeMix()}
	var cum float64
	for _, c := range st.sizes {
		cum += c.weight
		st.sizeCDF = append(st.sizeCDF, cum)
	}
	st.sizeCDF[len(st.sizeCDF)-1] = 1 // absorb rounding
	cum = 0
	weights := make([]float64, sp.Flows)
	var total float64
	for r := range weights {
		weights[r] = 1 / math.Pow(float64(r+1), sp.ZipfS)
		total += weights[r]
	}
	for _, w := range weights {
		cum += w / total
		st.zipfCDF = append(st.zipfCDF, cum)
	}
	st.zipfCDF[len(st.zipfCDF)-1] = 1
	return st, nil
}

// Spec returns the stream's effective (normalized) spec.
func (st *Stream) Spec() Spec { return st.spec }

// cdfSample maps u in [0,1) to the first index whose cumulative weight
// covers it.
func cdfSample(cdf []float64, u float64) int {
	lo, hi := 0, len(cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] > u {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Next generates one arrival. The long-run bit rate converges to the
// spec's offered load for every arrival process: fixed gaps are exact,
// Poisson gaps are exponential with the exact per-packet mean, and
// ON/OFF idle gaps repay each burst's bits at the offered rate.
func (st *Stream) Next() Pkt {
	size := st.sizes[cdfSample(st.sizeCDF, st.src.Float64())].bytes
	flow := cdfSample(st.zipfCDF, st.src.Float64())
	bits := float64(size * 8)
	offered := st.spec.OfferedGbps * 1e9

	var gap float64
	switch st.spec.Arrival {
	case ArrivalPoisson:
		// Exponential with mean bits/offered; 1-u avoids log(0).
		gap = bits / offered * -math.Log(1-st.src.Float64())
	case ArrivalOnOff:
		if st.burstLeft <= 0 {
			// Geometric-ish burst length with the configured mean.
			l := int(math.Round(-st.spec.BurstMean * math.Log(1-st.src.Float64())))
			if l < 1 {
				l = 1
			}
			st.burstLeft = l
			st.burstBits = 0
		}
		st.burstLeft--
		st.burstBits += bits
		peak := st.spec.PeakGbps * 1e9
		gap = bits / peak
		if st.burstLeft == 0 {
			// End of burst: idle long enough that the whole burst
			// averages out to the offered rate.
			gap += st.burstBits/offered - st.burstBits/peak
		}
	default: // ArrivalFixed
		gap = bits / offered
	}
	return Pkt{FrameBytes: size, Flow: flow, GapSeconds: gap}
}
