package workload

import (
	"math"
	"testing"
)

// TestChurnStreamDeterminism pins seeded reproducibility: two streams
// built from the same spec emit identical event sequences.
func TestChurnStreamDeterminism(t *testing.T) {
	sp := ChurnSpec{Seed: 42, UpdatesPerSec: 1000, Arrival: ChurnArrivalPoisson,
		Burst: 4, Items: 8, WithdrawFraction: 0.25}
	a, err := NewChurnStream(sp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewChurnStream(sp)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		ea, eb := a.Next(), b.Next()
		if ea != eb {
			t.Fatalf("event %d diverged: %+v vs %+v", i, ea, eb)
		}
	}
}

// TestChurnStreamRateAndBurst checks the long-run event rate converges
// to UpdatesPerSec and that bursts are back-to-back (zero gap inside).
func TestChurnStreamRateAndBurst(t *testing.T) {
	for _, arrival := range []string{ChurnArrivalFixed, ChurnArrivalPoisson} {
		cs, err := NewChurnStream(ChurnSpec{Seed: 7, UpdatesPerSec: 500,
			Arrival: arrival, Burst: 3, Items: 4})
		if err != nil {
			t.Fatal(err)
		}
		const n = 6000
		var elapsed float64
		zeroGaps := 0
		for i := 0; i < n; i++ {
			ev := cs.Next()
			elapsed += ev.GapSeconds
			if ev.GapSeconds == 0 {
				zeroGaps++
			}
			if ev.Item < 0 || ev.Item >= 4 {
				t.Fatalf("%s: item %d out of range", arrival, ev.Item)
			}
		}
		rate := float64(n) / elapsed
		if math.Abs(rate-500)/500 > 0.1 {
			t.Errorf("%s: long-run rate %.1f updates/s, want ~500", arrival, rate)
		}
		// Two of every three updates ride inside a burst.
		if want := n * 2 / 3; zeroGaps != want {
			t.Errorf("%s: %d zero-gap events, want %d", arrival, zeroGaps, want)
		}
	}
}

// TestChurnStreamVersions checks per-item versions count each item's
// updates monotonically from 1.
func TestChurnStreamVersions(t *testing.T) {
	cs, err := NewChurnStream(ChurnSpec{Seed: 3, UpdatesPerSec: 100, Items: 5})
	if err != nil {
		t.Fatal(err)
	}
	last := make(map[int]uint64)
	for i := 0; i < 200; i++ {
		ev := cs.Next()
		if ev.Version != last[ev.Item]+1 {
			t.Fatalf("item %d jumped from version %d to %d", ev.Item, last[ev.Item], ev.Version)
		}
		last[ev.Item] = ev.Version
	}
}

// TestChurnSpecValidation covers the rejection paths of Normalize.
func TestChurnSpecValidation(t *testing.T) {
	bad := []ChurnSpec{
		{UpdatesPerSec: 0},
		{UpdatesPerSec: 100, Arrival: "onoff"},
		{UpdatesPerSec: 100, Burst: -1},
		{UpdatesPerSec: 100, Items: -2},
		{UpdatesPerSec: 100, WithdrawFraction: 1},
	}
	for _, sp := range bad {
		if _, err := NewChurnStream(sp); err == nil {
			t.Errorf("spec %+v accepted, want error", sp)
		}
	}
	if _, err := NewChurnStream(ChurnSpec{UpdatesPerSec: 100}); err != nil {
		t.Errorf("minimal spec rejected: %v", err)
	}
}
