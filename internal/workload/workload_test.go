package workload

import (
	"testing"
	"testing/quick"
)

func TestSourceDeterministic(t *testing.T) {
	a, b := NewSource(42), NewSource(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewSource(43)
	same := true
	a = NewSource(42)
	for i := 0; i < 10; i++ {
		if a.Next() != c.Next() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

// TestSourceSequencePinned pins the SplitMix64 output so application
// traces (and with them the claims-test throughput ratios) cannot drift
// when the randomness surface is refactored.
func TestSourceSequencePinned(t *testing.T) {
	s := NewSource(1234)
	want := []uint64{
		0xbb0cf61b2f181cdb, 0x97c7a1364df06524, 0x33befae49bc025da,
	}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Fatalf("Next()[%d] = %#x, want %#x (SplitMix64 sequence changed)", i, got, w)
		}
	}
}

func TestPrefixMatchProperty(t *testing.T) {
	r := NewSource(7)
	f := func(seed uint64) bool {
		pfs := NewSource(seed).GenPrefixes(8)
		for _, pf := range pfs {
			if !pf.Match(r.AddrInPrefix(pf)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGenPrefixesDistinctNextHops(t *testing.T) {
	pfs := NewSource(1).GenPrefixes(32)
	seen := map[uint32]bool{}
	for _, pf := range pfs {
		if seen[pf.NextHop] {
			t.Fatalf("duplicate next hop %d", pf.NextHop)
		}
		seen[pf.NextHop] = true
		if pf.Len < 8 || pf.Len > 24 {
			t.Fatalf("prefix length %d out of range", pf.Len)
		}
		mask := ^uint32(0) << uint(32-pf.Len)
		if pf.Addr&^mask != 0 {
			t.Fatalf("prefix %08x has host bits set", pf.Addr)
		}
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{OfferedGbps: 0},
		{OfferedGbps: -1},
		{OfferedGbps: 1, Arrival: "burst"},
		{OfferedGbps: 1, Sizes: "jumbo"},
		{OfferedGbps: 1, Flows: -3},
		{OfferedGbps: 1, ZipfS: -0.5},
		{OfferedGbps: 1, MaxFrame: 32},
		{OfferedGbps: 1, Arrival: ArrivalOnOff, PeakGbps: 0.5},
	}
	for i, sp := range bad {
		if _, err := sp.Normalize(); err == nil {
			t.Errorf("case %d: %+v normalized without error", i, sp)
		}
	}
	sp, err := Spec{Seed: 9, OfferedGbps: 2}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if sp.Arrival != ArrivalFixed || sp.Sizes != SizesMin ||
		sp.Flows != 256 || sp.MaxFrame != DefaultMaxFrame {
		t.Errorf("defaults not applied: %+v", sp)
	}
}

// TestStreamDeterminism: every arrival process replays the identical
// packet sequence for the same seed.
func TestStreamDeterminism(t *testing.T) {
	for _, arrival := range []string{ArrivalFixed, ArrivalPoisson, ArrivalOnOff} {
		spec := Spec{Seed: 77, Arrival: arrival, Sizes: SizesIMIX,
			OfferedGbps: 2, ZipfS: 1.1}
		a, err := NewStream(spec)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := NewStream(spec)
		for i := 0; i < 10_000; i++ {
			pa, pb := a.Next(), b.Next()
			if pa != pb {
				t.Fatalf("%s: packet %d diverged: %+v vs %+v", arrival, i, pa, pb)
			}
		}
	}
}

// TestStreamMeanRate: the long-run bit rate of each arrival process
// converges to the offered load.
func TestStreamMeanRate(t *testing.T) {
	for _, arrival := range []string{ArrivalFixed, ArrivalPoisson, ArrivalOnOff} {
		for _, sizes := range []string{SizesMin, SizesIMIX, SizesTrimodal} {
			st, err := NewStream(Spec{Seed: 5, Arrival: arrival, Sizes: sizes,
				OfferedGbps: 2.5})
			if err != nil {
				t.Fatal(err)
			}
			var bits, secs float64
			for i := 0; i < 200_000; i++ {
				p := st.Next()
				bits += float64(p.FrameBytes * 8)
				secs += p.GapSeconds
			}
			rate := bits / secs / 1e9
			if rate < 2.5*0.98 || rate > 2.5*1.02 {
				t.Errorf("%s/%s: long-run rate %.3f Gbps, want 2.5 +/- 2%%",
					arrival, sizes, rate)
			}
		}
	}
}

// TestZipfSkew: with s > 0 the most popular flow dominates its uniform
// share; with s = 0 the distribution is near-uniform.
func TestZipfSkew(t *testing.T) {
	count := func(s float64) []int {
		st, err := NewStream(Spec{Seed: 3, OfferedGbps: 1, Flows: 64, ZipfS: s})
		if err != nil {
			t.Fatal(err)
		}
		n := make([]int, 64)
		for i := 0; i < 50_000; i++ {
			n[st.Next().Flow]++
		}
		return n
	}
	skewed := count(1.2)
	if skewed[0] < 5*50_000/64 {
		t.Errorf("Zipf s=1.2: top flow got %d of 50000, want heavy skew", skewed[0])
	}
	for f := 1; f < 64; f++ {
		if skewed[f] > skewed[0] {
			t.Errorf("flow %d more popular than rank 1 under Zipf", f)
		}
	}
	uniform := count(0)
	share := 50_000 / 64
	if uniform[0] > 2*share || uniform[63] < share/2 {
		t.Errorf("s=0 not near-uniform: first %d last %d (share %d)",
			uniform[0], uniform[63], share)
	}
}

// TestSizeMixFrequencies: observed class frequencies match the mix
// weights and every frame respects the buffer clamp.
func TestSizeMixFrequencies(t *testing.T) {
	st, err := NewStream(Spec{Seed: 11, OfferedGbps: 1, Sizes: SizesTrimodal})
	if err != nil {
		t.Fatal(err)
	}
	freq := map[int]int{}
	const n = 100_000
	for i := 0; i < n; i++ {
		p := st.Next()
		if p.FrameBytes < 64 || p.FrameBytes > DefaultMaxFrame {
			t.Fatalf("frame %dB outside [64,%d]", p.FrameBytes, DefaultMaxFrame)
		}
		freq[p.FrameBytes]++
	}
	// Trimodal clamps 512 and 1500 to 192: 50% at 64B, 50% at 192B.
	if f := float64(freq[64]) / n; f < 0.48 || f > 0.52 {
		t.Errorf("64B frequency %.3f, want ~0.50", f)
	}
	if f := float64(freq[192]) / n; f < 0.48 || f > 0.52 {
		t.Errorf("192B frequency %.3f, want ~0.50", f)
	}
}
