// Package workload is the evaluation's traffic engine: one seeded
// randomness source for every experiment, and deterministic open-loop
// packet streams composed from an arrival process (fixed-rate, Poisson,
// ON/OFF bursty), a packet-size mix (64B, IMIX, trimodal) and Zipf flow
// locality. The runtime plays a stream into the IXP model's media
// interface; the harness sweeps streams across offered loads to produce
// load–latency curves.
package workload

import "shangrila/internal/trace"

// Source is the single seeded-randomness entry point for experiments: a
// small deterministic PRNG (SplitMix64) plus the table/address generators
// the benchmark applications draw from. The 64-bit output sequence for a
// given seed is fixed — application traces, route tables and workload
// streams are reproducible across runs and platforms.
type Source struct{ state uint64 }

// NewSource seeds a source.
func NewSource(seed uint64) *Source { return &Source{state: seed} }

// Next returns the next 64-bit value.
func (s *Source) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n).
func (s *Source) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(s.Next() % uint64(n))
}

// Uint32 returns a uniform 32-bit value.
func (s *Source) Uint32() uint32 { return uint32(s.Next()) }

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.Next()>>11) / (1 << 53)
}

// GenPrefixes builds n deterministic prefixes with lengths in [8,24] and
// distinct next hops.
func (s *Source) GenPrefixes(n int) []trace.Prefix {
	out := make([]trace.Prefix, n)
	for i := range out {
		plen := 8 + s.Intn(17)
		addr := s.Uint32()
		mask := ^uint32(0) << uint(32-plen)
		out[i] = trace.Prefix{Addr: addr & mask, Len: plen, NextHop: uint32(i + 1)}
	}
	return out
}

// AddrInPrefix returns a host address inside pf (deterministic per call).
func (s *Source) AddrInPrefix(pf trace.Prefix) uint32 {
	host := s.Uint32()
	if pf.Len >= 32 {
		return pf.Addr
	}
	mask := ^uint32(0) << uint(32-pf.Len)
	return (pf.Addr & mask) | (host &^ mask)
}
