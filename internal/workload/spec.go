package workload

import "fmt"

// Arrival processes.
const (
	ArrivalFixed   = "fixed"   // constant inter-arrival gap at the offered rate
	ArrivalPoisson = "poisson" // exponential gaps with the same mean
	ArrivalOnOff   = "onoff"   // bursts at PeakGbps separated by idle periods
)

// Packet-size mixes. Nominal sizes larger than MaxFrame are clamped to
// the buffer limit (the model's 256B buffers with 64B headroom hold 192B
// frames), preserving the mix's small/large shape.
const (
	SizesMin      = "64"       // minimum-size 64B frames (the paper's worst case)
	SizesIMIX     = "imix"     // classic 7:4:1 IMIX (64/594/1518 nominal)
	SizesTrimodal = "trimodal" // 50/40/10% at 64/512/1500 nominal
)

// DefaultMaxFrame is the largest wire frame the model's packet buffers
// hold: 256B buffers minus 64B headroom.
const DefaultMaxFrame = 192

// Spec describes a deterministic traffic stream: one seed, an arrival
// process, a size mix and a Zipf flow population. The zero values of the
// optional fields pick documented defaults (see Normalize).
type Spec struct {
	Seed        uint64  `json:"seed"`
	Arrival     string  `json:"arrival"`
	Sizes       string  `json:"sizes"`
	OfferedGbps float64 `json:"offered_gbps"`
	// Flows is the flow population size; ZipfS is the skew exponent of
	// the flow popularity distribution (0 = uniform).
	Flows int     `json:"flows,omitempty"`
	ZipfS float64 `json:"zipf_s,omitempty"`
	// BurstMean is the mean packets per ON burst and PeakGbps the rate
	// inside a burst (ArrivalOnOff only).
	BurstMean float64 `json:"burst_mean,omitempty"`
	PeakGbps  float64 `json:"peak_gbps,omitempty"`
	// MaxFrame clamps nominal frame sizes (0 = DefaultMaxFrame).
	MaxFrame int `json:"max_frame,omitempty"`
}

// Normalize fills defaults and validates, returning the effective spec.
func (sp Spec) Normalize() (Spec, error) {
	if sp.Arrival == "" {
		sp.Arrival = ArrivalFixed
	}
	if sp.Sizes == "" {
		sp.Sizes = SizesMin
	}
	if sp.Flows == 0 {
		sp.Flows = 256
	}
	if sp.MaxFrame == 0 {
		sp.MaxFrame = DefaultMaxFrame
	}
	if sp.BurstMean == 0 {
		sp.BurstMean = 16
	}
	if sp.Arrival == ArrivalOnOff && sp.PeakGbps == 0 {
		sp.PeakGbps = 2 * sp.OfferedGbps
	}
	switch sp.Arrival {
	case ArrivalFixed, ArrivalPoisson, ArrivalOnOff:
	default:
		return sp, fmt.Errorf("workload: unknown arrival process %q", sp.Arrival)
	}
	switch sp.Sizes {
	case SizesMin, SizesIMIX, SizesTrimodal:
	default:
		return sp, fmt.Errorf("workload: unknown size mix %q", sp.Sizes)
	}
	switch {
	case sp.OfferedGbps <= 0:
		return sp, fmt.Errorf("workload: offered load must be positive (got %v Gbps)", sp.OfferedGbps)
	case sp.Flows < 1:
		return sp, fmt.Errorf("workload: flow population must be >= 1 (got %d)", sp.Flows)
	case sp.ZipfS < 0:
		return sp, fmt.Errorf("workload: Zipf exponent must be >= 0 (got %v)", sp.ZipfS)
	case sp.MaxFrame < 64:
		return sp, fmt.Errorf("workload: max frame must be >= 64 bytes (got %d)", sp.MaxFrame)
	case sp.BurstMean < 1:
		return sp, fmt.Errorf("workload: burst mean must be >= 1 packet (got %v)", sp.BurstMean)
	case sp.Arrival == ArrivalOnOff && sp.PeakGbps <= sp.OfferedGbps:
		return sp, fmt.Errorf("workload: ON/OFF peak rate %v Gbps must exceed offered %v",
			sp.PeakGbps, sp.OfferedGbps)
	}
	return sp, nil
}

// sizeClass is one point of a size mix.
type sizeClass struct {
	bytes  int
	weight float64
}

// sizeMix returns the (clamped) classes of the spec's mix.
func (sp Spec) sizeMix() []sizeClass {
	clamp := func(b int) int {
		if b > sp.MaxFrame {
			return sp.MaxFrame
		}
		return b
	}
	switch sp.Sizes {
	case SizesIMIX:
		return []sizeClass{
			{clamp(64), 7.0 / 12},
			{clamp(594), 4.0 / 12},
			{clamp(1518), 1.0 / 12},
		}
	case SizesTrimodal:
		return []sizeClass{
			{clamp(64), 0.5},
			{clamp(512), 0.4},
			{clamp(1500), 0.1},
		}
	default:
		return []sizeClass{{64, 1}}
	}
}
