package driver

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"shangrila/internal/aggregate"
	"shangrila/internal/baker/types"
	"shangrila/internal/cg"
	"shangrila/internal/ir"
	"shangrila/internal/metrics"
	"shangrila/internal/opt/soar"
	"shangrila/internal/profiler"
)

// FactKind identifies one cached analysis result in the compilation fact
// base. Passes declare the facts they require; the pass manager makes them
// available before Run and drops the ones a transform invalidates.
type FactKind int

const (
	// FactProfile is the functional profiler's Stats. It is produced by
	// the profile pass (there is no on-demand provider: profiling needs
	// the configured trace and control calls).
	FactProfile FactKind = iota
	// FactSOAR is the whole-program SOAR analysis. It has an on-demand
	// provider (soar.Analyze, which also annotates the IR in place), so
	// requiring it after an invalidation re-analyzes lazily.
	FactSOAR
	// FactPlan is the aggregation plan together with its channel
	// classification and merged per-aggregate programs, produced by the
	// aggregate pass.
	FactPlan
	numFacts
)

var factNames = [...]string{"profile", "soar", "plan"}

func (k FactKind) String() string {
	if k < 0 || int(k) >= len(factNames) {
		return fmt.Sprintf("fact(%d)", int(k))
	}
	return factNames[k]
}

// facts is the typed analysis-fact cache threaded through a compilation.
// It replaces the ad-hoc locals the monolithic pipeline used to hand from
// stage to stage.
type facts struct {
	valid   [numFacts]bool
	profile *profiler.Stats
	soar    *soar.Stats
	plan    *aggregate.Plan
	classes map[*types.Channel]aggregate.ChannelClass
}

// Context is the state a Pass operates on: the whole program, the merged
// per-aggregate programs once aggregation has run, the accumulating report
// and the fact base.
type Context struct {
	Cfg    Config
	Prog   *ir.Program
	Merged []*aggregate.Merged
	Report *Report
	// Image is set by the codegen pass.
	Image *cg.Image

	facts facts
	reg   *metrics.Registry

	// factGuard, when non-nil, is the set of facts the running pass
	// declared in Requires (or produced itself during this Run). Reading
	// any other fact through the typed accessors records a violation:
	// that is the undeclared dependency that would let an incremental
	// recompile silently reuse a stale analysis. Installed around
	// Pass.Run only — ensure and the manager itself read freely.
	factGuard map[FactKind]bool
	guardErr  error
	// factReads logs which facts the current pass consulted (including
	// the exempt optional SOARIfValid read). The incremental Session uses
	// it to record each cached pass result's true input set, so reuse is
	// keyed to the exact fact values a pass observed, not just its
	// declared Requires.
	factReads [numFacts]bool
}

// noteFactRead enforces the Requires contract while a pass runs.
// SOARIfValid is deliberately not routed here: it is the documented
// optional read (the code generator forwards SOAR facts when a pipeline
// happens to have them and passes nil otherwise), so it cannot create a
// hidden hard dependency.
func (ctx *Context) noteFactRead(k FactKind) {
	ctx.factReads[k] = true
	if ctx.factGuard == nil || ctx.factGuard[k] {
		return
	}
	if ctx.guardErr == nil {
		ctx.guardErr = fmt.Errorf("undeclared read of %v fact (missing Requires declaration)", k)
	}
}

// Profile returns the cached profiler stats (nil before the profile pass
// has run; passes that declare FactProfile in Requires never see nil).
func (ctx *Context) Profile() *profiler.Stats {
	ctx.noteFactRead(FactProfile)
	return ctx.facts.profile
}

// SetProfile installs the profiler stats fact.
func (ctx *Context) SetProfile(s *profiler.Stats) {
	ctx.facts.profile = s
	ctx.facts.valid[FactProfile] = true
	if ctx.factGuard != nil {
		ctx.factGuard[FactProfile] = true // producer may read its own fact
	}
}

// SOAR returns the whole-program SOAR facts, analyzing (and annotating the
// IR) on demand when the cache is empty or invalidated.
func (ctx *Context) SOAR() *soar.Stats {
	ctx.noteFactRead(FactSOAR)
	if !ctx.facts.valid[FactSOAR] {
		ctx.facts.soar = soar.Analyze(ctx.Prog)
		ctx.facts.valid[FactSOAR] = true
	}
	return ctx.facts.soar
}

// SOARIfValid returns the cached SOAR facts without computing them: nil at
// levels whose pipeline never analyzes (the code generator passes nil on).
// It is exempt from the Requires guard — an optional read by design — but
// still logged in factReads so incremental reuse keys on it.
func (ctx *Context) SOARIfValid() *soar.Stats {
	ctx.factReads[FactSOAR] = true
	if !ctx.facts.valid[FactSOAR] {
		return nil
	}
	return ctx.facts.soar
}

// Plan returns the aggregation plan and channel classification facts.
func (ctx *Context) Plan() (*aggregate.Plan, map[*types.Channel]aggregate.ChannelClass) {
	ctx.noteFactRead(FactPlan)
	return ctx.facts.plan, ctx.facts.classes
}

// SetPlan installs the aggregation facts.
func (ctx *Context) SetPlan(p *aggregate.Plan, classes map[*types.Channel]aggregate.ChannelClass) {
	ctx.facts.plan = p
	ctx.facts.classes = classes
	ctx.facts.valid[FactPlan] = true
	if ctx.factGuard != nil {
		ctx.factGuard[FactPlan] = true
	}
}

// Invalidate drops cached facts (a transform that moved packet accesses
// invalidates FactSOAR, and the next pass requiring it re-analyzes).
func (ctx *Context) Invalidate(kinds ...FactKind) {
	for _, k := range kinds {
		ctx.facts.valid[k] = false
	}
}

// ensure makes one required fact available, computing it when an on-demand
// provider exists and failing loudly on a mis-ordered pipeline otherwise.
func (ctx *Context) ensure(k FactKind) error {
	if ctx.facts.valid[k] {
		return nil
	}
	if k == FactSOAR {
		ctx.SOAR()
		return nil
	}
	return fmt.Errorf("required %v fact not produced by an earlier pass", k)
}

// Pass is one stage of the compilation pipeline.
type Pass interface {
	// Name is the stable pass identifier used in Report.Passes, metrics
	// names and -dump-ir selection.
	Name() string
	// Requires lists the analysis facts the manager must make available
	// before Run.
	Requires() []FactKind
	// Invalidates lists the facts Run leaves stale.
	Invalidates() []FactKind
	Run(*Context) error
}

// afterSizer lets a pass report a different "after" size than the IR
// instruction count (codegen reports generated CGIR instructions).
type afterSizer interface {
	AfterSize(*Context) int
}

// PassInfo is one registry entry: the pass name, the paper stage it
// implements, the levels at which the default pipeline schedules it, and
// its constructor.
type PassInfo struct {
	Name string
	// Stage maps the pass to the paper's Figure 5 pipeline stage.
	Stage string
	// Enabled reports whether the default pipeline schedules the pass at
	// the given cumulative level.
	Enabled func(Level) bool
	// New builds the pass for one compilation.
	New func(cfg Config) Pass
}

var passRegistry []PassInfo

// RegisterPass adds a pass to the registry in pipeline order. It panics on
// a duplicate name: names key metrics, dumps and report rows.
func RegisterPass(info PassInfo) {
	for _, p := range passRegistry {
		if p.Name == info.Name {
			panic(fmt.Sprintf("driver: duplicate pass %q", info.Name))
		}
	}
	passRegistry = append(passRegistry, info)
}

// Passes returns the registered passes in pipeline order.
func Passes() []PassInfo {
	return append([]PassInfo(nil), passRegistry...)
}

// PassNames returns every registered pass name in pipeline order.
func PassNames() []string {
	names := make([]string, len(passRegistry))
	for i, p := range passRegistry {
		names[i] = p.Name
	}
	return names
}

// PipelineFor builds the declarative pipeline for a configuration from the
// pass registry: every registered pass enabled at cfg.Level, in
// registration order.
func PipelineFor(cfg Config) []Pass {
	var out []Pass
	for _, info := range passRegistry {
		if info.Enabled == nil || info.Enabled(cfg.Level) {
			out = append(out, info.New(cfg))
		}
	}
	return out
}

// VerifyMode controls post-pass IR verification.
type VerifyMode int

const (
	// VerifyAuto verifies when the process is a `go test` binary and
	// skips verification otherwise (the default: tests always check
	// every pass, production compiles stay fast).
	VerifyAuto VerifyMode = iota
	// VerifyOn always verifies after every pass.
	VerifyOn
	// VerifyOff never verifies.
	VerifyOff
)

func (m VerifyMode) enabled() bool {
	switch m {
	case VerifyOn:
		return true
	case VerifyOff:
		return false
	}
	return testing.Testing()
}

// runner executes a pipeline over a Context: per-pass timing, IR size
// deltas, post-pass verification, metrics and dump hooks.
type runner struct {
	ctx    *Context
	verify bool
	// dumpSeq numbers dump files so pipeline order survives in a listing.
	dumpSeq int
}

func newRunner(prog *ir.Program, cfg Config) *runner {
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &runner{
		ctx: &Context{
			Cfg:    cfg,
			Prog:   prog,
			Report: &Report{Level: cfg.Level},
			reg:    reg,
		},
		verify: cfg.VerifyIR.enabled(),
	}
}

// size counts whole-program IR instructions: the top-level program plus
// every merged aggregate body.
func (r *runner) size() int {
	n := irSize(r.ctx.Prog)
	for _, m := range r.ctx.Merged {
		n += irSize(m.Prog)
	}
	return n
}

// runPass executes one pass: ensure requirements, run, invalidate, verify,
// record timing and metrics, dump when selected. All within the pass's
// timed window except verification, which is accounted separately.
func (r *runner) runPass(p Pass) error {
	ctx := r.ctx
	name := p.Name()
	before := r.size()
	t0 := time.Now()
	for _, k := range p.Requires() {
		if err := ctx.ensure(k); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	ctx.factGuard = make(map[FactKind]bool, len(p.Requires()))
	for _, k := range p.Requires() {
		ctx.factGuard[k] = true
	}
	ctx.guardErr = nil
	err := p.Run(ctx)
	guardErr := ctx.guardErr
	ctx.factGuard, ctx.guardErr = nil, nil
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	if guardErr != nil {
		return fmt.Errorf("%s: %w", name, guardErr)
	}
	ctx.Invalidate(p.Invalidates()...)
	nanos := time.Since(t0).Nanoseconds()

	after := r.size()
	if s, ok := p.(afterSizer); ok {
		after = s.AfterSize(ctx)
	}

	var verifyNanos int64
	if r.verify {
		v0 := time.Now()
		if err := r.verifyIR(); err != nil {
			return fmt.Errorf("after %s: IR verification failed: %w", name, err)
		}
		verifyNanos = time.Since(v0).Nanoseconds()
	}

	ctx.Report.Passes = append(ctx.Report.Passes, PassTiming{
		Pass:         name,
		Nanos:        nanos,
		InstrsBefore: before,
		InstrsAfter:  after,
		VerifyNanos:  verifyNanos,
	})
	r.reg().Counter(metrics.PassRuns(name)).Inc()
	r.reg().Counter(metrics.PassNanos(name)).Add(nanos)
	r.reg().Counter(metrics.PassVerifyNanos(name)).Add(verifyNanos)
	r.reg().Gauge(metrics.PassSizeDelta(name)).Set(float64(after - before))

	if err := r.dump(name); err != nil {
		return fmt.Errorf("%s: dump: %w", name, err)
	}
	return nil
}

func (r *runner) reg() *metrics.Registry { return r.ctx.reg }

// verifyIR checks the whole program and every merged aggregate body.
func (r *runner) verifyIR() error {
	if err := ir.Verify(r.ctx.Prog); err != nil {
		return err
	}
	for i, m := range r.ctx.Merged {
		if err := ir.Verify(m.Prog); err != nil {
			return fmt.Errorf("aggregate %d (%v): %w", i, m.Agg.PPFs, err)
		}
	}
	return nil
}

// dump prints the current IR when the pass matches Config.DumpPass ("all"
// selects every pass). With DumpDir set, each pass writes one file named
// <prefix>-<seq>-<pass>.ir; otherwise output goes to DumpWriter (default
// stdout).
func (r *runner) dump(pass string) error {
	cfg := r.ctx.Cfg
	if cfg.DumpPass == "" || (cfg.DumpPass != "all" && cfg.DumpPass != pass) {
		return nil
	}
	prefix := cfg.DumpPrefix
	if prefix == "" {
		prefix = "prog"
	}
	var w io.Writer
	var closer io.Closer
	if cfg.DumpDir != "" {
		if err := os.MkdirAll(cfg.DumpDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(cfg.DumpDir,
			fmt.Sprintf("%s-%02d-%s.ir", prefix, r.dumpSeq, pass)))
		if err != nil {
			return err
		}
		w = f
		closer = f
	} else if cfg.DumpWriter != nil {
		w = cfg.DumpWriter
	} else {
		w = os.Stdout
	}
	r.dumpSeq++
	err := writeDump(w, pass, prefix, r.ctx)
	if closer != nil {
		if cerr := closer.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// writeDump renders one dump point: the whole program, then every merged
// aggregate body, all in deterministic order (ir.Fprint).
func writeDump(w io.Writer, pass, prefix string, ctx *Context) error {
	if _, err := fmt.Fprintf(w, ";; %s after pass %s\n", prefix, pass); err != nil {
		return err
	}
	if err := ir.Fprint(w, ctx.Prog); err != nil {
		return err
	}
	for i, m := range ctx.Merged {
		if _, err := fmt.Fprintf(w, ";; aggregate %d (%s) %v\n",
			i, m.Agg.Target, m.Agg.PPFs); err != nil {
			return err
		}
		if err := ir.Fprint(w, m.Prog); err != nil {
			return err
		}
	}
	return nil
}
