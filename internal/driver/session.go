// The incremental compilation service. A Session keeps the typed fact
// base and a per-pass result cache alive across compiles, so a
// control-plane policy delta recompiles in the time of the passes it
// actually invalidated rather than a cold pipeline run. This is the
// compile-server precedent ("A Fast Compiler for NetKAT"): the compiler
// sits in the control loop, so recompilation latency is a data-plane
// metric, not a build step.
//
// Reuse is keyed three ways, all recorded when a pass executes:
//
//   - IR identity: a hash of the deterministic ir.Fprint rendering of the
//     whole program plus every merged aggregate body, chained pass to
//     pass. A cached result is only considered when the IR entering the
//     pass is bit-identical to what it saw when it ran.
//   - Fact reads: the exact fact values (by identity) the pass consulted,
//     logged through the typed accessors — including the optional
//     SOARIfValid read. Requires is the declared contract (enforced by
//     the fact guard in runPass); the read log is the measured one.
//   - Invalidation stamps: each Delta advances a sequence number and
//     stamps the facts it declares invalid. A cached result that produced
//     a fact older than the fact's last invalidation stamp re-runs.
//
// Because reuse demands bit-identical inputs, an incremental compile is
// bit-identical to a cold compile of the same configuration — the
// differential tests pin this per app × level. The one escape hatch is
// deliberate: a Delta that under-declares (say, invalidates only FactPlan
// while also adding controls) keeps the stale profile by construction.
// That is the same trade the paper's delayed-update cache makes — staleness
// bounded by an explicit declaration — and it is opt-in per delta.
package driver

import (
	"fmt"
	"hash/fnv"

	"shangrila/internal/aggregate"
	"shangrila/internal/cg"
	"shangrila/internal/ir"
	"shangrila/internal/metrics"
	"shangrila/internal/opt/pac"
	"shangrila/internal/opt/phr"
	"shangrila/internal/opt/soar"
	"shangrila/internal/opt/swc"
	"shangrila/internal/packet"
	"shangrila/internal/profiler"
)

// Delta is one control-plane policy change applied to a Session between
// compiles.
type Delta struct {
	// AddControls appends control calls to the session's Config.Controls
	// (the boot-time table population the profiler replays).
	AddControls []profiler.Control
	// Invalidates lists the facts the delta makes stale. Nil means
	// {FactProfile}: new control state changes the training profile, and
	// everything derived from it re-runs as needed. Declaring less is the
	// explicit stale-fact trade (profile reuse under churn); the
	// invalidation-stamp machinery guarantees a fact can never be reused
	// past its declared invalidation.
	Invalidates []FactKind
}

// SessionStats counts a session's incremental behavior.
type SessionStats struct {
	// Compiles is the number of Compile/Recompile calls that ran.
	Compiles int
	// Incremental counts compiles that reused at least one cached pass.
	Incremental int
	// PassesExecuted and PassesSkipped accumulate across all compiles.
	PassesExecuted int
	PassesSkipped  int
	// LastExecuted and LastSkipped name the passes of the most recent
	// compile, in pipeline order.
	LastExecuted []string
	LastSkipped  []string
}

// factRead records how one fact looked when a pass consulted it: absent,
// or present as a specific value (compared by identity — every producer
// builds a fresh object).
type factRead struct {
	valid bool
	val   any
}

// snapshot is the deep-copied compilation state after one pass: the
// working IR (program + merged aggregate views) and the fact base. Fact
// values are shared by pointer (producers never mutate a published fact),
// but the IR is cloned both into and out of the cache, so neither later
// passes nor callers can disturb a cached state.
type snapshot struct {
	prog   *ir.Program
	merged []*aggregate.Merged
	facts  facts
}

// reportPatch replays the report/image fields one pass wrote, so a skipped
// pass still yields a complete Report.
type reportPatch struct {
	profile   *profiler.Stats
	soarStats *soar.Stats
	pacStats  *pac.Stats
	phrStats  *phr.Stats
	plan      *aggregate.Plan
	swcCands  []*swc.Candidate
	codeSizes []int
	image     *cg.Image

	setProfile, setSOAR, setPAC, setPHR bool
	setPlan, setSWC, setCode, setImage  bool
}

// passEntry is one cached pass execution.
type passEntry struct {
	name       string
	inputHash  uint64
	outputHash uint64
	// reads maps each fact the pass consulted to the state it observed.
	reads map[FactKind]factRead
	// produced marks facts this execution computed (including on-demand
	// ensure computation during the requirement phase); prodSeq is the
	// delta sequence number current at that time.
	produced    [numFacts]bool
	prodSeq     [numFacts]uint64
	prodVal     [numFacts]any
	invalidates []FactKind
	snap        *snapshot
	patch       reportPatch
	timing      PassTiming
}

// Session is a long-lived incremental compiler for one program at one
// configuration. It retains the fact base and per-pass snapshots across
// compiles; Recompile applies a policy delta and re-runs only the passes
// whose inputs — IR, consulted fact values, or invalidation stamps —
// actually changed. Not safe for concurrent use.
type Session struct {
	cfg      Config
	base     *ir.Program // pristine lowered IR, cloned per compile
	baseHash uint64
	// trace is a pristine deep copy of cfg.ProfileTrace: interpreting the
	// trace mutates packets in place (the apps rewrite MACs, TTLs,
	// labels), so every profile re-run gets fresh clones — a recompile
	// must profile the same packets a cold compile would.
	trace []*packet.Packet
	reg   *metrics.Registry

	entries []*passEntry // indexed by pipeline position
	// deltaSeq numbers Delta applications; lastInval stamps each fact
	// with the sequence of the last delta that declared it invalid.
	deltaSeq  uint64
	lastInval [numFacts]uint64

	stats SessionStats
}

// NewSession clones prog into a pristine base and prepares an incremental
// session. cfg.Metrics, when nil, becomes a session-private registry that
// accumulates compile.pass.* and compile.session.* counters across
// compiles.
func NewSession(prog *ir.Program, cfg Config) (*Session, error) {
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	base := ir.CloneProgram(prog)
	h, err := hashState(base, nil)
	if err != nil {
		return nil, fmt.Errorf("session: %w", err)
	}
	return &Session{
		cfg:      cfg,
		base:     base,
		baseHash: h,
		trace:    clonePackets(cfg.ProfileTrace),
		reg:      cfg.Metrics,
		entries:  make([]*passEntry, len(PipelineFor(cfg))),
	}, nil
}

// clonePackets deep-copies a profile trace.
func clonePackets(tr []*packet.Packet) []*packet.Packet {
	if tr == nil {
		return nil
	}
	out := make([]*packet.Packet, len(tr))
	for i, p := range tr {
		out[i] = p.Clone()
	}
	return out
}

// Config returns the session's current configuration (Controls grow as
// deltas are applied).
func (s *Session) Config() Config { return s.cfg }

// Stats returns the session's cumulative incremental-compilation counters.
func (s *Session) Stats() SessionStats {
	cp := s.stats
	cp.LastExecuted = append([]string(nil), s.stats.LastExecuted...)
	cp.LastSkipped = append([]string(nil), s.stats.LastSkipped...)
	return cp
}

// applyDelta mutates the session configuration and stamps the declared
// invalidations.
func (s *Session) applyDelta(d Delta) {
	s.deltaSeq++
	inv := d.Invalidates
	if inv == nil {
		inv = []FactKind{FactProfile}
	}
	for _, k := range inv {
		if k >= 0 && k < numFacts {
			s.lastInval[k] = s.deltaSeq
		}
	}
	if len(d.AddControls) > 0 {
		ctrls := make([]profiler.Control, 0, len(s.cfg.Controls)+len(d.AddControls))
		ctrls = append(ctrls, s.cfg.Controls...)
		ctrls = append(ctrls, d.AddControls...)
		s.cfg.Controls = ctrls
	}
}

// Recompile applies a policy delta and compiles, reusing every cached pass
// whose inputs the delta did not touch.
func (s *Session) Recompile(d Delta) (*Result, error) {
	s.applyDelta(d)
	return s.Compile()
}

// Compile runs the session's pipeline. The first call is a cold compile
// that populates the cache; later calls walk the pipeline reusing cached
// results until an input diverges, re-execute from there (with post-pass
// IR verification exactly as a cold compile), and re-attach to the cache
// as soon as the state converges again — e.g. a profile-invalidating
// delta re-profiles, reuses the untouched scalar/SOAR/PAC transforms, and
// resumes execution at aggregation.
func (s *Session) Compile() (*Result, error) {
	pipeline := PipelineFor(s.cfg)
	if len(pipeline) != len(s.entries) {
		return nil, fmt.Errorf("session: pipeline changed size (%d != %d)", len(pipeline), len(s.entries))
	}
	cfgRun := s.cfg
	cfgRun.ProfileTrace = clonePackets(s.trace)
	r := newRunner(nil, cfgRun)
	ctx := r.ctx

	// live fact state at the walk position, and the identity of each
	// valid fact's value.
	var live facts
	curHash := s.baseHash
	var pending *snapshot // state to materialize from; nil = base
	materialized := false
	executed, skipped := 0, 0
	var lastExec, lastSkip []string

	for i, p := range pipeline {
		ent := s.entries[i]
		if ent != nil && ent.name == p.Name() && s.reusable(ent, curHash, &live) {
			// Skip: replay the cached result's effects.
			applyTransition(&live, ent)
			ent.patch.apply(ctx)
			curHash = ent.outputHash
			pending = ent.snap
			materialized = false
			row := ent.timing
			row.Nanos, row.VerifyNanos, row.Skipped = 0, 0, true
			ctx.Report.Passes = append(ctx.Report.Passes, row)
			s.reg.Counter(metrics.PassSkips(ent.name)).Inc()
			skipped++
			lastSkip = append(lastSkip, ent.name)
			continue
		}

		if !materialized {
			if pending == nil {
				ctx.Prog = ir.CloneProgram(s.base)
				ctx.Merged = nil
			} else {
				ctx.Prog = ir.CloneProgram(pending.prog)
				ctx.Merged = cloneMergedList(pending.merged)
			}
			materialized = true
		}
		ctx.facts = live

		preFacts := live
		preReport := *ctx.Report
		preImage := ctx.Image
		ctx.factReads = [numFacts]bool{}

		if err := r.runPass(p); err != nil {
			return nil, err
		}

		ent = &passEntry{
			name:        p.Name(),
			inputHash:   curHash,
			reads:       map[FactKind]factRead{},
			invalidates: p.Invalidates(),
			timing:      ctx.Report.Passes[len(ctx.Report.Passes)-1],
		}
		for k := FactKind(0); k < numFacts; k++ {
			prodNow := ctx.facts.valid[k] &&
				(!preFacts.valid[k] || factVal(&ctx.facts, k) != factVal(&preFacts, k))
			if prodNow {
				ent.produced[k] = true
				ent.prodSeq[k] = s.deltaSeq
				ent.prodVal[k] = factVal(&ctx.facts, k)
			}
			if ctx.factReads[k] && !prodNow {
				ent.reads[k] = factRead{valid: preFacts.valid[k], val: factVal(&preFacts, k)}
			}
		}
		ent.patch = diffReport(&preReport, ctx.Report, preImage, ctx.Image)
		h, err := hashState(ctx.Prog, ctx.Merged)
		if err != nil {
			return nil, fmt.Errorf("session: %s: %w", p.Name(), err)
		}
		ent.outputHash = h
		ent.snap = &snapshot{
			prog:   ir.CloneProgram(ctx.Prog),
			merged: cloneMergedList(ctx.Merged),
			facts:  ctx.facts,
		}
		s.entries[i] = ent

		live = ctx.facts
		curHash = h
		executed++
		lastExec = append(lastExec, ent.name)
	}

	if !materialized {
		// The compile ended on a cached pass (possibly a full cache hit):
		// hand out clones so callers can never disturb the cached state.
		if pending != nil {
			ctx.Prog = ir.CloneProgram(pending.prog)
			ctx.Merged = cloneMergedList(pending.merged)
		} else {
			ctx.Prog = ir.CloneProgram(s.base)
		}
	}

	s.stats.Compiles++
	if skipped > 0 {
		s.stats.Incremental++
		s.reg.Counter(metrics.SessionIncremental).Inc()
	}
	s.stats.PassesExecuted += executed
	s.stats.PassesSkipped += skipped
	s.stats.LastExecuted, s.stats.LastSkipped = lastExec, lastSkip
	s.reg.Counter(metrics.SessionCompiles).Inc()

	ctx.Report.Metrics = s.reg.Snapshot()
	return &Result{Image: ctx.Image, Prog: ctx.Prog, Report: ctx.Report, Merged: ctx.Merged}, nil
}

// reusable decides whether a cached pass execution applies at the current
// walk state: identical input IR, identical consulted fact values, and no
// produced fact invalidated by a later delta.
func (s *Session) reusable(ent *passEntry, curHash uint64, live *facts) bool {
	if ent.inputHash != curHash {
		return false
	}
	for k, rd := range ent.reads {
		if rd.valid != live.valid[k] {
			return false
		}
		if rd.valid && factVal(live, k) != rd.val {
			return false
		}
	}
	for k := FactKind(0); k < numFacts; k++ {
		if ent.produced[k] && ent.prodSeq[k] < s.lastInval[k] {
			return false
		}
	}
	return true
}

// applyTransition replays a cached pass's fact-base effects onto the live
// state: produced facts install their cached values, declared
// invalidations drop theirs, and everything else is untouched.
func applyTransition(live *facts, ent *passEntry) {
	for k := FactKind(0); k < numFacts; k++ {
		if !ent.produced[k] {
			continue
		}
		live.valid[k] = true
		switch k {
		case FactProfile:
			live.profile = ent.prodVal[k].(*profiler.Stats)
		case FactSOAR:
			live.soar = ent.prodVal[k].(*soar.Stats)
		case FactPlan:
			live.plan = ent.prodVal[k].(*aggregate.Plan)
			live.classes = ent.snap.facts.classes
		}
	}
	for _, k := range ent.invalidates {
		live.valid[k] = false
	}
}

// factVal returns the identity of a fact's current value.
func factVal(f *facts, k FactKind) any {
	switch k {
	case FactProfile:
		return f.profile
	case FactSOAR:
		return f.soar
	case FactPlan:
		return f.plan
	}
	return nil
}

// diffReport captures which report/image fields a pass wrote.
func diffReport(before, after *Report, imgBefore, imgAfter *cg.Image) reportPatch {
	var p reportPatch
	if before.ProfileStats != after.ProfileStats {
		p.profile, p.setProfile = after.ProfileStats, true
	}
	if before.SOAR != after.SOAR {
		p.soarStats, p.setSOAR = after.SOAR, true
	}
	if before.PAC != after.PAC {
		p.pacStats, p.setPAC = after.PAC, true
	}
	if before.PHR != after.PHR {
		p.phrStats, p.setPHR = after.PHR, true
	}
	if before.Plan != after.Plan {
		p.plan, p.setPlan = after.Plan, true
	}
	if sliceChanged(len(before.SWCCands), len(after.SWCCands), func() bool {
		return &before.SWCCands[0] == &after.SWCCands[0]
	}) {
		p.swcCands, p.setSWC = after.SWCCands, true
	}
	if sliceChanged(len(before.CodeSizes), len(after.CodeSizes), func() bool {
		return &before.CodeSizes[0] == &after.CodeSizes[0]
	}) {
		p.codeSizes, p.setCode = after.CodeSizes, true
	}
	if imgBefore != imgAfter {
		p.image, p.setImage = imgAfter, true
	}
	return p
}

// sliceChanged reports whether a slice field was rewritten, comparing
// length and backing-array identity (sameHead is only called when both
// lengths are equal and non-zero).
func sliceChanged(lenBefore, lenAfter int, sameHead func() bool) bool {
	if lenBefore != lenAfter {
		return true
	}
	if lenAfter == 0 {
		return false
	}
	return !sameHead()
}

func (p *reportPatch) apply(ctx *Context) {
	if p.setProfile {
		ctx.Report.ProfileStats = p.profile
	}
	if p.setSOAR {
		ctx.Report.SOAR = p.soarStats
	}
	if p.setPAC {
		ctx.Report.PAC = p.pacStats
	}
	if p.setPHR {
		ctx.Report.PHR = p.phrStats
	}
	if p.setPlan {
		ctx.Report.Plan = p.plan
	}
	if p.setSWC {
		ctx.Report.SWCCands = p.swcCands
	}
	if p.setCode {
		ctx.Report.CodeSizes = p.codeSizes
	}
	if p.setImage {
		ctx.Image = p.image
	}
}

// cloneMergedList deep-copies every merged aggregate view.
func cloneMergedList(ms []*aggregate.Merged) []*aggregate.Merged {
	if ms == nil {
		return nil
	}
	out := make([]*aggregate.Merged, len(ms))
	for i, m := range ms {
		out[i] = m.Clone()
	}
	return out
}

// hashState fingerprints the compilation state: the deterministic
// ir.Fprint rendering of the whole program and every merged aggregate
// body. Two states hash equal only when their printed IR is
// byte-identical (modulo fnv64 collisions, which the differential tests
// would surface as a miscompare).
func hashState(prog *ir.Program, merged []*aggregate.Merged) (uint64, error) {
	h := fnv.New64a()
	if err := ir.Fprint(h, prog); err != nil {
		return 0, err
	}
	for _, m := range merged {
		fmt.Fprintf(h, ";; aggregate %d (%s) %v\n", m.Agg.ID, m.Agg.Target, m.Agg.PPFs)
		if err := ir.Fprint(h, m.Prog); err != nil {
			return 0, err
		}
	}
	return h.Sum64(), nil
}
