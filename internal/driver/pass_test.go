package driver_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"shangrila/internal/apps"
	"shangrila/internal/driver"
)

// compileApp lowers one benchmark app and runs the pipeline with the given
// configuration (Level/ProfileTrace/Controls are filled in).
func compileApp(t *testing.T, a *apps.App, lvl driver.Level, cfg driver.Config) *driver.Result {
	t.Helper()
	prog, err := driver.LowerSource(a.Name+".baker", a.Source)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Level = lvl
	cfg.ProfileTrace = a.Trace(prog.Types, 7, 256)
	cfg.Controls = a.Controls
	res, err := driver.CompileIR(prog, cfg)
	if err != nil {
		t.Fatalf("%s at %v: %v", a.Name, lvl, err)
	}
	return res
}

// expectedPipeline mirrors the registry's Enabled predicates: the names
// PipelineFor must schedule at each level, in registration order.
func expectedPipeline(lvl driver.Level) []string {
	var names []string
	add := func(name string, on bool) {
		if on {
			names = append(names, name)
		}
	}
	add("profile", true)
	add("inline+scalar", true)
	add("soar", lvl >= driver.LevelPAC)
	add("pac", lvl >= driver.LevelPAC)
	add("aggregate", true)
	add("agg-opt", true)
	add("phr", lvl >= driver.LevelPHR)
	add("swc", lvl >= driver.LevelSWC)
	add("final-opt", true)
	add("codegen", true)
	return names
}

func TestRegistryOrder(t *testing.T) {
	want := expectedPipeline(driver.LevelSWC) // all passes enabled
	got := driver.PassNames()
	if len(got) != len(want) {
		t.Fatalf("registry has %d passes %v, want %d %v", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("registry[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	for _, info := range driver.Passes() {
		if info.Stage == "" {
			t.Errorf("pass %q has no paper-stage description", info.Name)
		}
		if info.New == nil {
			t.Errorf("pass %q has no constructor", info.Name)
		}
	}
}

func TestPipelineForEachLevel(t *testing.T) {
	for _, lvl := range driver.Levels() {
		var got []string
		for _, p := range driver.PipelineFor(driver.Config{Level: lvl}) {
			got = append(got, p.Name())
		}
		want := expectedPipeline(lvl)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("%v pipeline = %v, want %v", lvl, got, want)
		}
	}
}

// TestVerifyAfterEveryPassAllAppsAllLevels is the golden invariant: every
// pass of every per-level pipeline leaves the IR verifiable for every
// benchmark application.
func TestVerifyAfterEveryPassAllAppsAllLevels(t *testing.T) {
	for _, a := range apps.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			for _, lvl := range driver.Levels() {
				res := compileApp(t, a, lvl, driver.Config{VerifyIR: driver.VerifyOn})
				want := expectedPipeline(lvl)
				if len(res.Report.Passes) != len(want) {
					t.Fatalf("%v: %d pass timings %v, want %d",
						lvl, len(res.Report.Passes), res.Report.Passes, len(want))
				}
				for i, pt := range res.Report.Passes {
					if pt.Pass != want[i] {
						t.Errorf("%v: pass[%d] = %q, want %q", lvl, i, pt.Pass, want[i])
					}
					if pt.Nanos <= 0 {
						t.Errorf("%v: pass %q has no timing", lvl, pt.Pass)
					}
					if pt.InstrsBefore <= 0 || pt.InstrsAfter <= 0 {
						t.Errorf("%v: pass %q sizes %d -> %d", lvl, pt.Pass,
							pt.InstrsBefore, pt.InstrsAfter)
					}
				}
			}
		})
	}
}

func TestPerPassMetricsExposed(t *testing.T) {
	a := apps.MPLS()
	res := compileApp(t, a, driver.LevelSWC, driver.Config{VerifyIR: driver.VerifyOn})
	snap := res.Report.Metrics
	for _, name := range expectedPipeline(driver.LevelSWC) {
		if got := snap.Counters["compile.pass."+name+".runs"]; got != 1 {
			t.Errorf("counter %s.runs = %d, want 1", name, got)
		}
		if snap.Counters["compile.pass."+name+".nanos"] <= 0 {
			t.Errorf("counter %s.nanos missing", name)
		}
		if _, ok := snap.Counters["compile.pass."+name+".verify_nanos"]; !ok {
			t.Errorf("counter %s.verify_nanos missing", name)
		}
		if _, ok := snap.Gauges["compile.pass."+name+".size_delta"]; !ok {
			t.Errorf("gauge %s.size_delta missing", name)
		}
	}
	// The size-delta gauges must agree with the report rows.
	for _, pt := range res.Report.Passes {
		want := float64(pt.InstrsAfter - pt.InstrsBefore)
		if got := snap.Gauges["compile.pass."+pt.Pass+".size_delta"]; got != want {
			t.Errorf("gauge %s.size_delta = %v, want %v", pt.Pass, got, want)
		}
	}
}

// TestVerifyOffSkips checks the production default: with verification off,
// no verify time is recorded.
func TestVerifyOffSkips(t *testing.T) {
	a := apps.MPLS()
	res := compileApp(t, a, driver.LevelPAC, driver.Config{VerifyIR: driver.VerifyOff})
	for _, pt := range res.Report.Passes {
		if pt.VerifyNanos != 0 {
			t.Errorf("pass %q recorded verify time %d with VerifyOff", pt.Pass, pt.VerifyNanos)
		}
	}
}

// TestDumpIRDeterministic compiles the same app twice with -dump-ir=all
// into buffers: the dumps must be byte-identical run to run.
func TestDumpIRDeterministic(t *testing.T) {
	a := apps.Firewall()
	dump := func() []byte {
		var buf bytes.Buffer
		compileApp(t, a, driver.LevelSWC, driver.Config{
			DumpPass:   "all",
			DumpWriter: &buf,
			DumpPrefix: a.Name,
		})
		return buf.Bytes()
	}
	first, second := dump(), dump()
	if len(first) == 0 {
		t.Fatal("dump produced no output")
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("IR dump differs between identical runs (%d vs %d bytes)",
			len(first), len(second))
	}
	for _, name := range expectedPipeline(driver.LevelSWC) {
		header := fmt.Sprintf(";; %s after pass %s\n", a.Name, name)
		if !bytes.Contains(first, []byte(header)) {
			t.Errorf("dump is missing the %q section", strings.TrimSpace(header))
		}
	}
}

// TestDumpSinglePass selects one pass by name and gets exactly one section.
func TestDumpSinglePass(t *testing.T) {
	a := apps.MPLS()
	var buf bytes.Buffer
	compileApp(t, a, driver.LevelPAC, driver.Config{
		DumpPass:   "pac",
		DumpWriter: &buf,
		DumpPrefix: a.Name,
	})
	if got := strings.Count(buf.String(), ";; "+a.Name+" after pass "); got != 1 {
		t.Fatalf("dump has %d sections, want 1:\n%s", got, buf.String())
	}
	if !strings.Contains(buf.String(), "after pass pac\n") {
		t.Errorf("dump section is not for the pac pass")
	}
}

// TestVerifierCatchesBrokenPass runs a compile whose IR is corrupted before
// CompileIR and checks that the first pass's post-verification reports it
// with the pass name in the error chain.
func TestVerifierCatchesBrokenPass(t *testing.T) {
	a := apps.MPLS()
	prog, err := driver.LowerSource(a.Name+".baker", a.Source)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one function with an unreachable empty block: execution never
	// sees it (the profile pass still succeeds), but the structural check
	// after the first pass does.
	prog.Funcs[prog.Order[0]].NewBlock()
	_, err = driver.CompileIR(prog, driver.Config{
		Level:        driver.LevelBase,
		ProfileTrace: a.Trace(prog.Types, 7, 8),
		Controls:     a.Controls,
		VerifyIR:     driver.VerifyOn,
	})
	if err == nil {
		t.Fatal("compiling corrupted IR with VerifyOn must fail")
	}
	if !strings.Contains(err.Error(), "IR verification failed") {
		t.Errorf("error %q does not mention IR verification", err)
	}
}
