package driver_test

import (
	"bytes"
	"testing"

	"shangrila/internal/apps"
	"shangrila/internal/driver"
	"shangrila/internal/metrics"
	"shangrila/internal/profiler"
)

// newSessionFor builds a Session over a fresh lowering of the app.
func newSessionFor(t *testing.T, a *apps.App, lvl driver.Level) *driver.Session {
	t.Helper()
	prog, err := driver.LowerSource(a.Name+".baker", a.Source)
	if err != nil {
		t.Fatal(err)
	}
	cfg := driver.Config{
		Level:        lvl,
		ProfileTrace: a.Trace(prog.Types, 7, 256),
		Controls:     a.Controls,
		VerifyIR:     driver.VerifyOn,
	}
	s, err := driver.NewSession(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// coldCompile runs a from-scratch CompileIR with the given configuration
// over a fresh lowering of the app.
func coldCompile(t *testing.T, a *apps.App, cfg driver.Config) *driver.Result {
	t.Helper()
	prog, err := driver.LowerSource(a.Name+".baker", a.Source)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ProfileTrace = a.Trace(prog.Types, 7, 256)
	cfg.Metrics = nil
	res, err := driver.CompileIR(prog, cfg)
	if err != nil {
		t.Fatalf("cold compile: %v", err)
	}
	return res
}

// deltaFor returns a single-rule policy delta for the app: one route,
// firewall rule, or label entry beyond the boot configuration.
func deltaFor(a *apps.App) driver.Delta {
	switch a.Name {
	case "l3switch":
		return driver.Delta{AddControls: []profiler.Control{
			{Name: "l3switch.add_route", Args: []uint32{0x0b000000, 8, 2}},
		}}
	case "firewall":
		// One more allow rule past the installed set: HTTPS from 10/8 to
		// 192.168/16 (args follow the app's add_rule signature).
		return driver.Delta{AddControls: []profiler.Control{
			{Name: "firewall.add_rule", Args: []uint32{
				6,                      // idx
				0x0a000000, 0xff000000, // src, smask
				0xc0a80000, 0xffff0000, // dst, dmask
				0, 0xffff, // sport range
				443, 443, // dport range
				6, // proto tcp
				1, // action allow
				2, // nh
			}},
		}}
	case "mpls":
		return driver.Delta{AddControls: []profiler.Control{
			{Name: "mplsapp.add_ilm", Args: []uint32{900, 1, 1000, 3}},
		}}
	}
	return driver.Delta{}
}

func dumpIR(t *testing.T, res *driver.Result) []byte {
	t.Helper()
	b, err := res.DumpIR()
	if err != nil {
		t.Fatalf("DumpIR: %v", err)
	}
	return b
}

// passCounts tallies executed and skipped rows of one compile's report.
func passCounts(res *driver.Result) (executed, skipped int) {
	for _, pt := range res.Report.Passes {
		if pt.Skipped {
			skipped++
		} else {
			executed++
		}
	}
	return
}

// TestSessionIncrementalMatchesColdAllAppsAllLevels is the tentpole
// differential: for every app at every optimization level, an incremental
// recompile of a single-rule policy delta must (a) execute strictly fewer
// passes than the cold pipeline — asserted through the compile.pass.*
// metrics — and (b) produce bit-identical final IR to a cold compile of
// the post-delta configuration.
func TestSessionIncrementalMatchesColdAllAppsAllLevels(t *testing.T) {
	for _, a := range apps.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			for _, lvl := range driver.Levels() {
				s := newSessionFor(t, a, lvl)
				if _, err := s.Compile(); err != nil {
					t.Fatalf("%v: cold session compile: %v", lvl, err)
				}

				d := deltaFor(a)
				if len(d.AddControls) == 0 {
					t.Fatalf("no delta defined for %s", a.Name)
				}
				inc, err := s.Recompile(d)
				if err != nil {
					t.Fatalf("%v: incremental recompile: %v", lvl, err)
				}

				executed, skipped := passCounts(inc)
				total := len(inc.Report.Passes)
				if skipped == 0 || executed >= total {
					t.Errorf("%v: incremental recompile executed %d of %d passes (skipped %d), want strictly fewer",
						lvl, executed, total, skipped)
				}
				// The same claim through the metrics registry: skip
				// counters present, and runs < 2 per skipped pass.
				snap := inc.Report.Metrics
				var metricSkips int64
				for _, pt := range inc.Report.Passes {
					if pt.Skipped {
						metricSkips += snap.Counters[metrics.PassSkips(pt.Pass).String()]
						if runs := snap.Counters[metrics.PassRuns(pt.Pass).String()]; runs != 1 {
							t.Errorf("%v: skipped pass %q has %d runs, want 1", lvl, pt.Pass, runs)
						}
					}
				}
				if metricSkips < int64(skipped) {
					t.Errorf("%v: compile.pass.*.skips total %d < %d skipped rows", lvl, metricSkips, skipped)
				}

				// Bit-identity against a cold compile of the post-delta
				// configuration.
				cfg := s.Config()
				cold := coldCompile(t, a, cfg)
				if !bytes.Equal(dumpIR(t, inc), dumpIR(t, cold)) {
					t.Errorf("%v: incremental final IR differs from cold compile", lvl)
				}

				st := s.Stats()
				if st.Compiles != 2 || st.Incremental != 1 {
					t.Errorf("%v: session stats = %+v, want 2 compiles / 1 incremental", lvl, st)
				}
			}
		})
	}
}

// TestSessionFullCacheHit pins the no-delta case: recompiling with nothing
// changed reuses every pass.
func TestSessionFullCacheHit(t *testing.T) {
	a := apps.L3Switch()
	s := newSessionFor(t, a, driver.LevelSWC)
	first, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	executed, skipped := passCounts(second)
	if executed != 0 || skipped != len(first.Report.Passes) {
		t.Fatalf("no-delta recompile executed %d / skipped %d of %d passes, want full reuse",
			executed, skipped, len(first.Report.Passes))
	}
	if !bytes.Equal(dumpIR(t, first), dumpIR(t, second)) {
		t.Error("cache-hit recompile changed the final IR")
	}
	if second.Image == nil || second.Report.Plan == nil || second.Report.ProfileStats == nil {
		t.Error("cache-hit result is missing image/plan/profile")
	}
}

// TestSessionFactPlanOnlyDelta pins the invalidation semantics: a delta
// declaring only FactPlan stale must skip the profile and scalar/SOAR/PAC
// passes (their facts and IR inputs are untouched) while re-running
// aggregation and everything downstream of the fresh plan.
func TestSessionFactPlanOnlyDelta(t *testing.T) {
	a := apps.L3Switch()
	s := newSessionFor(t, a, driver.LevelSWC)
	if _, err := s.Compile(); err != nil {
		t.Fatal(err)
	}
	res, err := s.Recompile(driver.Delta{Invalidates: []driver.FactKind{driver.FactPlan}})
	if err != nil {
		t.Fatal(err)
	}
	skipped := map[string]bool{}
	for _, pt := range res.Report.Passes {
		if pt.Skipped {
			skipped[pt.Pass] = true
		}
	}
	// The profile and the scalar/SOAR/PAC transforms are untouched by a
	// plan-only invalidation; aggregation itself must re-run. (Passes
	// downstream of aggregation may be legitimately reused again once the
	// rebuilt plan converges to bit-identical IR.)
	for _, want := range []string{"profile", "inline+scalar", "soar", "pac"} {
		if !skipped[want] {
			t.Errorf("pass %q re-ran on a FactPlan-only delta", want)
		}
	}
	if skipped["aggregate"] {
		t.Error("aggregate pass reused despite its produced fact being invalidated")
	}
}

// TestSessionProfileDeltaReattaches pins the mid-flight reattach: a
// default (profile-invalidating) delta re-runs the profiler but still
// reuses the profile-independent scalar/SOAR/PAC transforms before
// re-executing from aggregation.
func TestSessionProfileDeltaReattaches(t *testing.T) {
	a := apps.L3Switch()
	s := newSessionFor(t, a, driver.LevelSWC)
	if _, err := s.Compile(); err != nil {
		t.Fatal(err)
	}
	res, err := s.Recompile(deltaFor(a))
	if err != nil {
		t.Fatal(err)
	}
	skipped := map[string]bool{}
	for _, pt := range res.Report.Passes {
		if pt.Skipped {
			skipped[pt.Pass] = true
		}
	}
	for _, want := range []string{"inline+scalar", "soar", "pac"} {
		if !skipped[want] {
			t.Errorf("pass %q not reused after a profile-only delta", want)
		}
	}
	for _, mustRun := range []string{"profile", "aggregate", "codegen"} {
		if skipped[mustRun] {
			t.Errorf("pass %q reused but its inputs changed", mustRun)
		}
	}
}
