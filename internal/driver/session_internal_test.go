package driver

import (
	"strings"
	"testing"

	"shangrila/internal/baker/parser"
	"shangrila/internal/baker/types"
	"shangrila/internal/ir"
	"shangrila/internal/lower"
	"shangrila/internal/profiler"
)

// fakePass reads facts its Requires declaration does not admit — the
// mistake that would let an incremental recompile silently reuse a stale
// analysis if the fact guard did not exist.
type fakePass struct {
	name     string
	requires []FactKind
	run      func(*Context) error
}

func (p *fakePass) Name() string            { return p.name }
func (p *fakePass) Requires() []FactKind    { return p.requires }
func (p *fakePass) Invalidates() []FactKind { return nil }
func (p *fakePass) Run(ctx *Context) error  { return p.run(ctx) }

func lowerTestProg(t *testing.T) *ir.Program {
	t.Helper()
	const src = `
protocol ether { dst_hi:16; dst_lo:32; src_hi:16; src_lo:32; type:16; demux { 14 }; }
metadata { rx_port:16; }
module m {
	uint counter;
	ppf f(ether ph) {
		counter = ph->type + 1;
		packet_drop(ph);
	}
	wiring { rx -> f; }
}
`
	astProg, err := parser.Parse("p.baker", src)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := types.Check(astProg)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lower.Lower(tp)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestUndeclaredFactReadFails is the negative half of the invalidation
// semantics: a pass whose Requires declaration is deliberately wrong (it
// reads the profile fact without declaring it) must fail the compile
// loudly. Stale-fact reuse through an undeclared dependency is therefore
// impossible — the read cannot even happen once, so no cached entry with a
// missing input can ever exist.
func TestUndeclaredFactReadFails(t *testing.T) {
	prog := lowerTestProg(t)
	r := newRunner(prog, Config{VerifyIR: VerifyOff})
	r.ctx.SetProfile(&profiler.Stats{})

	bad := &fakePass{
		name:     "bad-reader",
		requires: nil, // wrong: Run reads FactProfile
		run: func(ctx *Context) error {
			_ = ctx.Profile()
			return nil
		},
	}
	err := r.runPass(bad)
	if err == nil {
		t.Fatal("undeclared fact read did not fail the compile")
	}
	if !strings.Contains(err.Error(), "undeclared read") ||
		!strings.Contains(err.Error(), "profile") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestDeclaredFactReadPasses is the positive control: the same read with a
// correct Requires declaration succeeds, and the read is logged for the
// session's reuse keying.
func TestDeclaredFactReadPasses(t *testing.T) {
	prog := lowerTestProg(t)
	r := newRunner(prog, Config{VerifyIR: VerifyOff})
	r.ctx.SetProfile(&profiler.Stats{})

	good := &fakePass{
		name:     "good-reader",
		requires: []FactKind{FactProfile},
		run: func(ctx *Context) error {
			_ = ctx.Profile()
			return nil
		},
	}
	if err := r.runPass(good); err != nil {
		t.Fatalf("declared fact read failed: %v", err)
	}
	if !r.ctx.factReads[FactProfile] {
		t.Error("declared read was not logged in factReads")
	}
}

// TestOptionalSOARReadExemptButLogged pins SOARIfValid's contract: exempt
// from the Requires guard (the documented optional read) yet logged, so a
// cached pass that consulted it is keyed on the SOAR fact's state.
func TestOptionalSOARReadExemptButLogged(t *testing.T) {
	prog := lowerTestProg(t)
	r := newRunner(prog, Config{VerifyIR: VerifyOff})

	p := &fakePass{
		name:     "optional-reader",
		requires: nil,
		run: func(ctx *Context) error {
			if s := ctx.SOARIfValid(); s != nil {
				t.Error("SOARIfValid returned facts nobody computed")
			}
			return nil
		},
	}
	if err := r.runPass(p); err != nil {
		t.Fatalf("optional SOAR read was rejected: %v", err)
	}
	if !r.ctx.factReads[FactSOAR] {
		t.Error("optional SOAR read was not logged in factReads")
	}
}
