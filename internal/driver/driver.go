// Package driver assembles the full Shangri-La compilation pipeline of
// Figure 5: parse → type check → lower → functional profiling → scalar
// optimization and inlining → PAC → SOAR → aggregation → per-aggregate
// merging → PHR → SWC → code generation. The optimization level axis
// matches the paper's evaluation (§6.2): BASE < -O1 < -O2 < +PAC < +SOAR
// < +PHR < +SWC, cumulative.
//
// The pipeline is a composable pass manager: each stage is a registered
// Pass with declared analysis requirements over a typed fact base (profile
// stats, SOAR facts, aggregation plan), and CompileIR runs the declarative
// per-Level pipeline built from the registry. After every pass the manager
// can verify IR invariants (Config.VerifyIR — on by default under `go
// test`), records per-pass time/size-delta/verify-time through
// internal/metrics, and can dump any stage's IR (Config.DumpPass).
package driver

import (
	"bytes"
	"fmt"
	"io"

	"shangrila/internal/aggregate"
	"shangrila/internal/baker/parser"
	"shangrila/internal/baker/types"
	"shangrila/internal/cg"
	"shangrila/internal/ir"
	"shangrila/internal/lower"
	"shangrila/internal/metrics"
	"shangrila/internal/opt/pac"
	"shangrila/internal/opt/phr"
	"shangrila/internal/opt/soar"
	"shangrila/internal/opt/swc"
	"shangrila/internal/packet"
	"shangrila/internal/profiler"
)

// Level is the cumulative optimization level.
type Level int

// Optimization levels (each includes all previous ones).
const (
	LevelBase Level = iota
	LevelO1
	LevelO2
	LevelPAC
	LevelSOAR
	LevelPHR
	LevelSWC
)

var levelNames = [...]string{"BASE", "-O1", "-O2", "+PAC", "+SOAR", "+PHR", "+SWC"}

func (l Level) String() string {
	if l < 0 || int(l) >= len(levelNames) {
		return fmt.Sprintf("Level(%d)", int(l))
	}
	return levelNames[l]
}

// Levels lists every level in evaluation order.
func Levels() []Level {
	return []Level{LevelBase, LevelO1, LevelO2, LevelPAC, LevelSOAR, LevelPHR, LevelSWC}
}

// Config parameterizes a compilation.
type Config struct {
	Level Level
	// ProfileTrace drives the Functional profiler.
	ProfileTrace []*packet.Packet
	// Controls populate tables before profiling (and are the same calls a
	// deployment makes at boot).
	Controls []profiler.Control
	// Aggregation settings; zero value uses aggregate.DefaultConfig.
	Agg aggregate.Config
	// SWC settings; zero value uses swc.DefaultConfig.
	SWC swc.Config
	// VerifyIR controls post-pass IR verification. The zero value
	// (VerifyAuto) verifies under `go test` and skips otherwise.
	VerifyIR VerifyMode
	// Metrics receives per-pass instrumentation (compile.pass.<name>.*
	// counters and gauges). Nil uses a private registry; either way the
	// collected data is exported in Report.Metrics.
	Metrics *metrics.Registry
	// DumpPass selects a pass after which the whole IR (program plus
	// merged aggregate bodies) is printed; "all" dumps every pass.
	DumpPass string
	// DumpDir writes each dump to <DumpDir>/<DumpPrefix>-<NN>-<pass>.ir.
	// Empty means dumps go to DumpWriter (default os.Stdout).
	DumpDir string
	// DumpWriter receives dumps when DumpDir is empty.
	DumpWriter io.Writer
	// DumpPrefix names dump files (typically the app name and level);
	// empty uses "prog".
	DumpPrefix string
}

// aggConfig resolves the aggregation settings (zero value → defaults).
func (c Config) aggConfig() aggregate.Config {
	if c.Agg.NumMEs == 0 {
		return aggregate.DefaultConfig()
	}
	return c.Agg
}

// swcConfig resolves the SWC settings (zero value → defaults).
func (c Config) swcConfig() swc.Config {
	if c.SWC.MaxLineWords == 0 {
		return swc.DefaultConfig()
	}
	return c.SWC
}

// PassTiming records one Figure-5 pipeline stage: wall-clock time, the
// whole-program IR size before and after (codegen reports CGIR size
// after), and the time spent verifying the result when Config.VerifyIR is
// enabled.
type PassTiming struct {
	Pass         string `json:"pass"`
	Nanos        int64  `json:"nanos"`
	InstrsBefore int    `json:"instrs_before"`
	InstrsAfter  int    `json:"instrs_after"`
	VerifyNanos  int64  `json:"verify_nanos,omitempty"`
	// Skipped marks a pass an incremental Session recompile satisfied
	// from its cache instead of executing; Nanos/VerifyNanos are zero and
	// the sizes are the cached result's.
	Skipped bool `json:"skipped,omitempty"`
}

// Report summarizes what the compiler did.
type Report struct {
	Level        Level
	Plan         *aggregate.Plan
	ProfileStats *profiler.Stats
	SOAR         *soar.Stats
	PAC          *pac.Stats
	PHR          *phr.Stats
	SWCCands     []*swc.Candidate
	// CodeSizes per ME aggregate (CGIR instructions).
	CodeSizes []int
	// Passes holds one timing entry per executed pipeline stage, in
	// execution order.
	Passes []PassTiming
	// Metrics is the per-pass instrumentation snapshot
	// (compile.pass.<name>.{runs,nanos,verify_nanos} counters and
	// compile.pass.<name>.size_delta gauges).
	Metrics metrics.Snapshot
}

// irSize counts IR instructions across every function of a program.
func irSize(p *ir.Program) int {
	if p == nil {
		return 0
	}
	n := 0
	for _, fn := range p.Funcs {
		for _, b := range fn.Blocks {
			n += len(b.Instrs)
		}
	}
	return n
}

// Result bundles everything the runtime needs.
type Result struct {
	Image  *cg.Image
	Prog   *ir.Program // post-optimization whole program (XScale path)
	Report *Report
	// Merged holds the per-aggregate merged programs in final form, so
	// callers can render the complete IR state (DumpIR) — the artifact
	// the incremental-vs-cold differential compares byte for byte.
	Merged []*aggregate.Merged
}

// DumpIR renders the result's final IR — the whole program plus every
// merged aggregate body — in the deterministic -dump-ir format. Two
// compiles that produced semantically identical code produce identical
// bytes.
func (r *Result) DumpIR() ([]byte, error) {
	var b bytes.Buffer
	ctx := &Context{Prog: r.Prog, Merged: r.Merged}
	if err := writeDump(&b, "final", "prog", ctx); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// LowerSource parses, checks and lowers Baker source to IR (the frontend
// half of the pipeline). Callers that need the program's types before
// choosing a profile trace use this, then CompileIR.
func LowerSource(file, src string) (*ir.Program, error) {
	astProg, err := parser.Parse(file, src)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	tp, err := types.Check(astProg)
	if err != nil {
		return nil, fmt.Errorf("check: %w", err)
	}
	prog, err := lower.Lower(tp)
	if err != nil {
		return nil, fmt.Errorf("lower: %w", err)
	}
	return prog, nil
}

// CompileSource runs the full pipeline over Baker source text.
func CompileSource(file, src string, cfg Config) (*Result, error) {
	prog, err := LowerSource(file, src)
	if err != nil {
		return nil, err
	}
	return CompileIR(prog, cfg)
}

// CompileIR runs the pipeline from lowered IR: the per-Level pass sequence
// built from the registry (PipelineFor), executed by the pass manager with
// post-pass verification, metrics and dump hooks.
func CompileIR(prog *ir.Program, cfg Config) (*Result, error) {
	r := newRunner(prog, cfg)
	for _, p := range PipelineFor(cfg) {
		if err := r.runPass(p); err != nil {
			return nil, err
		}
	}
	r.ctx.Report.Metrics = r.reg().Snapshot()
	return &Result{Image: r.ctx.Image, Prog: prog, Report: r.ctx.Report, Merged: r.ctx.Merged}, nil
}
