// Package driver assembles the full Shangri-La compilation pipeline of
// Figure 5: parse → type check → lower → functional profiling → scalar
// optimization and inlining → PAC → SOAR → aggregation → per-aggregate
// merging → PHR → SWC → code generation. The optimization level axis
// matches the paper's evaluation (§6.2): BASE < -O1 < -O2 < +PAC < +SOAR
// < +PHR < +SWC, cumulative.
package driver

import (
	"fmt"
	"time"

	"shangrila/internal/aggregate"
	"shangrila/internal/baker/parser"
	"shangrila/internal/baker/types"
	"shangrila/internal/cg"
	"shangrila/internal/ir"
	"shangrila/internal/lower"
	"shangrila/internal/opt"
	"shangrila/internal/opt/pac"
	"shangrila/internal/opt/phr"
	"shangrila/internal/opt/soar"
	"shangrila/internal/opt/swc"
	"shangrila/internal/packet"
	"shangrila/internal/profiler"
)

// Level is the cumulative optimization level.
type Level int

// Optimization levels (each includes all previous ones).
const (
	LevelBase Level = iota
	LevelO1
	LevelO2
	LevelPAC
	LevelSOAR
	LevelPHR
	LevelSWC
)

var levelNames = [...]string{"BASE", "-O1", "-O2", "+PAC", "+SOAR", "+PHR", "+SWC"}

func (l Level) String() string {
	if l < 0 || int(l) >= len(levelNames) {
		return fmt.Sprintf("Level(%d)", int(l))
	}
	return levelNames[l]
}

// Levels lists every level in evaluation order.
func Levels() []Level {
	return []Level{LevelBase, LevelO1, LevelO2, LevelPAC, LevelSOAR, LevelPHR, LevelSWC}
}

// Config parameterizes a compilation.
type Config struct {
	Level Level
	// ProfileTrace drives the Functional profiler.
	ProfileTrace []*packet.Packet
	// Controls populate tables before profiling (and are the same calls a
	// deployment makes at boot).
	Controls []profiler.Control
	// Aggregation settings; zero value uses aggregate.DefaultConfig.
	Agg aggregate.Config
	// SWC settings; zero value uses swc.DefaultConfig.
	SWC swc.Config
}

// PassTiming records one Figure-5 pipeline stage: wall-clock time and the
// whole-program IR size before and after (codegen reports CGIR size after).
type PassTiming struct {
	Pass         string `json:"pass"`
	Nanos        int64  `json:"nanos"`
	InstrsBefore int    `json:"instrs_before"`
	InstrsAfter  int    `json:"instrs_after"`
}

// Report summarizes what the compiler did.
type Report struct {
	Level        Level
	Plan         *aggregate.Plan
	ProfileStats *profiler.Stats
	SOAR         *soar.Stats
	PAC          *pac.Stats
	PHR          *phr.Stats
	SWCCands     []*swc.Candidate
	// CodeSizes per ME aggregate (CGIR instructions).
	CodeSizes []int
	// Passes holds one timing entry per executed pipeline stage, in
	// execution order.
	Passes []PassTiming
}

// irSize counts IR instructions across every function of a program.
func irSize(p *ir.Program) int {
	if p == nil {
		return 0
	}
	n := 0
	for _, fn := range p.Funcs {
		for _, b := range fn.Blocks {
			n += len(b.Instrs)
		}
	}
	return n
}

// timePass runs f, recording a PassTiming whose before/after sizes come
// from size().
func (r *Report) timePass(pass string, size func() int, f func() error) error {
	before := size()
	t0 := time.Now()
	err := f()
	r.Passes = append(r.Passes, PassTiming{
		Pass:         pass,
		Nanos:        time.Since(t0).Nanoseconds(),
		InstrsBefore: before,
		InstrsAfter:  size(),
	})
	return err
}

// Result bundles everything the runtime needs.
type Result struct {
	Image  *cg.Image
	Prog   *ir.Program // post-optimization whole program (XScale path)
	Report *Report
}

// LowerSource parses, checks and lowers Baker source to IR (the frontend
// half of the pipeline). Callers that need the program's types before
// choosing a profile trace use this, then CompileIR.
func LowerSource(file, src string) (*ir.Program, error) {
	astProg, err := parser.Parse(file, src)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	tp, err := types.Check(astProg)
	if err != nil {
		return nil, fmt.Errorf("check: %w", err)
	}
	prog, err := lower.Lower(tp)
	if err != nil {
		return nil, fmt.Errorf("lower: %w", err)
	}
	return prog, nil
}

// CompileSource runs the full pipeline over Baker source text.
func CompileSource(file, src string, cfg Config) (*Result, error) {
	prog, err := LowerSource(file, src)
	if err != nil {
		return nil, err
	}
	return CompileIR(prog, cfg)
}

// CompileIR runs the pipeline from lowered IR.
func CompileIR(prog *ir.Program, cfg Config) (*Result, error) {
	lvl := cfg.Level
	rep := &Report{Level: lvl}

	// Every pass timing measures the whole program: the top-level IR plus
	// (once aggregation has run) every merged aggregate body.
	var merged []*aggregate.Merged
	size := func() int {
		n := irSize(prog)
		for _, m := range merged {
			n += irSize(m.Prog)
		}
		return n
	}

	// 1. Functional profiler (on unoptimized IR, as in Figure 5).
	var stats *profiler.Stats
	err := rep.timePass("profile", size, func() (err error) {
		stats, err = profiler.ProfileWithControls(prog, cfg.ProfileTrace, cfg.Controls)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	rep.ProfileStats = stats

	// 2. Inlining is mandatory for ME code generation (calls become
	// branches with globally allocated registers in the paper; here the
	// bodies merge outright). Scalar optimization is -O1.
	_ = rep.timePass("inline+scalar", size, func() error {
		opt.Optimize(prog, opt.Options{Scalar: lvl >= LevelO1, Inline: true})
		return nil
	})

	// 3. SOAR analysis runs whenever PAC or later optimizations need its
	// offset facts (PAC's cross-header aliasing requires the proven
	// minimum offsets); whether the *code generator* exploits the facts
	// is the separate +SOAR level of the evaluation axis.
	analyze := lvl >= LevelPAC
	var facts *soar.Stats
	if analyze {
		_ = rep.timePass("soar", size, func() error {
			facts = soar.Analyze(prog)
			return nil
		})
		if lvl >= LevelSOAR {
			rep.SOAR = facts
		}
	}
	// 4. PAC on the whole program.
	if lvl >= LevelPAC {
		_ = rep.timePass("pac", size, func() error {
			rep.PAC = pac.Run(prog)
			opt.Optimize(prog, opt.Options{Scalar: lvl >= LevelO1})
			facts = soar.Analyze(prog) // re-annotate the combined accesses
			return nil
		})
	}

	// 5. Aggregation (Figure 7).
	aggCfg := cfg.Agg
	if aggCfg.NumMEs == 0 {
		aggCfg = aggregate.DefaultConfig()
	}
	var plan *aggregate.Plan
	var classes map[*types.Channel]aggregate.ChannelClass
	err = rep.timePass("aggregate", size, func() (err error) {
		plan, err = aggregate.Build(prog, stats, aggCfg)
		if err != nil {
			return fmt.Errorf("aggregate: %w", err)
		}
		rep.Plan = plan
		classes = aggregate.ClassifyChannels(prog, plan)
		merged, err = aggregate.BuildMerged(prog, plan, classes)
		if err != nil {
			return fmt.Errorf("merge: %w", err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// 6. Per-aggregate optimization: scalar cleanup, SOAR annotation (the
	// merged bodies see through former channel boundaries), PAC across
	// former PPF boundaries, then PHR and SWC transforms.
	annotateMerged := func(m *aggregate.Merged) {
		entries := map[string]soar.Input{}
		for _, e := range m.Entries {
			if e.In != nil && facts != nil {
				if fct, ok := facts.ChanInputs[e.In.Name]; ok {
					entries[e.Func.Name] = fct
				}
			}
		}
		soar.AnalyzeWithEntries(m.Prog, entries)
	}
	_ = rep.timePass("agg-opt", size, func() error {
		for _, m := range merged {
			if m.Agg.Target != aggregate.TargetME {
				continue
			}
			opt.Optimize(m.Prog, opt.Options{Scalar: lvl >= LevelO1})
			if lvl >= LevelPAC {
				annotateMerged(m)
				pac.Run(m.Prog)
				opt.Optimize(m.Prog, opt.Options{Scalar: lvl >= LevelO1})
			}
		}
		return nil
	})
	if lvl >= LevelPHR {
		_ = rep.timePass("phr", size, func() error {
			rep.PHR = phr.Run(prog, plan, merged)
			return nil
		})
	}
	if lvl >= LevelSWC {
		err = rep.timePass("swc", size, func() error {
			swcCfg := cfg.SWC
			if swcCfg.MaxLineWords == 0 {
				swcCfg = swc.DefaultConfig()
			}
			cands := swc.SelectCandidates(prog, stats, swcCfg)
			if _, err := swc.Apply(prog, merged, cands, swcCfg); err != nil {
				return fmt.Errorf("swc: %w", err)
			}
			rep.SWCCands = cands
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	// PHR's pair elimination redirects accesses to shared handles, which
	// exposes further combining: run PAC once more, then a final scalar
	// cleanup and SOAR re-annotation of the merged bodies.
	_ = rep.timePass("final-opt", size, func() error {
		for _, m := range merged {
			if m.Agg.Target != aggregate.TargetME {
				continue
			}
			if lvl >= LevelPHR {
				annotateMerged(m)
				pac.Run(m.Prog)
			}
			opt.Optimize(m.Prog, opt.Options{Scalar: lvl >= LevelO1})
			if analyze {
				annotateMerged(m)
			}
		}
		return nil
	})

	// 7. Code generation. InstrsAfter reports generated CGIR instructions
	// rather than IR.
	var img *cg.Image
	irBefore := size()
	t0 := time.Now()
	opts := cg.Options{
		O2:   lvl >= LevelO2,
		SOAR: lvl >= LevelSOAR,
		PHR:  lvl >= LevelPHR,
		SWC:  lvl >= LevelSWC,
	}
	img, err = cg.Compile(prog, plan, merged, classes, facts, opts)
	if err != nil {
		return nil, fmt.Errorf("codegen: %w", err)
	}
	cgSize := 0
	for _, c := range img.MECode {
		rep.CodeSizes = append(rep.CodeSizes, len(c.Program.Code))
		cgSize += len(c.Program.Code)
	}
	rep.Passes = append(rep.Passes, PassTiming{
		Pass:         "codegen",
		Nanos:        time.Since(t0).Nanoseconds(),
		InstrsBefore: irBefore,
		InstrsAfter:  cgSize,
	})
	return &Result{Image: img, Prog: prog, Report: rep}, nil
}
