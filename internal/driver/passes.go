// The registered pipeline passes. Registration order is pipeline order and
// mirrors the paper's Figure 5 staging: profile → inline/scalar → SOAR →
// PAC → aggregation → per-aggregate optimization → PHR → SWC → final
// cleanup → code generation. Each pass declares the analysis facts it
// consumes and the ones its rewrites invalidate; the manager recomputes
// invalidated on-demand facts lazily when a later pass requires them.
package driver

import (
	"fmt"

	"shangrila/internal/aggregate"
	"shangrila/internal/cg"
	"shangrila/internal/opt"
	"shangrila/internal/opt/pac"
	"shangrila/internal/opt/phr"
	"shangrila/internal/opt/soar"
	"shangrila/internal/opt/swc"
	"shangrila/internal/profiler"
)

func init() {
	always := func(Level) bool { return true }
	fromPAC := func(l Level) bool { return l >= LevelPAC }
	RegisterPass(PassInfo{
		Name:    "profile",
		Stage:   "functional profiling (§4): interpret the unoptimized IR over the training trace",
		Enabled: always,
		New:     func(Config) Pass { return profilePass{} },
	})
	RegisterPass(PassInfo{
		Name:    "inline+scalar",
		Stage:   "inlining (mandatory for ME codegen) and -O1 scalar optimization",
		Enabled: always,
		New:     func(cfg Config) Pass { return inlineScalarPass{scalar: cfg.Level >= LevelO1} },
	})
	RegisterPass(PassInfo{
		Name:    "soar",
		Stage:   "static offset and alignment resolution (§5.3.2)",
		Enabled: fromPAC,
		New:     func(cfg Config) Pass { return soarPass{record: cfg.Level >= LevelSOAR} },
	})
	RegisterPass(PassInfo{
		Name:    "pac",
		Stage:   "packet access combining on the whole program (§5.3.1)",
		Enabled: fromPAC,
		New:     func(cfg Config) Pass { return pacPass{scalar: cfg.Level >= LevelO1} },
	})
	RegisterPass(PassInfo{
		Name:    "aggregate",
		Stage:   "PPF aggregation and per-aggregate merging (§5.1, Figure 7)",
		Enabled: always,
		New: func(cfg Config) Pass {
			return aggregatePass{cfg: cfg.aggConfig(), analyze: cfg.Level >= LevelPAC}
		},
	})
	RegisterPass(PassInfo{
		Name:    "agg-opt",
		Stage:   "per-aggregate scalar cleanup, SOAR annotation and cross-PPF PAC",
		Enabled: always,
		New: func(cfg Config) Pass {
			return aggOptPass{scalar: cfg.Level >= LevelO1, pac: cfg.Level >= LevelPAC}
		},
	})
	RegisterPass(PassInfo{
		Name:    "phr",
		Stage:   "packet handling removal: metadata localization, encap pair elimination (§5.3.3)",
		Enabled: func(l Level) bool { return l >= LevelPHR },
		New:     func(Config) Pass { return phrPass{} },
	})
	RegisterPass(PassInfo{
		Name:    "swc",
		Stage:   "delayed-update software-controlled caching (§5.2)",
		Enabled: func(l Level) bool { return l >= LevelSWC },
		New:     func(cfg Config) Pass { return swcPass{cfg: cfg.swcConfig()} },
	})
	RegisterPass(PassInfo{
		Name:    "final-opt",
		Stage:   "post-PHR combining and final scalar cleanup of the merged bodies",
		Enabled: always,
		New: func(cfg Config) Pass {
			return finalOptPass{
				scalar:     cfg.Level >= LevelO1,
				phrCombine: cfg.Level >= LevelPHR,
				annotate:   cfg.Level >= LevelPAC,
			}
		},
	})
	RegisterPass(PassInfo{
		Name:    "codegen",
		Stage:   "CGIR lowering, dual-bank register allocation, stack layout (§5.4)",
		Enabled: always,
		New: func(cfg Config) Pass {
			return codegenPass{opts: cg.Options{
				O2:   cfg.Level >= LevelO2,
				SOAR: cfg.Level >= LevelSOAR,
				PHR:  cfg.Level >= LevelPHR,
				SWC:  cfg.Level >= LevelSWC,
			}}
		},
	})
}

// profilePass runs the functional profiler on unoptimized IR (Figure 5)
// and produces the FactProfile stats every global optimization consumes.
type profilePass struct{}

func (profilePass) Name() string            { return "profile" }
func (profilePass) Requires() []FactKind    { return nil }
func (profilePass) Invalidates() []FactKind { return nil }

func (profilePass) Run(ctx *Context) error {
	stats, err := profiler.ProfileWithControls(ctx.Prog, ctx.Cfg.ProfileTrace, ctx.Cfg.Controls)
	if err != nil {
		return err
	}
	ctx.SetProfile(stats)
	ctx.Report.ProfileStats = stats
	return nil
}

// inlineScalarPass inlines every call (calls become merged bodies, as the
// paper turns them into branches with globally allocated registers) and
// runs the -O1 scalar optimizer when enabled.
type inlineScalarPass struct{ scalar bool }

func (inlineScalarPass) Name() string         { return "inline+scalar" }
func (inlineScalarPass) Requires() []FactKind { return nil }

// Inlining rewrites every function body, so any earlier SOAR annotation is
// stale (none exists in the default pipeline; declared for robustness).
func (inlineScalarPass) Invalidates() []FactKind { return []FactKind{FactSOAR} }

func (p inlineScalarPass) Run(ctx *Context) error {
	opt.Optimize(ctx.Prog, opt.Options{Scalar: p.scalar, Inline: true})
	return nil
}

// soarPass makes the whole-program SOAR facts available (the manager's
// ensure step performs the analysis) and records them in the report at
// +SOAR and above — whether the code generator exploits the facts is the
// separate +SOAR level of the evaluation axis.
type soarPass struct{ record bool }

func (soarPass) Name() string            { return "soar" }
func (soarPass) Requires() []FactKind    { return []FactKind{FactSOAR} }
func (soarPass) Invalidates() []FactKind { return nil }

func (p soarPass) Run(ctx *Context) error {
	if p.record {
		ctx.Report.SOAR = ctx.SOAR()
	}
	return nil
}

// pacPass combines packet accesses across the whole program, then cleans
// up with the scalar optimizer. The rewrite moves and widens accesses, so
// the SOAR facts are invalidated; the aggregate pass requires them again,
// which re-annotates the combined accesses before bodies are merged.
type pacPass struct{ scalar bool }

func (pacPass) Name() string            { return "pac" }
func (pacPass) Requires() []FactKind    { return []FactKind{FactSOAR} }
func (pacPass) Invalidates() []FactKind { return []FactKind{FactSOAR} }

func (p pacPass) Run(ctx *Context) error {
	ctx.Report.PAC = pac.Run(ctx.Prog)
	opt.Optimize(ctx.Prog, opt.Options{Scalar: p.scalar})
	return nil
}

// aggregatePass runs the Figure 7 heuristic and builds the merged
// per-aggregate programs. When the pipeline analyzes (≥ +PAC) it requires
// fresh SOAR facts so the merged clones carry post-PAC annotations.
type aggregatePass struct {
	cfg     aggregate.Config
	analyze bool
}

func (aggregatePass) Name() string { return "aggregate" }

func (p aggregatePass) Requires() []FactKind {
	if p.analyze {
		return []FactKind{FactProfile, FactSOAR}
	}
	return []FactKind{FactProfile}
}
func (aggregatePass) Invalidates() []FactKind { return nil }

func (p aggregatePass) Run(ctx *Context) error {
	plan, err := aggregate.Build(ctx.Prog, ctx.Profile(), p.cfg)
	if err != nil {
		return err
	}
	ctx.Report.Plan = plan
	classes := aggregate.ClassifyChannels(ctx.Prog, plan)
	merged, err := aggregate.BuildMerged(ctx.Prog, plan, classes)
	if err != nil {
		return fmt.Errorf("merge: %w", err)
	}
	ctx.Merged = merged
	ctx.SetPlan(plan, classes)
	return nil
}

// annotateMerged re-runs SOAR on one merged body, seeding each entry with
// the whole-program channel-input fact so the analysis sees through former
// channel boundaries.
func annotateMerged(ctx *Context, m *aggregate.Merged) {
	facts := ctx.SOARIfValid()
	entries := map[string]soar.Input{}
	for _, e := range m.Entries {
		if e.In != nil && facts != nil {
			if fct, ok := facts.ChanInputs[e.In.Name]; ok {
				entries[e.Func.Name] = fct
			}
		}
	}
	soar.AnalyzeWithEntries(m.Prog, entries)
}

// aggOptPass optimizes each ME aggregate's merged body: scalar cleanup,
// then PAC across former PPF boundaries. It rewrites the merged programs
// only, so the whole-program facts stay valid.
type aggOptPass struct{ scalar, pac bool }

func (aggOptPass) Name() string { return "agg-opt" }

func (p aggOptPass) Requires() []FactKind {
	if p.pac {
		return []FactKind{FactPlan, FactSOAR}
	}
	return []FactKind{FactPlan}
}
func (aggOptPass) Invalidates() []FactKind { return nil }

func (p aggOptPass) Run(ctx *Context) error {
	for _, m := range ctx.Merged {
		if m.Agg.Target != aggregate.TargetME {
			continue
		}
		opt.Optimize(m.Prog, opt.Options{Scalar: p.scalar})
		if p.pac {
			annotateMerged(ctx, m)
			pac.Run(m.Prog)
			opt.Optimize(m.Prog, opt.Options{Scalar: p.scalar})
		}
	}
	return nil
}

// phrPass removes packet handling overhead inside the merged bodies. The
// whole program is read-only input (it supplies the global accessor view),
// so no whole-program fact is invalidated.
type phrPass struct{}

func (phrPass) Name() string            { return "phr" }
func (phrPass) Requires() []FactKind    { return []FactKind{FactPlan} }
func (phrPass) Invalidates() []FactKind { return nil }

func (phrPass) Run(ctx *Context) error {
	plan, _ := ctx.Plan()
	ctx.Report.PHR = phr.Run(ctx.Prog, plan, ctx.Merged)
	return nil
}

// swcPass selects software-cache candidates from the profile and rewrites
// the cached globals' access paths.
type swcPass struct{ cfg swc.Config }

func (swcPass) Name() string            { return "swc" }
func (swcPass) Requires() []FactKind    { return []FactKind{FactProfile, FactPlan} }
func (swcPass) Invalidates() []FactKind { return nil }

func (p swcPass) Run(ctx *Context) error {
	cands := swc.SelectCandidates(ctx.Prog, ctx.Profile(), p.cfg)
	if _, err := swc.Apply(ctx.Prog, ctx.Merged, cands, p.cfg); err != nil {
		return err
	}
	ctx.Report.SWCCands = cands
	return nil
}

// finalOptPass exploits what PHR exposed: its pair elimination redirects
// accesses to shared handles, so PAC runs once more over each merged body,
// followed by a final scalar cleanup and SOAR re-annotation.
type finalOptPass struct{ scalar, phrCombine, annotate bool }

func (finalOptPass) Name() string { return "final-opt" }

func (p finalOptPass) Requires() []FactKind {
	if p.annotate || p.phrCombine {
		return []FactKind{FactPlan, FactSOAR}
	}
	return []FactKind{FactPlan}
}
func (finalOptPass) Invalidates() []FactKind { return nil }

func (p finalOptPass) Run(ctx *Context) error {
	for _, m := range ctx.Merged {
		if m.Agg.Target != aggregate.TargetME {
			continue
		}
		if p.phrCombine {
			annotateMerged(ctx, m)
			pac.Run(m.Prog)
		}
		opt.Optimize(m.Prog, opt.Options{Scalar: p.scalar})
		if p.annotate {
			annotateMerged(ctx, m)
		}
	}
	return nil
}

// codegenPass lowers the merged aggregates to CGIR and produces the
// loadable image. Its "after" size reports generated CGIR instructions.
type codegenPass struct{ opts cg.Options }

func (codegenPass) Name() string            { return "codegen" }
func (codegenPass) Requires() []FactKind    { return []FactKind{FactPlan} }
func (codegenPass) Invalidates() []FactKind { return nil }

func (p codegenPass) Run(ctx *Context) error {
	plan, classes := ctx.Plan()
	img, err := cg.Compile(ctx.Prog, plan, ctx.Merged, classes, ctx.SOARIfValid(), p.opts)
	if err != nil {
		return err
	}
	ctx.Image = img
	for _, c := range img.MECode {
		ctx.Report.CodeSizes = append(ctx.Report.CodeSizes, len(c.Program.Code))
	}
	return nil
}

func (codegenPass) AfterSize(ctx *Context) int {
	n := 0
	if ctx.Image != nil {
		for _, c := range ctx.Image.MECode {
			n += len(c.Program.Code)
		}
	}
	return n
}
