package driver_test

import (
	"strings"
	"testing"

	"shangrila/internal/apps"
	"shangrila/internal/driver"
	"shangrila/internal/harness"
)

func TestLevelsStringAndOrder(t *testing.T) {
	want := []string{"BASE", "-O1", "-O2", "+PAC", "+SOAR", "+PHR", "+SWC"}
	levels := driver.Levels()
	if len(levels) != len(want) {
		t.Fatalf("levels = %d, want %d", len(levels), len(want))
	}
	for i, l := range levels {
		if l.String() != want[i] {
			t.Errorf("level %d = %q, want %q", i, l, want[i])
		}
		if int(l) != i {
			t.Errorf("level %q out of order", l)
		}
	}
}

func TestReportsPopulatedPerLevel(t *testing.T) {
	a := apps.L3Switch()
	for _, lvl := range driver.Levels() {
		res, err := harness.Compile(a, lvl, 3)
		if err != nil {
			t.Fatalf("%v: %v", lvl, err)
		}
		rep := res.Report
		if rep.Plan == nil || rep.ProfileStats == nil {
			t.Fatalf("%v: missing plan/profile", lvl)
		}
		if (rep.PAC != nil) != (lvl >= driver.LevelPAC) {
			t.Errorf("%v: PAC stats presence wrong", lvl)
		}
		if (rep.SOAR != nil) != (lvl >= driver.LevelSOAR) {
			t.Errorf("%v: SOAR stats presence wrong", lvl)
		}
		if (rep.PHR != nil) != (lvl >= driver.LevelPHR) {
			t.Errorf("%v: PHR stats presence wrong", lvl)
		}
		if (len(rep.SWCCands) > 0) != (lvl >= driver.LevelSWC) {
			t.Errorf("%v: SWC candidates presence wrong", lvl)
		}
		if len(rep.CodeSizes) == 0 {
			t.Errorf("%v: no code sizes", lvl)
		}
	}
}

func TestLowerSourceErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"module {", "parse"},
		{"module m { ppf f(nosuch ph) { packet_drop(ph); } wiring { rx -> f; } }", "check"},
	}
	for _, c := range cases {
		_, err := driver.LowerSource("bad.baker", c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("source %q: err = %v, want %s error", c.src, err, c.want)
		}
	}
}

func TestProfileTraceRequired(t *testing.T) {
	prog, err := driver.LowerSource("t.baker", `
protocol p { x:32; demux { 4 }; }
module m { ppf f(p ph) { packet_drop(ph); } wiring { rx -> f; } }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := driver.CompileIR(prog, driver.Config{Level: driver.LevelSWC}); err == nil {
		t.Fatal("compiling without a profile trace must fail (aggregation needs weights)")
	}
}
