package aggregate_test

import (
	"testing"

	"shangrila/internal/aggregate"
	"shangrila/internal/baker/types"
	"shangrila/internal/ir"
	"shangrila/internal/packet"
	"shangrila/internal/profiler"
	"shangrila/internal/testutil"
	"shangrila/internal/trace"
	"shangrila/internal/workload"
)

const appSrc = `
protocol ether { dst_hi:16; dst_lo:32; src_hi:16; src_lo:32; type:16; demux { 14 }; }
protocol ipv4 { ver:4; hlen:4; tos:8; length:16; id:16; flags:3; frag:13;
                ttl:8; proto:8; cksum:16; src:32; dst:32; demux { hlen << 2 }; }
protocol arp  { htype:16; ptype:16; op:16; demux { 28 }; }
metadata { rx_port:16; next_hop:16; }

module app {
	struct Rt { dst:uint; nh:uint; }
	Rt table[64];
	channel ip_cc : ipv4;
	channel arp_cc : arp;
	channel out_cc : ether;
	ppf clsfr(ether ph) {
		if (ph->type == 0x0800) {
			ipv4 iph = packet_decap(ph);
			channel_put(ip_cc, iph);
		} else {
			if (ph->type == 0x0806) {
				arp ah = packet_decap(ph);
				channel_put(arp_cc, ah);
			} else { packet_drop(ph); }
		}
	}
	ppf fwd(ipv4 ph) {
		uint nh = 0;
		uint dst = ph->dst;
		for (uint i = 0; i < 64; i++) {
			if (table[i].dst == dst) { nh = table[i].nh; break; }
		}
		if (nh == 0) { packet_drop(ph); }
		else {
			ph->meta.next_hop = nh;
			ether eph = packet_encap(ph);
			channel_put(out_cc, eph);
		}
	}
	ppf arp_handler(arp ph) {
		// Control path: rare.
		uint op = ph->op;
		packet_drop(ph);
	}
	control func add_route(uint idx, uint dst, uint nh) {
		table[idx].dst = dst; table[idx].nh = nh;
	}
	wiring { rx -> clsfr; ip_cc -> fwd; arp_cc -> arp_handler; out_cc -> tx; }
}
`

func buildTrace(tp *types.Program, n int) []*packet.Packet {
	r := workload.NewSource(11)
	var out []*packet.Packet
	for i := 0; i < n; i++ {
		ethType := uint32(0x0800)
		if i == 0 { // one rare ARP packet (<1%)
			ethType = 0x0806
		}
		p, err := trace.Build([]trace.Layer{
			{Proto: tp.Protocols["ether"], Fields: map[string]uint32{"type": ethType}},
			{Proto: tp.Protocols["ipv4"], Fields: map[string]uint32{
				"ver": 4, "hlen": 5, "ttl": 64, "dst": 0x0a000001 + uint32(r.Intn(4))}, Size: 20},
		}, 64, tp.Metadata.Bytes)
		if err != nil {
			panic(err)
		}
		out = append(out, p)
	}
	return out
}

func profileApp(t *testing.T) (*ir.Program, *profiler.Stats) {
	t.Helper()
	prog := testutil.BuildIR(t, appSrc)
	s, err := profiler.NewSession(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Control("app.add_route", 0, 0x0a000001, 3); err != nil {
		t.Fatal(err)
	}
	stats, err := profiler.Profile(prog, buildTrace(prog.Types, 200))
	if err != nil {
		t.Fatal(err)
	}
	return prog, stats
}

func TestThroughputModelEquation1(t *testing.T) {
	// Equation 1: t = floor(n/p) * k with k the slowest stage rate.
	mk := func(cost float64, dup int) *aggregate.Aggregate {
		return &aggregate.Aggregate{Cost: cost, Dup: dup}
	}
	// One stage, cost 100, 6 MEs: 6 replicas, rate 6/100.
	if got := aggregate.Throughput(6, []*aggregate.Aggregate{mk(100, 1)}); got != 0.06 {
		t.Errorf("single stage = %v, want 0.06", got)
	}
	// Two balanced stages of 50: floor(6/2)=3 replicas, k=1/50 -> 0.06.
	two := []*aggregate.Aggregate{mk(50, 1), mk(50, 1)}
	if got := aggregate.Throughput(6, two); got != 0.06 {
		t.Errorf("balanced pipeline = %v, want 0.06", got)
	}
	// Unbalanced 80/20: k = 1/80, 3 replicas -> 0.0375 < merged 0.06:
	// the model prefers merging, as §5.1 observes.
	unb := []*aggregate.Aggregate{mk(80, 1), mk(20, 1)}
	if got := aggregate.Throughput(6, unb); got >= 0.06 {
		t.Errorf("unbalanced pipeline = %v, should be worse than merged 0.06", got)
	}
	// Duplicating the slow stage: dup=2 -> per-stage 40 vs 20; uses 3 MEs,
	// 2 replicas, k=1/40 -> 0.05.
	dup := []*aggregate.Aggregate{mk(80, 2), mk(20, 1)}
	if got := aggregate.Throughput(6, dup); got != 0.05 {
		t.Errorf("duplicated stage = %v, want 0.05", got)
	}
	// Does not fit: 7 stages on 6 MEs -> 0.
	var seven []*aggregate.Aggregate
	for i := 0; i < 7; i++ {
		seven = append(seven, mk(10, 1))
	}
	if got := aggregate.Throughput(6, seven); got != 0 {
		t.Errorf("overcommitted = %v, want 0", got)
	}
}

func TestPlanMergesHotPathAndOffloadsARP(t *testing.T) {
	prog, stats := profileApp(t)
	plan, err := aggregate.Build(prog, stats, aggregate.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// clsfr+fwd merge into one ME aggregate; arp_handler goes to XScale.
	me := plan.MEAggregates()
	if len(me) != 1 {
		t.Fatalf("ME aggregates = %d, want 1:\n%s", len(me), plan)
	}
	if len(me[0].PPFs) != 2 {
		t.Errorf("hot aggregate PPFs = %v, want clsfr+fwd", me[0].PPFs)
	}
	arp := plan.Of["app.arp_handler"]
	if arp == nil || arp.Target != aggregate.TargetXScale {
		t.Errorf("arp_handler not offloaded to XScale:\n%s", plan)
	}
	if plan.Replicas != 6 {
		t.Errorf("replicas = %d, want 6 (whole pipeline fits one ME)", plan.Replicas)
	}
}

func TestCodeStoreLimitForcesPipeline(t *testing.T) {
	prog, stats := profileApp(t)
	cfg := aggregate.DefaultConfig()
	// Pretend each PPF barely fits alone: merging clsfr+fwd must be
	// rejected and the pipeline stays at 2 ME stages.
	cfg.CodeSizeFn = func(f *ir.Func) int { return 2500 }
	plan, err := aggregate.Build(prog, stats, cfg)
	if err != nil {
		t.Fatal(err)
	}
	me := plan.MEAggregates()
	if len(me) != 2 {
		t.Fatalf("ME aggregates = %d, want 2 (code store forces pipelining):\n%s", len(me), plan)
	}
	// Equation 1 may duplicate the dominant stage (fwd's lookup loop is
	// far heavier than clsfr); either way the plan must fit in 6 MEs.
	used := 0
	for _, a := range me {
		used += a.Dup
	}
	if used*plan.Replicas > 6 || plan.Replicas < 1 {
		t.Errorf("plan uses %d MEs x %d replicas, exceeds 6:\n%s", used, plan.Replicas, plan)
	}
	// A balanced alternative exists at 3 replicas; whatever the heuristic
	// picked must model at least that well.
	if plan.Throughput <= 0 {
		t.Errorf("throughput = %v", plan.Throughput)
	}
}

func TestClassifyAndMerge(t *testing.T) {
	prog, stats := profileApp(t)
	plan, err := aggregate.Build(prog, stats, aggregate.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	classes := aggregate.ClassifyChannels(prog, plan)
	byName := func(n string) aggregate.ChannelClass {
		return classes[prog.Types.Channels[n]]
	}
	if byName("app.ip_cc") != aggregate.ChanInternal {
		t.Errorf("ip_cc class = %v, want internal", byName("app.ip_cc"))
	}
	if byName("app.arp_cc") != aggregate.ChanExternal {
		t.Errorf("arp_cc class = %v, want external (crosses to XScale)", byName("app.arp_cc"))
	}
	if byName("app.out_cc") != aggregate.ChanExternal {
		t.Errorf("out_cc class = %v, want external (tx)", byName("app.out_cc"))
	}
	merged, err := aggregate.BuildMerged(prog, plan, classes)
	if err != nil {
		t.Fatal(err)
	}
	// The hot aggregate has a single entry (rx->clsfr) whose merged
	// function contains fwd's body inlined: no calls, no internal puts.
	var hot *aggregate.Merged
	for _, m := range merged {
		if m.Agg.Target == aggregate.TargetME {
			hot = m
		}
	}
	if hot == nil || len(hot.Entries) != 1 {
		t.Fatalf("hot merged entries wrong: %+v", hot)
	}
	entry := hot.Entries[0]
	if entry.In != nil {
		t.Errorf("hot entry should be rx-fed")
	}
	for _, b := range entry.Func.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall {
				t.Errorf("merged entry still calls %q", in.Callee)
			}
			if in.Op == ir.OpChanPut && classes[in.Chan] == aggregate.ChanInternal {
				t.Errorf("internal chanput survived merging")
			}
		}
	}
	// fwd's table loop must now be inside the entry: check for loads of
	// app.table.
	foundTable := false
	for _, b := range entry.Func.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpLoad && in.Global != nil && in.Global.Name == "app.table" {
				foundTable = true
			}
		}
	}
	if !foundTable {
		t.Error("fwd body not inlined into entry (no app.table load)")
	}
}

func TestLoopbackChannelDetected(t *testing.T) {
	src := `
protocol ether { dst_hi:16; dst_lo:32; type:16; demux { 8 }; }
protocol mpls { label:20; exp:3; s:1; mttl:8; demux { 4 }; }
protocol ipv4 { ver:4; hlen:4; tos:8; length:16; ttl:8; dst:32; demux { hlen << 2 }; }
metadata { rx_port:16; }
module m {
	channel mp : mpls;
	channel done : ipv4;
	ppf f(ether ph) {
		mpls mh = packet_decap(ph);
		channel_put(mp, mh);
	}
	ppf pop(mpls ph) {
		if (ph->s == 1) {
			ipv4 iph = packet_decap(ph);
			channel_put(done, iph);
		} else {
			mpls inner = packet_decap(ph);
			channel_put(mp, inner);
		}
	}
	ppf sink(ipv4 ph) { packet_drop(ph); }
	wiring { rx -> f; mp -> pop; done -> sink; }
}`
	prog := testutil.BuildIR(t, src)
	tp := prog.Types
	var tr []*packet.Packet
	for i := 0; i < 50; i++ {
		depth := 1 + i%3
		layers := []trace.Layer{{Proto: tp.Protocols["ether"], Fields: map[string]uint32{"type": 0x8847}}}
		for d := 0; d < depth; d++ {
			s := uint32(0)
			if d == depth-1 {
				s = 1
			}
			layers = append(layers, trace.Layer{Proto: tp.Protocols["mpls"],
				Fields: map[string]uint32{"label": uint32(100 + d), "s": s}})
		}
		layers = append(layers, trace.Layer{Proto: tp.Protocols["ipv4"],
			Fields: map[string]uint32{"ver": 4, "hlen": 5}, Size: 20})
		p, err := trace.Build(layers, 64, tp.Metadata.Bytes)
		if err != nil {
			t.Fatal(err)
		}
		tr = append(tr, p)
	}
	stats, err := profiler.Profile(prog, tr)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := aggregate.Build(prog, stats, aggregate.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	classes := aggregate.ClassifyChannels(prog, plan)
	mp := prog.Types.Channels["m.mp"]
	if plan.Of["m.f"] == plan.Of["m.pop"] {
		if classes[mp] != aggregate.ChanLoopback {
			t.Errorf("mp class = %v, want loopback (pop feeds itself)", classes[mp])
		}
	}
	merged, err := aggregate.BuildMerged(prog, plan, classes)
	if err != nil {
		t.Fatal(err)
	}
	_ = merged
}
