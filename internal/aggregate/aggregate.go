// Package aggregate implements the paper's aggregation stage (§5.1): PPFs
// are merged or duplicated into aggregates, each mapped to one processing
// element, to maximize the packet forwarding rate. The heuristic follows
// Figure 7 of the paper; the cost model follows Equation 1
// (t ∝ n·k/p): with the ME count fixed, merging removes channel overhead
// (raising k) while pipelining spends MEs on stages (raising p), so the
// model biases toward duplication over pipelining exactly as the paper
// observes — pipelining happens only when an aggregate cannot fit the
// 4096-instruction ME code store.
package aggregate

import (
	"fmt"
	"sort"

	"shangrila/internal/baker/types"
	"shangrila/internal/ir"
	"shangrila/internal/profiler"
)

// Target identifies the processing element class an aggregate runs on.
type Target int

const (
	// TargetME maps the aggregate to microengines.
	TargetME Target = iota
	// TargetXScale maps infrequent/oversized aggregates to the control
	// processor, where they run interpreted.
	TargetXScale
)

func (t Target) String() string {
	if t == TargetXScale {
		return "xscale"
	}
	return "me"
}

// Config parameterizes aggregation.
type Config struct {
	// NumMEs is the number of microengines available for packet
	// processing (6 on the paper's IXP2400 setup: 8 minus Rx and Tx).
	NumMEs int
	// CodeStore is the per-ME instruction budget (4096 on the IXP).
	CodeStore int
	// ChannelCost is the estimated per-packet cost (in IR-instruction
	// units) of crossing an inter-aggregate communication channel: ring
	// put + get plus head_ptr hand-off.
	ChannelCost float64
	// XScaleFreqCutoff: PPFs handling fewer than this fraction of packets
	// are control-path code and move to the XScale.
	XScaleFreqCutoff float64
	// CodeSizeFn estimates the post-codegen instruction count of an IR
	// function. Defaults to EstimateCodeSize.
	CodeSizeFn func(*ir.Func) int
}

// DefaultConfig returns the paper-calibrated configuration.
func DefaultConfig() Config {
	return Config{
		NumMEs:           6,
		CodeStore:        4096,
		ChannelCost:      40,
		XScaleFreqCutoff: 0.01,
	}
}

// Aggregate is a set of PPFs mapped to one processing element.
type Aggregate struct {
	ID     int
	PPFs   []string // qualified PPF names, deterministic order
	Target Target
	// Dup is the stage duplication factor chosen by the Figure 7 loop
	// (before whole-pipeline replication).
	Dup int
	// Cost is the estimated per-packet execution cost in IR-instruction
	// units, including external channel overhead.
	Cost float64
	// CodeSize is the estimated post-codegen instruction count.
	CodeSize int
	// Weight is the fraction of trace packets entering this aggregate.
	Weight float64
}

// Plan is the aggregation result.
type Plan struct {
	Aggregates []*Aggregate
	// Replicas is the whole-pipeline replication factor floor(n/p).
	Replicas int
	// Of maps each PPF to its aggregate.
	Of map[string]*Aggregate
	// Throughput is the modelled relative forwarding rate (Equation 1).
	Throughput float64
}

// MEAggregates returns the aggregates mapped to microengines.
func (p *Plan) MEAggregates() []*Aggregate {
	var out []*Aggregate
	for _, a := range p.Aggregates {
		if a.Target == TargetME {
			out = append(out, a)
		}
	}
	return out
}

// String renders the plan for logs and tests.
func (p *Plan) String() string {
	s := fmt.Sprintf("plan: %d aggregate(s), %d replica(s), throughput %.4f\n",
		len(p.Aggregates), p.Replicas, p.Throughput)
	for _, a := range p.Aggregates {
		s += fmt.Sprintf("  aggr %d [%s dup=%d cost=%.1f size=%d]: %v\n",
			a.ID, a.Target, a.Dup, a.Cost, a.CodeSize, a.PPFs)
	}
	return s
}

// Throughput implements Equation 1: with n processors, p pipeline stages
// (counting duplication), and per-stage costs, the forwarding rate is the
// whole-pipeline replication factor times the slowest stage's rate.
func Throughput(numMEs int, stages []*Aggregate) float64 {
	if len(stages) == 0 {
		return 0
	}
	used := 0
	slowest := 0.0
	for _, a := range stages {
		used += a.Dup
		perStage := a.Cost / float64(a.Dup)
		if perStage > slowest {
			slowest = perStage
		}
	}
	if used == 0 || slowest == 0 {
		return 0
	}
	replicas := numMEs / used
	if replicas == 0 {
		return 0 // does not fit; caller must keep merging
	}
	return float64(replicas) / slowest
}

// Build runs the Figure 7 heuristic over the program using Functional
// profiler statistics.
func Build(prog *ir.Program, stats *profiler.Stats, cfg Config) (*Plan, error) {
	if cfg.NumMEs <= 0 {
		return nil, fmt.Errorf("aggregate: NumMEs must be positive")
	}
	if cfg.CodeSizeFn == nil {
		cfg.CodeSizeFn = EstimateCodeSize
	}
	b := &builder{prog: prog, stats: stats, cfg: cfg}
	return b.run()
}

type builder struct {
	prog  *ir.Program
	stats *profiler.Stats
	cfg   Config
}

func (b *builder) run() (*Plan, error) {
	// Initial aggregates: one per PPF, in declaration order.
	var aggs []*Aggregate
	total := float64(b.stats.Packets)
	if total == 0 {
		return nil, fmt.Errorf("aggregate: profile contains no packets")
	}
	for _, fn := range b.prog.PPFs() {
		fs := b.stats.Funcs[fn.Name]
		weight := 0.0
		if fs != nil {
			weight = float64(fs.Invocations) / total
		}
		a := &Aggregate{
			ID:     len(aggs),
			PPFs:   []string{fn.Name},
			Dup:    1,
			Weight: weight,
		}
		aggs = append(aggs, a)
	}
	// Move control-path PPFs to the XScale up front (they would otherwise
	// anchor merges); the paper does this after formation, but the
	// outcome is the same and it keeps the hot loop focused.
	var hot []*Aggregate
	var cold []*Aggregate
	for _, a := range aggs {
		if a.Weight < b.cfg.XScaleFreqCutoff {
			a.Target = TargetXScale
			cold = append(cold, a)
		} else {
			hot = append(hot, a)
		}
	}
	for _, a := range hot {
		b.refresh(a, hot)
	}

	// Figure 7 search, implemented as a hill-climb with duplication
	// rebalancing: after every candidate merge the stage duplication
	// factors are re-derived from the throughput model (the DUPLICATE
	// branch of the paper's loop, applied exhaustively), and the merge
	// with the best resulting Equation-1 throughput is taken. Ties prefer
	// fewer aggregates: merging removes channel overhead, the bias §5.1
	// observes on real hardware. When more aggregates remain than
	// processors, the constraint is relaxed: the least-bad merge is
	// forced (RELAX_CONSTRAINT).
	b.rebalance(hot)
	for round := 0; round < 1000; round++ {
		cur := Throughput(b.cfg.NumMEs, hot)
		pairs := b.formPairs(hot)
		var best []*Aggregate
		bestT := -1.0
		for _, pr := range pairs {
			merged := b.mergedCandidate(pr)
			if merged.CodeSize > b.cfg.CodeStore {
				continue
			}
			var cand []*Aggregate
			for _, a := range hot {
				if a != pr.a && a != pr.b {
					cand = append(cand, a)
				}
			}
			cand = append(cand, merged)
			b.rebalance(cand)
			t := Throughput(b.cfg.NumMEs, cand)
			if t > bestT {
				bestT = t
				best = cand
			}
		}
		switch {
		case best != nil && (bestT >= cur || len(hot) > b.cfg.NumMEs):
			hot = best
			sort.Slice(hot, func(i, j int) bool { return hot[i].ID < hot[j].ID })
		default:
			// No merge improves and the plan fits: done.
			round = 1 << 30
		}
		if round == 1<<30 {
			break
		}
	}
	b.rebalance(hot)
	// Post-pass: oversized aggregates cannot be mapped to an ME at all if
	// even a single PPF exceeds the code store; they fall to the XScale.
	for _, a := range hot {
		if a.CodeSize > b.cfg.CodeStore {
			// Keep on MEs only if it is a singleton we cannot split
			// further; otherwise Figure 7's merging already refused to
			// create it. A singleton that overflows goes to the XScale.
			if len(a.PPFs) == 1 {
				a.Target = TargetXScale
			}
		}
	}
	var stages []*Aggregate
	for _, a := range hot {
		if a.Target == TargetME {
			stages = append(stages, a)
		} else {
			cold = append(cold, a)
		}
	}
	if len(stages) == 0 {
		return nil, fmt.Errorf("aggregate: no ME-eligible aggregates (all control path?)")
	}
	// MAP_TO_MES: replicate the whole pipeline across remaining MEs.
	used := 0
	for _, a := range stages {
		used += a.Dup
	}
	replicas := b.cfg.NumMEs / used
	if replicas < 1 {
		replicas = 1
	}
	final := append(stages, cold...)
	for i, a := range final {
		a.ID = i
	}
	plan := &Plan{
		Aggregates: final,
		Replicas:   replicas,
		Of:         map[string]*Aggregate{},
		Throughput: Throughput(b.cfg.NumMEs, stages),
	}
	for _, a := range final {
		for _, f := range a.PPFs {
			plan.Of[f] = a
		}
	}
	return plan, nil
}

// refresh recomputes an aggregate's cost and code size.
func (b *builder) refresh(a *Aggregate, all []*Aggregate) {
	total := float64(b.stats.Packets)
	member := map[string]bool{}
	for _, f := range a.PPFs {
		member[f] = true
	}
	cost := 0.0
	for _, f := range a.PPFs {
		fs := b.stats.Funcs[f]
		if fs == nil || fs.Invocations == 0 {
			continue
		}
		w := float64(fs.Invocations) / total
		cost += w * float64(fs.Instrs) / float64(fs.Invocations)
	}
	// Channel overhead: every message on a channel crossing the aggregate
	// boundary costs ChannelCost (half attributed to each side, so a
	// merge of producer and consumer removes the full cost).
	for chName, msgs := range b.stats.Chans {
		ch := b.prog.Types.Channels[chName]
		if ch == nil {
			continue
		}
		producerIn, consumerIn := b.chanEndsIn(ch, member)
		w := float64(msgs) / total
		if producerIn != consumerIn {
			cost += w * b.cfg.ChannelCost
		} else if producerIn && consumerIn {
			// Internal: converted to a call, nearly free.
			cost += w * 1
		}
	}
	a.Cost = cost
	size := 0
	seen := map[string]bool{}
	for _, f := range a.PPFs {
		size += b.codeSizeWithHelpers(f, seen)
	}
	a.CodeSize = size
}

// chanEndsIn reports whether ch's producers / consumer lie in the member
// set.
func (b *builder) chanEndsIn(ch *types.Channel, member map[string]bool) (producerIn, consumerIn bool) {
	consumerIn = member[ch.Consumer]
	for _, name := range b.prog.Order {
		fn := b.prog.Funcs[name]
		if fn.Kind != ir.FuncPPF || !member[name] {
			continue
		}
		for _, blk := range fn.Blocks {
			for _, in := range blk.Instrs {
				if in.Op == ir.OpChanPut && in.Chan == ch {
					producerIn = true
				}
			}
		}
	}
	return
}

// codeSizeWithHelpers estimates fn's code size including callees (helpers
// share the code store with their callers on an ME).
func (b *builder) codeSizeWithHelpers(fn string, seen map[string]bool) int {
	if seen[fn] {
		return 0
	}
	seen[fn] = true
	f := b.prog.Funcs[fn]
	if f == nil {
		return 0
	}
	size := b.cfg.CodeSizeFn(f)
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Op == ir.OpCall {
				size += b.codeSizeWithHelpers(in.Callee, seen)
			}
		}
	}
	return size
}

// rebalance re-derives stage duplication factors for a candidate stage
// set: reset to one, then repeatedly duplicate the dominating (slowest)
// stage while Equation 1 improves — the paper's DUPLICATE step driven to
// its fixpoint.
func (b *builder) rebalance(stages []*Aggregate) {
	if len(stages) == 0 {
		return
	}
	for _, a := range stages {
		a.Dup = 1
	}
	best := make([]int, len(stages))
	bestT := Throughput(b.cfg.NumMEs, stages)
	snapshot := func() {
		for i, a := range stages {
			best[i] = a.Dup
		}
	}
	snapshot()
	// Walk the duplication frontier up to the ME budget, always
	// duplicating the slowest stage; throughput is not monotone along the
	// walk (whole-pipeline replication drops at each budget boundary), so
	// keep the best configuration seen rather than stopping at the first
	// plateau.
	for used := len(stages); used < b.cfg.NumMEs; used++ {
		var dom *Aggregate
		for _, a := range stages {
			if dom == nil || a.Cost/float64(a.Dup) > dom.Cost/float64(dom.Dup) {
				dom = a
			}
		}
		dom.Dup++
		// Require a real improvement: floating-point noise on exact
		// plateaus (dup×replicas constant) must not inflate duplication.
		if t := Throughput(b.cfg.NumMEs, stages); t > bestT*(1+1e-9) {
			bestT = t
			snapshot()
		}
	}
	for i, a := range stages {
		a.Dup = best[i]
	}
}

type pair struct {
	a, b     *Aggregate
	chanCost float64
}

// formPairs returns aggregate pairs connected by channels, highest
// traffic first.
func (b *builder) formPairs(aggs []*Aggregate) []pair {
	idx := map[string]*Aggregate{}
	for _, a := range aggs {
		for _, f := range a.PPFs {
			idx[f] = a
		}
	}
	total := float64(b.stats.Packets)
	costs := map[[2]*Aggregate]float64{}
	for chName, msgs := range b.stats.Chans {
		ch := b.prog.Types.Channels[chName]
		if ch == nil || ch.Consumer == "tx" {
			continue
		}
		cons := idx[ch.Consumer]
		if cons == nil {
			continue
		}
		for _, name := range b.prog.Order {
			fn := b.prog.Funcs[name]
			if fn.Kind != ir.FuncPPF {
				continue
			}
			prod := idx[name]
			if prod == nil || prod == cons {
				continue
			}
			if putsTo(fn, ch) {
				key := [2]*Aggregate{prod, cons}
				costs[key] += float64(msgs) / total * b.cfg.ChannelCost
			}
		}
	}
	var pairs []pair
	for k, c := range costs {
		pairs = append(pairs, pair{a: k[0], b: k[1], chanCost: c})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].chanCost != pairs[j].chanCost {
			return pairs[i].chanCost > pairs[j].chanCost
		}
		return pairs[i].a.ID < pairs[j].a.ID // determinism
	})
	return pairs
}

func putsTo(fn *ir.Func, ch *types.Channel) bool {
	for _, blk := range fn.Blocks {
		for _, in := range blk.Instrs {
			if in.Op == ir.OpChanPut && in.Chan == ch {
				return true
			}
		}
	}
	return false
}

func (b *builder) mergedCandidate(pr pair) *Aggregate {
	m := &Aggregate{
		ID:     pr.a.ID,
		PPFs:   append(append([]string(nil), pr.a.PPFs...), pr.b.PPFs...),
		Dup:    1,
		Weight: pr.a.Weight + pr.b.Weight,
	}
	b.refresh(m, nil)
	return m
}

// ---------------------------------------------------------------------------
// Code size estimation

// Per-op code generation expansion estimates (CGIR instructions per IR
// op). Packet accesses dominate: an access with an unknown offset costs
// the paper's "38 + 5·size" instructions; a statically resolved one a
// handful.
const (
	sizeALU            = 1
	sizeBranch         = 2
	sizeCall           = 3
	sizeGlobalAccess   = 4
	sizePktAccessKnown = 6
	sizePktAccessDyn   = 40
	sizeMetaAccess     = 4
	sizeEncapDyn       = 6
	sizeChanPut        = 10
	sizeMisc           = 4
)

// EstimateCodeSize predicts the post-codegen instruction count of f,
// consulting SOAR annotations when present.
func EstimateCodeSize(f *ir.Func) int {
	size := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpBr, ir.OpCondBr, ir.OpRet:
				size += sizeBranch
			case ir.OpCall:
				size += sizeCall
			case ir.OpLoad, ir.OpStore:
				size += sizeGlobalAccess + maxInt(len(in.Dst), len(in.Args))
			case ir.OpPktLoad, ir.OpPktStore:
				if in.StaticOff != ir.UnknownOff {
					size += sizePktAccessKnown + in.Width/4
				} else {
					size += sizePktAccessDyn + in.Width/4
				}
			case ir.OpMetaLoad, ir.OpMetaStore:
				size += sizeMetaAccess
			case ir.OpEncap, ir.OpDecap:
				size += sizeEncapDyn
			case ir.OpChanPut:
				size += sizeChanPut
			case ir.OpPktCopy, ir.OpPktCreate, ir.OpPktDrop,
				ir.OpAddTail, ir.OpRemoveTail, ir.OpPktLength,
				ir.OpLockAcquire, ir.OpLockRelease,
				ir.OpCacheLookup, ir.OpCacheFill, ir.OpCacheFlush:
				size += sizeMisc
			default:
				size += sizeALU
			}
		}
	}
	return size
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
