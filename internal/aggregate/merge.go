package aggregate

import (
	"fmt"
	"sort"

	"shangrila/internal/baker/types"
	"shangrila/internal/ir"
	"shangrila/internal/opt"
)

// ChannelClass says how the runtime realizes one channel given the plan.
type ChannelClass int

const (
	// ChanExternal crosses aggregates (or reaches tx): a scratch ring.
	ChanExternal ChannelClass = iota
	// ChanInternal is producer and consumer in the same aggregate with no
	// cycle: converted to a direct call and inlined away.
	ChanInternal
	// ChanLoopback stays within one aggregate but participates in a
	// wiring cycle (an MPLS label-stack pop loop): the dispatch loop
	// requeues it locally instead of calling (recursion is forbidden).
	ChanLoopback
)

func (c ChannelClass) String() string {
	switch c {
	case ChanInternal:
		return "internal"
	case ChanLoopback:
		return "loopback"
	}
	return "external"
}

// Entry is one compiled entry point of an aggregate: the merged function
// invoked by the dispatch loop for packets arriving on In.
type Entry struct {
	// In is the channel feeding this entry; nil means the rx source.
	In *types.Channel
	// Func is the merged, inlined function (parameter: the packet
	// handle).
	Func *ir.Func
}

// Merged is an aggregate's compiled view: a self-contained IR program with
// merged entry functions, plus the classification of every channel the
// aggregate touches.
type Merged struct {
	Agg     *Aggregate
	Prog    *ir.Program
	Entries []*Entry
}

// Clone deep-copies the merged view's program and remaps the entries onto
// the cloned functions, sharing the aggregate and channel metadata. The
// incremental compile session snapshots merged state between passes with
// this, so later transforms cannot disturb a cached snapshot.
func (m *Merged) Clone() *Merged {
	np := ir.CloneProgram(m.Prog)
	cp := &Merged{Agg: m.Agg, Prog: np}
	for _, e := range m.Entries {
		cp.Entries = append(cp.Entries, &Entry{In: e.In, Func: np.Funcs[e.Func.Name]})
	}
	return cp
}

// ClassifyChannels decides every channel's implementation class under the
// plan. Channels whose producer and consumer share an aggregate become
// calls when the PPF wiring stays acyclic, loopbacks otherwise.
func ClassifyChannels(prog *ir.Program, plan *Plan) map[*types.Channel]ChannelClass {
	classes := map[*types.Channel]ChannelClass{}
	// Producer sets per channel.
	producers := map[*types.Channel][]string{}
	for _, name := range prog.Order {
		fn := prog.Funcs[name]
		if fn.Kind != ir.FuncPPF {
			continue
		}
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpChanPut {
					producers[in.Chan] = append(producers[in.Chan], name)
				}
			}
		}
	}
	// Candidate internal channels, processed deterministically; accept as
	// internal while the intra-aggregate call graph stays acyclic.
	type edge struct{ from, to string }
	var chans []*types.Channel
	for _, ch := range prog.Types.ChanByID {
		chans = append(chans, ch)
	}
	adj := map[string][]string{}
	hasPath := func(from, to string) bool {
		seen := map[string]bool{}
		stack := []string{from}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if n == to {
				return true
			}
			if seen[n] {
				continue
			}
			seen[n] = true
			stack = append(stack, adj[n]...)
		}
		return false
	}
	for _, ch := range chans {
		classes[ch] = ChanExternal
		if ch.Consumer == "tx" || ch.Consumer == "" {
			continue
		}
		consAgg := plan.Of[ch.Consumer]
		if consAgg == nil || consAgg.Target != TargetME {
			continue
		}
		prods := producers[ch]
		if len(prods) == 0 {
			continue
		}
		allSame := true
		for _, p := range prods {
			if plan.Of[p] != consAgg {
				allSame = false
				break
			}
		}
		if !allSame {
			continue
		}
		// Same aggregate: internal if no cycle results.
		var edges []edge
		ok := true
		for _, p := range prods {
			if p == ch.Consumer || hasPath(ch.Consumer, p) {
				ok = false
				break
			}
			edges = append(edges, edge{from: p, to: ch.Consumer})
		}
		if !ok {
			classes[ch] = ChanLoopback
			continue
		}
		classes[ch] = ChanInternal
		for _, e := range edges {
			adj[e.from] = append(adj[e.from], e.to)
		}
	}
	return classes
}

// BuildMerged constructs the per-aggregate merged programs: internal
// channel puts become direct calls, consumer PPF bodies are cloned as
// helpers, and everything is inlined into the entry functions.
func BuildMerged(prog *ir.Program, plan *Plan, classes map[*types.Channel]ChannelClass) ([]*Merged, error) {
	var out []*Merged
	for _, agg := range plan.Aggregates {
		m, err := buildOne(prog, plan, classes, agg)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

func buildOne(prog *ir.Program, plan *Plan, classes map[*types.Channel]ChannelClass, agg *Aggregate) (*Merged, error) {
	np := ir.CloneProgram(prog)
	member := map[string]bool{}
	for _, f := range agg.PPFs {
		member[f] = true
	}
	// Convert internal channel puts into calls of helper clones.
	needHelper := map[string]bool{}
	for _, name := range agg.PPFs {
		fn := np.Funcs[name]
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpChanPut && classes[in.Chan] == ChanInternal {
					needHelper[in.Chan.Consumer] = true
				}
			}
		}
	}
	for _, name := range agg.PPFs {
		fn := np.Funcs[name]
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpChanPut && classes[in.Chan] == ChanInternal {
					consumer := in.Chan.Consumer
					in.Op = ir.OpCall
					in.Callee = consumer + "$h"
					in.Chan = nil
				}
			}
		}
	}
	// Helper clones carry the converted bodies (conversion above already
	// rewrote their internal puts too, since helpers are cloned from the
	// converted member functions).
	helperNames := make([]string, 0, len(needHelper))
	for name := range needHelper {
		helperNames = append(helperNames, name)
	}
	sort.Strings(helperNames)
	for _, name := range helperNames {
		orig := np.Funcs[name]
		if orig == nil {
			return nil, fmt.Errorf("aggregate: internal channel consumer %q missing", name)
		}
		h := orig.Clone()
		h.Name = name + "$h"
		h.Kind = ir.FuncHelper
		np.Funcs[h.Name] = h
		np.Order = append(np.Order, h.Name)
	}
	// Entries: member PPFs fed by rx, an external channel, or a loopback.
	var entries []*Entry
	if prog.Types.Entry != nil && member[prog.Types.Entry.Name] {
		entries = append(entries, &Entry{In: nil, Func: np.Funcs[prog.Types.Entry.Name]})
	}
	for _, ch := range prog.Types.ChanByID {
		if !member[ch.Consumer] {
			continue
		}
		if classes[ch] == ChanExternal || classes[ch] == ChanLoopback {
			entries = append(entries, &Entry{In: ch, Func: np.Funcs[ch.Consumer]})
		}
	}
	// Inline helper clones (and ordinary helpers) into the entries.
	opt.InlineAll(np)
	return &Merged{Agg: agg, Prog: np, Entries: entries}, nil
}
