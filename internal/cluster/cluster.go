// Package cluster simulates a multi-NPU line card: N independently
// configured IXP machines joined by an inter-chip switch fabric and
// fronted by an ECMP flow-hash load balancer. One deterministic workload
// stream (millions of concurrent Zipf flows) is sharded across the chips
// by flow hash; each chip runs its own compiled image behind an
// ixp.FabricPort whose gap-chained deliveries reproduce the scheduled
// arrival times exactly, so a one-chip cluster is bit-identical to a
// plain single-machine run. A round-robin scheduler advances every chip
// in fixed lookahead epochs — chips are independent between barriers
// (the balancer is open-loop), so epochs may execute on any number of
// workers without changing a single observable bit.
package cluster

import (
	"fmt"
	"math"

	"shangrila/internal/cg"
	"shangrila/internal/ir"
	"shangrila/internal/ixp"
	"shangrila/internal/metrics"
	"shangrila/internal/packet"
	"shangrila/internal/profiler"
	"shangrila/internal/rts"
	"shangrila/internal/workload"
)

// ChipConfig shapes one NPU in the cluster. The zero value gives the
// default machine (rts resolves a zero Cfg to ixp.DefaultConfig) with
// one packet-processing ME and the serial engine.
type ChipConfig struct {
	NumMEs int
	Cfg    ixp.Config     // zero value = calibrated IXP2400 defaults
	Engine ixp.EngineSpec // nil = serial; per-chip EngineParallel is allowed
}

// DrainPlan takes one chip out of the ECMP set mid-run: the balancer
// stops routing arrivals due at or after AtCycle to Chip, and the
// scheduler drains the chip's fabric port at the next epoch barrier.
// AtCycle is absolute on the cluster timeline (warm-up included).
type DrainPlan struct {
	Chip    int   `json:"chip"`
	AtCycle int64 `json:"at_cycle"`
}

// Config assembles a cluster run. Image/Prog/Trace/Controls come from
// one compile — every chip loads the same application (a line card runs
// one forwarding program replicated per NPU).
type Config struct {
	Image    *cg.Image
	Prog     *ir.Program
	Trace    []*packet.Packet
	Controls []profiler.Control

	Chips    []ChipConfig
	Workload workload.Spec // the aggregate offered load, pre-sharding

	// FabricLatency defers each chip's first delivery by this many
	// cycles (the balancer + fabric traversal). Constant per-hop latency
	// cancels out of inter-arrival gaps, so an offset is its whole
	// observable effect; 0 keeps the one-chip case bit-identical to a
	// plain run.
	FabricLatency int64

	// Epoch is the scheduler's lookahead window in cycles (default
	// 10_000): every chip advances one epoch between barriers. Arrivals
	// are scheduled ahead by the open-loop balancer, never chip-to-chip,
	// so any epoch size is conservative; it only sets the granularity of
	// drain application and bucket boundaries.
	Epoch int64

	// Buckets is the measurement timeline resolution (default 8).
	Buckets int

	// Workers bounds how many chips advance concurrently within an
	// epoch (default 1; capped at the chip count). Results are
	// bit-identical at any value.
	Workers int

	Warmup  int64
	Measure int64
	Seed    uint64 // balancer flow-hash seed

	Drain *DrainPlan
}

const (
	defaultEpoch   = 10_000
	defaultBuckets = 8
)

// Topology is the report-facing description of the cluster layout.
// Field order is fixed so encoding/json output is canonical.
// Worker count is deliberately absent: results are bit-identical at any
// worker count, and recording it would make otherwise-identical reports
// differ.
type Topology struct {
	Chips         int        `json:"chips"`
	FabricLatency int64      `json:"fabric_latency_cycles"`
	Epoch         int64      `json:"epoch_cycles"`
	Seed          uint64     `json:"seed"`
	Flows         int        `json:"flows"`
	ZipfS         float64    `json:"zipf_s"`
	OfferedGbps   float64    `json:"offered_gbps"`
	Drain         *DrainPlan `json:"drain,omitempty"`
}

// ChipResult is one NPU's measured window.
type ChipResult struct {
	Chip        int                       `json:"chip"`
	MEs         int                       `json:"mes"`
	Engine      string                    `json:"engine"`
	Shards      int                       `json:"shards,omitempty"`
	Drained     bool                      `json:"drained,omitempty"`
	GoodputGbps float64                   `json:"goodput_gbps"`
	TxPackets   uint64                    `json:"tx_packets"`
	RxPackets   uint64                    `json:"rx_packets"`
	RxDropped   uint64                    `json:"rx_dropped"`
	Routed      uint64                    `json:"routed_arrivals"`
	Latency     metrics.HistogramSnapshot `json:"latency_cycles"`
}

// Bucket is one slice of the measured timeline: per-chip goodput at
// bucket resolution is the redistribution evidence a drain scenario
// reports.
type Bucket struct {
	StartCycle  int64     `json:"start_cycle"`
	EndCycle    int64     `json:"end_cycle"`
	ChipGbps    []float64 `json:"chip_gbps"`
	ClusterGbps float64   `json:"cluster_gbps"`
}

// Result is one cluster run's measured window.
type Result struct {
	Topology      Topology                  `json:"topology"`
	AggregateGbps float64                   `json:"aggregate_gbps"`
	TxPackets     uint64                    `json:"tx_packets"`
	RxPackets     uint64                    `json:"rx_packets"`
	RxDropped     uint64                    `json:"rx_dropped"`
	Imbalance     float64                   `json:"imbalance"`
	Latency       metrics.HistogramSnapshot `json:"latency_cycles"`
	Chips         []ChipResult              `json:"per_chip"`
	Buckets       []Bucket                  `json:"buckets"`
}

// chip is one NPU plus its fabric attachment.
type chip struct {
	rt   *rts.Runtime
	port *ixp.FabricPort
	prev ixp.Stats // cumulative snapshot at the last bucket boundary
}

// Cluster is a constructed line card ready to run.
type Cluster struct {
	cfg      Config
	bal      *balancer
	chips    []*chip
	clockMHz float64
	now      int64 // shared cluster timeline (cycles)
	workers  int
	drained  bool // port drain applied
}

// New builds the cluster: the shared balancer, then per chip a fabric
// port and a runtime whose machine uses the port as its media.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Chips) == 0 {
		return nil, fmt.Errorf("cluster: need at least one chip")
	}
	if cfg.Epoch <= 0 {
		cfg.Epoch = defaultEpoch
	}
	if cfg.Buckets <= 0 {
		cfg.Buckets = defaultBuckets
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Workers > len(cfg.Chips) {
		cfg.Workers = len(cfg.Chips)
	}
	if d := cfg.Drain; d != nil && (d.Chip < 0 || d.Chip >= len(cfg.Chips)) {
		return nil, fmt.Errorf("cluster: drain chip %d out of range (have %d chips)", d.Chip, len(cfg.Chips))
	}
	// The cluster timeline is in cycles, so every chip must tick at one
	// clock rate (heterogeneity lives in ME counts, engines, memory
	// parameters).
	clock := 0.0
	for i, cc := range cfg.Chips {
		c := cc.Cfg.ClockMHz
		if cc.Cfg.NumMEs == 0 { // zero Cfg resolves to defaults inside rts
			c = ixp.DefaultConfig().ClockMHz
		}
		if i == 0 {
			clock = c
		} else if c != clock {
			return nil, fmt.Errorf("cluster: chip %d clock %v MHz differs from chip 0's %v MHz; the epoch timeline needs a shared clock", i, c, clock)
		}
	}

	wsp, err := cfg.Workload.Normalize()
	if err != nil {
		return nil, fmt.Errorf("cluster: workload: %w", err)
	}
	cfg.Workload = wsp

	bal, err := newBalancer(wsp, cfg.Seed, clock, len(cfg.Chips))
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	if cfg.Drain != nil {
		bal.scheduleDrain(cfg.Drain.Chip, cfg.Drain.AtCycle)
	}

	cl := &Cluster{cfg: cfg, bal: bal, clockMHz: clock, workers: cfg.Workers}
	for i, cc := range cfg.Chips {
		port := ixp.NewFabricPort(&chipFeed{b: bal, chip: i}, nil, cfg.FabricLatency)
		numMEs := cc.NumMEs
		if numMEs <= 0 {
			numMEs = 1
		}
		rt, err := rts.New(cfg.Image, cfg.Prog, cfg.Trace, rts.Options{
			NumMEs: numMEs, Cfg: cc.Cfg, Engine: cc.Engine, Media: port,
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: chip %d: %w", i, err)
		}
		port.SetSink(rt)
		for _, c := range cfg.Controls {
			if err := rt.Control(c.Name, c.Args...); err != nil {
				return nil, fmt.Errorf("cluster: chip %d control %s: %w", i, c.Name, err)
			}
		}
		cl.chips = append(cl.chips, &chip{rt: rt, port: port})
	}
	return cl, nil
}

// advance runs every chip for the same cycle span, fanning chips across
// the worker pool and rejoining at the barrier. Chips only share the
// mutex-protected balancer (whose evolution is interleaving-invariant),
// so the worker count never changes results.
func (c *Cluster) advance(cycles int64) error {
	if c.workers <= 1 {
		for i, ch := range c.chips {
			if err := ch.rt.Run(cycles); err != nil {
				return fmt.Errorf("cluster: chip %d: %w", i, err)
			}
		}
		return nil
	}
	jobs := make(chan int)
	errs := make([]error, len(c.chips))
	done := make(chan struct{})
	for w := 0; w < c.workers; w++ {
		go func() {
			for i := range jobs {
				if err := c.chips[i].rt.Run(cycles); err != nil {
					errs[i] = fmt.Errorf("cluster: chip %d: %w", i, err)
				}
			}
			done <- struct{}{}
		}()
	}
	for i := range c.chips {
		jobs <- i
	}
	close(jobs)
	for w := 0; w < c.workers; w++ {
		<-done
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// step advances the cluster one epoch (clipped to remaining), applying a
// scheduled port drain at the barrier it first falls due.
func (c *Cluster) step(remaining int64) (int64, error) {
	span := c.cfg.Epoch
	if span > remaining {
		span = remaining
	}
	if err := c.advance(span); err != nil {
		return 0, err
	}
	c.now += span
	if d := c.cfg.Drain; d != nil && !c.drained && c.now >= d.AtCycle {
		c.chips[d.Chip].port.Drain()
		c.drained = true
	}
	return span, nil
}

// Warm runs the warm-up window and zeroes every chip's counters, the
// shared-latency baseline and the balancer's routed baseline.
func (c *Cluster) Warm() error {
	left := c.cfg.Warmup
	for left > 0 {
		n, err := c.step(left)
		if err != nil {
			return err
		}
		left -= n
	}
	for _, ch := range c.chips {
		ch.rt.M.ResetStats()
		ch.prev = ch.rt.M.Snapshot()
	}
	return nil
}

// Measure runs the measured window in epoch steps, cutting bucket
// boundaries at Buckets even slices of the timeline, and assembles the
// result. Per-chip counters accumulate across the whole window (one
// reset at measure start); buckets are cumulative-snapshot diffs, so
// the final per-chip statistics and the merged latency distribution
// cover every measured cycle.
func (c *Cluster) Measure() (*Result, error) {
	routedBase := c.bal.Routed()
	measure := c.cfg.Measure
	nb := c.cfg.Buckets
	start := c.now
	res := &Result{Topology: c.topology()}

	elapsed := int64(0)
	for b := 0; b < nb; b++ {
		target := measure * int64(b+1) / int64(nb)
		bStart := start + elapsed
		for elapsed < target {
			n, err := c.step(target - elapsed)
			if err != nil {
				return nil, err
			}
			elapsed += n
		}
		bk := Bucket{StartCycle: bStart, EndCycle: start + elapsed}
		for _, ch := range c.chips {
			snap := ch.rt.M.Snapshot()
			dBits := snap.TxBits - ch.prev.TxBits
			dCycles := snap.Cycles - ch.prev.Cycles
			bk.ChipGbps = append(bk.ChipGbps, c.gbps(dBits, dCycles))
			bk.ClusterGbps += c.gbps(dBits, dCycles)
			ch.prev = snap
		}
		res.Buckets = append(res.Buckets, bk)
	}

	merged := metrics.NewHistogram()
	var txAll []uint64
	routed := c.bal.Routed()
	for i, ch := range c.chips {
		snap := ch.rt.M.Snapshot()
		engName, engShards := ch.rt.M.EngineInfo()
		drained := c.cfg.Drain != nil && c.cfg.Drain.Chip == i
		cr := ChipResult{
			Chip:        i,
			MEs:         len(ch.rt.M.MEs),
			Engine:      engName,
			Shards:      engShards,
			Drained:     drained,
			GoodputGbps: snap.Gbps(c.clockMHz),
			TxPackets:   snap.TxPackets,
			RxPackets:   snap.RxPackets,
			RxDropped:   snap.RxDropped,
			Routed:      routed[i] - routedBase[i],
			Latency:     ch.rt.M.Observer().Latency(),
		}
		ch.rt.M.Observer().MergeLatencyInto(merged)
		res.Chips = append(res.Chips, cr)
		res.AggregateGbps += cr.GoodputGbps
		res.TxPackets += cr.TxPackets
		res.RxPackets += cr.RxPackets
		res.RxDropped += cr.RxDropped
		if !drained {
			txAll = append(txAll, cr.TxPackets)
		}
	}
	res.Latency = merged.Snapshot()
	res.Imbalance = imbalance(txAll)
	return res, nil
}

// Run is Warm followed by Measure.
func (c *Cluster) Run() (*Result, error) {
	if err := c.Warm(); err != nil {
		return nil, err
	}
	return c.Measure()
}

func (c *Cluster) topology() Topology {
	return Topology{
		Chips:         len(c.chips),
		FabricLatency: c.cfg.FabricLatency,
		Epoch:         c.cfg.Epoch,
		Seed:          c.cfg.Seed,
		Flows:         c.cfg.Workload.Flows,
		ZipfS:         c.cfg.Workload.ZipfS,
		OfferedGbps:   c.cfg.Workload.OfferedGbps,
		Drain:         c.cfg.Drain,
	}
}

func (c *Cluster) gbps(bits uint64, cycles int64) float64 {
	if cycles <= 0 {
		return 0
	}
	seconds := float64(cycles) / (c.clockMHz * 1e6)
	return float64(bits) / 1e9 / seconds
}

// imbalance is max/mean of per-chip transmitted packets over the chips
// still in service (1.0 = perfectly balanced; NaN-free: 0 when no chip
// transmitted).
func imbalance(tx []uint64) float64 {
	if len(tx) == 0 {
		return 0
	}
	var sum, max uint64
	for _, v := range tx {
		sum += v
		if v > max {
			max = v
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(tx))
	r := float64(max) / mean
	if math.IsNaN(r) || math.IsInf(r, 0) {
		return 0
	}
	return r
}
