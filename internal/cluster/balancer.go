package cluster

import (
	"sync"

	"shangrila/internal/workload"
)

// balancer is the line card's ingress stage: one deterministic workload
// stream sharded across chips by ECMP flow hash. Generation is
// demand-driven — a chip's fabric port pulls its next frame, and the
// balancer advances the shared stream (routing every generated arrival
// to its owner's queue) until the request can be answered. The global
// arrival sequence, the hash assignment and therefore every chip's
// subsequence depend only on the spec and seed, never on how chip
// goroutines interleave, so cluster runs are bit-identical at any
// worker count.
type balancer struct {
	mu       sync.Mutex
	stream   *workload.Stream
	clockMHz float64
	seed     uint64

	queues  []frameQueue
	pending []float64 // fractional cycles since each chip's last queued frame
	active  []bool
	nActive int
	routed  []uint64 // arrivals assigned per chip (redistribution evidence)

	// due is the absolute fractional cycle of the next generated
	// arrival; drainChip/drainAt schedule the ECMP withdrawal of one
	// chip (drainChip < 0 = no drain).
	due       float64
	drainChip int
	drainAt   int64
}

// frame is one scheduled arrival in a chip queue. gap is the fractional
// cycle spacing to the chip's next frame; gapUnresolved until a later
// arrival routes to the same chip.
type frame struct {
	bytes, flow int
	gap         float64
}

const gapUnresolved = -1

// frameQueue is a FIFO with an explicit head index so steady-state pops
// never reallocate; compact reclaims the consumed prefix once it
// dominates the backing array.
type frameQueue struct {
	frames []frame
	head   int
}

func (q *frameQueue) len() int     { return len(q.frames) - q.head }
func (q *frameQueue) peek() *frame { return &q.frames[q.head] }
func (q *frameQueue) tail() *frame { return &q.frames[len(q.frames)-1] }
func (q *frameQueue) push(f frame) { q.frames = append(q.frames, f) }
func (q *frameQueue) pop() frame {
	f := q.frames[q.head]
	q.head++
	if q.head > 64 && q.head*2 > len(q.frames) {
		n := copy(q.frames, q.frames[q.head:])
		q.frames = q.frames[:n]
		q.head = 0
	}
	return f
}

// pullCap bounds how many global arrivals one NextFrame call may
// generate before giving up (the port re-polls). It only matters for
// pathological hash/skew combinations that starve a chip; ordinary
// flow-hash traffic reaches every active chip well within it.
const pullCap = 1 << 20

func newBalancer(sp workload.Spec, seed uint64, clockMHz float64, chips int) (*balancer, error) {
	st, err := workload.NewStream(sp)
	if err != nil {
		return nil, err
	}
	b := &balancer{
		stream:    st,
		clockMHz:  clockMHz,
		seed:      seed,
		queues:    make([]frameQueue, chips),
		pending:   make([]float64, chips),
		active:    make([]bool, chips),
		nActive:   chips,
		routed:    make([]uint64, chips),
		drainChip: -1,
	}
	for i := range b.active {
		b.active[i] = true
	}
	return b, nil
}

// scheduleDrain withdraws chip d from the ECMP set for arrivals due at
// or after cycle at. Call before the run (the cluster scheduler sets it
// up at construction).
func (b *balancer) scheduleDrain(d int, at int64) {
	b.mu.Lock()
	b.drainChip, b.drainAt = d, at
	b.mu.Unlock()
}

// Routed returns a copy of the per-chip assignment counters.
func (b *balancer) Routed() []uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]uint64(nil), b.routed...)
}

// next pops chip c's next scheduled frame once its pacing gap is known,
// generating ahead on the shared stream as needed. ok=false means no
// further frames will reach c (it was drained) or the pull cap was hit.
func (b *balancer) next(c int) (bytes, flow int, gap float64, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for n := 0; ; n++ {
		if q := &b.queues[c]; q.len() > 0 && q.peek().gap != gapUnresolved {
			f := q.pop()
			return f.bytes, f.flow, f.gap, true
		}
		if !b.active[c] && b.queues[c].len() == 0 {
			return 0, 0, 0, false
		}
		if n >= pullCap {
			return 0, 0, 0, false
		}
		b.generate()
	}
}

// generate advances the shared stream by one arrival: apply a pending
// drain, hash the flow over the active set, resolve the owner's tail
// gap, and account the inter-arrival spacing toward every chip's next
// frame.
func (b *balancer) generate() {
	pkt := b.stream.Next()
	if b.drainChip >= 0 && b.active[b.drainChip] && b.due >= float64(b.drainAt) {
		d := b.drainChip
		b.active[d] = false
		b.nActive--
		// The drained chip's last queued frame will never see a
		// successor; close its gap so the queue stays deliverable.
		if q := &b.queues[d]; q.len() > 0 && q.tail().gap == gapUnresolved {
			q.tail().gap = b.pending[d]
		}
	}
	c := b.route(pkt.Flow)
	if q := &b.queues[c]; q.len() > 0 && q.tail().gap == gapUnresolved {
		q.tail().gap = b.pending[c]
	}
	b.pending[c] = 0
	b.queues[c].push(frame{bytes: pkt.FrameBytes, flow: pkt.Flow, gap: gapUnresolved})
	b.routed[c]++
	g := pkt.GapSeconds * b.clockMHz * 1e6
	b.due += g
	for i := range b.pending {
		b.pending[i] += g
	}
}

// route hashes a flow over the active chips (ECMP): a seeded 64-bit mix
// of the flow id, reduced modulo the live set. Shrinking the set (a
// drain) remaps flows the way real non-consistent ECMP does — the
// redistribution the drain scenario measures.
func (b *balancer) route(flow int) int {
	if b.nActive <= 0 {
		return 0
	}
	idx := int(mix64(uint64(flow)^(b.seed*0x9e3779b97f4a7c15)) % uint64(b.nActive))
	for c, a := range b.active {
		if !a {
			continue
		}
		if idx == 0 {
			return c
		}
		idx--
	}
	return 0
}

// mix64 is the SplitMix64 finalizer (same mixer the workload source
// uses), good avalanche for flow-hash spreading.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// chipFeed adapts one balancer shard to ixp.FrameSource.
type chipFeed struct {
	b    *balancer
	chip int
}

func (f *chipFeed) NextFrame() (int, int, float64, bool) { return f.b.next(f.chip) }
