package cluster

import (
	"testing"

	"shangrila/internal/workload"
)

const testClockMHz = 600

func testSpec(t *testing.T, flows int) workload.Spec {
	t.Helper()
	sp, err := workload.Spec{Seed: 5, OfferedGbps: 2, Flows: flows, ZipfS: 1.1}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// pulled is one delivered frame as observed by a chip's fabric port.
type pulled struct {
	bytes, flow int
	gap         float64
}

// drainChipQueue pulls up to n frames for one chip.
func drainChipQueue(b *balancer, chip, n int) []pulled {
	var out []pulled
	for len(out) < n {
		bytes, flow, gap, ok := b.next(chip)
		if !ok {
			break
		}
		out = append(out, pulled{bytes, flow, gap})
	}
	return out
}

// TestBalancerSingleChipExactGaps: with one chip the balancer is a pure
// pass-through — every frame carries exactly its packet's scheduled gap
// (pkt.GapSeconds scaled to cycles, bit-for-bit), which is what makes a
// one-chip cluster bit-identical to a plain single-machine run.
func TestBalancerSingleChipExactGaps(t *testing.T) {
	sp := testSpec(t, 64)
	b, err := newBalancer(sp, 9, testClockMHz, 1)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := workload.NewStream(sp)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		bytes, flow, gap, ok := b.next(0)
		if !ok {
			t.Fatalf("arrival %d: next returned !ok", i)
		}
		pkt := ref.Next()
		if want := pkt.GapSeconds * testClockMHz * 1e6; gap != want {
			t.Fatalf("arrival %d: gap %v, want exactly %v", i, gap, want)
		}
		if bytes != pkt.FrameBytes || flow != pkt.Flow {
			t.Fatalf("arrival %d: frame %dB flow %d, want %dB flow %d",
				i, bytes, flow, pkt.FrameBytes, pkt.Flow)
		}
	}
}

// TestBalancerInterleavingInvariant: each chip's frame subsequence
// depends only on spec, seed and chip count — never on the order chips
// pull in. This is the property that makes cluster runs bit-identical at
// any worker count.
func TestBalancerInterleavingInvariant(t *testing.T) {
	sp := testSpec(t, 512)
	const chips, n = 3, 200
	mk := func() *balancer {
		b, err := newBalancer(sp, 9, testClockMHz, chips)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	// Sequential pulls: exhaust chip 0's quota, then 1's, then 2's.
	seq := mk()
	var seqFrames [chips][]pulled
	for c := 0; c < chips; c++ {
		seqFrames[c] = drainChipQueue(seq, c, n)
	}
	// Interleaved pulls in a rotating order.
	inter := mk()
	var interFrames [chips][]pulled
	for i := 0; i < n; i++ {
		for c := chips - 1; c >= 0; c-- {
			bytes, flow, gap, ok := inter.next(c)
			if !ok {
				t.Fatalf("chip %d pull %d: !ok", c, i)
			}
			interFrames[c] = append(interFrames[c], pulled{bytes, flow, gap})
		}
	}
	for c := 0; c < chips; c++ {
		if len(seqFrames[c]) != n {
			t.Fatalf("chip %d: sequential pull got %d frames, want %d", c, len(seqFrames[c]), n)
		}
		for i := range seqFrames[c] {
			if seqFrames[c][i] != interFrames[c][i] {
				t.Fatalf("chip %d frame %d differs across pull orders: %+v vs %+v",
					c, i, seqFrames[c][i], interFrames[c][i])
			}
		}
	}
	// The same arrivals were assigned in both runs.
	r1, r2 := seq.Routed(), inter.Routed()
	for c := range r1 {
		if r1[c] < uint64(n) || r2[c] < uint64(n) {
			t.Errorf("chip %d routed %d/%d arrivals, want >= %d (frames were delivered)", c, r1[c], r2[c], n)
		}
	}
}

// TestBalancerDrain: after the drain point no new arrivals route to the
// drained chip, its already-queued tail stays deliverable (the final gap
// is resolved), and once the queue empties next reports !ok while the
// surviving chips absorb the full stream.
func TestBalancerDrain(t *testing.T) {
	sp := testSpec(t, 512)
	b, err := newBalancer(sp, 9, testClockMHz, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Let some arrivals land on both chips, then drain chip 1 at a point
	// mid-stream: 2 Gbps of 64B frames is ~3.9 Mpps, so 200k cycles at
	// 600 MHz covers ~1300 arrivals.
	const drainAt = 200_000
	b.scheduleDrain(1, drainAt)

	pre := drainChipQueue(b, 1, 1<<20) // pull until the drained queue runs dry
	if len(pre) == 0 {
		t.Fatal("drained chip saw no arrivals before the drain point")
	}
	for i, f := range pre {
		if f.gap < 0 {
			t.Fatalf("drained frame %d delivered with unresolved gap %v", i, f.gap)
		}
	}
	if _, _, _, ok := b.next(1); ok {
		t.Error("drained chip still receiving frames after its queue drained")
	}
	routedAtDrain := b.Routed()
	// The survivor keeps pulling; no arrival may land on chip 1 again.
	if got := drainChipQueue(b, 0, 2000); len(got) != 2000 {
		t.Fatalf("surviving chip starved: got %d frames", len(got))
	}
	routedAfter := b.Routed()
	if routedAfter[1] != routedAtDrain[1] {
		t.Errorf("drained chip's routed count advanced after drain: %d -> %d",
			routedAtDrain[1], routedAfter[1])
	}
	if routedAfter[0] <= routedAtDrain[0] {
		t.Error("surviving chip's routed count did not advance")
	}
}

// TestBalancerSpread: the ECMP hash spreads a heavy-tailed flow
// population across chips without gross imbalance (no chip starves, no
// chip owns the stream).
func TestBalancerSpread(t *testing.T) {
	sp := testSpec(t, 4096)
	const chips = 4
	b, err := newBalancer(sp, 9, testClockMHz, chips)
	if err != nil {
		t.Fatal(err)
	}
	// Generate a window of arrivals by pulling every chip until each has
	// seen a healthy share.
	for c := 0; c < chips; c++ {
		if got := drainChipQueue(b, c, 500); len(got) != 500 {
			t.Fatalf("chip %d starved: %d frames", c, len(got))
		}
	}
	routed := b.Routed()
	var total uint64
	for _, r := range routed {
		total += r
	}
	for c, r := range routed {
		share := float64(r) / float64(total)
		if share < 0.05 || share > 0.60 {
			t.Errorf("chip %d owns %.0f%% of arrivals (%v): hash spread is broken",
				c, share*100, routed)
		}
	}
}
