package rts_test

import (
	"testing"

	"shangrila/internal/cg"
	"shangrila/internal/driver"
	"shangrila/internal/packet"
	"shangrila/internal/profiler"
	"shangrila/internal/rts"
	"shangrila/internal/testutil"
	"shangrila/internal/trace"
	"shangrila/internal/workload"
)

// miniRouter is a representative two-PPF app: classification, a lookup
// table, metadata hand-off, TTL rewrite, re-encapsulation.
const miniRouter = `
protocol ether { dst_hi:16; dst_lo:32; src_hi:16; src_lo:32; type:16; demux { 14 }; }
protocol ipv4 { ver:4; hlen:4; tos:8; length:16; id:16; flags:3; frag:13;
                ttl:8; proto:8; cksum:16; src:32; dst:32; demux { hlen << 2 }; }
metadata { rx_port:16; next_hop:16; }
const ETH_IP = 0x0800;

module app {
	struct Rt { dst:uint; nh:uint; }
	Rt table[64];
	channel ip_cc : ipv4;
	channel out_cc : ether;

	ppf clsfr(ether ph) {
		if (ph->type == ETH_IP) {
			ipv4 iph = packet_decap(ph);
			channel_put(ip_cc, iph);
		} else {
			packet_drop(ph);
		}
	}

	ppf fwd(ipv4 ph) {
		uint dst = ph->dst;
		uint ttl = ph->ttl;
		uint ck  = ph->cksum;
		uint nh = 0;
		for (uint i = 0; i < 64; i++) {
			if (table[i].dst == dst) { nh = table[i].nh; break; }
		}
		if (nh == 0) { packet_drop(ph); }
		else {
			ph->meta.next_hop = nh;
			ph->ttl = ttl - 1;
			uint sum = ck + 0x100;
			ph->cksum = (sum & 0xffff) + (sum >> 16);
			ether eph = packet_encap(ph);
			channel_put(out_cc, eph);
		}
	}

	control func add_route(uint idx, uint dst, uint nh) {
		table[idx].dst = dst; table[idx].nh = nh;
	}

	wiring { rx -> clsfr; ip_cc -> fwd; out_cc -> tx; }
}
`

var routerControls = []profiler.Control{
	{Name: "app.add_route", Args: []uint32{0, 0x0a000001, 5}},
	{Name: "app.add_route", Args: []uint32{1, 0x0a000002, 6}},
	{Name: "app.add_route", Args: []uint32{2, 0x0a000003, 7}},
}

func mkTrace(t testing.TB, res *driver.Result, n int) []*packet.Packet {
	t.Helper()
	tp := res.Prog.Types
	r := workload.NewSource(77)
	var out []*packet.Packet
	for i := 0; i < n; i++ {
		dst := uint32(0x0a000001 + r.Intn(3)) // always hits a route
		p, err := trace.Build([]trace.Layer{
			{Proto: tp.Protocols["ether"], Fields: map[string]uint32{
				"type": 0x0800, "dst_hi": 0x00aa, "dst_lo": 0xbbccddee}},
			{Proto: tp.Protocols["ipv4"], Fields: map[string]uint32{
				"ver": 4, "hlen": 5, "ttl": 17, "dst": dst,
				"cksum": 0x1234}, Size: 20},
		}, 64, tp.Metadata.Bytes)
		if err != nil {
			t.Fatal(err)
		}
		p.Port = uint32(i % 3)
		out = append(out, p)
	}
	return out
}

func compileAt(t testing.TB, lvl driver.Level) *driver.Result {
	t.Helper()
	// A small pre-trace just for profiling.
	base := testutil.BuildIR(t, miniRouter)
	tp := base.Types
	r := workload.NewSource(1)
	var ptr []*packet.Packet
	for i := 0; i < 50; i++ {
		p, err := trace.Build([]trace.Layer{
			{Proto: tp.Protocols["ether"], Fields: map[string]uint32{"type": 0x0800}},
			{Proto: tp.Protocols["ipv4"], Fields: map[string]uint32{
				"ver": 4, "hlen": 5, "ttl": 9, "dst": uint32(0x0a000001 + r.Intn(3))}, Size: 20},
		}, 64, tp.Metadata.Bytes)
		if err != nil {
			t.Fatal(err)
		}
		ptr = append(ptr, p)
	}
	res, err := driver.CompileSource("mini.baker", miniRouter, driver.Config{
		Level:        lvl,
		ProfileTrace: ptr,
		Controls:     routerControls,
	})
	if err != nil {
		t.Fatalf("compile at %v: %v", lvl, err)
	}
	return res
}

// hostFrames produces the reference transmitted frames via the host
// interpreter.
func hostFrames(t testing.TB, tr []*packet.Packet) [][]byte {
	t.Helper()
	prog := testutil.BuildIR(t, miniRouter)
	s, err := profiler.NewSession(prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range routerControls {
		if err := s.Control(c.Name, c.Args...); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range tr {
		if err := s.Inject(p.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	var out [][]byte
	for _, o := range s.Out {
		out = append(out, append([]byte(nil), o.P.Bytes()[o.Head:]...))
	}
	return out
}

// newRT builds a runtime with the routing table installed.
func newRT(t testing.TB, res *driver.Result, trc []*packet.Packet, n int, capture int) *rts.Runtime {
	t.Helper()
	rt, err := rts.New(res.Image, res.Prog, trc, rts.Options{NumMEs: n, CaptureLimit: capture})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range routerControls {
		if err := rt.Control(c.Name, c.Args...); err != nil {
			t.Fatal(err)
		}
	}
	return rt
}

func TestEndToEndAllLevels(t *testing.T) {
	trc := mkTrace(t, compileAt(t, driver.LevelBase), 24)
	want := hostFrames(t, trc)
	if len(want) != 24 {
		t.Fatalf("reference forwarded %d, want 24", len(want))
	}
	for _, lvl := range driver.Levels() {
		lvl := lvl
		t.Run(lvl.String(), func(t *testing.T) {
			res := compileAt(t, lvl)
			rt, err := rts.New(res.Image, res.Prog, trc, rts.Options{
				NumMEs:       2,
				CaptureLimit: 64,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range routerControls {
				if err := rt.Control(c.Name, c.Args...); err != nil {
					t.Fatal(err)
				}
			}
			if err := rt.Run(600_000); err != nil {
				t.Fatalf("run: %v", err)
			}
			st := rt.M.Snapshot()
			if st.TxPackets == 0 {
				t.Fatalf("no packets forwarded; stats %+v", st)
			}
			// Functional check. Threads complete out of order (as on real
			// network processors), so compare as sets: every transmitted
			// frame must be one of the reference frames, and every
			// distinct reference frame must appear.
			if len(rt.TxCapture) < len(want) {
				t.Fatalf("captured %d frames, want >= %d", len(rt.TxCapture), len(want))
			}
			wantSet := map[string]bool{}
			for _, ref := range want {
				wantSet[string(ref)] = true
			}
			seen := map[string]bool{}
			for i, got := range rt.TxCapture {
				if !wantSet[string(got.Frame)] {
					t.Fatalf("frame %d at %v not among reference frames:\n%x", i, lvl, got.Frame)
				}
				seen[string(got.Frame)] = true
			}
			if len(seen) != len(wantSet) {
				t.Errorf("only %d of %d distinct frames observed", len(seen), len(wantSet))
			}
			t.Logf("%v: %.2f Gbps, %d tx, code sizes %v", lvl,
				st.Gbps(rt.M.Cfg.ClockMHz), st.TxPackets, res.Report.CodeSizes)
		})
	}
}

func TestRatesImproveWithOptimization(t *testing.T) {
	trc := mkTrace(t, compileAt(t, driver.LevelBase), 32)
	rate := map[driver.Level]float64{}
	for _, lvl := range []driver.Level{driver.LevelBase, driver.LevelPAC, driver.LevelSWC} {
		res := compileAt(t, lvl)
		rt := newRT(t, res, trc, 4, 0)
		if err := rt.Run(1_000_000); err != nil {
			t.Fatal(err)
		}
		rate[lvl] = rt.M.Snapshot().Gbps(rt.M.Cfg.ClockMHz)
	}
	t.Logf("rates: BASE=%.2f PAC=%.2f SWC=%.2f", rate[driver.LevelBase], rate[driver.LevelPAC], rate[driver.LevelSWC])
	if rate[driver.LevelPAC] <= rate[driver.LevelBase] {
		t.Errorf("PAC (%.2f) should beat BASE (%.2f)", rate[driver.LevelPAC], rate[driver.LevelBase])
	}
	if rate[driver.LevelSWC] < rate[driver.LevelPAC]*0.95 {
		t.Errorf("SWC (%.2f) regressed vs PAC (%.2f)", rate[driver.LevelSWC], rate[driver.LevelPAC])
	}
}

func TestMemoryAccessCountsDropWithOptimization(t *testing.T) {
	trc := mkTrace(t, compileAt(t, driver.LevelBase), 16)
	perPkt := func(lvl driver.Level) (dram, sram float64) {
		res := compileAt(t, lvl)
		rt := newRT(t, res, trc, 2, 0)
		if err := rt.Run(500_000); err != nil {
			t.Fatal(err)
		}
		st := rt.M.Snapshot()
		dram = st.PerPacket(cg.MemDRAM, cg.ClassPacketData)
		sram = st.PerPacket(cg.MemSRAM, cg.ClassPacketMeta) + st.PerPacket(cg.MemSRAM, cg.ClassAppData)
		return
	}
	dBase, sBase := perPkt(driver.LevelBase)
	dPAC, _ := perPkt(driver.LevelPAC)
	_, sPHR := perPkt(driver.LevelPHR)
	t.Logf("per-packet: BASE dram=%.1f sram=%.1f | PAC dram=%.1f | PHR sram=%.1f",
		dBase, sBase, dPAC, sPHR)
	if dPAC >= dBase {
		t.Errorf("PAC must cut DRAM accesses: %.1f -> %.1f", dBase, dPAC)
	}
	if sPHR >= sBase {
		t.Errorf("PHR must cut SRAM accesses: %.1f -> %.1f", sBase, sPHR)
	}
}

func TestScalingWithMEs(t *testing.T) {
	trc := mkTrace(t, compileAt(t, driver.LevelSWC), 32)
	res := compileAt(t, driver.LevelSWC)
	var rates []float64
	for n := 1; n <= 4; n++ {
		rt := newRT(t, res, trc, n, 0)
		if err := rt.Run(800_000); err != nil {
			t.Fatal(err)
		}
		rates = append(rates, rt.M.Snapshot().Gbps(rt.M.Cfg.ClockMHz))
	}
	t.Logf("rates by MEs: %v", rates)
	if rates[1] <= rates[0]*1.05 {
		t.Errorf("2 MEs should outperform 1: %v", rates)
	}
	for i := 1; i < len(rates); i++ {
		if rates[i] < rates[i-1]*0.9 {
			t.Errorf("rate regressed adding MEs: %v", rates)
		}
	}
}
