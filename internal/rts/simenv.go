package rts

import (
	"fmt"

	"shangrila/internal/baker/types"
	"shangrila/internal/cg"
	"shangrila/internal/packet"
)

// pktCtx tracks the simulated-buffer identity of a host packet object
// while the XScale interpreter processes it.
type pktCtx struct {
	id      uint32
	origLen int    // bytes between entry head and end at materialization
	headBuf uint32 // buffer-relative offset the host packet's start maps to
}

// simEnv implements profiler.Env against the machine's simulated
// memories: the XScale's view of the world. Global loads/stores hit
// Scratch/SRAM directly; channel puts write packets back to DRAM and push
// ring descriptors.
type simEnv struct {
	rt   *Runtime
	pkts map[*packet.Packet]*pktCtx
}

// track registers the buffer identity of a materialized packet.
func (e *simEnv) track(p *packet.Packet, id uint32, origLen int, headBuf uint32) {
	if e.pkts == nil {
		e.pkts = map[*packet.Packet]*pktCtx{}
	}
	e.pkts[p] = &pktCtx{id: id, origLen: origLen, headBuf: headBuf}
}

func (e *simEnv) addrOf(g *types.Global, off uint32) ([]byte, error) {
	lay := e.rt.Img.Layout
	base, ok := lay.GlobalAddr[g.Name]
	if !ok {
		return nil, fmt.Errorf("rts: global %s has no address", g.Name)
	}
	var mem []byte
	switch g.Space {
	case types.SpaceScratch:
		mem = e.rt.M.Scratch
	case types.SpaceLocal:
		return nil, fmt.Errorf("rts: XScale cannot access per-ME local global %s", g.Name)
	default:
		mem = e.rt.M.SRAM
	}
	if int(base+off)+4 > len(mem) {
		return nil, fmt.Errorf("rts: global %s access out of range", g.Name)
	}
	return mem[base+off:], nil
}

func (e *simEnv) LoadWords(g *types.Global, off uint32, n int) ([]uint32, error) {
	out := make([]uint32, n)
	for i := 0; i < n; i++ {
		b, err := e.addrOf(g, off+uint32(i*4))
		if err != nil {
			return nil, err
		}
		out[i] = beWord(b)
	}
	return out, nil
}

func (e *simEnv) StoreWords(g *types.Global, off uint32, words []uint32) error {
	for i, w := range words {
		b, err := e.addrOf(g, off+uint32(i*4))
		if err != nil {
			return err
		}
		putBE(b, w)
	}
	return nil
}

// ChannelPut writes the packet back to its simulated buffer and pushes a
// descriptor onto the channel's ring.
func (e *simEnv) ChannelPut(ch *types.Channel, p *packet.Packet, head int) error {
	ctx := e.pkts[p]
	if ctx == nil {
		return fmt.Errorf("rts: channel_put of untracked packet on %s", ch.Name)
	}
	ring, ok := e.rt.Img.RingOf[ch.Name]
	if !ok {
		return fmt.Errorf("rts: channel %s has no ring (internal channel on the XScale path?)", ch.Name)
	}
	lay := e.rt.Img.Layout
	m := e.rt.M
	grow := p.Len() - ctx.origLen
	newStart := int(ctx.headBuf) - grow
	if newStart < 0 {
		return fmt.Errorf("rts: packet outgrew buffer headroom")
	}
	base := lay.BufAddr(ctx.id)
	copy(m.DRAM[base+uint32(newStart):], p.Bytes())
	newHead := uint32(newStart + head)
	newEnd := uint32(newStart + p.Len())
	maddr := lay.MetaAddr(ctx.id)
	putBE(m.SRAM[maddr+cg.MetaLenOff:], newEnd)
	putBE(m.SRAM[maddr+cg.MetaHeadOff:], newHead)
	copy(m.SRAM[maddr+lay.MetaAppOff:maddr+lay.MetaRecBytes], p.Meta)
	if !m.Rings[ring].Put(ctx.id, newHead<<16|newEnd) {
		// Downstream full: drop (the XScale does not spin).
		m.Rings[cg.RingFree].Put(ctx.id, 0)
		m.Observer().PacketFreed(ctx.id)
	}
	delete(e.pkts, p)
	return nil
}

func (e *simEnv) Drop(p *packet.Packet) {
	if ctx := e.pkts[p]; ctx != nil {
		e.rt.M.Rings[cg.RingFree].Put(ctx.id, 0)
		e.rt.M.Observer().PacketFreed(ctx.id)
		delete(e.pkts, p)
	}
}

func (e *simEnv) Lock(id int) {
	// The XScale acquires the same scratch lock word MEs use; the
	// interpreter runs to completion atomically within a tick, so the
	// acquisition is modeled as immediate.
	lay := e.rt.Img.Layout
	putBE(e.rt.M.Scratch[lay.LockBase+uint32(id)*4:], 1)
}

func (e *simEnv) Unlock(id int) {
	lay := e.rt.Img.Layout
	putBE(e.rt.M.Scratch[lay.LockBase+uint32(id)*4:], 0)
}

func (e *simEnv) NewPacket(proto *types.Protocol) *packet.Packet {
	size := proto.FixedSize
	if size < 0 {
		size = proto.HeaderMin
	}
	p := packet.New(make([]byte, size), int(e.rt.Img.Layout.MetaRecBytes-e.rt.Img.Layout.MetaAppOff))
	if id, _, ok := e.rt.M.Rings[cg.RingFree].Get(); ok {
		e.track(p, id, size, e.rt.Img.Layout.BufHeadroom)
	}
	return p
}
