package rts

import "shangrila/internal/profiler"

// Control-plane churn: dynamic policy updates applied mid-run through
// the same host → XScale control path that boots the tables. Each update
// is a control-function invocation scheduled at an absolute cycle; the
// XScale interpreter stores through simulated shared memory, so the data
// plane observes the update exactly as the paper's delayed-update
// software-cache protocol allows — at each ME's next version check.

// Update is one scheduled control-plane change.
type Update struct {
	// At is the absolute machine cycle the update fires.
	At int64
	// Control is the call to apply (name + args, the boot-control form).
	Control profiler.Control
}

// ChurnStats counts scheduled vs applied updates of one run segment.
type ChurnStats struct {
	Scheduled int `json:"scheduled"`
	Applied   int `json:"applied"`
	Failed    int `json:"failed"`
}

// ScheduleUpdates registers every update with the machine's event queue.
// The returned stats fill in as the run crosses each update's cycle;
// read them only between Run segments.
func (r *Runtime) ScheduleUpdates(updates []Update) *ChurnStats {
	st := &ChurnStats{Scheduled: len(updates)}
	for _, u := range updates {
		u := u
		r.M.At(u.At, func() {
			if err := r.Control(u.Control.Name, u.Control.Args...); err != nil {
				st.Failed++
				return
			}
			st.Applied++
		})
	}
	return st
}
