package rts_test

import (
	"testing"

	"shangrila/internal/apps"
	"shangrila/internal/driver"
	"shangrila/internal/harness"
	"shangrila/internal/rts"
)

// readSRAMWord reads a global's first word out of simulated SRAM.
func readSRAMWord(rt *rts.Runtime, name string) uint32 {
	addr := rt.Img.Layout.GlobalAddr[name]
	b := rt.M.SRAM[addr:]
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// TestXScalePathProcessesARP verifies the control-path bridge: ARP frames
// (0.5% of the L3-Switch trace) travel over a scratch ring to the
// XScale-mapped arp_handler, which runs interpreted against simulated
// memory — its counter must advance in SRAM.
func TestXScalePathProcessesARP(t *testing.T) {
	app := apps.L3Switch()
	res, err := harness.Compile(app, driver.LevelSWC, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Image.XScale) == 0 {
		t.Fatal("no XScale aggregates in the image")
	}
	trc := app.Trace(res.Prog.Types, 5, 400) // includes 2 ARP frames
	rt, err := rts.New(res.Image, res.Prog, trc, rts.Options{NumMEs: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range app.Controls {
		if err := rt.Control(c.Name, c.Args...); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Run(900_000); err != nil {
		t.Fatal(err)
	}
	if rt.M.Snapshot().TxPackets == 0 {
		t.Fatal("no traffic forwarded")
	}
	arp := readSRAMWord(rt, "l3switch.arp_seen")
	if arp == 0 {
		t.Errorf("arp_seen = 0: XScale path never ran")
	}
	t.Logf("XScale handled %d ARP frames while MEs forwarded %d packets", arp, rt.M.Snapshot().TxPackets)
}

// TestSWCDelayedUpdateStaleness demonstrates §5.2's trade on the real
// machine model: a control-plane route change takes effect on the data
// path — but only after the delayed-update check fires, so frames in the
// staleness window still carry the old next hop. Both next hops must be
// observed on the wire across the update.
func TestSWCDelayedUpdateStaleness(t *testing.T) {
	app := apps.L3Switch()
	res, err := harness.Compile(app, driver.LevelSWC, 7)
	if err != nil {
		t.Fatal(err)
	}
	trc := app.Trace(res.Prog.Types, 6, 200)
	rt, err := rts.New(res.Image, res.Prog, trc, rts.Options{
		NumMEs: 2, CaptureLimit: 100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range app.Controls {
		if err := rt.Control(c.Name, c.Args...); err != nil {
			t.Fatal(err)
		}
	}
	// Move every hot prefix to next hop 42 mid-run; neighbor 42 has a
	// recognizable MAC.
	rt.ControlAt(300_000, "l3switch.add_neighbor", 42, 0x0bb0, 0x11000042, 1)
	rt.ControlAt(301_000, "l3switch.add_route", 0x0a000000, 8, 42)
	rt.ControlAt(301_500, "l3switch.add_route", 0x0a010000, 16, 42)
	rt.ControlAt(302_000, "l3switch.add_route", 0xc0a80000, 16, 42)
	rt.ControlAt(302_500, "l3switch.add_route", 0xc0a80100, 24, 42)
	if err := rt.Run(900_000); err != nil {
		t.Fatal(err)
	}
	oldMAC, newMAC := 0, 0
	for _, f := range rt.TxCapture {
		if len(f.Frame) < 6 {
			continue
		}
		dstLo := uint32(f.Frame[2])<<24 | uint32(f.Frame[3])<<16 |
			uint32(f.Frame[4])<<8 | uint32(f.Frame[5])
		switch {
		case dstLo == 0x11000042:
			newMAC++
		case dstLo>>8 == 0x110000:
			oldMAC++
		}
	}
	t.Logf("frames to old next hops: %d, to updated next hop 42: %d (tx=%d)",
		oldMAC, newMAC, rt.M.Snapshot().TxPackets)
	if oldMAC == 0 {
		t.Error("no frames used the pre-update routes")
	}
	if newMAC == 0 {
		t.Error("the route update never became visible (delayed-update flag/flush broken)")
	}
}
