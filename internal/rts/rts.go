// Package rts is Shangri-La's runtime system (§4.2): it loads a compiled
// image onto the IXP model, maps communication channels to scratch rings,
// replicates aggregate programs across the enabled microengines, seeds
// packet buffers and the free list, runs init/control functions on the
// (interpreted) XScale core against simulated memory, and bridges packets
// between ME rings and XScale aggregates.
package rts

import (
	"fmt"
	"strings"

	"shangrila/internal/aggregate"
	"shangrila/internal/baker/types"
	"shangrila/internal/cg"
	"shangrila/internal/ir"
	"shangrila/internal/ixp"
	"shangrila/internal/packet"
	"shangrila/internal/profiler"
	"shangrila/internal/workload"
)

// TxPkt is a captured transmitted frame for functional verification.
type TxPkt struct {
	Frame []byte // bytes on the wire: [head, end) of the buffer
}

// Runtime binds an image to a machine instance. It is the machine's
// Media: Inject plays the application trace (at line rate, or shaped by
// a workload stream) and Transmit recycles transmitted buffers.
type Runtime struct {
	Img *cg.Image
	M   *ixp.Machine

	prog        *ir.Program // for XScale interpretation
	trace       []*packet.Packet
	tracePos    int
	stream      *workload.Stream // nil = legacy line-rate trace player
	rxPortField *types.ProtoField

	// TxCapture collects up to CaptureLimit transmitted frames.
	TxCapture    []TxPkt
	CaptureLimit int

	sramStackBase   uint32
	xscaleEntries   map[int]*aggregate.Entry // ring -> entry
	interp          *profiler.Interp
	combinedEntries []int // per-stage entry PCs when thread-splitting one ME
}

// Options configures a run.
type Options struct {
	NumMEs int // enabled packet-processing MEs (1..6 in the paper's plots)
	Cfg    ixp.Config
	// CaptureLimit bounds functional frame capture (0 disables).
	CaptureLimit int
	// Workload shapes arrivals with a deterministic open-loop stream
	// (arrival process, size mix, Zipf flow locality over the trace).
	// nil plays the trace back-to-back at line rate, the paper's
	// saturating-load setup.
	Workload *workload.Spec
	// Engine selects the simulation engine (nil means the serial
	// default; takes precedence over Cfg.Engine when set).
	Engine ixp.EngineSpec
	// Media overrides the machine's installed media. nil keeps the
	// runtime itself (trace playback / workload stream); the cluster
	// passes its fabric port here and feeds packets back through the
	// runtime's FabricSink methods.
	Media ixp.Media
}

// New loads img onto a fresh machine, replicating ME programs across
// opts.NumMEs engines per the aggregation plan, and installs the runtime
// as the machine's media. prog supplies the IR for interpreted (XScale)
// execution.
func New(img *cg.Image, prog *ir.Program, tr []*packet.Packet, opts Options) (*Runtime, error) {
	if opts.NumMEs < 1 {
		return nil, fmt.Errorf("rts: need at least one ME")
	}
	cfg := opts.Cfg
	if cfg.NumMEs == 0 {
		cfg = ixp.DefaultConfig()
	}
	if opts.Engine != nil {
		cfg.Engine = opts.Engine
	}
	lay := img.Layout
	cfg.NumRings = lay.NumRings
	cfg.RingSlots = lay.RingSlots

	r := &Runtime{
		Img: img, prog: prog, trace: tr,
		CaptureLimit:  opts.CaptureLimit,
		xscaleEntries: map[int]*aggregate.Entry{},
	}
	if opts.Workload != nil {
		st, err := workload.NewStream(*opts.Workload)
		if err != nil {
			return nil, fmt.Errorf("rts: %w", err)
		}
		r.stream = st
	}
	med := ixp.Media(r)
	if opts.Media != nil {
		med = opts.Media
	}
	m, err := ixp.New(cfg, ixp.WithMedia(med))
	if err != nil {
		return nil, fmt.Errorf("rts: %w", err)
	}
	r.M = m
	m.GrowRing(cg.RingFree, lay.NumBufs+8)
	r.rxPortField = img.Types.Metadata.Field("rx_port")
	// SRAM stack overflow area sits after the metadata records.
	metaEnd := lay.MetaAddr(uint32(lay.NumBufs))
	r.sramStackBase = (metaEnd + 63) &^ 63

	// Free list: every buffer id.
	for id := 0; id < lay.NumBufs; id++ {
		m.Rings[cg.RingFree].Put(uint32(id), 0)
	}

	// Assign programs to MEs.
	if len(img.MECode) == 0 {
		return nil, fmt.Errorf("rts: image has no ME code")
	}
	if err := r.assignMEs(opts.NumMEs); err != nil {
		return nil, err
	}

	// XScale aggregates: consume their input rings interpretively.
	r.interp = &profiler.Interp{Prog: prog, Env: &simEnv{rt: r}}
	var xr []int
	for _, xm := range img.XScale {
		for _, e := range xm.Entries {
			if e.In == nil {
				return nil, fmt.Errorf("rts: rx-fed aggregate %v mapped to XScale", xm.Agg.PPFs)
			}
			ring, ok := img.RingOf[e.In.Name]
			if !ok {
				return nil, fmt.Errorf("rts: no ring for XScale input %s", e.In.Name)
			}
			r.xscaleEntries[ring] = e
			xr = append(xr, ring)
		}
	}
	m.XScaleRings = xr
	if len(xr) > 0 {
		m.XScaleStep = r.xscaleStep
	}

	// Init functions run at load time on the XScale.
	for _, name := range prog.Order {
		fn := prog.Funcs[name]
		if fn.Kind == ir.FuncInit && len(fn.Params) == 0 {
			if _, err := r.interp.Run(fn, nil); err != nil {
				return nil, fmt.Errorf("rts: init %s: %w", name, err)
			}
		}
	}

	return r, nil
}

// assignMEs distributes the plan's stages over n engines: with enough
// engines each stage gets floor-even replication (stage i on ME j when
// j mod stages == i); with fewer engines than stages every enabled ME
// runs the combined program that polls all inputs (the paper's 1-ME data
// points for 2-ME pipelines).
func (r *Runtime) assignMEs(n int) error {
	stages := r.Img.MECode
	// Expand duplication factors into a stage sequence.
	var seq []*cg.Compiled
	for _, s := range stages {
		for d := 0; d < s.Agg.Dup; d++ {
			seq = append(seq, s)
		}
	}
	if len(seq) == 0 {
		seq = stages
	}
	if n < len(seq) {
		comb, err := r.combinedProgram()
		if err != nil {
			return err
		}
		for me := 0; me < n; me++ {
			r.loadME(me, comb)
		}
		return nil
	}
	for me := 0; me < n; me++ {
		r.loadME(me, seq[me%len(seq)])
	}
	return nil
}

// combinedProgram concatenates every stage's code into one program by
// chaining dispatch loops (used only when fewer MEs than stages are
// enabled). Threads are split across the stage programs instead:
// thread t runs stage t mod stages.
func (r *Runtime) combinedProgram() (*cg.Compiled, error) {
	// Simplest faithful model: load stage programs on the same ME by
	// giving each thread a different entry PC. CGIR programs are
	// self-contained loops, so concatenation with adjusted branch
	// targets works.
	var code []*cg.Instr
	var entryPCs []int
	for _, s := range r.Img.MECode {
		base := len(code)
		entryPCs = append(entryPCs, base)
		for _, in := range s.Program.Code {
			cp := *in
			cp.Data = append([]cg.PReg(nil), in.Data...)
			switch cp.Op {
			case cg.IBr, cg.IBcc, cg.IBccImm:
				cp.Target += base
			}
			code = append(code, &cp)
		}
	}
	comb := &cg.Compiled{
		Agg:     r.Img.MECode[0].Agg,
		Program: &cg.Program{Name: "combined", Code: code},
	}
	r.combinedEntries = entryPCs
	return comb, nil
}

// loadME installs a program and initializes the per-thread registers.
func (r *Runtime) loadME(me int, c *cg.Compiled) {
	m := r.M
	lay := r.Img.Layout
	m.LoadProgram(me, c.Program)
	label := c.Program.Name
	if len(c.Agg.PPFs) > 0 && label != "combined" {
		label = strings.Join(c.Agg.PPFs, "+")
	}
	m.Observer().SetMELabel(me, label)
	for t := 0; t < m.Cfg.ThreadsPerME; t++ {
		th := m.MEs[me].Thread(t)
		th.SetReg(cg.RegSP, lay.StackBase+uint32(t)*lay.StackSize)
		th.SetReg(cg.RegSSP, r.sramStackBase+uint32(me*m.Cfg.ThreadsPerME+t)*64)
		if c.Program.Name == "combined" && len(r.combinedEntries) > 0 {
			th.SetPC(r.combinedEntries[t%len(r.combinedEntries)])
		}
	}
}

// Inject implements ixp.Media: it sources the next arrival and returns
// the gap until the following one. With no workload stream the trace
// plays back-to-back at line rate and a full Rx ring causes a retry
// (the paper's saturating setup); with a stream, arrivals follow the
// configured process and a saturated Rx path loses the packet
// (open-loop), which is the drop the load–latency curves account.
func (r *Runtime) Inject(m *ixp.Machine) float64 {
	if len(r.trace) == 0 {
		return 64
	}
	if r.stream == nil {
		p := r.trace[r.tracePos%len(r.trace)]
		wire := p.Bytes()
		gap := m.Cfg.RxIntervalCycles(float64(len(wire) * 8))
		if !r.enqueue(m, p, len(wire)) {
			// Closed loop: the packet is not consumed; retry shortly.
			return 32
		}
		r.tracePos++
		return gap
	}
	pkt := r.stream.Next()
	r.DeliverFrame(m, pkt.FrameBytes, pkt.Flow)
	return pkt.GapSeconds * m.Cfg.ClockMHz * 1e6
}

// DeliverFrame implements ixp.FabricSink: it materializes one
// externally-scheduled arrival (the cluster fabric's delivery path,
// also the tail of the runtime's own workload player). Zipf flow
// locality: the flow picks the trace packet, so popular flows replay
// identical headers (table keys, labels, routes). The arrival is
// consumed whether or not the Rx path accepts it (open loop); a false
// return means it was counted as a saturation loss.
func (r *Runtime) DeliverFrame(m *ixp.Machine, frameBytes, flow int) bool {
	if len(r.trace) == 0 {
		return false
	}
	p := r.trace[flow%len(r.trace)]
	frame := frameBytes
	lay := r.Img.Layout
	if max := int(lay.BufSize - lay.BufHeadroom); frame > max {
		frame = max
	}
	if frame < p.Len() {
		frame = p.Len()
	}
	ok := r.enqueue(m, p, frame)
	r.tracePos++
	return ok
}

// enqueue copies one trace packet into a fresh buffer, padded to
// frameBytes on the wire, and pushes its descriptor on the Rx ring. A
// saturated Rx ring or exhausted free list counts a loss (the caller
// decides whether the packet is consumed).
func (r *Runtime) enqueue(m *ixp.Machine, p *packet.Packet, frameBytes int) bool {
	lay := r.Img.Layout
	rx := m.Rings[cg.RingRx]
	if rx.Space() == 0 {
		m.Observer().RxDrop(frameBytes)
		return false
	}
	id, _, ok := m.Rings[cg.RingFree].Get()
	if !ok {
		m.Observer().RxDrop(frameBytes)
		return false
	}
	wire := p.Bytes()
	base := lay.BufAddr(id)
	copy(m.DRAM[base+lay.BufHeadroom:], wire)
	// Zero the padding up to the frame length (buffers are recycled).
	for i := len(wire); i < frameBytes; i++ {
		m.DRAM[base+lay.BufHeadroom+uint32(i)] = 0
	}
	head := lay.BufHeadroom
	end := lay.BufHeadroom + uint32(frameBytes)
	// Metadata record: end, head, app metadata (zeroed + rx_port).
	maddr := lay.MetaAddr(id)
	putBE(m.SRAM[maddr+cg.MetaLenOff:], end)
	putBE(m.SRAM[maddr+cg.MetaHeadOff:], head)
	app := m.SRAM[maddr+lay.MetaAppOff : maddr+lay.MetaRecBytes]
	for i := range app {
		app[i] = 0
	}
	if r.rxPortField != nil {
		packet.WriteBits(app, r.rxPortField.BitOff, r.rxPortField.Bits, p.Port)
	}
	m.ChargeRxDMA(frameBytes, int(lay.MetaRecBytes/4))
	rx.Put(id, head<<16|end)
	m.Observer().RxPacket(id, frameBytes)
	return true
}

// Transmit implements ixp.Media: it accounts and recycles one
// transmitted packet.
func (r *Runtime) Transmit(m *ixp.Machine, w0, w1 uint32) int {
	lay := r.Img.Layout
	head := w1 >> 16
	end := w1 & 0xffff
	if end < head {
		head, end = end, head
	}
	frame := int(end - head)
	if r.CaptureLimit > 0 && len(r.TxCapture) < r.CaptureLimit {
		base := lay.BufAddr(w0)
		cp := append([]byte(nil), m.DRAM[base+head:base+end]...)
		r.TxCapture = append(r.TxCapture, TxPkt{Frame: cp})
	}
	m.Rings[cg.RingFree].Put(w0, 0)
	return frame
}

// Control invokes a control function immediately against simulated memory
// (the host → XScale control path).
func (r *Runtime) Control(name string, args ...uint32) error {
	fn := r.prog.Func(name)
	if fn == nil {
		return fmt.Errorf("rts: no control function %q", name)
	}
	vals := make([]profiler.Value, len(args))
	for i, a := range args {
		vals[i] = profiler.Value{W: a}
	}
	_, err := r.interp.Run(fn, vals)
	return err
}

// ControlAt schedules a control invocation at an absolute cycle.
func (r *Runtime) ControlAt(t int64, name string, args ...uint32) {
	r.M.At(t, func() {
		_ = r.Control(name, args...)
	})
}

// Run advances the machine.
func (r *Runtime) Run(cycles int64) error { return r.M.Run(cycles) }

// xscaleStep interprets one packet on an XScale aggregate entry.
func (r *Runtime) xscaleStep(m *ixp.Machine, ring int, w0, w1 uint32) int64 {
	e := r.xscaleEntries[ring]
	lay := r.Img.Layout
	head := w1 >> 16
	end := w1 & 0xffff
	base := lay.BufAddr(w0)
	wire := append([]byte(nil), m.DRAM[base+head:base+end]...)
	p := packet.New(wire, len(r.Img.Types.Metadata.Fields)*4/8+4)
	// App metadata from SRAM.
	maddr := lay.MetaAddr(w0)
	p.Meta = append(p.Meta[:0], m.SRAM[maddr+lay.MetaAppOff:maddr+lay.MetaRecBytes]...)
	env := r.interp.Env.(*simEnv)
	env.track(p, w0, int(end-head), head)
	if _, err := r.interp.Run(e.Func, []profiler.Value{{P: p, Head: 0}}); err != nil {
		// Treat interpreter failures as a dropped packet.
		m.Rings[cg.RingFree].Put(w0, 0)
		m.Observer().PacketFreed(w0)
		return 512
	}
	// Cost model: interpreted XScale execution, a few cycles per IR op.
	return 2048
}

func putBE(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}

func beWord(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
