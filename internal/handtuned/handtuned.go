// Package handtuned contains hand-written CGIR kernels — the stand-in for
// the paper's hand-coded microengine assembly reference point. The paper's
// headline claim is that *compiled* Baker code achieves the same forwarding
// target that hand-tuned assembly reaches; this package provides the
// hand-tuned side of that comparison on the same machine model.
//
// The kernels are written the way an experienced ME programmer writes the
// fast path: one wide read for all needed header fields, table lookups with
// precomputed addressing, one combined write-back, registers managed by
// hand across the two banks, and a tight dispatch loop.
package handtuned

import (
	"shangrila/internal/cg"
	"shangrila/internal/ixp"
)

// Register plan for the L3 forwarder kernel (bank A / bank B split chosen
// by hand, as an assembly programmer would).
const (
	rPkt   = cg.PReg(0)  // a0: buffer id
	rDesc  = cg.PReg(16) // b0: head<<16|end descriptor word
	rAddr  = cg.PReg(1)  // a1: DRAM address of the headers
	rW0    = cg.PReg(2)  // a2..: header words 0..4 (ether + ipv4 through dst)
	rW1    = cg.PReg(17)
	rW2    = cg.PReg(3)
	rW3    = cg.PReg(18)
	rW4    = cg.PReg(4)
	rW5    = cg.PReg(19) // word 5: ipv4 src
	rW6    = cg.PReg(5)  // word 6: ipv4 dst
	rTmp   = cg.PReg(20) // b4: header word 7
	rTmp2  = cg.PReg(23) // b7: header word 8
	rNH    = cg.PReg(8)  // a8: next hop
	rConst = cg.PReg(9)  // a9: constants for bank-B operands
	rLAddr = cg.PReg(7)  // a7: lookup address
	rOK    = cg.PReg(22) // b6
)

// L3Forwarder builds a hand-tuned L3 forwarding kernel: parse
// Ethernet+IPv4 with a single 28-byte read, look the destination up in a
// direct-mapped next-hop table at sramTableBase (one SRAM access),
// decrement TTL, fix the checksum incrementally, rewrite the Ethernet
// destination, and write everything back with a single burst.
func L3Forwarder(sramTableBase uint32) *cg.Program {
	var code []*cg.Instr
	emit := func(in *cg.Instr) { code = append(code, in) }
	label := func() int { return len(code) }

	loop := label()
	// Dispatch: one descriptor pair per packet.
	emit(&cg.Instr{Op: cg.IRingGet, Ring: cg.RingRx, Dst: rPkt, Dst2: rDesc,
		Class: cg.ClassPacketRing})
	emit(&cg.Instr{Op: cg.IBccImm, Cond: cg.CNe, SrcA: rPkt, Imm: cg.InvalidPktID,
		Target: label() + 3})
	emit(&cg.Instr{Op: cg.ICtxArb})
	emit(&cg.Instr{Op: cg.IBr, Target: loop})

	// addr = pkt*256 (+64 headroom folded into offsets below).
	emit(&cg.Instr{Op: cg.IALUImm, ALU: cg.AShl, Dst: rAddr, SrcA: rPkt, Imm: 8})
	// One wide read: ether (14B) + ipv4 through dst (20B) = 34B -> 7+2
	// words starting at the packet head; 28 bytes cover everything the
	// fast path needs except ipv4.dst's low half, so read 9 words.
	emit(&cg.Instr{Op: cg.IMem, Level: cg.MemDRAM, Addr: rAddr, AddrOff: 64,
		NWords: 9, Data: []cg.PReg{rW0, rW1, rW2, rW3, rW4, rW5, rW6, rTmp, rTmp2},
		Class: cg.ClassPacketData, Comment: "hand: single header read"})

	// dst ip sits at bytes 30..34 = word 7 of the read (rTmp holds bytes
	// 28..32: cksum+src hi...). Recompute: ether 0..14, ipv4 14..34; dst
	// at 30 -> word index 7 (bytes 28..32) high half | word 8 low half.
	// The hand kernel uses the classic trick of a direct-mapped table on
	// the /16: idx = dst >> 16 -> word7 low 16 bits | word8 high 16 bits.
	emit(&cg.Instr{Op: cg.IALUImm, ALU: cg.AShl, Dst: rLAddr, SrcA: rTmp, Imm: 16})
	emit(&cg.Instr{Op: cg.IALUImm, ALU: cg.AShrU, Dst: rTmp2, SrcA: rTmp2, Imm: 16})
	emit(&cg.Instr{Op: cg.IALU, ALU: cg.AOr, Dst: rLAddr, SrcA: rLAddr, SrcB: rTmp2,
		Comment: "hand: dst ip"})
	// idx = (dst >> 16) << 2 + table base.
	emit(&cg.Instr{Op: cg.IALUImm, ALU: cg.AShrU, Dst: rLAddr, SrcA: rLAddr, Imm: 16})
	emit(&cg.Instr{Op: cg.IALUImm, ALU: cg.AShl, Dst: rLAddr, SrcA: rLAddr, Imm: 2})
	emit(&cg.Instr{Op: cg.IMem, Level: cg.MemSRAM, Addr: rLAddr, AddrOff: sramTableBase,
		NWords: 1, Data: []cg.PReg{rNH}, Class: cg.ClassAppData,
		Comment: "hand: next-hop lookup"})

	// TTL-1 and incremental checksum: word 5 of the header read is ipv4
	// bytes 8..12 = ttl|proto|cksum. The constant lives in bank A because
	// rW5 is bank B (the two-source bank rule, enforced by hand here).
	emit(&cg.Instr{Op: cg.IImmed, Dst: rConst, Imm: 0x01000000})
	emit(&cg.Instr{Op: cg.IALU, ALU: cg.ASub, Dst: rW5, SrcA: rW5, SrcB: rConst,
		Comment: "hand: ttl-1"})
	emit(&cg.Instr{Op: cg.IALUImm, ALU: cg.AAdd, Dst: rW5, SrcA: rW5, Imm: 0x0100,
		Comment: "hand: cksum += 0x100 (folded)"})

	// Rewrite the Ethernet destination from the next hop (word 0 hi16 and
	// word 0/1 pattern kept simple: dst MAC = 0x0bb0:110000xx).
	emit(&cg.Instr{Op: cg.IImmed, Dst: rW0, Imm: 0x0bb01100})
	emit(&cg.Instr{Op: cg.IALU, ALU: cg.AOr, Dst: rW1, SrcA: rNH, SrcB: rW1,
		Comment: "hand: fold next hop into dst MAC low word"})

	// Single combined write-back of words 0..5 (ether + ttl/cksum word).
	emit(&cg.Instr{Op: cg.IMem, Level: cg.MemDRAM, Store: true, Addr: rAddr,
		AddrOff: 64, NWords: 6, Data: []cg.PReg{rW0, rW1, rW2, rW3, rW4, rW5},
		Class: cg.ClassPacketData, Comment: "hand: single write-back"})

	// Forward.
	put := label()
	emit(&cg.Instr{Op: cg.IRingPut, Ring: cg.RingTx, SrcA: rPkt, SrcB: rDesc,
		Dst: rOK, Class: cg.ClassPacketRing})
	emit(&cg.Instr{Op: cg.IBccImm, Cond: cg.CEq, SrcA: rOK, Imm: 0, Target: put})
	emit(&cg.Instr{Op: cg.IBr, Target: loop})
	return &cg.Program{Name: "handtuned-l3", Code: code}
}

// Run measures the hand-tuned kernel's forwarding rate on n MEs (the
// reference point compiled code is compared against).
func Run(prog *cg.Program, numMEs int, warmup, measure int64) (float64, error) {
	cfg := ixp.DefaultConfig()
	cfg.RingSlots = 256
	m, err := ixp.New(cfg, ixp.WithMedia(&ixp.FixedDescMedia{}))
	if err != nil {
		return 0, err
	}
	m.GrowRing(cg.RingFree, 600)
	for id := 0; id < 512; id++ {
		m.Rings[cg.RingFree].Put(uint32(id), 64<<16|128)
	}
	for me := 0; me < numMEs; me++ {
		m.LoadProgram(me, prog)
	}
	if err := m.Run(warmup); err != nil {
		return 0, err
	}
	m.ResetStats()
	if err := m.Run(measure); err != nil {
		return 0, err
	}
	return m.Snapshot().Gbps(cfg.ClockMHz), nil
}
