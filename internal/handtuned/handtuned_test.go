package handtuned_test

import (
	"testing"

	"shangrila/internal/apps"
	"shangrila/internal/cg"
	"shangrila/internal/driver"
	"shangrila/internal/handtuned"
	"shangrila/internal/harness"
)

func TestHandTunedKernelRuns(t *testing.T) {
	prog := handtuned.L3Forwarder(0)
	g, err := handtuned.Run(prog, 6, 50_000, 300_000)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("hand-tuned L3 kernel: %.2f Gbps on 6 MEs", g)
	if g < 1.5 {
		t.Errorf("hand-tuned kernel too slow: %.2f Gbps", g)
	}
}

// TestCompiledApproachesHandTuned is the paper's headline comparison: the
// fully optimized compiled L3-Switch must land within a modest factor of
// the hand-written kernel's rate (the paper reports parity at the 2.5 Gbps
// line-rate target; our compiled app does strictly more work — bridging,
// ARP, a two-level trie — so a 2x envelope is the acceptance band).
func TestCompiledApproachesHandTuned(t *testing.T) {
	hand, err := handtuned.Run(handtuned.L3Forwarder(0), 6, 50_000, 300_000)
	if err != nil {
		t.Fatal(err)
	}
	app := apps.L3Switch()
	res, err := harness.Compile(app, driver.LevelSWC, 7)
	if err != nil {
		t.Fatal(err)
	}
	r, err := harness.Run(app, append(harness.RunConfig{
		NumMEs: 6, Warmup: 100_000, Measure: 400_000, Seed: 7, TraceN: 384,
	}.Options(), harness.WithCompiled(res))...)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("hand-tuned %.2f Gbps vs compiled +SWC %.2f Gbps", hand, r.Gbps)
	if r.Gbps < hand/2 {
		t.Errorf("compiled (%.2f) below half of hand-tuned (%.2f)", r.Gbps, hand)
	}
	// And BASE must be clearly worse than hand-tuned: the optimizations
	// are what close the gap.
	base, err := harness.Compile(app, driver.LevelBase, 7)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := harness.Run(app, append(harness.RunConfig{
		NumMEs: 6, Warmup: 100_000, Measure: 400_000, Seed: 7, TraceN: 384,
	}.Options(), harness.WithCompiled(base))...)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Gbps > r.Gbps {
		t.Errorf("BASE (%.2f) outperformed +SWC (%.2f)?", rb.Gbps, r.Gbps)
	}
	t.Logf("BASE %.2f Gbps (gap to hand-tuned: %.1fx; +SWC closes it to %.1fx)",
		rb.Gbps, hand/rb.Gbps, hand/r.Gbps)
}

func TestKernelBankDiscipline(t *testing.T) {
	prog := handtuned.L3Forwarder(0)
	for pc, in := range prog.Code {
		if in.Op == cg.IALU && in.ALU != cg.AMov && in.ALU != cg.ANot && in.ALU != cg.ANeg {
			if in.SrcA.Bank() == in.SrcB.Bank() {
				t.Errorf("pc %d: hand kernel violates the bank rule: %v", pc, in)
			}
		}
	}
}
