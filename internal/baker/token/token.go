// Package token defines the lexical tokens of the Baker packet-processing
// language and source positions used across the Shangri-La frontend.
//
// Baker is the C-like, platform-independent language described in §2 of the
// Shangri-La paper (PLDI 2005): programs are built from modules containing
// packet processing functions (PPFs) wired together with communication
// channels, plus protocol declarations that describe packet bit layouts.
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. Keyword kinds sit between keywordBeg and keywordEnd so
// Lookup can stay a simple map probe.
const (
	ILLEGAL Kind = iota
	EOF
	COMMENT

	// Literals and identifiers.
	IDENT  // l2_clsfr
	INT    // 0x0806, 14
	STRING // "eth0"

	// Operators and delimiters.
	ADD // +
	SUB // -
	MUL // *
	QUO // /
	REM // %

	AND // &
	OR  // |
	XOR // ^
	SHL // <<
	SHR // >>
	NOT // ~

	LAND // &&
	LOR  // ||
	LNOT // !

	EQL // ==
	NEQ // !=
	LSS // <
	GTR // >
	LEQ // <=
	GEQ // >=

	ASSIGN     // =
	ADD_ASSIGN // +=
	SUB_ASSIGN // -=
	MUL_ASSIGN // *=
	QUO_ASSIGN // /=
	REM_ASSIGN // %=
	AND_ASSIGN // &=
	OR_ASSIGN  // |=
	XOR_ASSIGN // ^=
	SHL_ASSIGN // <<=
	SHR_ASSIGN // >>=
	INC        // ++
	DEC        // --

	ARROW  // ->
	LPAREN // (
	RPAREN // )
	LBRACE // {
	RBRACE // }
	LBRACK // [
	RBRACK // ]
	COMMA  // ,
	SEMI   // ;
	COLON  // :
	DOT    // .
	QUEST  // ?

	keywordBeg
	MODULE
	PROTOCOL
	DEMUX
	METADATA
	CHANNEL
	PPF
	FUNC
	CONTROL
	INITKW // "init" qualifier for load-time functions
	WIRING
	CONST
	STRUCT
	CRITICAL
	IF
	ELSE
	WHILE
	FOR
	RETURN
	BREAK
	CONTINUE
	UINT
	INT_T
	VOID
	keywordEnd
)

var kindNames = map[Kind]string{
	ILLEGAL: "ILLEGAL", EOF: "EOF", COMMENT: "COMMENT",
	IDENT: "IDENT", INT: "INT", STRING: "STRING",
	ADD: "+", SUB: "-", MUL: "*", QUO: "/", REM: "%",
	AND: "&", OR: "|", XOR: "^", SHL: "<<", SHR: ">>", NOT: "~",
	LAND: "&&", LOR: "||", LNOT: "!",
	EQL: "==", NEQ: "!=", LSS: "<", GTR: ">", LEQ: "<=", GEQ: ">=",
	ASSIGN: "=", ADD_ASSIGN: "+=", SUB_ASSIGN: "-=", MUL_ASSIGN: "*=",
	QUO_ASSIGN: "/=", REM_ASSIGN: "%=", AND_ASSIGN: "&=", OR_ASSIGN: "|=",
	XOR_ASSIGN: "^=", SHL_ASSIGN: "<<=", SHR_ASSIGN: ">>=", INC: "++", DEC: "--",
	ARROW: "->", LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}",
	LBRACK: "[", RBRACK: "]", COMMA: ",", SEMI: ";", COLON: ":", DOT: ".", QUEST: "?",
	MODULE: "module", PROTOCOL: "protocol", DEMUX: "demux", METADATA: "metadata",
	CHANNEL: "channel", PPF: "ppf", FUNC: "func", CONTROL: "control",
	INITKW: "init", WIRING: "wiring", CONST: "const", STRUCT: "struct",
	CRITICAL: "critical", IF: "if", ELSE: "else", WHILE: "while", FOR: "for",
	RETURN: "return", BREAK: "break", CONTINUE: "continue",
	UINT: "uint", INT_T: "int", VOID: "void",
}

// String returns the textual form of the token kind ("+", "module", "IDENT").
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = func() map[string]Kind {
	m := make(map[string]Kind)
	for k := keywordBeg + 1; k < keywordEnd; k++ {
		m[kindNames[k]] = k
	}
	return m
}()

// Lookup maps an identifier to its keyword kind, or IDENT if it is not a
// keyword.
func Lookup(ident string) Kind {
	if k, ok := keywords[ident]; ok {
		return k
	}
	return IDENT
}

// Pos is a source position: 1-based line and column within a named file.
type Pos struct {
	File string
	Line int
	Col  int
}

// IsValid reports whether the position carries real location information.
func (p Pos) IsValid() bool { return p.Line > 0 }

func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// Token is one lexical element: its kind, literal text and position.
type Token struct {
	Kind Kind
	Lit  string
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT, STRING, ILLEGAL, COMMENT:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Lit)
	}
	return t.Kind.String()
}

// Precedence returns the binary-operator precedence of k (higher binds
// tighter), or 0 if k is not a binary operator. The ladder matches C so
// Baker expressions read naturally to C programmers.
func (k Kind) Precedence() int {
	switch k {
	case LOR:
		return 1
	case LAND:
		return 2
	case OR:
		return 3
	case XOR:
		return 4
	case AND:
		return 5
	case EQL, NEQ:
		return 6
	case LSS, GTR, LEQ, GEQ:
		return 7
	case SHL, SHR:
		return 8
	case ADD, SUB:
		return 9
	case MUL, QUO, REM:
		return 10
	}
	return 0
}

// IsAssign reports whether k is an assignment operator (including compound
// assignments such as +=).
func (k Kind) IsAssign() bool {
	switch k {
	case ASSIGN, ADD_ASSIGN, SUB_ASSIGN, MUL_ASSIGN, QUO_ASSIGN, REM_ASSIGN,
		AND_ASSIGN, OR_ASSIGN, XOR_ASSIGN, SHL_ASSIGN, SHR_ASSIGN:
		return true
	}
	return false
}

// AssignOp returns the arithmetic operator underlying a compound assignment
// (ADD for +=). It returns ILLEGAL for plain ASSIGN and non-assignments.
func (k Kind) AssignOp() Kind {
	switch k {
	case ADD_ASSIGN:
		return ADD
	case SUB_ASSIGN:
		return SUB
	case MUL_ASSIGN:
		return MUL
	case QUO_ASSIGN:
		return QUO
	case REM_ASSIGN:
		return REM
	case AND_ASSIGN:
		return AND
	case OR_ASSIGN:
		return OR
	case XOR_ASSIGN:
		return XOR
	case SHL_ASSIGN:
		return SHL
	case SHR_ASSIGN:
		return SHR
	}
	return ILLEGAL
}
