// Package ast declares the abstract syntax tree for Baker programs.
//
// A Baker program is a set of protocol declarations, one metadata block,
// and one or more modules. Modules contain globals, channels, packet
// processing functions (PPFs), helper/control/init functions and a wiring
// block that connects channels to PPF inputs (§2.1 of the paper).
package ast

import "shangrila/internal/baker/token"

// Node is implemented by every AST node.
type Node interface {
	Pos() token.Pos
}

// ---------------------------------------------------------------------------
// Program structure

// Program is a parsed Baker compilation unit.
type Program struct {
	Protocols []*ProtocolDecl
	Metadata  *MetadataDecl // nil if the program declares no metadata
	Consts    []*ConstDecl
	Modules   []*ModuleDecl
}

func (p *Program) Pos() token.Pos {
	if len(p.Modules) > 0 {
		return p.Modules[0].Pos()
	}
	return token.Pos{}
}

// ProtocolDecl describes a packet protocol: ordered bit fields plus the
// demux expression giving the header size in bytes within a packet.
type ProtocolDecl struct {
	NamePos token.Pos
	Name    string
	Fields  []*BitField
	Demux   Expr // header size in bytes; may reference protocol fields
}

func (d *ProtocolDecl) Pos() token.Pos { return d.NamePos }

// BitField is one named bit slice of a protocol header or the metadata
// block. Widths are in bits and need not be byte aligned.
type BitField struct {
	NamePos token.Pos
	Name    string
	Bits    int
}

func (f *BitField) Pos() token.Pos { return f.NamePos }

// MetadataDecl declares the per-packet metadata record (state carried with
// a packet outside its data, stored in SRAM on the IXP).
type MetadataDecl struct {
	KwPos  token.Pos
	Fields []*BitField
}

func (d *MetadataDecl) Pos() token.Pos { return d.KwPos }

// ConstDecl is a named compile-time integer constant.
type ConstDecl struct {
	NamePos token.Pos
	Name    string
	Value   Expr
}

func (d *ConstDecl) Pos() token.Pos { return d.NamePos }

// ModuleDecl is a Baker module: a container of related PPFs, channels,
// shared data, support code and the wiring between them.
type ModuleDecl struct {
	NamePos token.Pos
	Name    string
	Structs []*StructDecl
	Globals []*GlobalDecl
	Chans   []*ChannelDecl
	Funcs   []*FuncDecl // PPFs and plain/control/init functions
	Wiring  []*WireDecl
}

func (d *ModuleDecl) Pos() token.Pos { return d.NamePos }

// StructDecl declares an aggregate type for global data structures.
type StructDecl struct {
	NamePos token.Pos
	Name    string
	Fields  []*VarField
}

func (d *StructDecl) Pos() token.Pos { return d.NamePos }

// VarField is a typed field of a struct declaration.
type VarField struct {
	NamePos token.Pos
	Name    string
	Type    *TypeExpr
}

func (f *VarField) Pos() token.Pos { return f.NamePos }

// GlobalDecl declares module-level shared data ("var uint table[1024];").
type GlobalDecl struct {
	NamePos token.Pos
	Name    string
	Type    *TypeExpr
}

func (d *GlobalDecl) Pos() token.Pos { return d.NamePos }

// ChannelDecl declares a communication channel carrying packets of a given
// protocol.
type ChannelDecl struct {
	NamePos token.Pos
	Name    string
	Proto   string
}

func (d *ChannelDecl) Pos() token.Pos { return d.NamePos }

// FuncKind distinguishes the roles a function can play.
type FuncKind int

const (
	// KindPPF is a packet processing function: it consumes packets from
	// its single input channel and forwards them with channel_put.
	KindPPF FuncKind = iota
	// KindFunc is an ordinary helper callable from PPFs.
	KindFunc
	// KindControl marks control-plane entry points invoked by the host
	// through the runtime (they run on the XScale core).
	KindControl
	// KindInit marks load-time initialisation code (XScale).
	KindInit
)

func (k FuncKind) String() string {
	switch k {
	case KindPPF:
		return "ppf"
	case KindFunc:
		return "func"
	case KindControl:
		return "control"
	case KindInit:
		return "init"
	}
	return "?"
}

// Param is a formal parameter.
type Param struct {
	NamePos token.Pos
	Name    string
	Type    *TypeExpr
}

func (p *Param) Pos() token.Pos { return p.NamePos }

// FuncDecl is a PPF or function definition.
type FuncDecl struct {
	NamePos token.Pos
	Kind    FuncKind
	Name    string
	Params  []*Param
	Result  *TypeExpr // nil means void
	Body    *BlockStmt
}

func (d *FuncDecl) Pos() token.Pos { return d.NamePos }

// WireDecl connects a channel (or the builtin source "rx") to a PPF input
// (or the builtin sink "tx").
type WireDecl struct {
	FromPos token.Pos
	From    string // channel name or "rx"
	To      string // PPF name or "tx"
}

func (d *WireDecl) Pos() token.Pos { return d.FromPos }

// TypeExpr is a syntactic type: a base name plus an optional array length.
type TypeExpr struct {
	NamePos token.Pos
	Name    string // "uint", "int", "void", struct name, or protocol name
	ArrayN  Expr   // nil unless this is an array type
}

func (t *TypeExpr) Pos() token.Pos { return t.NamePos }

// ---------------------------------------------------------------------------
// Statements

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// BlockStmt is a brace-delimited statement list.
type BlockStmt struct {
	LbracePos token.Pos
	Stmts     []Stmt
}

// DeclStmt declares a local variable with an optional initializer.
type DeclStmt struct {
	NamePos token.Pos
	Name    string
	Type    *TypeExpr
	Init    Expr // may be nil
}

// AssignStmt assigns to a variable, field, array element, packet field or
// metadata field. Op is token.ASSIGN or a compound assignment.
type AssignStmt struct {
	OpPos token.Pos
	LHS   Expr
	Op    token.Kind
	RHS   Expr
}

// ExprStmt evaluates an expression (typically a call) for effect.
type ExprStmt struct{ X Expr }

// IfStmt is an if/else.
type IfStmt struct {
	IfPos token.Pos
	Cond  Expr
	Then  *BlockStmt
	Else  Stmt // *BlockStmt, *IfStmt, or nil
}

// WhileStmt loops while Cond is nonzero.
type WhileStmt struct {
	WhilePos token.Pos
	Cond     Expr
	Body     *BlockStmt
}

// ForStmt is a C-style for loop; any of Init/Cond/Post may be nil.
type ForStmt struct {
	ForPos token.Pos
	Init   Stmt
	Cond   Expr
	Post   Stmt
	Body   *BlockStmt
}

// ReturnStmt returns from a function, optionally with a value.
type ReturnStmt struct {
	RetPos token.Pos
	Value  Expr // may be nil
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ KwPos token.Pos }

// ContinueStmt restarts the innermost loop.
type ContinueStmt struct{ KwPos token.Pos }

// CriticalStmt brackets a programmer-identified critical section (§2: the
// only concurrency construct Baker exposes).
type CriticalStmt struct {
	KwPos token.Pos
	Body  *BlockStmt
}

func (s *BlockStmt) Pos() token.Pos    { return s.LbracePos }
func (s *DeclStmt) Pos() token.Pos     { return s.NamePos }
func (s *AssignStmt) Pos() token.Pos   { return s.OpPos }
func (s *ExprStmt) Pos() token.Pos     { return s.X.Pos() }
func (s *IfStmt) Pos() token.Pos       { return s.IfPos }
func (s *WhileStmt) Pos() token.Pos    { return s.WhilePos }
func (s *ForStmt) Pos() token.Pos      { return s.ForPos }
func (s *ReturnStmt) Pos() token.Pos   { return s.RetPos }
func (s *BreakStmt) Pos() token.Pos    { return s.KwPos }
func (s *ContinueStmt) Pos() token.Pos { return s.KwPos }
func (s *CriticalStmt) Pos() token.Pos { return s.KwPos }

func (*BlockStmt) stmtNode()    {}
func (*DeclStmt) stmtNode()     {}
func (*AssignStmt) stmtNode()   {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*CriticalStmt) stmtNode() {}

// ---------------------------------------------------------------------------
// Expressions

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	exprNode()
}

// Ident names a variable, constant, channel or function.
type Ident struct {
	NamePos token.Pos
	Name    string
}

// IntLit is an integer literal.
type IntLit struct {
	LitPos token.Pos
	Value  uint64
	Text   string
}

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	OpPos token.Pos
	Op    token.Kind
	X, Y  Expr
}

// UnaryExpr is -x, ~x or !x.
type UnaryExpr struct {
	OpPos token.Pos
	Op    token.Kind
	X     Expr
}

// CondExpr is the ternary c ? a : b.
type CondExpr struct {
	QPos token.Pos
	Cond Expr
	Then Expr
	Else Expr
}

// CallExpr calls a function or builtin (channel_put, packet_decap, ...).
type CallExpr struct {
	FunPos token.Pos
	Fun    string
	Args   []Expr
}

// IndexExpr is array indexing a[i].
type IndexExpr struct {
	X     Expr
	Index Expr
}

// FieldExpr is struct field selection s.f.
type FieldExpr struct {
	X      Expr
	Name   string
	DotPos token.Pos
}

// PacketFieldExpr is ph->field: a protocol bit-field access through a
// packet handle.
type PacketFieldExpr struct {
	Handle   Expr
	Name     string
	ArrowPos token.Pos
}

// MetaFieldExpr is ph->meta.field: packet metadata access.
type MetaFieldExpr struct {
	Handle   Expr
	Name     string
	ArrowPos token.Pos
}

func (e *Ident) Pos() token.Pos           { return e.NamePos }
func (e *IntLit) Pos() token.Pos          { return e.LitPos }
func (e *BinaryExpr) Pos() token.Pos      { return e.X.Pos() }
func (e *UnaryExpr) Pos() token.Pos       { return e.OpPos }
func (e *CondExpr) Pos() token.Pos        { return e.Cond.Pos() }
func (e *CallExpr) Pos() token.Pos        { return e.FunPos }
func (e *IndexExpr) Pos() token.Pos       { return e.X.Pos() }
func (e *FieldExpr) Pos() token.Pos       { return e.X.Pos() }
func (e *PacketFieldExpr) Pos() token.Pos { return e.Handle.Pos() }
func (e *MetaFieldExpr) Pos() token.Pos   { return e.Handle.Pos() }

func (*Ident) exprNode()           {}
func (*IntLit) exprNode()          {}
func (*BinaryExpr) exprNode()      {}
func (*UnaryExpr) exprNode()       {}
func (*CondExpr) exprNode()        {}
func (*CallExpr) exprNode()        {}
func (*IndexExpr) exprNode()       {}
func (*FieldExpr) exprNode()       {}
func (*PacketFieldExpr) exprNode() {}
func (*MetaFieldExpr) exprNode()   {}
