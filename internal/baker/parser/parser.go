// Package parser builds Baker ASTs from source text.
//
// The grammar is C-like. At the top level a compilation unit contains
// protocol declarations, at most one metadata block, constants and modules;
// inside a module: struct declarations, global data, channels, functions
// (ppf / func / control func / init func) and a wiring block.
package parser

import (
	"fmt"
	"strconv"

	"shangrila/internal/baker/ast"
	"shangrila/internal/baker/lexer"
	"shangrila/internal/baker/token"
)

// Error is a syntax error at a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList collects parse errors; it implements error.
type ErrorList []*Error

func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	}
	return fmt.Sprintf("%s (and %d more errors)", l[0], len(l)-1)
}

type parser struct {
	lex  *lexer.Lexer
	tok  token.Token
	peek token.Token
	errs ErrorList
}

// Parse parses a Baker compilation unit. On any syntax error it returns a
// non-nil ErrorList; the returned Program contains whatever was recovered.
func Parse(file, src string) (*ast.Program, error) {
	p := &parser{lex: lexer.New(file, src)}
	p.tok = p.lex.Next()
	p.peek = p.lex.Next()
	prog := p.parseProgram()
	for _, le := range p.lex.Errors() {
		p.errs = append(p.errs, &Error{Pos: le.Pos, Msg: le.Msg})
	}
	if len(p.errs) > 0 {
		return prog, p.errs
	}
	return prog, nil
}

func (p *parser) next() {
	p.tok = p.peek
	p.peek = p.lex.Next()
}

func (p *parser) errorf(pos token.Pos, format string, args ...any) {
	if len(p.errs) < 50 {
		p.errs = append(p.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
}

func (p *parser) expect(k token.Kind) token.Token {
	t := p.tok
	if t.Kind != k {
		p.errorf(t.Pos, "expected %q, found %s", k.String(), t)
		// Do not consume: let the caller's structure resynchronize.
		return token.Token{Kind: k, Pos: t.Pos}
	}
	p.next()
	return t
}

func (p *parser) accept(k token.Kind) bool {
	if p.tok.Kind == k {
		p.next()
		return true
	}
	return false
}

// sync skips tokens until a likely declaration/statement boundary.
func (p *parser) sync(stop ...token.Kind) {
	for p.tok.Kind != token.EOF {
		for _, k := range stop {
			if p.tok.Kind == k {
				return
			}
		}
		p.next()
	}
}

func (p *parser) parseProgram() *ast.Program {
	prog := &ast.Program{}
	for p.tok.Kind != token.EOF {
		switch p.tok.Kind {
		case token.PROTOCOL:
			prog.Protocols = append(prog.Protocols, p.parseProtocol())
		case token.METADATA:
			md := p.parseMetadata()
			if prog.Metadata != nil {
				p.errorf(md.KwPos, "duplicate metadata block")
			} else {
				prog.Metadata = md
			}
		case token.CONST:
			prog.Consts = append(prog.Consts, p.parseConst())
		case token.MODULE:
			prog.Modules = append(prog.Modules, p.parseModule())
		case token.SEMI:
			p.next()
		default:
			p.errorf(p.tok.Pos, "unexpected %s at top level", p.tok)
			p.next()
			p.sync(token.PROTOCOL, token.METADATA, token.CONST, token.MODULE)
		}
	}
	return prog
}

func (p *parser) parseProtocol() *ast.ProtocolDecl {
	p.expect(token.PROTOCOL)
	name := p.expect(token.IDENT)
	d := &ast.ProtocolDecl{NamePos: name.Pos, Name: name.Lit}
	p.expect(token.LBRACE)
	for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
		if p.tok.Kind == token.DEMUX {
			pos := p.tok.Pos
			p.next()
			p.expect(token.LBRACE)
			d.Demux = p.parseExpr()
			p.expect(token.RBRACE)
			p.expect(token.SEMI)
			if d.Demux == nil {
				p.errorf(pos, "empty demux expression")
			}
			continue
		}
		f := p.parseBitField()
		if f == nil {
			p.sync(token.SEMI, token.RBRACE)
			p.accept(token.SEMI)
			continue
		}
		d.Fields = append(d.Fields, f)
	}
	p.expect(token.RBRACE)
	p.accept(token.SEMI)
	return d
}

func (p *parser) parseBitField() *ast.BitField {
	if p.tok.Kind != token.IDENT {
		p.errorf(p.tok.Pos, "expected field name, found %s", p.tok)
		return nil
	}
	name := p.tok
	p.next()
	p.expect(token.COLON)
	width := p.expect(token.INT)
	p.expect(token.SEMI)
	bits, err := strconv.Atoi(width.Lit)
	if err != nil || bits <= 0 || bits > 64 {
		p.errorf(width.Pos, "invalid bit width %q (must be 1..64)", width.Lit)
		bits = 32
	}
	return &ast.BitField{NamePos: name.Pos, Name: name.Lit, Bits: bits}
}

func (p *parser) parseMetadata() *ast.MetadataDecl {
	kw := p.expect(token.METADATA)
	d := &ast.MetadataDecl{KwPos: kw.Pos}
	p.expect(token.LBRACE)
	for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
		f := p.parseBitField()
		if f == nil {
			p.sync(token.SEMI, token.RBRACE)
			p.accept(token.SEMI)
			continue
		}
		d.Fields = append(d.Fields, f)
	}
	p.expect(token.RBRACE)
	p.accept(token.SEMI)
	return d
}

func (p *parser) parseConst() *ast.ConstDecl {
	p.expect(token.CONST)
	name := p.expect(token.IDENT)
	p.expect(token.ASSIGN)
	v := p.parseExpr()
	p.expect(token.SEMI)
	return &ast.ConstDecl{NamePos: name.Pos, Name: name.Lit, Value: v}
}

func (p *parser) parseModule() *ast.ModuleDecl {
	p.expect(token.MODULE)
	name := p.expect(token.IDENT)
	m := &ast.ModuleDecl{NamePos: name.Pos, Name: name.Lit}
	p.expect(token.LBRACE)
	for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
		switch p.tok.Kind {
		case token.STRUCT:
			m.Structs = append(m.Structs, p.parseStruct())
		case token.CHANNEL:
			m.Chans = append(m.Chans, p.parseChannel())
		case token.PPF, token.FUNC, token.CONTROL, token.INITKW:
			m.Funcs = append(m.Funcs, p.parseFunc())
		case token.WIRING:
			m.Wiring = append(m.Wiring, p.parseWiring()...)
		case token.UINT, token.INT_T, token.IDENT:
			m.Globals = append(m.Globals, p.parseGlobal())
		case token.SEMI:
			p.next()
		default:
			p.errorf(p.tok.Pos, "unexpected %s in module body", p.tok)
			p.next()
		}
	}
	p.expect(token.RBRACE)
	return m
}

func (p *parser) parseStruct() *ast.StructDecl {
	p.expect(token.STRUCT)
	name := p.expect(token.IDENT)
	d := &ast.StructDecl{NamePos: name.Pos, Name: name.Lit}
	p.expect(token.LBRACE)
	for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
		if p.tok.Kind != token.IDENT {
			p.errorf(p.tok.Pos, "expected struct field name, found %s", p.tok)
			p.next()
			continue
		}
		fname := p.tok
		p.next()
		p.expect(token.COLON)
		ft := p.parseType()
		p.expect(token.SEMI)
		d.Fields = append(d.Fields, &ast.VarField{NamePos: fname.Pos, Name: fname.Lit, Type: ft})
	}
	p.expect(token.RBRACE)
	p.accept(token.SEMI)
	return d
}

func (p *parser) parseChannel() *ast.ChannelDecl {
	p.expect(token.CHANNEL)
	name := p.expect(token.IDENT)
	p.expect(token.COLON)
	proto := p.expect(token.IDENT)
	p.expect(token.SEMI)
	return &ast.ChannelDecl{NamePos: name.Pos, Name: name.Lit, Proto: proto.Lit}
}

// parseType parses a base type name (no array suffix; arrays are parsed by
// the declaration forms that allow them).
func (p *parser) parseType() *ast.TypeExpr {
	switch p.tok.Kind {
	case token.UINT, token.INT_T, token.VOID, token.IDENT:
		t := &ast.TypeExpr{NamePos: p.tok.Pos, Name: p.tok.Kind.String()}
		if p.tok.Kind == token.IDENT {
			t.Name = p.tok.Lit
		}
		p.next()
		return t
	}
	p.errorf(p.tok.Pos, "expected type, found %s", p.tok)
	t := &ast.TypeExpr{NamePos: p.tok.Pos, Name: "uint"}
	p.next()
	return t
}

func (p *parser) parseGlobal() *ast.GlobalDecl {
	typ := p.parseType()
	name := p.expect(token.IDENT)
	if p.accept(token.LBRACK) {
		typ.ArrayN = p.parseExpr()
		p.expect(token.RBRACK)
	}
	p.expect(token.SEMI)
	return &ast.GlobalDecl{NamePos: name.Pos, Name: name.Lit, Type: typ}
}

func (p *parser) parseFunc() *ast.FuncDecl {
	kind := ast.KindFunc
	switch p.tok.Kind {
	case token.CONTROL:
		p.next()
		kind = ast.KindControl
		p.expect(token.FUNC)
	case token.INITKW:
		p.next()
		kind = ast.KindInit
		p.expect(token.FUNC)
	case token.PPF:
		p.next()
		kind = ast.KindPPF
	default:
		p.expect(token.FUNC)
	}
	name := p.expect(token.IDENT)
	d := &ast.FuncDecl{NamePos: name.Pos, Kind: kind, Name: name.Lit}
	p.expect(token.LPAREN)
	for p.tok.Kind != token.RPAREN && p.tok.Kind != token.EOF {
		typ := p.parseType()
		pn := p.expect(token.IDENT)
		d.Params = append(d.Params, &ast.Param{NamePos: pn.Pos, Name: pn.Lit, Type: typ})
		if !p.accept(token.COMMA) {
			break
		}
	}
	p.expect(token.RPAREN)
	if p.tok.Kind != token.LBRACE {
		d.Result = p.parseType()
	}
	d.Body = p.parseBlock()
	return d
}

func (p *parser) parseWiring() []*ast.WireDecl {
	p.expect(token.WIRING)
	p.expect(token.LBRACE)
	var wires []*ast.WireDecl
	for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
		before := p.tok
		fromPos := p.tok.Pos
		from := p.parseWireName()
		p.expect(token.ARROW)
		to := p.parseWireName()
		p.expect(token.SEMI)
		wires = append(wires, &ast.WireDecl{FromPos: fromPos, From: from, To: to})
		if p.tok == before {
			// Malformed entry consumed nothing (expect does not advance
			// on mismatch): skip a token to guarantee progress.
			p.next()
		}
	}
	p.expect(token.RBRACE)
	return wires
}

// parseWireName parses an optionally module-qualified name ("l2_clsfr" or
// "l3_switch.arp_cc") used in wiring blocks.
func (p *parser) parseWireName() string {
	name := p.expect(token.IDENT).Lit
	if p.tok.Kind == token.DOT {
		p.next()
		name += "." + p.expect(token.IDENT).Lit
	}
	return name
}

// ---------------------------------------------------------------------------
// Statements

func (p *parser) parseBlock() *ast.BlockStmt {
	lb := p.expect(token.LBRACE)
	b := &ast.BlockStmt{LbracePos: lb.Pos}
	for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
		before := p.tok
		s := p.parseStmt()
		if s != nil {
			b.Stmts = append(b.Stmts, s)
		}
		if p.tok == before && s == nil {
			p.next() // guarantee progress on malformed input
		}
	}
	p.expect(token.RBRACE)
	return b
}

func (p *parser) parseStmt() ast.Stmt {
	switch p.tok.Kind {
	case token.LBRACE:
		return p.parseBlock()
	case token.IF:
		return p.parseIf()
	case token.WHILE:
		pos := p.tok.Pos
		p.next()
		p.expect(token.LPAREN)
		cond := p.parseExpr()
		p.expect(token.RPAREN)
		return &ast.WhileStmt{WhilePos: pos, Cond: cond, Body: p.parseBlock()}
	case token.FOR:
		return p.parseFor()
	case token.RETURN:
		pos := p.tok.Pos
		p.next()
		var v ast.Expr
		if p.tok.Kind != token.SEMI {
			v = p.parseExpr()
		}
		p.expect(token.SEMI)
		return &ast.ReturnStmt{RetPos: pos, Value: v}
	case token.BREAK:
		pos := p.tok.Pos
		p.next()
		p.expect(token.SEMI)
		return &ast.BreakStmt{KwPos: pos}
	case token.CONTINUE:
		pos := p.tok.Pos
		p.next()
		p.expect(token.SEMI)
		return &ast.ContinueStmt{KwPos: pos}
	case token.CRITICAL:
		pos := p.tok.Pos
		p.next()
		return &ast.CriticalStmt{KwPos: pos, Body: p.parseBlock()}
	case token.SEMI:
		p.next()
		return nil
	case token.UINT, token.INT_T:
		return p.parseDecl()
	case token.IDENT:
		// "Type name ..." is a declaration; anything else is an
		// expression statement or assignment.
		if p.peek.Kind == token.IDENT {
			return p.parseDecl()
		}
		return p.parseSimpleStmt(true)
	default:
		return p.parseSimpleStmt(true)
	}
}

func (p *parser) parseDecl() ast.Stmt {
	typ := p.parseType()
	name := p.expect(token.IDENT)
	d := &ast.DeclStmt{NamePos: name.Pos, Name: name.Lit, Type: typ}
	if p.accept(token.LBRACK) {
		typ.ArrayN = p.parseExpr()
		p.expect(token.RBRACK)
	}
	if p.accept(token.ASSIGN) {
		d.Init = p.parseExpr()
	}
	p.expect(token.SEMI)
	return d
}

// parseSimpleStmt parses an assignment, inc/dec, or expression statement.
// If wantSemi, the trailing semicolon is consumed (for loop headers pass
// false).
func (p *parser) parseSimpleStmt(wantSemi bool) ast.Stmt {
	x := p.parseExpr()
	if x == nil {
		return nil
	}
	var s ast.Stmt
	switch {
	case p.tok.Kind.IsAssign():
		op := p.tok
		p.next()
		rhs := p.parseExpr()
		s = &ast.AssignStmt{OpPos: op.Pos, LHS: x, Op: op.Kind, RHS: rhs}
	case p.tok.Kind == token.INC || p.tok.Kind == token.DEC:
		op := token.ADD_ASSIGN
		if p.tok.Kind == token.DEC {
			op = token.SUB_ASSIGN
		}
		pos := p.tok.Pos
		p.next()
		s = &ast.AssignStmt{OpPos: pos, LHS: x, Op: op,
			RHS: &ast.IntLit{LitPos: pos, Value: 1, Text: "1"}}
	default:
		s = &ast.ExprStmt{X: x}
	}
	if wantSemi {
		p.expect(token.SEMI)
	}
	return s
}

func (p *parser) parseIf() ast.Stmt {
	pos := p.tok.Pos
	p.expect(token.IF)
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	then := p.parseBlock()
	st := &ast.IfStmt{IfPos: pos, Cond: cond, Then: then}
	if p.accept(token.ELSE) {
		if p.tok.Kind == token.IF {
			st.Else = p.parseIf()
		} else {
			st.Else = p.parseBlock()
		}
	}
	return st
}

func (p *parser) parseFor() ast.Stmt {
	pos := p.tok.Pos
	p.expect(token.FOR)
	p.expect(token.LPAREN)
	f := &ast.ForStmt{ForPos: pos}
	if p.tok.Kind != token.SEMI {
		if p.tok.Kind == token.UINT || p.tok.Kind == token.INT_T ||
			(p.tok.Kind == token.IDENT && p.peek.Kind == token.IDENT) {
			f.Init = p.parseDecl() // consumes the ';'
		} else {
			f.Init = p.parseSimpleStmt(false)
			p.expect(token.SEMI)
		}
	} else {
		p.next()
	}
	if p.tok.Kind != token.SEMI {
		f.Cond = p.parseExpr()
	}
	p.expect(token.SEMI)
	if p.tok.Kind != token.RPAREN {
		f.Post = p.parseSimpleStmt(false)
	}
	p.expect(token.RPAREN)
	f.Body = p.parseBlock()
	return f
}

// ---------------------------------------------------------------------------
// Expressions

func (p *parser) parseExpr() ast.Expr { return p.parseTernary() }

func (p *parser) parseTernary() ast.Expr {
	cond := p.parseBinary(1)
	if p.tok.Kind != token.QUEST {
		return cond
	}
	qpos := p.tok.Pos
	p.next()
	then := p.parseExpr()
	p.expect(token.COLON)
	els := p.parseTernary()
	return &ast.CondExpr{QPos: qpos, Cond: cond, Then: then, Else: els}
}

func (p *parser) parseBinary(minPrec int) ast.Expr {
	x := p.parseUnary()
	for {
		prec := p.tok.Kind.Precedence()
		if prec < minPrec {
			return x
		}
		op := p.tok
		p.next()
		y := p.parseBinary(prec + 1)
		x = &ast.BinaryExpr{OpPos: op.Pos, Op: op.Kind, X: x, Y: y}
	}
}

func (p *parser) parseUnary() ast.Expr {
	switch p.tok.Kind {
	case token.SUB, token.NOT, token.LNOT:
		op := p.tok
		p.next()
		return &ast.UnaryExpr{OpPos: op.Pos, Op: op.Kind, X: p.parseUnary()}
	case token.ADD:
		p.next()
		return p.parseUnary()
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() ast.Expr {
	x := p.parsePrimary()
	for {
		switch p.tok.Kind {
		case token.LBRACK:
			p.next()
			idx := p.parseExpr()
			p.expect(token.RBRACK)
			x = &ast.IndexExpr{X: x, Index: idx}
		case token.DOT:
			dot := p.tok.Pos
			p.next()
			name := p.expect(token.IDENT)
			x = &ast.FieldExpr{X: x, Name: name.Lit, DotPos: dot}
		case token.ARROW:
			arrow := p.tok.Pos
			p.next()
			name := p.expect(token.IDENT)
			if name.Lit == "meta" && p.tok.Kind == token.DOT {
				p.next()
				mf := p.expect(token.IDENT)
				x = &ast.MetaFieldExpr{Handle: x, Name: mf.Lit, ArrowPos: arrow}
			} else {
				x = &ast.PacketFieldExpr{Handle: x, Name: name.Lit, ArrowPos: arrow}
			}
		default:
			return x
		}
	}
}

func (p *parser) parsePrimary() ast.Expr {
	switch p.tok.Kind {
	case token.INT:
		t := p.tok
		p.next()
		v, err := strconv.ParseUint(t.Lit, 0, 64)
		if err != nil {
			p.errorf(t.Pos, "invalid integer literal %q", t.Lit)
		}
		return &ast.IntLit{LitPos: t.Pos, Value: v, Text: t.Lit}
	case token.IDENT:
		t := p.tok
		p.next()
		if p.tok.Kind == token.LPAREN {
			p.next()
			call := &ast.CallExpr{FunPos: t.Pos, Fun: t.Lit}
			for p.tok.Kind != token.RPAREN && p.tok.Kind != token.EOF {
				call.Args = append(call.Args, p.parseExpr())
				if !p.accept(token.COMMA) {
					break
				}
			}
			p.expect(token.RPAREN)
			return call
		}
		return &ast.Ident{NamePos: t.Pos, Name: t.Lit}
	case token.LPAREN:
		p.next()
		x := p.parseExpr()
		p.expect(token.RPAREN)
		return x
	}
	p.errorf(p.tok.Pos, "expected expression, found %s", p.tok)
	pos := p.tok.Pos
	p.next()
	return &ast.IntLit{LitPos: pos, Value: 0, Text: "0"}
}
