package parser

import (
	"testing"

	"shangrila/internal/baker/ast"
	"shangrila/internal/baker/token"
)

const miniApp = `
protocol ether {
    dst_hi : 16;
    dst_lo : 32;
    src_hi : 16;
    src_lo : 32;
    type   : 16;
    demux { 14 };
}

protocol ipv4 {
    ver    : 4;
    hlen   : 4;
    tos    : 8;
    length : 16;
    demux { hlen << 2 };
}

metadata {
    rx_port  : 16;
    next_hop : 16;
}

const ETH_TYPE_IP = 0x0800;

module l3 {
    struct Route { prefix : uint; nexthop : uint; }
    uint counters[16];
    Route routes[256];
    channel ip_cc : ipv4;
    channel out_cc : ether;

    ppf clsfr(ether ph) {
        uint port = ph->meta.rx_port;
        counters[port] += 1;
        if (ph->type == ETH_TYPE_IP) {
            ipv4 iph = packet_decap(ph);
            channel_put(ip_cc, iph);
        } else {
            packet_drop(ph);
        }
    }

    ppf fwd(ipv4 ph) {
        uint i;
        for (i = 0; i < 256; i++) {
            if (routes[i].prefix == ph->tos) {
                break;
            }
        }
        ph->meta.next_hop = i;
        ether eph = packet_encap(ph);
        channel_put(out_cc, eph);
    }

    control func set_route(uint idx, uint prefix, uint nh) {
        critical {
            routes[idx].prefix = prefix;
            routes[idx].nexthop = nh;
        }
    }

    wiring {
        rx -> clsfr;
        ip_cc -> fwd;
        out_cc -> tx;
    }
}
`

func TestParseMiniApp(t *testing.T) {
	prog, err := Parse("mini.baker", miniApp)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(prog.Protocols) != 2 {
		t.Fatalf("protocols = %d, want 2", len(prog.Protocols))
	}
	eth := prog.Protocols[0]
	if eth.Name != "ether" || len(eth.Fields) != 5 {
		t.Errorf("ether: %q with %d fields", eth.Name, len(eth.Fields))
	}
	if eth.Demux == nil {
		t.Error("ether demux missing")
	}
	if prog.Metadata == nil || len(prog.Metadata.Fields) != 2 {
		t.Fatal("metadata missing or wrong field count")
	}
	if len(prog.Consts) != 1 || prog.Consts[0].Name != "ETH_TYPE_IP" {
		t.Error("const ETH_TYPE_IP not parsed")
	}
	if len(prog.Modules) != 1 {
		t.Fatalf("modules = %d, want 1", len(prog.Modules))
	}
	m := prog.Modules[0]
	if len(m.Structs) != 1 || len(m.Globals) != 2 || len(m.Chans) != 2 {
		t.Errorf("module contents: structs=%d globals=%d chans=%d",
			len(m.Structs), len(m.Globals), len(m.Chans))
	}
	if len(m.Funcs) != 3 {
		t.Fatalf("funcs = %d, want 3", len(m.Funcs))
	}
	if m.Funcs[0].Kind != ast.KindPPF || m.Funcs[2].Kind != ast.KindControl {
		t.Errorf("func kinds: %v, %v", m.Funcs[0].Kind, m.Funcs[2].Kind)
	}
	if len(m.Wiring) != 3 {
		t.Fatalf("wiring = %d, want 3", len(m.Wiring))
	}
	if m.Wiring[0].From != "rx" || m.Wiring[0].To != "clsfr" {
		t.Errorf("wiring[0] = %s -> %s", m.Wiring[0].From, m.Wiring[0].To)
	}
	if m.Wiring[2].To != "tx" {
		t.Errorf("wiring[2].To = %s, want tx", m.Wiring[2].To)
	}
}

func TestParseExpressions(t *testing.T) {
	src := `module m { func f(uint x) uint {
		uint a = (x + 2) * 3 - x / 4 % 5;
		uint b = x << 2 | x >> 3 & 0xff ^ 1;
		uint c = x < 3 && x != 0 || !x;
		uint d = x > 0 ? a : b + c;
		return ~d;
	} }`
	prog, err := Parse("t", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	body := prog.Modules[0].Funcs[0].Body
	if len(body.Stmts) != 5 {
		t.Fatalf("stmts = %d, want 5", len(body.Stmts))
	}
	d := body.Stmts[3].(*ast.DeclStmt)
	if _, ok := d.Init.(*ast.CondExpr); !ok {
		t.Errorf("d init is %T, want CondExpr", d.Init)
	}
}

func TestPrecedence(t *testing.T) {
	src := `module m { func f(uint x) uint { return 1 + 2 * 3; } }`
	prog, err := Parse("t", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ret := prog.Modules[0].Funcs[0].Body.Stmts[0].(*ast.ReturnStmt)
	bin := ret.Value.(*ast.BinaryExpr)
	if bin.Op != token.ADD {
		t.Fatalf("top op = %v, want +", bin.Op)
	}
	if inner, ok := bin.Y.(*ast.BinaryExpr); !ok || inner.Op != token.MUL {
		t.Fatalf("rhs = %#v, want 2*3", bin.Y)
	}
}

func TestArrowAndMetaAccess(t *testing.T) {
	src := `module m { ppf p(ether ph) {
		uint a = ph->dst_hi;
		uint b = ph->meta.rx_port;
		ph->meta.rx_port = a;
	} }`
	prog, err := Parse("t", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	body := prog.Modules[0].Funcs[0].Body
	a := body.Stmts[0].(*ast.DeclStmt)
	if _, ok := a.Init.(*ast.PacketFieldExpr); !ok {
		t.Errorf("a init = %T, want PacketFieldExpr", a.Init)
	}
	b := body.Stmts[1].(*ast.DeclStmt)
	if _, ok := b.Init.(*ast.MetaFieldExpr); !ok {
		t.Errorf("b init = %T, want MetaFieldExpr", b.Init)
	}
	asgn := body.Stmts[2].(*ast.AssignStmt)
	if _, ok := asgn.LHS.(*ast.MetaFieldExpr); !ok {
		t.Errorf("assign LHS = %T, want MetaFieldExpr", asgn.LHS)
	}
}

func TestIncDecSugar(t *testing.T) {
	src := `module m { func f(uint x) { x++; x--; } }`
	prog, err := Parse("t", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	body := prog.Modules[0].Funcs[0].Body
	inc := body.Stmts[0].(*ast.AssignStmt)
	if inc.Op != token.ADD_ASSIGN {
		t.Errorf("x++ parsed as %v", inc.Op)
	}
	dec := body.Stmts[1].(*ast.AssignStmt)
	if dec.Op != token.SUB_ASSIGN {
		t.Errorf("x-- parsed as %v", dec.Op)
	}
}

func TestWhileAndForVariants(t *testing.T) {
	src := `module m { func f(uint n) {
		while (n > 0) { n -= 1; }
		for (;;) { break; }
		for (uint i = 0; i < n; i++) { continue; }
	} }`
	prog, err := Parse("t", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	body := prog.Modules[0].Funcs[0].Body
	if _, ok := body.Stmts[0].(*ast.WhileStmt); !ok {
		t.Error("expected while")
	}
	inf := body.Stmts[1].(*ast.ForStmt)
	if inf.Init != nil || inf.Cond != nil || inf.Post != nil {
		t.Error("for(;;) should have nil init/cond/post")
	}
	full := body.Stmts[2].(*ast.ForStmt)
	if full.Init == nil || full.Cond == nil || full.Post == nil {
		t.Error("full for should have init/cond/post")
	}
}

func TestQualifiedWiring(t *testing.T) {
	src := `
protocol p { x : 32; demux { 4 }; }
module a { channel c : p; ppf f(p ph) { packet_drop(ph); } wiring { rx -> f; } }
module b { wiring { a.c -> a.f; } }
`
	prog, err := Parse("t", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	w := prog.Modules[1].Wiring[0]
	if w.From != "a.c" || w.To != "a.f" {
		t.Errorf("wire = %s -> %s", w.From, w.To)
	}
}

func TestSyntaxErrors(t *testing.T) {
	cases := []string{
		"module { }",                         // missing name
		"module m { ppf f( { } }",            // bad params
		"protocol p { x : ; demux{4}; }",     // missing width
		"module m { func f() { if x { } } }", // missing parens
		"module m { wiring { rx -> ; } }",    // missing target
	}
	for _, src := range cases {
		if _, err := Parse("t", src); err == nil {
			t.Errorf("source %q: expected parse error", src)
		}
	}
}

func TestParserRecoversAndKeepsGoing(t *testing.T) {
	src := `module m {
		func broken() { @ }
		func ok() { return; }
	}`
	prog, err := Parse("t", src)
	if err == nil {
		t.Fatal("expected error")
	}
	if prog == nil || len(prog.Modules) != 1 || len(prog.Modules[0].Funcs) != 2 {
		t.Fatalf("recovery failed: %+v", prog)
	}
}
