package parser

import (
	"testing"

	"shangrila/internal/baker/types"
)

// TestParserRobustToMutation is a lightweight fuzz: random byte
// mutations of a valid program must never panic the lexer, parser or
// checker — they may only produce errors. (Deterministic PRNG keeps the
// test reproducible.)
func TestParserRobustToMutation(t *testing.T) {
	src := []byte(miniApp)
	state := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for i := 0; i < 500; i++ {
		mut := append([]byte(nil), src...)
		// 1-4 random single-byte mutations.
		for k := 0; k < 1+int(next()%4); k++ {
			pos := int(next() % uint64(len(mut)))
			switch next() % 3 {
			case 0:
				mut[pos] = byte(next())
			case 1: // delete
				mut = append(mut[:pos], mut[pos+1:]...)
			case 2: // insert
				mut = append(mut[:pos], append([]byte{byte(next())}, mut[pos:]...)...)
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on mutated input (iteration %d): %v\nsource:\n%s", i, r, mut)
				}
			}()
			prog, err := Parse("fuzz.baker", string(mut))
			if err == nil && prog != nil {
				// Valid mutations must also survive the checker.
				_, _ = types.Check(prog)
			}
		}()
	}
}
