// Package lexer turns Baker source text into a stream of tokens.
package lexer

import (
	"fmt"
	"strings"

	"shangrila/internal/baker/token"
)

// Error is a lexical error with its source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans Baker source. Create one with New; comments are skipped.
type Lexer struct {
	file string
	src  string
	off  int // byte offset of the next unread character
	line int
	col  int
	errs []*Error
}

// New returns a Lexer over src; file names positions in diagnostics.
func New(file, src string) *Lexer {
	return &Lexer{file: file, src: src, line: 1, col: 1}
}

// Errors returns the lexical errors encountered so far.
func (l *Lexer) Errors() []*Error { return l.errs }

func (l *Lexer) pos() token.Pos {
	return token.Pos{File: l.file, Line: l.line, Col: l.col}
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) errorf(pos token.Pos, format string, args ...any) {
	l.errs = append(l.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func isLetter(c byte) bool {
	return c == '_' || 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z'
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || 'a' <= c && c <= 'f' || 'A' <= c && c <= 'F'
}

// Next returns the next token, skipping whitespace and comments. At end of
// input it returns an EOF token forever.
func (l *Lexer) Next() token.Token {
	for {
		l.skipSpace()
		if l.off >= len(l.src) {
			return token.Token{Kind: token.EOF, Pos: l.pos()}
		}
		if l.peek() == '/' && l.peek2() == '/' {
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
			continue
		}
		if l.peek() == '/' && l.peek2() == '*' {
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(start, "unterminated block comment")
			}
			continue
		}
		break
	}

	pos := l.pos()
	c := l.peek()
	switch {
	case isLetter(c):
		start := l.off
		for l.off < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		lit := l.src[start:l.off]
		return token.Token{Kind: token.Lookup(lit), Lit: lit, Pos: pos}
	case isDigit(c):
		return l.scanNumber(pos)
	case c == '"':
		return l.scanString(pos)
	}
	return l.scanOperator(pos)
}

func (l *Lexer) skipSpace() {
	for l.off < len(l.src) {
		switch l.peek() {
		case ' ', '\t', '\r', '\n':
			l.advance()
		default:
			return
		}
	}
}

func (l *Lexer) scanNumber(pos token.Pos) token.Token {
	start := l.off
	if l.peek() == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
		l.advance()
		l.advance()
		if !isHexDigit(l.peek()) {
			l.errorf(pos, "malformed hex literal")
		}
		for l.off < len(l.src) && isHexDigit(l.peek()) {
			l.advance()
		}
	} else {
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	lit := l.src[start:l.off]
	if l.off < len(l.src) && isLetter(l.peek()) {
		l.errorf(pos, "identifier immediately follows number %q", lit)
	}
	return token.Token{Kind: token.INT, Lit: lit, Pos: pos}
}

func (l *Lexer) scanString(pos token.Pos) token.Token {
	l.advance() // opening quote
	var b strings.Builder
	for {
		if l.off >= len(l.src) || l.peek() == '\n' {
			l.errorf(pos, "unterminated string literal")
			break
		}
		c := l.advance()
		if c == '"' {
			break
		}
		if c == '\\' && l.off < len(l.src) {
			esc := l.advance()
			switch esc {
			case 'n':
				c = '\n'
			case 't':
				c = '\t'
			case '\\', '"':
				c = esc
			default:
				l.errorf(pos, "unknown escape \\%c", esc)
				c = esc
			}
		}
		b.WriteByte(c)
	}
	return token.Token{Kind: token.STRING, Lit: b.String(), Pos: pos}
}

// op3 matches three-character operators, op2 two-character, then singles.
func (l *Lexer) scanOperator(pos token.Pos) token.Token {
	three := ""
	if l.off+3 <= len(l.src) {
		three = l.src[l.off : l.off+3]
	}
	switch three {
	case "<<=":
		l.advanceN(3)
		return token.Token{Kind: token.SHL_ASSIGN, Pos: pos}
	case ">>=":
		l.advanceN(3)
		return token.Token{Kind: token.SHR_ASSIGN, Pos: pos}
	}
	two := ""
	if l.off+2 <= len(l.src) {
		two = l.src[l.off : l.off+2]
	}
	twoKinds := map[string]token.Kind{
		"<<": token.SHL, ">>": token.SHR, "&&": token.LAND, "||": token.LOR,
		"==": token.EQL, "!=": token.NEQ, "<=": token.LEQ, ">=": token.GEQ,
		"+=": token.ADD_ASSIGN, "-=": token.SUB_ASSIGN, "*=": token.MUL_ASSIGN,
		"/=": token.QUO_ASSIGN, "%=": token.REM_ASSIGN, "&=": token.AND_ASSIGN,
		"|=": token.OR_ASSIGN, "^=": token.XOR_ASSIGN,
		"->": token.ARROW, "++": token.INC, "--": token.DEC,
	}
	if k, ok := twoKinds[two]; ok {
		l.advanceN(2)
		return token.Token{Kind: k, Pos: pos}
	}
	oneKinds := map[byte]token.Kind{
		'+': token.ADD, '-': token.SUB, '*': token.MUL, '/': token.QUO,
		'%': token.REM, '&': token.AND, '|': token.OR, '^': token.XOR,
		'~': token.NOT, '!': token.LNOT, '<': token.LSS, '>': token.GTR,
		'=': token.ASSIGN, '(': token.LPAREN, ')': token.RPAREN,
		'{': token.LBRACE, '}': token.RBRACE, '[': token.LBRACK,
		']': token.RBRACK, ',': token.COMMA, ';': token.SEMI,
		':': token.COLON, '.': token.DOT, '?': token.QUEST,
	}
	c := l.advance()
	if k, ok := oneKinds[c]; ok {
		return token.Token{Kind: k, Pos: pos}
	}
	l.errorf(pos, "illegal character %q", c)
	return token.Token{Kind: token.ILLEGAL, Lit: string(c), Pos: pos}
}

func (l *Lexer) advanceN(n int) {
	for i := 0; i < n; i++ {
		l.advance()
	}
}

// ScanAll lexes the whole input and returns every token up to and including
// the terminating EOF. Handy for tests and tooling.
func ScanAll(file, src string) ([]token.Token, []*Error) {
	l := New(file, src)
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks, l.Errors()
		}
	}
}
