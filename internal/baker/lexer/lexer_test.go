package lexer

import (
	"testing"

	"shangrila/internal/baker/token"
)

func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	toks, errs := ScanAll("test.baker", src)
	if len(errs) > 0 {
		t.Fatalf("lex errors: %v", errs[0])
	}
	out := make([]token.Kind, 0, len(toks))
	for _, tk := range toks {
		out = append(out, tk.Kind)
	}
	return out
}

func TestKeywordsAndIdents(t *testing.T) {
	got := kinds(t, "module ppf func control init wiring hello _x9")
	want := []token.Kind{token.MODULE, token.PPF, token.FUNC, token.CONTROL,
		token.INITKW, token.WIRING, token.IDENT, token.IDENT, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestNumbers(t *testing.T) {
	toks, errs := ScanAll("t", "0 42 0x0806 0xdeadBEEF")
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs[0])
	}
	wantLits := []string{"0", "42", "0x0806", "0xdeadBEEF"}
	for i, w := range wantLits {
		if toks[i].Kind != token.INT || toks[i].Lit != w {
			t.Errorf("token %d = %v, want INT %q", i, toks[i], w)
		}
	}
}

func TestOperators(t *testing.T) {
	got := kinds(t, "-> << >> <<= >>= && || == != <= >= += ++ -- ? :")
	want := []token.Kind{token.ARROW, token.SHL, token.SHR, token.SHL_ASSIGN,
		token.SHR_ASSIGN, token.LAND, token.LOR, token.EQL, token.NEQ,
		token.LEQ, token.GEQ, token.ADD_ASSIGN, token.INC, token.DEC,
		token.QUEST, token.COLON, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestComments(t *testing.T) {
	got := kinds(t, "a // line comment\nb /* block\ncomment */ c")
	want := []token.Kind{token.IDENT, token.IDENT, token.IDENT, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
}

func TestPositions(t *testing.T) {
	toks, _ := ScanAll("f.baker", "a\n  b")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v, want 2:3", toks[1].Pos)
	}
}

func TestStringLiteral(t *testing.T) {
	toks, errs := ScanAll("t", `"hello\nworld"`)
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs[0])
	}
	if toks[0].Kind != token.STRING || toks[0].Lit != "hello\nworld" {
		t.Errorf("got %v", toks[0])
	}
}

func TestErrors(t *testing.T) {
	cases := []string{"@", `"unterminated`, "/* unterminated", "0x"}
	for _, src := range cases {
		_, errs := ScanAll("t", src)
		if len(errs) == 0 {
			t.Errorf("source %q: expected a lex error", src)
		}
	}
}

func TestIdentAfterNumberRejected(t *testing.T) {
	_, errs := ScanAll("t", "12abc")
	if len(errs) == 0 {
		t.Fatal("expected error for 12abc")
	}
}

func TestEOFIsSticky(t *testing.T) {
	l := New("t", "x")
	l.Next()
	for i := 0; i < 3; i++ {
		if tok := l.Next(); tok.Kind != token.EOF {
			t.Fatalf("call %d after end: got %v, want EOF", i, tok)
		}
	}
}
