// Package types implements semantic analysis for Baker: symbol resolution,
// type checking, protocol/metadata bit-layout computation, constant
// evaluation, the dataflow (wiring) graph, and the language restrictions
// from §2.3 of the paper (no recursion within a PPF's call tree; packet
// handles are the only reference values, so aliasing stays analyzable).
package types

import (
	"fmt"

	"shangrila/internal/baker/ast"
)

// WordBytes is the machine word size of the target (the IXP is a 32-bit
// machine; all scalars occupy one 4-byte word).
const WordBytes = 4

// Type is the interface implemented by all Baker types.
type Type interface {
	String() string
	// SizeBytes is the storage footprint of a value of this type.
	SizeBytes() int
}

// BasicKind enumerates the scalar types.
type BasicKind int

const (
	Uint BasicKind = iota // 32-bit unsigned word (the native type)
	Int                   // 32-bit signed word
	Void
)

// Basic is a scalar type.
type Basic struct{ Kind BasicKind }

func (b *Basic) String() string {
	switch b.Kind {
	case Uint:
		return "uint"
	case Int:
		return "int"
	}
	return "void"
}

func (b *Basic) SizeBytes() int {
	if b.Kind == Void {
		return 0
	}
	return WordBytes
}

// Predeclared singleton types.
var (
	UintType = &Basic{Kind: Uint}
	IntType  = &Basic{Kind: Int}
	VoidType = &Basic{Kind: Void}
)

// IsScalar reports whether t is a 32-bit integer type.
func IsScalar(t Type) bool {
	b, ok := t.(*Basic)
	return ok && b.Kind != Void
}

// StructField is a field of a Struct with its byte offset.
type StructField struct {
	Name   string
	Type   Type
	Offset int // byte offset within the struct
}

// Struct is a programmer-declared aggregate used for global data.
type Struct struct {
	Name   string
	Fields []*StructField
	Size   int // total bytes, word aligned
}

func (s *Struct) String() string { return s.Name }
func (s *Struct) SizeBytes() int { return s.Size }

// Field returns the named field or nil.
func (s *Struct) Field(name string) *StructField {
	for _, f := range s.Fields {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Array is a fixed-length array type.
type Array struct {
	Elem Type
	Len  int
}

func (a *Array) String() string { return fmt.Sprintf("%s[%d]", a.Elem, a.Len) }
func (a *Array) SizeBytes() int { return a.Elem.SizeBytes() * a.Len }

// Handle is a packet handle typed by the protocol of the header it
// currently points at (ph in "ether ph").
type Handle struct{ Proto *Protocol }

func (h *Handle) String() string { return "handle<" + h.Proto.Name + ">" }

// SizeBytes of a handle is one word (it is an opaque reference).
func (h *Handle) SizeBytes() int { return WordBytes }

// ProtoField is one bit field of a protocol header.
type ProtoField struct {
	Name   string
	BitOff int // offset from the start of the header, in bits
	Bits   int // width in bits (1..64)
}

// ByteSpan returns the byte-aligned span [lo, hi) covering the field.
func (f *ProtoField) ByteSpan() (lo, hi int) {
	lo = f.BitOff / 8
	hi = (f.BitOff + f.Bits + 7) / 8
	return lo, hi
}

// Protocol is a packet protocol layout (§2.2). Fields are laid out in
// declaration order, big-endian, bit-packed. Demux gives the header size
// in bytes; if it depends on header fields the size is dynamic and
// FixedSize is -1.
type Protocol struct {
	Name      string
	Fields    []*ProtoField
	HeaderMin int      // minimum header bytes = bit-packed field total
	FixedSize int      // demux value when constant, else -1
	Demux     ast.Expr // original demux expression (fields + consts)
	ID        int      // dense index assigned by the checker
}

func (p *Protocol) String() string { return "protocol " + p.Name }

// Field returns the named field or nil.
func (p *Protocol) Field(name string) *ProtoField {
	for _, f := range p.Fields {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Metadata is the per-packet metadata layout. It reuses ProtoField for its
// bit-packed members; on the IXP the record lives in SRAM next to the
// buffer descriptor.
type Metadata struct {
	Fields []*ProtoField
	Bytes  int // total size, word aligned
}

// Field returns the named metadata field or nil.
func (m *Metadata) Field(name string) *ProtoField {
	for _, f := range m.Fields {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Symbols

// SymKind classifies program symbols.
type SymKind int

const (
	SymGlobal SymKind = iota
	SymLocal
	SymParam
	SymConst
	SymChannel
	SymFunc
)

// Symbol is a named program entity. Globals and channels carry their
// declaring module; locals/params belong to a function.
type Symbol struct {
	Kind   SymKind
	Name   string // qualified for globals/channels: "module.name"
	Type   Type
	Const  uint64   // value when Kind == SymConst
	Chan   *Channel // when Kind == SymChannel
	Func   *Func    // when Kind == SymFunc
	Global *Global  // when Kind == SymGlobal
}

// MemSpace is the physical memory level a global is mapped to. The
// IPA/global optimizer assigns it: most application data goes to SRAM,
// small hot structures to Scratch (§4.1); compiler-generated per-ME state
// (software-cache counters) goes to Local Memory.
type MemSpace uint8

// Memory levels of the IXP2400 (§3.2).
const (
	SpaceSRAM MemSpace = iota // default for application data
	SpaceScratch
	SpaceLocal // per-ME: only for compiler-generated private state
	SpaceDRAM  // packet data (globals never live here)
)

func (s MemSpace) String() string {
	switch s {
	case SpaceScratch:
		return "scratch"
	case SpaceLocal:
		return "local"
	case SpaceDRAM:
		return "dram"
	}
	return "sram"
}

// Global is a module-level shared data structure.
type Global struct {
	Name   string // qualified "module.name"
	Type   Type
	Module string
	// Space is the memory level chosen by the IPA/global optimizer.
	Space MemSpace
	// Synthetic marks compiler-generated globals (SWC flags/counters).
	Synthetic bool
}

// Channel is a communication channel between PPFs.
type Channel struct {
	Name     string // qualified "module.name"
	Proto    *Protocol
	Module   string
	Consumer string // PPF qualified name, or "tx", or "" if unwired
	ID       int    // dense index
}

// Func is a checked function or PPF.
type Func struct {
	Name    string // qualified "module.name"
	Kind    ast.FuncKind
	Params  []*Symbol
	Result  Type
	Decl    *ast.FuncDecl
	Module  string
	InProto *Protocol // for PPFs: protocol of the input packet
	Calls   []string  // qualified callee names (for recursion check / call graph)
}

// ---------------------------------------------------------------------------
// Checked program

// Info carries the side tables produced by the checker that later phases
// (lowering) consume.
type Info struct {
	// ExprTypes maps every checked expression to its type.
	ExprTypes map[ast.Expr]Type
	// Uses maps identifier expressions to their resolved symbols.
	Uses map[*ast.Ident]*Symbol
	// CallResolved maps call expressions that target user functions to the
	// callee. Builtin calls are absent.
	CallResolved map[*ast.CallExpr]*Func
	// HandleProto maps packet-primitive calls (packet_decap, packet_encap,
	// packet_create, packet_copy) to the protocol of their result handle.
	HandleProto map[*ast.CallExpr]*Protocol
	// ChanArg maps channel_put calls to the channel they place packets on.
	ChanArg map[*ast.CallExpr]*Channel
	// LocalSyms maps declaration statements to their symbol.
	LocalSyms map[*ast.DeclStmt]*Symbol
	// ParamSyms maps parameters to their symbol.
	ParamSyms map[*ast.Param]*Symbol
}

// Program is the result of successful type checking.
type Program struct {
	AST       *ast.Program
	Protocols map[string]*Protocol
	ProtoByID []*Protocol
	Metadata  *Metadata
	Consts    map[string]uint64
	Structs   map[string]*Struct
	Globals   map[string]*Global  // qualified name
	Channels  map[string]*Channel // qualified name
	ChanByID  []*Channel
	Funcs     map[string]*Func // qualified name
	// Entry is the PPF wired to the builtin "rx" source.
	Entry *Func
	Info  *Info
}

// PPFs returns all packet processing functions in deterministic order
// (module order then declaration order).
func (p *Program) PPFs() []*Func {
	var out []*Func
	for _, m := range p.AST.Modules {
		for _, fd := range m.Funcs {
			if fd.Kind == ast.KindPPF {
				out = append(out, p.Funcs[m.Name+"."+fd.Name])
			}
		}
	}
	return out
}

// FuncsInOrder returns every function in deterministic declaration order.
func (p *Program) FuncsInOrder() []*Func {
	var out []*Func
	for _, m := range p.AST.Modules {
		for _, fd := range m.Funcs {
			out = append(out, p.Funcs[m.Name+"."+fd.Name])
		}
	}
	return out
}
