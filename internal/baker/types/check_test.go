package types

import (
	"strings"
	"testing"

	"shangrila/internal/baker/parser"
)

func mustCheck(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := parser.Parse("test.baker", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	tp, err := Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return tp
}

func checkErr(t *testing.T, src, wantSub string) {
	t.Helper()
	prog, err := parser.Parse("test.baker", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Check(prog)
	if err == nil {
		t.Fatalf("expected check error containing %q, got none", wantSub)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not contain %q", err.Error(), wantSub)
	}
}

const header = `
protocol ether {
    dst_hi : 16; dst_lo : 32;
    src_hi : 16; src_lo : 32;
    type : 16;
    demux { 14 };
}
protocol ipv4 {
    ver : 4; hlen : 4; tos : 8; length : 16;
    id : 16; flags : 3; frag : 13;
    ttl : 8; proto : 8; cksum : 16;
    src : 32; dst : 32;
    demux { hlen << 2 };
}
metadata { rx_port : 16; next_hop : 16; }
const ETH_IP = 0x0800;
`

func TestProtocolLayout(t *testing.T) {
	p := mustCheck(t, header+`module m { ppf f(ether ph){ packet_drop(ph); } wiring { rx -> f; } }`)
	eth := p.Protocols["ether"]
	if eth == nil {
		t.Fatal("no ether protocol")
	}
	if eth.FixedSize != 14 {
		t.Errorf("ether size = %d, want 14", eth.FixedSize)
	}
	f := eth.Field("type")
	if f == nil || f.BitOff != 96 || f.Bits != 16 {
		t.Errorf("type field = %+v, want off 96 bits 16", f)
	}
	ip := p.Protocols["ipv4"]
	if ip.FixedSize != -1 {
		t.Errorf("ipv4 should be dynamic, got %d", ip.FixedSize)
	}
	if ip.HeaderMin != 20 {
		t.Errorf("ipv4 min header = %d, want 20", ip.HeaderMin)
	}
	if d := ip.Field("dst"); d == nil || d.BitOff != 128 {
		t.Errorf("ipv4 dst = %+v, want bitoff 128", d)
	}
	lo, hi := ip.Field("flags").ByteSpan()
	if lo != 6 || hi != 7 {
		t.Errorf("flags span = [%d,%d), want [6,7)", lo, hi)
	}
}

func TestMetadataLayout(t *testing.T) {
	p := mustCheck(t, header+`module m { ppf f(ether ph){ packet_drop(ph); } wiring { rx -> f; } }`)
	md := p.Metadata
	if md.Bytes != 4 {
		t.Errorf("metadata bytes = %d, want 4", md.Bytes)
	}
	if f := md.Field("next_hop"); f == nil || f.BitOff != 16 {
		t.Errorf("next_hop = %+v", f)
	}
}

func TestStructLayout(t *testing.T) {
	p := mustCheck(t, header+`module m {
		struct Node { a : uint; b : int; c : uint; }
		Node nodes[8];
		ppf f(ether ph){ nodes[0].b = 1; packet_drop(ph); }
		wiring { rx -> f; }
	}`)
	s := p.Structs["Node"]
	if s.Size != 12 {
		t.Errorf("Node size = %d, want 12", s.Size)
	}
	if f := s.Field("c"); f == nil || f.Offset != 8 {
		t.Errorf("c offset = %+v, want 8", f)
	}
	g := p.Globals["m.nodes"]
	if g == nil || g.Type.SizeBytes() != 96 {
		t.Errorf("nodes global = %+v", g)
	}
}

func TestConstEval(t *testing.T) {
	p := mustCheck(t, `
const A = 4;
const B = A * 2 + 1;
const C = (B << 4) | 0xf;
protocol p { x : 32; demux { 4 }; }
module m { uint t[B]; ppf f(p ph){ packet_drop(ph); } wiring { rx -> f; } }`)
	if p.Consts["B"] != 9 {
		t.Errorf("B = %d, want 9", p.Consts["B"])
	}
	if p.Consts["C"] != (9<<4)|0xf {
		t.Errorf("C = %d", p.Consts["C"])
	}
	if arr := p.Globals["m.t"].Type.(*Array); arr.Len != 9 {
		t.Errorf("t len = %d, want 9", arr.Len)
	}
}

func TestHandleInference(t *testing.T) {
	p := mustCheck(t, header+`module m {
		channel out : ipv4;
		ppf f(ether ph) {
			if (ph->type == ETH_IP) {
				ipv4 iph = packet_decap(ph);
				channel_put(out, iph);
			} else { packet_drop(ph); }
		}
		ppf g(ipv4 ph) {
			ether eph = packet_encap(ph);
			packet_drop(eph);
		}
		wiring { rx -> f; out -> g; }
	}`)
	// HandleProto must record both decap->ipv4 and encap->ether.
	protos := map[string]bool{}
	for _, pr := range p.Info.HandleProto {
		protos[pr.Name] = true
	}
	if !protos["ipv4"] || !protos["ether"] {
		t.Errorf("HandleProto = %v, want ipv4 and ether", protos)
	}
}

func TestEntryAndWiring(t *testing.T) {
	p := mustCheck(t, header+`module m {
		channel c1 : ipv4;
		channel c2 : ether;
		ppf a(ether ph) { ipv4 x = packet_decap(ph); channel_put(c1, x); }
		ppf b(ipv4 ph) { ether e = packet_encap(ph); channel_put(c2, e); }
		wiring { rx -> a; c1 -> b; c2 -> tx; }
	}`)
	if p.Entry == nil || p.Entry.Name != "m.a" {
		t.Fatalf("entry = %v, want m.a", p.Entry)
	}
	if p.Channels["m.c1"].Consumer != "m.b" {
		t.Errorf("c1 consumer = %q", p.Channels["m.c1"].Consumer)
	}
	if p.Channels["m.c2"].Consumer != "tx" {
		t.Errorf("c2 consumer = %q", p.Channels["m.c2"].Consumer)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{header + `module m { ppf f(ether ph){ uint x = ph->nosuch; packet_drop(ph);} wiring { rx -> f; } }`,
			"no field"},
		{header + `module m { ppf f(ether ph){ uint x = ph->meta.bogus; packet_drop(ph);} wiring { rx -> f; } }`,
			"metadata field"},
		{header + `module m { ppf f(ether ph){ packet_drop(ph); } }`, "no rx wiring"},
		{header + `module m { channel c : ipv4; ppf f(ether ph){ packet_drop(ph); } wiring { rx -> f; } }`,
			"no consumer"},
		{header + `module m { channel c : ipv4; ppf f(ether ph){ channel_put(c, ph); } wiring { rx -> f; c -> tx; } }`,
			"carries"},
		{header + `module m { func a() { b(); } func b() { a(); } ppf f(ether ph){ packet_drop(ph);} wiring { rx -> f; } }`,
			"recursion"},
		{header + `module m { ppf f(ether ph){ uint x = packet_decap(ph); } wiring { rx -> f; } }`,
			"inferred"},
		{header + `module m { ppf f(ether ph, uint x){ packet_drop(ph); } wiring { rx -> f; } }`,
			"exactly one"},
		{header + `module m { ppf f(ether ph){ undefined_fn(ph); } wiring { rx -> f; } }`,
			"undefined function"},
		{header + `module m { ppf f(ether ph){ uint y = z; packet_drop(ph); } wiring { rx -> f; } }`,
			"undefined"},
		{`protocol wide { big : 48; demux { 6 }; }
		  module m { ppf f(wide ph){ uint x = ph->big; packet_drop(ph); } wiring { rx -> f; } }`,
			"direct access is limited"},
		{header + `module m { ether keep; ppf f(ether ph){ packet_drop(ph); } wiring { rx -> f; } }`,
			"cannot be stored"},
		{header + `module m { ppf f(ether ph){ 3 = 4; packet_drop(ph); } wiring { rx -> f; } }`,
			"not assignable"},
	}
	for i, tc := range cases {
		t.Run(tc.want, func(t *testing.T) {
			checkErr(t, tc.src, tc.want)
			_ = i
		})
	}
}

func TestRecursionSelfCall(t *testing.T) {
	checkErr(t, header+`module m {
		func fact(uint n) uint { if (n == 0) { return 1; } return n * fact(n - 1); }
		ppf f(ether ph){ uint x = fact(3); packet_drop(ph); }
		wiring { rx -> f; }
	}`, "recursion")
}

func TestWideFieldDeclaredButNotAccessedOK(t *testing.T) {
	mustCheck(t, `
protocol tunnel { hdr : 64; small : 16; demux { 10 }; }
module m { ppf f(tunnel ph){ uint x = ph->small; packet_drop(ph); } wiring { rx -> f; } }`)
}

func TestPPFsOrder(t *testing.T) {
	p := mustCheck(t, header+`module m {
		channel c : ipv4;
		ppf z(ether ph) { ipv4 x = packet_decap(ph); channel_put(c, x); }
		ppf a(ipv4 ph) { packet_drop(ph); }
		wiring { rx -> z; c -> a; }
	}`)
	ppfs := p.PPFs()
	if len(ppfs) != 2 || ppfs[0].Name != "m.z" || ppfs[1].Name != "m.a" {
		t.Errorf("PPFs order: %v", ppfs)
	}
	if ppfs[1].InProto.Name != "ipv4" {
		t.Errorf("a input proto = %v", ppfs[1].InProto)
	}
}
