package types

import (
	"fmt"
	"sort"

	"shangrila/internal/baker/ast"
	"shangrila/internal/baker/token"
)

// CheckError is a semantic error at a source position.
type CheckError struct {
	Pos token.Pos
	Msg string
}

func (e *CheckError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList collects semantic errors; it implements error.
type ErrorList []*CheckError

func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	}
	return fmt.Sprintf("%s (and %d more errors)", l[0], len(l)-1)
}

// MaxFieldBits is the widest protocol/metadata field that can be accessed
// directly; wider fields must be split by the programmer (the target is a
// 32-bit machine). Declaring a wider field is legal as long as no access
// reads it whole.
const MaxFieldBits = 32

type checker struct {
	prog *Program
	errs ErrorList

	// per-function state
	cur    *Func
	scopes []map[string]*Symbol
	module string
	loop   int
}

// Check type-checks a parsed program and returns the semantic model.
func Check(prog *ast.Program) (*Program, error) {
	c := &checker{prog: &Program{
		AST:       prog,
		Protocols: map[string]*Protocol{},
		Consts:    map[string]uint64{},
		Structs:   map[string]*Struct{},
		Globals:   map[string]*Global{},
		Channels:  map[string]*Channel{},
		Funcs:     map[string]*Func{},
		Info: &Info{
			ExprTypes:    map[ast.Expr]Type{},
			Uses:         map[*ast.Ident]*Symbol{},
			CallResolved: map[*ast.CallExpr]*Func{},
			HandleProto:  map[*ast.CallExpr]*Protocol{},
			ChanArg:      map[*ast.CallExpr]*Channel{},
			LocalSyms:    map[*ast.DeclStmt]*Symbol{},
			ParamSyms:    map[*ast.Param]*Symbol{},
		},
	}}
	c.collectConsts()
	c.collectProtocols()
	c.collectMetadata()
	c.collectModules()
	c.checkBodies()
	c.checkWiring()
	c.checkNoRecursion()
	if len(c.errs) > 0 {
		return c.prog, c.errs
	}
	return c.prog, nil
}

func (c *checker) errorf(pos token.Pos, format string, args ...any) {
	if len(c.errs) < 100 {
		c.errs = append(c.errs, &CheckError{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
}

// ---------------------------------------------------------------------------
// Declarations

func (c *checker) collectConsts() {
	for _, d := range c.prog.AST.Consts {
		if _, dup := c.prog.Consts[d.Name]; dup {
			c.errorf(d.Pos(), "duplicate constant %q", d.Name)
			continue
		}
		v, ok := c.constEval(d.Value)
		if !ok {
			c.errorf(d.Pos(), "constant %q is not a compile-time constant expression", d.Name)
			v = 0
		}
		c.prog.Consts[d.Name] = v
	}
}

// constEval evaluates e using only literals and previously declared
// constants.
func (c *checker) constEval(e ast.Expr) (uint64, bool) {
	switch e := e.(type) {
	case *ast.IntLit:
		return e.Value, true
	case *ast.Ident:
		v, ok := c.prog.Consts[e.Name]
		return v, ok
	case *ast.UnaryExpr:
		x, ok := c.constEval(e.X)
		if !ok {
			return 0, false
		}
		switch e.Op {
		case token.SUB:
			return uint64(uint32(-int32(uint32(x)))), true
		case token.NOT:
			return uint64(^uint32(x)), true
		case token.LNOT:
			if x == 0 {
				return 1, true
			}
			return 0, true
		}
		return 0, false
	case *ast.BinaryExpr:
		x, okx := c.constEval(e.X)
		y, oky := c.constEval(e.Y)
		if !okx || !oky {
			return 0, false
		}
		a, b := uint32(x), uint32(y)
		switch e.Op {
		case token.ADD:
			return uint64(a + b), true
		case token.SUB:
			return uint64(a - b), true
		case token.MUL:
			return uint64(a * b), true
		case token.QUO:
			if b == 0 {
				return 0, false
			}
			return uint64(a / b), true
		case token.REM:
			if b == 0 {
				return 0, false
			}
			return uint64(a % b), true
		case token.AND:
			return uint64(a & b), true
		case token.OR:
			return uint64(a | b), true
		case token.XOR:
			return uint64(a ^ b), true
		case token.SHL:
			return uint64(a << (b & 31)), true
		case token.SHR:
			return uint64(a >> (b & 31)), true
		}
		return 0, false
	}
	return 0, false
}

func (c *checker) collectProtocols() {
	for _, pd := range c.prog.AST.Protocols {
		if _, dup := c.prog.Protocols[pd.Name]; dup {
			c.errorf(pd.Pos(), "duplicate protocol %q", pd.Name)
			continue
		}
		p := &Protocol{Name: pd.Name, Demux: pd.Demux, ID: len(c.prog.ProtoByID)}
		bit := 0
		for _, f := range pd.Fields {
			if p.Field(f.Name) != nil {
				c.errorf(f.Pos(), "duplicate field %q in protocol %q", f.Name, pd.Name)
				continue
			}
			p.Fields = append(p.Fields, &ProtoField{Name: f.Name, BitOff: bit, Bits: f.Bits})
			bit += f.Bits
		}
		p.HeaderMin = (bit + 7) / 8
		p.FixedSize = -1
		if pd.Demux == nil {
			c.errorf(pd.Pos(), "protocol %q has no demux declaration", pd.Name)
			p.FixedSize = p.HeaderMin
		} else if v, ok := c.constEvalProto(pd.Demux, p); ok {
			p.FixedSize = int(v)
			if p.FixedSize < p.HeaderMin {
				c.errorf(pd.Pos(), "protocol %q demux size %d is smaller than its %d bytes of fields",
					pd.Name, p.FixedSize, p.HeaderMin)
			}
		} else if !c.demuxWellFormed(pd.Demux, p) {
			c.errorf(pd.Pos(), "protocol %q demux must use only constants and fields of the protocol", pd.Name)
		}
		c.prog.Protocols[pd.Name] = p
		c.prog.ProtoByID = append(c.prog.ProtoByID, p)
	}
}

// constEvalProto evaluates a demux expression when it references no fields.
func (c *checker) constEvalProto(e ast.Expr, p *Protocol) (uint64, bool) {
	if usesField(e, p) {
		return 0, false
	}
	return c.constEval(e)
}

func usesField(e ast.Expr, p *Protocol) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return p.Field(e.Name) != nil
	case *ast.UnaryExpr:
		return usesField(e.X, p)
	case *ast.BinaryExpr:
		return usesField(e.X, p) || usesField(e.Y, p)
	}
	return false
}

// demuxWellFormed checks a dynamic demux uses only literals, constants and
// fields of p.
func (c *checker) demuxWellFormed(e ast.Expr, p *Protocol) bool {
	switch e := e.(type) {
	case *ast.IntLit:
		return true
	case *ast.Ident:
		if p.Field(e.Name) != nil {
			if f := p.Field(e.Name); f.Bits > MaxFieldBits {
				return false
			}
			return true
		}
		_, ok := c.prog.Consts[e.Name]
		return ok
	case *ast.UnaryExpr:
		return c.demuxWellFormed(e.X, p)
	case *ast.BinaryExpr:
		return c.demuxWellFormed(e.X, p) && c.demuxWellFormed(e.Y, p)
	}
	return false
}

func (c *checker) collectMetadata() {
	md := &Metadata{}
	if c.prog.AST.Metadata != nil {
		bit := 0
		for _, f := range c.prog.AST.Metadata.Fields {
			if md.Field(f.Name) != nil {
				c.errorf(f.Pos(), "duplicate metadata field %q", f.Name)
				continue
			}
			if f.Bits > MaxFieldBits {
				c.errorf(f.Pos(), "metadata field %q is %d bits; max %d", f.Name, f.Bits, MaxFieldBits)
			}
			md.Fields = append(md.Fields, &ProtoField{Name: f.Name, BitOff: bit, Bits: f.Bits})
			bit += f.Bits
		}
		md.Bytes = (bit + 31) / 32 * 4
	}
	c.prog.Metadata = md
}

func (c *checker) collectModules() {
	for _, m := range c.prog.AST.Modules {
		c.module = m.Name
		for _, sd := range m.Structs {
			c.declareStruct(m, sd)
		}
		for _, g := range m.Globals {
			c.declareGlobal(m, g)
		}
		for _, ch := range m.Chans {
			c.declareChannel(m, ch)
		}
		for _, f := range m.Funcs {
			c.declareFunc(m, f)
		}
	}
}

func (c *checker) declareStruct(m *ast.ModuleDecl, sd *ast.StructDecl) {
	if _, dup := c.prog.Structs[sd.Name]; dup {
		c.errorf(sd.Pos(), "duplicate struct %q", sd.Name)
		return
	}
	s := &Struct{Name: sd.Name}
	off := 0
	for _, f := range sd.Fields {
		ft := c.resolveType(f.Type, false)
		if !IsScalar(ft) {
			c.errorf(f.Pos(), "struct field %q must be a scalar type, have %s", f.Name, ft)
			ft = UintType
		}
		if s.Field(f.Name) != nil {
			c.errorf(f.Pos(), "duplicate struct field %q", f.Name)
			continue
		}
		s.Fields = append(s.Fields, &StructField{Name: f.Name, Type: ft, Offset: off})
		off += ft.SizeBytes()
	}
	s.Size = off
	c.prog.Structs[sd.Name] = s
}

func (c *checker) declareGlobal(m *ast.ModuleDecl, g *ast.GlobalDecl) {
	qn := m.Name + "." + g.Name
	if _, dup := c.prog.Globals[qn]; dup {
		c.errorf(g.Pos(), "duplicate global %q", qn)
		return
	}
	t := c.resolveType(g.Type, true)
	if g.Type.ArrayN != nil {
		n, ok := c.constEval(g.Type.ArrayN)
		if !ok || n == 0 || n > 1<<24 {
			c.errorf(g.Pos(), "array length of %q must be a constant in 1..2^24", qn)
			n = 1
		}
		t = &Array{Elem: t, Len: int(n)}
	}
	if _, isHandle := t.(*Handle); isHandle {
		c.errorf(g.Pos(), "global %q: packet handles cannot be stored in globals", qn)
		t = UintType
	}
	c.prog.Globals[qn] = &Global{Name: qn, Type: t, Module: m.Name}
}

func (c *checker) declareChannel(m *ast.ModuleDecl, ch *ast.ChannelDecl) {
	qn := m.Name + "." + ch.Name
	if _, dup := c.prog.Channels[qn]; dup {
		c.errorf(ch.Pos(), "duplicate channel %q", qn)
		return
	}
	proto, ok := c.prog.Protocols[ch.Proto]
	if !ok {
		c.errorf(ch.Pos(), "channel %q: unknown protocol %q", qn, ch.Proto)
		return
	}
	cc := &Channel{Name: qn, Proto: proto, Module: m.Name, ID: len(c.prog.ChanByID)}
	c.prog.Channels[qn] = cc
	c.prog.ChanByID = append(c.prog.ChanByID, cc)
}

func (c *checker) declareFunc(m *ast.ModuleDecl, fd *ast.FuncDecl) {
	qn := m.Name + "." + fd.Name
	if _, dup := c.prog.Funcs[qn]; dup {
		c.errorf(fd.Pos(), "duplicate function %q", qn)
		return
	}
	f := &Func{Name: qn, Kind: fd.Kind, Decl: fd, Module: m.Name, Result: VoidType}
	if fd.Result != nil {
		f.Result = c.resolveType(fd.Result, false)
		if !IsScalar(f.Result) && f.Result != VoidType {
			c.errorf(fd.Pos(), "function %q: result must be scalar or void", qn)
			f.Result = UintType
		}
	}
	for _, p := range fd.Params {
		pt := c.resolveType(p.Type, true)
		sym := &Symbol{Kind: SymParam, Name: p.Name, Type: pt}
		c.prog.Info.ParamSyms[p] = sym
		f.Params = append(f.Params, sym)
	}
	switch fd.Kind {
	case ast.KindPPF:
		if len(f.Params) != 1 {
			c.errorf(fd.Pos(), "PPF %q must take exactly one packet-handle parameter", qn)
		} else if h, ok := f.Params[0].Type.(*Handle); ok {
			f.InProto = h.Proto
		} else {
			c.errorf(fd.Pos(), "PPF %q parameter must be a packet handle", qn)
		}
		if f.Result != VoidType {
			c.errorf(fd.Pos(), "PPF %q cannot return a value", qn)
		}
	case ast.KindControl, ast.KindInit:
		for _, p := range f.Params {
			if !IsScalar(p.Type) {
				c.errorf(fd.Pos(), "%s function %q: parameters must be scalar", fd.Kind, qn)
			}
		}
	}
	c.prog.Funcs[qn] = f
}

// resolveType maps a syntactic type to a semantic one. allowHandle permits
// protocol names (packet handles).
func (c *checker) resolveType(t *ast.TypeExpr, allowHandle bool) Type {
	switch t.Name {
	case "uint":
		return UintType
	case "int":
		return IntType
	case "void":
		return VoidType
	}
	if s, ok := c.prog.Structs[t.Name]; ok {
		return s
	}
	if p, ok := c.prog.Protocols[t.Name]; ok {
		if !allowHandle {
			c.errorf(t.Pos(), "packet handle type %q not allowed here", t.Name)
			return UintType
		}
		return &Handle{Proto: p}
	}
	c.errorf(t.Pos(), "unknown type %q", t.Name)
	return UintType
}

// ---------------------------------------------------------------------------
// Function bodies

func (c *checker) checkBodies() {
	for _, m := range c.prog.AST.Modules {
		c.module = m.Name
		for _, fd := range m.Funcs {
			f := c.prog.Funcs[m.Name+"."+fd.Name]
			if f == nil {
				continue
			}
			c.checkFuncBody(f)
		}
	}
}

func (c *checker) checkFuncBody(f *Func) {
	c.cur = f
	c.scopes = nil
	c.pushScope()
	for i, p := range f.Decl.Params {
		sym := c.prog.Info.ParamSyms[p]
		if prev := c.lookupLocal(p.Name); prev != nil {
			c.errorf(p.Pos(), "duplicate parameter %q", p.Name)
		}
		c.scopes[len(c.scopes)-1][p.Name] = sym
		_ = i
	}
	c.checkBlock(f.Decl.Body)
	c.popScope()
	c.cur = nil
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, map[string]*Symbol{}) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) lookupLocal(name string) *Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	return nil
}

// lookup resolves name: locals/params, then constants, then module-scoped
// globals/channels/functions (current module first, then unique global
// match).
func (c *checker) lookup(name string) *Symbol {
	if s := c.lookupLocal(name); s != nil {
		return s
	}
	if v, ok := c.prog.Consts[name]; ok {
		return &Symbol{Kind: SymConst, Name: name, Type: UintType, Const: v}
	}
	if g, ok := c.prog.Globals[c.module+"."+name]; ok {
		return &Symbol{Kind: SymGlobal, Name: g.Name, Type: g.Type, Global: g}
	}
	if ch, ok := c.prog.Channels[c.module+"."+name]; ok {
		return &Symbol{Kind: SymChannel, Name: ch.Name, Chan: ch}
	}
	if f, ok := c.prog.Funcs[c.module+"."+name]; ok {
		return &Symbol{Kind: SymFunc, Name: f.Name, Func: f}
	}
	// Unique cross-module match.
	var found *Symbol
	count := 0
	for qn, g := range c.prog.Globals {
		if qn[len(g.Module)+1:] == name {
			found = &Symbol{Kind: SymGlobal, Name: g.Name, Type: g.Type, Global: g}
			count++
		}
	}
	for qn, ch := range c.prog.Channels {
		if qn[len(ch.Module)+1:] == name {
			found = &Symbol{Kind: SymChannel, Name: ch.Name, Chan: ch}
			count++
		}
	}
	for qn, f := range c.prog.Funcs {
		if qn[len(f.Module)+1:] == name {
			found = &Symbol{Kind: SymFunc, Name: f.Name, Func: f}
			count++
		}
	}
	if count == 1 {
		return found
	}
	return nil
}

func (c *checker) checkBlock(b *ast.BlockStmt) {
	c.pushScope()
	for _, s := range b.Stmts {
		c.checkStmt(s)
	}
	c.popScope()
}

func (c *checker) checkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		c.checkBlock(s)
	case *ast.DeclStmt:
		c.checkDecl(s)
	case *ast.AssignStmt:
		c.checkAssign(s)
	case *ast.ExprStmt:
		t := c.checkExpr(s.X, nil)
		if call, ok := s.X.(*ast.CallExpr); !ok || call == nil {
			if t != VoidType {
				// Expression statements other than calls are pointless but
				// harmless; accept them (C heritage).
				_ = t
			}
		}
	case *ast.IfStmt:
		c.checkCond(s.Cond)
		c.checkBlock(s.Then)
		if s.Else != nil {
			c.checkStmt(s.Else)
		}
	case *ast.WhileStmt:
		c.checkCond(s.Cond)
		c.loop++
		c.checkBlock(s.Body)
		c.loop--
	case *ast.ForStmt:
		c.pushScope()
		if s.Init != nil {
			c.checkStmt(s.Init)
		}
		if s.Cond != nil {
			c.checkCond(s.Cond)
		}
		if s.Post != nil {
			c.checkStmt(s.Post)
		}
		c.loop++
		c.checkBlock(s.Body)
		c.loop--
		c.popScope()
	case *ast.ReturnStmt:
		want := c.cur.Result
		if s.Value == nil {
			if want != VoidType {
				c.errorf(s.Pos(), "missing return value (function returns %s)", want)
			}
			return
		}
		if want == VoidType {
			c.errorf(s.Pos(), "unexpected return value in void function")
			return
		}
		c.checkExpr(s.Value, want)
	case *ast.BreakStmt:
		if c.loop == 0 {
			c.errorf(s.Pos(), "break outside loop")
		}
	case *ast.ContinueStmt:
		if c.loop == 0 {
			c.errorf(s.Pos(), "continue outside loop")
		}
	case *ast.CriticalStmt:
		c.checkBlock(s.Body)
	}
}

func (c *checker) checkDecl(s *ast.DeclStmt) {
	t := c.resolveType(s.Type, true)
	if s.Type.ArrayN != nil {
		c.errorf(s.Pos(), "local %q: arrays are not allowed as locals", s.Name)
	}
	if _, isStruct := t.(*Struct); isStruct {
		c.errorf(s.Pos(), "local %q: struct locals are not supported; use scalars", s.Name)
		t = UintType
	}
	if c.lookupLocal(s.Name) != nil {
		c.errorf(s.Pos(), "redeclaration of %q", s.Name)
	}
	sym := &Symbol{Kind: SymLocal, Name: s.Name, Type: t}
	if s.Init != nil {
		c.checkExpr(s.Init, t)
	} else if _, isHandle := t.(*Handle); isHandle {
		c.errorf(s.Pos(), "packet handle %q must be initialized at declaration", s.Name)
	}
	c.scopes[len(c.scopes)-1][s.Name] = sym
	c.prog.Info.LocalSyms[s] = sym
}

func (c *checker) checkAssign(s *ast.AssignStmt) {
	lt := c.checkExpr(s.LHS, nil)
	if !c.assignable(s.LHS) {
		c.errorf(s.Pos(), "left side of assignment is not assignable")
	}
	if s.Op != token.ASSIGN {
		if !IsScalar(lt) {
			c.errorf(s.Pos(), "compound assignment requires a scalar left side, have %s", lt)
		}
		c.checkExpr(s.RHS, UintType)
		return
	}
	c.checkExpr(s.RHS, lt)
}

// assignable reports whether e denotes a storable location.
func (c *checker) assignable(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		sym := c.prog.Info.Uses[e]
		if sym == nil {
			return false
		}
		switch sym.Kind {
		case SymLocal, SymParam:
			return true
		case SymGlobal:
			return IsScalar(sym.Type)
		}
		return false
	case *ast.IndexExpr, *ast.FieldExpr, *ast.PacketFieldExpr, *ast.MetaFieldExpr:
		return true
	}
	return false
}

func (c *checker) checkCond(e ast.Expr) {
	t := c.checkExpr(e, nil)
	if !IsScalar(t) {
		c.errorf(e.Pos(), "condition must be scalar, have %s", t)
	}
}

// checkExpr type-checks e. want, when non-nil, provides assignment context
// used to infer the protocol of packet primitives; scalar mismatches
// between int and uint are permitted (C-style).
func (c *checker) checkExpr(e ast.Expr, want Type) Type {
	t := c.exprType(e, want)
	c.prog.Info.ExprTypes[e] = t
	if want != nil && !compatible(want, t) {
		c.errorf(e.Pos(), "cannot use %s value where %s is required", t, want)
	}
	return t
}

func compatible(want, have Type) bool {
	if want == have {
		return true
	}
	if IsScalar(want) && IsScalar(have) {
		return true
	}
	hw, okw := want.(*Handle)
	hh, okh := have.(*Handle)
	return okw && okh && hw.Proto == hh.Proto
}

func (c *checker) exprType(e ast.Expr, want Type) Type {
	switch e := e.(type) {
	case *ast.IntLit:
		return UintType
	case *ast.Ident:
		sym := c.lookup(e.Name)
		if sym == nil {
			c.errorf(e.Pos(), "undefined: %q", e.Name)
			return UintType
		}
		c.prog.Info.Uses[e] = sym
		switch sym.Kind {
		case SymChannel:
			c.errorf(e.Pos(), "channel %q can only be used as the first argument of channel_put", e.Name)
			return UintType
		case SymFunc:
			c.errorf(e.Pos(), "function %q must be called", e.Name)
			return UintType
		case SymGlobal:
			return sym.Type
		}
		return sym.Type
	case *ast.UnaryExpr:
		xt := c.checkExpr(e.X, nil)
		if !IsScalar(xt) {
			c.errorf(e.Pos(), "operator %s requires a scalar operand, have %s", e.Op, xt)
			return UintType
		}
		if e.Op == token.LNOT {
			return UintType
		}
		return xt
	case *ast.BinaryExpr:
		xt := c.checkExpr(e.X, nil)
		yt := c.checkExpr(e.Y, nil)
		xh, xIsH := xt.(*Handle)
		yh, yIsH := yt.(*Handle)
		if xIsH || yIsH {
			// Handles support only ==/!= against another handle of the
			// same protocol (identity comparison).
			if (e.Op == token.EQL || e.Op == token.NEQ) && xIsH && yIsH && xh.Proto == yh.Proto {
				return UintType
			}
			c.errorf(e.Pos(), "invalid operation %s on packet handle", e.Op)
			return UintType
		}
		if !IsScalar(xt) || !IsScalar(yt) {
			c.errorf(e.Pos(), "operator %s requires scalar operands, have %s and %s", e.Op, xt, yt)
			return UintType
		}
		switch e.Op {
		case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ,
			token.LAND, token.LOR:
			return UintType
		}
		if xt == IntType && yt == IntType {
			return IntType
		}
		return UintType
	case *ast.CondExpr:
		c.checkCond(e.Cond)
		tt := c.checkExpr(e.Then, want)
		c.checkExpr(e.Else, tt)
		return tt
	case *ast.IndexExpr:
		xt := c.checkExpr(e.X, nil)
		c.checkExpr(e.Index, UintType)
		arr, ok := xt.(*Array)
		if !ok {
			c.errorf(e.Pos(), "indexing requires an array, have %s", xt)
			return UintType
		}
		return arr.Elem
	case *ast.FieldExpr:
		xt := c.checkExpr(e.X, nil)
		st, ok := xt.(*Struct)
		if !ok {
			c.errorf(e.Pos(), "field selection requires a struct, have %s", xt)
			return UintType
		}
		f := st.Field(e.Name)
		if f == nil {
			c.errorf(e.Pos(), "struct %q has no field %q", st.Name, e.Name)
			return UintType
		}
		return f.Type
	case *ast.PacketFieldExpr:
		ht := c.checkExpr(e.Handle, nil)
		h, ok := ht.(*Handle)
		if !ok {
			c.errorf(e.Pos(), "-> requires a packet handle, have %s", ht)
			return UintType
		}
		f := h.Proto.Field(e.Name)
		if f == nil {
			c.errorf(e.Pos(), "protocol %q has no field %q", h.Proto.Name, e.Name)
			return UintType
		}
		if f.Bits > MaxFieldBits {
			c.errorf(e.Pos(), "field %q is %d bits wide; direct access is limited to %d bits (split the field)",
				e.Name, f.Bits, MaxFieldBits)
		}
		return UintType
	case *ast.MetaFieldExpr:
		ht := c.checkExpr(e.Handle, nil)
		if _, ok := ht.(*Handle); !ok {
			c.errorf(e.Pos(), "->meta requires a packet handle, have %s", ht)
			return UintType
		}
		f := c.prog.Metadata.Field(e.Name)
		if f == nil {
			c.errorf(e.Pos(), "no metadata field %q declared", e.Name)
			return UintType
		}
		return UintType
	case *ast.CallExpr:
		return c.checkCall(e, want)
	}
	c.errorf(e.Pos(), "internal: unknown expression")
	return UintType
}

// ---------------------------------------------------------------------------
// Calls and builtins

// Builtin names recognized by the checker; everything else resolves as a
// user function.
var builtinNames = map[string]bool{
	"channel_put": true, "packet_decap": true, "packet_encap": true,
	"packet_copy": true, "packet_create": true, "packet_drop": true,
	"packet_add_tail": true, "packet_remove_tail": true, "packet_length": true,
}

// IsBuiltin reports whether name is a Baker builtin.
func IsBuiltin(name string) bool { return builtinNames[name] }

func (c *checker) checkCall(e *ast.CallExpr, want Type) Type {
	if builtinNames[e.Fun] {
		return c.checkBuiltin(e, want)
	}
	sym := c.lookup(e.Fun)
	if sym == nil || sym.Kind != SymFunc {
		c.errorf(e.Pos(), "undefined function %q", e.Fun)
		return UintType
	}
	f := sym.Func
	if f.Kind == ast.KindPPF {
		c.errorf(e.Pos(), "PPF %q cannot be called directly; wire a channel to it", f.Name)
	}
	if len(e.Args) != len(f.Params) {
		c.errorf(e.Pos(), "call to %q has %d arguments, want %d", f.Name, len(e.Args), len(f.Params))
	}
	for i, a := range e.Args {
		if i < len(f.Params) {
			c.checkExpr(a, f.Params[i].Type)
		} else {
			c.checkExpr(a, nil)
		}
	}
	c.prog.Info.CallResolved[e] = f
	if c.cur != nil {
		c.cur.Calls = append(c.cur.Calls, f.Name)
	}
	return f.Result
}

func (c *checker) argCount(e *ast.CallExpr, n int) bool {
	if len(e.Args) != n {
		c.errorf(e.Pos(), "%s requires %d argument(s), have %d", e.Fun, n, len(e.Args))
		return false
	}
	return true
}

func (c *checker) handleArg(e ast.Expr) *Handle {
	t := c.checkExpr(e, nil)
	if h, ok := t.(*Handle); ok {
		return h
	}
	c.errorf(e.Pos(), "argument must be a packet handle, have %s", t)
	return nil
}

func (c *checker) checkBuiltin(e *ast.CallExpr, want Type) Type {
	switch e.Fun {
	case "channel_put":
		if !c.argCount(e, 2) {
			return VoidType
		}
		id, ok := e.Args[0].(*ast.Ident)
		if !ok {
			c.errorf(e.Args[0].Pos(), "first argument of channel_put must be a channel name")
			return VoidType
		}
		sym := c.lookup(id.Name)
		if sym == nil || sym.Kind != SymChannel {
			c.errorf(id.Pos(), "%q is not a channel", id.Name)
			return VoidType
		}
		c.prog.Info.Uses[id] = sym
		h := c.handleArg(e.Args[1])
		if h != nil && h.Proto != sym.Chan.Proto {
			c.errorf(e.Pos(), "channel %q carries %q packets but the handle is %q",
				sym.Chan.Name, sym.Chan.Proto.Name, h.Proto.Name)
		}
		c.prog.Info.ChanArg[e] = sym.Chan
		return VoidType
	case "packet_decap", "packet_encap", "packet_create":
		nargs := 1
		if e.Fun == "packet_create" {
			nargs = 0
		}
		if !c.argCount(e, nargs) {
			return UintType
		}
		if nargs == 1 {
			c.handleArg(e.Args[0])
		}
		h, ok := want.(*Handle)
		if !ok {
			c.errorf(e.Pos(), "%s result must be assigned to a packet-handle variable so its protocol can be inferred", e.Fun)
			return UintType
		}
		c.prog.Info.HandleProto[e] = h.Proto
		return &Handle{Proto: h.Proto}
	case "packet_copy":
		if !c.argCount(e, 1) {
			return UintType
		}
		h := c.handleArg(e.Args[0])
		if h == nil {
			return UintType
		}
		c.prog.Info.HandleProto[e] = h.Proto
		return &Handle{Proto: h.Proto}
	case "packet_drop":
		if c.argCount(e, 1) {
			c.handleArg(e.Args[0])
		}
		return VoidType
	case "packet_add_tail", "packet_remove_tail":
		if c.argCount(e, 2) {
			c.handleArg(e.Args[0])
			c.checkExpr(e.Args[1], UintType)
		}
		return VoidType
	case "packet_length":
		if c.argCount(e, 1) {
			c.handleArg(e.Args[0])
		}
		return UintType
	}
	c.errorf(e.Pos(), "internal: unhandled builtin %q", e.Fun)
	return UintType
}

// ---------------------------------------------------------------------------
// Wiring and the dataflow graph

func (c *checker) checkWiring() {
	rxCount := 0
	for _, m := range c.prog.AST.Modules {
		for _, w := range m.Wiring {
			from := c.resolveWireName(m.Name, w.From)
			to := c.resolveWireName(m.Name, w.To)
			if w.From == "rx" {
				rxCount++
				f := c.prog.Funcs[to]
				if f == nil || f.Kind != ast.KindPPF {
					c.errorf(w.Pos(), "rx must be wired to a PPF, %q is not one", w.To)
					continue
				}
				if c.prog.Entry != nil && c.prog.Entry != f {
					c.errorf(w.Pos(), "rx is already wired to %q", c.prog.Entry.Name)
					continue
				}
				c.prog.Entry = f
				continue
			}
			ch := c.prog.Channels[from]
			if ch == nil {
				c.errorf(w.Pos(), "unknown channel %q in wiring", w.From)
				continue
			}
			if ch.Consumer != "" {
				c.errorf(w.Pos(), "channel %q already wired to %q", ch.Name, ch.Consumer)
				continue
			}
			if w.To == "tx" {
				ch.Consumer = "tx"
				continue
			}
			f := c.prog.Funcs[to]
			if f == nil || f.Kind != ast.KindPPF {
				c.errorf(w.Pos(), "channel %q must be wired to a PPF or tx, %q is not one", ch.Name, w.To)
				continue
			}
			if f.InProto != nil && f.InProto != ch.Proto {
				c.errorf(w.Pos(), "channel %q carries %q but PPF %q consumes %q",
					ch.Name, ch.Proto.Name, f.Name, f.InProto.Name)
			}
			ch.Consumer = f.Name
		}
	}
	if rxCount == 0 && len(c.prog.Funcs) > 0 && c.hasPPF() {
		c.errorf(token.Pos{}, "no rx wiring: one PPF must be wired from rx")
	}
	var unwired []string
	for name, ch := range c.prog.Channels {
		if ch.Consumer == "" {
			unwired = append(unwired, name)
		}
	}
	sort.Strings(unwired)
	for _, name := range unwired {
		c.errorf(token.Pos{}, "channel %q has no consumer wiring", name)
	}
}

func (c *checker) hasPPF() bool {
	for _, f := range c.prog.Funcs {
		if f.Kind == ast.KindPPF {
			return true
		}
	}
	return false
}

// resolveWireName qualifies name with the module unless it is already
// qualified or a builtin endpoint.
func (c *checker) resolveWireName(module, name string) string {
	if name == "rx" || name == "tx" {
		return name
	}
	for i := 0; i < len(name); i++ {
		if name[i] == '.' {
			return name
		}
	}
	return module + "." + name
}

// ---------------------------------------------------------------------------
// Recursion check (§2.3: recursion within a PPF is not supported)

func (c *checker) checkNoRecursion() {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(name string, path []string)
	visit = func(name string, path []string) {
		switch color[name] {
		case gray:
			c.errorf(c.prog.Funcs[name].Decl.Pos(),
				"recursion detected involving %q (Baker forbids recursion, §2.3)", name)
			return
		case black:
			return
		}
		color[name] = gray
		f := c.prog.Funcs[name]
		if f != nil {
			seen := map[string]bool{}
			for _, callee := range f.Calls {
				if !seen[callee] {
					seen[callee] = true
					visit(callee, append(path, name))
				}
			}
		}
		color[name] = black
	}
	var names []string
	for name := range c.prog.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		visit(name, nil)
	}
}
