package opt_test

import (
	"testing"

	"shangrila/internal/baker/types"
	"shangrila/internal/ir"
	"shangrila/internal/opt"
	"shangrila/internal/packet"
	"shangrila/internal/testutil"
	"shangrila/internal/trace"
	"shangrila/internal/workload"
)

const appSrc = `
protocol ether { dst_hi:16; dst_lo:32; src_hi:16; src_lo:32; type:16; demux { 14 }; }
protocol ipv4 { ver:4; hlen:4; tos:8; length:16; id:16; flags:3; frag:13;
                ttl:8; proto:8; cksum:16; src:32; dst:32; demux { hlen << 2 }; }
metadata { rx_port:16; next_hop:16; }
const ETH_IP = 0x0800;

module app {
    struct Rt { dst:uint; nh:uint; }
    Rt table[64];
    uint drops;
    channel ip_cc : ipv4;
    channel out_cc : ether;

    func lookup(uint dst) uint {
        for (uint i = 0; i < 64; i++) {
            if (table[i].dst == dst) { return table[i].nh; }
        }
        return 0;
    }

    func classify(uint t) uint {
        uint isip = (t == ETH_IP);
        uint dead = 3 * 0;        // folds away
        return isip + dead;
    }

    ppf clsfr(ether ph) {
        if (classify(ph->type) != 0) {
            ipv4 iph = packet_decap(ph);
            channel_put(ip_cc, iph);
        } else {
            drops += 1;
            packet_drop(ph);
        }
    }

    ppf fwd(ipv4 ph) {
        uint nh = lookup(ph->dst);
        if (nh == 0) { packet_drop(ph); }
        else {
            ph->meta.next_hop = nh;
            ph->ttl = ph->ttl - 1;
            ether eph = packet_encap(ph);
            channel_put(out_cc, eph);
        }
    }

    control func add_route(uint idx, uint dst, uint nh) {
        table[idx].dst = dst;
        table[idx].nh = nh;
    }

    wiring { rx -> clsfr; ip_cc -> fwd; out_cc -> tx; }
}
`

func genTrace(tp *types.Program) []*packet.Packet {
	r := workload.NewSource(99)
	var out []*packet.Packet
	for i := 0; i < 40; i++ {
		ethType := uint32(0x0800)
		if i%7 == 0 {
			ethType = 0x0806
		}
		dst := uint32(0x0a000000) + uint32(r.Intn(8))
		p, err := trace.Build([]trace.Layer{
			{Proto: tp.Protocols["ether"], Fields: map[string]uint32{"type": ethType}},
			{Proto: tp.Protocols["ipv4"], Fields: map[string]uint32{
				"ver": 4, "hlen": 5, "ttl": 32 + uint32(i), "dst": dst}, Size: 20},
		}, 64, tp.Metadata.Bytes)
		if err != nil {
			panic(err)
		}
		out = append(out, p)
	}
	return out
}

var routeControls = [][]any{
	{"app.add_route", 0, 0x0a000001, 7},
	{"app.add_route", 1, 0x0a000003, 9},
	{"app.add_route", 2, 0x0a000005, 11},
}

func TestScalarPreservesSemantics(t *testing.T) {
	p := testutil.DiffTest(t, appSrc, genTrace, routeControls, func(p *ir.Program) {
		opt.Optimize(p, opt.Options{Scalar: true})
	})
	for _, name := range p.Order {
		if err := opt.Verify(p.Funcs[name]); err != nil {
			t.Errorf("verify %s: %v", name, err)
		}
	}
}

func TestInlinePreservesSemantics(t *testing.T) {
	p := testutil.DiffTest(t, appSrc, genTrace, routeControls, func(p *ir.Program) {
		opt.Optimize(p, opt.Options{Scalar: true, Inline: true})
	})
	// After inlining, PPFs must contain no helper calls.
	for _, f := range p.PPFs() {
		if n := opt.CallCount(f); n != 0 {
			t.Errorf("%s still has %d calls after inlining", f.Name, n)
		}
	}
}

func TestScalarShrinksCode(t *testing.T) {
	base := testutil.BuildIR(t, appSrc)
	optd := testutil.BuildIR(t, appSrc)
	opt.Optimize(optd, opt.Options{Scalar: true})
	for _, name := range base.Order {
		b, o := opt.InstrCount(base.Funcs[name]), opt.InstrCount(optd.Funcs[name])
		if o > b {
			t.Errorf("%s grew: %d -> %d instructions", name, b, o)
		}
	}
	// classify's "3 * 0" and the addition of 0 must fold to nothing extra:
	// expect a strict reduction there.
	b, o := opt.InstrCount(base.Funcs["app.classify"]), opt.InstrCount(optd.Funcs["app.classify"])
	if o >= b {
		t.Errorf("classify not reduced: %d -> %d", b, o)
	}
}

func TestConstantBranchFolding(t *testing.T) {
	src := `
protocol p { x:32; demux { 4 }; }
module m {
	uint sink;
	ppf f(p ph) {
		if (1 == 2) { sink = 111; }
		else { sink = 222; }
		packet_drop(ph);
	}
	wiring { rx -> f; }
}`
	prog := testutil.BuildIR(t, src)
	f := prog.Funcs["m.f"]
	opt.OptimizeFunc(f)
	// The dead arm (store of 111) must be gone.
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpConst && in.Imm == 111 {
				t.Fatalf("dead branch survived:\n%s", f)
			}
			if in.Op == ir.OpCondBr {
				t.Fatalf("constant branch not folded:\n%s", f)
			}
		}
	}
}

func TestRedundantLoadElimination(t *testing.T) {
	src := `
protocol p { x:32; demux { 4 }; }
module m {
	uint g;
	uint sink;
	ppf f(p ph) {
		uint a = g;
		uint b = g;     // redundant with a
		sink = a + b;
		packet_drop(ph);
	}
	wiring { rx -> f; }
}`
	prog := testutil.BuildIR(t, src)
	f := prog.Funcs["m.f"]
	opt.OptimizeFunc(f)
	loads := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpLoad {
				loads++
			}
		}
	}
	if loads != 1 {
		t.Fatalf("loads = %d, want 1:\n%s", loads, f)
	}
}

func TestStoreKillsLoadAvailability(t *testing.T) {
	src := `
protocol p { x:32; demux { 4 }; }
module m {
	uint g;
	uint sink;
	ppf f(p ph) {
		uint a = g;
		g = a + 1;
		uint b = g;     // NOT redundant: store intervenes
		sink = b;
		packet_drop(ph);
	}
	wiring { rx -> f; }
}`
	prog := testutil.BuildIR(t, src)
	f := prog.Funcs["m.f"]
	opt.OptimizeFunc(f)
	loads := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpLoad {
				loads++
			}
		}
	}
	if loads != 2 {
		t.Fatalf("loads = %d, want 2 (store must kill availability):\n%s", loads, f)
	}
}

func TestDCEKeepsSideEffects(t *testing.T) {
	src := `
protocol p { x:32; demux { 4 }; }
module m {
	uint g;
	ppf f(p ph) {
		uint unused = ph->x;
		g = 5;
		packet_drop(ph);
	}
	wiring { rx -> f; }
}`
	prog := testutil.BuildIR(t, src)
	f := prog.Funcs["m.f"]
	opt.OptimizeFunc(f)
	var stores, pktloads int
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpStore:
				stores++
			case ir.OpPktLoad:
				pktloads++
			}
		}
	}
	if stores != 1 {
		t.Errorf("store removed by DCE")
	}
	if pktloads != 0 {
		t.Errorf("dead packet load survived (%d)", pktloads)
	}
}
