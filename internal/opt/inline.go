package opt

import (
	"shangrila/internal/analysis"
	"shangrila/internal/ir"
)

// InlineAll aggressively inlines every helper call into its callers (-O2).
// The paper notes aggressive inlining both exposes optimization
// opportunities and merges stack frames, which is essential for keeping the
// runtime stack in Local Memory (§5.4). Baker forbids recursion, so
// repeated inlining terminates.
func InlineAll(p *ir.Program) {
	// Inline bottom-up: process helpers before their callers so each call
	// site is expanded at most once per callee body.
	order := helperTopoOrder(p)
	for _, name := range order {
		inlineCallsIn(p, p.Funcs[name])
	}
	for _, name := range p.Order {
		f := p.Funcs[name]
		if f.Kind != ir.FuncHelper {
			inlineCallsIn(p, f)
		}
	}
}

// helperTopoOrder returns helpers in callee-before-caller order.
func helperTopoOrder(p *ir.Program) []string {
	visited := map[string]bool{}
	var order []string
	var visit func(name string)
	visit = func(name string) {
		if visited[name] {
			return
		}
		visited[name] = true
		f := p.Funcs[name]
		if f == nil {
			return
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall {
					visit(in.Callee)
				}
			}
		}
		if f.Kind == ir.FuncHelper {
			order = append(order, name)
		}
	}
	for _, name := range p.Order {
		visit(name)
	}
	return order
}

// inlineCallsIn replaces every call to a helper in f with the callee body.
func inlineCallsIn(p *ir.Program, f *ir.Func) {
	for again := true; again; {
		again = false
		for _, b := range f.Blocks {
			for idx, in := range b.Instrs {
				if in.Op != ir.OpCall {
					continue
				}
				callee := p.Funcs[in.Callee]
				if callee == nil || callee.Kind != ir.FuncHelper {
					continue
				}
				inlineCall(f, b, idx, in, callee)
				again = true
				break
			}
			if again {
				break
			}
		}
	}
	f.ComputeCFG()
}

// inlineCall splices callee's body in place of the call at b.Instrs[idx].
func inlineCall(f *ir.Func, b *ir.Block, idx int, call *ir.Instr, callee *ir.Func) {
	// Map callee registers to fresh caller registers.
	regMap := make([]ir.Reg, callee.NumRegs)
	for r := 0; r < callee.NumRegs; r++ {
		regMap[r] = f.NewReg(callee.RegClasses[r])
	}
	// Clone callee blocks.
	blockMap := map[*ir.Block]*ir.Block{}
	for _, cb := range callee.Blocks {
		blockMap[cb] = f.NewBlock()
	}
	// Continuation receives the instructions after the call.
	cont := f.NewBlock()
	cont.Instrs = append(cont.Instrs, b.Instrs[idx+1:]...)

	mapReg := func(r ir.Reg) ir.Reg {
		if r == ir.NoReg {
			return ir.NoReg
		}
		return regMap[r]
	}
	for _, cb := range callee.Blocks {
		nb := blockMap[cb]
		for _, cin := range cb.Instrs {
			if cin.Op == ir.OpRet {
				// Return becomes: mov dst, val; br cont.
				if len(cin.Args) > 0 && len(call.Dst) > 0 {
					nb.Instrs = append(nb.Instrs, &ir.Instr{
						Op: ir.OpMov, Pos: cin.Pos,
						Dst:  []ir.Reg{call.Dst[0]},
						Args: []ir.Reg{mapReg(cin.Args[0])},
					})
				}
				nb.Instrs = append(nb.Instrs, &ir.Instr{
					Op: ir.OpBr, Pos: cin.Pos, Blocks: []*ir.Block{cont},
				})
				continue
			}
			cp := *cin
			cp.Dst = append([]ir.Reg(nil), cin.Dst...)
			cp.Args = append([]ir.Reg(nil), cin.Args...)
			cp.Blocks = append([]*ir.Block(nil), cin.Blocks...)
			for i, d := range cp.Dst {
				cp.Dst[i] = mapReg(d)
			}
			for i, a := range cp.Args {
				cp.Args[i] = mapReg(a)
			}
			for i, t := range cp.Blocks {
				cp.Blocks[i] = blockMap[t]
			}
			nb.Instrs = append(nb.Instrs, &cp)
		}
	}
	// Truncate caller block: args setup + jump into the inlined entry.
	b.Instrs = b.Instrs[:idx]
	for i, p := range callee.Params {
		b.Instrs = append(b.Instrs, &ir.Instr{
			Op: ir.OpMov, Pos: call.Pos,
			Dst:  []ir.Reg{regMap[p]},
			Args: []ir.Reg{call.Args[i]},
		})
	}
	b.Instrs = append(b.Instrs, &ir.Instr{
		Op: ir.OpBr, Pos: call.Pos, Blocks: []*ir.Block{blockMap[callee.Entry]},
	})
}

// CallCount returns the number of OpCall instructions in f (test helper
// and code-size input for aggregation).
func CallCount(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall {
				n++
			}
		}
	}
	return n
}

// InstrCount returns the static instruction count of f.
func InstrCount(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// Verify checks basic IR invariants after optimization: every block ends in
// a terminator, operands are in range, and no instruction uses an
// obviously-undefined register (params aside). It returns the first
// violation found, or nil. Used as a pass oracle in tests.
func Verify(f *ir.Func) error {
	return verifyFunc(f)
}

func verifyFunc(f *ir.Func) error {
	for _, b := range f.Blocks {
		if b.Terminator() == nil {
			return errUnterminated(f, b)
		}
		for i, in := range b.Instrs {
			if in.Op.IsTerminator() && i != len(b.Instrs)-1 {
				return errMidTerminator(f, b)
			}
			for _, r := range in.Dst {
				if int(r) >= f.NumRegs || r < 0 {
					return errBadReg(f, b, r)
				}
			}
			for _, r := range in.Args {
				if r != ir.NoReg && (int(r) >= f.NumRegs || r < 0) {
					return errBadReg(f, b, r)
				}
			}
		}
	}
	_ = analysis.Uses
	return nil
}

type irError struct{ msg string }

func (e *irError) Error() string { return e.msg }

func errUnterminated(f *ir.Func, b *ir.Block) error {
	return &irError{msg: f.Name + ": block lacks terminator"}
}
func errMidTerminator(f *ir.Func, b *ir.Block) error {
	return &irError{msg: f.Name + ": terminator in middle of block"}
}
func errBadReg(f *ir.Func, b *ir.Block, r ir.Reg) error {
	return &irError{msg: f.Name + ": register out of range"}
}
