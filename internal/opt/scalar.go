// Package opt implements the scalar optimizer applied to ME-bound code in
// the paper's Code Generator stage ("SSA-based optimizations like dead code
// elimination, copy propagation and redundancy elimination", §4.1), plus
// function inlining (-O2). The specialized packet optimizations live in the
// pac, soar, phr and swc subpackages.
package opt

import (
	"shangrila/internal/analysis"
	"shangrila/internal/ir"
)

// Options selects which optimization groups run; the zero value is the
// paper's BASE configuration.
type Options struct {
	Scalar bool // -O1: folding, propagation, CSE, DCE, branch folding
	Inline bool // -O2: aggressive inlining of helpers into PPFs
}

// Optimize runs the scalar pipeline on every function of p according to
// opts. Inlining runs first so scalar passes clean up the residue.
func Optimize(p *ir.Program, opts Options) {
	if opts.Inline {
		InlineAll(p)
	}
	if !opts.Scalar {
		return
	}
	for _, name := range p.Order {
		OptimizeFunc(p.Funcs[name])
	}
}

// OptimizeFunc iterates the scalar passes on one function to a fixpoint
// (bounded).
func OptimizeFunc(f *ir.Func) {
	for round := 0; round < 8; round++ {
		changed := false
		changed = propagate(f) || changed
		changed = foldBranches(f) || changed
		changed = localCSE(f) || changed
		changed = deadCode(f) || changed
		changed = mergeBlocks(f) || changed
		if !changed {
			return
		}
	}
}

// propagate performs constant folding and copy/constant propagation.
// Within a block it runs a forward scan; across blocks it propagates only
// via single-def registers whose definition dominates the use.
func propagate(f *ir.Func) bool {
	changed := false
	defCounts := analysis.DefCounts(f)

	// Global single-def facts.
	constOf := map[ir.Reg]uint64{}
	copyOf := map[ir.Reg]ir.Reg{}
	defBlock := map[ir.Reg]*ir.Block{}
	defIndex := map[ir.Reg]int{}
	for _, b := range f.Blocks {
		for idx, in := range b.Instrs {
			for _, d := range in.Dst {
				if defCounts[d] == 1 {
					defBlock[d] = b
					defIndex[d] = idx
				}
			}
			if len(in.Dst) == 1 && defCounts[in.Dst[0]] == 1 {
				switch in.Op {
				case ir.OpConst:
					constOf[in.Dst[0]] = in.Imm
				case ir.OpMov:
					copyOf[in.Dst[0]] = in.Args[0]
				}
			}
		}
	}
	dom := analysis.ComputeDominators(f)

	// resolveCopy follows single-def copy chains r := s while the source
	// is itself single-def (so the value cannot change between def and
	// use).
	resolveCopy := func(r ir.Reg) ir.Reg {
		for i := 0; i < 8; i++ {
			s, ok := copyOf[r]
			if !ok || defCounts[s] != 1 {
				return r
			}
			r = s
		}
		return r
	}

	for _, b := range f.Blocks {
		for idx, in := range b.Instrs {
			for ai, a := range in.Args {
				if a == ir.NoReg || defCounts[a] != 1 {
					continue
				}
				db := defBlock[a]
				if db == nil {
					continue
				}
				if db == b && defIndex[a] >= idx {
					continue
				}
				if db != b && !dom.Dominates(db, b) {
					continue
				}
				if s := resolveCopy(a); s != a {
					// The source must also dominate this use.
					sb := defBlock[s]
					okDom := sb != nil && (sb == b && defIndex[s] < idx || sb != b && dom.Dominates(sb, b))
					if _, isParam := paramSet(f)[s]; isParam {
						okDom = true
					}
					if okDom {
						in.Args[ai] = s
						changed = true
					}
				}
			}
			// Constant folding when all inputs are known single-def consts
			// dominating this instruction.
			if folded := tryFold(f, in, constOf, defCounts); folded {
				changed = true
			}
			_ = idx
		}
	}
	return changed
}

func paramSet(f *ir.Func) map[ir.Reg]struct{} {
	m := make(map[ir.Reg]struct{}, len(f.Params))
	for _, p := range f.Params {
		m[p] = struct{}{}
	}
	return m
}

// tryFold rewrites pure ALU ops with constant operands into OpConst, and
// applies simple algebraic identities.
func tryFold(f *ir.Func, in *ir.Instr, constOf map[ir.Reg]uint64, defCounts []int) bool {
	isConst := func(r ir.Reg) (uint32, bool) {
		if r == ir.NoReg || defCounts[r] != 1 {
			return 0, false
		}
		v, ok := constOf[r]
		return uint32(v), ok
	}
	switch in.Op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor,
		ir.OpShl, ir.OpShrU, ir.OpShrS, ir.OpEq, ir.OpNe,
		ir.OpLtU, ir.OpLeU, ir.OpLtS, ir.OpLeS:
		a, okA := isConst(in.Args[0])
		bv, okB := isConst(in.Args[1])
		if okA && okB {
			in.Op, in.Imm, in.Args = ir.OpConst, uint64(foldALU(in.Op, a, bv)), nil
			return true
		}
		// Identities: x+0, x-0, x|0, x^0, x<<0, x>>0, x*1, x&~0.
		if okB {
			switch {
			case bv == 0 && (in.Op == ir.OpAdd || in.Op == ir.OpSub || in.Op == ir.OpOr ||
				in.Op == ir.OpXor || in.Op == ir.OpShl || in.Op == ir.OpShrU || in.Op == ir.OpShrS):
				in.Op, in.Args = ir.OpMov, in.Args[:1]
				return true
			case bv == 1 && in.Op == ir.OpMul:
				in.Op, in.Args = ir.OpMov, in.Args[:1]
				return true
			case bv == 0 && in.Op == ir.OpMul:
				in.Op, in.Imm, in.Args = ir.OpConst, 0, nil
				return true
			}
		}
	case ir.OpNot:
		if a, ok := isConst(in.Args[0]); ok {
			in.Op, in.Imm, in.Args = ir.OpConst, uint64(^a), nil
			return true
		}
	case ir.OpNeg:
		if a, ok := isConst(in.Args[0]); ok {
			in.Op, in.Imm, in.Args = ir.OpConst, uint64(-a), nil
			return true
		}
	case ir.OpMov:
		if a, ok := isConst(in.Args[0]); ok {
			in.Op, in.Imm, in.Args = ir.OpConst, uint64(a), nil
			return true
		}
	}
	return false
}

func foldALU(op ir.Op, a, b uint32) uint32 {
	switch op {
	case ir.OpAdd:
		return a + b
	case ir.OpSub:
		return a - b
	case ir.OpMul:
		return a * b
	case ir.OpAnd:
		return a & b
	case ir.OpOr:
		return a | b
	case ir.OpXor:
		return a ^ b
	case ir.OpShl:
		return a << (b & 31)
	case ir.OpShrU:
		return a >> (b & 31)
	case ir.OpShrS:
		return uint32(int32(a) >> (b & 31))
	case ir.OpEq:
		return b2i(a == b)
	case ir.OpNe:
		return b2i(a != b)
	case ir.OpLtU:
		return b2i(a < b)
	case ir.OpLeU:
		return b2i(a <= b)
	case ir.OpLtS:
		return b2i(int32(a) < int32(b))
	case ir.OpLeS:
		return b2i(int32(a) <= int32(b))
	}
	return 0
}

func b2i(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// foldBranches converts conditional branches on single-def constants into
// unconditional ones.
func foldBranches(f *ir.Func) bool {
	defCounts := analysis.DefCounts(f)
	constOf := map[ir.Reg]uint64{}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpConst && len(in.Dst) == 1 && defCounts[in.Dst[0]] == 1 {
				constOf[in.Dst[0]] = in.Imm
			}
		}
	}
	changed := false
	for _, b := range f.Blocks {
		t := b.Terminator()
		if t == nil || t.Op != ir.OpCondBr {
			continue
		}
		v, ok := constOf[t.Args[0]]
		if !ok || defCounts[t.Args[0]] != 1 {
			continue
		}
		target := t.Blocks[1]
		if v != 0 {
			target = t.Blocks[0]
		}
		t.Op, t.Args, t.Blocks = ir.OpBr, nil, []*ir.Block{target}
		changed = true
	}
	if changed {
		f.ComputeCFG()
	}
	return changed
}

// localCSE removes duplicate pure computations and redundant global loads
// within each block (the paper's redundancy elimination, block-local).
func localCSE(f *ir.Func) bool {
	changed := false
	type key struct {
		op   ir.Op
		a, b ir.Reg
		imm  uint64
		gl   string
		off  int32
	}
	for _, blk := range f.Blocks {
		avail := map[key]ir.Reg{}
		for _, in := range blk.Instrs {
			// 1. Rewrite this instruction using available expressions.
			var newFact *key
			switch in.Op {
			case ir.OpConst:
				k := key{op: in.Op, imm: in.Imm}
				if prev, ok := avail[k]; ok {
					in.Op = ir.OpMov
					in.Args = []ir.Reg{prev}
					in.Imm = 0
					changed = true
				} else {
					newFact = &k
				}
			case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor,
				ir.OpShl, ir.OpShrU, ir.OpShrS, ir.OpEq, ir.OpNe,
				ir.OpLtU, ir.OpLeU, ir.OpLtS, ir.OpLeS, ir.OpNot, ir.OpNeg:
				k := key{op: in.Op, a: in.Args[0]}
				if len(in.Args) > 1 {
					k.b = in.Args[1]
				}
				if prev, ok := avail[k]; ok {
					in.Op = ir.OpMov
					in.Args = []ir.Reg{prev}
					changed = true
				} else {
					newFact = &k
				}
			case ir.OpLoad:
				if len(in.Dst) == 1 {
					idx := ir.NoReg
					if len(in.Args) > 0 {
						idx = in.Args[0]
					}
					k := key{op: in.Op, a: idx, gl: in.Global.Name, off: in.Off}
					if prev, ok := avail[k]; ok {
						in.Op = ir.OpMov
						in.Global = nil
						in.Args = []ir.Reg{prev}
						changed = true
					} else {
						newFact = &k
					}
				}
			case ir.OpStore:
				// Conservative: a store to global G kills available loads
				// of G (any offset).
				for k := range avail {
					if k.op == ir.OpLoad && k.gl == in.Global.Name {
						delete(avail, k)
					}
				}
			case ir.OpCall, ir.OpLockAcquire, ir.OpLockRelease,
				ir.OpCacheFlush:
				// Calls and lock boundaries may write any global.
				for k := range avail {
					if k.op == ir.OpLoad {
						delete(avail, k)
					}
				}
			}
			// 2. Redefinition of a register invalidates facts mentioning it.
			for _, d := range in.Dst {
				for k := range avail {
					if k.a == d || k.b == d || avail[k] == d {
						delete(avail, k)
					}
				}
			}
			// 3. Record the value this instruction makes available.
			if newFact != nil && in.Op != ir.OpMov {
				avail[*newFact] = in.Dst[0]
			}
		}
	}
	return changed
}

// deadCode removes pure instructions whose results are never used.
func deadCode(f *ir.Func) bool {
	lv := analysis.ComputeLiveness(f)
	changed := false
	for _, b := range f.Blocks {
		live := map[ir.Reg]bool{}
		for r := range lv.Out[b] {
			live[r] = true
		}
		var kept []*ir.Instr
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := b.Instrs[i]
			needed := analysis.HasSideEffects(in)
			if !needed {
				for _, d := range in.Dst {
					if live[d] {
						needed = true
						break
					}
				}
			}
			if !needed {
				changed = true
				continue
			}
			for _, d := range in.Dst {
				delete(live, d)
			}
			for _, u := range analysis.Uses(in) {
				live[u] = true
			}
			kept = append(kept, in)
		}
		for i, j := 0, len(kept)-1; i < j; i, j = i+1, j-1 {
			kept[i], kept[j] = kept[j], kept[i]
		}
		b.Instrs = kept
	}
	return changed
}

// mergeBlocks threads jumps through empty forwarding blocks and merges
// single-pred/single-succ straight lines.
func mergeBlocks(f *ir.Func) bool {
	changed := false
	// Jump threading: a block containing only "br X" can be bypassed.
	forward := map[*ir.Block]*ir.Block{}
	for _, b := range f.Blocks {
		if len(b.Instrs) == 1 && b.Instrs[0].Op == ir.OpBr && b.Instrs[0].Blocks[0] != b {
			forward[b] = b.Instrs[0].Blocks[0]
		}
	}
	resolve := func(b *ir.Block) *ir.Block {
		seen := map[*ir.Block]bool{}
		for forward[b] != nil && !seen[b] {
			seen[b] = true
			b = forward[b]
		}
		return b
	}
	for _, b := range f.Blocks {
		t := b.Terminator()
		if t == nil {
			continue
		}
		for i, tgt := range t.Blocks {
			if r := resolve(tgt); r != tgt {
				t.Blocks[i] = r
				changed = true
			}
		}
	}
	if f.Entry != nil {
		if r := resolve(f.Entry); r != f.Entry {
			f.Entry = r
			changed = true
		}
	}
	if changed {
		f.ComputeCFG()
	}
	// Merge b -> s when b ends in an unconditional branch to s and s has
	// exactly one predecessor.
	merged := false
	for _, b := range f.Blocks {
		for {
			t := b.Terminator()
			if t == nil || t.Op != ir.OpBr {
				break
			}
			s := t.Blocks[0]
			if s == b || len(s.Preds) != 1 || s == f.Entry {
				break
			}
			b.Instrs = append(b.Instrs[:len(b.Instrs)-1], s.Instrs...)
			s.Instrs = nil
			merged = true
			changed = true
		}
	}
	if merged {
		f.ComputeCFG()
	}
	return changed
}
