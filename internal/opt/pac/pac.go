// Package pac implements Packet Access Combining (§5.3.1): multiple
// protocol-field accesses through the same packet handle are merged into a
// single wide memory access, dramatically cutting per-packet DRAM (packet
// data) and SRAM (metadata) references — the paper's single most effective
// optimization.
//
// Combining follows the paper's criteria: equal packet_handles, byte
// ranges within one memory instruction's maximum width, a dominance
// relationship between the accesses, and no violated data dependencies.
// This implementation combines within basic blocks, where the dominance
// and post-dominance requirements hold trivially and dependence checking
// is a linear scan; after inlining (-O2) the hot packet-access sequences
// of real applications sit in straight-line code, which is where the
// paper's combining opportunities come from. Same-handle accesses keep
// their cluster open across non-overlapping stores; any potentially
// aliasing access (a different handle can denote the same packet) flushes.
//
// A combined load becomes one raw wide OpPktLoad into a run of word
// registers followed by shift/mask extraction of each field; a combined
// store becomes an optional read-modify-write wide load, per-field
// insertion arithmetic, and one raw wide OpPktStore. Extraction and
// insertion cost a few single-cycle ALU instructions, the trade the paper
// makes to save memory bandwidth.
package pac

import (
	"sort"

	"shangrila/internal/baker/types"
	"shangrila/internal/ir"
)

// Width caps per memory level: packet data lives in DRAM (64-byte bursts),
// metadata in SRAM (32-byte bursts) — §3.2.
const (
	MaxPktCombineBytes    = 64
	MaxMetaCombineBytes   = 32
	MaxGlobalCombineBytes = 32
)

// Stats reports what PAC did.
type Stats struct {
	LoadClusters    int // clusters of >=2 loads combined
	StoreClusters   int
	AccessesRemoved int // narrow accesses eliminated
}

// Run applies PAC to every function in the program.
func Run(p *ir.Program) *Stats {
	st := &Stats{}
	for _, name := range p.Order {
		runFunc(p.Types, p.Funcs[name], st)
	}
	return st
}

type accKind uint8

const (
	pktLoad accKind = iota
	pktStore
	metaLoad
	metaStore
	globalLoad
)

func (k accKind) isLoad() bool { return k == pktLoad || k == metaLoad || k == globalLoad }
func (k accKind) isMeta() bool { return k == metaLoad || k == metaStore }
func (k accKind) maxBytes() int {
	if k == globalLoad {
		return MaxGlobalCombineBytes
	}
	if k.isMeta() {
		return MaxMetaCombineBytes
	}
	return MaxPktCombineBytes
}

type access struct {
	idx   int
	in    *ir.Instr
	delta int32 // handle-alias displacement relative to the cluster's base
}

type cluster struct {
	kind   accKind
	handle ir.Reg // packet handle, or the index register for global loads
	global *types.Global
	accs   []access
}

// span returns the byte range [lo,hi) covered by the cluster's accesses.
func (c *cluster) span() (lo, hi int) {
	lo, hi = 1<<30, 0
	for _, a := range c.accs {
		var flo, fhi int
		if c.kind == globalLoad {
			flo, fhi = int(a.in.Off), int(a.in.Off)+4
		} else {
			flo, fhi = a.in.Field.ByteSpan()
			flo += int(a.delta)
			fhi += int(a.delta)
		}
		if flo < lo {
			lo = flo
		}
		if fhi > hi {
			hi = fhi
		}
	}
	return lo, hi
}

func runFunc(tp *types.Program, f *ir.Func, st *Stats) {
	for _, b := range f.Blocks {
		combineBlock(tp, f, b, st)
	}
}

type rewrite struct {
	insertAt int // instruction index the sequence replaces/precedes
	seq      []*ir.Instr
}

// hbase resolves a handle register to its aliasing base and byte
// displacement: packet_decap/packet_encap of fixed-size headers relate
// handles to the same packet at known relative offsets, so accesses
// through all of them can combine into one burst (the cross-header
// combining that collapses an app's per-packet DRAM traffic to the
// paper's one-read-one-write).
type hbase struct {
	base  ir.Reg
	delta int32
}

func combineBlock(tp *types.Program, f *ir.Func, b *ir.Block, st *Stats) {
	alias := map[ir.Reg]hbase{}
	resolve := func(r ir.Reg) hbase {
		if a, ok := alias[r]; ok {
			return a
		}
		return hbase{base: r}
	}
	isHandle := func(r ir.Reg) bool {
		return r != ir.NoReg && int(r) < len(f.RegClasses) && f.RegClasses[r] == ir.ClassHandle
	}
	open := map[[2]interface{}]*cluster{} // key: (kind, base handle)
	var done []*cluster

	// A flushed store cluster's wide store sinks to its last member's
	// index, which may be *after* a store member's original position. A
	// later load must therefore never hoist above that sink point (by
	// joining a load cluster whose first access precedes it), or it would
	// read the pre-store memory. Track the sink high-water mark per
	// domain (packet data / metadata).
	storeSink := map[bool]int{} // key: kind.isMeta()

	flush := func(c *cluster) {
		if c != nil && len(c.accs) >= 2 {
			if !c.kind.isLoad() {
				if s := c.accs[len(c.accs)-1].idx; s > storeSink[c.kind.isMeta()] {
					storeSink[c.kind.isMeta()] = s
				}
			}
			done = append(done, c)
		}
	}
	flushAll := func() {
		for k, c := range open {
			flush(c)
			delete(open, k)
		}
	}
	flushWhere := func(pred func(*cluster) bool) {
		for k, c := range open {
			if pred(c) {
				flush(c)
				delete(open, k)
			}
		}
	}

	// killDefs flushes clusters whose pending combination an instruction's
	// definitions invalidate: the cluster's handle / index register, or a
	// buffered store value.
	killDefs := func(in *ir.Instr) {
		for _, d := range in.Dst {
			flushWhere(func(c *cluster) bool {
				if c.handle == d {
					return true
				}
				if !c.kind.isLoad() {
					for _, a := range c.accs {
						if a.in.Args[1] == d {
							return true
						}
					}
				}
				return false
			})
		}
	}

	for idx, in := range b.Instrs {
		switch in.Op {
		case ir.OpMov:
			if len(in.Dst) == 1 && isHandle(in.Dst[0]) && len(in.Args) == 1 {
				killDefs(in)
				alias[in.Dst[0]] = resolve(in.Args[0])
				continue
			}
		case ir.OpDecap:
			killDefs(in)
			alias[in.Dst[0]] = hbase{base: in.Dst[0]}
			flushAll()
			continue
		case ir.OpEncap:
			killDefs(in)
			alias[in.Dst[0]] = hbase{base: in.Dst[0]}
			flushAll()
			continue
		case ir.OpPktCopy, ir.OpPktCreate:
			killDefs(in)
			if len(in.Dst) == 1 {
				alias[in.Dst[0]] = hbase{base: in.Dst[0]}
			}
			continue
		case ir.OpPktLoad, ir.OpPktStore, ir.OpMetaLoad, ir.OpMetaStore:
			if in.Field == nil || in.Field.Bits > 32 {
				flushAll() // raw access: already combined or unknown
				continue
			}
			kind := kindOf(in)
			hb := resolve(in.Args[0])
			h := hb.base
			delta := hb.delta
			if kind.isMeta() {
				delta = 0 // metadata is per packet, not per header
			}
			flo, fhi := in.Field.ByteSpan()
			flo += int(delta)
			fhi += int(delta)
			// Dependence maintenance. A load flushes store clusters whose
			// buffered (not-yet-written) range it may read: the combined
			// store sinks to the last access, so an intervening read of
			// an already-buffered field would miss the pending value.
			// A store does NOT flush load clusters — existing members
			// read at or before their original positions; the threat is
			// only to future joins, which safeToJoin rejects.
			if kind.isLoad() {
				flushWhere(func(c *cluster) bool {
					if c.kind == globalLoad || c.kind.isMeta() != kind.isMeta() || c.kind.isLoad() {
						return false
					}
					if c.handle != h {
						return true // possibly the same packet at another head
					}
					clo, chi := c.span()
					return flo < chi && clo < fhi // overlap through same base
				})
			}
			key := [2]interface{}{kind, h}
			c := open[key]
			// Never hoist a load above a sunk combined store: joining a
			// cluster whose first access precedes the domain's store-sink
			// high-water mark would move this read over that wide store.
			if c != nil && kind.isLoad() && c.accs[0].idx < storeSink[kind.isMeta()] {
				flush(c)
				c = nil
				delete(open, key)
			}
			if c != nil && len(c.accs) > 0 && !safeToJoin(b, c, idx, in, kind, delta, resolve) {
				flush(c)
				c = nil
				delete(open, key)
			}
			if c == nil {
				c = &cluster{kind: kind, handle: h}
				open[key] = c
			}
			// Width bound: if adding this access exceeds the memory
			// instruction width, flush and restart the cluster.
			c.accs = append(c.accs, access{idx: idx, in: in, delta: delta})
			if lo, hi := c.span(); wordAlignedWidth(lo, hi) > c.kind.maxBytes() {
				c.accs = c.accs[:len(c.accs)-1]
				flush(c)
				nc := &cluster{kind: kind, handle: h,
					accs: []access{{idx: idx, in: in, delta: delta}}}
				open[key] = nc
			}
			killDefs(in)
			continue
		case ir.OpCall, ir.OpChanPut, ir.OpPktDrop,
			ir.OpAddTail, ir.OpRemoveTail, ir.OpLockAcquire, ir.OpLockRelease,
			ir.OpCacheFlush, ir.OpCacheFill, ir.OpCacheLookup:
			flushAll()
		case ir.OpLoad:
			if len(in.Dst) != 1 {
				flushAll()
				continue
			}
			ireg := ir.NoReg
			if len(in.Args) > 0 {
				ireg = in.Args[0]
			}
			key := [2]interface{}{in.Global.Name, ireg}
			c := open[key]
			if c != nil && len(c.accs) > 0 && !safeToJoinGlobal(b, c, idx, in) {
				flush(c)
				c = nil
				delete(open, key)
			}
			if c == nil {
				c = &cluster{kind: globalLoad, handle: ireg, global: in.Global}
				open[key] = c
			}
			c.accs = append(c.accs, access{idx: idx, in: in})
			if lo, hi := c.span(); wordAlignedWidth(lo, hi) > c.kind.maxBytes() {
				c.accs = c.accs[:len(c.accs)-1]
				flush(c)
				nc := &cluster{kind: globalLoad, handle: ireg, global: in.Global,
					accs: []access{{idx: idx, in: in}}}
				open[key] = nc
			}
			killDefs(in)
			continue
		case ir.OpStore:
			// A store to global G flushes G's load clusters (conservative:
			// any offset); other globals never alias.
			flushWhere(func(c *cluster) bool {
				return c.kind == globalLoad && c.global == in.Global
			})
		}
		// Register kills: redefining a cluster's handle or a buffered
		// store value invalidates the pending combination.
		killDefs(in)
	}
	flushAll()

	if len(done) == 0 {
		return
	}
	// Clusters reach done in map-iteration order when several flush at
	// once; rewrite in program order so the registers the combinations
	// allocate are numbered deterministically (compile output must be
	// byte-stable for the incremental-vs-cold differential).
	sort.Slice(done, func(i, j int) bool {
		return done[i].accs[0].idx < done[j].accs[0].idx
	})
	// Build rewrites.
	removed := map[*ir.Instr]bool{}
	inserts := map[int][]*ir.Instr{}
	for _, c := range done {
		var rw rewrite
		if c.kind == globalLoad {
			rw = combineGlobalLoads(f, c)
			st.LoadClusters++
		} else if c.kind.isLoad() {
			rw = combineLoads(f, c)
			st.LoadClusters++
		} else {
			rw = combineStores(f, c)
			st.StoreClusters++
		}
		st.AccessesRemoved += len(c.accs) - 1
		for _, a := range c.accs {
			removed[a.in] = true
		}
		inserts[rw.insertAt] = append(inserts[rw.insertAt], rw.seq...)
	}
	var out []*ir.Instr
	for idx, in := range b.Instrs {
		if seq, ok := inserts[idx]; ok {
			out = append(out, seq...)
		}
		if !removed[in] {
			out = append(out, in)
		}
	}
	b.Instrs = out
}

// safeToJoin checks the motion-range dependences for adding access `in`
// (at index idx) to cluster c:
//
//   - load clusters hoist the access to the first access's position, so no
//     instruction in (first, idx) may define or use the new access's
//     destination, and no same-handle field store in that range may
//     overlap the new access's byte range (the hoisted read would see the
//     pre-store value);
//   - store clusters sink earlier stores to this position, so no
//     instruction in (prev, idx) may redefine any buffered value register
//     or the handle (checked pairwise: gaps tile the whole motion range).
func safeToJoin(b *ir.Block, c *cluster, idx int, in *ir.Instr, kind accKind,
	delta int32, resolve func(ir.Reg) hbase) bool {
	if kind.isLoad() {
		first := c.accs[0].idx
		dst := in.Dst[0]
		flo, fhi := in.Field.ByteSpan()
		flo += int(delta)
		fhi += int(delta)
		for i := first + 1; i < idx; i++ {
			mid := b.Instrs[i]
			for _, d := range mid.Dst {
				if d == dst {
					return false
				}
			}
			for _, u := range mid.Args {
				if u == dst {
					return false
				}
			}
			if (mid.Op == ir.OpPktStore || mid.Op == ir.OpMetaStore) &&
				(mid.Op == ir.OpMetaStore) == kind.isMeta() {
				mb := resolve(mid.Args[0])
				if mid.Field == nil || mb.base != c.handle {
					return false // raw or possibly-aliasing store in range
				}
				slo, shi := mid.Field.ByteSpan()
				md := int(mb.delta)
				if kind.isMeta() {
					md = 0
				}
				if flo < shi+md && slo+md < fhi {
					return false
				}
			}
		}
		return true
	}
	prev := c.accs[len(c.accs)-1].idx
	for i := prev + 1; i < idx; i++ {
		mid := b.Instrs[i]
		for _, d := range mid.Dst {
			if d == c.handle {
				return false
			}
			for _, a := range c.accs {
				if a.in.Args[1] == d {
					return false
				}
			}
		}
	}
	return true
}

// safeToJoinGlobal checks motion-range dependences for hoisting a global
// load to the cluster's first access: nothing in (first, idx) may define
// or use the load's destination, define the index register, or store to
// the same global.
func safeToJoinGlobal(b *ir.Block, c *cluster, idx int, in *ir.Instr) bool {
	first := c.accs[0].idx
	dst := in.Dst[0]
	for i := first + 1; i < idx; i++ {
		mid := b.Instrs[i]
		for _, d := range mid.Dst {
			if d == dst || (c.handle != ir.NoReg && d == c.handle) {
				return false
			}
		}
		for _, u := range mid.Args {
			if u == dst {
				return false
			}
		}
		if mid.Op == ir.OpStore && mid.Global == c.global {
			return false
		}
	}
	return true
}

// combineGlobalLoads merges word loads of one global (same index register,
// nearby constant offsets) into a single wide burst; each original load
// becomes a register copy. Gap words land in scratch registers that DCE
// removes if unused.
func combineGlobalLoads(f *ir.Func, c *cluster) rewrite {
	lo, hi := c.span()
	wlo := lo &^ 3
	width := wordAlignedWidth(lo, hi)
	words := make([]ir.Reg, width/4)
	for i := range words {
		words[i] = f.NewReg(ir.ClassWord)
	}
	first := c.accs[0].in
	args := []ir.Reg{ir.NoReg}
	if c.handle != ir.NoReg {
		args[0] = c.handle
	}
	wide := &ir.Instr{
		Op:     ir.OpLoad,
		Pos:    first.Pos,
		Global: c.global,
		Off:    int32(wlo),
		Width:  width,
		Dst:    words,
		Args:   args,
	}
	seq := []*ir.Instr{wide}
	for _, a := range c.accs {
		wi := (int(a.in.Off) - wlo) / 4
		seq = append(seq, &ir.Instr{Op: ir.OpMov, Pos: a.in.Pos,
			Dst: []ir.Reg{a.in.Dst[0]}, Args: []ir.Reg{words[wi]}})
	}
	return rewrite{insertAt: c.accs[0].idx, seq: seq}
}

func kindOf(in *ir.Instr) accKind {
	switch in.Op {
	case ir.OpPktLoad:
		return pktLoad
	case ir.OpPktStore:
		return pktStore
	case ir.OpMetaLoad:
		return metaLoad
	}
	return metaStore
}

func wordAlignedWidth(lo, hi int) int {
	wlo := lo &^ 3
	whi := (hi + 3) &^ 3
	return whi - wlo
}

// combineLoads produces one wide raw load plus per-field extraction,
// inserted at the first access.
func combineLoads(f *ir.Func, c *cluster) rewrite {
	lo, hi := c.span()
	wlo := lo &^ 3
	width := wordAlignedWidth(lo, hi)
	words := make([]ir.Reg, width/4)
	for i := range words {
		words[i] = f.NewReg(ir.ClassWord)
	}
	wide := &ir.Instr{
		Op:        rawLoadOp(c.kind),
		Pos:       c.accs[0].in.Pos,
		Dst:       words,
		Args:      []ir.Reg{c.handle},
		Off:       int32(wlo),
		Width:     width,
		StaticOff: ir.UnknownOff,
	}
	seq := []*ir.Instr{wide}
	for _, a := range c.accs {
		seq = append(seq, extractField(f, a.in, a.delta, words, wlo)...)
	}
	return rewrite{insertAt: c.accs[0].idx, seq: seq}
}

// extractField emits shift/mask code producing a.in's original destination
// from the loaded word registers.
func extractField(f *ir.Func, orig *ir.Instr, delta int32, words []ir.Reg, wlo int) []*ir.Instr {
	fld := orig.Field
	dst := orig.Dst[0]
	relBit := fld.BitOff + int(delta)*8 - wlo*8
	wi := relBit / 32
	bitInWord := relBit % 32
	bits := fld.Bits
	var seq []*ir.Instr
	emit := func(op ir.Op, d ir.Reg, args ...ir.Reg) {
		seq = append(seq, &ir.Instr{Op: op, Pos: orig.Pos, Dst: []ir.Reg{d}, Args: args})
	}
	konst := func(v uint32) ir.Reg {
		r := f.NewReg(ir.ClassWord)
		seq = append(seq, &ir.Instr{Op: ir.OpConst, Pos: orig.Pos, Dst: []ir.Reg{r}, Imm: uint64(v)})
		return r
	}
	mask := uint32(0xffffffff)
	if bits < 32 {
		mask = (1 << uint(bits)) - 1
	}
	if bitInWord+bits <= 32 {
		w := words[wi]
		sh := 32 - bitInWord - bits
		cur := w
		if sh > 0 {
			t := f.NewReg(ir.ClassWord)
			emit(ir.OpShrU, t, cur, konst(uint32(sh)))
			cur = t
		}
		if bits < 32 {
			emit(ir.OpAnd, dst, cur, konst(mask))
		} else {
			emit(ir.OpMov, dst, cur)
		}
		return seq
	}
	// Field spans two words: hiBits from words[wi], loBits from words[wi+1].
	hiBits := 32 - bitInWord
	loBits := bits - hiBits
	hiPart := f.NewReg(ir.ClassWord)
	emit(ir.OpAnd, hiPart, words[wi], konst((1<<uint(hiBits))-1))
	hiShifted := f.NewReg(ir.ClassWord)
	emit(ir.OpShl, hiShifted, hiPart, konst(uint32(loBits)))
	loPart := f.NewReg(ir.ClassWord)
	emit(ir.OpShrU, loPart, words[wi+1], konst(uint32(32-loBits)))
	emit(ir.OpOr, dst, hiShifted, loPart)
	return seq
}

// combineStores produces (optionally) a wide read-modify-write load,
// per-field insertion arithmetic and one wide raw store, inserted at the
// last access so every stored value is available.
func combineStores(f *ir.Func, c *cluster) rewrite {
	lo, hi := c.span()
	wlo := lo &^ 3
	width := wordAlignedWidth(lo, hi)
	nwords := width / 4
	words := make([]ir.Reg, nwords)
	var seq []*ir.Instr
	pos := c.accs[len(c.accs)-1].in.Pos

	covered := coverageBits(c, wlo, width)
	full := true
	for _, cw := range covered {
		if cw != 0xffffffff {
			full = false
			break
		}
	}
	if full {
		for i := range words {
			r := f.NewReg(ir.ClassWord)
			words[i] = r
			seq = append(seq, &ir.Instr{Op: ir.OpConst, Pos: pos, Dst: []ir.Reg{r}})
		}
	} else {
		// Read-modify-write: fetch the range first.
		for i := range words {
			words[i] = f.NewReg(ir.ClassWord)
		}
		seq = append(seq, &ir.Instr{
			Op:        rawLoadOp(loadKindFor(c.kind)),
			Pos:       pos,
			Dst:       append([]ir.Reg(nil), words...),
			Args:      []ir.Reg{c.handle},
			Off:       int32(wlo),
			Width:     width,
			StaticOff: ir.UnknownOff,
		})
	}
	// Apply insertions in program order so later stores win overlaps.
	for _, a := range c.accs {
		ins, nw := insertField(f, a.in, a.delta, words, wlo)
		seq = append(seq, ins...)
		words = nw
	}
	store := &ir.Instr{
		Op:        rawStoreOp(c.kind),
		Pos:       pos,
		Args:      append([]ir.Reg{c.handle}, words...),
		Off:       int32(wlo),
		Width:     width,
		StaticOff: ir.UnknownOff,
	}
	seq = append(seq, store)
	return rewrite{insertAt: c.accs[len(c.accs)-1].idx, seq: seq}
}

// coverageBits returns, per word of the range, a bitmask (big-endian bit 0
// = MSB) of bits covered by the cluster's stored fields.
func coverageBits(c *cluster, wlo, width int) []uint32 {
	cov := make([]uint32, width/4)
	for _, a := range c.accs {
		fld := a.in.Field
		rel := fld.BitOff + int(a.delta)*8 - wlo*8
		for i := 0; i < fld.Bits; i++ {
			bit := rel + i
			cov[bit/32] |= 1 << uint(31-bit%32)
		}
	}
	return cov
}

// insertField emits code updating the word registers with one stored
// field, returning the updated register slice (modified words get fresh
// registers to keep the IR in definition-before-use form).
func insertField(f *ir.Func, orig *ir.Instr, delta int32, words []ir.Reg, wlo int) ([]*ir.Instr, []ir.Reg) {
	fld := orig.Field
	val := orig.Args[1]
	relBit := fld.BitOff + int(delta)*8 - wlo*8
	wi := relBit / 32
	bitInWord := relBit % 32
	bits := fld.Bits
	var seq []*ir.Instr
	emit := func(op ir.Op, d ir.Reg, args ...ir.Reg) {
		seq = append(seq, &ir.Instr{Op: op, Pos: orig.Pos, Dst: []ir.Reg{d}, Args: args})
	}
	konst := func(v uint32) ir.Reg {
		r := f.NewReg(ir.ClassWord)
		seq = append(seq, &ir.Instr{Op: ir.OpConst, Pos: orig.Pos, Dst: []ir.Reg{r}, Imm: uint64(v)})
		return r
	}
	out := append([]ir.Reg(nil), words...)
	insertInto := func(wi, shift, width int, src ir.Reg) {
		mask := uint32(0xffffffff)
		if width < 32 {
			mask = (1 << uint(width)) - 1
		}
		placed := mask << uint(shift)
		vmask := f.NewReg(ir.ClassWord)
		emit(ir.OpAnd, vmask, src, konst(mask))
		vsh := vmask
		if shift > 0 {
			vsh = f.NewReg(ir.ClassWord)
			emit(ir.OpShl, vsh, vmask, konst(uint32(shift)))
		}
		cleared := f.NewReg(ir.ClassWord)
		emit(ir.OpAnd, cleared, out[wi], konst(^placed))
		nw := f.NewReg(ir.ClassWord)
		emit(ir.OpOr, nw, cleared, vsh)
		out[wi] = nw
	}
	if bitInWord+bits <= 32 {
		insertInto(wi, 32-bitInWord-bits, bits, val)
		return seq, out
	}
	hiBits := 32 - bitInWord
	loBits := bits - hiBits
	// High part: field's top hiBits go to the low bits of words[wi].
	hiVal := f.NewReg(ir.ClassWord)
	emit(ir.OpShrU, hiVal, val, konst(uint32(loBits)))
	insertInto(wi, 0, hiBits, hiVal)
	// Low part: field's bottom loBits go to the top of words[wi+1].
	insertInto(wi+1, 32-loBits, loBits, val)
	return seq, out
}

func rawLoadOp(k accKind) ir.Op {
	if k.isMeta() {
		return ir.OpMetaLoad
	}
	return ir.OpPktLoad
}

func rawStoreOp(k accKind) ir.Op {
	if k.isMeta() {
		return ir.OpMetaStore
	}
	return ir.OpPktStore
}

func loadKindFor(k accKind) accKind {
	if k.isMeta() {
		return metaLoad
	}
	return pktLoad
}

var _ = types.WordBytes // keep the types import for ByteSpan documentation
