package pac_test

import (
	"testing"

	"shangrila/internal/baker/types"
	"shangrila/internal/ir"
	"shangrila/internal/opt"
	"shangrila/internal/opt/pac"
	"shangrila/internal/packet"
	"shangrila/internal/testutil"
	"shangrila/internal/trace"
	"shangrila/internal/workload"
)

const hdrSrc = `
protocol ether { dst_hi:16; dst_lo:32; src_hi:16; src_lo:32; type:16; demux { 14 }; }
protocol ipv4 { ver:4; hlen:4; tos:8; length:16; id:16; flags:3; frag:13;
                ttl:8; proto:8; cksum:16; src:32; dst:32; demux { hlen << 2 }; }
metadata { rx_port:16; next_hop:16; flow:32; }
`

func countAccesses(f *ir.Func) (narrow, wide int) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpPktLoad, ir.OpPktStore, ir.OpMetaLoad, ir.OpMetaStore:
				if in.Field != nil {
					narrow++
				} else {
					wide++
				}
			}
		}
	}
	return
}

func ipTrace(tp *types.Program) []*packet.Packet {
	r := workload.NewSource(5)
	var out []*packet.Packet
	for i := 0; i < 25; i++ {
		p, err := trace.Build([]trace.Layer{
			{Proto: tp.Protocols["ether"], Fields: map[string]uint32{
				"type": 0x0800, "dst_hi": 0xaabb, "dst_lo": r.Uint32(),
				"src_hi": 0x1122, "src_lo": r.Uint32()}},
			{Proto: tp.Protocols["ipv4"], Fields: map[string]uint32{
				"ver": 4, "hlen": 5, "ttl": uint32(10 + i), "tos": uint32(i & 3),
				"cksum": r.Uint32() & 0xffff,
				"src":   r.Uint32(), "dst": r.Uint32()}, Size: 20},
		}, 64, tp.Metadata.Bytes)
		if err != nil {
			panic(err)
		}
		out = append(out, p)
	}
	return out
}

func TestCombineLoadsSemantics(t *testing.T) {
	src := hdrSrc + `
module m {
	uint sink;
	ppf f(ether ph) {
		uint a = ph->dst_hi;
		uint b = ph->dst_lo;
		uint c = ph->type;
		sink = a + b + c;
		packet_drop(ph);
	}
	wiring { rx -> f; }
}`
	p := testutil.DiffTest(t, src, ipTrace, nil, func(p *ir.Program) {
		st := pac.Run(p)
		if st.LoadClusters != 1 {
			t.Errorf("load clusters = %d, want 1", st.LoadClusters)
		}
	})
	narrow, wide := countAccesses(p.Funcs["m.f"])
	if narrow != 0 || wide != 1 {
		t.Errorf("after PAC: narrow=%d wide=%d, want 0/1", narrow, wide)
	}
	// The wide access must cover dst_hi..type = bytes [0,14) -> words [0,16).
	for _, b := range p.Funcs["m.f"].Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpPktLoad && in.Field == nil {
				if in.Off != 0 || in.Width != 16 {
					t.Errorf("wide load range [%d,%d), want [0,16)", in.Off, int(in.Off)+in.Width)
				}
			}
		}
	}
}

func TestCombineStoresRMW(t *testing.T) {
	src := hdrSrc + `
module m {
	channel out : ipv4;
	ppf f(ipv4 ph) {
		ph->ttl = ph->ttl - 1;
		ph->cksum = ph->cksum + 0x100;
		channel_put(out, ph);
	}
	wiring { rx -> f; out -> tx; }
}`
	gen := func(tp *types.Program) []*packet.Packet {
		r := workload.NewSource(17)
		var out []*packet.Packet
		for i := 0; i < 10; i++ {
			p, err := trace.Build([]trace.Layer{
				{Proto: tp.Protocols["ipv4"], Fields: map[string]uint32{
					"ver": 4, "hlen": 5, "ttl": uint32(1 + i), "cksum": r.Uint32() & 0xffff,
					"id": r.Uint32() & 0xffff, "dst": r.Uint32()}, Size: 20},
			}, 64, tp.Metadata.Bytes)
			if err != nil {
				panic(err)
			}
			out = append(out, p)
		}
		return out
	}
	p := testutil.DiffTest(t, src, gen, nil, func(p *ir.Program) {
		pac.Run(p)
	})
	f := p.Funcs["m.f"]
	// ttl and cksum share word 2 of the header: loads combine and stores
	// combine into one RMW pair.
	_, wide := countAccesses(f)
	if wide < 2 {
		t.Errorf("expected wide accesses after combining, got %d:\n%s", wide, f)
	}
	narrow, _ := countAccesses(f)
	if narrow != 0 {
		t.Errorf("narrow accesses remain: %d\n%s", narrow, f)
	}
}

func TestInterveningOverlappingStoreBlocksLoadCombining(t *testing.T) {
	src := hdrSrc + `
module m {
	uint sink;
	channel out : ipv4;
	ppf f(ipv4 ph) {
		uint a = ph->ttl;
		ph->ttl = 9;
		uint b = ph->ttl;   // must observe 9
		sink = a * 256 + b;
		channel_put(out, ph);
	}
	wiring { rx -> f; out -> tx; }
}`
	gen := func(tp *types.Program) []*packet.Packet {
		p, err := trace.Build([]trace.Layer{
			{Proto: tp.Protocols["ipv4"], Fields: map[string]uint32{
				"ver": 4, "hlen": 5, "ttl": 42}, Size: 20},
		}, 64, tp.Metadata.Bytes)
		if err != nil {
			panic(err)
		}
		return []*packet.Packet{p}
	}
	testutil.DiffTest(t, src, gen, nil, func(p *ir.Program) { pac.Run(p) })
}

func TestMetadataCombining(t *testing.T) {
	src := hdrSrc + `
module m {
	channel out : ether;
	ppf f(ether ph) {
		ph->meta.next_hop = 7;
		ph->meta.flow = 0xabcd1234;
		channel_put(out, ph);
	}
	wiring { rx -> f; out -> tx; }
}`
	p := testutil.DiffTest(t, src, ipTrace, nil, func(p *ir.Program) {
		st := pac.Run(p)
		if st.StoreClusters < 1 {
			t.Errorf("expected metadata store combining, stats=%+v", st)
		}
	})
	f := p.Funcs["m.f"]
	metaStores := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpMetaStore {
				metaStores++
				if in.Field != nil {
					t.Errorf("narrow metadata store survived")
				}
			}
		}
	}
	if metaStores != 1 {
		t.Errorf("metadata stores = %d, want 1", metaStores)
	}
}

func TestPACAfterScalarOnRealApp(t *testing.T) {
	src := hdrSrc + `
module app {
	struct Rt { dst:uint; nh:uint; }
	Rt table[64];
	channel ip_cc : ipv4;
	channel out_cc : ether;
	ppf clsfr(ether ph) {
		uint d1 = ph->dst_hi;
		uint d2 = ph->dst_lo;
		if (ph->type == 0x0800 && d1 == 0xaabb) {
			ipv4 iph = packet_decap(ph);
			iph->meta.flow = d2;
			channel_put(ip_cc, iph);
		} else { packet_drop(ph); }
	}
	ppf fwd(ipv4 ph) {
		uint nh = 0;
		uint dst = ph->dst;
		for (uint i = 0; i < 64; i++) {
			if (table[i].dst == dst) { nh = table[i].nh; break; }
		}
		if (nh == 0) { packet_drop(ph); }
		else {
			ph->meta.next_hop = nh;
			ph->ttl = ph->ttl - 1;
			ether eph = packet_encap(ph);
			channel_put(out_cc, eph);
		}
	}
	control func add_route(uint idx, uint dst, uint nh) {
		table[idx].dst = dst; table[idx].nh = nh;
	}
	wiring { rx -> clsfr; ip_cc -> fwd; out_cc -> tx; }
}`
	controls := [][]any{{"app.add_route", 0, 0x11223344, 3}}
	gen := func(tp *types.Program) []*packet.Packet {
		var out []*packet.Packet
		for i := 0; i < 20; i++ {
			dst := uint32(0x11223344)
			if i%3 == 0 {
				dst = 0x55667788
			}
			p, err := trace.Build([]trace.Layer{
				{Proto: tp.Protocols["ether"], Fields: map[string]uint32{
					"type": 0x0800, "dst_hi": 0xaabb, "dst_lo": 0x10101010}},
				{Proto: tp.Protocols["ipv4"], Fields: map[string]uint32{
					"ver": 4, "hlen": 5, "ttl": 64, "dst": dst}, Size: 20},
			}, 64, tp.Metadata.Bytes)
			if err != nil {
				panic(err)
			}
			out = append(out, p)
		}
		return out
	}
	before := testutil.BuildIR(t, src)
	opt.Optimize(before, opt.Options{Scalar: true, Inline: true})
	nb, _ := countAccesses(before.Funcs["app.clsfr"])

	p := testutil.DiffTest(t, src, gen, controls, func(p *ir.Program) {
		opt.Optimize(p, opt.Options{Scalar: true, Inline: true})
		pac.Run(p)
		opt.Optimize(p, opt.Options{Scalar: true})
	})
	na, wa := countAccesses(p.Funcs["app.clsfr"])
	if na+wa >= nb {
		t.Errorf("PAC did not reduce accesses: %d narrow before, %d narrow + %d wide after",
			nb, na, wa)
	}
}
