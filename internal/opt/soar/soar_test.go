package soar_test

import (
	"testing"

	"shangrila/internal/baker/types"
	"shangrila/internal/ir"
	"shangrila/internal/opt"
	"shangrila/internal/opt/soar"
	"shangrila/internal/packet"
	"shangrila/internal/testutil"
	"shangrila/internal/trace"
	"shangrila/internal/workload"
)

const hdrSrc = `
protocol ether { dst_hi:16; dst_lo:32; src_hi:16; src_lo:32; type:16; demux { 14 }; }
protocol ipv4 { ver:4; hlen:4; tos:8; length:16; id:16; flags:3; frag:13;
                ttl:8; proto:8; cksum:16; src:32; dst:32; demux { hlen << 2 }; }
protocol mpls { label:20; exp:3; s:1; mttl:8; demux { 4 }; }
metadata { rx_port:16; next_hop:16; }
`

// accessAnnotations collects (StaticOff, StaticAlign) per packet access of fn.
func accessAnnotations(fn *ir.Func) []*ir.Instr {
	var out []*ir.Instr
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpPktLoad || in.Op == ir.OpPktStore {
				out = append(out, in)
			}
		}
	}
	return out
}

func TestFixedChainResolves(t *testing.T) {
	// ether (fixed 14) -> mpls (fixed 4): every offset statically known.
	src := hdrSrc + `
module m {
	channel mp : mpls;
	channel out : mpls;
	ppf f(ether ph) {
		uint ty = ph->type;
		if (ty == 0x8847) {
			mpls mh = packet_decap(ph);
			channel_put(mp, mh);
		} else { packet_drop(ph); }
	}
	ppf g(mpls ph) {
		uint l = ph->label;
		ph->mttl = ph->mttl - 1;
		channel_put(out, ph);
	}
	wiring { rx -> f; mp -> g; out -> tx; }
}`
	p := testutil.BuildIR(t, src)
	st := soar.Analyze(p)
	if st.Accesses == 0 {
		t.Fatal("no accesses seen")
	}
	if st.ResolvedOffset != st.Accesses {
		t.Errorf("resolved %d of %d accesses, want all", st.ResolvedOffset, st.Accesses)
	}
	// f's accesses at offset 0; g's at 14.
	for _, in := range accessAnnotations(p.Funcs["m.f"]) {
		if in.StaticOff != 0 {
			t.Errorf("f access off = %d, want 0", in.StaticOff)
		}
		if in.StaticAlign != soar.MaxAlign {
			t.Errorf("f access align = %d, want %d", in.StaticAlign, soar.MaxAlign)
		}
	}
	for _, in := range accessAnnotations(p.Funcs["m.g"]) {
		if in.StaticOff != 14 {
			t.Errorf("g access off = %d, want 14", in.StaticOff)
		}
		if in.StaticAlign != 2 {
			t.Errorf("g access align = %d, want 2 (14 is halfword aligned)", in.StaticAlign)
		}
	}
}

func TestDynamicDemuxGoesBottomWithAlignment(t *testing.T) {
	// Decapping ipv4 (demux hlen<<2) makes downstream offsets unknown but
	// provably word-aligned.
	src := hdrSrc + `
module m {
	channel l4 : mpls;
	channel out : mpls;
	ppf f(ipv4 ph) {
		mpls inner = packet_decap(ph);
		channel_put(l4, inner);
	}
	ppf g(mpls ph) {
		uint l = ph->label;
		ph->meta.next_hop = l;
		channel_put(out, ph);
	}
	wiring { rx -> f; l4 -> g; out -> tx; }
}`
	p := testutil.BuildIR(t, src)
	soar.Analyze(p)
	for _, in := range accessAnnotations(p.Funcs["m.g"]) {
		if in.StaticOff != ir.UnknownOff {
			t.Errorf("g access off = %d, want unknown", in.StaticOff)
		}
		if in.StaticAlign != 4 {
			t.Errorf("g access align = %d, want 4 (hlen<<2 is word aligned)", in.StaticAlign)
		}
	}
}

// mplsLoopSrc models the paper's Figure 9 situation: an unbounded MPLS
// label stack popped in a loop, making offsets statically unresolvable at
// the join.
const mplsLoopSrc = hdrSrc + `
module m {
	channel mp : mpls;
	channel ipout : ipv4;
	ppf f(ether ph) {
		mpls mh = packet_decap(ph);
		channel_put(mp, mh);
	}
	ppf pop(mpls ph) {
		if (ph->s == 1) {
			ipv4 iph = packet_decap(ph);
			channel_put(ipout, iph);
		} else {
			mpls inner = packet_decap(ph);
			channel_put(mp, inner);
		}
	}
	ppf ipfwd(ipv4 ph) {
		ph->ttl = ph->ttl - 1;
		packet_drop(ph);
	}
	wiring { rx -> f; mp -> pop; ipout -> ipfwd; }
}`

func TestMPLSStackJoinIsBottom(t *testing.T) {
	p := testutil.BuildIR(t, mplsLoopSrc)
	soar.Analyze(p)
	// pop consumes mp, fed both by f (offset 14) and by itself (offset
	// 14+4k): the join must be bottom, but word alignment survives (14 vs
	// 18 -> align 2).
	for _, in := range accessAnnotations(p.Funcs["m.pop"]) {
		if in.StaticOff != ir.UnknownOff {
			t.Errorf("pop access off = %d, want unknown (label stack)", in.StaticOff)
		}
		if in.StaticAlign < 2 {
			t.Errorf("pop access align = %d, want >= 2", in.StaticAlign)
		}
	}
	// f's single access context is still exact.
	for _, in := range accessAnnotations(p.Funcs["m.f"]) {
		_ = in
	}
}

func TestEncapResolvesBack(t *testing.T) {
	src := hdrSrc + `
module m {
	channel ipc : ipv4;
	channel out : ether;
	ppf f(ether ph) {
		ipv4 iph = packet_decap(ph);
		channel_put(ipc, iph);
	}
	ppf g(ipv4 ph) {
		ether eph = packet_encap(ph);
		uint d = eph->dst_hi;
		ph->meta.next_hop = d;
		channel_put(out, eph);
	}
	wiring { rx -> f; ipc -> g; out -> tx; }
}`
	p := testutil.BuildIR(t, src)
	soar.Analyze(p)
	for _, in := range accessAnnotations(p.Funcs["m.g"]) {
		if in.Op == ir.OpPktLoad && in.StaticOff != 0 {
			t.Errorf("post-encap access off = %d, want 0", in.StaticOff)
		}
	}
	// The encap instruction itself carries its incoming offset (14).
	for _, b := range p.Funcs["m.g"].Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpEncap && in.StaticOff != 14 {
				t.Errorf("encap incoming off = %d, want 14", in.StaticOff)
			}
		}
	}
}

func TestPacketCreateAndCopySeeded(t *testing.T) {
	src := hdrSrc + `
module m {
	channel out : ether;
	ppf f(ether ph) {
		ether cp = packet_copy(ph);
		uint x = cp->type;
		ether fresh = packet_create();
		fresh->type = x;
		channel_put(out, fresh);
		packet_drop(ph);
	}
	wiring { rx -> f; out -> tx; }
}`
	p := testutil.BuildIR(t, src)
	st := soar.Analyze(p)
	if st.ResolvedOffset != st.Accesses {
		t.Errorf("create/copy handles should resolve: %d of %d", st.ResolvedOffset, st.Accesses)
	}
}

func TestSOARDoesNotChangeSemantics(t *testing.T) {
	gen := func(tp *types.Program) []*packet.Packet {
		r := workload.NewSource(3)
		var out []*packet.Packet
		for i := 0; i < 20; i++ {
			depth := 1 + i%3
			layers := []trace.Layer{
				{Proto: tp.Protocols["ether"], Fields: map[string]uint32{"type": 0x8847}},
			}
			for d := 0; d < depth; d++ {
				s := uint32(0)
				if d == depth-1 {
					s = 1
				}
				layers = append(layers, trace.Layer{
					Proto:  tp.Protocols["mpls"],
					Fields: map[string]uint32{"label": r.Uint32() & 0xfffff, "s": s, "mttl": 17},
				})
			}
			layers = append(layers, trace.Layer{
				Proto:  tp.Protocols["ipv4"],
				Fields: map[string]uint32{"ver": 4, "hlen": 5, "ttl": 9, "dst": r.Uint32()},
				Size:   20,
			})
			p, err := trace.Build(layers, 64, tp.Metadata.Bytes)
			if err != nil {
				panic(err)
			}
			out = append(out, p)
		}
		return out
	}
	testutil.DiffTest(t, mplsLoopSrc, gen, nil, func(p *ir.Program) {
		opt.Optimize(p, opt.Options{Scalar: true, Inline: true})
		soar.Analyze(p)
	})
}
