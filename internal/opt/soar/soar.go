// Package soar implements Static Offset and Alignment Resolution
// (§5.3.2): a whole-program dataflow analysis that determines, where
// possible, the value of each packet handle's head_ptr (its offset from
// the packet start) and its alignment guarantee at every packet access and
// encapsulation site.
//
// The analysis follows the paper's SOD/SAD lattices (Figures 10 and 11):
// offsets are TOP (unvisited) / a known constant / BOTTOM (⊥offset), and
// alignments form the chain quadword > doubleword > word > short > byte.
// Offsets propagate forward through packet_encap/packet_decap with
// monotone flow functions and join at control-flow merges; handles flowing
// across communication channels join over every producer's put, giving the
// inter-procedural part of the analysis. Handles born at packet_create and
// packet_copy are seeded directly (create = offset 0; copy = the source's
// value), which subsumes the backward passes of the paper's steps 4 and 7
// for programs whose copies/creates have resolvable sources.
//
// Results are written into the IR: Instr.StaticOff and Instr.StaticAlign
// on every OpPktLoad/OpPktStore/OpEncap/OpDecap. The code generator emits
// the cheap fixed-offset access sequence when StaticOff is known, the
// fixed-alignment sequence when only StaticAlign is known, and the full
// dynamic sequence otherwise; PHR uses the encap/decap annotations to
// delete head_ptr maintenance entirely.
package soar

import (
	"shangrila/internal/baker/ast"
	"shangrila/internal/baker/types"
	"shangrila/internal/ir"
)

// state enumerates lattice states for the offset component.
type state uint8

const (
	top state = iota // unvisited
	known
	bottom
)

// lat is the combined SOD+SAD lattice value for one handle, extended with
// a proven lower bound on the offset (min), which stays informative even
// when the exact offset falls to ⊥ (an MPLS label stack is at least
// 14+4 bytes in, however deep it is).
type lat struct {
	st    state
	off   int32
	align int32 // alignment guarantee in bytes (1,2,4,8); valid unless st==top
	min   int32 // lower bound on the offset (0 = no information)
}

// MaxAlign is the strongest alignment tracked (quadword, the alignment of
// packets as delivered by Rx).
const MaxAlign = 8

func pow2Align(n int32) int32 {
	if n == 0 {
		return MaxAlign
	}
	a := int32(1)
	for a < MaxAlign && n%(a*2) == 0 {
		a *= 2
	}
	return a
}

func minAlign(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

func knownLat(off int32) lat {
	return lat{st: known, off: off, align: pow2Align(off), min: off}
}

func bottomLat(align int32) lat {
	if align <= 0 {
		align = 1
	}
	return lat{st: bottom, align: align}
}

func minI32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

// join implements the control-flow merge of both lattices: offsets join to
// the common constant or ⊥; alignments join to MIN_ALIGNMENT.
func join(a, b lat) lat {
	if a.st == top {
		return b
	}
	if b.st == top {
		return a
	}
	if a.st == known && b.st == known && a.off == b.off {
		return lat{st: known, off: a.off, align: minAlign(a.align, b.align), min: a.off}
	}
	l := bottomLat(minAlign(a.align, b.align))
	l.min = minI32(a.min, b.min)
	return l
}

func equal(a, b lat) bool {
	return a.st == b.st && a.off == b.off && a.align == b.align && a.min == b.min
}

// demuxAlignment returns the provable power-of-two alignment of a
// protocol's header size. Fixed sizes get their exact alignment; dynamic
// demux expressions are analyzed structurally (hlen << 2 is provably
// word-aligned even though its value is unknown).
func demuxAlignment(p *types.Protocol, consts map[string]uint64) int32 {
	if p.FixedSize >= 0 {
		return pow2Align(int32(p.FixedSize))
	}
	return exprAlignment(p.Demux, p, consts)
}

func exprAlignment(e ast.Expr, p *types.Protocol, consts map[string]uint64) int32 {
	switch e := e.(type) {
	case *ast.IntLit:
		return pow2Align(int32(e.Value))
	case *ast.Ident:
		if v, ok := consts[e.Name]; ok {
			return pow2Align(int32(v))
		}
		return 1 // a field: value unknown
	case *ast.UnaryExpr:
		return 1
	case *ast.BinaryExpr:
		ax := exprAlignment(e.X, p, consts)
		ay := exprAlignment(e.Y, p, consts)
		switch e.Op.String() {
		case "+", "-":
			return minAlign(ax, ay)
		case "<<":
			if lit, ok := e.Y.(*ast.IntLit); ok {
				a := ax << uint(lit.Value&31)
				if a > MaxAlign || a <= 0 {
					return MaxAlign
				}
				return a
			}
			return 1
		case "*":
			a := ax * ay
			if a > MaxAlign {
				return MaxAlign
			}
			return a
		}
		return 1
	}
	return 1
}

// Input is an exported lattice value: the head offset fact for a handle
// entering a PPF or travelling on a channel. The code generator uses these
// to decide whether head_ptr hand-off code is needed at aggregate
// boundaries.
type Input struct {
	Known bool
	Off   int32
	Align int
	Min   int32
}

// Stats summarizes what SOAR resolved, for tests and compilation reports.
type Stats struct {
	Accesses       int // packet loads/stores seen
	ResolvedOffset int // accesses with a static offset
	ResolvedAlign  int // accesses with unknown offset but known alignment > 1
	EncapsResolved int // encap/decap sites with static incoming offset
	EncapsTotal    int

	// ChanInputs is the join over every producer's put for each channel
	// (keyed by qualified channel name).
	ChanInputs map[string]Input
	// EntryInputs is the resolved input fact per PPF (keyed by name).
	EntryInputs map[string]Input
}

// Analyze runs SOAR over the whole program and annotates packet-access and
// encapsulation instructions in place.
func Analyze(p *ir.Program) *Stats {
	return AnalyzeWithEntries(p, nil)
}

// AnalyzeWithEntries runs SOAR seeding specific PPF entry facts in
// addition to the rx entry (used on per-aggregate merged programs, whose
// entries' input offsets come from the whole-program channel analysis).
func AnalyzeWithEntries(p *ir.Program, entries map[string]Input) *Stats {
	a := &analyzer{
		prog:    p,
		inputs:  map[string]lat{},
		chans:   map[*types.Channel]lat{},
		notes:   map[*ir.Instr]lat{},
		visited: map[string]bool{},
	}
	// Rx delivers packets quadword-aligned at offset 0 (step 2/5 init).
	if p.Types.Entry != nil {
		a.inputs[p.Types.Entry.Name] = lat{st: known, off: 0, align: MaxAlign}
	}
	for name, in := range entries {
		if p.Funcs[name] == nil {
			continue
		}
		l := bottomLat(int32(in.Align))
		l.min = in.Min
		if in.Known {
			l = lat{st: known, off: in.Off, align: int32(in.Align), min: in.Off}
			if l.align == 0 {
				l.align = pow2Align(in.Off)
			}
		}
		a.inputs[name] = l
	}
	// Inter-procedural fixpoint over PPFs connected by channels.
	for iter := 0; iter < 64; iter++ {
		changed := false
		for _, fn := range p.PPFs() {
			in, ok := a.inputs[fn.Name]
			if !ok {
				continue // unreached so far
			}
			if a.analyzeFunc(fn, in) {
				changed = true
			}
		}
		// Push channel joins to consumers.
		for ch, l := range a.chans {
			if ch.Consumer == "tx" || ch.Consumer == "" {
				continue
			}
			cur, ok := a.inputs[ch.Consumer]
			// A PPF may consume several channels; join them all.
			nl := l
			if ok {
				nl = join(cur, l)
			}
			if !ok || !equal(nl, cur) {
				a.inputs[ch.Consumer] = nl
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Write annotations.
	st := &Stats{ChanInputs: map[string]Input{}, EntryInputs: map[string]Input{}}
	for ch, l := range a.chans {
		st.ChanInputs[ch.Name] = exportLat(l)
	}
	for name, l := range a.inputs {
		st.EntryInputs[name] = exportLat(l)
	}
	for _, name := range p.Order {
		fn := p.Funcs[name]
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpPktLoad, ir.OpPktStore:
					st.Accesses++
					l, ok := a.notes[in]
					if !ok {
						l = bottomLat(1)
					}
					apply(in, l)
					if l.st == known {
						st.ResolvedOffset++
					} else if l.align > 1 {
						st.ResolvedAlign++
					}
				case ir.OpEncap, ir.OpDecap:
					st.EncapsTotal++
					l, ok := a.notes[in]
					if !ok {
						l = bottomLat(1)
					}
					apply(in, l)
					if l.st == known {
						st.EncapsResolved++
					}
				}
			}
		}
	}
	return st
}

func exportLat(l lat) Input {
	return Input{Known: l.st == known, Off: l.off, Align: int(l.align), Min: l.min}
}

func apply(in *ir.Instr, l lat) {
	if l.st == known {
		in.StaticOff = l.off
	} else {
		in.StaticOff = ir.UnknownOff
	}
	in.StaticAlign = int(l.align)
	in.StaticMin = l.min
}

type analyzer struct {
	prog    *ir.Program
	inputs  map[string]lat         // PPF name -> input handle lattice
	chans   map[*types.Channel]lat // join over producers' puts
	notes   map[*ir.Instr]lat      // per-access/encap annotation (joined)
	visited map[string]bool
}

// analyzeFunc runs the intra-procedural forward analysis; returns true if
// any channel fact or note changed.
func (a *analyzer) analyzeFunc(fn *ir.Func, input lat) bool {
	changed := false
	// Block entry states: handle reg -> lat.
	entry := map[*ir.Block]map[ir.Reg]lat{}
	init := map[ir.Reg]lat{}
	for i, p := range fn.Params {
		if fn.ParamClasses[i] == ir.ClassHandle {
			init[p] = input
		}
	}
	entry[fn.Entry] = init
	work := []*ir.Block{fn.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		cur := map[ir.Reg]lat{}
		for r, l := range entry[b] {
			cur[r] = l
		}
		for _, in := range b.Instrs {
			if a.step(fn, in, cur) {
				changed = true
			}
		}
		t := b.Terminator()
		if t == nil {
			continue
		}
		for _, s := range t.Blocks {
			ns, ok := entry[s]
			if !ok {
				cp := map[ir.Reg]lat{}
				for r, l := range cur {
					cp[r] = l
				}
				entry[s] = cp
				work = append(work, s)
				continue
			}
			sChanged := false
			for r, l := range cur {
				nl := join(ns[r], l)
				if !equal(nl, ns[r]) {
					ns[r] = nl
					sChanged = true
				}
			}
			if sChanged {
				work = append(work, s)
			}
		}
	}
	return changed
}

// step applies the transfer function of one instruction to the handle
// state and records notes/channel facts. Returns true when a note or
// channel fact changed.
func (a *analyzer) step(fn *ir.Func, in *ir.Instr, cur map[ir.Reg]lat) bool {
	consts := a.prog.Types.Consts
	changed := false
	note := func(l lat) {
		old, ok := a.notes[in]
		nl := l
		if ok {
			nl = join(old, l)
		}
		if !ok || !equal(nl, old) {
			a.notes[in] = nl
			changed = true
		}
	}
	handleLat := func(r ir.Reg) lat {
		if l, ok := cur[r]; ok {
			return l
		}
		return bottomLat(1)
	}
	switch in.Op {
	case ir.OpMov:
		if fn.RegClasses[in.Dst[0]] == ir.ClassHandle {
			cur[in.Dst[0]] = handleLat(in.Args[0])
		}
	case ir.OpPktLoad, ir.OpPktStore:
		note(handleLat(in.Args[0]))
	case ir.OpDecap:
		src := handleLat(in.Args[0])
		note(src)
		from := a.prog.Types.ProtoByID[in.Imm]
		step := int32(from.FixedSize)
		if step < 0 {
			step = int32(from.HeaderMin)
		}
		var out lat
		switch {
		case src.st == known && from.FixedSize >= 0:
			out = knownLat(src.off + int32(from.FixedSize))
			out.align = pow2Align(out.off)
		default:
			out = bottomLat(minAlign(src.align, demuxAlignment(from, consts)))
			out.min = src.min + step
		}
		cur[in.Dst[0]] = out
	case ir.OpEncap:
		src := handleLat(in.Args[0])
		note(src)
		size := in.Proto.FixedSize
		if size < 0 {
			size = in.Proto.HeaderMin
		}
		var out lat
		if src.st == known {
			// The offset may go negative (front growth): the executors
			// keep packet bytes in place and move the head into the
			// buffer headroom, so codegen's BufHeadroom+off addressing
			// stays exact. The host interpreter instead re-bases the
			// packet start on growth, so any other live handle's offset
			// is no longer trustworthy — invalidate them.
			no := src.off - int32(size)
			if no < 0 {
				for r := range cur {
					if r != in.Args[0] {
						cur[r] = bottomLat(1)
					}
				}
			}
			out = knownLat(no)
		} else {
			out = bottomLat(minAlign(src.align, pow2Align(int32(size))))
			out.min = src.min - int32(size)
			if out.min < 0 {
				out.min = 0
			}
		}
		cur[in.Dst[0]] = out
	case ir.OpPktCopy:
		cur[in.Dst[0]] = handleLat(in.Args[0])
	case ir.OpPktCreate:
		cur[in.Dst[0]] = lat{st: known, off: 0, align: MaxAlign, min: 0}
	case ir.OpChanPut:
		l := handleLat(in.Args[0])
		old, ok := a.chans[in.Chan]
		nl := l
		if ok {
			nl = join(old, l)
		}
		if !ok || !equal(nl, old) {
			a.chans[in.Chan] = nl
			changed = true
		}
	case ir.OpCall:
		// A callee may encap through a passed handle (front growth);
		// conservatively drop facts for handle arguments.
		for _, r := range in.Args {
			if r != ir.NoReg && int(r) < len(fn.RegClasses) && fn.RegClasses[r] == ir.ClassHandle {
				cur[r] = bottomLat(1)
			}
		}
		if len(in.Dst) > 0 && fn.RegClasses[in.Dst[0]] == ir.ClassHandle {
			cur[in.Dst[0]] = bottomLat(1)
		}
	}
	return changed
}
