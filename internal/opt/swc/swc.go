// Package swc implements the delayed-update software-controlled cache of
// §5.2. The IXP's microengines have no hardware caches, but each ME has a
// 16-entry CAM and fast Local Memory; Shangri-La caches hot, rarely
// written, unprotected global structures there, checking the home location
// for updates only every check_limit packets (Figure 8). Stale reads cause
// at most bounded packet-delivery errors, which network protocols
// tolerate — that is the delayed-update trade.
//
// Candidate selection follows the paper: frequently read structures with
// high estimated hit rates, infrequently (or never) written on the data
// path, and not protected by critical sections (a cached copy of a
// lock-protected structure would break the lock's guarantees). The
// check-rate comes from Equation 2:
//
//	r_load_check = r_store × r_load / r_error
//
// so fewer expected stores or loads lower the required check rate.
//
// The transform rewrites each cacheable load in ME code into
//
//	hit, v… = cam_lookup(key)            (OpCacheLookup)
//	if !hit { v… = load home; cam_fill } (original load + OpCacheFill)
//
// and prepends the per-packet delayed-update check to the aggregate entry:
// every check_limit packets the ME reads the structure's update flag
// (written by the store path, which runs on the XScale) and flushes its
// cached lines when set.
package swc

import (
	"fmt"
	"sort"

	"shangrila/internal/aggregate"
	"shangrila/internal/baker/types"
	"shangrila/internal/ir"
	"shangrila/internal/profiler"
)

// Config tunes candidate selection.
type Config struct {
	// MinReadsPerPacket: structures read less often than this are not
	// worth caching.
	MinReadsPerPacket float64
	// MinHitRate is the minimum estimated 16-entry hit rate.
	MinHitRate float64
	// MaxWriteRatio is the maximum writes/reads ratio.
	MaxWriteRatio float64
	// ErrorRate is the user-specified maximum tolerable per-packet
	// delivery error rate (r_error in Equation 2).
	ErrorRate float64
	// MaxLineWords bounds cacheable access width (a CAM entry maps one
	// Local-Memory line; 8 words = 32 bytes).
	MaxLineWords int
}

// DefaultConfig mirrors the paper's setting: tolerate one delivery error
// per million packets.
func DefaultConfig() Config {
	return Config{
		MinReadsPerPacket: 0.25,
		MinHitRate:        0.70,
		MaxWriteRatio:     0.05,
		ErrorRate:         1e-6,
		MaxLineWords:      8,
	}
}

// CheckRate implements Equation 2: the minimum per-packet rate of home-
// location update checks given expected per-packet store and load rates
// and the tolerated error rate.
func CheckRate(rStore, rLoad, rError float64) float64 {
	if rError <= 0 {
		return 1
	}
	return rStore * rLoad / rError
}

// CheckLimit converts a check rate into the "check every N packets"
// counter limit used by the generated code, clamped to a sane range.
func CheckLimit(rate float64) uint32 {
	if rate >= 1 {
		return 1
	}
	if rate <= 0 {
		return 1 << 20
	}
	n := uint32(1 / rate)
	if n < 1 {
		n = 1
	}
	if n > 1<<20 {
		n = 1 << 20
	}
	return n
}

// Candidate is one global selected for software caching.
type Candidate struct {
	Global     *types.Global
	Flag       *types.Global // scratch word set by the store path
	CheckLimit uint32
	HitRate    float64
}

// Stats reports the transform's effect.
type Stats struct {
	Candidates   int
	LoadsCached  int
	StoresTagged int
}

// SelectCandidates picks cacheable globals from profile statistics.
func SelectCandidates(prog *ir.Program, stats *profiler.Stats, cfg Config) []*Candidate {
	var names []string
	for name := range prog.Types.Globals {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []*Candidate
	for _, name := range names {
		g := prog.Types.Globals[name]
		if g.Synthetic {
			continue
		}
		gs := stats.Globals[name]
		if gs == nil || stats.Packets == 0 {
			continue
		}
		reads := float64(gs.Reads) / float64(stats.Packets)
		writes := float64(gs.Writes) / float64(stats.Packets)
		if reads < cfg.MinReadsPerPacket {
			continue
		}
		if gs.Reads > 0 && float64(gs.Writes)/float64(gs.Reads) > cfg.MaxWriteRatio {
			continue
		}
		if gs.InCritical {
			continue // lock-protected: caching would break the protocol
		}
		hr := gs.EstHitRate()
		if hr < cfg.MinHitRate {
			continue
		}
		limit := CheckLimit(CheckRate(writes, reads, cfg.ErrorRate))
		out = append(out, &Candidate{Global: g, CheckLimit: limit, HitRate: hr})
	}
	return out
}

// Apply installs the software cache: synthesizes the update flag and
// counter globals, rewrites ME loads, prepends delayed-update checks, and
// tags every store path (control/init/XScale code) with flag updates.
func Apply(prog *ir.Program, merged []*aggregate.Merged, cands []*Candidate, cfg Config) (*Stats, error) {
	st := &Stats{Candidates: len(cands)}
	if len(cands) == 0 {
		return st, nil
	}
	// Synthesize flag globals (shared, Scratch) and the per-ME packet
	// counter (Local Memory).
	for _, c := range cands {
		c.Flag = &types.Global{
			Name:      c.Global.Name + "$upd",
			Type:      types.UintType,
			Module:    c.Global.Module,
			Space:     types.SpaceScratch,
			Synthetic: true,
		}
		if _, dup := prog.Types.Globals[c.Flag.Name]; dup {
			return nil, fmt.Errorf("swc: synthetic global %s already exists", c.Flag.Name)
		}
		prog.Types.Globals[c.Flag.Name] = c.Flag
	}
	counter := &types.Global{
		Name:      "$swc_count",
		Type:      types.UintType,
		Space:     types.SpaceLocal,
		Synthetic: true,
	}
	prog.Types.Globals[counter.Name] = counter

	minLimit := cands[0].CheckLimit
	for _, c := range cands {
		if c.CheckLimit < minLimit {
			minLimit = c.CheckLimit
		}
	}

	// Store-path instrumentation applies to every function that can write
	// a candidate outside the MEs: control, init, and XScale-aggregate
	// PPFs in the base program. (ME code never writes candidates: the
	// write-ratio filter already guaranteed the data path only reads.)
	for _, name := range prog.Order {
		fn := prog.Funcs[name]
		st.StoresTagged += tagStores(fn, cands)
	}
	for _, m := range merged {
		if m.Agg.Target != aggregate.TargetME {
			for _, e := range m.Entries {
				st.StoresTagged += tagStores(e.Func, cands)
			}
			continue
		}
		for _, e := range m.Entries {
			st.LoadsCached += rewriteLoads(e.Func, cands, cfg)
			prependCheck(e.Func, cands, counter, minLimit)
		}
	}
	return st, nil
}

// tagStores appends "flag <- 1" after every store to a candidate.
func tagStores(fn *ir.Func, cands []*Candidate) int {
	byGlobal := map[*types.Global]*Candidate{}
	for _, c := range cands {
		byGlobal[c.Global] = c
	}
	n := 0
	for _, b := range fn.Blocks {
		var out []*ir.Instr
		for _, in := range b.Instrs {
			out = append(out, in)
			if in.Op != ir.OpStore {
				continue
			}
			c := byGlobal[in.Global]
			if c == nil {
				continue
			}
			one := fn.NewReg(ir.ClassWord)
			out = append(out,
				&ir.Instr{Op: ir.OpConst, Pos: in.Pos, Dst: []ir.Reg{one}, Imm: 1},
				&ir.Instr{Op: ir.OpStore, Pos: in.Pos, Global: c.Flag,
					Width: 4, Args: []ir.Reg{ir.NoReg, one}})
			n++
		}
		b.Instrs = out
	}
	return n
}

// rewriteLoads converts candidate loads into lookup/miss-fill sequences.
func rewriteLoads(fn *ir.Func, cands []*Candidate, cfg Config) int {
	byGlobal := map[*types.Global]*Candidate{}
	for _, c := range cands {
		byGlobal[c.Global] = c
	}
	n := 0
	// Collect first (the rewrite splits blocks).
	type site struct {
		b   *ir.Block
		idx int
	}
	var sites []site
	for _, b := range fn.Blocks {
		for i, in := range b.Instrs {
			if in.Op == ir.OpLoad && byGlobal[in.Global] != nil && len(in.Dst) <= cfg.MaxLineWords {
				sites = append(sites, site{b: b, idx: i})
			}
		}
	}
	// Rewrite back-to-front per block so indices stay valid.
	sort.Slice(sites, func(i, j int) bool {
		if sites[i].b != sites[j].b {
			return sites[i].b.ID < sites[j].b.ID
		}
		return sites[i].idx > sites[j].idx
	})
	for _, s := range sites {
		rewriteOneLoad(fn, s.b, s.idx)
		n++
	}
	fn.ComputeCFG()
	return n
}

// rewriteOneLoad splits the block at the load:
//
//	  ... hit, t… = cachelookup; condbr hit -> bHit, bMiss
//	bMiss: d… = load (original); cachefill; br bJoin
//	bHit:  d… = mov t…; br bJoin
//	bJoin: rest
func rewriteOneLoad(fn *ir.Func, b *ir.Block, idx int) {
	load := b.Instrs[idx]
	rest := append([]*ir.Instr(nil), b.Instrs[idx+1:]...)

	hit := fn.NewReg(ir.ClassWord)
	tmps := make([]ir.Reg, len(load.Dst))
	for i := range tmps {
		tmps[i] = fn.NewReg(ir.ClassWord)
	}
	bMiss := fn.NewBlock()
	bHit := fn.NewBlock()
	bJoin := fn.NewBlock()

	lookup := &ir.Instr{
		Op:     ir.OpCacheLookup,
		Pos:    load.Pos,
		Dst:    append([]ir.Reg{hit}, tmps...),
		Args:   load.Args, // index register (possibly NoReg)
		Global: load.Global,
		Off:    load.Off,
		Width:  load.Width,
	}
	b.Instrs = append(b.Instrs[:idx:idx], lookup,
		&ir.Instr{Op: ir.OpCondBr, Pos: load.Pos, Args: []ir.Reg{hit},
			Blocks: []*ir.Block{bHit, bMiss}})

	fill := &ir.Instr{
		Op:     ir.OpCacheFill,
		Pos:    load.Pos,
		Args:   append(append([]ir.Reg{}, load.Args...), load.Dst...),
		Global: load.Global,
		Off:    load.Off,
		Width:  load.Width,
	}
	bMiss.Instrs = append(bMiss.Instrs, load, fill,
		&ir.Instr{Op: ir.OpBr, Pos: load.Pos, Blocks: []*ir.Block{bJoin}})

	for i, d := range load.Dst {
		bHit.Instrs = append(bHit.Instrs, &ir.Instr{
			Op: ir.OpMov, Pos: load.Pos, Dst: []ir.Reg{d}, Args: []ir.Reg{tmps[i]}})
	}
	bHit.Instrs = append(bHit.Instrs,
		&ir.Instr{Op: ir.OpBr, Pos: load.Pos, Blocks: []*ir.Block{bJoin}})

	bJoin.Instrs = rest
}

// prependCheck inserts the Figure 8 delayed-update check at the entry:
//
//	count++
//	if count > limit { count = 0; for each cand: if flag { flush; flag=0 } }
func prependCheck(fn *ir.Func, cands []*Candidate, counter *types.Global, limit uint32) {
	entry := fn.Entry
	rest := append([]*ir.Instr(nil), entry.Instrs...)

	bCheck := fn.NewBlock()
	bBody := fn.NewBlock()
	bBody.Instrs = rest

	cnt := fn.NewReg(ir.ClassWord)
	one := fn.NewReg(ir.ClassWord)
	cnt1 := fn.NewReg(ir.ClassWord)
	lim := fn.NewReg(ir.ClassWord)
	cond := fn.NewReg(ir.ClassWord)
	entry.Instrs = []*ir.Instr{
		{Op: ir.OpLoad, Global: counter, Width: 4, Dst: []ir.Reg{cnt}, Args: []ir.Reg{ir.NoReg}},
		{Op: ir.OpConst, Dst: []ir.Reg{one}, Imm: 1},
		{Op: ir.OpAdd, Dst: []ir.Reg{cnt1}, Args: []ir.Reg{cnt, one}},
		{Op: ir.OpStore, Global: counter, Width: 4, Args: []ir.Reg{ir.NoReg, cnt1}},
		{Op: ir.OpConst, Dst: []ir.Reg{lim}, Imm: uint64(limit)},
		{Op: ir.OpLtU, Dst: []ir.Reg{cond}, Args: []ir.Reg{lim, cnt1}}, // limit < count
		{Op: ir.OpCondBr, Args: []ir.Reg{cond}, Blocks: []*ir.Block{bCheck, bBody}},
	}

	// bCheck: reset counter, test each candidate's flag, flush when set.
	zero := fn.NewReg(ir.ClassWord)
	bCheck.Instrs = append(bCheck.Instrs,
		&ir.Instr{Op: ir.OpConst, Dst: []ir.Reg{zero}},
		&ir.Instr{Op: ir.OpStore, Global: counter, Width: 4, Args: []ir.Reg{ir.NoReg, zero}})
	cur := bCheck
	for _, c := range cands {
		flag := fn.NewReg(ir.ClassWord)
		bFlush := fn.NewBlock()
		bNext := fn.NewBlock()
		cur.Instrs = append(cur.Instrs,
			&ir.Instr{Op: ir.OpLoad, Global: c.Flag, Width: 4, Dst: []ir.Reg{flag}, Args: []ir.Reg{ir.NoReg}},
			&ir.Instr{Op: ir.OpCondBr, Args: []ir.Reg{flag}, Blocks: []*ir.Block{bFlush, bNext}})
		z := fn.NewReg(ir.ClassWord)
		bFlush.Instrs = append(bFlush.Instrs,
			&ir.Instr{Op: ir.OpCacheFlush, Global: c.Global},
			&ir.Instr{Op: ir.OpConst, Dst: []ir.Reg{z}},
			&ir.Instr{Op: ir.OpStore, Global: c.Flag, Width: 4, Args: []ir.Reg{ir.NoReg, z}},
			&ir.Instr{Op: ir.OpBr, Blocks: []*ir.Block{bNext}})
		cur = bNext
	}
	cur.Instrs = append(cur.Instrs, &ir.Instr{Op: ir.OpBr, Blocks: []*ir.Block{bBody}})
	fn.ComputeCFG()
}
