// Package swc implements the delayed-update software-controlled cache of
// §5.2. The IXP's microengines have no hardware caches, but each ME has a
// 16-entry CAM and fast Local Memory; Shangri-La caches hot, rarely
// written, unprotected global structures there, checking the home location
// for updates only every check_limit packets (Figure 8). Stale reads cause
// at most bounded packet-delivery errors, which network protocols
// tolerate — that is the delayed-update trade.
//
// Candidate selection follows the paper: frequently read structures with
// high estimated hit rates, infrequently (or never) written on the data
// path, and not protected by critical sections (a cached copy of a
// lock-protected structure would break the lock's guarantees). The
// check-rate comes from Equation 2:
//
//	r_load_check = r_store × r_load / r_error
//
// so fewer expected stores or loads lower the required check rate.
//
// The transform rewrites each cacheable load in ME code into
//
//	hit, ent, v… = cam_lookup(key)            (OpCacheLookup)
//	if !hit { v… = load home; cam_fill ent } (original load + OpCacheFill)
//
// and prepends the per-packet delayed-update check to the aggregate entry:
// every check_limit packets the ME compares the structure's shared update
// version (bumped by the store path, which runs on the XScale) against the
// version it last observed — kept in per-ME Local Memory — and flushes its
// cached lines when they differ.
//
// The version/seen split matters with several MEs running the same
// aggregate: a shared boolean flag that a checking ME clears after
// flushing would hide the update from every other ME that had not checked
// yet. With a monotonic version, no ME ever writes shared state on the
// check path, so each ME independently notices every update.
package swc

import (
	"fmt"
	"sort"

	"shangrila/internal/aggregate"
	"shangrila/internal/baker/types"
	"shangrila/internal/ir"
	"shangrila/internal/profiler"
)

// Config tunes candidate selection.
type Config struct {
	// MinReadsPerPacket: structures read less often than this are not
	// worth caching.
	MinReadsPerPacket float64
	// MinHitRate is the minimum estimated 16-entry hit rate.
	MinHitRate float64
	// MaxWriteRatio is the maximum writes/reads ratio.
	MaxWriteRatio float64
	// ErrorRate is the user-specified maximum tolerable per-packet
	// delivery error rate (r_error in Equation 2).
	ErrorRate float64
	// MaxLineWords bounds cacheable access width (a CAM entry maps one
	// Local-Memory line; 8 words = 32 bytes).
	MaxLineWords int
	// MaxCheckLimit, when non-zero, caps every candidate's Equation-2
	// check limit. Profiles with no observed data-path writes drive the
	// required check rate to zero (limit 2^20 packets), which is correct
	// for a static table but makes a control-plane update invisible for
	// the whole window; churn experiments bound the staleness by capping
	// the limit.
	MaxCheckLimit uint32
}

// DefaultConfig mirrors the paper's setting: tolerate one delivery error
// per million packets.
func DefaultConfig() Config {
	return Config{
		MinReadsPerPacket: 0.25,
		MinHitRate:        0.70,
		MaxWriteRatio:     0.05,
		ErrorRate:         1e-6,
		MaxLineWords:      8,
	}
}

// CheckRate implements Equation 2: the minimum per-packet rate of home-
// location update checks given expected per-packet store and load rates
// and the tolerated error rate.
func CheckRate(rStore, rLoad, rError float64) float64 {
	if rError <= 0 {
		return 1
	}
	return rStore * rLoad / rError
}

// CheckLimit converts a check rate into the "check every N packets"
// counter limit used by the generated code, clamped to a sane range.
func CheckLimit(rate float64) uint32 {
	if rate >= 1 {
		return 1
	}
	if rate <= 0 {
		return 1 << 20
	}
	n := uint32(1 / rate)
	if n < 1 {
		n = 1
	}
	if n > 1<<20 {
		n = 1 << 20
	}
	return n
}

// Candidate is one global selected for software caching.
type Candidate struct {
	Global *types.Global
	// Flag is the shared scratch word holding the structure's update
	// version; the store path increments it.
	Flag *types.Global
	// Seen is the per-ME Local-Memory word holding the version this ME
	// last flushed against.
	Seen       *types.Global
	CheckLimit uint32
	HitRate    float64
}

// Stats reports the transform's effect.
type Stats struct {
	Candidates   int
	LoadsCached  int
	StoresTagged int
}

// SelectCandidates picks cacheable globals from profile statistics.
func SelectCandidates(prog *ir.Program, stats *profiler.Stats, cfg Config) []*Candidate {
	var names []string
	for name := range prog.Types.Globals {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []*Candidate
	for _, name := range names {
		g := prog.Types.Globals[name]
		if g.Synthetic {
			continue
		}
		gs := stats.Globals[name]
		if gs == nil || stats.Packets == 0 {
			continue
		}
		reads := float64(gs.Reads) / float64(stats.Packets)
		writes := float64(gs.Writes) / float64(stats.Packets)
		if reads < cfg.MinReadsPerPacket {
			continue
		}
		if gs.Reads > 0 && float64(gs.Writes)/float64(gs.Reads) > cfg.MaxWriteRatio {
			continue
		}
		if gs.InCritical {
			continue // lock-protected: caching would break the protocol
		}
		hr := gs.EstHitRate()
		if hr < cfg.MinHitRate {
			continue
		}
		limit := CheckLimit(CheckRate(writes, reads, cfg.ErrorRate))
		if cfg.MaxCheckLimit != 0 && limit > cfg.MaxCheckLimit {
			limit = cfg.MaxCheckLimit
		}
		out = append(out, &Candidate{Global: g, CheckLimit: limit, HitRate: hr})
	}
	return out
}

// synthGlobal returns the named synthetic global, creating it on first
// use. Re-applying SWC over a shared types.Program (an incremental
// compile session snapshots IR with CloneProgram, which shares Types)
// must reuse the words it synthesized before — their identity is the
// contract between already-generated store paths and new check code. A
// non-synthetic name collision is still an error.
func synthGlobal(prog *ir.Program, name, module string, space types.MemSpace) (*types.Global, error) {
	if g := prog.Types.Globals[name]; g != nil {
		if !g.Synthetic || g.Space != space {
			return nil, fmt.Errorf("swc: global %s already exists", name)
		}
		return g, nil
	}
	g := &types.Global{
		Name:      name,
		Type:      types.UintType,
		Module:    module,
		Space:     space,
		Synthetic: true,
	}
	prog.Types.Globals[name] = g
	return g, nil
}

// Apply installs the software cache: synthesizes the update version and
// counter globals, rewrites ME loads, prepends delayed-update checks, and
// tags every store path (control/init/XScale code) with version bumps.
func Apply(prog *ir.Program, merged []*aggregate.Merged, cands []*Candidate, cfg Config) (*Stats, error) {
	st := &Stats{Candidates: len(cands)}
	if len(cands) == 0 {
		return st, nil
	}
	// Synthesize the shared version words (Scratch), the per-ME seen
	// words and packet counter (Local Memory).
	var err error
	for _, c := range cands {
		if c.Flag, err = synthGlobal(prog, c.Global.Name+"$upd", c.Global.Module, types.SpaceScratch); err != nil {
			return nil, err
		}
		if c.Seen, err = synthGlobal(prog, c.Global.Name+"$seen", c.Global.Module, types.SpaceLocal); err != nil {
			return nil, err
		}
	}
	counter, err := synthGlobal(prog, "$swc_count", "", types.SpaceLocal)
	if err != nil {
		return nil, err
	}

	minLimit := cands[0].CheckLimit
	for _, c := range cands {
		if c.CheckLimit < minLimit {
			minLimit = c.CheckLimit
		}
	}

	// Store-path instrumentation applies to every function that can write
	// a candidate outside the MEs: control, init, and XScale-aggregate
	// PPFs in the base program. (ME code never writes candidates: the
	// write-ratio filter already guaranteed the data path only reads.)
	for _, name := range prog.Order {
		fn := prog.Funcs[name]
		st.StoresTagged += tagStores(fn, cands)
	}
	for _, m := range merged {
		if m.Agg.Target != aggregate.TargetME {
			for _, e := range m.Entries {
				st.StoresTagged += tagStores(e.Func, cands)
			}
			continue
		}
		for _, e := range m.Entries {
			st.LoadsCached += rewriteLoads(e.Func, cands, cfg)
			prependCheck(e.Func, cands, counter, minLimit)
		}
	}
	return st, nil
}

// tagStores appends "flag <- flag + 1" after every store to a candidate:
// the store path bumps the structure's update version. Store paths run on
// the XScale (controls execute run-to-completion at a single simulated
// instant), so the read-modify-write cannot tear; no ME ever writes the
// version, so checking MEs cannot race each other into missing an update.
func tagStores(fn *ir.Func, cands []*Candidate) int {
	byGlobal := map[*types.Global]*Candidate{}
	for _, c := range cands {
		byGlobal[c.Global] = c
	}
	n := 0
	for _, b := range fn.Blocks {
		var out []*ir.Instr
		for _, in := range b.Instrs {
			out = append(out, in)
			if in.Op != ir.OpStore {
				continue
			}
			c := byGlobal[in.Global]
			if c == nil {
				continue
			}
			ver := fn.NewReg(ir.ClassWord)
			one := fn.NewReg(ir.ClassWord)
			ver1 := fn.NewReg(ir.ClassWord)
			out = append(out,
				&ir.Instr{Op: ir.OpLoad, Pos: in.Pos, Global: c.Flag,
					Width: 4, Dst: []ir.Reg{ver}, Args: []ir.Reg{ir.NoReg}},
				&ir.Instr{Op: ir.OpConst, Pos: in.Pos, Dst: []ir.Reg{one}, Imm: 1},
				&ir.Instr{Op: ir.OpAdd, Pos: in.Pos, Dst: []ir.Reg{ver1}, Args: []ir.Reg{ver, one}},
				&ir.Instr{Op: ir.OpStore, Pos: in.Pos, Global: c.Flag,
					Width: 4, Args: []ir.Reg{ir.NoReg, ver1}})
			n++
		}
		b.Instrs = out
	}
	return n
}

// rewriteLoads converts candidate loads into lookup/miss-fill sequences.
func rewriteLoads(fn *ir.Func, cands []*Candidate, cfg Config) int {
	byGlobal := map[*types.Global]*Candidate{}
	for _, c := range cands {
		byGlobal[c.Global] = c
	}
	n := 0
	// Collect first (the rewrite splits blocks).
	type site struct {
		b   *ir.Block
		idx int
	}
	var sites []site
	for _, b := range fn.Blocks {
		for i, in := range b.Instrs {
			if in.Op == ir.OpLoad && byGlobal[in.Global] != nil && len(in.Dst) <= cfg.MaxLineWords {
				sites = append(sites, site{b: b, idx: i})
			}
		}
	}
	// Rewrite back-to-front per block so indices stay valid.
	sort.Slice(sites, func(i, j int) bool {
		if sites[i].b != sites[j].b {
			return sites[i].b.ID < sites[j].b.ID
		}
		return sites[i].idx > sites[j].idx
	})
	for _, s := range sites {
		rewriteOneLoad(fn, s.b, s.idx)
		n++
	}
	fn.ComputeCFG()
	return n
}

// rewriteOneLoad splits the block at the load:
//
//	  ... hit, ent, t… = cachelookup; condbr hit -> bHit, bMiss
//	bMiss: d… = load (original); cachefill ent; br bJoin
//	bHit:  d… = mov t…; br bJoin
//	bJoin: rest
//
// The CAM entry register ent (the matching entry on a hit, the LRU
// victim on a miss) flows from each lookup into its own fill: the tag
// write and the line write must land on the same entry, and a global
// can be cached at several sites of one function, so the entry cannot
// be resolved per global at codegen time.
func rewriteOneLoad(fn *ir.Func, b *ir.Block, idx int) {
	load := b.Instrs[idx]
	rest := append([]*ir.Instr(nil), b.Instrs[idx+1:]...)

	hit := fn.NewReg(ir.ClassWord)
	ent := fn.NewReg(ir.ClassWord)
	tmps := make([]ir.Reg, len(load.Dst))
	for i := range tmps {
		tmps[i] = fn.NewReg(ir.ClassWord)
	}
	bMiss := fn.NewBlock()
	bHit := fn.NewBlock()
	bJoin := fn.NewBlock()

	lookup := &ir.Instr{
		Op:     ir.OpCacheLookup,
		Pos:    load.Pos,
		Dst:    append([]ir.Reg{hit, ent}, tmps...),
		Args:   load.Args, // index register (possibly NoReg)
		Global: load.Global,
		Off:    load.Off,
		Width:  load.Width,
	}
	b.Instrs = append(b.Instrs[:idx:idx], lookup,
		&ir.Instr{Op: ir.OpCondBr, Pos: load.Pos, Args: []ir.Reg{hit},
			Blocks: []*ir.Block{bHit, bMiss}})

	idxReg := ir.NoReg
	if len(load.Args) > 0 {
		idxReg = load.Args[0]
	}
	fill := &ir.Instr{
		Op:     ir.OpCacheFill,
		Pos:    load.Pos,
		Args:   append([]ir.Reg{ent, idxReg}, load.Dst...),
		Global: load.Global,
		Off:    load.Off,
		Width:  load.Width,
	}
	bMiss.Instrs = append(bMiss.Instrs, load, fill,
		&ir.Instr{Op: ir.OpBr, Pos: load.Pos, Blocks: []*ir.Block{bJoin}})

	for i, d := range load.Dst {
		bHit.Instrs = append(bHit.Instrs, &ir.Instr{
			Op: ir.OpMov, Pos: load.Pos, Dst: []ir.Reg{d}, Args: []ir.Reg{tmps[i]}})
	}
	bHit.Instrs = append(bHit.Instrs,
		&ir.Instr{Op: ir.OpBr, Pos: load.Pos, Blocks: []*ir.Block{bJoin}})

	bJoin.Instrs = rest
}

// prependCheck inserts the Figure 8 delayed-update check at the entry:
//
//	count++
//	if count > limit {
//	    count = 0
//	    for each cand: if ver != seen { flush; seen = ver }
//	}
//
// seen lives in per-ME Local Memory, so every ME tracks the shared
// version independently and the check path writes no shared state.
func prependCheck(fn *ir.Func, cands []*Candidate, counter *types.Global, limit uint32) {
	entry := fn.Entry
	rest := append([]*ir.Instr(nil), entry.Instrs...)

	bCheck := fn.NewBlock()
	bBody := fn.NewBlock()
	bBody.Instrs = rest

	cnt := fn.NewReg(ir.ClassWord)
	one := fn.NewReg(ir.ClassWord)
	cnt1 := fn.NewReg(ir.ClassWord)
	lim := fn.NewReg(ir.ClassWord)
	cond := fn.NewReg(ir.ClassWord)
	entry.Instrs = []*ir.Instr{
		{Op: ir.OpLoad, Global: counter, Width: 4, Dst: []ir.Reg{cnt}, Args: []ir.Reg{ir.NoReg}},
		{Op: ir.OpConst, Dst: []ir.Reg{one}, Imm: 1},
		{Op: ir.OpAdd, Dst: []ir.Reg{cnt1}, Args: []ir.Reg{cnt, one}},
		{Op: ir.OpStore, Global: counter, Width: 4, Args: []ir.Reg{ir.NoReg, cnt1}},
		{Op: ir.OpConst, Dst: []ir.Reg{lim}, Imm: uint64(limit)},
		{Op: ir.OpLtU, Dst: []ir.Reg{cond}, Args: []ir.Reg{lim, cnt1}}, // limit < count
		{Op: ir.OpCondBr, Args: []ir.Reg{cond}, Blocks: []*ir.Block{bCheck, bBody}},
	}

	// bCheck: reset counter, test each candidate's flag, flush when set.
	zero := fn.NewReg(ir.ClassWord)
	bCheck.Instrs = append(bCheck.Instrs,
		&ir.Instr{Op: ir.OpConst, Dst: []ir.Reg{zero}},
		&ir.Instr{Op: ir.OpStore, Global: counter, Width: 4, Args: []ir.Reg{ir.NoReg, zero}})
	cur := bCheck
	for _, c := range cands {
		ver := fn.NewReg(ir.ClassWord)
		seen := fn.NewReg(ir.ClassWord)
		stale := fn.NewReg(ir.ClassWord)
		bFlush := fn.NewBlock()
		bNext := fn.NewBlock()
		cur.Instrs = append(cur.Instrs,
			&ir.Instr{Op: ir.OpLoad, Global: c.Flag, Width: 4, Dst: []ir.Reg{ver}, Args: []ir.Reg{ir.NoReg}},
			&ir.Instr{Op: ir.OpLoad, Global: c.Seen, Width: 4, Dst: []ir.Reg{seen}, Args: []ir.Reg{ir.NoReg}},
			&ir.Instr{Op: ir.OpNe, Dst: []ir.Reg{stale}, Args: []ir.Reg{ver, seen}},
			&ir.Instr{Op: ir.OpCondBr, Args: []ir.Reg{stale}, Blocks: []*ir.Block{bFlush, bNext}})
		bFlush.Instrs = append(bFlush.Instrs,
			&ir.Instr{Op: ir.OpCacheFlush, Global: c.Global},
			&ir.Instr{Op: ir.OpStore, Global: c.Seen, Width: 4, Args: []ir.Reg{ir.NoReg, ver}},
			&ir.Instr{Op: ir.OpBr, Blocks: []*ir.Block{bNext}})
		cur = bNext
	}
	cur.Instrs = append(cur.Instrs, &ir.Instr{Op: ir.OpBr, Blocks: []*ir.Block{bBody}})
	fn.ComputeCFG()
}
