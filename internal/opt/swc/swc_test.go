package swc_test

import (
	"testing"

	"shangrila/internal/aggregate"
	"shangrila/internal/baker/types"
	"shangrila/internal/ir"
	"shangrila/internal/opt/swc"
	"shangrila/internal/packet"
	"shangrila/internal/profiler"
	"shangrila/internal/testutil"
	"shangrila/internal/trace"
	"shangrila/internal/workload"
)

func TestCheckRateEquation2(t *testing.T) {
	// r_check = r_store * r_load / r_error.
	if got := swc.CheckRate(0.001, 2.0, 1e-6); got < 1999.99 || got > 2000.01 {
		t.Errorf("CheckRate = %v, want 2000", got)
	}
	// Fewer stores lower the required check rate.
	lo := swc.CheckRate(0.0001, 2.0, 1e-6)
	hi := swc.CheckRate(0.01, 2.0, 1e-6)
	if lo >= hi {
		t.Errorf("check rate must grow with store rate: %v vs %v", lo, hi)
	}
	if swc.CheckLimit(2000) != 1 {
		t.Errorf("rate >= 1 checks every packet")
	}
	if got := swc.CheckLimit(0.001); got != 1000 {
		t.Errorf("CheckLimit(0.001) = %d, want 1000", got)
	}
	if got := swc.CheckLimit(0); got != 1<<20 {
		t.Errorf("CheckLimit(0) = %d, want max", got)
	}
}

const appSrc = `
protocol ether { dst_hi:16; dst_lo:32; src_hi:16; src_lo:32; type:16; demux { 14 }; }
protocol ipv4 { ver:4; hlen:4; tos:8; length:16; id:16; flags:3; frag:13;
                ttl:8; proto:8; cksum:16; src:32; dst:32; demux { hlen << 2 }; }
metadata { rx_port:16; next_hop:16; }

module app {
	struct Rt { dst:uint; nh:uint; }
	Rt table[16];
	uint locked_tbl[16];
	uint scratchpad[16];
	channel out : ether;
	ppf fwd(ether ph) {
		uint key = ph->dst_lo;
		uint nh = 0;
		for (uint i = 0; i < 16; i++) {
			if (table[i].dst == key) { nh = table[i].nh; break; }
		}
		critical {
			locked_tbl[0] = locked_tbl[0] + 1;  // lock-protected: never cached
		}
		scratchpad[key & 15] = nh;              // written per packet: never cached
		ph->meta.next_hop = nh;
		channel_put(out, ph);
	}
	control func add_route(uint idx, uint dst, uint nh) {
		table[idx].dst = dst; table[idx].nh = nh;
	}
	wiring { rx -> fwd; out -> tx; }
}
`

func gen(tp *types.Program) []*packet.Packet {
	r := workload.NewSource(21)
	var out []*packet.Packet
	for i := 0; i < 100; i++ {
		p, err := trace.Build([]trace.Layer{
			{Proto: tp.Protocols["ether"], Fields: map[string]uint32{
				"type": 0x0800, "dst_lo": uint32(r.Intn(4))}},
		}, 64, tp.Metadata.Bytes)
		if err != nil {
			panic(err)
		}
		out = append(out, p)
	}
	return out
}

var controls = [][]any{
	{"app.add_route", 0, 0, 5},
	{"app.add_route", 1, 1, 6},
	{"app.add_route", 2, 2, 7},
}

func setup(t *testing.T, prog *ir.Program) (*profiler.Stats, *aggregate.Plan, []*aggregate.Merged) {
	t.Helper()
	s, err := profiler.NewSession(prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range controls {
		args := []uint32{}
		for _, a := range c[1:] {
			args = append(args, uint32(a.(int)))
		}
		if err := s.Control(c[0].(string), args...); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := profiler.Profile(prog, gen(prog.Types))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := aggregate.Build(prog, stats, aggregate.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	classes := aggregate.ClassifyChannels(prog, plan)
	merged, err := aggregate.BuildMerged(prog, plan, classes)
	if err != nil {
		t.Fatal(err)
	}
	return stats, plan, merged
}

func TestCandidateSelection(t *testing.T) {
	prog := testutil.BuildIR(t, appSrc)
	stats, _, _ := setup(t, prog)
	cands := swc.SelectCandidates(prog, stats, swc.DefaultConfig())
	if len(cands) != 1 {
		t.Fatalf("candidates = %d, want 1 (only app.table)", len(cands))
	}
	if cands[0].Global.Name != "app.table" {
		t.Errorf("candidate = %s, want app.table", cands[0].Global.Name)
	}
	if cands[0].HitRate < 0.9 {
		t.Errorf("hit rate = %v, want high (4 hot lines)", cands[0].HitRate)
	}
	// locked_tbl is excluded for being inside a critical section,
	// scratchpad for its write ratio.
	for _, c := range cands {
		if c.Global.Name == "app.locked_tbl" || c.Global.Name == "app.scratchpad" {
			t.Errorf("unsound candidate %s", c.Global.Name)
		}
	}
}

func TestApplyRewritesLoadsAndKeepsSemantics(t *testing.T) {
	// Differential: SWC-transformed aggregate behaves identically under
	// the host interpreter (which models the cache as always-miss, i.e.
	// fully coherent).
	ref := testutil.BuildIR(t, appSrc)
	want := testutil.Execute(t, ref, gen, controls)

	prog := testutil.BuildIR(t, appSrc)
	stats, _, merged := setup(t, prog)
	cands := swc.SelectCandidates(prog, stats, swc.DefaultConfig())
	st, err := swc.Apply(prog, merged, cands, swc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if st.LoadsCached == 0 {
		t.Fatal("no loads rewritten")
	}
	if st.StoresTagged == 0 {
		t.Fatal("control-path stores not tagged with flag updates")
	}

	var hot *aggregate.Merged
	for _, m := range merged {
		if m.Agg.Target == aggregate.TargetME {
			hot = m
		}
	}
	entry := hot.Entries[0].Func
	// Structure: cache ops present.
	var lookups, fills, flushes int
	for _, b := range entry.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpCacheLookup:
				lookups++
			case ir.OpCacheFill:
				fills++
			case ir.OpCacheFlush:
				flushes++
			}
		}
	}
	if lookups == 0 || fills == 0 || flushes == 0 {
		t.Fatalf("cache ops: lookup=%d fill=%d flush=%d", lookups, fills, flushes)
	}

	// Execute the transformed entry as the program.
	np := &ir.Program{Types: prog.Types, Funcs: map[string]*ir.Func{}}
	entry.Kind = ir.FuncPPF
	np.Funcs[prog.Types.Entry.Name] = entry
	np.Order = append(np.Order, prog.Types.Entry.Name)
	for _, name := range prog.Order {
		f := prog.Funcs[name]
		if f.Kind == ir.FuncControl || f.Kind == ir.FuncInit {
			np.Funcs[name] = f
			np.Order = append(np.Order, name)
		}
	}
	got := testutil.Execute(t, np, gen, controls)
	testutil.SameOutcome(t, want, got, "SWC vs reference")
}

func TestSyntheticGlobalsRegistered(t *testing.T) {
	prog := testutil.BuildIR(t, appSrc)
	stats, _, merged := setup(t, prog)
	cands := swc.SelectCandidates(prog, stats, swc.DefaultConfig())
	if _, err := swc.Apply(prog, merged, cands, swc.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	flag := prog.Types.Globals["app.table$upd"]
	if flag == nil || flag.Space != types.SpaceScratch || !flag.Synthetic {
		t.Errorf("flag global wrong: %+v", flag)
	}
	cnt := prog.Types.Globals["$swc_count"]
	if cnt == nil || cnt.Space != types.SpaceLocal {
		t.Errorf("counter global wrong: %+v", cnt)
	}
}
