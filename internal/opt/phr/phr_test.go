package phr_test

import (
	"testing"

	"shangrila/internal/aggregate"
	"shangrila/internal/baker/types"
	"shangrila/internal/ir"
	"shangrila/internal/opt/phr"
	"shangrila/internal/packet"
	"shangrila/internal/profiler"
	"shangrila/internal/testutil"
	"shangrila/internal/trace"
	"shangrila/internal/workload"
)

const appSrc = `
protocol ether { dst_hi:16; dst_lo:32; src_hi:16; src_lo:32; type:16; demux { 14 }; }
protocol ipv4 { ver:4; hlen:4; tos:8; length:16; id:16; flags:3; frag:13;
                ttl:8; proto:8; cksum:16; src:32; dst:32; demux { hlen << 2 }; }
metadata { rx_port:16; next_hop:16; flow:32; }

module app {
	struct Rt { dst:uint; nh:uint; }
	Rt table[16];
	uint ports;
	channel ip_cc : ipv4;
	channel out_cc : ether;
	ppf clsfr(ether ph) {
		ports = ph->meta.rx_port;   // rx_port written by Rx: NOT localizable
		if (ph->type == 0x0800) {
			ipv4 iph = packet_decap(ph);
			iph->meta.flow = iph->dst;  // flow: written then read, same aggregate
			channel_put(ip_cc, iph);
		} else { packet_drop(ph); }
	}
	ppf fwd(ipv4 ph) {
		uint fl = ph->meta.flow;
		uint nh = 0;
		for (uint i = 0; i < 16; i++) {
			if (table[i].dst == fl) { nh = table[i].nh; break; }
		}
		if (nh == 0) { packet_drop(ph); }
		else {
			ph->meta.next_hop = nh;
			ph->ttl = ph->ttl - 1;
			ether eph = packet_encap(ph);
			channel_put(out_cc, eph);
		}
	}
	control func add_route(uint idx, uint dst, uint nh) {
		table[idx].dst = dst; table[idx].nh = nh;
	}
	wiring { rx -> clsfr; ip_cc -> fwd; out_cc -> tx; }
}
`

func gen(tp *types.Program) []*packet.Packet {
	r := workload.NewSource(9)
	var out []*packet.Packet
	for i := 0; i < 60; i++ {
		p, err := trace.Build([]trace.Layer{
			{Proto: tp.Protocols["ether"], Fields: map[string]uint32{"type": 0x0800}},
			{Proto: tp.Protocols["ipv4"], Fields: map[string]uint32{
				"ver": 4, "hlen": 5, "ttl": 64, "dst": 0x0a000001 + uint32(r.Intn(3))}, Size: 20},
		}, 64, tp.Metadata.Bytes)
		if err != nil {
			panic(err)
		}
		out = append(out, p)
	}
	return out
}

// pipeline builds plan+merged for the app and runs PHR; returns the hot
// entry and the PHR stats.
func pipeline(t *testing.T, prog *ir.Program) (*ir.Func, *phr.Stats) {
	t.Helper()
	s, err := profiler.NewSession(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Control("app.add_route", 0, 0x0a000001, 4); err != nil {
		t.Fatal(err)
	}
	stats, err := profiler.Profile(prog, gen(prog.Types))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := aggregate.Build(prog, stats, aggregate.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	classes := aggregate.ClassifyChannels(prog, plan)
	merged, err := aggregate.BuildMerged(prog, plan, classes)
	if err != nil {
		t.Fatal(err)
	}
	st := phr.Run(prog, plan, merged)
	for _, m := range merged {
		if m.Agg.Target == aggregate.TargetME {
			return m.Entries[0].Func, st
		}
	}
	t.Fatal("no ME aggregate")
	return nil, nil
}

func countMetaAccesses(fn *ir.Func, fieldName string) int {
	n := 0
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if (in.Op == ir.OpMetaLoad || in.Op == ir.OpMetaStore) &&
				in.Field != nil && in.Field.Name == fieldName {
				n++
			}
		}
	}
	return n
}

func TestFlowFieldLocalized(t *testing.T) {
	prog := testutil.BuildIR(t, appSrc)
	entry, st := pipeline(t, prog)
	if st.FieldsLocalized < 1 {
		t.Fatalf("no fields localized: %+v", st)
	}
	if n := countMetaAccesses(entry, "flow"); n != 0 {
		t.Errorf("flow accesses remain: %d", n)
	}
	// rx_port is read-before-write (Rx writes it): must stay in SRAM.
	if n := countMetaAccesses(entry, "rx_port"); n == 0 {
		t.Errorf("rx_port was localized but carries Rx-engine state")
	}
	// next_hop is written here and read by Tx/encap side downstream? In
	// this app nothing else reads it, and it is assigned before use, so
	// localization is legal.
}

func TestPairEliminationCollapsesDecapEncap(t *testing.T) {
	src := `
protocol ether { dst_hi:16; dst_lo:32; src_hi:16; src_lo:32; type:16; demux { 14 }; }
protocol ipv4 { ver:4; hlen:4; tos:8; length:16; id:16; flags:3; frag:13;
                ttl:8; proto:8; cksum:16; src:32; dst:32; demux { hlen << 2 }; }
metadata { rx_port:16; }
module m {
	channel out : ether;
	ppf f(ether ph) {
		ipv4 iph = packet_decap(ph);
		iph->ttl = iph->ttl - 1;
		ether eph = packet_encap(iph);
		channel_put(out, eph);
	}
	wiring { rx -> f; out -> tx; }
}`
	testutil.DiffTest(t, src, gen, nil, func(p *ir.Program) {
		// Run pair elimination directly on the lone PPF.
		st := &phr.Stats{}
		phr.EliminatePairsForTest(p.Funcs["m.f"], st)
		if st.PairsEliminated != 1 {
			t.Errorf("pairs eliminated = %d, want 1", st.PairsEliminated)
		}
	})
	// And structurally: no encap/decap remain.
	p := testutil.BuildIR(t, src)
	st := &phr.Stats{}
	phr.EliminatePairsForTest(p.Funcs["m.f"], st)
	for _, b := range p.Funcs["m.f"].Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpDecap || in.Op == ir.OpEncap {
				t.Errorf("encap/decap survived:\n%s", p.Funcs["m.f"])
			}
		}
	}
}

func TestPairNotEliminatedWhenHandleEscapes(t *testing.T) {
	src := `
protocol ether { dst_hi:16; dst_lo:32; src_hi:16; src_lo:32; type:16; demux { 14 }; }
protocol ipv4 { ver:4; hlen:4; tos:8; length:16; id:16; flags:3; frag:13;
                ttl:8; proto:8; cksum:16; src:32; dst:32; demux { hlen << 2 }; }
metadata { rx_port:16; }
module m {
	channel ipout : ipv4;
	channel out : ether;
	ppf f(ether ph) {
		ipv4 iph = packet_decap(ph);
		if (iph->ttl == 1) {
			channel_put(ipout, iph);   // escapes: cannot collapse
		} else {
			ether eph = packet_encap(iph);
			channel_put(out, eph);
		}
	}
	ppf g(ipv4 ph) { packet_drop(ph); }
	wiring { rx -> f; ipout -> g; out -> tx; }
}`
	p := testutil.BuildIR(t, src)
	st := &phr.Stats{}
	phr.EliminatePairsForTest(p.Funcs["m.f"], st)
	if st.PairsEliminated != 0 {
		t.Errorf("escaping handle pair eliminated unsoundly")
	}
}

func TestLocalizationPreservesSemantics(t *testing.T) {
	// Full-pipeline differential test: outcomes must match with PHR.
	ref := testutil.BuildIR(t, appSrc)
	refOut := testutil.Execute(t, ref, gen, [][]any{{"app.add_route", 0, 0x0a000001, 4}})

	prog := testutil.BuildIR(t, appSrc)
	entry, _ := pipeline(t, prog)

	// Execute the merged entry directly as the rx PPF of a synthetic
	// program view.
	np := &ir.Program{Types: prog.Types, Funcs: map[string]*ir.Func{}, Order: nil}
	entry.Kind = ir.FuncPPF
	np.Funcs[prog.Types.Entry.Name] = entry
	np.Order = append(np.Order, prog.Types.Entry.Name)
	// Keep control/init functions for table setup.
	for _, name := range prog.Order {
		f := prog.Funcs[name]
		if f.Kind == ir.FuncControl || f.Kind == ir.FuncInit {
			np.Funcs[name] = f
			np.Order = append(np.Order, name)
		}
	}
	got := testutil.Execute(t, np, gen, [][]any{{"app.add_route", 0, 0x0a000001, 4}})
	// Localized metadata fields (flow, next_hop) are provably dead outside
	// the aggregate, so the externally visible outcome excludes the
	// metadata record: compare packet bytes, head offsets, exit channels
	// and drop counts only.
	if got.Dropped != refOut.Dropped {
		t.Errorf("dropped = %d, want %d", got.Dropped, refOut.Dropped)
	}
	if len(got.Tx) != len(refOut.Tx) {
		t.Fatalf("tx = %d, want %d", len(got.Tx), len(refOut.Tx))
	}
	for i := range refOut.Tx {
		w, g := refOut.Tx[i], got.Tx[i]
		if w.Chan != g.Chan || w.Head != g.Head || string(w.Bytes) != string(g.Bytes) {
			t.Errorf("packet %d differs (chan %s/%s head %d/%d)", i, g.Chan, w.Chan, g.Head, w.Head)
		}
	}
}
