// Package phr implements Packet Handling Removal (§5.3.3): eliminating
// packet-handling primitives that program analysis proves unnecessary.
//
// Two eliminations are performed here at the IR level:
//
//   - Metadata localization: after aggregation and inlining, a metadata
//     field whose accesses all fall inside one merged aggregate entry is
//     demoted from an SRAM metadata record slot to a virtual register,
//     removing its SRAM reads and writes entirely. A field read before
//     any write on some path still carries state produced outside (the Rx
//     engine writes rx_port, an upstream aggregate may have written it),
//     so only fields definitely assigned before every use are rewritten.
//
//   - Paired encapsulation elimination: a packet_decap whose resulting
//     handle flows only into field accesses and a matching packet_encap
//     (same protocol, every path, same aggregate) leaves the net head_ptr
//     unchanged; both primitives are deleted and the intermediate
//     accesses are redirected to the outer handle at a fixed extra
//     offset. This is the paper's "paired encapsulation calls" rule.
//
// The third elimination the paper describes — omitting head_ptr update
// code when SOAR resolved the offset statically — is a code-generation
// decision: the code generator consults the SOAR annotations and emits no
// head_ptr maintenance for resolved sites when PHR is enabled.
package phr

import (
	"sort"

	"shangrila/internal/aggregate"
	"shangrila/internal/baker/types"
	"shangrila/internal/ir"
)

// Stats reports PHR's effect.
type Stats struct {
	FieldsLocalized int
	AccessesRemoved int
	PairsEliminated int
}

// Run applies PHR to every ME aggregate's merged entries. The full
// program (prog) supplies the global view needed to prove a metadata
// field local to one aggregate.
func Run(prog *ir.Program, plan *aggregate.Plan, merged []*aggregate.Merged) *Stats {
	st := &Stats{}
	accessors := fieldAccessors(prog)
	for _, m := range merged {
		if m.Agg.Target != aggregate.TargetME {
			continue
		}
		for _, e := range m.Entries {
			localizeMetadata(prog, plan, m, e, accessors, st)
			eliminatePairs(e.Func, st)
		}
	}
	return st
}

// fieldAccessors maps each metadata field to the set of PPFs touching it
// in the original program. PAC may have combined field accesses into raw
// byte-range accesses (Field == nil) before PHR runs, so a raw access
// counts as touching every metadata field its range overlaps — otherwise a
// field looks private to one PPF while another still reads its SRAM slot
// through a combined access.
func fieldAccessors(prog *ir.Program) map[*types.ProtoField]map[string]bool {
	out := map[*types.ProtoField]map[string]bool{}
	for _, name := range prog.Order {
		fn := prog.Funcs[name]
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpMetaLoad && in.Op != ir.OpMetaStore {
					continue
				}
				for _, fld := range metaFieldsOf(prog, in) {
					s := out[fld]
					if s == nil {
						s = map[string]bool{}
						out[fld] = s
					}
					s[name] = true
				}
			}
		}
	}
	return out
}

// metaFieldsOf resolves a metadata access to the fields it touches: the
// named field for a field access, every overlapping field for a raw
// (PAC-combined) byte-range access.
func metaFieldsOf(prog *ir.Program, in *ir.Instr) []*types.ProtoField {
	if in.Field != nil {
		return []*types.ProtoField{in.Field}
	}
	lo, hi := int(in.Off)*8, (int(in.Off)+in.Width)*8
	var out []*types.ProtoField
	for _, fld := range prog.Types.Metadata.Fields {
		if fld.BitOff < hi && lo < fld.BitOff+fld.Bits {
			out = append(out, fld)
		}
	}
	return out
}

// localizeMetadata rewrites metadata fields provably private to this
// entry into registers.
func localizeMetadata(prog *ir.Program, plan *aggregate.Plan, m *aggregate.Merged,
	e *aggregate.Entry, accessors map[*types.ProtoField]map[string]bool, st *Stats) {

	member := map[string]bool{}
	for _, f := range m.Agg.PPFs {
		member[f] = true
	}
	// Fields eligible by accessor set: every accessor PPF lies in this
	// aggregate, and within the aggregate only this entry touches it.
	eligible := map[*types.ProtoField]bool{}
	for fld, accs := range accessors {
		ok := true
		for ppf := range accs {
			if !member[ppf] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		inOthers := false
		for _, other := range m.Entries {
			if other == e {
				continue
			}
			if touchesField(prog, other.Func, fld) {
				inOthers = true
				break
			}
		}
		if !inOthers && touchesField(prog, e.Func, fld) {
			eligible[fld] = true
		}
	}
	if len(eligible) == 0 {
		return
	}
	// Definite-assignment: a field may be localized only if every load is
	// preceded by a store on all paths (otherwise the register would miss
	// state written outside the aggregate, e.g. rx_port from the Rx
	// engine).
	assigned := definitelyAssigned(e.Func, eligible)
	var flds []*types.ProtoField
	for fld := range eligible {
		if assigned[fld] {
			flds = append(flds, fld)
		}
	}
	sort.Slice(flds, func(i, j int) bool { return flds[i].BitOff < flds[j].BitOff })
	for _, fld := range flds {
		reg := e.Func.NewReg(ir.ClassWord)
		for _, b := range e.Func.Blocks {
			var out []*ir.Instr
			for _, in := range b.Instrs {
				if in.Field != fld || (in.Op != ir.OpMetaLoad && in.Op != ir.OpMetaStore) {
					out = append(out, in)
					continue
				}
				switch in.Op {
				case ir.OpMetaLoad:
					in.Op = ir.OpMov
					in.Field = nil
					in.Args = []ir.Reg{reg}
				case ir.OpMetaStore:
					// An SRAM store truncates the value to the field's
					// width and a load zero-extends it back, so the
					// register must hold the masked value, not the raw
					// 32-bit store operand.
					val := in.Args[1]
					in.Field = nil
					in.Dst = []ir.Reg{reg}
					if fld.Bits < 32 {
						mr := e.Func.NewReg(ir.ClassWord)
						out = append(out, &ir.Instr{Op: ir.OpConst, Pos: in.Pos,
							Dst: []ir.Reg{mr}, Imm: uint64(1)<<uint(fld.Bits) - 1})
						in.Op = ir.OpAnd
						in.Args = []ir.Reg{val, mr}
					} else {
						in.Op = ir.OpMov
						in.Args = []ir.Reg{val}
					}
				}
				st.AccessesRemoved++
				out = append(out, in)
			}
			b.Instrs = out
		}
		st.FieldsLocalized++
	}
}

// touchesField reports whether fn accesses fld, counting raw byte-range
// accesses that overlap the field's bits.
func touchesField(prog *ir.Program, fn *ir.Func, fld *types.ProtoField) bool {
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op != ir.OpMetaLoad && in.Op != ir.OpMetaStore {
				continue
			}
			for _, f := range metaFieldsOf(prog, in) {
				if f == fld {
					return true
				}
			}
		}
	}
	return false
}

// definitelyAssigned computes, per eligible field, whether every MetaLoad
// is dominated by a MetaStore on all paths (forward "definitely written"
// dataflow; raw metadata accesses kill eligibility entirely).
func definitelyAssigned(fn *ir.Func, eligible map[*types.ProtoField]bool) map[*types.ProtoField]bool {
	type setmap map[*types.ProtoField]bool
	in := map[*ir.Block]setmap{}
	ok := map[*types.ProtoField]bool{}
	for fld := range eligible {
		ok[fld] = true
	}
	// Raw (PAC-combined) metadata accesses cover byte ranges, not fields;
	// disqualify overlapping fields.
	for _, b := range fn.Blocks {
		for _, instr := range b.Instrs {
			if (instr.Op == ir.OpMetaLoad || instr.Op == ir.OpMetaStore) && instr.Field == nil {
				lo, hi := int(instr.Off)*8, (int(instr.Off)+instr.Width)*8
				for fld := range eligible {
					if fld.BitOff < hi && lo < fld.BitOff+fld.Bits {
						ok[fld] = false
					}
				}
			}
		}
	}
	// Iterate to fixpoint. Must-analysis: initialize every non-entry
	// block to the universal set (TOP) so Gauss-Seidel iteration only
	// shrinks sets and terminates; the entry starts empty (nothing is
	// known to be written on function entry).
	full := func() setmap {
		m := setmap{}
		for fld := range eligible {
			m[fld] = true
		}
		return m
	}
	for _, b := range fn.Blocks {
		if b == fn.Entry {
			in[b] = setmap{}
		} else {
			in[b] = full()
		}
	}
	changed := true
	for changed {
		changed = false
		for _, b := range fn.Blocks {
			if b == fn.Entry {
				continue
			}
			var cur setmap
			if len(b.Preds) == 0 {
				cur = setmap{} // unreachable or alternate entry: assume nothing written
			} else {
				cur = nil
				for _, p := range b.Preds {
					po := flowBlock(p, in[p], eligible, nil)
					if cur == nil {
						cur = setmap{}
						for f := range po {
							cur[f] = true
						}
					} else {
						for f := range cur {
							if !po[f] {
								delete(cur, f)
							}
						}
					}
				}
			}
			if !sameSet(in[b], cur) {
				in[b] = cur
				changed = true
			}
		}
	}
	// Check loads.
	for _, b := range fn.Blocks {
		flowBlock(b, in[b], eligible, ok)
	}
	return ok
}

// flowBlock applies the "definitely written" transfer function; if check
// is non-nil, loads of unwritten fields clear check[field].
func flowBlock(b *ir.Block, in map[*types.ProtoField]bool,
	eligible map[*types.ProtoField]bool, check map[*types.ProtoField]bool) map[*types.ProtoField]bool {
	cur := map[*types.ProtoField]bool{}
	for f := range in {
		cur[f] = true
	}
	for _, instr := range b.Instrs {
		switch instr.Op {
		case ir.OpMetaStore:
			if instr.Field != nil && eligible[instr.Field] {
				cur[instr.Field] = true
			}
		case ir.OpMetaLoad:
			if instr.Field != nil && eligible[instr.Field] && check != nil && !cur[instr.Field] {
				check[instr.Field] = false
			}
		}
	}
	return cur
}

func sameSet(a, b map[*types.ProtoField]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Paired encapsulation elimination

// eliminatePairs removes decap/encap pairs whose intermediate handle never
// escapes: "iph = decap(ph); ...field accesses on iph...; eph = encap(iph)"
// with matching protocols collapses to field accesses on ph at a fixed
// extra offset, with eph aliased to ph. Applies when the decapped protocol
// has a fixed size (otherwise the offset shift is unknown) and both ends
// sit in the same block run (same aggregate by construction).
func eliminatePairs(fn *ir.Func, st *Stats) {
	for _, b := range fn.Blocks {
		for i, dec := range b.Instrs {
			if dec.Op != ir.OpDecap {
				continue
			}
			// The inner handle's aliases grow through plain moves
			// (lowering materializes "ipv4 iph = packet_decap(ph)" as a
			// decap followed by a mov).
			alias := map[ir.Reg]bool{dec.Dst[0]: true}
			usesAlias := func(in *ir.Instr) bool {
				for _, a := range in.Args {
					if alias[a] {
						return true
					}
				}
				return false
			}
			for j := i + 1; j < len(b.Instrs); j++ {
				mid := b.Instrs[j]
				if mid.Op == ir.OpMov && len(mid.Args) == 1 && alias[mid.Args[0]] {
					alias[mid.Dst[0]] = true
					continue
				}
				if mid.Op == ir.OpEncap && alias[mid.Args[0]] {
					if usableAsPair(dec, mid) && !usedElsewhere(fn, b, j, alias) {
						rewritePair(fn, b, i, j, alias, st)
					}
					break
				}
				if usesAlias(mid) &&
					mid.Op != ir.OpPktLoad && mid.Op != ir.OpPktStore &&
					mid.Op != ir.OpMetaLoad && mid.Op != ir.OpMetaStore {
					break // handle escapes; give up on this decap
				}
			}
		}
	}
}

// usedElsewhere reports whether any alias of the inner handle is
// referenced after the encap at b.Instrs[j] (a stale use would observe
// the wrong header after the pair is collapsed).
func usedElsewhere(fn *ir.Func, b *ir.Block, j int, alias map[ir.Reg]bool) bool {
	uses := func(in *ir.Instr) bool {
		for _, a := range in.Args {
			if alias[a] {
				return true
			}
		}
		return false
	}
	for k := j + 1; k < len(b.Instrs); k++ {
		if uses(b.Instrs[k]) {
			return true
		}
	}
	for _, ob := range fn.Blocks {
		if ob == b {
			continue
		}
		for _, in := range ob.Instrs {
			if uses(in) {
				return true
			}
		}
	}
	return false
}

// usableAsPair verifies the decap/encap protocols cancel: the encap must
// rebuild exactly the header the decap skipped, and the skipped size must
// be static (fixed demux).
func usableAsPair(dec, enc *ir.Instr) bool {
	// dec.Imm is the protocol being left (outer); enc.Proto is the
	// protocol being entered. They must match, and the outer header must
	// have a fixed size so accesses can be redirected by a constant.
	if enc.Proto == nil || dec.Proto == nil {
		return false
	}
	if uint64(enc.Proto.ID) != dec.Imm {
		return false
	}
	if enc.Proto.FixedSize < 0 {
		return false
	}
	return true
}

// rewritePair redirects intermediate accesses through the outer handle at
// +size and aliases both produced handles to the outer one.
func rewritePair(fn *ir.Func, b *ir.Block, i, j int, alias map[ir.Reg]bool, st *Stats) {
	dec := b.Instrs[i]
	enc := b.Instrs[j]
	outer := dec.Args[0]
	shift := int32(enc.Proto.FixedSize)
	innerProto := dec.Proto
	usesAlias := func(in *ir.Instr) bool {
		for _, a := range in.Args {
			if alias[a] {
				return true
			}
		}
		return false
	}
	for k := i + 1; k < j; k++ {
		mid := b.Instrs[k]
		if mid.Op == ir.OpMov && len(mid.Args) == 1 && alias[mid.Args[0]] {
			mid.Args[0] = outer
			continue
		}
		if !usesAlias(mid) {
			continue
		}
		switch mid.Op {
		case ir.OpPktLoad, ir.OpPktStore:
			// Convert the field access into a raw access at the field's
			// absolute byte range within the outer header plus the header
			// size. Field extraction must be materialized; to keep the
			// rewrite small we instead keep the field access but shift
			// the protocol view: a field access through the outer handle
			// with an offset-adjusted synthetic field.
			mid.Args[0] = outer
			nf := *mid.Field
			nf.BitOff += int(shift) * 8
			nf.Name = innerProto.Name + "." + nf.Name
			mid.Field = &nf
			mid.Proto = enc.Proto
		case ir.OpMetaLoad, ir.OpMetaStore:
			mid.Args[0] = outer
		}
	}
	// decap/encap become moves: both handles alias the outer one.
	dec.Op = ir.OpMov
	dec.Args = []ir.Reg{outer}
	dec.Proto = nil
	dec.Imm = 0
	enc.Op = ir.OpMov
	enc.Args = []ir.Reg{outer}
	enc.Proto = nil
	enc.Imm = 0
	st.PairsEliminated++
}

// EliminatePairsForTest exposes paired-encapsulation elimination on a
// single function for unit testing.
func EliminatePairsForTest(fn *ir.Func, st *Stats) { eliminatePairs(fn, st) }
