package ir

// Clone deep-copies a function: fresh blocks and instructions, same
// register numbering. Aggregation clones PPF bodies so per-aggregate
// transforms (channel-to-call conversion, inlining, metadata localization)
// cannot disturb other aggregates or the profiling copy.
func (f *Func) Clone() *Func {
	nf := &Func{
		Name:         f.Name,
		Kind:         f.Kind,
		Params:       append([]Reg(nil), f.Params...),
		ParamClasses: append([]RegClass(nil), f.ParamClasses...),
		NumRegs:      f.NumRegs,
		RegClasses:   append([]RegClass(nil), f.RegClasses...),
		InProto:      f.InProto,
		Source:       f.Source,
	}
	blockMap := make(map[*Block]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		nb := &Block{ID: b.ID}
		nf.Blocks = append(nf.Blocks, nb)
		blockMap[b] = nb
	}
	for _, b := range f.Blocks {
		nb := blockMap[b]
		for _, in := range b.Instrs {
			cp := *in
			cp.Dst = append([]Reg(nil), in.Dst...)
			cp.Args = append([]Reg(nil), in.Args...)
			if in.Blocks != nil {
				cp.Blocks = make([]*Block, len(in.Blocks))
				for i, t := range in.Blocks {
					cp.Blocks[i] = blockMap[t]
				}
			}
			nb.Instrs = append(nb.Instrs, &cp)
		}
	}
	nf.Entry = blockMap[f.Entry]
	nf.ComputeCFG()
	return nf
}

// CloneProgram deep-copies every function of p (sharing the immutable type
// information).
func CloneProgram(p *Program) *Program {
	np := &Program{
		Types:    p.Types,
		Funcs:    make(map[string]*Func, len(p.Funcs)),
		Order:    append([]string(nil), p.Order...),
		NumLocks: p.NumLocks,
	}
	for name, f := range p.Funcs {
		np.Funcs[name] = f.Clone()
	}
	return np
}
