package ir

import (
	"strings"
	"testing"

	"shangrila/internal/baker/types"
)

// newTestFunc builds a minimal well-formed function: one entry block ending
// in ret, one word parameter. Tests then perturb it into each invalid shape.
func newTestFunc() (*Program, *Func) {
	fn := &Func{Name: "t.f", Kind: FuncPPF}
	p0 := fn.NewReg(ClassHandle)
	fn.Params = []Reg{p0}
	fn.ParamClasses = []RegClass{ClassHandle}
	b := fn.NewBlock()
	fn.Entry = b
	b.Instrs = append(b.Instrs, &Instr{Op: OpRet})
	prog := &Program{
		Funcs: map[string]*Func{fn.Name: fn},
		Order: []string{fn.Name},
	}
	return prog, fn
}

func wantVerifyError(t *testing.T, prog *Program, substr string) *VerifyError {
	t.Helper()
	err := Verify(prog)
	if err == nil {
		t.Fatalf("Verify passed, want error containing %q", substr)
	}
	ve, ok := err.(*VerifyError)
	if !ok {
		t.Fatalf("Verify returned %T, want *VerifyError: %v", err, err)
	}
	if !strings.Contains(ve.Error(), substr) {
		t.Fatalf("Verify error %q does not mention %q", ve.Error(), substr)
	}
	return ve
}

func TestVerifyMinimalOK(t *testing.T) {
	prog, _ := newTestFunc()
	if err := Verify(prog); err != nil {
		t.Fatalf("minimal function should verify: %v", err)
	}
}

func TestVerifyDanglingEdge(t *testing.T) {
	prog, fn := newTestFunc()
	orphan := &Block{ID: 99} // never added to fn.Blocks
	fn.Entry.Instrs = []*Instr{{Op: OpBr, Blocks: []*Block{orphan}}}
	ve := wantVerifyError(t, prog, "edge to b99, which is not a block of t.f")
	if ve.Func != "t.f" || ve.Block != 0 || ve.Instr != 0 {
		t.Errorf("error position = %s b%d[%d], want t.f b0[0]", ve.Func, ve.Block, ve.Instr)
	}
}

func TestVerifyUseBeforeDef(t *testing.T) {
	prog, fn := newTestFunc()
	x := fn.NewReg(ClassWord)
	y := fn.NewReg(ClassWord)
	fn.Entry.Instrs = []*Instr{
		{Op: OpMov, Dst: []Reg{y}, Args: []Reg{x}}, // x never defined
		{Op: OpRet},
	}
	ve := wantVerifyError(t, prog, "mov reads %v1 before any definition reaches it")
	if ve.Block != 0 || ve.Instr != 0 {
		t.Errorf("error position = b%d[%d], want b0[0]", ve.Block, ve.Instr)
	}
}

// A register defined on only one branch arm must not count as defined at the
// join point: the meet is intersection, not union.
func TestVerifyUseBeforeDefOnOnePath(t *testing.T) {
	prog, fn := newTestFunc()
	c := fn.NewReg(ClassWord)
	x := fn.NewReg(ClassWord)
	thn, els, join := fn.NewBlock(), fn.NewBlock(), fn.NewBlock()
	fn.Entry.Instrs = []*Instr{
		{Op: OpConst, Dst: []Reg{c}, Imm: 1},
		{Op: OpCondBr, Args: []Reg{c}, Blocks: []*Block{thn, els}},
	}
	thn.Instrs = []*Instr{
		{Op: OpConst, Dst: []Reg{x}, Imm: 7}, // defined here only
		{Op: OpBr, Blocks: []*Block{join}},
	}
	els.Instrs = []*Instr{{Op: OpBr, Blocks: []*Block{join}}}
	join.Instrs = []*Instr{
		{Op: OpMov, Dst: []Reg{fn.NewReg(ClassWord)}, Args: []Reg{x}},
		{Op: OpRet},
	}
	ve := wantVerifyError(t, prog, "before any definition reaches it")
	if ve.Block != join.ID {
		t.Errorf("error in b%d, want join block b%d", ve.Block, join.ID)
	}
}

func TestVerifyFieldWidthOutOfRange(t *testing.T) {
	prog, fn := newTestFunc()
	d := fn.NewReg(ClassWord)
	wide := &types.ProtoField{Name: "wide", Bits: 48}
	fn.Entry.Instrs = []*Instr{
		{Op: OpPktLoad, Dst: []Reg{d}, Args: []Reg{fn.Params[0]}, Field: wide},
		{Op: OpRet},
	}
	wantVerifyError(t, prog, "field wide is 48 bits, outside the 1..32 word range")
}

func TestVerifyTerminatorInMiddle(t *testing.T) {
	prog, fn := newTestFunc()
	fn.Entry.Instrs = []*Instr{{Op: OpRet}, {Op: OpRet}}
	wantVerifyError(t, prog, "terminator ret in the middle of a block")
}

func TestVerifyMissingTerminator(t *testing.T) {
	prog, fn := newTestFunc()
	d := fn.NewReg(ClassWord)
	fn.Entry.Instrs = []*Instr{{Op: OpConst, Dst: []Reg{d}, Imm: 1}}
	wantVerifyError(t, prog, "block does not end in a terminator")
}

func TestVerifyEmptyBlock(t *testing.T) {
	prog, fn := newTestFunc()
	fn.Entry.Instrs = nil
	wantVerifyError(t, prog, "empty block (no terminator)")
}

func TestVerifyCondBrArity(t *testing.T) {
	prog, fn := newTestFunc()
	c := fn.NewReg(ClassWord)
	b2 := fn.NewBlock()
	b2.Instrs = []*Instr{{Op: OpRet}}
	fn.Entry.Instrs = []*Instr{
		{Op: OpConst, Dst: []Reg{c}, Imm: 1},
		{Op: OpCondBr, Args: []Reg{c}, Blocks: []*Block{b2}}, // one target, want 2
	}
	wantVerifyError(t, prog, "condbr with 1 targets, want 2")
}

func TestVerifyRegisterOutOfRange(t *testing.T) {
	prog, fn := newTestFunc()
	fn.Entry.Instrs = []*Instr{
		{Op: OpMov, Dst: []Reg{Reg(1000)}, Args: []Reg{fn.Params[0]}},
		{Op: OpRet},
	}
	wantVerifyError(t, prog, "register 1000 out of range")
}

func TestVerifyHandleClass(t *testing.T) {
	prog, fn := newTestFunc()
	w := fn.NewReg(ClassWord)
	d := fn.NewReg(ClassWord)
	f := &types.ProtoField{Name: "x", Bits: 8}
	fn.Entry.Instrs = []*Instr{
		{Op: OpConst, Dst: []Reg{w}, Imm: 0},
		{Op: OpPktLoad, Dst: []Reg{d}, Args: []Reg{w}, Field: f}, // word as handle
		{Op: OpRet},
	}
	wantVerifyError(t, prog, "handle operand %v1 has class word")
}

func TestVerifyRawWidthMismatch(t *testing.T) {
	prog, fn := newTestFunc()
	d := fn.NewReg(ClassWord)
	// Raw 8-byte load should carry two destination words, not one.
	fn.Entry.Instrs = []*Instr{
		{Op: OpPktLoad, Dst: []Reg{d}, Args: []Reg{fn.Params[0]}, Off: 0, Width: 8},
		{Op: OpRet},
	}
	wantVerifyError(t, prog, "1 destinations for width 8")
}

func TestVerifyRawWidthNotWordMultiple(t *testing.T) {
	prog, fn := newTestFunc()
	d := fn.NewReg(ClassWord)
	fn.Entry.Instrs = []*Instr{
		{Op: OpPktLoad, Dst: []Reg{d}, Args: []Reg{fn.Params[0]}, Off: 0, Width: 3},
		{Op: OpRet},
	}
	wantVerifyError(t, prog, "raw width 3 is not a positive word multiple")
}

func TestVerifyOrderMissingFunc(t *testing.T) {
	prog, _ := newTestFunc()
	prog.Order = append(prog.Order, "t.ghost")
	wantVerifyError(t, prog, "listed in Order but missing from Funcs")
}

func TestVerifyErrorPositional(t *testing.T) {
	// Errors carry the function, block and instruction index so a failing
	// pass can be pinpointed without re-dumping the whole program.
	prog, fn := newTestFunc()
	orphan := &Block{ID: 42}
	extra := fn.NewBlock()
	extra.Instrs = []*Instr{
		{Op: OpBr, Blocks: []*Block{orphan}},
	}
	fn.Entry.Instrs = []*Instr{{Op: OpBr, Blocks: []*Block{extra}}}
	ve := wantVerifyError(t, prog, "edge to b42")
	if got := ve.Error(); !strings.Contains(got, "t.f b1[0]") {
		t.Errorf("error %q lacks positional prefix t.f b1[0]", got)
	}
}
