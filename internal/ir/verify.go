package ir

import (
	"fmt"

	"shangrila/internal/baker/token"
)

// VerifyError is one IR invariant violation, located as precisely as the
// instruction's source position allows.
type VerifyError struct {
	Func  string
	Block int // block ID, -1 for function-level errors
	Instr int // instruction index within the block, -1 when not applicable
	Pos   token.Pos
	Msg   string
}

func (e *VerifyError) Error() string {
	loc := e.Func
	if e.Block >= 0 {
		loc = fmt.Sprintf("%s b%d", loc, e.Block)
	}
	if e.Instr >= 0 {
		loc = fmt.Sprintf("%s[%d]", loc, e.Instr)
	}
	if e.Pos.IsValid() {
		return fmt.Sprintf("%s: %s: %s", e.Pos, loc, e.Msg)
	}
	return fmt.Sprintf("%s: %s", loc, e.Msg)
}

// Verify checks the structural invariants every pass must preserve:
//
//   - CFG well-formedness: a non-nil entry block that belongs to the
//     function, every block terminated by exactly one trailing terminator,
//     and every branch edge targeting a block of the same function with the
//     operand/target arity its opcode demands;
//   - def-before-use for scalar registers: on every path from entry, a
//     register is written before it is read (parameters count as entry
//     definitions), and every operand is within the function's register
//     space with a recorded class;
//   - packet/metadata access typing: handles where handles are required,
//     field accesses naming a field that fits one machine word, raw
//     (post-PAC) accesses with positive word-multiple widths and matching
//     destination/source register counts.
//
// The first violation found is returned; nil means the program verifies.
func Verify(p *Program) error {
	for _, name := range p.Order {
		fn := p.Funcs[name]
		if fn == nil {
			return &VerifyError{Func: name, Block: -1, Instr: -1,
				Msg: "listed in Order but missing from Funcs"}
		}
		if err := verifyFunc(fn); err != nil {
			return err
		}
	}
	return nil
}

// verifyFunc checks one function. Exported through Verify; split out so the
// error paths stay readable.
func verifyFunc(fn *Func) error {
	errf := func(b *Block, idx int, in *Instr, format string, args ...any) error {
		e := &VerifyError{Func: fn.Name, Block: -1, Instr: idx,
			Msg: fmt.Sprintf(format, args...)}
		if b != nil {
			e.Block = b.ID
		}
		if in != nil {
			e.Pos = in.Pos
		}
		return e
	}

	if len(fn.Blocks) == 0 {
		return errf(nil, -1, nil, "function has no blocks")
	}
	if fn.Entry == nil {
		return errf(nil, -1, nil, "function has no entry block")
	}
	member := make(map[*Block]bool, len(fn.Blocks))
	for _, b := range fn.Blocks {
		member[b] = true
	}
	if !member[fn.Entry] {
		return errf(nil, -1, nil, "entry block b%d is not in the block list", fn.Entry.ID)
	}
	if len(fn.RegClasses) != fn.NumRegs {
		return errf(nil, -1, nil, "RegClasses has %d entries for %d registers",
			len(fn.RegClasses), fn.NumRegs)
	}

	// Structural checks per block: single trailing terminator, well-formed
	// edges.
	for _, b := range fn.Blocks {
		if len(b.Instrs) == 0 {
			return errf(b, -1, nil, "empty block (no terminator)")
		}
		for idx, in := range b.Instrs {
			last := idx == len(b.Instrs)-1
			if in.Op.IsTerminator() != last {
				if last {
					return errf(b, idx, in, "block does not end in a terminator (got %v)", in.Op)
				}
				return errf(b, idx, in, "terminator %v in the middle of a block", in.Op)
			}
			if err := verifyInstr(fn, b, idx, in, member, errf); err != nil {
				return err
			}
		}
	}
	return verifyDefBeforeUse(fn, errf)
}

// verifyInstr checks operand arity, register ranges/classes and the
// packet-access typing rules for one instruction.
func verifyInstr(fn *Func, b *Block, idx int, in *Instr, member map[*Block]bool,
	errf func(*Block, int, *Instr, string, ...any) error) error {
	// Register ranges. Args may use NoReg only in the optional index slot
	// of global and cache accesses (arg 0, except CacheFill whose arg 0
	// carries the CAM entry from its lookup and whose index is arg 1).
	optionalIndexSlot := func(op Op) string {
		switch op {
		case OpLoad, OpStore, OpCacheLookup, OpCacheFlush:
			return "arg 0"
		case OpCacheFill:
			return "arg 1"
		}
		return ""
	}
	checkReg := func(r Reg, what string) error {
		if r == NoReg {
			if what != optionalIndexSlot(in.Op) {
				return errf(b, idx, in, "%v: %s is NoReg", in.Op, what)
			}
			return nil
		}
		if r < 0 || int(r) >= fn.NumRegs {
			return errf(b, idx, in, "%v: %s register %d out of range [0,%d)",
				in.Op, what, int(r), fn.NumRegs)
		}
		return nil
	}
	for i, r := range in.Dst {
		if err := checkReg(r, fmt.Sprintf("dst %d", i)); err != nil {
			return err
		}
	}
	for i, r := range in.Args {
		if err := checkReg(r, fmt.Sprintf("arg %d", i)); err != nil {
			return err
		}
	}
	class := func(r Reg) RegClass { return fn.RegClasses[r] }

	// Terminator arity and edge targets.
	switch in.Op {
	case OpBr:
		if len(in.Blocks) != 1 {
			return errf(b, idx, in, "br with %d targets, want 1", len(in.Blocks))
		}
	case OpCondBr:
		if len(in.Blocks) != 2 {
			return errf(b, idx, in, "condbr with %d targets, want 2", len(in.Blocks))
		}
		if len(in.Args) != 1 {
			return errf(b, idx, in, "condbr with %d operands, want 1", len(in.Args))
		}
	case OpRet:
		if len(in.Blocks) != 0 {
			return errf(b, idx, in, "ret with branch targets")
		}
	default:
		if len(in.Blocks) != 0 {
			return errf(b, idx, in, "%v carries branch targets", in.Op)
		}
	}
	for _, t := range in.Blocks {
		if t == nil {
			return errf(b, idx, in, "%v: nil branch target", in.Op)
		}
		if !member[t] {
			return errf(b, idx, in, "%v: edge to b%d, which is not a block of %s",
				in.Op, t.ID, fn.Name)
		}
	}

	// Packet and metadata access typing.
	switch in.Op {
	case OpPktLoad, OpPktStore, OpMetaLoad, OpMetaStore:
		if len(in.Args) == 0 || in.Args[0] == NoReg {
			return errf(b, idx, in, "%v without a handle operand", in.Op)
		}
		if class(in.Args[0]) != ClassHandle {
			return errf(b, idx, in, "%v: handle operand %v has class word", in.Op, in.Args[0])
		}
		load := in.Op == OpPktLoad || in.Op == OpMetaLoad
		if in.Field != nil {
			if in.Field.Bits < 1 || in.Field.Bits > 32 {
				return errf(b, idx, in, "%v: field %s is %d bits, outside the 1..32 word range",
					in.Op, in.Field.Name, in.Field.Bits)
			}
			if load && len(in.Dst) != 1 {
				return errf(b, idx, in, "%v .%s: %d destinations, want 1",
					in.Op, in.Field.Name, len(in.Dst))
			}
			if !load && len(in.Args) != 2 {
				return errf(b, idx, in, "%v .%s: %d operands, want 2 (handle, value)",
					in.Op, in.Field.Name, len(in.Args))
			}
		} else {
			// Raw byte-range access (post-PAC form, packet and metadata
			// alike). The offset may be negative: PAC aliases handles
			// through encap/decap, so a combined range can start before
			// the base handle's header.
			if in.Width <= 0 || in.Width%4 != 0 {
				return errf(b, idx, in, "%v: raw width %d is not a positive word multiple",
					in.Op, in.Width)
			}
			if load && len(in.Dst) != in.Width/4 {
				return errf(b, idx, in, "%v raw[%d:%d]: %d destinations for width %d",
					in.Op, in.Off, int(in.Off)+in.Width, len(in.Dst), in.Width)
			}
			if !load && len(in.Args) != 1+in.Width/4 {
				return errf(b, idx, in, "%v raw[%d:%d]: %d operands for width %d",
					in.Op, in.Off, int(in.Off)+in.Width, len(in.Args), in.Width)
			}
		}
	case OpEncap, OpDecap:
		if len(in.Args) != 1 || len(in.Dst) != 1 {
			return errf(b, idx, in, "%v needs one handle in and one handle out", in.Op)
		}
		if class(in.Args[0]) != ClassHandle || class(in.Dst[0]) != ClassHandle {
			return errf(b, idx, in, "%v operands must be handles", in.Op)
		}
		if in.Proto == nil {
			return errf(b, idx, in, "%v without a protocol", in.Op)
		}
	case OpLoad, OpStore:
		if in.Global == nil {
			return errf(b, idx, in, "%v without a global", in.Op)
		}
		if in.Width < 0 || in.Width%4 != 0 {
			return errf(b, idx, in, "%v: width %d is not a word multiple", in.Op, in.Width)
		}
	}
	return nil
}

// verifyDefBeforeUse checks that every scalar register is written on every
// path from entry before it is read. The analysis is a forward dataflow
// over the CFG: a register is "defined at block entry" when it is defined
// at the exit of every predecessor (parameters are defined at the function
// entry). Blocks with no predecessors other than the entry are unreachable
// and start from the universal set, so they never raise false alarms.
func verifyDefBeforeUse(fn *Func,
	errf func(*Block, int, *Instr, string, ...any) error) error {
	words := (fn.NumRegs + 63) / 64
	if words == 0 {
		words = 1
	}
	full := make([]uint64, words)
	for i := range full {
		full[i] = ^uint64(0)
	}
	in := make(map[*Block][]uint64, len(fn.Blocks))
	for _, b := range fn.Blocks {
		in[b] = append([]uint64(nil), full...)
	}
	entry := make([]uint64, words)
	for _, p := range fn.Params {
		entry[int(p)/64] |= 1 << (uint(p) % 64)
	}
	in[fn.Entry] = entry

	// Succs may be stale between passes; recompute edges from terminators.
	succs := func(b *Block) []*Block {
		if t := b.Terminator(); t != nil {
			return t.Blocks
		}
		return nil
	}
	out := func(b *Block) []uint64 {
		s := append([]uint64(nil), in[b]...)
		for _, i := range b.Instrs {
			for _, d := range i.Dst {
				if d != NoReg {
					s[int(d)/64] |= 1 << (uint(d) % 64)
				}
			}
		}
		return s
	}
	for changed := true; changed; {
		changed = false
		for _, b := range fn.Blocks {
			o := out(b)
			for _, s := range succs(b) {
				cur := in[s]
				if s == fn.Entry {
					continue // entry keeps its parameter seed
				}
				for w := range cur {
					if nv := cur[w] & o[w]; nv != cur[w] {
						cur[w] = nv
						changed = true
					}
				}
			}
		}
	}
	for _, b := range fn.Blocks {
		defined := append([]uint64(nil), in[b]...)
		for idx, i := range b.Instrs {
			for _, a := range i.Args {
				if a == NoReg {
					continue
				}
				if defined[int(a)/64]&(1<<(uint(a)%64)) == 0 {
					return errf(b, idx, i, "%v reads %v before any definition reaches it",
						i.Op, a)
				}
			}
			for _, d := range i.Dst {
				if d != NoReg {
					defined[int(d)/64] |= 1 << (uint(d) % 64)
				}
			}
		}
	}
	return nil
}
