package ir

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Fprint writes every function of the program as readable text. Output is
// deterministic and byte-stable across runs: functions print in declaration
// order (Program.Order), and any function present only in the Funcs map —
// which a transform could leave behind — is appended in sorted name order
// rather than map order.
func Fprint(w io.Writer, p *Program) error {
	listed := make(map[string]bool, len(p.Order))
	for _, name := range p.Order {
		listed[name] = true
		if fn := p.Funcs[name]; fn != nil {
			if _, err := io.WriteString(w, fn.String()); err != nil {
				return err
			}
		}
	}
	var rest []string
	for name := range p.Funcs {
		if !listed[name] {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	for _, name := range rest {
		if _, err := io.WriteString(w, p.Funcs[name].String()); err != nil {
			return err
		}
	}
	return nil
}

// String renders the whole program (see Fprint).
func (p *Program) String() string {
	var b strings.Builder
	_ = Fprint(&b, p)
	return b.String()
}

// String renders the function as readable text for tests and tooling.
func (f *Func) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s(", f.Kind, f.Name)
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.String())
	}
	b.WriteString(") {\n")
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "b%d:\n", blk.ID)
		for _, in := range blk.Instrs {
			fmt.Fprintf(&b, "\t%s\n", in)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// String renders one instruction.
func (i *Instr) String() string {
	var b strings.Builder
	if len(i.Dst) > 0 {
		for j, d := range i.Dst {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(d.String())
		}
		b.WriteString(" = ")
	}
	b.WriteString(i.Op.String())
	switch i.Op {
	case OpConst:
		fmt.Fprintf(&b, " %d", i.Imm)
	case OpLockAcquire, OpLockRelease:
		fmt.Fprintf(&b, " #%d", i.Imm)
	}
	if i.Global != nil {
		fmt.Fprintf(&b, " @%s", i.Global.Name)
		fmt.Fprintf(&b, "+%d", i.Off)
	}
	if i.Proto != nil {
		fmt.Fprintf(&b, " <%s>", i.Proto.Name)
	}
	if i.Field != nil {
		fmt.Fprintf(&b, " .%s", i.Field.Name)
	}
	if i.Chan != nil {
		fmt.Fprintf(&b, " ->%s", i.Chan.Name)
	}
	if i.Callee != "" {
		fmt.Fprintf(&b, " %s", i.Callee)
	}
	if i.Field == nil && (i.Op == OpPktLoad || i.Op == OpPktStore) {
		fmt.Fprintf(&b, " raw[%d:%d]", i.Off, int(i.Off)+i.Width)
	}
	for _, a := range i.Args {
		fmt.Fprintf(&b, " %s", a.String())
	}
	for _, t := range i.Blocks {
		fmt.Fprintf(&b, " b%d", t.ID)
	}
	if i.StaticOff != 0 && (i.Op == OpPktLoad || i.Op == OpPktStore || i.Op == OpEncap || i.Op == OpDecap) {
		if i.StaticOff == UnknownOff {
			b.WriteString(" !off=?")
		} else {
			fmt.Fprintf(&b, " !off=%d", i.StaticOff)
		}
	}
	return b.String()
}
