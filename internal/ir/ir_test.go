package ir

import (
	"strings"
	"testing"
)

// buildDiamond creates entry -> (a | b) -> join with a few instructions.
func buildDiamond() *Func {
	f := &Func{Name: "t.f", Kind: FuncPPF}
	entry := f.NewBlock()
	a := f.NewBlock()
	b := f.NewBlock()
	join := f.NewBlock()
	f.Entry = entry
	r0 := f.NewReg(ClassWord)
	r1 := f.NewReg(ClassWord)
	entry.Instrs = []*Instr{
		{Op: OpConst, Dst: []Reg{r0}, Imm: 1},
		{Op: OpCondBr, Args: []Reg{r0}, Blocks: []*Block{a, b}},
	}
	a.Instrs = []*Instr{
		{Op: OpConst, Dst: []Reg{r1}, Imm: 2},
		{Op: OpBr, Blocks: []*Block{join}},
	}
	b.Instrs = []*Instr{
		{Op: OpConst, Dst: []Reg{r1}, Imm: 3},
		{Op: OpBr, Blocks: []*Block{join}},
	}
	join.Instrs = []*Instr{{Op: OpRet, Args: []Reg{r1}}}
	f.ComputeCFG()
	return f
}

func TestComputeCFG(t *testing.T) {
	f := buildDiamond()
	if len(f.Blocks) != 4 {
		t.Fatalf("blocks = %d", len(f.Blocks))
	}
	entry := f.Entry
	if len(entry.Succs) != 2 {
		t.Errorf("entry succs = %d, want 2", len(entry.Succs))
	}
	join := f.Blocks[3]
	if len(join.Preds) != 2 {
		t.Errorf("join preds = %d, want 2", len(join.Preds))
	}
}

func TestComputeCFGPrunesUnreachable(t *testing.T) {
	f := buildDiamond()
	dead := f.NewBlock()
	dead.Instrs = []*Instr{{Op: OpRet}}
	f.ComputeCFG()
	for _, b := range f.Blocks {
		if b == dead {
			t.Fatal("unreachable block not pruned")
		}
	}
}

func TestCloneIsDeepAndIsomorphic(t *testing.T) {
	f := buildDiamond()
	c := f.Clone()
	if c.NumRegs != f.NumRegs || len(c.Blocks) != len(f.Blocks) {
		t.Fatalf("clone shape differs")
	}
	// Mutating the clone must not affect the original.
	c.Blocks[1].Instrs[0].Imm = 99
	if f.Blocks[1].Instrs[0].Imm == 99 {
		t.Error("clone shares instructions with the original")
	}
	// Branch targets must point at clone blocks, not original ones.
	orig := map[*Block]bool{}
	for _, b := range f.Blocks {
		orig[b] = true
	}
	for _, b := range c.Blocks {
		for _, in := range b.Instrs {
			for _, tgt := range in.Blocks {
				if orig[tgt] {
					t.Fatal("clone branch targets original block")
				}
			}
		}
	}
	if orig[c.Entry] {
		t.Fatal("clone entry is the original entry")
	}
}

func TestPrintContainsStructure(t *testing.T) {
	f := buildDiamond()
	s := f.String()
	for _, want := range []string{"ppf t.f", "condbr", "const 2", "const 3", "ret"} {
		if !strings.Contains(s, want) {
			t.Errorf("printout missing %q:\n%s", want, s)
		}
	}
}

func TestTerminatorDetection(t *testing.T) {
	f := buildDiamond()
	for _, b := range f.Blocks {
		if b.Terminator() == nil {
			t.Errorf("b%d has no terminator", b.ID)
		}
	}
	empty := &Block{}
	if empty.Terminator() != nil {
		t.Error("empty block reported a terminator")
	}
}

func TestRegClasses(t *testing.T) {
	f := &Func{}
	w := f.NewReg(ClassWord)
	h := f.NewReg(ClassHandle)
	if f.RegClasses[w] != ClassWord || f.RegClasses[h] != ClassHandle {
		t.Error("register classes not recorded")
	}
	if w == h {
		t.Error("registers not distinct")
	}
}
