// Package ir defines Shangri-La's medium-level intermediate representation,
// the stand-in for ORC's WHIRL in the paper's Figure 5 pipeline.
//
// The IR is a conventional control-flow graph of three-address instructions
// over virtual registers, extended with the packet-processing primitives the
// specialized optimizations (PAC, SOAR, PHR, SWC) analyze and rewrite:
// packet field loads/stores, metadata accesses, encapsulation operations and
// channel puts. Memory instructions carry the global they touch so the
// IPA/global optimizer can map data to memory levels and pick caching
// candidates.
package ir

import (
	"fmt"

	"shangrila/internal/baker/token"
	"shangrila/internal/baker/types"
)

// Reg is a virtual register, dense within a function.
type Reg int

// NoReg marks an absent register operand.
const NoReg Reg = -1

func (r Reg) String() string {
	if r == NoReg {
		return "_"
	}
	return fmt.Sprintf("%%v%d", int(r))
}

// RegClass distinguishes plain 32-bit words from packet handles.
type RegClass uint8

const (
	// ClassWord is a 32-bit integer value.
	ClassWord RegClass = iota
	// ClassHandle is an opaque packet handle.
	ClassHandle
)

// Op enumerates IR operations.
type Op int

const (
	OpInvalid Op = iota

	// Data movement and arithmetic. Dst[0] = op(Args...).
	OpConst // Dst[0] = Imm
	OpMov   // Dst[0] = Args[0]
	OpAdd
	OpSub
	OpMul
	OpDivU
	OpRemU
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShrU // logical shift right
	OpShrS // arithmetic shift right
	OpNot
	OpNeg

	// Comparisons produce 0 or 1 in Dst[0].
	OpEq
	OpNe
	OpLtU
	OpLeU
	OpLtS
	OpLeS

	// Control flow (block terminators). Targets in Blocks.
	OpBr     // Blocks[0]
	OpCondBr // Args[0] nonzero -> Blocks[0], else Blocks[1]
	OpRet    // optional Args[0]

	// Calls. Dst[0] optional; Callee is the qualified function name.
	OpCall

	// Global data access. Global names the structure; the byte address
	// within it is Off plus Args[0] (optional index register, bytes).
	// Width is the access size in bytes (a multiple of 4 after PAC).
	// Dst/Args hold Width/4 registers for wide accesses.
	OpLoad  // Dst[0..n] = global[Off + Args[0]?]
	OpStore // global[Off + Args[0]?] = Args[1..] (Args[0] may be NoReg)

	// Packet data access through a handle (Args[0] = handle).
	// Pre-PAC: Field names one protocol bit field; Dst[0] receives the
	// zero-extended value (loads) or Args[1] supplies it (stores).
	// Post-PAC: Field == nil, Off/Width give a raw byte range relative to
	// the handle's current header, and Dst/Args carry Width/4 word regs.
	OpPktLoad
	OpPktStore

	// Packet metadata access (Args[0] = handle). Same Field conventions.
	OpMetaLoad
	OpMetaStore

	// Encapsulation primitives (§2.2). Dst[0] = new handle, Args[0] = old.
	// Proto is the protocol of the resulting handle's header.
	OpEncap
	OpDecap

	// Other packet primitives.
	OpPktCopy    // Dst[0] = copy(Args[0])
	OpPktCreate  // Dst[0] = fresh packet of Proto
	OpPktDrop    // drop(Args[0])
	OpAddTail    // add Args[1] bytes to tail of Args[0]
	OpRemoveTail // remove Args[1] bytes from tail of Args[0]
	OpPktLength  // Dst[0] = payload length of Args[0]

	// Channel output: place Args[0]'s packet on Chan.
	OpChanPut

	// Critical sections: Imm is the static lock ID.
	OpLockAcquire
	OpLockRelease

	// SWC-generated operations (emitted by the software-cache transform).
	OpCacheLookup // Dst[0] = hit(0/1), Dst[1] = CAM entry, Dst[2..] = cached words; Global, Off/Args[0] key
	OpCacheFill   // install line at entry Args[0]; Args[1] = index (or NoReg), Args[2..] = words; Global
	OpCacheFlush  // invalidate all cached lines of Global
)

var opNames = map[Op]string{
	OpConst: "const", OpMov: "mov", OpAdd: "add", OpSub: "sub", OpMul: "mul",
	OpDivU: "divu", OpRemU: "remu", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpShrU: "shru", OpShrS: "shrs", OpNot: "not", OpNeg: "neg",
	OpEq: "eq", OpNe: "ne", OpLtU: "ltu", OpLeU: "leu", OpLtS: "lts", OpLeS: "les",
	OpBr: "br", OpCondBr: "condbr", OpRet: "ret", OpCall: "call",
	OpLoad: "load", OpStore: "store",
	OpPktLoad: "pktload", OpPktStore: "pktstore",
	OpMetaLoad: "metaload", OpMetaStore: "metastore",
	OpEncap: "encap", OpDecap: "decap",
	OpPktCopy: "pktcopy", OpPktCreate: "pktcreate", OpPktDrop: "pktdrop",
	OpAddTail: "addtail", OpRemoveTail: "removetail", OpPktLength: "pktlength",
	OpChanPut:     "chanput",
	OpLockAcquire: "lock", OpLockRelease: "unlock",
	OpCacheLookup: "cachelookup", OpCacheFill: "cachefill", OpCacheFlush: "cacheflush",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// IsTerminator reports whether o ends a basic block.
func (o Op) IsTerminator() bool { return o == OpBr || o == OpCondBr || o == OpRet }

// UnknownOff marks an unresolved static packet offset (SOAR lattice bottom).
const UnknownOff int32 = -1 << 30

// Instr is one IR instruction. Fields beyond Op/Dst/Args carry op-specific
// payload; see the Op constants for each operation's conventions.
type Instr struct {
	Op   Op
	Pos  token.Pos
	Dst  []Reg
	Args []Reg
	Imm  uint64

	Global *types.Global
	Proto  *types.Protocol
	Field  *types.ProtoField
	Chan   *types.Channel
	Callee string
	Off    int32 // byte offset (global ops; raw packet ops)
	Width  int   // access width in bytes (raw packet ops, wide loads)

	// SOAR results: the handle's resolved header offset from the packet
	// start at this access, and its alignment guarantee in bytes.
	// StaticOff == UnknownOff means unresolved; StaticAlign 0 means unknown.
	StaticOff   int32
	StaticAlign int
	// StaticMin is SOAR's proven lower bound on the handle's offset (0
	// when nothing is known). PAC uses it to alias handles through
	// packet_encap safely: an encap at offset >= header size never grows
	// the buffer front.
	StaticMin int32

	Blocks []*Block // branch targets
}

// Dst0 returns the sole destination or NoReg.
func (i *Instr) Dst0() Reg {
	if len(i.Dst) == 0 {
		return NoReg
	}
	return i.Dst[0]
}

// Block is a basic block.
type Block struct {
	ID     int
	Instrs []*Instr
	Preds  []*Block
	Succs  []*Block
}

// Terminator returns the block's final instruction, or nil if the block is
// not yet terminated.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if last.Op.IsTerminator() {
		return last
	}
	return nil
}

// Func is an IR function: the lowered body of a Baker PPF or function.
type Func struct {
	Name   string // qualified "module.name"
	Kind   FuncKind
	Params []Reg
	// ParamClasses mirrors Params.
	ParamClasses []RegClass
	Blocks       []*Block
	Entry        *Block
	NumRegs      int
	RegClasses   []RegClass // indexed by Reg
	// InProto is the input packet protocol for PPFs.
	InProto *types.Protocol
	// Source is the originating semantic function.
	Source *types.Func
}

// FuncKind mirrors ast.FuncKind without importing ast here.
type FuncKind int

// Function kinds.
const (
	FuncPPF FuncKind = iota
	FuncHelper
	FuncControl
	FuncInit
)

func (k FuncKind) String() string {
	switch k {
	case FuncPPF:
		return "ppf"
	case FuncHelper:
		return "func"
	case FuncControl:
		return "control"
	case FuncInit:
		return "init"
	}
	return "?"
}

// NewReg allocates a fresh virtual register of the given class.
func (f *Func) NewReg(c RegClass) Reg {
	r := Reg(f.NumRegs)
	f.NumRegs++
	f.RegClasses = append(f.RegClasses, c)
	return r
}

// NewBlock appends a fresh empty block.
func (f *Func) NewBlock() *Block {
	b := &Block{ID: len(f.Blocks)}
	f.Blocks = append(f.Blocks, b)
	return b
}

// ComputeCFG rebuilds Preds/Succs from terminators and prunes unreachable
// blocks.
func (f *Func) ComputeCFG() {
	for _, b := range f.Blocks {
		b.Preds = b.Preds[:0]
		b.Succs = b.Succs[:0]
	}
	for _, b := range f.Blocks {
		t := b.Terminator()
		if t == nil {
			continue
		}
		for _, s := range t.Blocks {
			b.Succs = append(b.Succs, s)
		}
	}
	// Reachability from entry.
	reach := map[*Block]bool{}
	var stack []*Block
	if f.Entry != nil {
		stack = append(stack, f.Entry)
		reach[f.Entry] = true
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
	}
	kept := f.Blocks[:0]
	for _, b := range f.Blocks {
		if reach[b] {
			kept = append(kept, b)
		}
	}
	f.Blocks = kept
	for i, b := range f.Blocks {
		b.ID = i
	}
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			s.Preds = append(s.Preds, b)
		}
	}
}

// Program is the IR for a whole Baker application plus the semantic model it
// was lowered from.
type Program struct {
	Types *types.Program
	Funcs map[string]*Func
	// Order preserves deterministic declaration order.
	Order []string
	// NumLocks is the number of static critical-section locks.
	NumLocks int
}

// Func returns the named function or nil.
func (p *Program) Func(name string) *Func { return p.Funcs[name] }

// PPFs returns the packet processing functions in declaration order.
func (p *Program) PPFs() []*Func {
	var out []*Func
	for _, name := range p.Order {
		if f := p.Funcs[name]; f.Kind == FuncPPF {
			out = append(out, f)
		}
	}
	return out
}
