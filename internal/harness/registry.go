package harness

import (
	"flag"
	"fmt"
	"io"
	"strings"

	"shangrila/internal/apps"
)

// ExpContext is the shared environment the CLI hands every experiment:
// where to print, the resolved common flags and harness options, the
// standard measurement windows (full or -quick), and the report builder
// every experiment's machine-readable output lands in.
type ExpContext struct {
	Out    io.Writer
	Quick  bool
	Common *CommonFlags
	// Opts are the resolved cross-experiment options (seed, workers,
	// telemetry, engine, stall breakdowns...). Experiments append their
	// own and must not mutate the shared slice in place.
	Opts []Option
	// Cfg is the standard run configuration; FigWarm/FigMeas are the
	// shorter figure-sweep windows; Loads is the load–latency sweep.
	Cfg              RunConfig
	FigWarm, FigMeas int64
	Loads            []float64
	// Report collects every experiment's machine-readable results on
	// the single canonical path (schema v6).
	Report *ReportBuilder
}

// Options returns a copy of the shared option slice with extra appended,
// safe for per-experiment extension.
func (ctx *ExpContext) Options(extra ...Option) []Option {
	return append(append([]Option{}, ctx.Opts...), extra...)
}

// Experiment is one self-registered entry of the evaluation suite. The
// CLIs dispatch exclusively through the registry: an experiment's name,
// synopsis, private flags and runner live together here, so the usage
// text, the -experiment value set and the dispatch switch cannot drift
// apart.
type Experiment struct {
	Name     string
	Synopsis string // one-line description for generated usage text

	// Flags, when non-nil, registers the experiment's private flags on
	// fs and returns the value struct they land in; the same struct is
	// passed back to Run/RunApp. Each call must return fresh storage so
	// bindings on different FlagSets stay isolated.
	Flags func(fs *flag.FlagSet) any

	// Run executes the experiment across its own app selection.
	Run func(ctx *ExpContext, flags any) error

	// RunApp, when non-nil, runs the experiment against one explicit
	// app — the single-app CLI (ixpsim) dispatches through it.
	RunApp func(ctx *ExpContext, a *apps.App, flags any) error
}

// ExperimentRegistry is an ordered experiment collection. The zero value
// is not usable; construct with NewExperimentRegistry.
type ExperimentRegistry struct {
	order  []*Experiment
	byName map[string]*Experiment
}

// NewExperimentRegistry returns an empty registry.
func NewExperimentRegistry() *ExperimentRegistry {
	return &ExperimentRegistry{byName: map[string]*Experiment{}}
}

// Register adds an experiment. Empty names, nil runners and name
// collisions are errors — a collision means two experiments would race
// for one -experiment value.
func (r *ExperimentRegistry) Register(e *Experiment) error {
	switch {
	case e == nil || e.Name == "":
		return fmt.Errorf("experiment registry: empty name")
	case e.Run == nil:
		return fmt.Errorf("experiment registry: %s: nil Run", e.Name)
	case e.Name == "all" || strings.Contains(e.Name, ","):
		return fmt.Errorf("experiment registry: %s: name collides with selection syntax", e.Name)
	}
	if _, dup := r.byName[e.Name]; dup {
		return fmt.Errorf("experiment registry: duplicate experiment %q", e.Name)
	}
	r.byName[e.Name] = e
	r.order = append(r.order, e)
	return nil
}

// Names returns the experiment names in registration order.
func (r *ExperimentRegistry) Names() []string {
	out := make([]string, len(r.order))
	for i, e := range r.order {
		out[i] = e.Name
	}
	return out
}

// Lookup returns the named experiment.
func (r *ExperimentRegistry) Lookup(name string) (*Experiment, bool) {
	e, ok := r.byName[name]
	return e, ok
}

// Select resolves an -experiment value: "all" (or empty) selects every
// experiment; otherwise a comma-separated list of names. Unknown names
// are an error listing the valid set — the CLI turns that into a
// nonzero exit instead of silently running nothing. The selection runs
// in registration order regardless of how the list was spelled.
func (r *ExperimentRegistry) Select(spec string) ([]*Experiment, error) {
	if spec == "" || spec == "all" {
		return append([]*Experiment{}, r.order...), nil
	}
	want := map[string]bool{}
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if name == "all" {
			return append([]*Experiment{}, r.order...), nil
		}
		if _, ok := r.byName[name]; !ok {
			return nil, fmt.Errorf("unknown experiment %q (valid: %s)", name, r.UsageSpec())
		}
		want[name] = true
	}
	if len(want) == 0 {
		return nil, fmt.Errorf("empty experiment selection (valid: %s)", r.UsageSpec())
	}
	var out []*Experiment
	for _, e := range r.order {
		if want[e.Name] {
			out = append(out, e)
		}
	}
	return out, nil
}

// BindFlags registers every experiment's private flags on fs and returns
// the per-experiment value structs, keyed by name — pass the matching
// entry back to Run/RunApp. Each call creates fresh storage, so several
// FlagSets can carry independent bindings.
func (r *ExperimentRegistry) BindFlags(fs *flag.FlagSet) map[string]any {
	out := map[string]any{}
	for _, e := range r.order {
		if e.Flags != nil {
			out[e.Name] = e.Flags(fs)
		}
	}
	return out
}

// UsageSpec returns the -experiment value syntax, generated from the
// registry so it cannot drift from what Select accepts.
func (r *ExperimentRegistry) UsageSpec() string {
	return "all|" + strings.Join(r.Names(), "|")
}

// Synopses renders one "name — synopsis" line per experiment for
// generated usage text.
func (r *ExperimentRegistry) Synopses() string {
	var b strings.Builder
	w := 0
	for _, e := range r.order {
		if len(e.Name) > w {
			w = len(e.Name)
		}
	}
	for _, e := range r.order {
		fmt.Fprintf(&b, "  %-*s  %s\n", w, e.Name, e.Synopsis)
	}
	return b.String()
}

// defaultRegistry is the process-wide registry the built-in experiments
// self-register into (experiments.go init).
var defaultRegistry = NewExperimentRegistry()

// RegisterExperiment adds an experiment to the default registry,
// panicking on collision (registration happens at init time; a
// collision is a programming error).
func RegisterExperiment(e *Experiment) {
	if err := defaultRegistry.Register(e); err != nil {
		panic(err)
	}
}

// Experiments returns the default registry.
func Experiments() *ExperimentRegistry { return defaultRegistry }
