package harness

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// ProfileFlags is the host-side profiling surface shared by cmd/ixpsim
// and cmd/shangrila-bench: a CPU profile over the whole command and a
// heap profile written at exit. Both files feed `go tool pprof` directly;
// they profile the simulator itself (the Go process), not the simulated
// machine — for simulated-cycle attribution use -stalls/-trace.
type ProfileFlags struct {
	CPUProfile string
	MemProfile string

	cpuFile *os.File
}

// RegisterProfileFlags registers -cpuprofile and -memprofile on fs and
// returns the struct the parsed values land in.
func RegisterProfileFlags(fs *flag.FlagSet) *ProfileFlags {
	f := &ProfileFlags{}
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a host CPU profile for `go tool pprof` to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a host heap profile for `go tool pprof` to this file at exit")
	return f
}

// Start begins CPU profiling when -cpuprofile was given. It must be
// paired with Stop; the usual shape is
//
//	if err := prof.Start(); err != nil { ... }
//	defer prof.Stop()
//
// taking care that Stop also runs on the error exits (os.Exit skips
// deferred calls).
func (f *ProfileFlags) Start() error {
	if f.CPUProfile == "" {
		return nil
	}
	file, err := os.Create(f.CPUProfile)
	if err != nil {
		return fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(file); err != nil {
		file.Close()
		return fmt.Errorf("cpuprofile: %w", err)
	}
	f.cpuFile = file
	return nil
}

// Stop finishes the CPU profile and writes the heap profile, as
// requested. It is idempotent so error paths and the normal exit can
// both call it.
func (f *ProfileFlags) Stop() error {
	if f.cpuFile != nil {
		pprof.StopCPUProfile()
		err := f.cpuFile.Close()
		f.cpuFile = nil
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
	}
	if f.MemProfile != "" {
		file, err := os.Create(f.MemProfile)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		defer file.Close()
		runtime.GC() // settle the heap so the profile shows live objects
		if err := pprof.WriteHeapProfile(file); err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		f.MemProfile = "" // idempotence: write once
	}
	return nil
}
