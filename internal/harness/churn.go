package harness

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"shangrila/internal/apps"
	"shangrila/internal/driver"
	"shangrila/internal/ixp"
	"shangrila/internal/metrics"
	"shangrila/internal/profiler"
	"shangrila/internal/rts"
	"shangrila/internal/workload"
)

// The churn experiment: dynamic policy updates end-to-end. A seeded
// control-plane update storm (route add/withdraw, rule flips, label
// rewrites) is applied through the XScale control path while the data
// plane forwards an open-loop workload; goodput and latency are reported
// as a timeline of equal cycle buckets so update bursts are visible, and
// the same policy deltas drive an incremental-compilation session to
// compare full-vs-incremental compile latency.

// churnBuckets is the timeline resolution of one churn run.
const churnBuckets = 8

// churnColdSamples / churnIncSamples size the compile-latency
// comparison: cold full compiles vs single-delta incremental recompiles.
const (
	churnColdSamples = 3
	churnIncSamples  = 8
)

// ChurnBucket is one timeline segment of a churn run. Counters reset at
// every bucket boundary, so rates and latency quantiles are local to the
// segment.
type ChurnBucket struct {
	StartCycle  int64   `json:"start_cycle"`
	EndCycle    int64   `json:"end_cycle"`
	GoodputGbps float64 `json:"goodput_gbps"`
	TxPackets   uint64  `json:"tx_packets"`
	// UpdatesApplied counts control-plane updates that fired in this
	// segment; CAMClears counts the software-cache flushes they induced
	// across all MEs (the delayed-update protocol's visible cost).
	UpdatesApplied int                       `json:"updates_applied"`
	CAMClears      uint64                    `json:"cam_clears"`
	Latency        metrics.HistogramSnapshot `json:"latency_cycles"`
}

// ChurnCompileLatency compares the control plane's recompile cost with
// and without the incremental session: wall-clock percentiles (zeroed in
// canonical reports) plus the deterministic executed/skipped pass counts
// behind them.
type ChurnCompileLatency struct {
	ColdSamples  int   `json:"cold_samples"`
	IncSamples   int   `json:"inc_samples"`
	ColdP50Nanos int64 `json:"cold_p50_nanos"`
	ColdP99Nanos int64 `json:"cold_p99_nanos"`
	IncP50Nanos  int64 `json:"inc_p50_nanos"`
	IncP99Nanos  int64 `json:"inc_p99_nanos"`
	// ColdPasses is the pipeline length; IncExecuted/IncSkipped split it
	// for the median incremental recompile.
	ColdPasses  int `json:"cold_passes"`
	IncExecuted int `json:"inc_executed"`
	IncSkipped  int `json:"inc_skipped"`
}

// ChurnResult is one app × level churn run.
type ChurnResult struct {
	App    string `json:"app"`
	Level  string `json:"level"`
	NumMEs int    `json:"num_mes"`
	Seed   uint64 `json:"seed"`
	Engine string `json:"engine"`
	Shards int    `json:"shards,omitempty"`

	Churn    workload.ChurnSpec `json:"churn"`
	Workload workload.Spec      `json:"workload"`
	Updates  rts.ChurnStats     `json:"updates"`

	Buckets []ChurnBucket        `json:"buckets"`
	Compile *ChurnCompileLatency `json:"compile_latency,omitempty"`
}

// defaultChurnSpec is the standard update storm: ~30 updates across the
// default measurement window (900k cycles at 600 MHz ≈ 1.5 ms), arriving
// in bursts of two.
func defaultChurnSpec() workload.ChurnSpec {
	return workload.ChurnSpec{UpdatesPerSec: 20_000, Burst: 2}
}

// defaultChurnWorkload offers moderate fixed-rate 64B traffic, below
// saturation so latency shifts from update churn stay visible.
func defaultChurnWorkload() workload.Spec {
	return workload.Spec{OfferedGbps: 1.5}
}

// churnEvents expands the spec into scheduled control calls covering
// [start, start+span) cycles against the app's churn policy.
func churnEvents(a *apps.App, sp workload.ChurnSpec, clockMHz float64, start, span int64) ([]rts.Update, error) {
	if a.Churn == nil || len(a.Churn.Targets) == 0 {
		return nil, fmt.Errorf("harness: app %s declares no churn policy", a.Name)
	}
	cs, err := workload.NewChurnStream(sp)
	if err != nil {
		return nil, err
	}
	var ups []rts.Update
	at := start
	for {
		ev := cs.Next()
		at += int64(ev.GapSeconds * clockMHz * 1e6)
		if at >= start+span {
			return ups, nil
		}
		ups = append(ups, rts.Update{
			At:      at,
			Control: a.Churn.State(ev.Item, ev.Version, ev.Withdraw),
		})
	}
}

// nanoPercentile returns the p-th percentile of the sorted samples.
func nanoPercentile(sorted []int64, p int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := len(sorted) * p / 100
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// measureCompileLatency times cold full compiles against single-delta
// incremental recompiles through a driver.Session, feeding the session
// the same churn policy states the runtime applies.
func measureCompileLatency(a *apps.App, sp workload.ChurnSpec, s *settings) (*ChurnCompileLatency, error) {
	mk := func() (*driver.Session, error) {
		prog, err := driver.LowerSource(a.Name+".baker", a.Source)
		if err != nil {
			return nil, err
		}
		cfg := driverConfig(a, s.level, a.Trace(prog.Types, s.run.Seed, 512), s)
		cfg.DumpPass, cfg.DumpDir = "", "" // latency sampling never dumps
		return driver.NewSession(prog, cfg)
	}
	cl := &ChurnCompileLatency{}
	var cold []int64
	var sess *driver.Session
	for i := 0; i < churnColdSamples; i++ {
		se, err := mk()
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		res, err := se.Compile()
		if err != nil {
			return nil, err
		}
		cold = append(cold, time.Since(t0).Nanoseconds())
		cl.ColdPasses = len(res.Report.Passes)
		sess = se
	}
	cs, err := workload.NewChurnStream(sp)
	if err != nil {
		return nil, err
	}
	var inc []int64
	for i := 0; i < churnIncSamples; i++ {
		ev := cs.Next()
		ctl := a.Churn.State(ev.Item, ev.Version, ev.Withdraw)
		t0 := time.Now()
		res, err := sess.Recompile(driver.Delta{AddControls: []profiler.Control{ctl}})
		if err != nil {
			return nil, err
		}
		inc = append(inc, time.Since(t0).Nanoseconds())
		exec, skip := 0, 0
		for _, pt := range res.Report.Passes {
			if pt.Skipped {
				skip++
			} else {
				exec++
			}
		}
		cl.IncExecuted, cl.IncSkipped = exec, skip
	}
	sort.Slice(cold, func(i, j int) bool { return cold[i] < cold[j] })
	sort.Slice(inc, func(i, j int) bool { return inc[i] < inc[j] })
	cl.ColdSamples, cl.IncSamples = len(cold), len(inc)
	cl.ColdP50Nanos = nanoPercentile(cold, 50)
	cl.ColdP99Nanos = nanoPercentile(cold, 99)
	cl.IncP50Nanos = nanoPercentile(inc, 50)
	cl.IncP99Nanos = nanoPercentile(inc, 99)
	return cl, nil
}

// ChurnRun measures one app under a control-plane update storm. The
// churn stream comes from WithChurn (default: defaultChurnSpec), the
// data-plane workload from WithWorkload (default: 1.5 Gbps fixed 64B),
// and WithSWCMaxCheck bounds how stale any ME's cached view may get.
func ChurnRun(a *apps.App, opts ...Option) (*ChurnResult, error) {
	s := defaultSettings()
	s.apply(opts)

	csp := defaultChurnSpec()
	if s.churn != nil {
		csp = *s.churn
		if csp.UpdatesPerSec == 0 {
			csp.UpdatesPerSec = defaultChurnSpec().UpdatesPerSec
		}
	}
	if csp.Seed == 0 {
		csp.Seed = s.run.Seed + 2 // distinct from profile (seed) and traffic (seed+1)
	}
	if csp.Items == 0 && a.Churn != nil {
		csp.Items = len(a.Churn.Targets)
	}
	csp, err := csp.Normalize()
	if err != nil {
		return nil, err
	}

	wsp := defaultChurnWorkload()
	if s.workload != nil {
		wsp = *s.workload
	}
	if wsp.Seed == 0 {
		wsp.Seed = s.run.Seed + 1
	}
	wsp, err = wsp.Normalize()
	if err != nil {
		return nil, err
	}

	res := s.compiled
	if res == nil {
		res, err = compile(a, s.level, s.run.Seed, &s)
		if err != nil {
			return nil, fmt.Errorf("%s at %v: %w", a.Name, s.level, err)
		}
	}

	trc := a.Trace(res.Prog.Types, s.run.Seed+1, s.run.TraceN)
	var cfg ixp.Config
	if s.metricsReg != nil {
		cfg = ixp.DefaultConfig()
		cfg.Metrics = s.metricsReg
	}
	rt, err := rts.New(res.Image, res.Prog, trc, rts.Options{
		NumMEs: s.run.NumMEs, Cfg: cfg, Workload: &wsp, Engine: s.engine,
	})
	if err != nil {
		return nil, err
	}
	for _, c := range a.Controls {
		if err := rt.Control(c.Name, c.Args...); err != nil {
			return nil, fmt.Errorf("%s control %s: %w", a.Name, c.Name, err)
		}
	}
	if err := rt.Run(s.run.Warmup); err != nil {
		return nil, fmt.Errorf("%s warmup: %w", a.Name, err)
	}

	ups, err := churnEvents(a, csp, rt.M.Cfg.ClockMHz, rt.M.Now(), s.run.Measure)
	if err != nil {
		return nil, err
	}
	st := rt.ScheduleUpdates(ups)

	engName, engShards := rt.M.EngineInfo()
	out := &ChurnResult{
		App:      a.Name,
		Level:    res.Report.Level.String(),
		NumMEs:   s.run.NumMEs,
		Seed:     s.run.Seed,
		Engine:   engName,
		Shards:   engShards,
		Churn:    csp,
		Workload: wsp,
	}

	bucket := s.run.Measure / churnBuckets
	applied := 0
	for i := 0; i < churnBuckets; i++ {
		rt.M.ResetStats()
		start := rt.M.Now()
		span := bucket
		if i == churnBuckets-1 {
			span = s.run.Measure - int64(i)*bucket // absorb rounding
		}
		if err := rt.Run(span); err != nil {
			return nil, fmt.Errorf("%s churn bucket %d: %w", a.Name, i, err)
		}
		snap := rt.M.Snapshot()
		var clears uint64
		for _, c := range snap.CAMClears {
			clears += c
		}
		out.Buckets = append(out.Buckets, ChurnBucket{
			StartCycle:     start,
			EndCycle:       rt.M.Now(),
			GoodputGbps:    snap.Gbps(rt.M.Cfg.ClockMHz),
			TxPackets:      snap.TxPackets,
			UpdatesApplied: st.Applied - applied,
			CAMClears:      clears,
			Latency:        rt.M.Observer().Latency(),
		})
		applied = st.Applied
	}
	out.Updates = *st

	cl, err := measureCompileLatency(a, csp, &s)
	if err != nil {
		return nil, err
	}
	out.Compile = cl
	return out, nil
}

// ChurnExperiment runs the churn experiment for every app that declares
// a churn policy, at the configured level (default +SWC).
func ChurnExperiment(appList []*apps.App, opts ...Option) ([]*ChurnResult, error) {
	var out []*ChurnResult
	for _, a := range appList {
		if a.Churn == nil {
			continue
		}
		r, err := ChurnRun(a, opts...)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// FormatChurn renders churn timelines and compile-latency comparisons as
// aligned text tables.
func FormatChurn(results []*ChurnResult) string {
	var b strings.Builder
	for _, r := range results {
		fmt.Fprintf(&b, "%s %s (%d MEs, seed %d, %.0f upd/s burst %d, %.2fG offered)\n",
			r.App, r.Level, r.NumMEs, r.Seed,
			r.Churn.UpdatesPerSec, r.Churn.Burst, r.Workload.OfferedGbps)
		fmt.Fprintf(&b, "  %12s %8s %7s %7s %10s %10s\n",
			"cycles", "goodput", "updates", "flushes", "p50(cyc)", "p99(cyc)")
		for _, bk := range r.Buckets {
			fmt.Fprintf(&b, "  %5d-%-6d %7.2fG %7d %7d %10d %10d\n",
				bk.StartCycle, bk.EndCycle, bk.GoodputGbps,
				bk.UpdatesApplied, bk.CAMClears, bk.Latency.P50, bk.Latency.P99)
		}
		fmt.Fprintf(&b, "  updates: %d scheduled, %d applied, %d failed\n",
			r.Updates.Scheduled, r.Updates.Applied, r.Updates.Failed)
		if c := r.Compile; c != nil {
			fmt.Fprintf(&b, "  compile: cold p50 %v p99 %v (%d passes) | incremental p50 %v p99 %v (%d run / %d skipped)\n",
				time.Duration(c.ColdP50Nanos), time.Duration(c.ColdP99Nanos), c.ColdPasses,
				time.Duration(c.IncP50Nanos), time.Duration(c.IncP99Nanos), c.IncExecuted, c.IncSkipped)
		}
	}
	return b.String()
}
