package harness

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"shangrila/internal/bakergen"
	"shangrila/internal/ixp"
)

// TestFuzzCorpusReplay replays every checked-in minimized reproducer from
// testdata/fuzz-corpus against the full differential oracle. Each file is
// a bakergen.Spec that once exposed a real miscompile (PAC cross-decap
// cluster rebasing, SOAR front-growth offset clamping, PHR metadata
// localization vs PAC-combined raw accesses); the corpus pins those fixes
// as executable regression tests.
func TestFuzzCorpusReplay(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "fuzz-corpus", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("fuzz corpus is empty")
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			t.Parallel()
			raw, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			var spec bakergen.Spec
			if err := json.Unmarshal(raw, &spec); err != nil {
				t.Fatalf("corpus file does not parse as a spec: %v", err)
			}
			rep := DifferentialWith(DiffConfig{Seed: spec.Seed, TraceN: 12}, spec.Build())
			if !rep.OK() {
				t.Errorf("corpus reproducer diverges again:\n%s", rep)
			}
			// Replay on the staged-compilation engine: the corpus programs
			// are exactly the adversarial inputs (cross-decap rebasing,
			// front-growth clamping, metadata localization) a closure
			// compiler could mis-specialize, so the compiled verdict — and
			// the per-level cycle counts, which are deterministic — must
			// reproduce the serial run exactly.
			crep := DifferentialWith(DiffConfig{Seed: spec.Seed, TraceN: 12,
				Engine: ixp.EngineCompiled{}}, spec.Build())
			if !crep.OK() {
				t.Errorf("corpus reproducer diverges on compiled engine:\n%s", crep)
			}
			if !reflect.DeepEqual(rep.LevelCycles, crep.LevelCycles) {
				t.Errorf("compiled engine level cycles diverge: serial %v compiled %v",
					rep.LevelCycles, crep.LevelCycles)
			}
		})
	}
}
