package harness

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"shangrila/internal/bakergen"
)

// TestFuzzCorpusReplay replays every checked-in minimized reproducer from
// testdata/fuzz-corpus against the full differential oracle. Each file is
// a bakergen.Spec that once exposed a real miscompile (PAC cross-decap
// cluster rebasing, SOAR front-growth offset clamping, PHR metadata
// localization vs PAC-combined raw accesses); the corpus pins those fixes
// as executable regression tests.
func TestFuzzCorpusReplay(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "fuzz-corpus", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("fuzz corpus is empty")
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			t.Parallel()
			raw, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			var spec bakergen.Spec
			if err := json.Unmarshal(raw, &spec); err != nil {
				t.Fatalf("corpus file does not parse as a spec: %v", err)
			}
			rep := DifferentialWith(DiffConfig{Seed: spec.Seed, TraceN: 12}, spec.Build())
			if !rep.OK() {
				t.Errorf("corpus reproducer diverges again:\n%s", rep)
			}
		})
	}
}
