package harness

import (
	"encoding/json"
	"io"

	"shangrila/internal/driver"
	"shangrila/internal/ixp"
	"shangrila/internal/metrics"
	"shangrila/internal/workload"
)

// ReportPoint is one sweep point in the machine-readable bench report.
type ReportPoint struct {
	App    string `json:"app"`
	Level  string `json:"level"`
	NumMEs int    `json:"num_mes"`
	Seed   uint64 `json:"seed"`
	// Engine names the simulation engine the point ran on ("serial" or
	// "parallel"); Shards is the parallel engine's effective shard count
	// (0 for serial). Recorded per point so results measured on
	// different engines are never silently merged.
	Engine string `json:"engine"`
	Shards int    `json:"shards,omitempty"`

	Gbps      float64 `json:"gbps"`
	TxPackets uint64  `json:"tx_packets"`
	// PerPacket holds the Table 1 columns keyed by
	// {pkt_scratch, pkt_sram, pkt_dram, app_scratch, app_sram}.
	PerPacket map[string]float64 `json:"per_packet"`

	CodeSizes     []int               `json:"code_sizes,omitempty"`
	Stages        int                 `json:"stages,omitempty"`
	CompilePasses []driver.PassTiming `json:"compile_passes,omitempty"`
	Telemetry     *Telemetry          `json:"telemetry,omitempty"`
	// Stalls is the conservative per-ME stall breakdown (WithStallBreakdown).
	Stalls *ixp.StallReport `json:"stall_breakdown,omitempty"`

	// Workload-mode fields (set when the point ran with WithWorkload).
	Workload      *workload.Spec             `json:"workload,omitempty"`
	OfferedGbps   float64                    `json:"offered_gbps,omitempty"`
	RxPackets     uint64                     `json:"rx_packets,omitempty"`
	RxDropped     uint64                     `json:"rx_dropped,omitempty"`
	ChanOverflows uint64                     `json:"chan_overflows,omitempty"`
	AppDrops      uint64                     `json:"app_drops,omitempty"`
	Latency       *metrics.HistogramSnapshot `json:"latency_cycles,omitempty"`
}

// BenchReport is the top-level bench_report.json document.
type BenchReport struct {
	Schema string `json:"schema"`
	// Experiments names the experiments that contributed to this report,
	// in execution order — the registry records each one uniformly.
	Experiments []string      `json:"experiments,omitempty"`
	Points      []ReportPoint `json:"points"`
	// LoadLatency holds load–latency curves when the loadlatency
	// experiment ran.
	LoadLatency []*LoadCurve `json:"load_latency,omitempty"`
	// Churn holds the control-plane churn timelines when the churn
	// experiment ran.
	Churn []*ChurnResult `json:"churn,omitempty"`
	// Cluster holds multi-NPU line-card runs: topology, per-chip
	// goodput/imbalance, bucketed timelines and merged tail latency.
	Cluster []*ClusterResult `json:"cluster,omitempty"`
	// Fuzz holds compiler-fuzzing campaign results: programs run,
	// feature-coverage histogram, and any (minimized) divergent
	// reproducers.
	Fuzz []*FuzzResult `json:"fuzz,omitempty"`
}

// ReportSchema versions the bench report layout. v2 added the
// workload-mode point fields and the load_latency section; v3 records
// the simulation engine (and shard count) per point; v4 adds the churn
// section (goodput/latency timelines under control-plane update storms
// plus full-vs-incremental compile latency); v5 adds the experiments
// list and the cluster section (multi-NPU topology and per-chip
// points), with every experiment feeding one report builder; v6 adds
// the fuzz section (compiler-fuzzing campaign statistics and minimized
// divergence reproducers).
const ReportSchema = "shangrila-bench/v6"

// ReportBuilder accumulates every experiment's machine-readable output
// into one schema-v6 document — the single report-assembly path all
// experiments share.
type ReportBuilder struct {
	rep     BenchReport
	expSeen map[string]bool
}

// NewReportBuilder returns an empty builder at the current schema.
func NewReportBuilder() *ReportBuilder {
	return &ReportBuilder{
		rep:     BenchReport{Schema: ReportSchema},
		expSeen: map[string]bool{},
	}
}

// RecordExperiment notes that the named experiment contributed
// (idempotent; order of first contribution is kept).
func (b *ReportBuilder) RecordExperiment(name string) {
	if name == "" || b.expSeen[name] {
		return
	}
	b.expSeen[name] = true
	b.rep.Experiments = append(b.rep.Experiments, name)
}

// AddResults appends sweep results as report points, in result order.
func (b *ReportBuilder) AddResults(results []*Result) {
	for _, r := range results {
		b.rep.Points = append(b.rep.Points, ReportPoint{
			App:    r.App,
			Level:  r.Level.String(),
			NumMEs: r.NumMEs,
			Seed:   r.Seed,
			Engine: r.Engine,
			Shards: r.Shards,
			Gbps:   r.Gbps,
			PerPacket: map[string]float64{
				"pkt_scratch": r.PktScratch,
				"pkt_sram":    r.PktSRAM,
				"pkt_dram":    r.PktDRAM,
				"app_scratch": r.AppScratch,
				"app_sram":    r.AppSRAM,
			},
			TxPackets:     r.TxPackets,
			CodeSizes:     r.CodeSizes,
			Stages:        r.Stages,
			CompilePasses: r.CompilePasses,
			Telemetry:     r.Telemetry,
			Stalls:        r.Stalls,
			Workload:      r.Workload,
			OfferedGbps:   r.OfferedGbps,
			RxPackets:     r.RxPackets,
			RxDropped:     r.RxDropped,
			ChanOverflows: r.ChanOverflows,
			AppDrops:      r.AppDrops,
			Latency:       r.Latency,
		})
	}
}

// AddLoadCurves appends load–latency curves.
func (b *ReportBuilder) AddLoadCurves(curves []*LoadCurve) {
	b.rep.LoadLatency = append(b.rep.LoadLatency, curves...)
}

// AddChurn appends control-plane churn timelines.
func (b *ReportBuilder) AddChurn(results []*ChurnResult) {
	b.rep.Churn = append(b.rep.Churn, results...)
}

// AddCluster appends multi-NPU cluster runs.
func (b *ReportBuilder) AddCluster(results []*ClusterResult) {
	b.rep.Cluster = append(b.rep.Cluster, results...)
}

// AddFuzz appends a compiler-fuzzing campaign result.
func (b *ReportBuilder) AddFuzz(r *FuzzResult) {
	b.rep.Fuzz = append(b.rep.Fuzz, r)
}

// Empty reports whether nothing measurable was added (experiment names
// alone don't make a report worth writing).
func (b *ReportBuilder) Empty() bool {
	r := &b.rep
	return len(r.Points) == 0 && len(r.LoadLatency) == 0 &&
		len(r.Churn) == 0 && len(r.Cluster) == 0 && len(r.Fuzz) == 0
}

// Report returns the assembled document.
func (b *ReportBuilder) Report() *BenchReport { return &b.rep }

// BuildReport converts sweep results into the export document, in result
// order (a convenience wrapper over the builder).
func BuildReport(results []*Result) *BenchReport {
	b := NewReportBuilder()
	b.AddResults(results)
	return b.Report()
}

// WriteJSON writes the report as indented JSON (map keys marshal sorted,
// so identical reports produce identical bytes).
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// CanonicalJSON returns the report's deterministic byte form: wall-clock
// pass timings are zeroed (they vary run to run) while every simulated
// quantity — rates, access counts, telemetry, IR sizes — is kept. Two
// sweeps over the same points with the same seeds must produce identical
// canonical bytes at any worker count.
func (r *BenchReport) CanonicalJSON() ([]byte, error) {
	cp := BenchReport{
		Schema:      r.Schema,
		Experiments: r.Experiments,
		Points:      make([]ReportPoint, len(r.Points)),
		LoadLatency: r.LoadLatency,
		Churn:       make([]*ChurnResult, len(r.Churn)),
		// Cluster runs are fully simulated — no wall-clock fields —
		// so they pass through unchanged.
		Cluster: r.Cluster,
		Fuzz:    make([]*FuzzResult, len(r.Fuzz)),
	}
	copy(cp.Points, r.Points)
	for i := range cp.Points {
		if n := len(cp.Points[i].CompilePasses); n > 0 {
			passes := make([]driver.PassTiming, n)
			copy(passes, cp.Points[i].CompilePasses)
			for j := range passes {
				passes[j].Nanos = 0
				passes[j].VerifyNanos = 0
			}
			cp.Points[i].CompilePasses = passes
		}
	}
	// Churn timelines are fully simulated (byte-stable); only the
	// wall-clock compile-latency percentiles vary, so they are zeroed
	// while the deterministic pass counts stay.
	for i, cr := range r.Churn {
		c := *cr
		if c.Compile != nil {
			cl := *c.Compile
			cl.ColdP50Nanos, cl.ColdP99Nanos = 0, 0
			cl.IncP50Nanos, cl.IncP99Nanos = 0, 0
			c.Compile = &cl
		}
		cp.Churn[i] = &c
	}
	if len(cp.Churn) == 0 {
		cp.Churn = nil
	}
	// Fuzz campaigns are deterministic except for throughput timing.
	for i, fr := range r.Fuzz {
		f := *fr
		f.ElapsedNanos, f.ProgramsPerSec = 0, 0
		cp.Fuzz[i] = &f
	}
	if len(cp.Fuzz) == 0 {
		cp.Fuzz = nil
	}
	return json.MarshalIndent(&cp, "", "  ")
}
