package harness

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"shangrila/internal/apps"
	"shangrila/internal/driver"
	"shangrila/internal/ixp"
	"shangrila/internal/rts"
)

// The execution-engine differential suite: golden snapshots of
// Machine.Snapshot() and the stall breakdown, captured from the
// pre-predecode per-instruction interpreter, locked byte-identical against
// the current engine. Any change to instruction semantics, cycle
// accounting, event ordering, or stall attribution shows up as a golden
// mismatch. Regenerate with:
//
//	go test ./internal/harness -run TestEngineDifferential -update-golden
var updateGolden = flag.Bool("update-golden", false,
	"rewrite the execution-engine golden snapshots from the current engine")

// engineSnapshot is the canonical observable state of one measured run.
// Everything in it must be bit-identical across engine rewrites.
type engineSnapshot struct {
	Cycles        int64            `json:"cycles"`
	RxPackets     uint64           `json:"rx_packets"`
	RxBits        uint64           `json:"rx_bits"`
	TxPackets     uint64           `json:"tx_packets"`
	TxBits        uint64           `json:"tx_bits"`
	FreedPackets  uint64           `json:"freed_packets"`
	RxDropped     uint64           `json:"rx_dropped"`
	RxDroppedBits uint64           `json:"rx_dropped_bits"`
	RingOverflow  []uint64         `json:"ring_overflow"`
	MEAccesses    []string         `json:"me_accesses"`
	MEInstrs      []uint64         `json:"me_instrs"`
	MEBusy        []int64          `json:"me_busy"`
	CtrlBusy      [4]int64         `json:"ctrl_busy"`
	InFlight      int              `json:"in_flight"`
	RingMaxOcc    []int            `json:"ring_max_occ"`
	Stalls        *ixp.StallReport `json:"stalls"`
	LatencyCount  uint64           `json:"latency_count"`
	LatencyMax    int64            `json:"latency_max"`
	Percentiles   map[string]int64 `json:"latency_percentiles"`
}

// canonSnapshot flattens a Stats snapshot into deterministic form: the
// MEAccesses map becomes a sorted "level/class=count" list so the JSON is
// byte-stable.
func canonSnapshot(m *ixp.Machine) *engineSnapshot {
	st := m.Snapshot()
	var acc []string
	for k, v := range st.MEAccesses {
		acc = append(acc, fmt.Sprintf("%v/%v=%d", k.Level, k.Class, v))
	}
	sort.Strings(acc)
	lat := m.Observer().Latency()
	snap := &engineSnapshot{
		Cycles:        st.Cycles,
		RxPackets:     st.RxPackets,
		RxBits:        st.RxBits,
		TxPackets:     st.TxPackets,
		TxBits:        st.TxBits,
		FreedPackets:  st.FreedPackets,
		RxDropped:     st.RxDropped,
		RxDroppedBits: st.RxDroppedBits,
		RingOverflow:  st.RingOverflow,
		MEAccesses:    acc,
		MEInstrs:      st.MEInstrs,
		MEBusy:        st.MEBusy,
		CtrlBusy:      st.Busy,
		InFlight:      m.Observer().InFlight(),
		RingMaxOcc:    m.Observer().RingMaxOcc(),
		Stalls:        m.Observer().StallReport(),
		LatencyCount:  lat.Count,
		LatencyMax:    lat.Max,
		Percentiles: map[string]int64{
			"p50": lat.P50,
			"p90": lat.P90,
			"p99": lat.P99,
		},
	}
	return snap
}

// runDifferentialPoint measures one app × level × ME-count point exactly
// the way measure() does — warm-up, stats reset, measured window, stall
// tracer attached — but keeps the machine so the full snapshot can be
// captured.
func runDifferentialPoint(t *testing.T, a *apps.App, res *driver.Result, numMEs int, engine ixp.EngineSpec) *engineSnapshot {
	t.Helper()
	trc := a.Trace(res.Prog.Types, 1235, 128)
	rt, err := rts.New(res.Image, res.Prog, trc, rts.Options{NumMEs: numMEs, Engine: engine})
	if err != nil {
		t.Fatalf("%s %dME: %v", a.Name, numMEs, err)
	}
	for _, c := range a.Controls {
		if err := rt.Control(c.Name, c.Args...); err != nil {
			t.Fatalf("%s control %s: %v", a.Name, c.Name, err)
		}
	}
	st := ixp.NewStallTracer(rt.M.Cfg.NumMEs, rt.M.Cfg.ThreadsPerME)
	rt.M.Observer().SetTracer(st)
	if err := rt.Run(25_000); err != nil {
		t.Fatalf("%s warmup: %v", a.Name, err)
	}
	rt.M.ResetStats()
	if err := rt.Run(120_000); err != nil {
		t.Fatalf("%s measure: %v", a.Name, err)
	}
	return canonSnapshot(rt.M)
}

// TestEngineDifferential runs every example application at every
// optimization level (and two ME placements: the combined single-engine
// program and a replicated pipeline) and asserts the canonical JSON of the
// run's observable state — stats, access accounting, stall attribution,
// latency distribution — is byte-identical to the golden captured from the
// reference per-instruction interpreter.
func TestEngineDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential suite is slow; run without -short")
	}
	dir := filepath.Join("testdata", "engine")
	if *updateGolden {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, a := range apps.All() {
		for _, lvl := range driver.Levels() {
			res, err := Compile(a, lvl, 1234)
			if err != nil {
				t.Fatalf("%s at %v: %v", a.Name, lvl, err)
			}
			for _, mes := range []int{1, 5} {
				name := fmt.Sprintf("%s-%s-%dme", a.Name, lvl, mes)
				t.Run(name, func(t *testing.T) {
					snap := runDifferentialPoint(t, a, res, mes, nil)
					got, err := json.MarshalIndent(snap, "", "  ")
					if err != nil {
						t.Fatal(err)
					}
					got = append(got, '\n')
					path := filepath.Join(dir, name+".json")
					if *updateGolden {
						if err := os.WriteFile(path, got, 0o644); err != nil {
							t.Fatal(err)
						}
						return
					}
					want, err := os.ReadFile(path)
					if err != nil {
						t.Fatalf("missing golden (run with -update-golden): %v", err)
					}
					if string(got) != string(want) {
						t.Errorf("engine output diverged from reference-interpreter golden %s\ngot:\n%s\nwant:\n%s",
							path, got, want)
					}
				})
			}
		}
	}
}

// TestEngineDifferentialParallel replays the full differential suite on
// the parallel sharded engine and asserts its canonical output is
// byte-identical to the same goldens the serial engine is locked to —
// the parallel engine's correctness contract. The shard count is a
// deliberately uneven divisor of the 8 MEs so partitions split mid-ring
// pipelines.
func TestEngineDifferentialParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("differential suite is slow; run without -short")
	}
	dir := filepath.Join("testdata", "engine")
	for _, a := range apps.All() {
		for _, lvl := range driver.Levels() {
			res, err := Compile(a, lvl, 1234)
			if err != nil {
				t.Fatalf("%s at %v: %v", a.Name, lvl, err)
			}
			for _, mes := range []int{1, 5} {
				name := fmt.Sprintf("%s-%s-%dme", a.Name, lvl, mes)
				t.Run(name, func(t *testing.T) {
					snap := runDifferentialPoint(t, a, res, mes, ixp.EngineParallel{Shards: 3})
					got, err := json.MarshalIndent(snap, "", "  ")
					if err != nil {
						t.Fatal(err)
					}
					got = append(got, '\n')
					path := filepath.Join(dir, name+".json")
					want, err := os.ReadFile(path)
					if err != nil {
						t.Fatalf("missing golden (run TestEngineDifferential with -update-golden): %v", err)
					}
					if string(got) != string(want) {
						t.Errorf("parallel engine diverged from serial golden %s\ngot:\n%s\nwant:\n%s",
							path, got, want)
					}
				})
			}
		}
	}
}

// TestEngineDifferentialCompiled replays the full differential suite on
// the staged-compilation engine — both dispatch shapes: Shards 0 (the
// single-goroutine compiled dispatcher) and Shards 3 (compiled closures
// running inside the parallel engine's shard phases) — and asserts the
// canonical output is byte-identical to the serial goldens. This is the
// compiled engine's correctness contract: constant folding, wired-zero
// elision and batched cycle accounting may change host speed, never
// simulated state.
func TestEngineDifferentialCompiled(t *testing.T) {
	if testing.Short() {
		t.Skip("differential suite is slow; run without -short")
	}
	dir := filepath.Join("testdata", "engine")
	for _, shards := range []int{0, 3} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			for _, a := range apps.All() {
				for _, lvl := range driver.Levels() {
					res, err := Compile(a, lvl, 1234)
					if err != nil {
						t.Fatalf("%s at %v: %v", a.Name, lvl, err)
					}
					for _, mes := range []int{1, 5} {
						name := fmt.Sprintf("%s-%s-%dme", a.Name, lvl, mes)
						t.Run(name, func(t *testing.T) {
							snap := runDifferentialPoint(t, a, res, mes, ixp.EngineCompiled{Shards: shards})
							got, err := json.MarshalIndent(snap, "", "  ")
							if err != nil {
								t.Fatal(err)
							}
							got = append(got, '\n')
							path := filepath.Join(dir, name+".json")
							want, err := os.ReadFile(path)
							if err != nil {
								t.Fatalf("missing golden (run TestEngineDifferential with -update-golden): %v", err)
							}
							if string(got) != string(want) {
								t.Errorf("compiled engine diverged from serial golden %s\ngot:\n%s\nwant:\n%s",
									path, got, want)
							}
						})
					}
				}
			}
		})
	}
}

// TestAppsPacketDifferential is the packet-level leg of the differential
// suite, consuming the public oracle: every example application's
// transmitted frames at every optimization level must match the host
// reference interpreter exactly (the same contract the compiler fuzzer
// enforces on generated programs).
func TestAppsPacketDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential suite is slow; run without -short")
	}
	for _, a := range apps.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			t.Parallel()
			rep := Differential(a)
			if !rep.OK() {
				t.Errorf("%s", rep)
			}
			if rep.Injected == 0 || rep.RefFrames == 0 {
				t.Fatalf("vacuous differential: injected=%d ref=%d", rep.Injected, rep.RefFrames)
			}
		})
	}
}
