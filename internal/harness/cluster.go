package harness

import (
	"fmt"
	"strings"

	"shangrila/internal/apps"
	"shangrila/internal/cluster"
	"shangrila/internal/workload"
)

// ClusterParams shapes one multi-NPU line-card run. The traffic fields
// describe the aggregate arrival stream the load balancer shards: offered
// load scales with the chip count (PerChipGbps × Chips) so every scaling
// point stresses each chip equally, the way line cards are provisioned.
type ClusterParams struct {
	Chips       int
	PerChipGbps float64 // offered load per chip (default 2.5)

	// Flow population and skew of the shared stream (defaults: one
	// million flows, Zipf s=1.1 — heavy-tailed, the regime where
	// flow-hash imbalance shows).
	Flows   int
	ZipfS   float64
	Arrival string // workload arrival process (default fixed)
	Sizes   string // workload size mix (default 64)

	FabricLatency int64 // first-delivery offset in cycles
	Epoch         int64 // scheduler lookahead (0 = cluster default)
	Buckets       int   // timeline resolution (0 = cluster default)

	// DrainChip >= 0 schedules a mid-run ECMP drain of that chip at
	// DrainFrac of the measure window (default 0.5).
	DrainChip int
	DrainFrac float64
}

// withDefaults fills the zero values. DrainChip's zero value means chip
// 0, so "no drain" must be set explicitly (DrainChip: -1); NoDrain
// spares callers the magic number.
func (p ClusterParams) withDefaults() ClusterParams {
	if p.Chips <= 0 {
		p.Chips = 1
	}
	if p.PerChipGbps <= 0 {
		p.PerChipGbps = 2.5
	}
	if p.Flows <= 0 {
		p.Flows = 1_000_000
	}
	if p.ZipfS == 0 {
		p.ZipfS = 1.1
	}
	if p.DrainFrac <= 0 || p.DrainFrac >= 1 {
		p.DrainFrac = 0.5
	}
	return p
}

// NoDrain is the DrainChip value for runs without a drain scenario.
const NoDrain = -1

// ClusterResult is one cluster run with its app/compile identity — the
// report's cluster section entry.
type ClusterResult struct {
	App        string        `json:"app"`
	Level      string        `json:"level"`
	MEsPerChip int           `json:"mes_per_chip"`
	Seed       uint64        `json:"seed"`
	Workload   workload.Spec `json:"workload"`
	cluster.Result
}

// ClusterRun compiles (unless WithCompiled) and measures one multi-NPU
// cluster: p.Chips identical chips (WithMEs engines each, WithEngine's
// simulation engine) behind the flow-hash balancer, warmed and measured
// over the WithWindows cycles. WithWorkers sets how many chips advance
// concurrently — results are bit-identical at any value, and a one-chip
// cluster with zero fabric latency is bit-identical to the plain
// single-machine path.
func ClusterRun(a *apps.App, p ClusterParams, opts ...Option) (*ClusterResult, error) {
	s := defaultSettings()
	s.apply(opts)
	p = p.withDefaults()

	res := s.compiled
	if res == nil {
		var err error
		res, err = compile(a, s.level, s.run.Seed, &s)
		if err != nil {
			return nil, fmt.Errorf("%s at %v: %w", a.Name, s.level, err)
		}
	}
	trc := a.Trace(res.Prog.Types, s.run.Seed+1, s.run.TraceN)

	wsp := workload.Spec{
		Seed:        s.run.Seed + 1, // traffic seed, distinct from the profile seed
		Arrival:     p.Arrival,
		Sizes:       p.Sizes,
		OfferedGbps: p.PerChipGbps * float64(p.Chips),
		Flows:       p.Flows,
		ZipfS:       p.ZipfS,
	}
	wsp, err := wsp.Normalize()
	if err != nil {
		return nil, err
	}

	chips := make([]cluster.ChipConfig, p.Chips)
	for i := range chips {
		chips[i] = cluster.ChipConfig{NumMEs: s.run.NumMEs, Engine: s.engine}
	}
	var drain *cluster.DrainPlan
	if p.DrainChip >= 0 {
		drain = &cluster.DrainPlan{
			Chip:    p.DrainChip,
			AtCycle: s.run.Warmup + int64(p.DrainFrac*float64(s.run.Measure)),
		}
	}
	cl, err := cluster.New(cluster.Config{
		Image:         res.Image,
		Prog:          res.Prog,
		Trace:         trc,
		Controls:      a.Controls,
		Chips:         chips,
		Workload:      wsp,
		FabricLatency: p.FabricLatency,
		Epoch:         p.Epoch,
		Buckets:       p.Buckets,
		Workers:       s.workers,
		Warmup:        s.run.Warmup,
		Measure:       s.run.Measure,
		Seed:          s.run.Seed,
		Drain:         drain,
	})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	r, err := cl.Run()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	return &ClusterResult{
		App:        a.Name,
		Level:      res.Report.Level.String(),
		MEsPerChip: s.run.NumMEs,
		Seed:       s.run.Seed,
		Workload:   wsp,
		Result:     *r,
	}, nil
}

// ClusterScaling measures the goodput-scaling series — chip counts
// doubling from 1 up to p.Chips, each at PerChipGbps per chip — plus,
// when p.DrainChip is set and more than one chip is configured, one
// drain scenario at the full chip count. The app compiles once; every
// point reuses the image.
func ClusterScaling(a *apps.App, p ClusterParams, opts ...Option) ([]*ClusterResult, error) {
	s := defaultSettings()
	s.apply(opts)
	p = p.withDefaults()

	res := s.compiled
	if res == nil {
		var err error
		res, err = compile(a, s.level, s.run.Seed, &s)
		if err != nil {
			return nil, fmt.Errorf("%s at %v: %w", a.Name, s.level, err)
		}
	}
	shared := append(append([]Option{}, opts...), WithCompiled(res))

	var counts []int
	for n := 1; n < p.Chips; n *= 2 {
		counts = append(counts, n)
	}
	counts = append(counts, p.Chips)

	var out []*ClusterResult
	for _, n := range counts {
		pn := p
		pn.Chips = n
		pn.DrainChip = NoDrain
		r, err := ClusterRun(a, pn, shared...)
		if err != nil {
			return nil, fmt.Errorf("cluster %d chips: %w", n, err)
		}
		out = append(out, r)
	}
	if p.DrainChip >= 0 && p.Chips > 1 {
		if p.DrainChip >= p.Chips {
			return nil, fmt.Errorf("cluster: drain chip %d out of range (have %d chips)", p.DrainChip, p.Chips)
		}
		r, err := ClusterRun(a, p, shared...)
		if err != nil {
			return nil, fmt.Errorf("cluster drain: %w", err)
		}
		out = append(out, r)
	}
	return out, nil
}

// FormatCluster renders cluster runs as the goodput-scaling table plus a
// per-chip breakdown for drain scenarios.
func FormatCluster(results []*ClusterResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-6s %6s | %9s %9s %6s | %8s %8s | %s\n",
		"App", "Config", "Chips", "Offered", "Goodput", "Imbal", "p50", "p99", "Scenario")
	for _, r := range results {
		scenario := "scaling"
		if r.Topology.Drain != nil {
			scenario = fmt.Sprintf("drain chip %d @%d", r.Topology.Drain.Chip, r.Topology.Drain.AtCycle)
		}
		fmt.Fprintf(&b, "%-10s %-6s %6d | %8.2fG %8.2fG %6.3f | %8d %8d | %s\n",
			r.App, r.Level, r.Topology.Chips,
			r.Topology.OfferedGbps, r.AggregateGbps, r.Imbalance,
			r.Latency.P50, r.Latency.P99, scenario)
		if r.Topology.Drain != nil {
			for _, c := range r.Chips {
				mark := ""
				if c.Drained {
					mark = "  (drained)"
				}
				fmt.Fprintf(&b, "    chip %d: %6.2f Gbps, %8d tx, %8d routed, p99 %d%s\n",
					c.Chip, c.GoodputGbps, c.TxPackets, c.Routed, c.Latency.P99, mark)
			}
		}
	}
	return b.String()
}
