package harness

import (
	"flag"
	"io"
	"strings"
	"testing"
)

func noopExperiment(name string) *Experiment {
	return &Experiment{
		Name:     name,
		Synopsis: name + " synopsis",
		Run:      func(*ExpContext, any) error { return nil },
	}
}

// TestRegistryRegisterRejects: malformed registrations fail loudly —
// empty names, nil runners, names that collide with the selection
// syntax, and duplicates.
func TestRegistryRegisterRejects(t *testing.T) {
	r := NewExperimentRegistry()
	cases := []struct {
		name string
		e    *Experiment
	}{
		{"nil experiment", nil},
		{"empty name", &Experiment{Run: func(*ExpContext, any) error { return nil }}},
		{"nil Run", &Experiment{Name: "broken"}},
		{"reserved all", noopExperiment("all")},
		{"comma in name", noopExperiment("a,b")},
	}
	for _, c := range cases {
		if err := r.Register(c.e); err == nil {
			t.Errorf("%s: Register accepted, want error", c.name)
		}
	}
	if err := r.Register(noopExperiment("x")); err != nil {
		t.Fatalf("valid registration failed: %v", err)
	}
	if err := r.Register(noopExperiment("x")); err == nil {
		t.Error("duplicate name accepted, want error")
	}
	if got := r.Names(); len(got) != 1 || got[0] != "x" {
		t.Errorf("names after rejections = %v, want [x]", got)
	}
}

// TestRegistrySelect: "all"/empty select everything, comma lists resolve
// in registration order regardless of spelling, and unknown names error
// with the valid set (the CLIs turn that into exit 2).
func TestRegistrySelect(t *testing.T) {
	r := NewExperimentRegistry()
	for _, name := range []string{"alpha", "beta", "gamma"} {
		if err := r.Register(noopExperiment(name)); err != nil {
			t.Fatal(err)
		}
	}
	names := func(es []*Experiment) []string {
		var out []string
		for _, e := range es {
			out = append(out, e.Name)
		}
		return out
	}
	for _, spec := range []string{"", "all", "beta,all"} {
		got, err := r.Select(spec)
		if err != nil {
			t.Fatalf("Select(%q): %v", spec, err)
		}
		if g := names(got); strings.Join(g, ",") != "alpha,beta,gamma" {
			t.Errorf("Select(%q) = %v, want all in order", spec, g)
		}
	}
	// Spelled out of order, with whitespace: still registration order.
	got, err := r.Select(" gamma , alpha ")
	if err != nil {
		t.Fatal(err)
	}
	if g := names(got); strings.Join(g, ",") != "alpha,gamma" {
		t.Errorf("Select out-of-order = %v, want [alpha gamma]", g)
	}
	// Unknown names error and the message carries the valid set.
	if _, err := r.Select("alpha,nope"); err == nil {
		t.Error("Select with unknown name succeeded, want error")
	} else if !strings.Contains(err.Error(), "nope") || !strings.Contains(err.Error(), r.UsageSpec()) {
		t.Errorf("unknown-name error %q does not list the valid set", err)
	}
	if _, err := r.Select(" , "); err == nil {
		t.Error("empty selection succeeded, want error")
	}
}

// TestRegistryBindFlagsIsolation: BindFlags returns fresh storage per
// FlagSet, so two CLIs (or two parses) never share flag values.
func TestRegistryBindFlagsIsolation(t *testing.T) {
	r := NewExperimentRegistry()
	e := noopExperiment("tuned")
	e.Flags = func(fs *flag.FlagSet) any {
		v := new(int)
		fs.IntVar(v, "knob", 1, "test knob")
		return v
	}
	if err := r.Register(e); err != nil {
		t.Fatal(err)
	}
	fs1 := flag.NewFlagSet("one", flag.ContinueOnError)
	fs2 := flag.NewFlagSet("two", flag.ContinueOnError)
	fs1.SetOutput(io.Discard)
	fs2.SetOutput(io.Discard)
	v1 := r.BindFlags(fs1)["tuned"].(*int)
	v2 := r.BindFlags(fs2)["tuned"].(*int)
	if err := fs1.Parse([]string{"-knob", "7"}); err != nil {
		t.Fatal(err)
	}
	if err := fs2.Parse([]string{"-knob", "9"}); err != nil {
		t.Fatal(err)
	}
	if *v1 != 7 || *v2 != 9 {
		t.Errorf("flag storage shared across FlagSets: v1=%d v2=%d, want 7/9", *v1, *v2)
	}
}

// TestRegistryGeneratedUsage: the usage spec and synopses are generated
// from the registry, so every registered name appears in both — the
// anti-drift property the registry exists for.
func TestRegistryGeneratedUsage(t *testing.T) {
	r := NewExperimentRegistry()
	for _, name := range []string{"one", "two"} {
		if err := r.Register(noopExperiment(name)); err != nil {
			t.Fatal(err)
		}
	}
	spec := r.UsageSpec()
	if !strings.HasPrefix(spec, "all|") {
		t.Errorf("UsageSpec %q does not offer all", spec)
	}
	syn := r.Synopses()
	for _, name := range r.Names() {
		if !strings.Contains(spec, name) {
			t.Errorf("UsageSpec %q missing %q", spec, name)
		}
		if !strings.Contains(syn, name) || !strings.Contains(syn, name+" synopsis") {
			t.Errorf("Synopses missing %q:\n%s", name, syn)
		}
	}
}

// TestDefaultRegistryExperiments: the built-in suite self-registers the
// full evaluation, and every entry passes Select round-trip.
func TestDefaultRegistryExperiments(t *testing.T) {
	reg := Experiments()
	want := []string{"fig6", "table1", "fig13", "fig14", "fig15", "loadlatency", "churn", "cluster"}
	have := map[string]bool{}
	for _, n := range reg.Names() {
		have[n] = true
	}
	for _, n := range want {
		if !have[n] {
			t.Errorf("default registry missing experiment %q (have %v)", n, reg.Names())
			continue
		}
		if got, err := reg.Select(n); err != nil || len(got) != 1 || got[0].Name != n {
			t.Errorf("Select(%q) = %v, %v", n, got, err)
		}
	}
	// The single-app CLI needs RunApp on churn and cluster.
	for _, n := range []string{"churn", "cluster"} {
		if e, ok := reg.Lookup(n); !ok || e.RunApp == nil {
			t.Errorf("experiment %q has no RunApp runner", n)
		}
	}
}
