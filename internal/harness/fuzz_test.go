package harness

import (
	"reflect"
	"regexp"
	"testing"
	"time"

	"shangrila/internal/bakergen"
	"shangrila/internal/driver"
)

// TestFuzzCampaign runs a small real campaign: every program must pass
// the full differential at every level, every feature class must be
// counted, and the result must be deterministic across runs (modulo
// wall-clock stats).
func TestFuzzCampaign(t *testing.T) {
	cfg := FuzzConfig{N: 8, Seed: 501, TraceN: 8, Minimize: true}
	r := RunFuzz(cfg)
	if !r.OK() {
		t.Fatalf("campaign diverged:\n%s", r)
	}
	if r.Programs != cfg.N || r.Requested != cfg.N {
		t.Fatalf("programs %d/%d, want %d", r.Programs, r.Requested, cfg.N)
	}
	if r.Seed != cfg.Seed {
		t.Fatalf("resolved seed %d, want %d", r.Seed, cfg.Seed)
	}
	if r.Features["program"] != cfg.N {
		t.Fatalf("program feature = %d, want %d", r.Features["program"], cfg.N)
	}
	r2 := RunFuzz(cfg)
	r.ElapsedNanos, r.ProgramsPerSec = 0, 0
	r2.ElapsedNanos, r2.ProgramsPerSec = 0, 0
	if !reflect.DeepEqual(r, r2) {
		t.Fatal("campaign result not deterministic across runs")
	}
}

// TestPerfDivergences pins the cross-level performance metamorphism
// check on synthetic reports: levels within PerfBound pass, a level past
// it yields exactly one DivPerf divergence against BASE, and reports
// without a BASE measurement are out of scope.
func TestPerfDivergences(t *testing.T) {
	const chunk = int64(60_000)
	base := driver.LevelBase.String()
	rep := &DiffReport{
		App:    "synthetic",
		Levels: []string{base, "-O1", "+SWC"},
		LevelCycles: map[string]int64{
			base:   120_000,
			"-O1":  PerfBound(120_000, chunk), // exactly at the bound: passes
			"+SWC": PerfBound(120_000, chunk) + chunk,
		},
	}
	divs := perfDivergences(rep, chunk)
	if len(divs) != 1 {
		t.Fatalf("got %d divergences, want 1: %v", len(divs), divs)
	}
	d := divs[0]
	if d.Kind != DivPerf || d.LevelA != base || d.LevelB != "+SWC" || d.PacketIndex != -1 {
		t.Fatalf("wrong divergence shape: %+v", d)
	}

	// No BASE measurement (level-subset run): nothing comparable.
	sub := &DiffReport{Levels: []string{"-O1"},
		LevelCycles: map[string]int64{"-O1": 1 << 40}}
	if got := perfDivergences(sub, chunk); got != nil {
		t.Fatalf("subset run produced divergences: %v", got)
	}

	// The bound itself: factor on base plus chunk-quantization slack.
	if got, want := PerfBound(100, 7), int64(perfSlackFactor*100+perfSlackChunks*7); got != want {
		t.Fatalf("PerfBound(100, 7) = %d, want %d", got, want)
	}
}

// TestDifferentialRecordsLevelCycles: a clean real differential records
// a deterministic chunk-granular cycle count for every level — the
// input the fuzz performance check consumes.
func TestDifferentialRecordsLevelCycles(t *testing.T) {
	spec := bakergen.NewSpec(501)
	dc := DiffConfig{Seed: 501, TraceN: 8}
	dc.fill()
	rep := DifferentialWith(dc, spec.Build())
	if !rep.OK() {
		t.Fatalf("differential diverged:\n%s", rep)
	}
	for _, name := range rep.Levels {
		cyc, ok := rep.LevelCycles[name]
		if !ok {
			t.Fatalf("no cycle record for matched level %s: %v", name, rep.LevelCycles)
		}
		if cyc <= 0 || cyc%dc.ChunkCycles != 0 {
			t.Fatalf("level %s cycles %d not a positive multiple of chunk %d", name, cyc, dc.ChunkCycles)
		}
	}
	if divs := perfDivergences(rep, dc.ChunkCycles); len(divs) != 0 {
		t.Fatalf("clean program flagged by perf check: %v", divs)
	}
}

// TestFuzzBudget: an already-expired budget stops dispatch without
// losing accounting coherence.
func TestFuzzBudget(t *testing.T) {
	r := RunFuzz(FuzzConfig{N: 50, Seed: 1, Budget: time.Nanosecond, Workers: 1})
	if r.Programs >= 50 {
		t.Fatalf("budget did not stop dispatch: %d programs", r.Programs)
	}
	if r.Requested != 50 {
		t.Fatalf("requested %d, want 50", r.Requested)
	}
}

// TestFuzzReportSection: campaign results land in the v6 report and the
// canonical bytes zero the wall-clock fields.
func TestFuzzReportSection(t *testing.T) {
	b := NewReportBuilder()
	if !b.Empty() {
		t.Fatal("fresh builder not empty")
	}
	b.AddFuzz(&FuzzResult{Seed: 9, Requested: 1, Programs: 1,
		Features: map[string]int{"program": 1}, ElapsedNanos: 123, ProgramsPerSec: 4.5})
	if b.Empty() {
		t.Fatal("builder with fuzz section reports empty")
	}
	rep := b.Report()
	if rep.Schema != "shangrila-bench/v6" {
		t.Fatalf("schema %q", rep.Schema)
	}
	raw, err := rep.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if regexp.MustCompile(`"elapsed_nanos": [1-9]`).Match(raw) ||
		regexp.MustCompile(`"programs_per_sec": [1-9]`).Match(raw) {
		t.Fatalf("canonical bytes keep wall-clock fields:\n%s", raw)
	}
	// The original result must not have been zeroed in place.
	if rep.Fuzz[0].ElapsedNanos != 123 {
		t.Fatal("CanonicalJSON mutated the report")
	}
}

// errShape pins, per invalid-mutant class, which frontend stage rejects
// it and the error's substance (beyond the position CheckInvalid already
// demands).
var errShape = map[string]*regexp.Regexp{
	bakergen.InvalidSyntax:        regexp.MustCompile(`^parse: .*expected "}"`),
	bakergen.InvalidDupField:      regexp.MustCompile(`^check: .*duplicate field`),
	bakergen.InvalidUnknownField:  regexp.MustCompile(`^check: .*has no field "zz_missing"`),
	bakergen.InvalidChanType:      regexp.MustCompile(`^check: .*channel .* carries .* packets but the handle is`),
	bakergen.InvalidWiring:        regexp.MustCompile(`^check: .*unknown channel "bogus_cc"`),
	bakergen.InvalidControlGlobal: regexp.MustCompile(`^check: .*undefined: "zz_missing"`),
}

// TestInvalidMutantsRejected is the negative frontend suite: every
// mutant class, over many generated programs, must be rejected with a
// positioned error of the expected shape — and the frontend must never
// panic (CheckInvalid converts panics into errors).
func TestInvalidMutantsRejected(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		spec := bakergen.NewSpec(seed)
		for _, class := range bakergen.InvalidClasses() {
			if err := CheckInvalid(spec, class); err != nil {
				t.Errorf("seed %d class %s: %v", seed, class, err)
			}
		}
	}
	// Pin the error shapes once on a fixed seed.
	spec := bakergen.NewSpec(5)
	for class, want := range errShape {
		m := bakergen.Mutate(spec, class)
		_, err := driver.LowerSource("neg.baker", m.Source())
		if err == nil {
			t.Errorf("class %s: accepted", class)
			continue
		}
		if !want.MatchString(err.Error()) {
			t.Errorf("class %s: error %q does not match %v", class, err, want)
		}
	}
}
