package harness

import (
	"fmt"
	"strings"

	"shangrila/internal/apps"
	"shangrila/internal/driver"
	"shangrila/internal/ixp"
	"shangrila/internal/metrics"
	"shangrila/internal/workload"
)

// LoadPoint is one offered-load step of a load–latency curve.
type LoadPoint struct {
	OfferedGbps float64 `json:"offered_gbps"`
	// GoodputGbps is the transmitted (not offered) rate over the window.
	GoodputGbps float64 `json:"goodput_gbps"`
	// DropRate is the fraction of offered packets lost at the Rx ring.
	DropRate float64 `json:"drop_rate"`
	// RxDropped counts Rx-ring saturation losses; ChanOverflows counts
	// ME channel-ring put rejections (backpressure, not loss); AppDrops
	// counts packets the application itself freed.
	RxDropped     uint64 `json:"rx_dropped"`
	ChanOverflows uint64 `json:"chan_overflows"`
	AppDrops      uint64 `json:"app_drops"`
	// Latency summarizes Rx→Tx cycles of transmitted packets.
	Latency metrics.HistogramSnapshot `json:"latency_cycles"`
	// Stalls is the per-ME stall breakdown at this offered load, non-nil
	// when the sweep ran with WithStallBreakdown. Reading it across the
	// curve shows what the latency knee is made of (§6.2: DRAM queueing).
	Stalls *ixp.StallReport `json:"stall_breakdown,omitempty"`
}

// LoadCurve is one app × level load sweep: goodput, drop rate and latency
// quantiles against offered load (the paper's Figure 9 shape: goodput
// tracks offered load until the service rate saturates, where the latency
// tail turns up and losses begin).
type LoadCurve struct {
	App      string        `json:"app"`
	Level    string        `json:"level"`
	NumMEs   int           `json:"num_mes"`
	Seed     uint64        `json:"seed"`
	Workload workload.Spec `json:"workload"`
	Points   []LoadPoint   `json:"points"`
}

// DefaultLoads spans well under to well past the model's per-port service
// capacity, in Gbps.
func DefaultLoads() []float64 {
	return []float64{0.25, 0.5, 1, 1.5, 2, 2.5, 3}
}

// LoadLatency sweeps offered load for every app × level combination,
// producing one curve per combination. Each combination compiles once;
// all load points fan out across the sweep workers. The workload shape
// (arrival process, size mix, flow locality) comes from WithWorkload; a
// nil/absent spec uses fixed arrivals of 64B frames. The spec's own
// OfferedGbps is ignored — `loads` drives it.
func LoadLatency(appList []*apps.App, levels []driver.Level, loads []float64, opts ...Option) ([]*LoadCurve, error) {
	if len(loads) == 0 {
		loads = DefaultLoads()
	}
	s := defaultSettings()
	s.apply(opts)
	var points []Point
	for _, a := range appList {
		for _, lvl := range levels {
			for _, g := range loads {
				points = append(points, Point{
					App: a, Level: lvl, NumMEs: s.run.NumMEs,
					Seed: s.run.Seed, OfferedGbps: g,
				})
			}
		}
	}
	results, err := Sweep(points, opts...)
	if err != nil {
		return nil, err
	}
	var curves []*LoadCurve
	i := 0
	for _, a := range appList {
		for _, lvl := range levels {
			c := &LoadCurve{
				App: a.Name, Level: lvl.String(),
				NumMEs: s.run.NumMEs, Seed: s.run.Seed,
			}
			for range loads {
				r := results[i]
				i++
				if r.Workload != nil {
					c.Workload = *r.Workload
					c.Workload.OfferedGbps = 0 // per-point, not per-curve
				}
				lp := LoadPoint{
					OfferedGbps:   r.OfferedGbps,
					GoodputGbps:   r.Gbps,
					DropRate:      r.DropRate(),
					RxDropped:     r.RxDropped,
					ChanOverflows: r.ChanOverflows,
					AppDrops:      r.AppDrops,
					Stalls:        r.Stalls,
				}
				if r.Latency != nil {
					lp.Latency = *r.Latency
				}
				c.Points = append(c.Points, lp)
			}
			curves = append(curves, c)
		}
	}
	return curves, nil
}

// FormatLoadLatency renders the curves as aligned text tables.
func FormatLoadLatency(curves []*LoadCurve) string {
	var b strings.Builder
	for _, c := range curves {
		fmt.Fprintf(&b, "%s %s (%d MEs, seed %d, %s/%s arrivals)\n",
			c.App, c.Level, c.NumMEs, c.Seed,
			orDefault(c.Workload.Arrival, workload.ArrivalFixed),
			orDefault(c.Workload.Sizes, workload.SizesMin))
		fmt.Fprintf(&b, "  %9s %9s %8s %10s %10s %10s\n",
			"offered", "goodput", "drop", "p50(cyc)", "p99(cyc)", "max(cyc)")
		for _, p := range c.Points {
			fmt.Fprintf(&b, "  %8.2fG %8.2fG %7.2f%% %10d %10d %10d\n",
				p.OfferedGbps, p.GoodputGbps, 100*p.DropRate,
				p.Latency.P50, p.Latency.P99, p.Latency.Max)
		}
	}
	return b.String()
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
