package harness

import (
	"flag"
	"fmt"
	"time"

	"shangrila/internal/apps"
	"shangrila/internal/driver"
)

// The built-in evaluation suite, self-registered into the default
// experiment registry. Each entry owns its synopsis, private flags and
// runner; the CLIs generate usage text and dispatch from the registry,
// and every experiment's machine-readable output flows through the one
// ReportBuilder in the context.

func init() {
	RegisterExperiment(&Experiment{
		Name:     "fig6",
		Synopsis: "memory micro-benchmark (Figure 6 budget rules)",
		Run: func(ctx *ExpContext, _ any) error {
			pts, err := Figure6(ctx.FigWarm, ctx.FigMeas)
			if err != nil {
				return err
			}
			fmt.Fprintln(ctx.Out, FormatFigure6(pts))
			return nil
		},
	})

	RegisterExperiment(&Experiment{
		Name:     "table1",
		Synopsis: "per-packet dynamic memory accesses across levels (Table 1)",
		Run: func(ctx *ExpContext, _ any) error {
			rows, err := Table1(ctx.Cfg, ctx.Opts...)
			if err != nil {
				return err
			}
			fmt.Fprintln(ctx.Out, "Table 1 — dynamic memory accesses per packet")
			fmt.Fprintln(ctx.Out, FormatTable1(rows))
			ctx.Report.AddResults(rows)
			return nil
		},
	})

	registerFigure("fig13", "Figure 13: L3-Switch", apps.L3Switch)
	registerFigure("fig14", "Figure 14: Firewall", apps.Firewall)
	registerFigure("fig15", "Figure 15: MPLS", apps.MPLS)

	RegisterExperiment(&Experiment{
		Name:     "loadlatency",
		Synopsis: "goodput/latency vs offered load, BASE vs -O (Figure 9 shape)",
		Run: func(ctx *ExpContext, _ any) error {
			lvl, err := ctx.Common.DriverLevel()
			if err != nil {
				return err
			}
			shape, err := ctx.Common.TrafficShape()
			if err != nil {
				return err
			}
			// BASE is the contrast curve; -O picks the optimized one.
			levels := []driver.Level{driver.LevelBase}
			if lvl != driver.LevelBase {
				levels = append(levels, lvl)
			}
			curves, err := LoadLatency(apps.All(), levels, ctx.Loads,
				ctx.Options(WithWindows(ctx.Cfg.Warmup, ctx.Cfg.Measure), WithWorkload(shape))...)
			if err != nil {
				return err
			}
			fmt.Fprintln(ctx.Out, "Load–latency curves (offered load sweep, Figure 9 shape)")
			fmt.Fprintln(ctx.Out, FormatLoadLatency(curves))
			ctx.Report.AddLoadCurves(curves)
			return nil
		},
	})

	RegisterExperiment(&Experiment{
		Name:     "churn",
		Synopsis: "goodput/latency timelines under control-plane update storms",
		Run: func(ctx *ExpContext, _ any) error {
			lvl, err := ctx.Common.DriverLevel()
			if err != nil {
				return err
			}
			results, err := ChurnExperiment(apps.All(),
				ctx.Options(WithLevel(lvl), WithWindows(ctx.FigWarm, ctx.FigMeas))...)
			if err != nil {
				return err
			}
			fmt.Fprintln(ctx.Out, "Control-plane churn — goodput/latency under update storms")
			fmt.Fprintln(ctx.Out, FormatChurn(results))
			ctx.Report.AddChurn(results)
			return nil
		},
		RunApp: func(ctx *ExpContext, a *apps.App, _ any) error {
			lvl, err := ctx.Common.DriverLevel()
			if err != nil {
				return err
			}
			res, err := ChurnRun(a,
				ctx.Options(WithLevel(lvl), WithWindows(ctx.Cfg.Warmup, ctx.Cfg.Measure))...)
			if err != nil {
				return err
			}
			fmt.Fprint(ctx.Out, FormatChurn([]*ChurnResult{res}))
			ctx.Report.AddChurn([]*ChurnResult{res})
			return nil
		},
	})

	RegisterExperiment(&Experiment{
		Name:     "cluster",
		Synopsis: "multi-NPU line card: goodput scaling, flow-hash imbalance, drain",
		Flags:    clusterFlagDefs,
		Run: func(ctx *ExpContext, flags any) error {
			cf := flags.(*clusterFlags)
			a, err := findApp(cf.App)
			if err != nil {
				return err
			}
			return runClusterSeries(ctx, a, cf)
		},
		RunApp: func(ctx *ExpContext, a *apps.App, flags any) error {
			return runClusterSeries(ctx, a, flags.(*clusterFlags))
		},
	})

	RegisterExperiment(&Experiment{
		Name:     "fuzz",
		Synopsis: "compiler fuzzing: random Baker programs, host-vs-compiled differential",
		Flags:    fuzzFlagDefs,
		Run: func(ctx *ExpContext, flags any) error {
			ff := flags.(*fuzzFlags)
			res := RunFuzz(ff.config(ctx))
			fmt.Fprintln(ctx.Out, res)
			ctx.Report.AddFuzz(res)
			if !res.OK() {
				return fmt.Errorf("%d of %d programs diverged (replay with -fuzz-seed %d)",
					res.Divergent, res.Programs, res.Seed)
			}
			return nil
		},
		RunApp: func(ctx *ExpContext, a *apps.App, flags any) error {
			// Against one explicit app the experiment is the differential
			// oracle itself: every level vs the host reference.
			ff := flags.(*fuzzFlags)
			seed := ff.Seed
			if seed == 0 {
				seed = ctx.Common.Seed
			}
			rep := DifferentialWith(DiffConfig{Seed: seed, TraceN: ff.TraceN}, a)
			fmt.Fprintf(ctx.Out, "differential (seed %d): %s\n", seed, rep)
			if !rep.OK() {
				return fmt.Errorf("fuzz: %s diverged (seed %d)", a.Name, seed)
			}
			return nil
		},
	})
}

// fuzzFlags is the fuzz experiment's private flag surface.
type fuzzFlags struct {
	N        int
	Seed     uint64
	TraceN   int
	Budget   time.Duration
	Minimize bool
}

func fuzzFlagDefs(fs *flag.FlagSet) any {
	ff := &fuzzFlags{}
	fs.IntVar(&ff.N, "fuzz-n", 50, "fuzz experiment: generated programs per campaign")
	fs.Uint64Var(&ff.Seed, "fuzz-seed", 0, "fuzz experiment: first generator seed (0 = use -seed)")
	fs.IntVar(&ff.TraceN, "fuzz-trace", 12, "fuzz experiment: packets injected per program")
	fs.DurationVar(&ff.Budget, "fuzz-budget", 0, "fuzz experiment: wall-clock budget (0 = none)")
	fs.BoolVar(&ff.Minimize, "fuzz-minimize", true, "fuzz experiment: delta-debug divergent programs")
	return ff
}

// config resolves the flag surface against the shared context: an unset
// -fuzz-seed inherits the common -seed so every campaign is replayable
// from the values echoed in the output.
func (ff *fuzzFlags) config(ctx *ExpContext) FuzzConfig {
	seed := ff.Seed
	if seed == 0 {
		seed = ctx.Common.Seed
	}
	n := ff.N
	if ctx.Quick && n > 10 {
		n = 10
	}
	return FuzzConfig{
		N:        n,
		Seed:     seed,
		TraceN:   ff.TraceN,
		Budget:   ff.Budget,
		Minimize: ff.Minimize,
	}
}

// registerFigure registers one forwarding-rate figure sweep (rate vs
// enabled MEs per optimization level for one app).
func registerFigure(name, title string, app func() *apps.App) {
	RegisterExperiment(&Experiment{
		Name:     name,
		Synopsis: title + " forwarding rate vs enabled MEs per level",
		Run: func(ctx *ExpContext, _ any) error {
			series, results, err := FigureResults(app(), ctx.Cfg, 6, ctx.Opts...)
			if err != nil {
				return err
			}
			fmt.Fprintln(ctx.Out, FormatFigure(title, series))
			ctx.Report.AddResults(results)
			return nil
		},
	})
}

// clusterFlags is the cluster experiment's private flag surface.
type clusterFlags struct {
	Chips     int
	App       string
	Flows     int
	Zipf      float64
	Load      float64
	Drain     bool
	DrainFrac float64
	Epoch     int64
	Latency   int64
}

func clusterFlagDefs(fs *flag.FlagSet) any {
	cf := &clusterFlags{}
	fs.IntVar(&cf.Chips, "chips", 4, "cluster experiment: NPUs on the simulated line card")
	fs.StringVar(&cf.App, "cluster-app", "l3switch", "cluster experiment: application to replicate per chip")
	fs.IntVar(&cf.Flows, "cluster-flows", 1_000_000, "cluster experiment: concurrent flow population")
	fs.Float64Var(&cf.Zipf, "cluster-zipf", 1.1, "cluster experiment: Zipf flow-popularity exponent")
	fs.Float64Var(&cf.Load, "cluster-load", 2.5, "cluster experiment: offered Gbps per chip")
	fs.BoolVar(&cf.Drain, "cluster-drain", true, "cluster experiment: include the chip-drain scenario")
	fs.Float64Var(&cf.DrainFrac, "cluster-drain-frac", 0.5, "cluster experiment: drain point as a fraction of the measure window")
	fs.Int64Var(&cf.Epoch, "cluster-epoch", 0, "cluster experiment: scheduler epoch in cycles (0 = default)")
	fs.Int64Var(&cf.Latency, "cluster-fabric-latency", 0, "cluster experiment: fabric first-delivery offset in cycles")
	return cf
}

// runClusterSeries runs the goodput-scaling series (and drain scenario)
// for one app and records it in the report.
func runClusterSeries(ctx *ExpContext, a *apps.App, cf *clusterFlags) error {
	p := ClusterParams{
		Chips:         cf.Chips,
		PerChipGbps:   cf.Load,
		Flows:         cf.Flows,
		ZipfS:         cf.Zipf,
		Arrival:       ctx.Common.Arrival,
		Sizes:         ctx.Common.Sizes,
		FabricLatency: cf.Latency,
		Epoch:         cf.Epoch,
		DrainFrac:     cf.DrainFrac,
		DrainChip:     NoDrain,
	}
	if cf.Drain {
		p.DrainChip = cf.Chips - 1 // drain the last chip mid-run
	}
	lvl, err := ctx.Common.DriverLevel()
	if err != nil {
		return err
	}
	results, err := ClusterScaling(a, p,
		ctx.Options(WithLevel(lvl), WithWindows(ctx.FigWarm, ctx.FigMeas))...)
	if err != nil {
		return err
	}
	fmt.Fprintln(ctx.Out, "Multi-NPU cluster — goodput scaling and drain redistribution")
	fmt.Fprintln(ctx.Out, FormatCluster(results))
	ctx.Report.AddCluster(results)
	return nil
}

// findApp resolves a benchmark application by name.
func findApp(name string) (*apps.App, error) {
	var names []string
	for _, a := range apps.All() {
		if a.Name == name {
			return a, nil
		}
		names = append(names, a.Name)
	}
	return nil, fmt.Errorf("unknown app %q (valid: %v)", name, names)
}
