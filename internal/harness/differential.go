package harness

import (
	"errors"
	"fmt"
	"strings"

	"shangrila/internal/apps"
	"shangrila/internal/driver"
	"shangrila/internal/ir"
	"shangrila/internal/ixp"
	"shangrila/internal/packet"
	"shangrila/internal/profiler"
	"shangrila/internal/rts"
)

// This file is the public packet-level differential oracle: the host
// functional interpreter (profiler.Session) is the semantic reference,
// and every compiled optimization level must reproduce its transmitted
// frames exactly. The golden engine suite (differential_test.go), the
// fuzz experiment and the reproducer minimizer all consume this one
// API instead of carrying private copies of the comparison logic.

// DivergenceKind classifies one way a compiled program can disagree
// with the reference semantics.
type DivergenceKind string

const (
	// DivCompile: the program failed to compile at a level (frontend,
	// lowering or backend error other than IR verification).
	DivCompile DivergenceKind = "compile-error"
	// DivVerify: ir.Verify rejected the IR after an optimization pass.
	DivVerify DivergenceKind = "verify-error"
	// DivHost: the host reference interpreter itself faulted on the
	// program — the reference cannot be established.
	DivHost DivergenceKind = "host-error"
	// DivRun: the compiled image faulted at runtime.
	DivRun DivergenceKind = "run-error"
	// DivFrame: the compiled program transmitted a frame the reference
	// never produces (wrong bytes, wrong forward decision).
	DivFrame DivergenceKind = "frame-mismatch"
	// DivMissing: a reference frame was never transmitted by the
	// compiled program within the cycle budget (wrong drop).
	DivMissing DivergenceKind = "missing-frame"
	// DivPerf: a cross-level performance metamorphism violation — an
	// optimized build needed more simulated cycles than PerfBound allows
	// relative to BASE to reproduce the reference frames. Optimization
	// levels legitimately reshape timing, so the bound is deliberately
	// loose; only gross regressions flag.
	DivPerf DivergenceKind = "perf-regression"
)

// Divergence is one observed disagreement between two semantic views of
// the same program ("host" = the reference interpreter, otherwise an
// optimization-level name).
type Divergence struct {
	Kind DivergenceKind `json:"kind"`
	// LevelA/LevelB name the two sides that disagree; LevelA is "host"
	// for reference-vs-compiled divergences.
	LevelA string `json:"level_a"`
	LevelB string `json:"level_b"`
	// PacketIndex locates the first divergent packet: for DivFrame the
	// index in capture order, for DivMissing the index of the reference
	// frame; -1 when not applicable.
	PacketIndex int    `json:"packet_index"`
	Detail      string `json:"detail"`
}

func (d Divergence) String() string {
	loc := ""
	if d.PacketIndex >= 0 {
		loc = fmt.Sprintf(" pkt %d", d.PacketIndex)
	}
	return fmt.Sprintf("[%s] %s vs %s%s: %s", d.Kind, d.LevelA, d.LevelB, loc, d.Detail)
}

// DiffReport is the typed result of one differential run.
type DiffReport struct {
	App    string   `json:"app"`
	Levels []string `json:"levels"`
	// Injected is the number of distinct trace packets injected;
	// RefFrames the number of distinct reference frames the host
	// interpreter produced from them.
	Injected    int          `json:"injected"`
	RefFrames   int          `json:"ref_frames"`
	Divergences []Divergence `json:"divergences,omitempty"`
	// LevelCycles records, per matched level, the simulated cycles the
	// compiled build ran until every reference frame had appeared —
	// chunk-granular (multiples of ChunkCycles) and fully deterministic,
	// which is what makes the fuzz performance metamorphism check
	// (PerfBound) reproducible.
	LevelCycles map[string]int64 `json:"level_cycles,omitempty"`
}

// OK reports whether every level matched the reference exactly.
func (r *DiffReport) OK() bool { return len(r.Divergences) == 0 }

// First returns the first divergence, or a zero Divergence when OK.
func (r *DiffReport) First() Divergence {
	if len(r.Divergences) == 0 {
		return Divergence{}
	}
	return r.Divergences[0]
}

func (r *DiffReport) String() string {
	if r.OK() {
		return fmt.Sprintf("%s: OK (%d levels, %d frames)", r.App, len(r.Levels), r.RefFrames)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d divergence(s)\n", r.App, len(r.Divergences))
	for _, d := range r.Divergences {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return strings.TrimRight(b.String(), "\n")
}

// DiffConfig tunes a differential run; the zero value picks defaults
// sized for fuzzing throughput (small trace, two MEs, bounded cycles).
type DiffConfig struct {
	Seed         uint64 // trace seed (default 1235)
	TraceN       int    // distinct packets injected (default 24)
	NumMEs       int    // MEs per compiled run (default 2)
	ChunkCycles  int64  // cycles per run slice between capture checks (default 60k)
	MaxCycles    int64  // total cycle budget per level (default 600k)
	CaptureLimit int    // max frames captured (default 8*TraceN)
	FirstOnly    bool   // stop at the first divergent level

	// Engine selects the simulation engine compiled levels run on (nil =
	// serial). The engines are bit-identical, so the fuzz corpus and the
	// golden suite replay under ixp.EngineCompiled must reproduce the
	// serial verdicts exactly.
	Engine ixp.EngineSpec
}

func (c *DiffConfig) fill() {
	if c.Seed == 0 {
		c.Seed = 1235
	}
	if c.TraceN == 0 {
		c.TraceN = 24
	}
	if c.NumMEs == 0 {
		c.NumMEs = 2
	}
	if c.ChunkCycles == 0 {
		c.ChunkCycles = 60_000
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 600_000
	}
	if c.CaptureLimit == 0 {
		c.CaptureLimit = 8 * c.TraceN
	}
}

// Differential checks that the app produces identical packet-level
// output at every given level (all of driver.Levels() when none are
// given), with ir.Verify forced on after every pass. It never returns
// nil; all failures — compile, verify, runtime, frame mismatches — are
// recorded as typed divergences.
func Differential(a *apps.App, levels ...driver.Level) *DiffReport {
	return DifferentialWith(DiffConfig{}, a, levels...)
}

// DifferentialWith is Differential with an explicit configuration.
func DifferentialWith(cfg DiffConfig, a *apps.App, levels ...driver.Level) *DiffReport {
	cfg.fill()
	if len(levels) == 0 {
		levels = driver.Levels()
	}
	rep := &DiffReport{App: a.Name}
	for _, lvl := range levels {
		rep.Levels = append(rep.Levels, lvl.String())
	}

	// Establish the reference: lower once, interpret the trace on the
	// host. The same packet list is replayed against every level.
	prog, err := driver.LowerSource(a.Name+".baker", a.Source)
	if err != nil {
		rep.add(Divergence{Kind: DivCompile, LevelA: "host", LevelB: "frontend",
			PacketIndex: -1, Detail: err.Error()})
		return rep
	}
	trc := a.Trace(prog.Types, cfg.Seed, cfg.TraceN)
	rep.Injected = len(trc)
	sess, err := profiler.NewSession(prog)
	if err != nil {
		rep.add(Divergence{Kind: DivHost, LevelA: "host", LevelB: "host",
			PacketIndex: -1, Detail: err.Error()})
		return rep
	}
	for _, c := range a.Controls {
		if err := sess.Control(c.Name, c.Args...); err != nil {
			rep.add(Divergence{Kind: DivHost, LevelA: "host", LevelB: "host",
				PacketIndex: -1, Detail: fmt.Sprintf("control %s: %v", c.Name, err)})
			return rep
		}
	}
	for i, p := range trc {
		if err := sess.Inject(p.Clone()); err != nil {
			rep.add(Divergence{Kind: DivHost, LevelA: "host", LevelB: "host",
				PacketIndex: i, Detail: err.Error()})
			return rep
		}
	}
	refSet := map[string]int{} // frame bytes -> first reference index
	var refOrder []string
	for i, o := range sess.Out {
		f := string(o.P.Bytes()[o.Head:])
		if _, ok := refSet[f]; !ok {
			refSet[f] = i
			refOrder = append(refOrder, f)
		}
	}
	rep.RefFrames = len(refSet)

	s := defaultSettings()
	s.verify = driver.VerifyOn
	for _, lvl := range levels {
		if !rep.diffLevel(a, lvl, &s, cfg, trc, refSet, refOrder) && cfg.FirstOnly {
			break
		}
	}
	return rep
}

// diffLevel compiles and runs one level against the reference set;
// reports true when the level matched.
func (rep *DiffReport) diffLevel(a *apps.App, lvl driver.Level, s *settings, cfg DiffConfig,
	trc []*packet.Packet, refSet map[string]int, refOrder []string) bool {
	name := lvl.String()
	res, err := compile(a, lvl, cfg.Seed, s)
	if err != nil {
		kind := DivCompile
		var ve *ir.VerifyError
		if errors.As(err, &ve) {
			kind = DivVerify
		}
		rep.add(Divergence{Kind: kind, LevelA: "host", LevelB: name,
			PacketIndex: -1, Detail: err.Error()})
		return false
	}
	// Each run gets private clones: apps that encap/decap move the
	// packet head in place, so sharing trace packets across runtimes
	// would feed later levels corrupted inputs.
	priv := make([]*packet.Packet, len(trc))
	for i, p := range trc {
		priv[i] = p.Clone()
	}
	trc = priv
	rt, err := rts.New(res.Image, res.Prog, trc, rts.Options{
		NumMEs: cfg.NumMEs, CaptureLimit: cfg.CaptureLimit, Engine: cfg.Engine})
	if err != nil {
		rep.add(Divergence{Kind: DivRun, LevelA: "host", LevelB: name,
			PacketIndex: -1, Detail: err.Error()})
		return false
	}
	for _, c := range a.Controls {
		if err := rt.Control(c.Name, c.Args...); err != nil {
			rep.add(Divergence{Kind: DivRun, LevelA: "host", LevelB: name,
				PacketIndex: -1, Detail: fmt.Sprintf("control %s: %v", c.Name, err)})
			return false
		}
	}

	// Run in chunks, stopping as soon as every distinct reference frame
	// has been observed: MEs complete out of order and channel rings can
	// drop under timing pressure, so comparison is set-based — every
	// captured frame must be a reference frame, and every reference
	// frame must eventually appear.
	seen := map[string]bool{}
	checked := 0
	used := int64(0) // simulated cycles actually run at this level
	matched := func() bool { return len(seen) == len(refSet) }
	for cycles := int64(0); cycles < cfg.MaxCycles && !matched(); cycles += cfg.ChunkCycles {
		if err := rt.Run(cfg.ChunkCycles); err != nil {
			rep.add(Divergence{Kind: DivRun, LevelA: "host", LevelB: name,
				PacketIndex: -1, Detail: err.Error()})
			return false
		}
		used += cfg.ChunkCycles
		for ; checked < len(rt.TxCapture); checked++ {
			f := string(rt.TxCapture[checked].Frame)
			if _, ok := refSet[f]; !ok {
				rep.add(Divergence{Kind: DivFrame, LevelA: "host", LevelB: name,
					PacketIndex: checked,
					Detail:      fmt.Sprintf("transmitted frame not produced by reference: %x", rt.TxCapture[checked].Frame)})
				return false
			}
			seen[f] = true
		}
		if len(rt.TxCapture) >= cfg.CaptureLimit {
			break // capture full; nothing further can change the verdict
		}
	}
	if !matched() {
		for _, f := range refOrder {
			if !seen[f] {
				rep.add(Divergence{Kind: DivMissing, LevelA: "host", LevelB: name,
					PacketIndex: refSet[f],
					Detail: fmt.Sprintf("reference frame %d never transmitted within %d cycles (%d/%d seen): %x",
						refSet[f], cfg.MaxCycles, len(seen), len(refSet), f)})
				return false
			}
		}
	}
	if rep.LevelCycles == nil {
		rep.LevelCycles = map[string]int64{}
	}
	rep.LevelCycles[name] = used
	return true
}

func (rep *DiffReport) add(d Divergence) {
	rep.Divergences = append(rep.Divergences, d)
}
