package harness

import (
	"encoding/json"
	"fmt"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"shangrila/internal/bakergen"
	"shangrila/internal/driver"
)

// FuzzConfig parameterizes one compiler-fuzzing campaign: N seeded random
// Baker programs (seeds Seed, Seed+1, ...) each compiled at every
// optimization level with the IR verifier forced on and checked against
// the host reference interpreter through Differential. Every program also
// contributes one invalid mutant (a rotating frontend-defect class) that
// the parser/typechecker must reject with a positioned error — the
// campaign covers the frontend's error paths, not just the happy path.
type FuzzConfig struct {
	// N is the number of generated programs. Zero means 25.
	N int
	// Seed is the first generator seed; the campaign uses Seed..Seed+N-1.
	// The resolved value is echoed in the result so a failing run can be
	// replayed exactly.
	Seed uint64
	// Workers bounds campaign parallelism. Zero means GOMAXPROCS.
	Workers int
	// TraceN is the packets injected per program (DiffConfig.TraceN).
	// Zero means 12.
	TraceN int
	// Budget, when positive, stops dispatching new programs once the
	// elapsed wall clock exceeds it; programs already started finish.
	// Completed counts are still deterministic for a fixed seed range
	// when the budget does not bite.
	Budget time.Duration
	// Minimize delta-debugs every divergent program down to a minimal
	// reproducer before reporting it.
	Minimize bool
	// Levels restricts the differential comparison; nil means every
	// driver level.
	Levels []driver.Level
}

// FuzzFailure is one divergent program: the seed that produced it, the
// (optionally minimized) spec as replayable JSON, and the divergences.
type FuzzFailure struct {
	Seed        uint64   `json:"seed"`
	Spec        string   `json:"spec"`
	Divergences []string `json:"divergences"`
}

// FuzzResult is one campaign's outcome and statistics; it lands in the
// bench report's fuzz section.
type FuzzResult struct {
	Seed      uint64 `json:"seed"` // resolved first seed
	Requested int    `json:"requested"`
	Programs  int    `json:"programs"` // completed (== Requested unless the budget bit)
	Divergent int    `json:"divergent"`
	// Features is the campaign's feature-coverage histogram: what the
	// generated population actually exercised (stack depths, dynamic
	// demux, pushes, op kinds, invalid-mutant classes...).
	Features map[string]int `json:"features"`
	Failures []FuzzFailure  `json:"failures,omitempty"`
	// Wall-clock stats (zeroed in canonical report bytes).
	ElapsedNanos   int64   `json:"elapsed_nanos"`
	ProgramsPerSec float64 `json:"programs_per_sec"`
}

// OK reports a clean campaign.
func (r *FuzzResult) OK() bool { return r.Divergent == 0 }

// String formats the campaign summary the CLIs print.
func (r *FuzzResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fuzz campaign: %d/%d programs, seed %d..%d, %d divergent (%.1f prog/s)",
		r.Programs, r.Requested, r.Seed, r.Seed+uint64(r.Requested)-1,
		r.Divergent, r.ProgramsPerSec)
	keys := make([]string, 0, len(r.Features))
	for k := range r.Features {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b.WriteString("\n  feature coverage:")
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%d", k, r.Features[k])
	}
	for _, f := range r.Failures {
		fmt.Fprintf(&b, "\n  FAIL seed %d:", f.Seed)
		for _, d := range f.Divergences {
			fmt.Fprintf(&b, "\n    %s", d)
		}
	}
	return b.String()
}

func (c *FuzzConfig) fill() {
	if c.N <= 0 {
		c.N = 25
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.TraceN <= 0 {
		c.TraceN = 12
	}
}

// fuzzOne is one program's campaign contribution, merged in seed order.
type fuzzOne struct {
	done     bool
	features map[string]int
	failure  *FuzzFailure
}

// RunFuzz executes one fuzzing campaign. Divergences do not abort the
// campaign; they are collected (minimized when configured) into the
// result. The result is deterministic for a fixed config when the
// wall-clock budget does not cut the run short.
func RunFuzz(cfg FuzzConfig) *FuzzResult {
	cfg.fill()
	start := time.Now()
	res := &FuzzResult{Seed: cfg.Seed, Requested: cfg.N, Features: map[string]int{}}

	slots := make([]fuzzOne, cfg.N)
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= cfg.N {
					return
				}
				if cfg.Budget > 0 && time.Since(start) > cfg.Budget {
					return
				}
				slots[i] = fuzzProgram(cfg, cfg.Seed+uint64(i))
			}
		}()
	}
	wg.Wait()

	for i := range slots {
		if !slots[i].done {
			continue
		}
		res.Programs++
		for k, v := range slots[i].features {
			res.Features[k] += v
		}
		if slots[i].failure != nil {
			res.Divergent++
			res.Failures = append(res.Failures, *slots[i].failure)
		}
	}
	res.ElapsedNanos = int64(time.Since(start))
	if res.ElapsedNanos > 0 {
		res.ProgramsPerSec = float64(res.Programs) / (float64(res.ElapsedNanos) / 1e9)
	}
	return res
}

// Slack terms of the performance metamorphism bound. Optimization
// passes may pessimize individual programs (spills, code growth), and
// LevelCycles is chunk-granular, so the bound must absorb both a real
// constant-factor slowdown and up to two chunks of quantization noise
// before flagging. The factor is deliberately generous: the check hunts
// gross cost-model regressions (a pass looping a hot path, an
// accidentally quadratic lowering), not single-digit-percent drift.
const (
	perfSlackFactor = 2
	perfSlackChunks = 2
)

// PerfBound returns the maximum simulated cycles an optimized build may
// take to reproduce the reference frames, given the BASE build's cycles
// and the differential chunk size: optimizing must not make a program
// more than perfSlackFactor× slower than unoptimized, modulo chunk
// quantization. This is the metamorphic relation the fuzzer checks
// across levels — no external oracle needed, BASE is the yardstick.
func PerfBound(baseCycles, chunkCycles int64) int64 {
	return perfSlackFactor*baseCycles + perfSlackChunks*chunkCycles
}

// perfDivergences applies PerfBound to a matched report: every level
// whose recorded cycles exceed the bound derived from BASE's yields one
// DivPerf divergence. Reports without a BASE measurement (level subset
// runs) or with any functional divergence are out of scope — cycle
// counts of non-matching levels are not comparable.
func perfDivergences(rep *DiffReport, chunkCycles int64) []Divergence {
	base, ok := rep.LevelCycles[driver.LevelBase.String()]
	if !ok {
		return nil
	}
	bound := PerfBound(base, chunkCycles)
	var out []Divergence
	for _, name := range rep.Levels {
		if name == driver.LevelBase.String() {
			continue
		}
		cyc, ok := rep.LevelCycles[name]
		if !ok || cyc <= bound {
			continue
		}
		out = append(out, Divergence{Kind: DivPerf, LevelA: driver.LevelBase.String(),
			LevelB: name, PacketIndex: -1,
			Detail: fmt.Sprintf("optimized build needed %d cycles vs %d at BASE (bound %d = %d*base + %d*chunk)",
				cyc, base, bound, perfSlackFactor, perfSlackChunks)})
	}
	return out
}

// fuzzProgram generates, differentials and (on divergence) minimizes one
// seed, plus one invalid-mutant frontend check.
func fuzzProgram(cfg FuzzConfig, seed uint64) fuzzOne {
	spec := bakergen.NewSpec(seed)
	one := fuzzOne{done: true, features: spec.Features()}

	dc := DiffConfig{Seed: seed, TraceN: cfg.TraceN}
	dc.fill() // concrete ChunkCycles up front: PerfBound needs it below
	rep := DifferentialWith(dc, spec.Build(), cfg.Levels...)
	if rep.OK() {
		// Functional match at every level — now the cross-level
		// performance metamorphism: the optimized builds must not be
		// grossly slower (in simulated cycles) than BASE.
		if perf := perfDivergences(rep, dc.ChunkCycles); len(perf) != 0 {
			f := &FuzzFailure{Seed: seed, Spec: string(mustSpecJSON(spec))}
			for _, d := range perf {
				f.Divergences = append(f.Divergences, d.String())
			}
			one.failure = f
		}
	}
	if !rep.OK() {
		if cfg.Minimize {
			spec = bakergen.Minimize(spec, func(c *bakergen.Spec) bool {
				return !DifferentialWith(dc, c.Build(), cfg.Levels...).OK()
			})
			rep = DifferentialWith(dc, spec.Build(), cfg.Levels...)
		}
		f := &FuzzFailure{Seed: seed, Spec: string(mustSpecJSON(spec))}
		for _, d := range rep.Divergences {
			f.Divergences = append(f.Divergences, d.String())
		}
		if len(f.Divergences) == 0 {
			// Minimization raced the divergence away (should not happen:
			// Minimize keeps only still-failing reductions) — report the
			// unminimized fact rather than silently passing.
			f.Divergences = []string{"divergence did not survive re-run"}
		}
		one.failure = f
	}

	// One invalid mutant per program, class rotating with the seed: the
	// frontend must reject it with a positioned error and must not panic.
	classes := bakergen.InvalidClasses()
	class := classes[int(seed)%len(classes)]
	if err := CheckInvalid(spec, class); err != nil {
		one.failure = &FuzzFailure{
			Seed:        seed,
			Spec:        string(mustSpecJSON(bakergen.Mutate(spec, class))),
			Divergences: []string{fmt.Sprintf("[invalid-%s] %v", class, err)},
		}
	} else {
		one.features["invalid-"+class]++
	}
	return one
}

// posRe matches the "file:line:col" prefix positioned frontend errors
// carry.
var posRe = regexp.MustCompile(`\.baker:\d+:\d+`)

// CheckInvalid runs one invalid-mutant class through the frontend and
// verifies the contract the fuzzer (and the negative test suite) pins:
// the program is rejected, the error is positioned, and the frontend
// does not panic.
func CheckInvalid(spec *bakergen.Spec, class string) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("frontend panicked on %s mutant: %v", class, r)
		}
	}()
	m := bakergen.Mutate(spec, class)
	_, lerr := driver.LowerSource(fmt.Sprintf("fuzz-%d-%s.baker", spec.Seed, class), m.Source())
	if lerr == nil {
		return fmt.Errorf("frontend accepted %s mutant", class)
	}
	if !posRe.MatchString(lerr.Error()) {
		return fmt.Errorf("%s mutant error lacks position: %v", class, lerr)
	}
	return nil
}

func mustSpecJSON(s *bakergen.Spec) []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		panic(err)
	}
	return b
}
