package harness

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"shangrila/internal/apps"
	"shangrila/internal/driver"
	"shangrila/internal/workload"
)

var kneeLoads = []float64{0.25, 0.5, 1, 1.5, 2, 2.5, 3}

func kneeOpts(workers int) []Option {
	return []Option{
		WithWindows(60_000, 300_000),
		WithTrace(128),
		WithWorkers(workers),
	}
}

// TestLoadLatencyKnee is the acceptance shape for the paper's Figure 9
// discussion: sweeping offered load for L3-Switch at O3 (+PAC), goodput
// must track offered load, then saturate, with the p99 latency tail
// turning up and Rx losses beginning at the knee.
func TestLoadLatencyKnee(t *testing.T) {
	curves, err := LoadLatency(
		[]*apps.App{apps.L3Switch()},
		[]driver.Level{driver.Level(3)}, // O3 = +PAC
		kneeLoads, kneeOpts(0)...)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 1 || len(curves[0].Points) != len(kneeLoads) {
		t.Fatalf("got %d curves", len(curves))
	}
	pts := curves[0].Points

	// Below the knee the machine keeps up: goodput matches offered load
	// and nothing is dropped.
	for _, p := range pts[:2] {
		if p.GoodputGbps < 0.95*p.OfferedGbps {
			t.Errorf("underloaded point %.2fG lost throughput: goodput %.3fG",
				p.OfferedGbps, p.GoodputGbps)
		}
		if p.DropRate > 0.001 {
			t.Errorf("underloaded point %.2fG dropped %.2f%%",
				p.OfferedGbps, 100*p.DropRate)
		}
	}
	// The offered-load accounting reflects the configured rate (the
	// fractional-cycle Rx pacing keeps the bias under 0.5%).
	if p := pts[2]; p.OfferedGbps < 1*0.995 || p.OfferedGbps > 1*1.005 {
		t.Errorf("measured offered load %.4fG, want 1G +/- 0.5%%", p.OfferedGbps)
	}
	// Goodput is monotone non-decreasing (within noise) and saturates:
	// the top of the curve is flat while offered load keeps growing.
	for i := 1; i < len(pts); i++ {
		if pts[i].GoodputGbps < 0.97*pts[i-1].GoodputGbps {
			t.Errorf("goodput fell between %.2fG and %.2fG: %.3f -> %.3f",
				pts[i-1].OfferedGbps, pts[i].OfferedGbps,
				pts[i-1].GoodputGbps, pts[i].GoodputGbps)
		}
	}
	last := pts[len(pts)-1]
	if last.GoodputGbps > 0.8*last.OfferedGbps {
		t.Errorf("no saturation: goodput %.3fG at offered %.2fG",
			last.GoodputGbps, last.OfferedGbps)
	}
	if sat, top := pts[len(pts)-2].GoodputGbps, last.GoodputGbps; top > 1.05*sat || top < 0.95*sat {
		t.Errorf("saturated goodput not flat: %.3fG then %.3fG", sat, top)
	}
	// The latency tail turns up at the knee and losses begin.
	if last.Latency.P99 < 2*pts[0].Latency.P99 {
		t.Errorf("p99 did not grow past the knee: %d -> %d cycles",
			pts[0].Latency.P99, last.Latency.P99)
	}
	if last.RxDropped == 0 || last.DropRate <= 0 {
		t.Error("overload shed no packets at the Rx ring")
	}
	if last.Latency.Count == 0 || last.Latency.P50 > last.Latency.P99 ||
		last.Latency.P99 > last.Latency.Max {
		t.Errorf("malformed latency summary %+v", last.Latency)
	}

	out := FormatLoadLatency(curves)
	if !strings.Contains(out, "l3switch") || !strings.Contains(out, "p99(cyc)") {
		t.Errorf("FormatLoadLatency missing headers:\n%s", out)
	}
}

// TestLoadLatencyDeterminism: the load-latency section of the canonical
// report is byte-identical between a serial and a fully parallel sweep.
// Run with -cpu 1,4 to vary scheduler width.
func TestLoadLatencyDeterminism(t *testing.T) {
	appsList := []*apps.App{apps.L3Switch()}
	levels := []driver.Level{driver.LevelPAC}
	loads := []float64{0.5, 1.5, 3}
	shape := &workload.Spec{Arrival: workload.ArrivalPoisson, Sizes: workload.SizesIMIX, ZipfS: 1.1}

	report := func(workers int) []byte {
		curves, err := LoadLatency(appsList, levels, loads,
			append(kneeOpts(workers), WithWorkload(shape))...)
		if err != nil {
			t.Fatal(err)
		}
		rep := &BenchReport{Schema: ReportSchema, LoadLatency: curves}
		b, err := rep.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial := report(1)
	parallel := report(runtime.GOMAXPROCS(0))
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("load-latency reports differ between 1 worker and GOMAXPROCS:\n%s\n--- vs ---\n%s",
			serial, parallel)
	}
}

// TestRunWithWorkload: single-point Run carries the workload accounting
// through to the Result and the report point.
func TestRunWithWorkload(t *testing.T) {
	sp := &workload.Spec{OfferedGbps: 3, Sizes: workload.SizesIMIX}
	r, err := Run(apps.MPLS(),
		WithLevel(driver.LevelSWC),
		WithWindows(40_000, 150_000),
		WithTrace(64),
		WithWorkload(sp))
	if err != nil {
		t.Fatal(err)
	}
	if r.Workload == nil || r.Workload.Seed == 0 {
		t.Fatalf("workload spec not attached or seed not inherited: %+v", r.Workload)
	}
	if r.RxPackets == 0 || r.OfferedGbps <= 0 {
		t.Errorf("no offered-load accounting: %+v", r)
	}
	if r.Latency == nil || r.Latency.Count == 0 {
		t.Error("no latency samples recorded")
	}
	if r.Latency != nil && r.Latency.Count != r.TxPackets {
		t.Errorf("latency samples %d != transmitted packets %d",
			r.Latency.Count, r.TxPackets)
	}
	rep := BuildReport([]*Result{r})
	p := rep.Points[0]
	if p.Workload == nil || p.Latency == nil || p.RxPackets != r.RxPackets {
		t.Errorf("report point lost workload fields: %+v", p)
	}
	// Legacy mode leaves the workload fields zero.
	legacy, err := Run(apps.MPLS(), WithLevel(driver.LevelSWC),
		WithWindows(40_000, 150_000), WithTrace(64))
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Workload != nil || legacy.Latency != nil || legacy.OfferedGbps != 0 {
		t.Errorf("legacy run grew workload accounting: %+v", legacy)
	}
}
