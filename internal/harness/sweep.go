package harness

import (
	"fmt"
	"sync"
	"sync/atomic"

	"shangrila/internal/apps"
	"shangrila/internal/driver"
	"shangrila/internal/workload"
)

// Point is one sweep coordinate: app × level × enabled MEs × seed.
// A non-zero OfferedGbps overrides the workload spec's offered load for
// this point (load–latency sweeps vary it against one compiled image).
type Point struct {
	App         *apps.App
	Level       driver.Level
	NumMEs      int
	Seed        uint64
	OfferedGbps float64
}

// compileKey identifies a shared compilation: the measurement grid varies
// ME counts against one compiled image per (app, level, seed).
type compileKey struct {
	app   string
	level driver.Level
	seed  uint64
}

// compileOnce is a per-sweep memoized compiler: the first worker to need
// a (app, level, seed) image compiles it, later workers block on the
// entry and share the result. Measurement is read-only over the compiled
// image, so sharing across goroutines is safe.
type compileOnce struct {
	mu    sync.Mutex
	cache map[compileKey]*compileEntry
}

type compileEntry struct {
	once sync.Once
	res  *driver.Result
	err  error
}

func (c *compileOnce) get(a *apps.App, lvl driver.Level, seed uint64, s *settings) (*driver.Result, error) {
	key := compileKey{app: a.Name, level: lvl, seed: seed}
	c.mu.Lock()
	e, ok := c.cache[key]
	if !ok {
		e = &compileEntry{}
		c.cache[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.res, e.err = compile(a, lvl, seed, s)
	})
	return e.res, e.err
}

// Sweep measures every point on a worker pool. Each (app, level, seed)
// combination compiles exactly once; simulation points fan out across
// min(WithWorkers, len(points)) goroutines (default GOMAXPROCS). Results
// are returned in point order regardless of completion order — the same
// points with the same seeds produce the same results at any worker
// count, because each point's simulation is single-threaded and seeded.
// The first error cancels unstarted points.
func Sweep(points []Point, opts ...Option) ([]*Result, error) {
	base := defaultSettings()
	base.apply(opts)
	workers := base.workerCount()
	if workers > len(points) {
		workers = len(points)
	}
	if len(points) == 0 {
		return nil, nil
	}

	compiler := &compileOnce{cache: map[compileKey]*compileEntry{}}
	results := make([]*Result, len(points))
	errs := make([]error, len(points))
	var failed atomic.Bool
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				p := points[i]
				res, err := compiler.get(p.App, p.Level, p.Seed, &base)
				if err != nil {
					errs[i] = fmt.Errorf("%s at %v: %w", p.App.Name, p.Level, err)
					failed.Store(true)
					continue
				}
				s := base
				s.run.NumMEs = p.NumMEs
				s.run.Seed = p.Seed
				s.level = p.Level
				// One trace document per writer: concurrent points would
				// interleave, so sweeps never stream Chrome traces. Callers
				// trace a single representative point with Run instead.
				s.chromeTrace = nil
				if p.OfferedGbps > 0 {
					var sp workload.Spec
					if base.workload != nil {
						sp = *base.workload
					}
					sp.OfferedGbps = p.OfferedGbps
					s.workload = &sp
				}
				results[i], errs[i] = measure(p.App, res, &s)
				if errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	// Stop feeding once any finished point errored; already-dispatched
	// points run to completion.
	for i := range points {
		if failed.Load() {
			break
		}
		next <- i
	}
	close(next)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sweep point %d (%s %v %dME seed %d): %w",
				i, points[i].App.Name, points[i].Level, points[i].NumMEs,
				points[i].Seed, err)
		}
	}
	return results, nil
}
