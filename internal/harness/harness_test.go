package harness_test

import (
	"testing"

	"shangrila/internal/apps"
	"shangrila/internal/cg"
	"shangrila/internal/driver"
	"shangrila/internal/harness"
)

// quickCfg keeps test sweeps fast; the bench harness uses longer windows.
func quickCfg() harness.RunConfig {
	return harness.RunConfig{
		NumMEs:  4,
		Warmup:  80_000,
		Measure: 250_000,
		Seed:    7,
		TraceN:  256,
	}
}

// TestAllAppsAllLevelsCompileAndRun is the whole-repro integration test:
// every benchmark compiles at every optimization level and forwards
// packets on the machine model.
func TestAllAppsAllLevelsCompileAndRun(t *testing.T) {
	for _, a := range apps.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			for _, lvl := range driver.Levels() {
				r, err := harness.Run(a, append(quickCfg().Options(), harness.WithLevel(lvl))...)
				if err != nil {
					t.Fatalf("%v: %v", lvl, err)
				}
				if r.TxPackets == 0 {
					t.Errorf("%v: nothing forwarded", lvl)
				}
				if r.Gbps <= 0 {
					t.Errorf("%v: rate %.2f", lvl, r.Gbps)
				}
				t.Logf("%-6v %.2f Gbps tx=%d stages=%d code=%v total-mem=%.1f",
					lvl, r.Gbps, r.TxPackets, r.Stages, r.CodeSizes, r.Total())
			}
		})
	}
}

func TestOptimizationReducesAccessesPaperShape(t *testing.T) {
	// Table 1 shape: total per-packet accesses fall monotonically (within
	// tolerance) as optimizations cumulate, and PAC gives a large DRAM
	// cut.
	for _, a := range apps.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			get := func(lvl driver.Level) *harness.Result {
				r, err := harness.Run(a, append(quickCfg().Options(), harness.WithLevel(lvl))...)
				if err != nil {
					t.Fatal(err)
				}
				return r
			}
			base := get(driver.LevelO1)
			pac := get(driver.LevelPAC)
			phr := get(driver.LevelPHR)
			swc := get(driver.LevelSWC)
			t.Logf("O1 total=%.1f dram=%.1f | PAC total=%.1f dram=%.1f | PHR total=%.1f sram=%.1f | SWC total=%.1f appsram=%.1f",
				base.Total(), base.PktDRAM, pac.Total(), pac.PktDRAM,
				phr.Total(), phr.PktSRAM, swc.Total(), swc.AppSRAM)
			if pac.PktDRAM >= base.PktDRAM {
				t.Errorf("PAC DRAM %.1f !< O1 DRAM %.1f", pac.PktDRAM, base.PktDRAM)
			}
			if pac.Total() >= base.Total() {
				t.Errorf("PAC total %.1f !< O1 total %.1f", pac.Total(), base.Total())
			}
			if phr.PktSRAM >= pac.PktSRAM {
				t.Errorf("PHR pkt SRAM %.1f !< PAC %.1f", phr.PktSRAM, pac.PktSRAM)
			}
			if swc.AppSRAM > phr.AppSRAM+0.01 {
				t.Errorf("SWC app SRAM %.1f > PHR %.1f", swc.AppSRAM, phr.AppSRAM)
			}
		})
	}
}

func TestFigure6Shape(t *testing.T) {
	points, err := harness.Figure6(30_000, 150_000)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", harness.FormatFigure6(points))
	get := func(level cg.MemLevel, bytes, n int) float64 {
		for _, p := range points {
			if p.Level == level && p.Bytes == bytes && p.Accesses == n {
				return p.Gbps
			}
		}
		t.Fatalf("missing point %v %dB x%d", level, bytes, n)
		return 0
	}
	// Paper budget rules: ~2.5 Gbps is sustainable with <=2 DRAM narrow
	// accesses, <=8 SRAM narrow accesses, <=64 Scratch narrow accesses.
	if g := get(cg.MemDRAM, 8, 2); g < 2.2 {
		t.Errorf("DRAM 8B x2 = %.2f, want >= 2.2", g)
	}
	if g := get(cg.MemDRAM, 8, 8); g > 2.2 {
		t.Errorf("DRAM 8B x8 = %.2f, want clearly below line rate", g)
	}
	if g := get(cg.MemSRAM, 4, 8); g < 2.2 {
		t.Errorf("SRAM 4B x8 = %.2f, want >= 2.2", g)
	}
	if g := get(cg.MemScratch, 4, 64); g < 2.0 {
		t.Errorf("Scratch 4B x64 = %.2f, want >= 2.0", g)
	}
	// Monotone decrease with more accesses.
	for _, s := range harness.Fig6Series {
		prev := 1e9
		for _, n := range harness.Fig6Counts {
			g := get(s.Level, s.Bytes, n)
			if g > prev*1.08 {
				t.Errorf("%v %dB: rate rose %f -> %f at x%d", s.Level, s.Bytes, prev, g, n)
			}
			prev = g
		}
	}
	// Wider accesses are fractionally slower at high counts.
	if get(cg.MemDRAM, 64, 8) > get(cg.MemDRAM, 8, 8) {
		t.Errorf("wide DRAM should not beat narrow at the same count")
	}
}
