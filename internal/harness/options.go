package harness

import (
	"fmt"
	"io"
	"runtime"

	"shangrila/internal/apps"
	"shangrila/internal/cg"
	"shangrila/internal/driver"
	"shangrila/internal/ixp"
	"shangrila/internal/metrics"
	"shangrila/internal/rts"
	"shangrila/internal/workload"
)

// Option configures a Run or Sweep call. Options compose left to right;
// later options override earlier ones.
type Option func(*settings)

// settings is the resolved option set for one measurement.
type settings struct {
	run            RunConfig
	level          driver.Level
	telemetry      bool
	sampleInterval int64
	sampleWindow   int
	compiled       *driver.Result
	workload       *workload.Spec
	workers        int
	verify         driver.VerifyMode
	dumpPass       string
	dumpDir        string
	stalls         bool
	chromeTrace    io.Writer
	metricsReg     *metrics.Registry
	engine         ixp.EngineSpec
	churn          *workload.ChurnSpec
	swcMaxCheck    uint32
}

func defaultSettings() settings {
	return settings{
		run:            DefaultRunConfig(),
		level:          driver.LevelSWC,
		sampleInterval: 10_000,
	}
}

func (s *settings) apply(opts []Option) {
	for _, o := range opts {
		o(s)
	}
}

// WithLevel selects the optimization level (default +SWC, the paper's
// full pipeline).
func WithLevel(lvl driver.Level) Option {
	return func(s *settings) { s.level = lvl }
}

// WithMEs sets the number of enabled packet-processing microengines.
func WithMEs(n int) Option {
	return func(s *settings) { s.run.NumMEs = n }
}

// WithSeed sets the seed for both the profile trace and the measurement
// trace (the measurement trace uses seed+1, as the paper separates
// training and evaluation traffic).
func WithSeed(seed uint64) Option {
	return func(s *settings) { s.run.Seed = seed }
}

// WithTrace sets the number of distinct packets in the cycled
// measurement trace.
func WithTrace(n int) Option {
	return func(s *settings) { s.run.TraceN = n }
}

// WithWindows sets the warm-up and measured cycle windows.
func WithWindows(warmup, measure int64) Option {
	return func(s *settings) {
		s.run.Warmup = warmup
		s.run.Measure = measure
	}
}

// WithTelemetry enables simulator telemetry collection. interval is the
// sampling period in cycles (0 keeps the default of 10k cycles); the
// sampled series land in Result.Telemetry.Series alongside the aggregate
// utilization/saturation/occupancy summaries.
func WithTelemetry(interval int64) Option {
	return func(s *settings) {
		s.telemetry = true
		if interval > 0 {
			s.sampleInterval = interval
		}
	}
}

// WithSampleWindow bounds each telemetry series to the last n samples
// (0 keeps every sample).
func WithSampleWindow(n int) Option {
	return func(s *settings) { s.sampleWindow = n }
}

// WithCompiled supplies an already-compiled image, skipping compilation.
// The result's level is taken from the compile report; WithLevel is
// ignored.
func WithCompiled(res *driver.Result) Option {
	return func(s *settings) { s.compiled = res }
}

// WithWorkload drives the machine from a deterministic open-loop traffic
// stream instead of the legacy closed-loop line-rate trace playback: the
// spec's arrival process, size mix and Zipf flow locality shape arrivals,
// saturation losses are counted instead of retried, and the Result gains
// offered load, drop causes and the Rx→Tx latency histogram. A spec with
// Seed 0 inherits the measurement seed (WithSeed + 1, like the trace).
func WithWorkload(sp *workload.Spec) Option {
	return func(s *settings) { s.workload = sp }
}

// WithChurn sets the control-plane update stream for the churn
// experiment (nil keeps ChurnRun's default storm). A spec with Seed 0
// inherits the measurement seed; Items 0 churns every policy item the
// app declares.
func WithChurn(sp *workload.ChurnSpec) Option {
	return func(s *settings) { s.churn = sp }
}

// WithSWCMaxCheck clamps the software-cache update-check interval
// (Equation 2's limit) so MEs observe control-plane updates within at
// most n packets. 0 keeps the unclamped error-rate-derived interval.
func WithSWCMaxCheck(n uint32) Option {
	return func(s *settings) { s.swcMaxCheck = n }
}

// WithStallBreakdown attaches a cycle-level stall tracer to the measured
// machine: every simulated cycle of the measurement window is attributed
// to compute, per-level memory latency, per-level memory-controller
// queueing, ring backpressure, or idle. The conservative per-ME breakdown
// lands in Result.Stalls, in the bench report's stall_breakdown section,
// and as stall.share.* gauges in the machine's metrics registry.
func WithStallBreakdown() Option {
	return func(s *settings) { s.stalls = true }
}

// WithChromeTrace streams the measured run (warm-up included) to w as a
// Chrome trace_event JSON document viewable in chrome://tracing or
// Perfetto. Run-only: Sweep and LoadLatency measure many points
// concurrently and drop the writer rather than interleave documents.
func WithChromeTrace(w io.Writer) Option {
	return func(s *settings) { s.chromeTrace = w }
}

// WithMetricsRegistry hands the measurement a registry via ixp.Config so
// run-time telemetry (and compile-time pass counters, when the same
// registry is passed to the driver) share one namespace the caller owns.
func WithMetricsRegistry(reg *metrics.Registry) Option {
	return func(s *settings) { s.metricsReg = reg }
}

// WithEngine selects the simulation engine the measured machine runs on
// (nil keeps the serial default). All engines — serial, parallel,
// compiled — are bit-identical: same reports, same goldens. They trade
// worker goroutines (EngineParallel) or load-time closure staging
// (EngineCompiled, optionally sharded) for wall-clock time without
// changing any measured number:
//
//	harness.WithEngine(ixp.EngineCompiled{Shards: 4})
func WithEngine(spec ixp.EngineSpec) Option {
	return func(s *settings) { s.engine = spec }
}

// WithWorkers bounds sweep parallelism (Run ignores it). 0 or negative
// means GOMAXPROCS.
func WithWorkers(n int) Option {
	return func(s *settings) { s.workers = n }
}

// WithVerifyIR sets the compiler's post-pass IR verification mode (default
// driver.VerifyAuto: on under `go test`, off otherwise).
func WithVerifyIR(m driver.VerifyMode) Option {
	return func(s *settings) { s.verify = m }
}

// WithDumpIR dumps the IR after the named compiler pass ("all" dumps every
// pass). With dir non-empty each dump is written to
// <dir>/<app>-<level>-<NN>-<pass>.ir; otherwise dumps go to stdout.
func WithDumpIR(pass, dir string) Option {
	return func(s *settings) {
		s.dumpPass = pass
		s.dumpDir = dir
	}
}

func (s *settings) workerCount() int {
	if s.workers > 0 {
		return s.workers
	}
	return runtime.GOMAXPROCS(0)
}

// Telemetry is the simulator-side measurement data attached to a Result
// when telemetry is enabled.
type Telemetry struct {
	// SampleInterval is the cycle period of the sampled series.
	SampleInterval int64 `json:"sample_interval"`
	// MEUtilization is each ME's busy fraction over the measured window.
	MEUtilization []float64 `json:"me_utilization"`
	// CtrlSaturation maps controller name (scratch/sram/dram) to busy
	// fraction of the measured window.
	CtrlSaturation map[string]float64 `json:"controller_saturation"`
	// RingMaxOcc is each scratch ring's max occupancy since warm-up.
	RingMaxOcc []int `json:"ring_max_occupancy"`
	// Series holds the sampled time-series (me{i}.util,
	// ctrl.{name}.sat, ctrl.{name}.queue, ring{i}.occ).
	Series map[string][]metrics.Sample `json:"series,omitempty"`
}

// Result is one measured data point of the evaluation engine.
type Result struct {
	App    string
	Level  driver.Level
	NumMEs int
	Seed   uint64
	// Engine and Shards record the resolved simulation engine the point
	// ran on ("serial", or "parallel" with the effective shard count), so
	// results from different engines are never silently merged.
	Engine string
	Shards int
	Gbps   float64
	// Table 1 columns: packet Scratch/SRAM/DRAM, app Scratch/SRAM.
	PktScratch, PktSRAM, PktDRAM float64
	AppScratch, AppSRAM          float64
	TxPackets                    uint64
	CodeSizes                    []int
	Stages                       int
	// CompilePasses are the per-stage compile timings (Figure 5 pipeline).
	CompilePasses []driver.PassTiming
	// Telemetry is non-nil when the point ran with WithTelemetry.
	Telemetry *Telemetry
	// Stalls is the conservative per-ME stall breakdown over the measured
	// window, non-nil when the point ran with WithStallBreakdown.
	Stalls *ixp.StallReport

	// Workload-mode accounting (WithWorkload): the load the stream
	// offered over the measured window, how many packets arrived versus
	// were lost to Rx-ring saturation, channel-ring backpressure events,
	// packets the application itself dropped, and the Rx→Tx latency
	// distribution (in cycles) of the transmitted packets.
	Workload      *workload.Spec
	OfferedGbps   float64
	RxPackets     uint64
	RxDropped     uint64
	ChanOverflows uint64
	AppDrops      uint64
	Latency       *metrics.HistogramSnapshot
}

// DropRate returns the fraction of offered packets lost to Rx-ring
// saturation (workload mode; 0 otherwise).
func (r *Result) DropRate() float64 {
	offered := r.RxPackets + r.RxDropped
	if offered == 0 {
		return 0
	}
	return float64(r.RxDropped) / float64(offered)
}

// Total returns the Table 1 "Total" column.
func (r *Result) Total() float64 {
	return r.PktScratch + r.PktSRAM + r.PktDRAM + r.AppScratch + r.AppSRAM
}

// Run compiles (unless WithCompiled) and measures one data point:
//
//	res, err := harness.Run(apps.L3Switch(),
//	    harness.WithLevel(driver.LevelPAC),
//	    harness.WithMEs(4),
//	    harness.WithSeed(7),
//	    harness.WithTelemetry(0))
func Run(a *apps.App, opts ...Option) (*Result, error) {
	s := defaultSettings()
	s.apply(opts)
	res := s.compiled
	if res == nil {
		var err error
		res, err = compile(a, s.level, s.run.Seed, &s)
		if err != nil {
			return nil, fmt.Errorf("%s at %v: %w", a.Name, s.level, err)
		}
	}
	return measure(a, res, &s)
}

// measure runs one compiled app on the machine model. Counters reset
// after warm-up so the steady state is measured.
func measure(a *apps.App, res *driver.Result, s *settings) (*Result, error) {
	trc := a.Trace(res.Prog.Types, s.run.Seed+1, s.run.TraceN)
	var cfg ixp.Config
	if s.telemetry {
		cfg = ixp.DefaultConfig()
		cfg.SampleInterval = s.sampleInterval
		cfg.SampleWindow = s.sampleWindow
	}
	if s.metricsReg != nil {
		if cfg.NumMEs == 0 {
			cfg = ixp.DefaultConfig()
		}
		cfg.Metrics = s.metricsReg
	}
	var wl *workload.Spec
	if s.workload != nil {
		sp := *s.workload
		if sp.Seed == 0 {
			sp.Seed = s.run.Seed + 1
		}
		wl = &sp
	}
	rt, err := rts.New(res.Image, res.Prog, trc, rts.Options{
		NumMEs: s.run.NumMEs, Cfg: cfg, Workload: wl, Engine: s.engine,
	})
	if err != nil {
		return nil, err
	}
	for _, c := range a.Controls {
		if err := rt.Control(c.Name, c.Args...); err != nil {
			return nil, fmt.Errorf("%s control %s: %w", a.Name, c.Name, err)
		}
	}
	var chrome *ixp.ChromeTracer
	var tracers []ixp.Tracer
	if s.stalls {
		tracers = append(tracers, ixp.NewStallTracer(rt.M.Cfg.NumMEs, rt.M.Cfg.ThreadsPerME))
	}
	if s.chromeTrace != nil {
		chrome = ixp.NewChromeTracer(rt.M.Cfg.ClockMHz)
		tracers = append(tracers, chrome)
	}
	if len(tracers) > 0 {
		rt.M.Observer().SetTracer(ixp.MultiTracer(tracers...))
	}
	if err := rt.Run(s.run.Warmup); err != nil {
		return nil, fmt.Errorf("%s warmup: %w", a.Name, err)
	}
	rt.M.ResetStats()
	if err := rt.Run(s.run.Measure); err != nil {
		return nil, fmt.Errorf("%s measure: %w", a.Name, err)
	}
	st := rt.M.Snapshot()
	engName, engShards := rt.M.EngineInfo()
	out := &Result{
		App:           a.Name,
		Level:         res.Report.Level,
		NumMEs:        s.run.NumMEs,
		Seed:          s.run.Seed,
		Engine:        engName,
		Shards:        engShards,
		Gbps:          st.Gbps(rt.M.Cfg.ClockMHz),
		PktScratch:    st.PerPacket(cg.MemScratch, cg.ClassPacketRing),
		PktSRAM:       st.PerPacket(cg.MemSRAM, cg.ClassPacketMeta),
		PktDRAM:       st.PerPacket(cg.MemDRAM, cg.ClassPacketData),
		AppScratch:    st.PerPacket(cg.MemScratch, cg.ClassAppData),
		AppSRAM:       st.PerPacket(cg.MemSRAM, cg.ClassAppData),
		TxPackets:     st.TxPackets,
		CodeSizes:     res.Report.CodeSizes,
		Stages:        len(res.Image.MECode),
		CompilePasses: res.Report.Passes,
	}
	if s.telemetry {
		out.Telemetry = collectTelemetry(rt.M, &st, s)
	}
	if s.stalls {
		out.Stalls = rt.M.Observer().StallReport()
		exportStallShares(rt.M.Observer().Metrics(), out.Stalls)
	}
	if chrome != nil {
		if err := chrome.WriteJSON(s.chromeTrace); err != nil {
			return nil, fmt.Errorf("%s trace: %w", a.Name, err)
		}
	}
	if wl != nil {
		out.Workload = wl
		out.OfferedGbps = st.OfferedGbps(rt.M.Cfg.ClockMHz)
		out.RxPackets = st.RxPackets
		out.RxDropped = st.RxDropped
		out.ChanOverflows = st.ChanOverflows()
		out.AppDrops = st.FreedPackets
		lat := rt.M.Observer().Latency()
		out.Latency = &lat
	}
	return out, nil
}

// collectTelemetry derives the summary metrics from the post-warmup
// snapshot and attaches the sampled series.
func collectTelemetry(m *ixp.Machine, st *ixp.Stats, s *settings) *Telemetry {
	tel := &Telemetry{
		SampleInterval: s.sampleInterval,
		CtrlSaturation: map[string]float64{
			"scratch": st.Saturation(cg.MemScratch),
			"sram":    st.Saturation(cg.MemSRAM),
			"dram":    st.Saturation(cg.MemDRAM),
		},
		RingMaxOcc: m.Observer().RingMaxOcc(),
	}
	for i := 0; i < m.Cfg.NumMEs; i++ {
		tel.MEUtilization = append(tel.MEUtilization, st.Utilization(i))
	}
	tel.Series = m.Observer().Metrics().Snapshot().Series
	return tel
}

// exportStallShares publishes the breakdown's active-ME category shares as
// gauges so the stall summary rides along any metrics export.
func exportStallShares(reg *metrics.Registry, rep *ixp.StallReport) {
	if rep == nil {
		return
	}
	tot := rep.ActiveTotals()
	for _, cat := range []string{
		"compute", "ring", "idle", "mem_latency", "mem_queue",
		"mem_queue.scratch", "mem_queue.sram", "mem_queue.dram",
	} {
		reg.Gauge(metrics.StallShareKey(cat)).Set(tot.StallShare(cat))
	}
}
