package harness

import (
	"fmt"
	"strings"

	"shangrila/internal/cg"
	"shangrila/internal/ixp"
)

// Figure 6 reproduces the paper's memory micro-experiment: all six
// programmable MEs run a tight loop that takes a packet descriptor,
// issues only memory accesses (1..128 per packet, at one level and
// width), and forwards the descriptor. The resulting curves show each
// memory level's bandwidth ceiling and the fractional penalty of wider
// accesses — the budget rules (§5: ≈2 DRAM / 8 SRAM / 64 Scratch accesses
// per 64B packet at 2.5 Gbps) fall out of them.

// Fig6Point is one measurement.
type Fig6Point struct {
	Level    cg.MemLevel
	Bytes    int // access width in bytes
	Accesses int // memory accesses per packet
	Gbps     float64
}

// Fig6Counts is the paper's x axis.
var Fig6Counts = []int{1, 2, 4, 8, 16, 32, 64, 128}

// Fig6Series enumerates the paper's six curves.
var Fig6Series = []struct {
	Level cg.MemLevel
	Bytes int
}{
	{cg.MemScratch, 4},
	{cg.MemScratch, 32},
	{cg.MemSRAM, 4},
	{cg.MemSRAM, 32},
	{cg.MemDRAM, 8},
	{cg.MemDRAM, 64},
}

// Figure6Kernel hand-builds the CGIR for the micro-benchmark loop: get a
// descriptor, issue `accesses` reads of `words` words at `level`, put the
// descriptor to Tx. (This doubles as the repository's stand-in for the
// hand-coded-assembly comparison point: it is exactly the kind of program
// an ME programmer writes by hand.)
func Figure6Kernel(level cg.MemLevel, words, accesses int) *cg.Program {
	var code []*cg.Instr
	const (
		rPkt  = cg.PReg(0)  // a0
		rDesc = cg.PReg(16) // b0
		rAddr = cg.PReg(1)  // a1
		rOK   = cg.PReg(17) // b1
	)
	data := make([]cg.PReg, words)
	for i := range data {
		if i%2 == 0 {
			data[i] = cg.PReg(2 + i/2) // a2..
		} else {
			data[i] = cg.PReg(18 + i/2) // b2..
		}
	}
	loop := len(code)
	code = append(code, &cg.Instr{Op: cg.IRingGet, Ring: cg.RingRx,
		Dst: rPkt, Dst2: rDesc, Class: cg.ClassPacketRing})
	// Empty: yield and retry.
	code = append(code, &cg.Instr{Op: cg.IBccImm, Cond: cg.CNe, SrcA: rPkt,
		Imm: cg.InvalidPktID, Target: len(code) + 3})
	code = append(code, &cg.Instr{Op: cg.ICtxArb})
	code = append(code, &cg.Instr{Op: cg.IBr, Target: loop})
	// Address: spread accesses across the level to mimic table traffic,
	// masked into the smallest level's range (scratch is 16 KiB).
	code = append(code, &cg.Instr{Op: cg.IALUImm, ALU: cg.AAnd, Dst: rAddr,
		SrcA: rPkt, Imm: 31})
	code = append(code, &cg.Instr{Op: cg.IALUImm, ALU: cg.AShl, Dst: rAddr,
		SrcA: rAddr, Imm: 6})
	for i := 0; i < accesses; i++ {
		code = append(code, &cg.Instr{Op: cg.IMem, Level: level,
			Addr: rAddr, AddrOff: uint32(i * words * 4), NWords: words,
			Data: append([]cg.PReg(nil), data...), Class: cg.ClassAppData})
	}
	// Forward.
	put := len(code)
	code = append(code, &cg.Instr{Op: cg.IRingPut, Ring: cg.RingTx,
		SrcA: rPkt, SrcB: rDesc, Dst: rOK, Class: cg.ClassPacketRing})
	code = append(code, &cg.Instr{Op: cg.IBccImm, Cond: cg.CEq, SrcA: rOK,
		Imm: 0, Target: put})
	code = append(code, &cg.Instr{Op: cg.IBr, Target: loop})
	return &cg.Program{Name: fmt.Sprintf("fig6_%v_%dB_x%d", level, words*4, accesses), Code: code}
}

// RunKernel runs a raw CGIR kernel on numMEs engines with a synthetic
// descriptor source and returns the measured forwarding rate. Extra
// machine options (an engine selection, a tracer) apply after the media.
func RunKernel(prog *cg.Program, numMEs int, warmup, measure int64, opts ...ixp.Option) (float64, error) {
	cfg := ixp.DefaultConfig()
	cfg.RingSlots = 256
	m, err := ixp.New(cfg, append([]ixp.Option{ixp.WithMedia(&ixp.FixedDescMedia{})}, opts...)...)
	if err != nil {
		return 0, err
	}
	m.GrowRing(cg.RingFree, 600)
	for id := 0; id < 512; id++ {
		m.Rings[cg.RingFree].Put(uint32(id), 64<<16|128)
	}
	for me := 0; me < numMEs; me++ {
		m.LoadProgram(me, prog)
	}
	if err := m.Run(warmup); err != nil {
		return 0, err
	}
	m.ResetStats()
	if err := m.Run(measure); err != nil {
		return 0, err
	}
	return m.Snapshot().Gbps(cfg.ClockMHz), nil
}

// Figure6 sweeps all six curves over the access counts with six MEs (two
// of the eight are Rx and Tx, as on the evaluation board).
func Figure6(warmup, measure int64) ([]Fig6Point, error) {
	return Figure6Engine(warmup, measure, nil)
}

// Figure6Engine is Figure6 on an explicit simulation engine (nil = the
// serial default). The engines are bit-identical, so the sweep's points
// cannot depend on the choice — only the host wall-clock does, which is
// exactly what BenchmarkFigure6 measures per engine.
func Figure6Engine(warmup, measure int64, engine ixp.EngineSpec) ([]Fig6Point, error) {
	var opts []ixp.Option
	if engine != nil {
		opts = append(opts, ixp.WithEngine(engine))
	}
	var out []Fig6Point
	for _, s := range Fig6Series {
		for _, n := range Fig6Counts {
			prog := Figure6Kernel(s.Level, s.Bytes/4, n)
			g, err := RunKernel(prog, 6, warmup, measure, opts...)
			if err != nil {
				return nil, fmt.Errorf("fig6 %v %dB x%d: %w", s.Level, s.Bytes, n, err)
			}
			out = append(out, Fig6Point{Level: s.Level, Bytes: s.Bytes, Accesses: n, Gbps: g})
		}
	}
	return out, nil
}

// FormatFigure6 renders the sweep as the paper's figure data.
func FormatFigure6(points []Fig6Point) string {
	var b strings.Builder
	b.WriteString("Figure 6 — forwarding rate (Gbps) vs memory accesses per 64B packet, 6 MEs\n")
	fmt.Fprintf(&b, "%-14s", "accesses:")
	for _, n := range Fig6Counts {
		fmt.Fprintf(&b, " %6d", n)
	}
	fmt.Fprintln(&b)
	for _, s := range Fig6Series {
		fmt.Fprintf(&b, "%-8s(%2dB):", s.Level, s.Bytes)
		for _, n := range Fig6Counts {
			for _, p := range points {
				if p.Level == s.Level && p.Bytes == s.Bytes && p.Accesses == n {
					fmt.Fprintf(&b, " %6.2f", p.Gbps)
				}
			}
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}
