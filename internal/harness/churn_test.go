package harness

import (
	"bytes"
	"testing"

	"shangrila/internal/apps"
	"shangrila/internal/driver"
	"shangrila/internal/opt/swc"
	"shangrila/internal/profiler"
	"shangrila/internal/rts"
	"shangrila/internal/workload"
)

// churnTestOpts keeps churn measurement runs short.
func churnTestOpts() []Option {
	return []Option{
		WithMEs(4),
		WithWindows(60_000, 400_000),
		WithTrace(192),
		WithSeed(7),
	}
}

// TestChurnRunTimeline: the churn experiment applies updates mid-run,
// reports a bucketed timeline that keeps forwarding throughout, and the
// incremental compile-latency comparison executes strictly fewer passes
// than the cold pipeline.
func TestChurnRunTimeline(t *testing.T) {
	sp := &workload.ChurnSpec{UpdatesPerSec: 60_000, Burst: 2}
	r, err := ChurnRun(apps.L3Switch(), append(churnTestOpts(),
		WithChurn(sp), WithSWCMaxCheck(64))...)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Buckets) != churnBuckets {
		t.Fatalf("got %d buckets, want %d", len(r.Buckets), churnBuckets)
	}
	if r.Updates.Applied == 0 || r.Updates.Failed != 0 {
		t.Errorf("update stats %+v: want applied > 0 and no failures", r.Updates)
	}
	var applied int
	var tx uint64
	for i, b := range r.Buckets {
		applied += b.UpdatesApplied
		tx += b.TxPackets
		if b.GoodputGbps <= 0 {
			t.Errorf("bucket %d: forwarding stopped (%.3f Gbps)", i, b.GoodputGbps)
		}
	}
	if applied != r.Updates.Applied {
		t.Errorf("bucket updates sum %d != applied %d", applied, r.Updates.Applied)
	}
	if tx == 0 {
		t.Error("no packets transmitted across the whole timeline")
	}
	c := r.Compile
	if c == nil {
		t.Fatal("no compile-latency comparison recorded")
	}
	if c.IncSkipped == 0 || c.IncExecuted >= c.ColdPasses {
		t.Errorf("incremental recompile executed %d of %d passes (skipped %d), want strictly fewer",
			c.IncExecuted, c.ColdPasses, c.IncSkipped)
	}
	rep := &BenchReport{Schema: ReportSchema, Churn: []*ChurnResult{r}}
	canon, err := rep.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(canon, []byte(`"cold_p50_nanos": 0`)) == false {
		t.Error("canonical report keeps wall-clock compile latency")
	}
}

// TestChurnDeterminism: the churn section of the canonical report is
// byte-identical across repeated runs. Run with -cpu 1,4 to vary
// scheduler width.
func TestChurnDeterminism(t *testing.T) {
	report := func() []byte {
		rs, err := ChurnExperiment([]*apps.App{apps.L3Switch()},
			append(churnTestOpts(),
				WithChurn(&workload.ChurnSpec{UpdatesPerSec: 40_000, Arrival: workload.ChurnArrivalPoisson, WithdrawFraction: 0.25}),
				WithSWCMaxCheck(64))...)
		if err != nil {
			t.Fatal(err)
		}
		rep := &BenchReport{Schema: ReportSchema, Churn: rs}
		b, err := rep.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a := report()
	b := report()
	if !bytes.Equal(a, b) {
		t.Fatalf("churn reports differ between identical runs:\n%s\n--- vs ---\n%s", a, b)
	}
}

// compileWithCheckLimit compiles an app at +SWC with the software-cache
// update-check interval clamped to limit packets.
func compileWithCheckLimit(t *testing.T, a *apps.App, limit uint32) *driver.Result {
	t.Helper()
	prog, err := driver.LowerSource(a.Name+".baker", a.Source)
	if err != nil {
		t.Fatal(err)
	}
	swcCfg := swc.DefaultConfig()
	swcCfg.MaxCheckLimit = limit
	res, err := driver.CompileIR(prog, driver.Config{
		Level:        driver.LevelSWC,
		ProfileTrace: a.Trace(prog.Types, 7, 512),
		Controls:     a.Controls,
		SWC:          swcCfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func be16(b []byte) uint32 { return uint32(b[0])<<8 | uint32(b[1]) }
func be32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// scheduleChurnStorm expands a churn spec against the app policy over
// [now, now+span) and registers the updates.
func scheduleChurnStorm(t *testing.T, rt *rts.Runtime, a *apps.App, sp workload.ChurnSpec, span int64) *rts.ChurnStats {
	t.Helper()
	ups, err := churnEvents(a, sp, rt.M.Cfg.ClockMHz, rt.M.Now(), span)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) < 10 {
		t.Fatalf("storm too weak: only %d updates scheduled", len(ups))
	}
	return rt.ScheduleUpdates(ups)
}

// TestSWCCoherencyUnderChurnStorm is the delayed-update coherency claims
// test (§5.2): while a seeded storm of route add/withdraw updates flips
// the L3-Switch tables through the XScale path, no transmitted frame may
// ever observe a half-applied rule set — every routed frame's dst MAC,
// src MAC and output port must be consistent with a single next hop, and
// that next hop must be one some applied table version installed. After
// the storm, with the check interval clamped, every ME converges to the
// final table state within the staleness bound.
func TestSWCCoherencyUnderChurnStorm(t *testing.T) {
	a := apps.L3Switch()
	res := compileWithCheckLimit(t, a, 64)
	rt, err := rts.New(res.Image, res.Prog, a.Trace(res.Prog.Types, 11, 256),
		rts.Options{NumMEs: 4, CaptureLimit: 1 << 17})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range a.Controls {
		if err := rt.Control(c.Name, c.Args...); err != nil {
			t.Fatal(err)
		}
	}

	st := scheduleChurnStorm(t, rt, a, workload.ChurnSpec{
		Seed: 5, UpdatesPerSec: 150_000, Burst: 3, Items: 3, WithdrawFraction: 0.3,
	}, 400_000)
	if err := rt.Run(400_000); err != nil {
		t.Fatal(err)
	}
	if st.Applied < 10 || st.Failed != 0 {
		t.Fatalf("storm update stats %+v", st)
	}

	// Per churned /24, the next hops any applied version installs.
	allowedNH := map[uint32]map[uint32]bool{
		0xc0a80100: {4: true, 7: true},
		0x08080800: {6: true, 5: true},
		0x01010100: {7: true, 8: true},
	}
	checkFrames := func(frames []rts.TxPkt, finalNH map[uint32]uint32) {
		routed := 0
		for _, f := range frames {
			if len(f.Frame) < 34 || be16(f.Frame[12:14]) != 0x0800 {
				continue
			}
			dstHi, dstLo := be16(f.Frame[0:2]), be32(f.Frame[2:6])
			srcHi, srcLo := be16(f.Frame[6:8]), be32(f.Frame[8:12])
			if dstHi != 0x0bb0 {
				continue // bridged or flooded, not a routed frame
			}
			routed++
			nh := dstLo - 0x11000000
			if nh < 1 || nh > 8 {
				t.Fatalf("routed frame with dst MAC %04x:%08x: next hop %d out of range (torn neighbor read?)",
					dstHi, dstLo, nh)
			}
			wantHi, wantLo := routerMACHalves(nh % 3)
			if srcHi != wantHi || srcLo != wantLo {
				t.Fatalf("routed frame mixes table versions: next hop %d but src MAC %04x:%08x (want %04x:%08x)",
					nh, srcHi, srcLo, wantHi, wantLo)
			}
			ipDst := be32(f.Frame[30:34])
			if set, churned := allowedNH[ipDst&0xffffff00]; churned {
				if !set[nh] {
					t.Fatalf("frame to churned %08x/24 routed via next hop %d, never installed by any version",
						ipDst&0xffffff00, nh)
				}
				if finalNH != nil && finalNH[ipDst&0xffffff00] != nh {
					t.Fatalf("after convergence window, frame to %08x/24 still uses next hop %d (want %d)",
						ipDst&0xffffff00, nh, finalNH[ipDst&0xffffff00])
				}
			}
		}
		if routed == 0 {
			t.Fatal("no routed frames captured; the claims check exercised nothing")
		}
	}
	checkFrames(rt.TxCapture, nil)

	// Tail convergence: pin every churned route to its first announce
	// state, let in-flight packets drain and every ME pass the 64-packet
	// check bound, then require all churned-destination frames to use
	// the final tables.
	for _, tgt := range a.Churn.Targets {
		c := tgt.States[0]
		if err := rt.Control(c.Name, c.Args...); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Run(200_000); err != nil {
		t.Fatal(err)
	}
	tailStart := len(rt.TxCapture)
	if err := rt.Run(200_000); err != nil {
		t.Fatal(err)
	}
	tail := rt.TxCapture[tailStart:]
	if len(tail) == 0 {
		t.Fatal("no frames captured in the convergence window")
	}
	checkFrames(tail, map[uint32]uint32{
		0xc0a80100: 4, 0x08080800: 6, 0x01010100: 7,
	})
}

// routerMACHalves mirrors the app's per-port router MAC assignment.
func routerMACHalves(port uint32) (hi, lo uint32) {
	return 0x0a00, 0x5e000000 | port
}

// TestFirewallRuleFlipConverges: flipping a firewall rule to deny
// through the churn path stops matching traffic once the software caches
// converge — no packet is forwarded under the withdrawn permission.
func TestFirewallRuleFlipConverges(t *testing.T) {
	a := apps.Firewall()
	res := compileWithCheckLimit(t, a, 64)
	rt, err := rts.New(res.Image, res.Prog, a.Trace(res.Prog.Types, 11, 256),
		rts.Options{NumMEs: 4, CaptureLimit: 1 << 17})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range a.Controls {
		if err := rt.Control(c.Name, c.Args...); err != nil {
			t.Fatal(err)
		}
	}
	st := scheduleChurnStorm(t, rt, a, workload.ChurnSpec{
		Seed: 9, UpdatesPerSec: 150_000, Burst: 2, Items: 4,
	}, 300_000)
	if err := rt.Run(300_000); err != nil {
		t.Fatal(err)
	}
	if st.Applied < 10 || st.Failed != 0 {
		t.Fatalf("storm update stats %+v", st)
	}

	// Final state: rule 0 (allow internal web, the first churn target)
	// flipped to deny, every other churned rule back at its boot action.
	deny := a.Churn.Targets[0].States[0]
	if err := rt.Control(deny.Name, deny.Args...); err != nil {
		t.Fatal(err)
	}
	for _, tgt := range a.Churn.Targets[1:] {
		c := tgt.States[1]
		if err := rt.Control(c.Name, c.Args...); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Run(200_000); err != nil {
		t.Fatal(err)
	}
	tailStart := len(rt.TxCapture)
	if err := rt.Run(200_000); err != nil {
		t.Fatal(err)
	}
	tail := rt.TxCapture[tailStart:]
	if len(tail) == 0 {
		t.Fatal("no frames captured in the convergence window")
	}
	for _, f := range tail {
		if len(f.Frame) < 38 || be16(f.Frame[12:14]) != 0x0800 {
			continue
		}
		src, dst := be32(f.Frame[26:30]), be32(f.Frame[30:34])
		proto := uint32(f.Frame[23])
		dport := be16(f.Frame[36:38])
		if src&0xff000000 == 0x0a000000 && dst&0xffff0000 == 0xc0a80000 &&
			proto == 6 && dport == 80 {
			t.Fatalf("packet %08x->%08x:80 forwarded after its allow rule converged to deny", src, dst)
		}
	}
}

// churnDelta mirrors the driver session tests' single-rule deltas.
func churnDelta(a *apps.App) driver.Delta {
	switch a.Name {
	case "l3switch":
		return driver.Delta{AddControls: []profiler.Control{
			{Name: "l3switch.add_route", Args: []uint32{0x0b000000, 8, 2}}}}
	case "firewall":
		return driver.Delta{AddControls: []profiler.Control{
			{Name: "firewall.add_rule", Args: []uint32{
				6, 0x0a000000, 0xff000000, 0xc0a80000, 0xffff0000,
				0, 0xffff, 443, 443, 6, 1, 2}}}}
	case "mpls":
		return driver.Delta{AddControls: []profiler.Control{
			{Name: "mplsapp.add_ilm", Args: []uint32{900, 1, 1000, 3}}}}
	}
	return driver.Delta{}
}

// TestIncrementalPacketDifferential: an incrementally recompiled image
// must be packet-for-packet identical to a cold compile of the same
// post-delta configuration — every transmitted frame byte-equal — for
// every app at every optimization level.
func TestIncrementalPacketDifferential(t *testing.T) {
	for _, a := range apps.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			for _, lvl := range driver.Levels() {
				prog, err := driver.LowerSource(a.Name+".baker", a.Source)
				if err != nil {
					t.Fatal(err)
				}
				sess, err := driver.NewSession(prog, driver.Config{
					Level:        lvl,
					ProfileTrace: a.Trace(prog.Types, 7, 256),
					Controls:     a.Controls,
				})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := sess.Compile(); err != nil {
					t.Fatalf("%v: cold session compile: %v", lvl, err)
				}
				inc, err := sess.Recompile(churnDelta(a))
				if err != nil {
					t.Fatalf("%v: incremental recompile: %v", lvl, err)
				}
				coldProg, err := driver.LowerSource(a.Name+".baker", a.Source)
				if err != nil {
					t.Fatal(err)
				}
				coldCfg := sess.Config()
				coldCfg.ProfileTrace = a.Trace(coldProg.Types, 7, 256)
				cold, err := driver.CompileIR(coldProg, coldCfg)
				if err != nil {
					t.Fatalf("%v: cold compile: %v", lvl, err)
				}

				capture := func(res *driver.Result) []rts.TxPkt {
					rt, err := rts.New(res.Image, res.Prog, a.Trace(res.Prog.Types, 11, 128),
						rts.Options{NumMEs: 3, CaptureLimit: 4096})
					if err != nil {
						t.Fatalf("%v: %v", lvl, err)
					}
					for _, c := range coldCfg.Controls {
						if err := rt.Control(c.Name, c.Args...); err != nil {
							t.Fatalf("%v: control %s: %v", lvl, c.Name, err)
						}
					}
					if err := rt.Run(150_000); err != nil {
						t.Fatalf("%v: run: %v", lvl, err)
					}
					return rt.TxCapture
				}
				fi, fc := capture(inc), capture(cold)
				if len(fi) != len(fc) {
					t.Fatalf("%v: incremental transmitted %d frames, cold %d", lvl, len(fi), len(fc))
				}
				if len(fi) == 0 {
					t.Fatalf("%v: no frames transmitted; differential exercised nothing", lvl)
				}
				for i := range fi {
					if !bytes.Equal(fi[i].Frame, fc[i].Frame) {
						t.Fatalf("%v: frame %d differs between incremental and cold images", lvl, i)
					}
				}
			}
		})
	}
}
