package harness_test

import (
	"testing"

	"shangrila/internal/aggregate"
	"shangrila/internal/apps"
	"shangrila/internal/driver"
	"shangrila/internal/harness"
)

// TestPaperClaimsAggregation checks §6.2's structural claims: fully
// optimized applications map their entire critical packet pipeline onto a
// single ME replicated across all six, with control-path PPFs on the
// XScale.
func TestPaperClaimsAggregation(t *testing.T) {
	for _, a := range apps.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			res, err := harness.Compile(a, driver.LevelSWC, 7)
			if err != nil {
				t.Fatal(err)
			}
			plan := res.Report.Plan
			me := plan.MEAggregates()
			if len(me) != 1 {
				t.Errorf("ME aggregates = %d, want 1 (paper: one ME, replicated):\n%s",
					len(me), plan)
			}
			if plan.Replicas != 6 {
				t.Errorf("replicas = %d, want 6", plan.Replicas)
			}
			for _, c := range res.Image.MECode {
				if len(c.Program.Code) > 4096 {
					t.Errorf("aggregate %v exceeds the code store: %d", c.Agg.PPFs, len(c.Program.Code))
				}
			}
		})
	}
	// L3-Switch specifically offloads ARP handling.
	res, err := harness.Compile(apps.L3Switch(), driver.LevelSWC, 7)
	if err != nil {
		t.Fatal(err)
	}
	arp := res.Report.Plan.Of["l3switch.arp_handler"]
	if arp == nil || arp.Target != aggregate.TargetXScale {
		t.Errorf("arp_handler should run on the XScale")
	}
}

// TestPaperClaimsMonotoneRates checks the Figures 13-15 ordering at the
// full ME count: each cumulative optimization level forwards at least as
// fast as the previous one (small tolerance for simulation noise), and
// the fully optimized build beats BASE by a large factor.
func TestPaperClaimsMonotoneRates(t *testing.T) {
	cfg := quickCfg()
	cfg.NumMEs = 6
	for _, a := range apps.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			var prev float64
			var base, swc float64
			for _, lvl := range driver.Levels() {
				r, err := harness.Run(a, append(cfg.Options(), harness.WithLevel(lvl))...)
				if err != nil {
					t.Fatal(err)
				}
				if r.Gbps < prev*0.93 {
					t.Errorf("%v (%.2f) regressed vs previous level (%.2f)", lvl, r.Gbps, prev)
				}
				if r.Gbps > prev {
					prev = r.Gbps
				}
				if lvl == driver.LevelBase {
					base = r.Gbps
				}
				if lvl == driver.LevelSWC {
					swc = r.Gbps
				}
			}
			if swc < base*1.8 {
				t.Errorf("full optimization only %.2fx over BASE (%.2f -> %.2f), want >= 1.8x",
					swc/base, base, swc)
			}
		})
	}
}

// TestPaperClaimsStallAttribution asserts §6.2's causal story directly
// from the stall breakdown instead of inferring it from rates: the
// load–latency knee is memory-controller queueing. Sweeping L3-Switch
// past saturation, the queueing share of thread-blocked time must
// dominate and grow monotonically across the knee — and the breakdown
// must name the right controller: unoptimized code queues on DRAM (the
// paper's bandwidth-saturation flattening), while at O3 packet-access
// combining has moved the traffic off DRAM, so the residual queueing
// sits on the scratch/SRAM side and the DRAM share collapses. Every
// report on the way is checked for exact conservation.
func TestPaperClaimsStallAttribution(t *testing.T) {
	loads := []float64{0.5, 1, 1.5, 2, 3}
	sweep := func(lvl driver.Level) []harness.LoadPoint {
		curves, err := harness.LoadLatency(
			[]*apps.App{apps.L3Switch()},
			[]driver.Level{lvl}, loads,
			harness.WithWindows(60_000, 300_000),
			harness.WithTrace(128),
			harness.WithStallBreakdown())
		if err != nil {
			t.Fatal(err)
		}
		pts := curves[0].Points
		for _, p := range pts {
			if p.Stalls == nil {
				t.Fatalf("%v point %.2fG has no stall breakdown", lvl, p.OfferedGbps)
			}
			// Conservation: every ME row accounts for the exact window.
			for _, me := range p.Stalls.MEs {
				if me.Total() != p.Stalls.Cycles {
					t.Fatalf("%v at %.2fG: ME%d categories sum to %d cycles of %d",
						lvl, p.OfferedGbps, me.ME, me.Total(), p.Stalls.Cycles)
				}
			}
		}
		return pts
	}
	queueShares := func(pts []harness.LoadPoint, cat string) []float64 {
		var out []float64
		for _, p := range pts {
			tot := p.Stalls.ThreadTotals()
			out = append(out, tot.StallShare(cat))
		}
		return out
	}

	base := sweep(driver.LevelBase)
	o3 := sweep(driver.Level(3)) // O3 = +PAC

	for _, c := range []struct {
		name string
		pts  []harness.LoadPoint
		cat  string
	}{
		{"BASE dram", base, "mem_queue.dram"},
		{"O3 total", o3, "mem_queue"},
	} {
		shares := queueShares(c.pts, c.cat)
		// Monotone growth across the knee (2% tolerance for noise in the
		// saturated tail).
		for i := 1; i < len(shares); i++ {
			if shares[i] < 0.98*shares[i-1] {
				t.Errorf("%s queueing share fell %.4f -> %.4f between %.2fG and %.2fG",
					c.name, shares[i-1], shares[i],
					c.pts[i-1].OfferedGbps, c.pts[i].OfferedGbps)
			}
		}
		// Past the knee (losses underway) queueing dominates every other
		// blocked-time category of the thread rows.
		for i, p := range c.pts {
			if p.DropRate < 0.05 {
				continue
			}
			tot := p.Stalls.ThreadTotals()
			q := shares[i]
			if q < 0.5 {
				t.Errorf("%s at %.2fG: queueing share %.3f does not dominate", c.name, p.OfferedGbps, q)
			}
			for _, other := range []string{"compute", "ring", "mem_latency", "idle"} {
				if s := tot.StallShare(other); s >= q {
					t.Errorf("%s at %.2fG: %s share %.3f >= queueing %.3f",
						c.name, p.OfferedGbps, other, s, q)
				}
			}
		}
		if last := c.pts[len(c.pts)-1]; last.DropRate < 0.05 {
			t.Errorf("%s never crossed the knee (drop %.3f at %.2fG)",
				c.name, last.DropRate, last.OfferedGbps)
		}
	}

	// The optimization story: O3's packet-access combining removes the DRAM
	// traffic, so past the knee its DRAM queueing share is a small fraction
	// of BASE's — the breakdown shows *why* optimized code scales further.
	baseDram := queueShares(base, "mem_queue.dram")
	o3Dram := queueShares(o3, "mem_queue.dram")
	last := len(loads) - 1
	if o3Dram[last] > 0.2*baseDram[last] {
		t.Errorf("O3 DRAM queueing share %.4f not clearly below BASE %.4f — PAC should have moved the bottleneck off DRAM",
			o3Dram[last], baseDram[last])
	}
}

// TestPaperClaimsSaturation checks the flattening signature: unoptimized
// builds stop scaling at fewer MEs than optimized ones, because their
// higher per-packet access counts saturate the memory controllers first.
func TestPaperClaimsSaturation(t *testing.T) {
	a := apps.L3Switch()
	cfg := quickCfg()
	rates := func(lvl driver.Level) []float64 {
		res, err := harness.Compile(a, lvl, cfg.Seed)
		if err != nil {
			t.Fatal(err)
		}
		var out []float64
		for n := 1; n <= 6; n++ {
			c := cfg
			c.NumMEs = n
			r, err := harness.Run(a, append(c.Options(), harness.WithCompiled(res))...)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, r.Gbps)
		}
		return out
	}
	base := rates(driver.LevelBase)
	swc := rates(driver.LevelSWC)
	// BASE gains little beyond 3 MEs (saturated); SWC keeps a higher
	// ceiling.
	if base[5] > base[2]*1.15 {
		t.Errorf("BASE still scaling past 3 MEs: %v", base)
	}
	if swc[5] < base[5]*1.8 {
		t.Errorf("optimized ceiling %.2f not clearly above BASE ceiling %.2f", swc[5], base[5])
	}
	// Both scale from 1 to 2 MEs (below saturation).
	if base[1] < base[0]*1.5 || swc[1] < swc[0]*1.2 {
		t.Errorf("missing low-ME scaling: base %v swc %v", base[:2], swc[:2])
	}
}
