package harness_test

import (
	"testing"

	"shangrila/internal/aggregate"
	"shangrila/internal/apps"
	"shangrila/internal/driver"
	"shangrila/internal/harness"
)

// TestPaperClaimsAggregation checks §6.2's structural claims: fully
// optimized applications map their entire critical packet pipeline onto a
// single ME replicated across all six, with control-path PPFs on the
// XScale.
func TestPaperClaimsAggregation(t *testing.T) {
	for _, a := range apps.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			res, err := harness.Compile(a, driver.LevelSWC, 7)
			if err != nil {
				t.Fatal(err)
			}
			plan := res.Report.Plan
			me := plan.MEAggregates()
			if len(me) != 1 {
				t.Errorf("ME aggregates = %d, want 1 (paper: one ME, replicated):\n%s",
					len(me), plan)
			}
			if plan.Replicas != 6 {
				t.Errorf("replicas = %d, want 6", plan.Replicas)
			}
			for _, c := range res.Image.MECode {
				if len(c.Program.Code) > 4096 {
					t.Errorf("aggregate %v exceeds the code store: %d", c.Agg.PPFs, len(c.Program.Code))
				}
			}
		})
	}
	// L3-Switch specifically offloads ARP handling.
	res, err := harness.Compile(apps.L3Switch(), driver.LevelSWC, 7)
	if err != nil {
		t.Fatal(err)
	}
	arp := res.Report.Plan.Of["l3switch.arp_handler"]
	if arp == nil || arp.Target != aggregate.TargetXScale {
		t.Errorf("arp_handler should run on the XScale")
	}
}

// TestPaperClaimsMonotoneRates checks the Figures 13-15 ordering at the
// full ME count: each cumulative optimization level forwards at least as
// fast as the previous one (small tolerance for simulation noise), and
// the fully optimized build beats BASE by a large factor.
func TestPaperClaimsMonotoneRates(t *testing.T) {
	cfg := quickCfg()
	cfg.NumMEs = 6
	for _, a := range apps.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			var prev float64
			var base, swc float64
			for _, lvl := range driver.Levels() {
				r, err := harness.Run(a, append(cfg.Options(), harness.WithLevel(lvl))...)
				if err != nil {
					t.Fatal(err)
				}
				if r.Gbps < prev*0.93 {
					t.Errorf("%v (%.2f) regressed vs previous level (%.2f)", lvl, r.Gbps, prev)
				}
				if r.Gbps > prev {
					prev = r.Gbps
				}
				if lvl == driver.LevelBase {
					base = r.Gbps
				}
				if lvl == driver.LevelSWC {
					swc = r.Gbps
				}
			}
			if swc < base*1.8 {
				t.Errorf("full optimization only %.2fx over BASE (%.2f -> %.2f), want >= 1.8x",
					swc/base, base, swc)
			}
		})
	}
}

// TestPaperClaimsSaturation checks the flattening signature: unoptimized
// builds stop scaling at fewer MEs than optimized ones, because their
// higher per-packet access counts saturate the memory controllers first.
func TestPaperClaimsSaturation(t *testing.T) {
	a := apps.L3Switch()
	cfg := quickCfg()
	rates := func(lvl driver.Level) []float64 {
		res, err := harness.Compile(a, lvl, cfg.Seed)
		if err != nil {
			t.Fatal(err)
		}
		var out []float64
		for n := 1; n <= 6; n++ {
			c := cfg
			c.NumMEs = n
			r, err := harness.Run(a, append(c.Options(), harness.WithCompiled(res))...)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, r.Gbps)
		}
		return out
	}
	base := rates(driver.LevelBase)
	swc := rates(driver.LevelSWC)
	// BASE gains little beyond 3 MEs (saturated); SWC keeps a higher
	// ceiling.
	if base[5] > base[2]*1.15 {
		t.Errorf("BASE still scaling past 3 MEs: %v", base)
	}
	if swc[5] < base[5]*1.8 {
		t.Errorf("optimized ceiling %.2f not clearly above BASE ceiling %.2f", swc[5], base[5])
	}
	// Both scale from 1 to 2 MEs (below saturation).
	if base[1] < base[0]*1.5 || swc[1] < swc[0]*1.2 {
		t.Errorf("missing low-ME scaling: base %v swc %v", base[:2], swc[:2])
	}
}
