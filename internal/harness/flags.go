package harness

import (
	"flag"
	"fmt"
	"strings"

	"shangrila/internal/driver"
	"shangrila/internal/ixp"
	"shangrila/internal/workload"
)

// CommonFlags is the flag surface shared by cmd/ixpsim and
// cmd/shangrila-bench: optimization level, traffic seed, IR debugging and
// the workload traffic shape. Per-command flags (cycle windows, report
// paths, worker counts) stay with their commands.
type CommonFlags struct {
	Level    int
	Seed     uint64
	DumpIR   string
	DumpDir  string
	VerifyIR bool

	// Traffic shape. Gbps 0 keeps the legacy closed-loop line-rate
	// trace playback; a positive value switches to the open-loop
	// workload engine at that offered load.
	Arrival string
	Sizes   string
	Gbps    float64
	Flows   int
	Zipf    float64

	// Simulation engine selection; the valid names are
	// ixp.EngineNames() — "serial" (the default single-goroutine event
	// loop), "parallel" (MEs sharded across worker goroutines) and
	// "compiled" (staged closure dispatch) — all bit-identical. Shards
	// 0 means min(NumMEs, GOMAXPROCS) for parallel and single-goroutine
	// dispatch for compiled.
	Engine string
	Shards int

	// Control-plane churn shape (the churn experiment). ChurnRate 0
	// keeps the experiment's default update storm; SWCCheckLimit 0
	// keeps the unclamped Equation-2 check interval.
	ChurnRate     float64
	ChurnBurst    int
	ChurnArrival  string
	SWCCheckLimit uint
}

// RegisterCommonFlags registers the shared flags on fs and returns the
// struct the parsed values land in.
func RegisterCommonFlags(fs *flag.FlagSet) *CommonFlags {
	f := &CommonFlags{}
	fs.IntVar(&f.Level, "O", 6, "optimization level 0..6 (BASE..+SWC)")
	fs.Uint64Var(&f.Seed, "seed", 1234, "traffic generator seed (runs echo the resolved seed; replay with the same value)")
	fs.StringVar(&f.DumpIR, "dump-ir", "", `dump IR after the named compiler pass (or "all")`)
	fs.StringVar(&f.DumpDir, "dump-ir-dir", "", "write IR dumps to this directory instead of stdout")
	fs.BoolVar(&f.VerifyIR, "verify-ir", false, "run the IR verifier after every compiler pass")
	fs.StringVar(&f.Arrival, "arrival", workload.ArrivalFixed, "workload arrival process: fixed|poisson|onoff")
	fs.StringVar(&f.Sizes, "sizes", workload.SizesMin, "workload size mix: 64|imix|trimodal")
	fs.Float64Var(&f.Gbps, "gbps", 0, "offered load in Gbps (0 = legacy line-rate trace playback)")
	fs.IntVar(&f.Flows, "flows", 256, "workload flow population size")
	fs.Float64Var(&f.Zipf, "zipf", 0, "Zipf flow-popularity exponent (0 = uniform)")
	fs.StringVar(&f.Engine, "engine", "serial",
		"simulation engine: "+strings.Join(ixp.EngineNames(), "|")+" (bit-identical results)")
	fs.IntVar(&f.Shards, "shards", 0, "engine worker shards (parallel: 0 = min(NumMEs, GOMAXPROCS); compiled: 0 = single-goroutine dispatch)")
	fs.Float64Var(&f.ChurnRate, "churn-rate", 0, "control-plane updates per second (0 = churn experiment default)")
	fs.IntVar(&f.ChurnBurst, "churn-burst", 0, "back-to-back updates per churn arrival (0 = default)")
	fs.StringVar(&f.ChurnArrival, "churn-arrival", "", "churn arrival process: fixed|poisson (default fixed)")
	fs.UintVar(&f.SWCCheckLimit, "swc-check-limit", 0, "max packets between software-cache update checks (0 = unclamped)")
	return f
}

// ChurnSpec returns the churn stream the -churn-* flags describe, or nil
// when none is set (the churn experiment then uses its default storm).
func (f *CommonFlags) ChurnSpec() (*workload.ChurnSpec, error) {
	if f.ChurnRate == 0 && f.ChurnBurst == 0 && f.ChurnArrival == "" {
		return nil, nil
	}
	sp := &workload.ChurnSpec{
		UpdatesPerSec: f.ChurnRate,
		Burst:         f.ChurnBurst,
		Arrival:       f.ChurnArrival,
	}
	probe := *sp
	if probe.UpdatesPerSec == 0 {
		probe.UpdatesPerSec = 1
	}
	if _, err := probe.Normalize(); err != nil {
		return nil, err
	}
	return sp, nil
}

// EngineSpec returns the engine the -engine/-shards flags select (nil
// for the serial default, so callers can pass it straight to
// WithEngine). Parsing delegates to ixp.ParseEngine, the single source
// of truth for valid names — registry-generated usage text and this
// parser cannot drift apart.
func (f *CommonFlags) EngineSpec() (ixp.EngineSpec, error) {
	return ixp.ParseEngine(f.Engine, f.Shards)
}

// DriverLevel returns the -O flag as a driver level, validated.
func (f *CommonFlags) DriverLevel() (driver.Level, error) {
	lvl := driver.Level(f.Level)
	for _, l := range driver.Levels() {
		if l == lvl {
			return lvl, nil
		}
	}
	return lvl, fmt.Errorf("unknown optimization level -O %d", f.Level)
}

// TrafficShape returns the workload spec the traffic flags describe, with
// OfferedGbps left unset for sweeps that drive it per point. The shape is
// validated against a probe load.
func (f *CommonFlags) TrafficShape() (*workload.Spec, error) {
	sp := &workload.Spec{
		Arrival: f.Arrival, Sizes: f.Sizes, Flows: f.Flows, ZipfS: f.Zipf,
	}
	probe := *sp
	probe.OfferedGbps = 1
	if _, err := probe.Normalize(); err != nil {
		return nil, err
	}
	return sp, nil
}

// WorkloadSpec returns the full workload spec when -gbps selects the
// open-loop engine, or nil for legacy trace playback. The spec's Seed is
// left 0 so it inherits the measurement seed.
func (f *CommonFlags) WorkloadSpec() (*workload.Spec, error) {
	if f.Gbps < 0 {
		return nil, fmt.Errorf("workload: offered load must be positive (got %v Gbps)", f.Gbps)
	}
	if f.Gbps == 0 {
		return nil, nil
	}
	sp, err := f.TrafficShape()
	if err != nil {
		return nil, err
	}
	sp.OfferedGbps = f.Gbps
	if _, err := sp.Normalize(); err != nil {
		return nil, err
	}
	return sp, nil
}

// Options converts the shared flags into harness options (seed, IR
// debugging, and the workload engine when -gbps is set). The level is
// not included — commands that measure a single level pass
// WithLevel(f.DriverLevel()) themselves, while sweeps iterate levels.
func (f *CommonFlags) Options() ([]Option, error) {
	opts := []Option{WithSeed(f.Seed)}
	if f.DumpIR != "" || f.DumpDir != "" {
		pass := f.DumpIR
		if pass == "" {
			pass = "all"
		}
		opts = append(opts, WithDumpIR(pass, f.DumpDir))
	}
	if f.VerifyIR {
		opts = append(opts, WithVerifyIR(driver.VerifyOn))
	}
	sp, err := f.WorkloadSpec()
	if err != nil {
		return nil, err
	}
	if sp != nil {
		opts = append(opts, WithWorkload(sp))
	}
	eng, err := f.EngineSpec()
	if err != nil {
		return nil, err
	}
	if eng != nil {
		opts = append(opts, WithEngine(eng))
	}
	csp, err := f.ChurnSpec()
	if err != nil {
		return nil, err
	}
	if csp != nil {
		opts = append(opts, WithChurn(csp))
	}
	if f.SWCCheckLimit != 0 {
		opts = append(opts, WithSWCMaxCheck(uint32(f.SWCCheckLimit)))
	}
	return opts, nil
}
