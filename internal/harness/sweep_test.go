package harness

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"shangrila/internal/apps"
	"shangrila/internal/driver"
)

// sweepTestPoints is a small app × level × ME grid exercising the
// compile cache (several points share a compilation) and mixed seeds.
func sweepTestPoints() []Point {
	var points []Point
	for _, a := range []*apps.App{apps.L3Switch(), apps.MPLS()} {
		for _, lvl := range []driver.Level{driver.LevelBase, driver.LevelSWC} {
			for _, n := range []int{2, 4} {
				points = append(points, Point{App: a, Level: lvl, NumMEs: n, Seed: 7})
			}
		}
	}
	return points
}

func sweepOpts(workers int) []Option {
	return []Option{
		WithWindows(60_000, 200_000),
		WithTrace(128),
		WithTelemetry(20_000),
		WithWorkers(workers),
	}
}

// TestSweepDeterminism requires byte-identical canonical reports from a
// serial and a fully parallel sweep over the same points. Run it at
// several scheduler widths with `go test -run TestSweep -cpu 1,4`.
func TestSweepDeterminism(t *testing.T) {
	points := sweepTestPoints()
	serial, err := Sweep(points, sweepOpts(1)...)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Sweep(points, sweepOpts(runtime.GOMAXPROCS(0))...)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(points) || len(parallel) != len(points) {
		t.Fatalf("result counts %d/%d, want %d", len(serial), len(parallel), len(points))
	}
	for i, r := range serial {
		if r.App != points[i].App.Name || r.Level != points[i].Level ||
			r.NumMEs != points[i].NumMEs || r.Seed != points[i].Seed {
			t.Fatalf("result %d out of order: %s %v %dME seed %d", i,
				r.App, r.Level, r.NumMEs, r.Seed)
		}
	}
	a, err := BuildReport(serial).CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildReport(parallel).CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		for i := range serial {
			if serial[i].Gbps != parallel[i].Gbps || serial[i].TxPackets != parallel[i].TxPackets {
				t.Errorf("point %d diverged: %.4f/%d vs %.4f/%d",
					i, serial[i].Gbps, serial[i].TxPackets,
					parallel[i].Gbps, parallel[i].TxPackets)
			}
		}
		t.Fatal("canonical reports differ between 1 worker and GOMAXPROCS workers")
	}
}

// TestSweepTelemetryPopulated checks every sweep point carries the
// telemetry the bench report promises.
func TestSweepTelemetry(t *testing.T) {
	points := sweepTestPoints()[:2]
	results, err := Sweep(points, sweepOpts(2)...)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		tel := r.Telemetry
		if tel == nil {
			t.Fatalf("point %d: no telemetry", i)
		}
		if len(tel.MEUtilization) == 0 || len(tel.RingMaxOcc) == 0 {
			t.Errorf("point %d: empty telemetry summary %+v", i, tel)
		}
		busy := 0.0
		for _, u := range tel.MEUtilization {
			busy += u
		}
		if busy <= 0 {
			t.Errorf("point %d: all MEs idle", i)
		}
		if len(tel.Series) == 0 {
			t.Errorf("point %d: no sampled series", i)
		}
		if len(r.CompilePasses) == 0 {
			t.Errorf("point %d: no compile pass timings", i)
		}
	}
}

// TestSweepParallelSpeedup bounds the win from the worker pool: the
// parallel Table 1 grid must beat the serial one by a coarse margin.
// Wall-clock sensitive, so -short skips it.
func TestSweepParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock comparison skipped in -short mode")
	}
	// GOMAXPROCS can be forced above the machine size (-cpu flag); real
	// speedup needs real CPUs.
	if runtime.GOMAXPROCS(0) < 2 || runtime.NumCPU() < 2 {
		t.Skip("needs >= 2 CPUs")
	}
	points := sweepTestPoints()
	timed := func(workers int) time.Duration {
		t0 := time.Now()
		if _, err := Sweep(points, sweepOpts(workers)...); err != nil {
			t.Fatal(err)
		}
		return time.Since(t0)
	}
	// Warm once so neither measurement pays one-time costs.
	timed(runtime.GOMAXPROCS(0))
	serial := timed(1)
	parallel := timed(runtime.GOMAXPROCS(0))
	t.Logf("serial %v, parallel %v (%.2fx, %d CPUs)",
		serial, parallel, float64(serial)/float64(parallel), runtime.GOMAXPROCS(0))
	if float64(serial) < 1.3*float64(parallel) {
		t.Errorf("parallel sweep not measurably faster: serial %v vs parallel %v",
			serial, parallel)
	}
}
