package harness

import (
	"bytes"
	"testing"

	"shangrila/internal/apps"
	"shangrila/internal/driver"
	"shangrila/internal/workload"
)

// clusterTestOpts keeps cluster measurement runs short.
func clusterTestOpts() []Option {
	return []Option{
		WithMEs(2),
		WithWindows(30_000, 160_000),
		WithTrace(128),
		WithSeed(7),
	}
}

// clusterTestParams is a small flow population so the Zipf sampler setup
// stays cheap in tests.
func clusterTestParams(chips int) ClusterParams {
	return ClusterParams{
		Chips:       chips,
		PerChipGbps: 2.5,
		Flows:       2048,
		ZipfS:       1.1,
		DrainChip:   NoDrain,
	}
}

// TestClusterSingleChipMatchesRun: a one-chip cluster with zero fabric
// latency is bit-identical to the plain single-machine workload path —
// same packet counts, same drop counts, same latency distribution. This
// pins the whole balancer/fabric-port delivery chain to the calibrated
// single-machine semantics.
func TestClusterSingleChipMatchesRun(t *testing.T) {
	a := apps.L3Switch()
	res, err := Compile(a, driver.LevelSWC, 7)
	if err != nil {
		t.Fatal(err)
	}
	opts := append(clusterTestOpts(), WithCompiled(res))

	cr, err := ClusterRun(a, clusterTestParams(1), opts...)
	if err != nil {
		t.Fatal(err)
	}

	// The exact spec ClusterRun derives: traffic seed = seed+1, offered
	// load = PerChipGbps × 1 chip.
	sp := workload.Spec{Seed: 8, OfferedGbps: 2.5, Flows: 2048, ZipfS: 1.1}
	r, err := Run(a, append(opts, WithWorkload(&sp))...)
	if err != nil {
		t.Fatal(err)
	}

	if len(cr.Chips) != 1 {
		t.Fatalf("got %d chip results, want 1", len(cr.Chips))
	}
	c := cr.Chips[0]
	if c.TxPackets != r.TxPackets || c.RxPackets != r.RxPackets || c.RxDropped != r.RxDropped {
		t.Errorf("counters diverge from plain run: cluster tx/rx/drop %d/%d/%d, run %d/%d/%d",
			c.TxPackets, c.RxPackets, c.RxDropped, r.TxPackets, r.RxPackets, r.RxDropped)
	}
	if r.Latency == nil {
		t.Fatal("plain run has no latency histogram")
	}
	if c.Latency != *r.Latency {
		t.Errorf("latency distribution diverges:\ncluster %+v\nrun     %+v", c.Latency, *r.Latency)
	}
	if cr.Latency != *r.Latency {
		t.Errorf("merged cluster latency != single chip's: %+v vs %+v", cr.Latency, *r.Latency)
	}
	if c.TxPackets == 0 {
		t.Error("no packets forwarded; the pin is vacuous")
	}
}

// TestClusterDeterminism: the full scaling series (including the drain
// scenario) produces a byte-identical canonical report at any worker
// count, and the drain scenario shows the redistribution it exists to
// measure. Run with -race this also proves the epoch barriers are sound.
func TestClusterDeterminism(t *testing.T) {
	a := apps.L3Switch()
	res, err := Compile(a, driver.LevelSWC, 7)
	if err != nil {
		t.Fatal(err)
	}
	p := clusterTestParams(4)
	p.DrainChip = 3

	series := func(workers int) ([]*ClusterResult, []byte) {
		rs, err := ClusterScaling(a, p, append(clusterTestOpts(),
			WithCompiled(res), WithWorkers(workers))...)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		rep := &BenchReport{Schema: ReportSchema, Cluster: rs}
		b, err := rep.CanonicalJSON()
		if err != nil {
			t.Fatalf("workers=%d: canonical: %v", workers, err)
		}
		return rs, b
	}
	rs1, b1 := series(1)
	_, b4 := series(4)
	if !bytes.Equal(b1, b4) {
		t.Error("cluster report differs between -workers 1 and -workers 4")
	}

	// Series shape: doubling chip counts up to 4, then the drain run.
	wantChips := []int{1, 2, 4, 4}
	if len(rs1) != len(wantChips) {
		t.Fatalf("got %d series points, want %d", len(rs1), len(wantChips))
	}
	for i, want := range wantChips {
		if rs1[i].Topology.Chips != want {
			t.Errorf("point %d has %d chips, want %d", i, rs1[i].Topology.Chips, want)
		}
	}
	if rs1[2].Topology.Drain != nil {
		t.Error("scaling point unexpectedly carries a drain plan")
	}

	// Goodput scales with chips: 4 chips clearly above 2× one chip.
	if agg1, agg4 := rs1[0].AggregateGbps, rs1[2].AggregateGbps; agg4 < 2*agg1 {
		t.Errorf("goodput not scaling: 1 chip %.2f Gbps, 4 chips %.2f Gbps", agg1, agg4)
	}

	// Drain scenario: the drained chip loses its arrival share and its
	// goodput collapses after the drain point.
	drain := rs1[3]
	if drain.Topology.Drain == nil || drain.Topology.Drain.Chip != 3 {
		t.Fatalf("last point is not the drain scenario: %+v", drain.Topology.Drain)
	}
	d := drain.Topology.Drain.Chip
	if !drain.Chips[d].Drained {
		t.Errorf("chip %d not marked drained", d)
	}
	for i, c := range drain.Chips {
		if i != d && c.Routed <= drain.Chips[d].Routed {
			t.Errorf("chip %d routed %d arrivals, not above drained chip's %d",
				i, c.Routed, drain.Chips[d].Routed)
		}
	}
	nb := len(drain.Buckets)
	if nb == 0 {
		t.Fatal("drain run has no timeline buckets")
	}
	first, last := drain.Buckets[0].ChipGbps[d], drain.Buckets[nb-1].ChipGbps[d]
	if last >= first {
		t.Errorf("drained chip goodput did not fall: first bucket %.3f, last %.3f", first, last)
	}
	for i, bk := range drain.Buckets {
		if bk.ClusterGbps <= 0 {
			t.Errorf("bucket %d: cluster goodput %.3f, want > 0 (forwarding must survive the drain)",
				i, bk.ClusterGbps)
		}
	}
}
