// Package harness reproduces the paper's evaluation (§6): Figure 6's
// memory micro-benchmark, Table 1's per-packet dynamic memory access
// counts, and Figures 13–15's packet forwarding rates for L3-Switch,
// Firewall and MPLS across optimization levels and enabled-ME counts.
package harness

import (
	"fmt"
	"strings"

	"shangrila/internal/apps"
	"shangrila/internal/cg"
	"shangrila/internal/driver"
	"shangrila/internal/rts"
)

// RunConfig controls one measured simulation.
type RunConfig struct {
	NumMEs  int
	Warmup  int64 // cycles before measurement starts (queues fill)
	Measure int64 // measured cycles
	Seed    uint64
	TraceN  int // distinct packets in the cycled trace
}

// DefaultRunConfig returns the standard measurement window: long enough
// for thousands of packets at line rate, short enough to sweep many
// configurations.
func DefaultRunConfig() RunConfig {
	return RunConfig{
		NumMEs:  6,
		Warmup:  150_000,
		Measure: 900_000,
		Seed:    1234,
		TraceN:  384,
	}
}

// AppResult is one measured data point.
type AppResult struct {
	App    string
	Level  driver.Level
	NumMEs int
	Gbps   float64
	// Table 1 columns: packet Scratch/SRAM/DRAM, app Scratch/SRAM.
	PktScratch, PktSRAM, PktDRAM float64
	AppScratch, AppSRAM          float64
	TxPackets                    uint64
	CodeSizes                    []int
	Stages                       int
}

// Total returns the Table 1 "Total" column.
func (r *AppResult) Total() float64 {
	return r.PktScratch + r.PktSRAM + r.PktDRAM + r.AppScratch + r.AppSRAM
}

// Compile compiles an app at a level, generating its profile trace from
// its own generator.
func Compile(a *apps.App, lvl driver.Level, seed uint64) (*driver.Result, error) {
	prog, err := driver.LowerSource(a.Name+".baker", a.Source)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	ptrace := a.Trace(prog.Types, seed, 512)
	return driver.CompileIR(prog, driver.Config{
		Level:        lvl,
		ProfileTrace: ptrace,
		Controls:     a.Controls,
	})
}

// Measure runs one compiled app on the machine model and returns the data
// point. Counters reset after warm-up so the steady state is measured.
func Measure(a *apps.App, res *driver.Result, cfg RunConfig) (*AppResult, error) {
	trc := a.Trace(res.Prog.Types, cfg.Seed+1, cfg.TraceN)
	rt, err := rts.New(res.Image, res.Prog, trc, rts.Options{NumMEs: cfg.NumMEs})
	if err != nil {
		return nil, err
	}
	for _, c := range a.Controls {
		if err := rt.Control(c.Name, c.Args...); err != nil {
			return nil, fmt.Errorf("%s control %s: %w", a.Name, c.Name, err)
		}
	}
	if err := rt.Run(cfg.Warmup); err != nil {
		return nil, fmt.Errorf("%s warmup: %w", a.Name, err)
	}
	rt.M.ResetStats()
	if err := rt.Run(cfg.Measure); err != nil {
		return nil, fmt.Errorf("%s measure: %w", a.Name, err)
	}
	st := &rt.M.Stats
	out := &AppResult{
		App:        a.Name,
		Level:      res.Report.Level,
		NumMEs:     cfg.NumMEs,
		Gbps:       st.Gbps(rt.M.Cfg.ClockMHz),
		PktScratch: st.PerPacket(cg.MemScratch, cg.ClassPacketRing),
		PktSRAM:    st.PerPacket(cg.MemSRAM, cg.ClassPacketMeta),
		PktDRAM:    st.PerPacket(cg.MemDRAM, cg.ClassPacketData),
		AppScratch: st.PerPacket(cg.MemScratch, cg.ClassAppData),
		AppSRAM:    st.PerPacket(cg.MemSRAM, cg.ClassAppData),
		TxPackets:  st.TxPackets,
		CodeSizes:  res.Report.CodeSizes,
		Stages:     len(res.Image.MECode),
	}
	return out, nil
}

// RunPoint compiles and measures in one step.
func RunPoint(a *apps.App, lvl driver.Level, cfg RunConfig) (*AppResult, error) {
	res, err := Compile(a, lvl, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("%s at %v: %w", a.Name, lvl, err)
	}
	return Measure(a, res, cfg)
}

// ---------------------------------------------------------------------------
// Table 1

// Table1Levels are the rows the paper reports (O2 and SOAR are skipped:
// "they only affect dynamic instruction counts").
func Table1Levels() []driver.Level {
	return []driver.Level{driver.LevelSWC, driver.LevelPHR, driver.LevelPAC,
		driver.LevelO1, driver.LevelBase}
}

// Table1 measures the per-packet dynamic memory access table for every
// app.
func Table1(cfg RunConfig) ([]*AppResult, error) {
	var rows []*AppResult
	for _, a := range apps.All() {
		for _, lvl := range Table1Levels() {
			r, err := RunPoint(a, lvl, cfg)
			if err != nil {
				return nil, err
			}
			rows = append(rows, r)
		}
	}
	return rows, nil
}

// FormatTable1 renders rows in the paper's Table 1 shape.
func FormatTable1(rows []*AppResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-6s | %8s %8s %8s | %8s %8s | %7s\n",
		"App", "Config", "Scratch", "SRAM", "DRAM", "Scratch", "SRAM", "Total")
	fmt.Fprintf(&b, "%-10s %-6s | %26s | %17s |\n", "", "", "packet accesses", "app accesses")
	prev := ""
	for _, r := range rows {
		if r.App != prev {
			fmt.Fprintln(&b, strings.Repeat("-", 78))
			prev = r.App
		}
		fmt.Fprintf(&b, "%-10s %-6s | %8.1f %8.1f %8.1f | %8.1f %8.1f | %7.1f\n",
			r.App, r.Level, r.PktScratch, r.PktSRAM, r.PktDRAM,
			r.AppScratch, r.AppSRAM, r.Total())
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Figures 13-15

// FigureSeries is one curve: forwarding rate per enabled-ME count.
type FigureSeries struct {
	App   string
	Level driver.Level
	Gbps  []float64 // index 0 = 1 ME
}

// FigureRates sweeps optimization levels × ME counts for one app
// (Figures 13, 14, 15).
func FigureRates(a *apps.App, cfg RunConfig, maxMEs int) ([]*FigureSeries, error) {
	var out []*FigureSeries
	for _, lvl := range driver.Levels() {
		res, err := Compile(a, lvl, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("%s at %v: %w", a.Name, lvl, err)
		}
		s := &FigureSeries{App: a.Name, Level: lvl}
		for n := 1; n <= maxMEs; n++ {
			c := cfg
			c.NumMEs = n
			r, err := Measure(a, res, c)
			if err != nil {
				return nil, err
			}
			s.Gbps = append(s.Gbps, r.Gbps)
		}
		out = append(out, s)
	}
	return out, nil
}

// FormatFigure renders the series as the paper's figure data.
func FormatFigure(title string, series []*FigureSeries) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — forwarding rate (Gbps) vs enabled MEs\n", title)
	fmt.Fprintf(&b, "%-8s", "Config")
	if len(series) > 0 {
		for n := 1; n <= len(series[0].Gbps); n++ {
			fmt.Fprintf(&b, " %6dME", n)
		}
	}
	fmt.Fprintln(&b)
	for _, s := range series {
		fmt.Fprintf(&b, "%-8s", s.Level)
		for _, g := range s.Gbps {
			fmt.Fprintf(&b, " %8.2f", g)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}
