// Package harness reproduces the paper's evaluation (§6): Figure 6's
// memory micro-benchmark, Table 1's per-packet dynamic memory access
// counts, and Figures 13–15's packet forwarding rates for L3-Switch,
// Firewall and MPLS across optimization levels and enabled-ME counts.
//
// The evaluation engine measures one point with Run(app, ...Option) and
// fans whole parameter sweeps across worker goroutines with Sweep.
package harness

import (
	"fmt"
	"strings"

	"shangrila/internal/apps"
	"shangrila/internal/driver"
	"shangrila/internal/opt/swc"
	"shangrila/internal/packet"
)

// RunConfig controls one measured simulation.
type RunConfig struct {
	NumMEs  int
	Warmup  int64 // cycles before measurement starts (queues fill)
	Measure int64 // measured cycles
	Seed    uint64
	TraceN  int // distinct packets in the cycled trace
}

// DefaultRunConfig returns the standard measurement window: long enough
// for thousands of packets at line rate, short enough to sweep many
// configurations.
func DefaultRunConfig() RunConfig {
	return RunConfig{
		NumMEs:  6,
		Warmup:  150_000,
		Measure: 900_000,
		Seed:    1234,
		TraceN:  384,
	}
}

// Options converts a RunConfig to the equivalent Option list (bridge for
// pre-redesign callers).
func (c RunConfig) Options() []Option {
	return []Option{
		WithMEs(c.NumMEs),
		WithWindows(c.Warmup, c.Measure),
		WithSeed(c.Seed),
		WithTrace(c.TraceN),
	}
}

// Compile compiles an app at a level, generating its profile trace from
// its own generator.
func Compile(a *apps.App, lvl driver.Level, seed uint64) (*driver.Result, error) {
	s := defaultSettings()
	return compile(a, lvl, seed, &s)
}

// compile is Compile with the resolved option set: verification mode and
// IR dump selection thread through to the driver configuration.
func compile(a *apps.App, lvl driver.Level, seed uint64, s *settings) (*driver.Result, error) {
	prog, err := driver.LowerSource(a.Name+".baker", a.Source)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	ptrace := a.Trace(prog.Types, seed, 512)
	return driver.CompileIR(prog, driverConfig(a, lvl, ptrace, s))
}

// driverConfig assembles the driver configuration shared by cold
// compiles and incremental sessions.
func driverConfig(a *apps.App, lvl driver.Level, ptrace []*packet.Packet, s *settings) driver.Config {
	cfg := driver.Config{
		Level:        lvl,
		ProfileTrace: ptrace,
		Controls:     a.Controls,
		VerifyIR:     s.verify,
		DumpPass:     s.dumpPass,
		DumpDir:      s.dumpDir,
		DumpPrefix:   a.Name + "-" + lvl.String(),
	}
	if s.swcMaxCheck != 0 {
		// Start from the defaults: the driver only substitutes them for
		// the all-zero config, and a bare MaxCheckLimit would otherwise
		// zero every selection threshold.
		cfg.SWC = swc.DefaultConfig()
		cfg.SWC.MaxCheckLimit = s.swcMaxCheck
	}
	return cfg
}

// ---------------------------------------------------------------------------
// Table 1

// Table1Levels are the rows the paper reports (O2 and SOAR are skipped:
// "they only affect dynamic instruction counts").
func Table1Levels() []driver.Level {
	return []driver.Level{driver.LevelSWC, driver.LevelPHR, driver.LevelPAC,
		driver.LevelO1, driver.LevelBase}
}

// Table1 measures the per-packet dynamic memory access table for every
// app, fanning the app × level grid across the sweep runner's workers.
func Table1(cfg RunConfig, opts ...Option) ([]*Result, error) {
	var points []Point
	for _, a := range apps.All() {
		for _, lvl := range Table1Levels() {
			points = append(points, Point{
				App: a, Level: lvl, NumMEs: cfg.NumMEs, Seed: cfg.Seed,
			})
		}
	}
	return Sweep(points, append(cfg.Options(), opts...)...)
}

// FormatTable1 renders rows in the paper's Table 1 shape.
func FormatTable1(rows []*Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-6s | %8s %8s %8s | %8s %8s | %7s\n",
		"App", "Config", "Scratch", "SRAM", "DRAM", "Scratch", "SRAM", "Total")
	fmt.Fprintf(&b, "%-10s %-6s | %26s | %17s |\n", "", "", "packet accesses", "app accesses")
	prev := ""
	for _, r := range rows {
		if r.App != prev {
			fmt.Fprintln(&b, strings.Repeat("-", 78))
			prev = r.App
		}
		fmt.Fprintf(&b, "%-10s %-6s | %8.1f %8.1f %8.1f | %8.1f %8.1f | %7.1f\n",
			r.App, r.Level, r.PktScratch, r.PktSRAM, r.PktDRAM,
			r.AppScratch, r.AppSRAM, r.Total())
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Figures 13-15

// FigureSeries is one curve: forwarding rate per enabled-ME count.
type FigureSeries struct {
	App   string
	Level driver.Level
	Gbps  []float64 // index 0 = 1 ME
}

// FigureRates sweeps optimization levels × ME counts for one app
// (Figures 13, 14, 15) on the parallel sweep runner: each level compiles
// once, and its per-ME-count measurements share the compiled image.
func FigureRates(a *apps.App, cfg RunConfig, maxMEs int, opts ...Option) ([]*FigureSeries, error) {
	series, _, err := FigureResults(a, cfg, maxMEs, opts...)
	return series, err
}

// FigureResults is FigureRates plus the underlying per-point results (for
// report export).
func FigureResults(a *apps.App, cfg RunConfig, maxMEs int, opts ...Option) ([]*FigureSeries, []*Result, error) {
	levels := driver.Levels()
	var points []Point
	for _, lvl := range levels {
		for n := 1; n <= maxMEs; n++ {
			points = append(points, Point{App: a, Level: lvl, NumMEs: n, Seed: cfg.Seed})
		}
	}
	results, err := Sweep(points, append(cfg.Options(), opts...)...)
	if err != nil {
		return nil, nil, err
	}
	var out []*FigureSeries
	for i, lvl := range levels {
		s := &FigureSeries{App: a.Name, Level: lvl}
		for n := 1; n <= maxMEs; n++ {
			s.Gbps = append(s.Gbps, results[i*maxMEs+n-1].Gbps)
		}
		out = append(out, s)
	}
	return out, results, nil
}

// FormatFigure renders the series as the paper's figure data.
func FormatFigure(title string, series []*FigureSeries) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — forwarding rate (Gbps) vs enabled MEs\n", title)
	fmt.Fprintf(&b, "%-8s", "Config")
	if len(series) > 0 {
		for n := 1; n <= len(series[0].Gbps); n++ {
			fmt.Fprintf(&b, " %6dME", n)
		}
	}
	fmt.Fprintln(&b)
	for _, s := range series {
		fmt.Fprintf(&b, "%-8s", s.Level)
		for _, g := range s.Gbps {
			fmt.Fprintf(&b, " %8.2f", g)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}
