// Package lower translates type-checked Baker ASTs into the Shangri-La IR
// (the "VHO WHIRL → MHO WHIRL" step of the paper's Figure 5).
package lower

import (
	"fmt"

	"shangrila/internal/baker/ast"
	"shangrila/internal/baker/token"
	"shangrila/internal/baker/types"
	"shangrila/internal/ir"
)

// Lower converts a checked program to IR.
func Lower(tp *types.Program) (*ir.Program, error) {
	p := &ir.Program{Types: tp, Funcs: map[string]*ir.Func{}}
	for _, tf := range tp.FuncsInOrder() {
		lf, err := lowerFunc(p, tp, tf)
		if err != nil {
			return nil, err
		}
		p.Funcs[tf.Name] = lf
		p.Order = append(p.Order, tf.Name)
	}
	return p, nil
}

type lowerer struct {
	prog *ir.Program
	tp   *types.Program
	f    *ir.Func
	cur  *ir.Block
	vars map[*types.Symbol]ir.Reg
	// loop stack for break/continue targets
	breaks    []*ir.Block
	continues []*ir.Block
}

func lowerFunc(p *ir.Program, tp *types.Program, tf *types.Func) (f *ir.Func, err error) {
	defer func() {
		if r := recover(); r != nil {
			if le, ok := r.(lowerError); ok {
				err = fmt.Errorf("%s: %s", le.pos, le.msg)
				return
			}
			panic(r)
		}
	}()
	kind := ir.FuncHelper
	switch tf.Kind {
	case ast.KindPPF:
		kind = ir.FuncPPF
	case ast.KindControl:
		kind = ir.FuncControl
	case ast.KindInit:
		kind = ir.FuncInit
	}
	f = &ir.Func{Name: tf.Name, Kind: kind, InProto: tf.InProto, Source: tf}
	l := &lowerer{prog: p, tp: tp, f: f, vars: map[*types.Symbol]ir.Reg{}}
	f.Entry = f.NewBlock()
	l.cur = f.Entry
	for _, ps := range tf.Params {
		class := ir.ClassWord
		if _, ok := ps.Type.(*types.Handle); ok {
			class = ir.ClassHandle
		}
		r := f.NewReg(class)
		f.Params = append(f.Params, r)
		f.ParamClasses = append(f.ParamClasses, class)
		l.vars[ps] = r
	}
	l.block(tf.Decl.Body)
	// Guarantee a terminator on the final block.
	if l.cur != nil && l.cur.Terminator() == nil {
		l.emit(&ir.Instr{Op: ir.OpRet})
	}
	f.ComputeCFG()
	return f, nil
}

type lowerError struct {
	pos token.Pos
	msg string
}

func (l *lowerer) failf(pos token.Pos, format string, args ...any) {
	panic(lowerError{pos: pos, msg: fmt.Sprintf(format, args...)})
}

func (l *lowerer) emit(in *ir.Instr) *ir.Instr {
	if l.cur == nil {
		// Unreachable code after return/break: drop instructions.
		return in
	}
	if in.Op == ir.OpPktLoad || in.Op == ir.OpPktStore || in.Op == ir.OpEncap || in.Op == ir.OpDecap {
		in.StaticOff = ir.UnknownOff
	}
	l.cur.Instrs = append(l.cur.Instrs, in)
	if in.Op.IsTerminator() {
		l.cur = nil
	}
	return in
}

func (l *lowerer) startBlock(b *ir.Block) { l.cur = b }

// constReg materializes a constant.
func (l *lowerer) constReg(v uint64, pos token.Pos) ir.Reg {
	r := l.f.NewReg(ir.ClassWord)
	l.emit(&ir.Instr{Op: ir.OpConst, Pos: pos, Dst: []ir.Reg{r}, Imm: v & 0xffffffff})
	return r
}

// ---------------------------------------------------------------------------
// Statements

func (l *lowerer) block(b *ast.BlockStmt) {
	for _, s := range b.Stmts {
		if l.cur == nil {
			return // unreachable
		}
		l.stmt(s)
	}
}

func (l *lowerer) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		l.block(s)
	case *ast.DeclStmt:
		sym := l.tp.Info.LocalSyms[s]
		class := ir.ClassWord
		if _, ok := sym.Type.(*types.Handle); ok {
			class = ir.ClassHandle
		}
		r := l.f.NewReg(class)
		l.vars[sym] = r
		if s.Init != nil {
			v := l.expr(s.Init)
			l.emit(&ir.Instr{Op: ir.OpMov, Pos: s.Pos(), Dst: []ir.Reg{r}, Args: []ir.Reg{v}})
		} else {
			l.emit(&ir.Instr{Op: ir.OpConst, Pos: s.Pos(), Dst: []ir.Reg{r}})
		}
	case *ast.AssignStmt:
		l.assign(s)
	case *ast.ExprStmt:
		l.expr(s.X)
	case *ast.IfStmt:
		l.ifStmt(s)
	case *ast.WhileStmt:
		l.loop(s.Pos(), nil, s.Cond, nil, s.Body)
	case *ast.ForStmt:
		l.loop(s.Pos(), s.Init, s.Cond, s.Post, s.Body)
	case *ast.ReturnStmt:
		in := &ir.Instr{Op: ir.OpRet, Pos: s.Pos()}
		if s.Value != nil {
			in.Args = []ir.Reg{l.expr(s.Value)}
		}
		l.emit(in)
	case *ast.BreakStmt:
		l.emit(&ir.Instr{Op: ir.OpBr, Pos: s.Pos(), Blocks: []*ir.Block{l.breaks[len(l.breaks)-1]}})
	case *ast.ContinueStmt:
		l.emit(&ir.Instr{Op: ir.OpBr, Pos: s.Pos(), Blocks: []*ir.Block{l.continues[len(l.continues)-1]}})
	case *ast.CriticalStmt:
		id := uint64(l.prog.NumLocks)
		l.prog.NumLocks++
		l.emit(&ir.Instr{Op: ir.OpLockAcquire, Pos: s.Pos(), Imm: id})
		l.block(s.Body)
		if l.cur != nil {
			l.emit(&ir.Instr{Op: ir.OpLockRelease, Pos: s.Pos(), Imm: id})
		}
	default:
		l.failf(s.Pos(), "internal: unknown statement %T", s)
	}
}

func (l *lowerer) ifStmt(s *ast.IfStmt) {
	thenB := l.f.NewBlock()
	var elseB *ir.Block
	done := l.f.NewBlock()
	if s.Else != nil {
		elseB = l.f.NewBlock()
	} else {
		elseB = done
	}
	l.cond(s.Cond, thenB, elseB)
	l.startBlock(thenB)
	l.block(s.Then)
	if l.cur != nil {
		l.emit(&ir.Instr{Op: ir.OpBr, Blocks: []*ir.Block{done}})
	}
	if s.Else != nil {
		l.startBlock(elseB)
		l.stmt(s.Else)
		if l.cur != nil {
			l.emit(&ir.Instr{Op: ir.OpBr, Blocks: []*ir.Block{done}})
		}
	}
	l.startBlock(done)
}

func (l *lowerer) loop(pos token.Pos, init ast.Stmt, cond ast.Expr, post ast.Stmt, body *ast.BlockStmt) {
	if init != nil {
		l.stmt(init)
	}
	head := l.f.NewBlock()
	bodyB := l.f.NewBlock()
	postB := l.f.NewBlock()
	done := l.f.NewBlock()
	l.emit(&ir.Instr{Op: ir.OpBr, Pos: pos, Blocks: []*ir.Block{head}})
	l.startBlock(head)
	if cond != nil {
		l.cond(cond, bodyB, done)
	} else {
		l.emit(&ir.Instr{Op: ir.OpBr, Blocks: []*ir.Block{bodyB}})
	}
	l.breaks = append(l.breaks, done)
	l.continues = append(l.continues, postB)
	l.startBlock(bodyB)
	l.block(body)
	if l.cur != nil {
		l.emit(&ir.Instr{Op: ir.OpBr, Blocks: []*ir.Block{postB}})
	}
	l.breaks = l.breaks[:len(l.breaks)-1]
	l.continues = l.continues[:len(l.continues)-1]
	l.startBlock(postB)
	if post != nil {
		l.stmt(post)
	}
	l.emit(&ir.Instr{Op: ir.OpBr, Blocks: []*ir.Block{head}})
	l.startBlock(done)
}

// cond lowers a boolean expression as control flow with short-circuiting.
func (l *lowerer) cond(e ast.Expr, thenB, elseB *ir.Block) {
	switch e := e.(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			mid := l.f.NewBlock()
			l.cond(e.X, mid, elseB)
			l.startBlock(mid)
			l.cond(e.Y, thenB, elseB)
			return
		case token.LOR:
			mid := l.f.NewBlock()
			l.cond(e.X, thenB, mid)
			l.startBlock(mid)
			l.cond(e.Y, thenB, elseB)
			return
		}
	case *ast.UnaryExpr:
		if e.Op == token.LNOT {
			l.cond(e.X, elseB, thenB)
			return
		}
	}
	v := l.expr(e)
	l.emit(&ir.Instr{Op: ir.OpCondBr, Pos: e.Pos(), Args: []ir.Reg{v},
		Blocks: []*ir.Block{thenB, elseB}})
}

// ---------------------------------------------------------------------------
// Assignment

func (l *lowerer) assign(s *ast.AssignStmt) {
	// Compound assignment: read-modify-write.
	rhs := func() ir.Reg {
		v := l.expr(s.RHS)
		if s.Op == token.ASSIGN {
			return v
		}
		old := l.expr(s.LHS)
		r := l.f.NewReg(ir.ClassWord)
		op := binOpFor(s.Op.AssignOp(), l.exprIsSigned(s.LHS))
		l.emit(&ir.Instr{Op: op, Pos: s.Pos(), Dst: []ir.Reg{r}, Args: []ir.Reg{old, v}})
		return r
	}

	switch lhs := s.LHS.(type) {
	case *ast.Ident:
		sym := l.tp.Info.Uses[lhs]
		switch sym.Kind {
		case types.SymLocal, types.SymParam:
			v := rhs()
			l.emit(&ir.Instr{Op: ir.OpMov, Pos: s.Pos(), Dst: []ir.Reg{l.varReg(sym, lhs.Pos())}, Args: []ir.Reg{v}})
		case types.SymGlobal:
			v := rhs()
			l.emit(&ir.Instr{Op: ir.OpStore, Pos: s.Pos(), Global: sym.Global,
				Width: 4, Args: []ir.Reg{ir.NoReg, v}})
		default:
			l.failf(lhs.Pos(), "cannot assign to %q", lhs.Name)
		}
	case *ast.IndexExpr, *ast.FieldExpr:
		g, idxReg, off := l.addr(s.LHS)
		v := rhs()
		l.emit(&ir.Instr{Op: ir.OpStore, Pos: s.Pos(), Global: g, Off: off,
			Width: 4, Args: []ir.Reg{idxReg, v}})
	case *ast.PacketFieldExpr:
		h := l.expr(lhs.Handle)
		proto := l.handleProto(lhs.Handle)
		v := rhs()
		l.emit(&ir.Instr{Op: ir.OpPktStore, Pos: s.Pos(), Proto: proto,
			Field: proto.Field(lhs.Name), Args: []ir.Reg{h, v}})
	case *ast.MetaFieldExpr:
		h := l.expr(lhs.Handle)
		v := rhs()
		l.emit(&ir.Instr{Op: ir.OpMetaStore, Pos: s.Pos(),
			Field: l.tp.Metadata.Field(lhs.Name), Args: []ir.Reg{h, v}})
	default:
		l.failf(s.Pos(), "internal: unsupported assignment target %T", s.LHS)
	}
}

func (l *lowerer) varReg(sym *types.Symbol, pos token.Pos) ir.Reg {
	r, ok := l.vars[sym]
	if !ok {
		l.failf(pos, "internal: no register for %q", sym.Name)
	}
	return r
}

// addr resolves an array/struct element reference into (global, index
// register or NoReg, constant byte offset).
func (l *lowerer) addr(e ast.Expr) (*types.Global, ir.Reg, int32) {
	switch e := e.(type) {
	case *ast.Ident:
		sym := l.tp.Info.Uses[e]
		if sym == nil || sym.Kind != types.SymGlobal {
			l.failf(e.Pos(), "internal: %q is not a global", e.Name)
		}
		return sym.Global, ir.NoReg, 0
	case *ast.IndexExpr:
		g, idxReg, off := l.addr(e.X)
		arr, ok := l.tp.Info.ExprTypes[e.X].(*types.Array)
		if !ok {
			l.failf(e.Pos(), "internal: indexing non-array")
		}
		elemSize := arr.Elem.SizeBytes()
		if lit, isLit := e.Index.(*ast.IntLit); isLit {
			return g, idxReg, off + int32(lit.Value)*int32(elemSize)
		}
		idx := l.expr(e.Index)
		scaled := l.scale(idx, elemSize, e.Pos())
		if idxReg != ir.NoReg {
			sum := l.f.NewReg(ir.ClassWord)
			l.emit(&ir.Instr{Op: ir.OpAdd, Pos: e.Pos(), Dst: []ir.Reg{sum}, Args: []ir.Reg{idxReg, scaled}})
			scaled = sum
		}
		return g, scaled, off
	case *ast.FieldExpr:
		g, idxReg, off := l.addr(e.X)
		st, ok := l.tp.Info.ExprTypes[e.X].(*types.Struct)
		if !ok {
			l.failf(e.Pos(), "internal: selecting field of non-struct")
		}
		return g, idxReg, off + int32(st.Field(e.Name).Offset)
	}
	l.failf(e.Pos(), "internal: cannot take address of %T", e)
	return nil, ir.NoReg, 0
}

// scale multiplies idx by size, using shifts for powers of two.
func (l *lowerer) scale(idx ir.Reg, size int, pos token.Pos) ir.Reg {
	if size == 1 {
		return idx
	}
	r := l.f.NewReg(ir.ClassWord)
	if size&(size-1) == 0 {
		sh := 0
		for s := size; s > 1; s >>= 1 {
			sh++
		}
		c := l.constReg(uint64(sh), pos)
		l.emit(&ir.Instr{Op: ir.OpShl, Pos: pos, Dst: []ir.Reg{r}, Args: []ir.Reg{idx, c}})
		return r
	}
	c := l.constReg(uint64(size), pos)
	l.emit(&ir.Instr{Op: ir.OpMul, Pos: pos, Dst: []ir.Reg{r}, Args: []ir.Reg{idx, c}})
	return r
}

// ---------------------------------------------------------------------------
// Expressions

func (l *lowerer) exprIsSigned(e ast.Expr) bool {
	t := l.tp.Info.ExprTypes[e]
	b, ok := t.(*types.Basic)
	return ok && b.Kind == types.Int
}

func binOpFor(op token.Kind, signed bool) ir.Op {
	switch op {
	case token.ADD:
		return ir.OpAdd
	case token.SUB:
		return ir.OpSub
	case token.MUL:
		return ir.OpMul
	case token.QUO:
		return ir.OpDivU
	case token.REM:
		return ir.OpRemU
	case token.AND:
		return ir.OpAnd
	case token.OR:
		return ir.OpOr
	case token.XOR:
		return ir.OpXor
	case token.SHL:
		return ir.OpShl
	case token.SHR:
		if signed {
			return ir.OpShrS
		}
		return ir.OpShrU
	}
	return ir.OpInvalid
}

func (l *lowerer) expr(e ast.Expr) ir.Reg {
	switch e := e.(type) {
	case *ast.IntLit:
		return l.constReg(e.Value, e.Pos())
	case *ast.Ident:
		sym := l.tp.Info.Uses[e]
		switch sym.Kind {
		case types.SymLocal, types.SymParam:
			return l.varReg(sym, e.Pos())
		case types.SymConst:
			return l.constReg(sym.Const, e.Pos())
		case types.SymGlobal:
			if !types.IsScalar(sym.Type) {
				l.failf(e.Pos(), "global %q used as a value but is %s", sym.Name, sym.Type)
			}
			r := l.f.NewReg(ir.ClassWord)
			l.emit(&ir.Instr{Op: ir.OpLoad, Pos: e.Pos(), Global: sym.Global,
				Width: 4, Dst: []ir.Reg{r}, Args: []ir.Reg{ir.NoReg}})
			return r
		}
		l.failf(e.Pos(), "internal: identifier %q kind %v in expression", e.Name, sym.Kind)
	case *ast.UnaryExpr:
		x := l.expr(e.X)
		r := l.f.NewReg(ir.ClassWord)
		switch e.Op {
		case token.SUB:
			l.emit(&ir.Instr{Op: ir.OpNeg, Pos: e.Pos(), Dst: []ir.Reg{r}, Args: []ir.Reg{x}})
		case token.NOT:
			l.emit(&ir.Instr{Op: ir.OpNot, Pos: e.Pos(), Dst: []ir.Reg{r}, Args: []ir.Reg{x}})
		case token.LNOT:
			z := l.constReg(0, e.Pos())
			l.emit(&ir.Instr{Op: ir.OpEq, Pos: e.Pos(), Dst: []ir.Reg{r}, Args: []ir.Reg{x, z}})
		default:
			l.failf(e.Pos(), "internal: unary %v", e.Op)
		}
		return r
	case *ast.BinaryExpr:
		return l.binary(e)
	case *ast.CondExpr:
		r := l.f.NewReg(ir.ClassWord)
		thenB := l.f.NewBlock()
		elseB := l.f.NewBlock()
		done := l.f.NewBlock()
		l.cond(e.Cond, thenB, elseB)
		l.startBlock(thenB)
		tv := l.expr(e.Then)
		l.emit(&ir.Instr{Op: ir.OpMov, Dst: []ir.Reg{r}, Args: []ir.Reg{tv}})
		l.emit(&ir.Instr{Op: ir.OpBr, Blocks: []*ir.Block{done}})
		l.startBlock(elseB)
		ev := l.expr(e.Else)
		l.emit(&ir.Instr{Op: ir.OpMov, Dst: []ir.Reg{r}, Args: []ir.Reg{ev}})
		l.emit(&ir.Instr{Op: ir.OpBr, Blocks: []*ir.Block{done}})
		l.startBlock(done)
		return r
	case *ast.IndexExpr, *ast.FieldExpr:
		g, idxReg, off := l.addr(e)
		t := l.tp.Info.ExprTypes[e]
		if !types.IsScalar(t) {
			l.failf(e.Pos(), "aggregate value %s cannot be loaded whole", t)
		}
		r := l.f.NewReg(ir.ClassWord)
		l.emit(&ir.Instr{Op: ir.OpLoad, Pos: e.Pos(), Global: g, Off: off,
			Width: 4, Dst: []ir.Reg{r}, Args: []ir.Reg{idxReg}})
		return r
	case *ast.PacketFieldExpr:
		h := l.expr(e.Handle)
		proto := l.handleProto(e.Handle)
		r := l.f.NewReg(ir.ClassWord)
		l.emit(&ir.Instr{Op: ir.OpPktLoad, Pos: e.Pos(), Proto: proto,
			Field: proto.Field(e.Name), Dst: []ir.Reg{r}, Args: []ir.Reg{h}})
		return r
	case *ast.MetaFieldExpr:
		h := l.expr(e.Handle)
		r := l.f.NewReg(ir.ClassWord)
		l.emit(&ir.Instr{Op: ir.OpMetaLoad, Pos: e.Pos(),
			Field: l.tp.Metadata.Field(e.Name), Dst: []ir.Reg{r}, Args: []ir.Reg{h}})
		return r
	case *ast.CallExpr:
		return l.call(e)
	}
	l.failf(e.Pos(), "internal: unknown expression %T", e)
	return ir.NoReg
}

func (l *lowerer) binary(e *ast.BinaryExpr) ir.Reg {
	switch e.Op {
	case token.LAND, token.LOR:
		// Materialize short-circuit evaluation into a 0/1 register.
		r := l.f.NewReg(ir.ClassWord)
		thenB := l.f.NewBlock()
		elseB := l.f.NewBlock()
		done := l.f.NewBlock()
		l.cond(e, thenB, elseB)
		l.startBlock(thenB)
		one := l.constReg(1, e.Pos())
		l.emit(&ir.Instr{Op: ir.OpMov, Dst: []ir.Reg{r}, Args: []ir.Reg{one}})
		l.emit(&ir.Instr{Op: ir.OpBr, Blocks: []*ir.Block{done}})
		l.startBlock(elseB)
		zero := l.constReg(0, e.Pos())
		l.emit(&ir.Instr{Op: ir.OpMov, Dst: []ir.Reg{r}, Args: []ir.Reg{zero}})
		l.emit(&ir.Instr{Op: ir.OpBr, Blocks: []*ir.Block{done}})
		l.startBlock(done)
		return r
	}
	x := l.expr(e.X)
	y := l.expr(e.Y)
	r := l.f.NewReg(ir.ClassWord)
	signed := l.exprIsSigned(e.X) && l.exprIsSigned(e.Y)
	var op ir.Op
	var swap bool
	switch e.Op {
	case token.EQL:
		op = ir.OpEq
	case token.NEQ:
		op = ir.OpNe
	case token.LSS:
		op = pick(signed, ir.OpLtS, ir.OpLtU)
	case token.LEQ:
		op = pick(signed, ir.OpLeS, ir.OpLeU)
	case token.GTR:
		op = pick(signed, ir.OpLtS, ir.OpLtU)
		swap = true
	case token.GEQ:
		op = pick(signed, ir.OpLeS, ir.OpLeU)
		swap = true
	default:
		op = binOpFor(e.Op, l.exprIsSigned(e.X))
		if op == ir.OpInvalid {
			l.failf(e.Pos(), "internal: binary %v", e.Op)
		}
	}
	args := []ir.Reg{x, y}
	if swap {
		args = []ir.Reg{y, x}
	}
	l.emit(&ir.Instr{Op: op, Pos: e.Pos(), Dst: []ir.Reg{r}, Args: args})
	return r
}

func pick(cond bool, a, b ir.Op) ir.Op {
	if cond {
		return a
	}
	return b
}

// handleProto returns the protocol a handle-typed expression carries.
func (l *lowerer) handleProto(e ast.Expr) *types.Protocol {
	h, ok := l.tp.Info.ExprTypes[e].(*types.Handle)
	if !ok {
		l.failf(e.Pos(), "internal: expected handle expression")
	}
	return h.Proto
}

func (l *lowerer) call(e *ast.CallExpr) ir.Reg {
	if types.IsBuiltin(e.Fun) {
		return l.builtin(e)
	}
	callee := l.tp.Info.CallResolved[e]
	in := &ir.Instr{Op: ir.OpCall, Pos: e.Pos(), Callee: callee.Name}
	for _, a := range e.Args {
		in.Args = append(in.Args, l.expr(a))
	}
	var r ir.Reg = ir.NoReg
	if callee.Result != types.VoidType {
		r = l.f.NewReg(ir.ClassWord)
		in.Dst = []ir.Reg{r}
	}
	l.emit(in)
	return r
}

func (l *lowerer) builtin(e *ast.CallExpr) ir.Reg {
	switch e.Fun {
	case "channel_put":
		h := l.expr(e.Args[1])
		l.emit(&ir.Instr{Op: ir.OpChanPut, Pos: e.Pos(),
			Chan: l.tp.Info.ChanArg[e], Args: []ir.Reg{h}})
		return ir.NoReg
	case "packet_decap", "packet_encap":
		h := l.expr(e.Args[0])
		r := l.f.NewReg(ir.ClassHandle)
		op := ir.OpDecap
		var proto *types.Protocol
		if e.Fun == "packet_encap" {
			op = ir.OpEncap
			proto = l.tp.Info.HandleProto[e] // outer protocol
		} else {
			proto = l.tp.Info.HandleProto[e] // inner protocol
		}
		in := &ir.Instr{Op: op, Pos: e.Pos(), Proto: proto,
			Dst: []ir.Reg{r}, Args: []ir.Reg{h}}
		// Decap needs the protocol being *left* to compute the demux size.
		if op == ir.OpDecap {
			in.Field = nil
			srcProto := l.handleProto(e.Args[0])
			in.Global = nil
			in.Width = 0
			in.Imm = uint64(srcProto.ID)
		} else {
			in.Imm = uint64(l.handleProto(e.Args[0]).ID)
		}
		l.emit(in)
		return r
	case "packet_copy":
		h := l.expr(e.Args[0])
		r := l.f.NewReg(ir.ClassHandle)
		l.emit(&ir.Instr{Op: ir.OpPktCopy, Pos: e.Pos(),
			Proto: l.tp.Info.HandleProto[e], Dst: []ir.Reg{r}, Args: []ir.Reg{h}})
		return r
	case "packet_create":
		r := l.f.NewReg(ir.ClassHandle)
		l.emit(&ir.Instr{Op: ir.OpPktCreate, Pos: e.Pos(),
			Proto: l.tp.Info.HandleProto[e], Dst: []ir.Reg{r}})
		return r
	case "packet_drop":
		h := l.expr(e.Args[0])
		l.emit(&ir.Instr{Op: ir.OpPktDrop, Pos: e.Pos(), Args: []ir.Reg{h}})
		return ir.NoReg
	case "packet_add_tail", "packet_remove_tail":
		h := l.expr(e.Args[0])
		n := l.expr(e.Args[1])
		op := ir.OpAddTail
		if e.Fun == "packet_remove_tail" {
			op = ir.OpRemoveTail
		}
		l.emit(&ir.Instr{Op: op, Pos: e.Pos(), Args: []ir.Reg{h, n}})
		return ir.NoReg
	case "packet_length":
		h := l.expr(e.Args[0])
		r := l.f.NewReg(ir.ClassWord)
		l.emit(&ir.Instr{Op: ir.OpPktLength, Pos: e.Pos(), Dst: []ir.Reg{r}, Args: []ir.Reg{h}})
		return r
	}
	l.failf(e.Pos(), "internal: unhandled builtin %q", e.Fun)
	return ir.NoReg
}
