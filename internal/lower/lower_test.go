package lower

import (
	"strings"
	"testing"

	"shangrila/internal/baker/parser"
	"shangrila/internal/baker/types"
	"shangrila/internal/ir"
)

func lowerSrc(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := parser.Parse("test.baker", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	tp, err := types.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	p, err := Lower(tp)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p
}

const hdr = `
protocol ether { dst_hi:16; dst_lo:32; src_hi:16; src_lo:32; type:16; demux { 14 }; }
protocol ipv4 { ver:4; hlen:4; tos:8; length:16; id:16; flags:3; frag:13;
                ttl:8; proto:8; cksum:16; src:32; dst:32; demux { hlen << 2 }; }
metadata { rx_port:16; next_hop:16; }
`

func countOps(f *ir.Func, op ir.Op) int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == op {
				n++
			}
		}
	}
	return n
}

func TestLowerStraightLine(t *testing.T) {
	p := lowerSrc(t, hdr+`module m {
		uint counter;
		ppf f(ether ph) {
			uint x = ph->type;
			counter = x + 1;
			packet_drop(ph);
		}
		wiring { rx -> f; }
	}`)
	f := p.Func("m.f")
	if f == nil {
		t.Fatal("no m.f")
	}
	if got := countOps(f, ir.OpPktLoad); got != 1 {
		t.Errorf("pktloads = %d, want 1", got)
	}
	if got := countOps(f, ir.OpStore); got != 1 {
		t.Errorf("stores = %d, want 1", got)
	}
	if got := countOps(f, ir.OpPktDrop); got != 1 {
		t.Errorf("drops = %d, want 1", got)
	}
	if f.Blocks[0].Terminator() == nil {
		t.Error("entry block lacks terminator")
	}
	// PktLoad offsets start unresolved for SOAR.
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpPktLoad && in.StaticOff != ir.UnknownOff {
				t.Errorf("pktload StaticOff = %d, want UnknownOff", in.StaticOff)
			}
		}
	}
}

func TestLowerControlFlow(t *testing.T) {
	p := lowerSrc(t, hdr+`module m {
		channel out : ipv4;
		ppf f(ether ph) {
			if (ph->type == 0x0800 && ph->meta.rx_port != 3) {
				ipv4 iph = packet_decap(ph);
				channel_put(out, iph);
			} else {
				packet_drop(ph);
			}
		}
		ppf g(ipv4 ph) { packet_drop(ph); }
		wiring { rx -> f; out -> g; }
	}`)
	f := p.Func("m.f")
	if got := countOps(f, ir.OpCondBr); got != 2 {
		t.Errorf("condbrs = %d, want 2 (short-circuit &&)", got)
	}
	if got := countOps(f, ir.OpDecap); got != 1 {
		t.Errorf("decaps = %d, want 1", got)
	}
	if got := countOps(f, ir.OpChanPut); got != 1 {
		t.Errorf("chanputs = %d, want 1", got)
	}
	// Every block reachable and terminated.
	for _, b := range f.Blocks {
		if b.Terminator() == nil {
			t.Errorf("block b%d lacks terminator:\n%s", b.ID, f)
		}
	}
}

func TestLowerLoops(t *testing.T) {
	p := lowerSrc(t, hdr+`module m {
		uint tbl[64];
		ppf f(ether ph) {
			uint sum = 0;
			for (uint i = 0; i < 64; i++) {
				if (tbl[i] == 0) { continue; }
				if (tbl[i] == 99) { break; }
				sum += tbl[i];
			}
			while (sum > 100) { sum -= 100; }
			ph->meta.next_hop = sum;
			packet_drop(ph);
		}
		wiring { rx -> f; }
	}`)
	f := p.Func("m.f")
	// Dynamic-index loads: tbl[i] appears 3 times.
	if got := countOps(f, ir.OpLoad); got != 3 {
		t.Errorf("loads = %d, want 3", got)
	}
	if got := countOps(f, ir.OpMetaStore); got != 1 {
		t.Errorf("metastores = %d, want 1", got)
	}
	f.ComputeCFG()
	for _, b := range f.Blocks {
		if b.Terminator() == nil {
			t.Errorf("block b%d unterminated", b.ID)
		}
	}
}

func TestLowerStructArray(t *testing.T) {
	p := lowerSrc(t, hdr+`module m {
		struct Rt { prefix:uint; plen:uint; nh:uint; }
		Rt routes[128];
		ppf f(ipv4 ph) {
			uint i = ph->tos;
			uint nh = routes[i].nh;
			routes[2].plen = 7;
			ph->meta.next_hop = nh;
			packet_drop(ph);
		}
		wiring { rx -> f; }
	}`)
	f := p.Func("m.f")
	var store *ir.Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpStore {
				store = in
			}
		}
	}
	if store == nil {
		t.Fatal("no store")
	}
	// routes[2].plen: offset = 2*12 + 4 = 28, no index register.
	if store.Off != 28 || store.Args[0] != ir.NoReg {
		t.Errorf("store off=%d idx=%v, want 28, NoReg", store.Off, store.Args[0])
	}
	var load *ir.Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpLoad {
				load = in
			}
		}
	}
	// routes[i].nh: offset 8 plus scaled index.
	if load.Off != 8 || load.Args[0] == ir.NoReg {
		t.Errorf("load off=%d idx=%v, want 8 with index reg", load.Off, load.Args[0])
	}
}

func TestLowerCallsAndReturn(t *testing.T) {
	p := lowerSrc(t, hdr+`module m {
		func add3(uint a, uint b, uint c) uint { return a + b + c; }
		ppf f(ether ph) {
			uint s = add3(1, 2, ph->type);
			ph->meta.next_hop = s;
			packet_drop(ph);
		}
		wiring { rx -> f; }
	}`)
	f := p.Func("m.f")
	var call *ir.Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall {
				call = in
			}
		}
	}
	if call == nil || call.Callee != "m.add3" || len(call.Args) != 3 || len(call.Dst) != 1 {
		t.Fatalf("call = %v", call)
	}
	helper := p.Func("m.add3")
	if helper.Kind != ir.FuncHelper || len(helper.Params) != 3 {
		t.Errorf("helper: kind=%v params=%d", helper.Kind, len(helper.Params))
	}
	if countOps(helper, ir.OpRet) == 0 {
		t.Error("helper has no ret")
	}
}

func TestLowerCritical(t *testing.T) {
	p := lowerSrc(t, hdr+`module m {
		uint shared;
		control func bump(uint v) { critical { shared = shared + v; } }
		ppf f(ether ph) { critical { shared += 1; } packet_drop(ph); }
		wiring { rx -> f; }
	}`)
	if p.NumLocks != 2 {
		t.Errorf("NumLocks = %d, want 2", p.NumLocks)
	}
	f := p.Func("m.f")
	if countOps(f, ir.OpLockAcquire) != 1 || countOps(f, ir.OpLockRelease) != 1 {
		t.Error("critical section not bracketed with lock/unlock")
	}
}

func TestLowerTernaryAndShortCircuitValue(t *testing.T) {
	p := lowerSrc(t, hdr+`module m {
		ppf f(ether ph) {
			uint a = ph->type > 100 ? 1 : 2;
			uint b = (a == 1) || (ph->type == 0);
			ph->meta.next_hop = a + b;
			packet_drop(ph);
		}
		wiring { rx -> f; }
	}`)
	f := p.Func("m.f")
	if countOps(f, ir.OpCondBr) < 2 {
		t.Errorf("expected >=2 condbr for ternary + ||, got %d:\n%s",
			countOps(f, ir.OpCondBr), f)
	}
}

func TestIRPrintDoesNotPanic(t *testing.T) {
	p := lowerSrc(t, hdr+`module m {
		channel out : ipv4;
		ppf f(ether ph) {
			ipv4 iph = packet_decap(ph);
			channel_put(out, iph);
		}
		ppf g(ipv4 ph) { packet_drop(ph); }
		wiring { rx -> f; out -> g; }
	}`)
	s := p.Func("m.f").String()
	if !strings.Contains(s, "decap") || !strings.Contains(s, "chanput") {
		t.Errorf("print output missing ops:\n%s", s)
	}
}

func TestEncapUsesContextProtocol(t *testing.T) {
	p := lowerSrc(t, hdr+`module m {
		channel out : ether;
		ppf f(ipv4 ph) {
			ether eph = packet_encap(ph);
			channel_put(out, eph);
		}
		wiring { rx -> f; out -> tx; }
	}`)
	f := p.Func("m.f")
	var enc *ir.Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpEncap {
				enc = in
			}
		}
	}
	if enc == nil || enc.Proto.Name != "ether" {
		t.Fatalf("encap proto = %v, want ether", enc)
	}
}
