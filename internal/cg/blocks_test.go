package cg

import (
	"reflect"
	"testing"
)

func TestLeaders(t *testing.T) {
	p := &Program{Name: "leaders", Code: []*Instr{
		/* 0 */ {Op: IImmed, Dst: 0, Imm: 1},
		/* 1 */ {Op: IBccImm, Cond: CEq, SrcA: 0, Imm: 0, Target: 4},
		/* 2 */ {Op: IALUImm, ALU: AAdd, Dst: 0, SrcA: 0, Imm: 1},
		/* 3 */ {Op: IBr, Target: 1},
		/* 4 */ {Op: IHalt},
	}}
	want := []bool{
		true,  // entry
		true,  // target of the br at 3
		true,  // fall-through successor of the bcc at 1
		false, // middle of a block
		true,  // target of 1 and fall-through of 3
	}
	if got := p.Leaders(); !reflect.DeepEqual(got, want) {
		t.Errorf("Leaders() = %v, want %v", got, want)
	}
	if got, want := p.BlockBoundaries(), []int{0, 1, 2, 4}; !reflect.DeepEqual(got, want) {
		t.Errorf("BlockBoundaries() = %v, want %v", got, want)
	}
}

func TestLeadersEmptyAndOutOfRangeTarget(t *testing.T) {
	empty := &Program{Name: "empty"}
	if got := empty.Leaders(); len(got) != 0 {
		t.Errorf("Leaders(empty) = %v, want empty", got)
	}
	p := &Program{Name: "oob", Code: []*Instr{
		{Op: IBr, Target: 99}, // out-of-range target: faults at run time,
		{Op: IHalt},           // must not panic block analysis
	}}
	if got, want := p.BlockBoundaries(), []int{0, 1}; !reflect.DeepEqual(got, want) {
		t.Errorf("BlockBoundaries(oob) = %v, want %v", got, want)
	}
}
