package cg

// Basic-block metadata over CGIR. The simulator's predecoder splits each
// program into straight-line runs and fuses adjacent instruction pairs
// into superinstructions; both transformations need to know where control
// flow can enter other than by falling through, so the block structure is
// computed here, next to the IR it describes.

// Leaders returns, per instruction index, whether the instruction starts a
// basic block: the entry point, every branch target, and every fall-through
// successor of a branch. Runtime thread entry points (Thread.SetPC) are
// always positioned at aggregate entry labels, which are branch targets,
// so the leader set is conservative for them too.
func (p *Program) Leaders() []bool {
	leaders := make([]bool, len(p.Code))
	if len(leaders) == 0 {
		return leaders
	}
	leaders[0] = true
	for i, in := range p.Code {
		switch in.Op {
		case IBr, IBcc, IBccImm:
			if in.Target >= 0 && in.Target < len(leaders) {
				leaders[in.Target] = true
			}
			if i+1 < len(leaders) {
				leaders[i+1] = true
			}
		}
	}
	return leaders
}

// BlockBoundaries returns the sorted leader indices — the first
// instruction of every basic block. Diagnostic form of Leaders for dumps
// and tests.
func (p *Program) BlockBoundaries() []int {
	var out []int
	for i, l := range p.Leaders() {
		if l {
			out = append(out, i)
		}
	}
	return out
}
