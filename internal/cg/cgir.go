// Package cg is the Shangri-La code generator: it lowers merged aggregate
// IR into CGIR, the microengine-level representation executed by the IXP
// model, performing dual-bank register allocation, stack layout and the
// packet-access expansions whose cost the specialized optimizations (PAC,
// SOAR, PHR, SWC) were designed to shrink.
//
// CGIR is a register-transfer ISA shaped after the IXP2400 microengine:
// 32 general-purpose registers per thread split into two banks (an ALU
// instruction's two register sources must come from different banks),
// explicit memory instructions per level (Local Memory / Scratch / SRAM /
// DRAM) with multi-word ref_cnt bursts, a 16-entry CAM, scratch rings for
// communication channels, and cooperative context switching (a thread
// yields on every memory reference).
package cg

import (
	"fmt"

	"shangrila/internal/baker/types"
)

// PReg is a physical register. 0..15 = bank A, 16..31 = bank B.
type PReg int

// Register file shape and reserved registers.
const (
	NumRegs       = 32
	BankSize      = 16
	RegSP    PReg = 15 // bank A: stack pointer (Local Memory byte address)
	RegTmpA  PReg = 14 // bank A assembler temp (spill reloads)
	RegTmpB  PReg = 30 // bank B assembler temp
	NoPReg   PReg = -1
)

// Bank returns 0 for bank A, 1 for bank B.
func (r PReg) Bank() int {
	if int(r) < BankSize {
		return 0
	}
	return 1
}

func (r PReg) String() string {
	if r == NoPReg {
		return "_"
	}
	if r.Bank() == 0 {
		return fmt.Sprintf("a%d", int(r))
	}
	return fmt.Sprintf("b%d", int(r)-BankSize)
}

// ALUOp is the function of an ALU instruction.
type ALUOp int

// ALU operations (two sources unless noted).
const (
	AAdd ALUOp = iota
	ASub
	AMul
	AAnd
	AOr
	AXor
	AShl
	AShrU
	AShrS
	ANot // one source
	ANeg // one source
	AMov // one source
	ADivU
	ARemU
)

var aluNames = [...]string{"add", "sub", "mul", "and", "or", "xor", "shl",
	"shru", "shrs", "not", "neg", "mov", "divu", "remu"}

func (a ALUOp) String() string { return aluNames[a] }

// CondOp is a branch condition comparing two sources.
type CondOp int

// Branch conditions.
const (
	CEq CondOp = iota
	CNe
	CLtU
	CLeU
	CLtS
	CLeS
)

var condNames = [...]string{"eq", "ne", "ltu", "leu", "lts", "les"}

func (c CondOp) String() string { return condNames[c] }

// MemLevel selects the memory hierarchy level of a memory instruction.
type MemLevel int

// Memory levels (§3.2).
const (
	MemLocal MemLevel = iota
	MemScratch
	MemSRAM
	MemDRAM
)

var levelNames = [...]string{"local", "scratch", "sram", "dram"}

func (l MemLevel) String() string { return levelNames[l] }

// AccessClass classifies memory accesses for the Table 1 accounting.
type AccessClass int

// Access classes: the paper's Table 1 splits per-packet accesses into
// packet data (DRAM), packet bookkeeping (metadata + head_ptr in SRAM,
// ring descriptors in Scratch) and application data.
const (
	ClassNone AccessClass = iota
	ClassPacketData
	ClassPacketMeta
	ClassPacketRing
	ClassAppData
)

var classNames = [...]string{"-", "pkt-data", "pkt-meta", "pkt-ring", "app"}

func (c AccessClass) String() string { return classNames[c] }

// Opcode enumerates CGIR instructions.
type Opcode int

// CGIR opcodes.
const (
	INop       Opcode = iota
	IALU              // Dst = ALUOp(SrcA, SrcB); one-source ops use SrcA only
	IALUImm           // Dst = ALUOp(SrcA, Imm)
	IImmed            // Dst = Imm (32-bit load)
	IBr               // unconditional branch to Target
	IBcc              // if Cond(SrcA, SrcB) branch to Target
	IBccImm           // if Cond(SrcA, Imm) branch to Target
	IMem              // memory reference; see fields
	ICAMLookup        // DstHit(Dst)=0/1, DstEntry(Dst2)=entry, key=SrcA
	ICAMWrite         // entry=SrcA, key=SrcB
	ICAMClear
	IRingGet // pops a descriptor pair: Dst = word0 (pktID, InvalidPktID when empty), Dst2 = word1
	IRingPut // pushes a descriptor pair (SrcA, SrcB); Dst = ok (0 when the ring was full)
	ICtxArb  // voluntary yield
	IHalt    // thread exits
)

var opcodeNames = [...]string{"nop", "alu", "alui", "immed", "br", "bcc",
	"bcci", "mem", "camlookup", "camwrite", "camclear", "ringget",
	"ringput", "ctxarb", "halt"}

func (o Opcode) String() string { return opcodeNames[o] }

// Instr is one CGIR instruction. Operand usage depends on Op; unused
// register fields hold NoPReg.
type Instr struct {
	Op   Opcode
	ALU  ALUOp
	Cond CondOp

	Dst  PReg
	Dst2 PReg
	SrcA PReg
	SrcB PReg
	Imm  uint32

	// Memory reference fields.
	Level   MemLevel
	Store   bool
	Addr    PReg   // base address register (NoPReg: absolute Imm address)
	AddrOff uint32 // byte offset added to the base
	NWords  int    // burst length (ref_cnt)
	Data    []PReg // destination regs (load) or source regs (store)
	Atomic  bool   // scratch test-and-set (returns previous value in Data[0])
	Class   AccessClass

	Ring   int // ring id for IRingGet/IRingPut
	Target int // branch target (instruction index)

	// Comment aids disassembly in tests and debugging.
	Comment string
}

func (in *Instr) String() string {
	switch in.Op {
	case IALU:
		if in.ALU == AMov || in.ALU == ANot || in.ALU == ANeg {
			return fmt.Sprintf("%s %s, %s", in.ALU, in.Dst, in.SrcA)
		}
		return fmt.Sprintf("%s %s, %s, %s", in.ALU, in.Dst, in.SrcA, in.SrcB)
	case IALUImm:
		return fmt.Sprintf("%s %s, %s, #%d", in.ALU, in.Dst, in.SrcA, int32(in.Imm))
	case IImmed:
		return fmt.Sprintf("immed %s, #%#x", in.Dst, in.Imm)
	case IBr:
		return fmt.Sprintf("br %d", in.Target)
	case IBcc:
		return fmt.Sprintf("b%s %s, %s, %d", in.Cond, in.SrcA, in.SrcB, in.Target)
	case IBccImm:
		return fmt.Sprintf("b%s %s, #%d, %d", in.Cond, in.SrcA, int32(in.Imm), in.Target)
	case IMem:
		dir := "read"
		if in.Store {
			dir = "write"
		}
		return fmt.Sprintf("%s_%s %v, [%s+%d] x%d (%s)", in.Level, dir, in.Data, in.Addr, in.AddrOff, in.NWords, in.Class)
	case IRingGet:
		return fmt.Sprintf("ringget r%d -> %s, %s", in.Ring, in.Dst, in.Dst2)
	case IRingPut:
		return fmt.Sprintf("ringput r%d <- %s, %s (ok %s)", in.Ring, in.SrcA, in.SrcB, in.Dst)
	case ICAMLookup:
		return fmt.Sprintf("camlookup %s(hit) %s(entry), %s", in.Dst, in.Dst2, in.SrcA)
	case ICAMWrite:
		return fmt.Sprintf("camwrite [%s] = %s", in.SrcA, in.SrcB)
	}
	return in.Op.String()
}

// Program is one compiled aggregate entry: straight CGIR with absolute
// branch targets.
type Program struct {
	Name string
	Code []*Instr
	// StackBytes is the per-thread stack frame the code assumes (spill
	// slots), already placed by stack layout.
	StackBytes int
	// SRAMSpillWords counts spill slots that overflowed Local Memory into
	// SRAM (each access is an SRAM reference; §5.4 shows these destroy
	// performance, so well-optimized code has zero).
	SRAMSpillWords int
}

// Layout fixes the simulated physical memory map for one compiled
// application. All addresses are byte addresses within their level.
type Layout struct {
	// Per-global base addresses, keyed by qualified name, within the
	// global's assigned level (types.Global.Space).
	GlobalAddr map[string]uint32
	// Sizes actually used per level by globals.
	SRAMGlobalBytes    uint32
	ScratchGlobalBytes uint32
	LocalGlobalBytes   uint32 // per-ME private words (SWC counters)

	// Packet pool: DRAM buffers and SRAM metadata records.
	NumBufs      int
	BufSize      uint32 // DRAM bytes per packet buffer
	BufHeadroom  uint32 // offset of the packet's first byte within a buffer
	DRAMBufBase  uint32
	MetaBase     uint32 // SRAM base of metadata records
	MetaRecBytes uint32 // per-packet metadata record size
	// Record layout: word0 = packet length, word1 = head_ptr, then the
	// application's bit-packed metadata fields.
	MetaAppOff uint32 // byte offset of app metadata within the record

	// Scratch rings: ring i occupies [RingBase(i), RingBase(i)+RingBytes).
	NumRings  int
	RingBase0 uint32
	RingBytes uint32 // per-ring control+storage footprint
	RingSlots int

	// Lock words (one scratch word per static critical section).
	LockBase uint32
	NumLocks int

	// Local Memory map (per ME, byte addresses into 2560-byte LM).
	SWCLineBase  uint32 // 16 lines x 32 bytes for the software cache
	LocalGlobal0 uint32 // compiler-generated per-ME globals
	StackBase    uint32 // per-thread stacks: thread t at StackBase + t*StackSize
	StackSize    uint32 // bytes per thread (48 words = 192 bytes, §5.4)
}

// InvalidPktID is returned by IRingGet when the ring is empty (buffer ids
// are small pool indices, so the sentinel is unambiguous).
const InvalidPktID = 0xffffffff

// Ring ids fixed by convention.
const (
	RingRx   = 0 // Rx engine -> first aggregate
	RingTx   = 1 // aggregates -> Tx engine
	RingFree = 2 // dropped packets -> buffer free list
	RingApp0 = 3 // first application channel ring
)

// MetaLenOff and MetaHeadOff are the record offsets of the packet length
// and head_ptr words.
const (
	MetaLenOff  = 0
	MetaHeadOff = 4
)

// BuildLayout assigns addresses for every global, ring, lock and the
// packet pool.
func BuildLayout(tp *types.Program, numLocks, numAppRings, numBufs int) *Layout {
	l := &Layout{
		GlobalAddr:  map[string]uint32{},
		NumBufs:     numBufs,
		BufSize:     256,
		BufHeadroom: 64,
		NumLocks:    numLocks,
	}
	// Globals, deterministic order.
	var names []string
	for name := range tp.Globals {
		names = append(names, name)
	}
	sortStrings(names)
	// Local Memory bytes [0, swcRegionBytes) hold the software cache's
	// 16 lines of 32 bytes; per-ME local globals (SWC counters, seen
	// words) are laid out after them — their addresses are absolute LM
	// byte offsets, so they must not alias the line region.
	const swcRegionBytes = 16 * 32
	var sram, scratch uint32
	local := uint32(swcRegionBytes)
	for _, name := range names {
		g := tp.Globals[name]
		size := uint32((g.Type.SizeBytes() + 3) &^ 3)
		switch g.Space {
		case types.SpaceScratch:
			l.GlobalAddr[name] = scratch
			scratch += size
		case types.SpaceLocal:
			l.GlobalAddr[name] = local
			local += size
		default:
			l.GlobalAddr[name] = sram
			sram += size
		}
	}
	l.SRAMGlobalBytes = sram
	l.ScratchGlobalBytes = scratch
	l.LocalGlobalBytes = local - swcRegionBytes

	// SRAM: globals first, then metadata records. The record size is
	// rounded to a power of two so record addresses are shift+add.
	l.MetaRecBytes = uint32(8 + tp.Metadata.Bytes)
	for p := uint32(8); ; p <<= 1 {
		if p >= l.MetaRecBytes {
			l.MetaRecBytes = p
			break
		}
	}
	l.MetaAppOff = 8
	l.MetaBase = (sram + 63) &^ 63
	// DRAM: packet buffers from 0.
	l.DRAMBufBase = 0
	// Scratch: globals, then locks, then rings.
	l.LockBase = (scratch + 63) &^ 63
	l.NumRings = RingApp0 + numAppRings
	l.RingSlots = 128
	l.RingBytes = uint32(8 + 4*l.RingSlots)
	l.RingBase0 = l.LockBase + uint32(4*numLocks)
	l.RingBase0 = (l.RingBase0 + 63) &^ 63

	// Local memory: software cache lines, local globals, stacks.
	l.SWCLineBase = 0
	l.LocalGlobal0 = swcRegionBytes // after 16 cache lines of 32 bytes
	l.StackBase = (local + 15) &^ 15
	l.StackSize = 192 // 48 words per thread (§5.4)
	return l
}

// RingBase returns the scratch byte address of ring i's control block.
func (l *Layout) RingBase(i int) uint32 { return l.RingBase0 + uint32(i)*l.RingBytes }

// BufAddr returns the DRAM byte address of packet buffer id's first
// headroom byte.
func (l *Layout) BufAddr(id uint32) uint32 { return l.DRAMBufBase + id*l.BufSize }

// MetaAddr returns the SRAM byte address of packet id's metadata record.
func (l *Layout) MetaAddr(id uint32) uint32 { return l.MetaBase + id*l.MetaRecBytes }

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
