package stackalloc

import "testing"

func TestFrameLocalThenSRAM(t *testing.T) {
	f := NewFrame(DefaultConfig())
	// 44 local slots available (48 words minus 4 reserved).
	for i := 0; i < 44; i++ {
		s := f.AllocSlot()
		loc := f.Slot(s)
		if !loc.Local {
			t.Fatalf("slot %d should be Local", s)
		}
		if loc.Offset != uint32(i*4) {
			t.Fatalf("slot %d offset %d, want %d", s, loc.Offset, i*4)
		}
	}
	s := f.AllocSlot()
	loc := f.Slot(s)
	if loc.Local {
		t.Fatal("slot 44 should overflow to SRAM")
	}
	if loc.Offset != 0 {
		t.Fatalf("first SRAM slot offset %d, want 0", loc.Offset)
	}
	if f.SRAMWords() != 1 {
		t.Fatalf("SRAMWords = %d, want 1", f.SRAMWords())
	}
}

func TestFrameBytes(t *testing.T) {
	f := NewFrame(DefaultConfig())
	if f.Bytes() != 16 {
		t.Errorf("empty frame = %d bytes, want 16 (reserved)", f.Bytes())
	}
	f.AllocSlot()
	if f.Bytes() != 192 {
		t.Errorf("frame = %d bytes, want full 192", f.Bytes())
	}
}

// chain builds a linear call graph a -> b -> c with the given frame words.
func chain(words ...int) ([]FuncFrame, []CallEdge) {
	var fns []FuncFrame
	var edges []CallEdge
	names := []string{"a", "b", "c", "d", "e", "f"}
	for i, w := range words {
		fns = append(fns, FuncFrame{Name: names[i], Words: w})
		if i > 0 {
			edges = append(edges, CallEdge{Caller: names[i-1], Callee: names[i]})
		}
	}
	return fns, edges
}

func TestCallGraphPacked(t *testing.T) {
	fns, edges := chain(3, 10, 6)
	res, err := CallGraphLayout(fns, edges, DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Packed layout: a at 0, b at 3, c at 13 (the paper's Figure 12 right
	// side).
	if got := res.Frames["a"].VirtualOff; got != 0 {
		t.Errorf("a at %d, want 0", got)
	}
	if got := res.Frames["b"].VirtualOff; got != 3 {
		t.Errorf("b at %d, want 3", got)
	}
	if got := res.Frames["c"].VirtualOff; got != 13 {
		t.Errorf("c at %d, want 13", got)
	}
	if res.LocalWordsUsed != 19 {
		t.Errorf("local words = %d, want 19", res.LocalWordsUsed)
	}
	if res.SRAMWords != 0 {
		t.Errorf("packed chain should fit Local Memory, SRAM = %d", res.SRAMWords)
	}
	// Physical SP stays 16-word aligned.
	if res.Frames["b"].PhysicalOff%16 != 0 {
		t.Errorf("physical offset %d not aligned", res.Frames["b"].PhysicalOff)
	}
}

func TestMinFrameSizeReproducesPaperProblem(t *testing.T) {
	// §5.4: the original 16-word minimum frame size pushed a 5-frame call
	// chain into SRAM; the packed layout keeps it local.
	fns, edges := chain(3, 10, 6, 4, 8)
	packed, err := CallGraphLayout(fns, edges, DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	padded, err := CallGraphLayout(fns, edges, DefaultConfig(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if packed.SRAMWords != 0 {
		t.Errorf("packed layout overflowed: %d SRAM words", packed.SRAMWords)
	}
	if padded.SRAMWords == 0 {
		t.Errorf("16-word minimum frames should overflow the 48-word budget")
	}
}

func TestDiamondCallGraph(t *testing.T) {
	// a calls b and c; both call d. d's frame must clear BOTH callers.
	fns := []FuncFrame{{"a", 4}, {"b", 8}, {"c", 2}, {"d", 3}}
	edges := []CallEdge{{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}}
	res, err := CallGraphLayout(fns, edges, DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	bEnd := res.Frames["b"].VirtualOff + 8
	cEnd := res.Frames["c"].VirtualOff + 2
	d := res.Frames["d"].VirtualOff
	if d < bEnd || d < cEnd {
		t.Errorf("d at %d collides with callers (b ends %d, c ends %d)", d, bEnd, cEnd)
	}
}

func TestRecursionRejected(t *testing.T) {
	fns := []FuncFrame{{"a", 4}, {"b", 4}}
	edges := []CallEdge{{"a", "b"}, {"b", "a"}}
	if _, err := CallGraphLayout(fns, edges, DefaultConfig(), 1); err == nil {
		t.Fatal("recursive call graph must be rejected")
	}
}

func TestUnknownEdgeRejected(t *testing.T) {
	fns := []FuncFrame{{"a", 4}}
	if _, err := CallGraphLayout(fns, []CallEdge{{"a", "ghost"}}, DefaultConfig(), 1); err == nil {
		t.Fatal("edge to unknown function must be rejected")
	}
}
