// Package stackalloc implements the stack layout optimization of §5.4:
// program stacks are assigned statically (Baker forbids recursion, so the
// call graph bounds every frame chain), packed into the 48 Local-Memory
// words each thread owns, and only overflow into SRAM — whose latency the
// paper shows is ruinous for the data path — when Local Memory is
// exhausted.
//
// Two pieces are provided:
//
//   - Frame: the flat spill-slot allocator the code generator uses for its
//     fully-inlined aggregate entries (inlining merges every frame, the
//     paper's preferred end state);
//
//   - CallGraphLayout: the general §5.4 algorithm with the physical/virtual
//     stack pointer split of Figure 12 — frames are packed at exact sizes
//     (the virtual SP) while the addressable base stays aligned for the
//     IXP's offset addressing (the physical SP), eliminating the original
//     16-word minimum frame size that pushed stacks into SRAM.
package stackalloc

import (
	"fmt"
	"sort"
)

// Config bounds the per-thread stack resources.
type Config struct {
	// LocalWords is the Local Memory word budget per thread (48 on the
	// IXP2400 per §5.4).
	LocalWords int
	// ReservedWords at the top of the local frame are kept for the
	// generic packet-access routine's save area.
	ReservedWords int
	// AlignWords is the physical-SP alignment granule for offset
	// addressing (16 words: $SP[i] requires an aligned base).
	AlignWords int
}

// DefaultConfig matches the IXP2400 numbers.
func DefaultConfig() Config {
	return Config{LocalWords: 48, ReservedWords: 4, AlignWords: 16}
}

// Loc is an assigned stack slot.
type Loc struct {
	Local  bool   // Local Memory when true, SRAM overflow otherwise
	Offset uint32 // byte offset from the level's per-thread base
}

// Frame is a flat spill-slot allocator for one (fully inlined) frame.
type Frame struct {
	cfg   Config
	slots int
}

// NewFrame returns an empty frame.
func NewFrame(cfg Config) *Frame { return &Frame{cfg: cfg} }

// AllocSlot reserves one word and returns its slot index.
func (f *Frame) AllocSlot() int {
	s := f.slots
	f.slots++
	return s
}

// Slot maps a slot index to its location: Local Memory first, SRAM after
// the local budget (minus the reserved save area) is exhausted.
func (f *Frame) Slot(i int) Loc {
	localSlots := f.cfg.LocalWords - f.cfg.ReservedWords
	if i < localSlots {
		return Loc{Local: true, Offset: uint32(i * 4)}
	}
	return Loc{Local: false, Offset: uint32((i - localSlots) * 4)}
}

// Bytes returns the local frame footprint (the full budget once any slot
// is used, since the reserved area sits at the top).
func (f *Frame) Bytes() int {
	if f.slots == 0 {
		return f.cfg.ReservedWords * 4
	}
	return f.cfg.LocalWords * 4
}

// SRAMWords reports how many slots overflowed to SRAM.
func (f *Frame) SRAMWords() int {
	localSlots := f.cfg.LocalWords - f.cfg.ReservedWords
	if f.slots <= localSlots {
		return 0
	}
	return f.slots - localSlots
}

// ---------------------------------------------------------------------------
// Call-graph frame layout (§5.4, Figure 12)

// FuncFrame describes one procedure's frame requirement.
type FuncFrame struct {
	Name  string
	Words int // exact frame size in words (locals + spills + outgoing)
}

// CallEdge is a static call-graph edge.
type CallEdge struct{ Caller, Callee string }

// Placement is the assignment for one function's frame.
type Placement struct {
	// VirtualOff is the packed word offset (virtual SP) of the frame.
	VirtualOff int
	// PhysicalOff is the aligned base (physical SP) the code uses with
	// offset addressing; slot i lives at PhysicalOff + (VirtualOff -
	// PhysicalOff) + i, computed at compile time.
	PhysicalOff int
	// Local reports whether the whole frame fits Local Memory.
	Local bool
}

// LayoutResult is the full call-graph stack assignment.
type LayoutResult struct {
	Frames map[string]Placement
	// LocalWordsUsed is the peak Local Memory stack usage.
	LocalWordsUsed int
	// SRAMWords is the peak SRAM overflow.
	SRAMWords int
}

// CallGraphLayout statically assigns every function's frame to the
// minimum offset that cannot collide with any live caller frame,
// preferring Local Memory for functions nearer the top of the call graph
// (dispatch calls PPFs most frequently, §5.4). minFrame forces a minimum
// frame granularity; pass 1 for the optimized packed layout or 16 to
// reproduce the paper's original aligned-frame scheme that wasted Local
// Memory.
func CallGraphLayout(funcs []FuncFrame, edges []CallEdge, cfg Config, minFrame int) (*LayoutResult, error) {
	if minFrame < 1 {
		minFrame = 1
	}
	byName := map[string]FuncFrame{}
	for _, f := range funcs {
		byName[f.Name] = f
	}
	callers := map[string][]string{}
	callees := map[string][]string{}
	for _, e := range edges {
		if _, ok := byName[e.Caller]; !ok {
			return nil, fmt.Errorf("stackalloc: unknown caller %q", e.Caller)
		}
		if _, ok := byName[e.Callee]; !ok {
			return nil, fmt.Errorf("stackalloc: unknown callee %q", e.Callee)
		}
		callers[e.Callee] = append(callers[e.Callee], e.Caller)
		callees[e.Caller] = append(callees[e.Caller], e.Callee)
	}
	// Depth = longest path from a root; recursion is rejected.
	depth := map[string]int{}
	state := map[string]int{}
	var dfs func(n string) error
	dfs = func(n string) error {
		switch state[n] {
		case 1:
			return fmt.Errorf("stackalloc: recursive call chain through %q", n)
		case 2:
			return nil
		}
		state[n] = 1
		d := 0
		for _, c := range callers[n] {
			if err := dfs(c); err != nil {
				return err
			}
			if depth[c]+1 > d {
				d = depth[c] + 1
			}
		}
		depth[n] = d
		state[n] = 2
		return nil
	}
	names := make([]string, 0, len(funcs))
	for _, f := range funcs {
		names = append(names, f.Name)
	}
	sort.Strings(names)
	for _, n := range names {
		if err := dfs(n); err != nil {
			return nil, err
		}
	}
	// Assign in depth order (roots first): each frame starts at the max
	// end of all its callers' frames (the §5.4 "minimum stack location
	// that will never collide with possibly live stack entries").
	sort.SliceStable(names, func(i, j int) bool {
		if depth[names[i]] != depth[names[j]] {
			return depth[names[i]] < depth[names[j]]
		}
		return names[i] < names[j]
	})
	res := &LayoutResult{Frames: map[string]Placement{}}
	end := map[string]int{}
	roundUp := func(x, g int) int { return (x + g - 1) / g * g }
	for _, n := range names {
		start := 0
		for _, c := range callers[n] {
			if end[c] > start {
				start = end[c]
			}
		}
		size := roundUp(byName[n].Words, minFrame)
		if size == 0 {
			size = minFrame
		}
		pl := Placement{
			VirtualOff:  start,
			PhysicalOff: start / cfg.AlignWords * cfg.AlignWords,
			Local:       start+size <= cfg.LocalWords-cfg.ReservedWords,
		}
		res.Frames[n] = pl
		end[n] = start + size
		if pl.Local {
			if end[n] > res.LocalWordsUsed {
				res.LocalWordsUsed = end[n]
			}
		} else {
			over := end[n] - (cfg.LocalWords - cfg.ReservedWords)
			if over > res.SRAMWords {
				res.SRAMWords = over
			}
		}
	}
	return res, nil
}
