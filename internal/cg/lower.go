package cg

import (
	"fmt"

	"shangrila/internal/baker/types"
	"shangrila/internal/ir"
	"shangrila/internal/opt/soar"
)

// Options selects which code-generation strategies are enabled; they
// mirror the paper's evaluation axis (§6.2).
type Options struct {
	// O2 inlines the packet-handling primitive bodies. When false, every
	// packet access pays the generic out-of-line routine overhead ("38 +
	// 5*size instructions", §5.3).
	O2 bool
	// SOAR lets the expansion consult the static offset/alignment
	// annotations. When false, every access computes offsets dynamically.
	SOAR bool
	// PHR removes packet-handling support code: head_ptr lives in
	// registers/constants instead of the SRAM metadata record, and
	// statically resolved encap/decap sites emit nothing.
	PHR bool
	// SWC enables lowering of the software-cache operations (the IR
	// transform is separate; without this flag cache ops degrade to plain
	// loads).
	SWC bool
}

// vreg allocation: lowering uses virtual registers (>= vregBase keeps them
// distinct from physical encodings during debugging).
type lowerer struct {
	opts   Options
	layout *Layout
	tp     *types.Program
	chans  map[string]soar.Input // SOAR channel facts (by channel name)

	code    []*Instr
	nvreg   int
	labels  map[string]int // label -> instruction index
	fixups  map[int]string // instruction index -> label
	handles map[ir.Reg]*handleInfo
	regmap  map[ir.Reg]PReg // IR reg -> virtual CGIR reg
	ringOf  map[string]int  // channel name -> ring id
	err     error
}

// handleInfo is CG's view of a packet handle: the buffer id register, the
// packet length register (carried in the ring descriptor), and the current
// header offset — either a compile-time constant (SOAR+PHR) or a register.
type handleInfo struct {
	pkt        PReg
	length     PReg
	headStatic int32 // valid when headReg == NoPReg
	headReg    PReg
	align      int
}

func (l *lowerer) newVReg() PReg {
	r := PReg(NumRegs + l.nvreg)
	l.nvreg++
	return r
}

func (l *lowerer) emit(in *Instr) *Instr {
	l.code = append(l.code, in)
	return in
}

func (l *lowerer) emitALU(op ALUOp, dst, a, b PReg) {
	l.emit(&Instr{Op: IALU, ALU: op, Dst: dst, SrcA: a, SrcB: b})
}

func (l *lowerer) emitALUImm(op ALUOp, dst, a PReg, imm uint32) {
	l.emit(&Instr{Op: IALUImm, ALU: op, Dst: dst, SrcA: a, Imm: imm})
}

func (l *lowerer) emitImmed(dst PReg, imm uint32) {
	l.emit(&Instr{Op: IImmed, Dst: dst, Imm: imm})
}

func (l *lowerer) emitBr(label string) {
	l.fixups[len(l.code)] = label
	l.emit(&Instr{Op: IBr})
}

func (l *lowerer) emitBcc(cond CondOp, a, b PReg, label string) {
	l.fixups[len(l.code)] = label
	l.emit(&Instr{Op: IBcc, Cond: cond, SrcA: a, SrcB: b})
}

func (l *lowerer) emitBccImm(cond CondOp, a PReg, imm uint32, label string) {
	l.fixups[len(l.code)] = label
	l.emit(&Instr{Op: IBccImm, Cond: cond, SrcA: a, Imm: imm})
}

func (l *lowerer) label(name string) {
	l.labels[name] = len(l.code)
}

func (l *lowerer) failf(format string, args ...any) {
	if l.err == nil {
		l.err = fmt.Errorf("cg: "+format, args...)
	}
}

func (l *lowerer) vregOf(r ir.Reg) PReg {
	if v, ok := l.regmap[r]; ok {
		return v
	}
	v := l.newVReg()
	l.regmap[r] = v
	return v
}

// handleOf returns (creating lazily) the handle info for an IR handle reg.
func (l *lowerer) handleOf(r ir.Reg) *handleInfo {
	h, ok := l.handles[r]
	if !ok {
		h = &handleInfo{pkt: l.newVReg(), length: l.newVReg(),
			headStatic: 0, headReg: NoPReg, align: 1}
		l.handles[r] = h
	}
	return h
}

// ---------------------------------------------------------------------------
// Packet access expansion

// genericOverhead models the out-of-line packet access routine used below
// -O2: register save/restore to the Local Memory stack plus the generic
// prologue arithmetic (the paper's "38 + 5*size instructions" path).
func (l *lowerer) genericOverhead() {
	if l.opts.O2 {
		return
	}
	// Save/restore 4 registers around the "call" and pay the generic
	// dispatch arithmetic. The save area is the reserved top 16 bytes of
	// the thread's Local Memory stack frame.
	tmp := l.newVReg()
	l.emitImmed(tmp, 0)
	l.emit(&Instr{Op: IMem, Level: MemLocal, Store: true, Addr: RegSP,
		AddrOff: 176, NWords: 4, Data: []PReg{tmp, tmp, tmp, tmp}, Class: ClassNone,
		Comment: "generic access routine: spill args"})
	for i := 0; i < 14; i++ {
		l.emitALUImm(AAdd, tmp, tmp, 1)
	}
	l.emit(&Instr{Op: IMem, Level: MemLocal, Store: false, Addr: RegSP,
		AddrOff: 176, NWords: 4, Data: []PReg{tmp, tmp, tmp, tmp}, Class: ClassNone,
		Comment: "generic access routine: restore"})
}

// headForAccess yields the head offset operand for one packet access:
// PHR keeps the head in a register or constant; without PHR the head_ptr
// is fetched from the packet's SRAM metadata record on every access (the
// "at least one SRAM access" of §5.3).
func (l *lowerer) headForAccess(h *handleInfo, in *ir.Instr) (reg PReg, static int32, align int) {
	static = ir.UnknownOff
	if l.opts.PHR {
		if l.opts.SOAR && in.StaticOff != ir.UnknownOff {
			return NoPReg, int32(l.layout.BufHeadroom) + in.StaticOff, 8
		}
		if h.headReg != NoPReg {
			return h.headReg, ir.UnknownOff, h.align
		}
		return NoPReg, h.headStatic, 8
	}
	// Load head_ptr from SRAM metadata. This support-code read remains
	// until PHR removes it (Table 1 attributes the memory saving to PHR,
	// the instruction saving to SOAR).
	maddr := l.metaAddr(h)
	head := l.newVReg()
	l.emit(&Instr{Op: IMem, Level: MemSRAM, Addr: maddr, AddrOff: MetaHeadOff,
		NWords: 1, Data: []PReg{head}, Class: ClassPacketMeta,
		Comment: "head_ptr read"})
	al := 1
	if l.opts.SOAR {
		if in.StaticOff != ir.UnknownOff {
			// Statically resolved: the access sequence uses the constant
			// offset; none of the dynamic offset/alignment arithmetic is
			// emitted (§5.3.2: "more than half of the 40+ instructions in
			// a packet data access can be removed").
			return NoPReg, int32(l.layout.BufHeadroom) + in.StaticOff, 8
		}
		if in.StaticAlign > 0 {
			al = in.StaticAlign
		}
	}
	return head, ir.UnknownOff, al
}

// metaAddr computes the SRAM address register of h's metadata record.
func (l *lowerer) metaAddr(h *handleInfo) PReg {
	addr := l.newVReg()
	// MetaRecBytes is a power of two by construction (rounded to 8).
	shift := uint32(0)
	for m := l.layout.MetaRecBytes; m > 1; m >>= 1 {
		shift++
	}
	l.emitALUImm(AShl, addr, h.pkt, shift)
	t := l.newVReg()
	l.emitALUImm(AAdd, t, addr, l.layout.MetaBase)
	return t
}

// dynamicOffsetArith charges the address arithmetic a dynamic or
// misaligned access needs: bounds masking and, for unknown alignment, the
// variable byte-rotation setup that realigns the burst (SOAR's savings
// are exactly these instructions).
func (l *lowerer) dynamicOffsetArith(aligned bool) {
	t := l.newVReg()
	l.emitImmed(t, 3)
	n := 12
	if aligned {
		n = 4
	}
	for i := 0; i < n; i++ {
		l.emitALUImm(AAdd, t, t, 1)
	}
}

// pktAccess expands one packet data access (field or raw) into address
// arithmetic + a DRAM burst + extraction/insertion.
func (l *lowerer) pktAccess(in *ir.Instr) {
	h := l.handleOf(in.Args[0])
	headReg, headStatic, align := l.headForAccess(h, in)

	var lo, hi int
	if in.Field != nil {
		lo, hi = in.Field.ByteSpan()
	} else {
		lo, hi = int(in.Off), int(in.Off)+in.Width
	}
	wlo := lo &^ 3
	whi := (hi + 3) &^ 3
	nwords := (whi - wlo) / 4

	l.genericOverhead()

	// Address computation. Head offsets are buffer-relative (the packet
	// start sits at BufHeadroom), so no further base adjustment is needed.
	addr := l.newVReg()
	l.emitALUImm(AShl, addr, h.pkt, 8)
	constOff := uint32(wlo)
	if headStatic != ir.UnknownOff {
		constOff += uint32(headStatic)
	} else if headReg != NoPReg {
		t := l.newVReg()
		l.emitALU(AAdd, t, addr, headReg)
		addr = t
	}
	aligned := align >= 4
	if headStatic == ir.UnknownOff {
		l.dynamicOffsetArith(aligned)
	}

	if in.Op == ir.OpPktLoad {
		if headStatic == ir.UnknownOff && !aligned {
			nwords++ // misaligned burst touches one extra word
		}
		data := make([]PReg, nwords)
		if in.Field != nil {
			for i := range data {
				data[i] = l.newVReg()
			}
		} else {
			for i := range in.Dst {
				data[i] = l.vregOf(in.Dst[i])
			}
			for i := len(in.Dst); i < nwords; i++ {
				data[i] = l.newVReg()
			}
		}
		l.emit(&Instr{Op: IMem, Level: MemDRAM, Addr: addr, AddrOff: constOff,
			NWords: nwords, Data: data, Class: ClassPacketData})
		if in.Field != nil {
			l.extractField(in, data, wlo)
		}
		return
	}

	// Store path.
	if in.Field != nil {
		flo, fhi := in.Field.ByteSpan()
		covers := in.Field.BitOff%32 == 0 && in.Field.Bits%32 == 0
		_ = flo
		_ = fhi
		data := make([]PReg, nwords)
		for i := range data {
			data[i] = l.newVReg()
		}
		if !covers {
			// Read-modify-write.
			l.emit(&Instr{Op: IMem, Level: MemDRAM, Addr: addr, AddrOff: constOff,
				NWords: nwords, Data: data, Class: ClassPacketData})
		}
		l.insertField(in, data, wlo)
		l.emit(&Instr{Op: IMem, Level: MemDRAM, Store: true, Addr: addr,
			AddrOff: constOff, NWords: nwords, Data: data, Class: ClassPacketData})
		return
	}
	data := make([]PReg, 0, nwords)
	for _, a := range in.Args[1:] {
		data = append(data, l.vregOf(a))
	}
	for len(data) < nwords {
		data = append(data, data[len(data)-1])
	}
	l.emit(&Instr{Op: IMem, Level: MemDRAM, Store: true, Addr: addr,
		AddrOff: constOff, NWords: nwords, Data: data, Class: ClassPacketData})
}

// extractField shifts/masks the loaded words into the destination.
func (l *lowerer) extractField(in *ir.Instr, data []PReg, wlo int) {
	l.extractFieldInto(l.vregOf(in.Dst[0]), in.Field, data, wlo)
}

// insertField merges the stored value into the RMW words.
func (l *lowerer) insertField(in *ir.Instr, data []PReg, wlo int) {
	fld := in.Field
	val := l.vregOf(in.Args[1])
	relBit := fld.BitOff - wlo*8
	wi := relBit / 32
	bitInWord := relBit % 32
	bits := fld.Bits
	place := func(wi, shift, width int, src PReg) {
		mask := uint32(0xffffffff)
		if width < 32 {
			mask = 1<<uint(width) - 1
		}
		vm := l.newVReg()
		l.emitALUImm(AAnd, vm, src, mask)
		vs := vm
		if shift > 0 {
			vs = l.newVReg()
			l.emitALUImm(AShl, vs, vm, uint32(shift))
		}
		cl := l.newVReg()
		l.emitALUImm(AAnd, cl, data[wi], ^(mask << uint(shift)))
		l.emitALU(AOr, data[wi], cl, vs)
	}
	if bitInWord+bits <= 32 {
		place(wi, 32-bitInWord-bits, bits, val)
		return
	}
	hiBits := 32 - bitInWord
	loBits := bits - hiBits
	hv := l.newVReg()
	l.emitALUImm(AShrU, hv, val, uint32(loBits))
	place(wi, 0, hiBits, hv)
	place(wi+1, 32-loBits, loBits, val)
}

// metaAccess expands a metadata access into SRAM traffic against the
// packet's metadata record.
func (l *lowerer) metaAccess(in *ir.Instr) {
	h := l.handleOf(in.Args[0])
	maddr := l.metaAddr(h)
	var lo, hi int
	if in.Field != nil {
		lo = in.Field.BitOff / 8
		hi = (in.Field.BitOff + in.Field.Bits + 7) / 8
	} else {
		lo, hi = int(in.Off), int(in.Off)+in.Width
	}
	wlo := lo &^ 3
	whi := (hi + 3) &^ 3
	nwords := (whi - wlo) / 4
	off := l.layout.MetaAppOff + uint32(wlo)

	if in.Op == ir.OpMetaLoad {
		data := make([]PReg, nwords)
		if in.Field != nil {
			for i := range data {
				data[i] = l.newVReg()
			}
		} else {
			copy(data, func() []PReg {
				out := make([]PReg, 0, nwords)
				for _, d := range in.Dst {
					out = append(out, l.vregOf(d))
				}
				for len(out) < nwords {
					out = append(out, l.newVReg())
				}
				return out
			}())
		}
		l.emit(&Instr{Op: IMem, Level: MemSRAM, Addr: maddr, AddrOff: off,
			NWords: nwords, Data: data, Class: ClassPacketMeta})
		if in.Field != nil {
			l.extractField(in, data, wlo)
		}
		return
	}
	// Store.
	if in.Field != nil {
		data := make([]PReg, nwords)
		for i := range data {
			data[i] = l.newVReg()
		}
		l.emit(&Instr{Op: IMem, Level: MemSRAM, Addr: maddr, AddrOff: off,
			NWords: nwords, Data: data, Class: ClassPacketMeta})
		l.insertField(in, data, wlo)
		l.emit(&Instr{Op: IMem, Level: MemSRAM, Store: true, Addr: maddr,
			AddrOff: off, NWords: nwords, Data: data, Class: ClassPacketMeta})
		return
	}
	data := make([]PReg, 0, nwords)
	for _, a := range in.Args[1:] {
		data = append(data, l.vregOf(a))
	}
	for len(data) < nwords {
		data = append(data, data[len(data)-1])
	}
	l.emit(&Instr{Op: IMem, Level: MemSRAM, Store: true, Addr: maddr,
		AddrOff: off, NWords: nwords, Data: data, Class: ClassPacketMeta})
}
