package cg

import (
	"fmt"
	"sort"

	"shangrila/internal/aggregate"
	"shangrila/internal/analysis"
	"shangrila/internal/baker/ast"
	"shangrila/internal/baker/types"
	"shangrila/internal/ir"
	"shangrila/internal/opt/soar"
)

// Compiled is the code generator's output for one ME aggregate: a single
// CGIR program containing the dispatch loop and every entry body.
type Compiled struct {
	Agg     *aggregate.Aggregate
	Program *Program
	// InputRings lists the rings the dispatch loop polls (RingRx for the
	// rx entry, one per external/loopback input channel otherwise).
	InputRings []int
}

// Image is the full compilation result the runtime loads.
type Image struct {
	Types  *types.Program
	Layout *Layout
	// ME aggregates with compiled code; XScale aggregates keep IR.
	MECode []*Compiled
	XScale []*aggregate.Merged
	Plan   *aggregate.Plan
	// RingOf maps qualified channel names to ring ids (external and
	// loopback channels only).
	RingOf map[string]int
	// ChanFacts carries the SOAR channel facts used at boundaries.
	ChanFacts map[string]soar.Input
	Opts      Options
}

// CodeStoreLimit is the ME instruction budget (§3.1).
const CodeStoreLimit = 4096

// Compile lowers every ME aggregate of the plan into CGIR.
func Compile(prog *ir.Program, plan *aggregate.Plan, merged []*aggregate.Merged,
	classes map[*types.Channel]aggregate.ChannelClass, facts *soar.Stats, opts Options) (*Image, error) {

	// Ring assignment: every external or loopback channel gets a ring.
	ringOf := map[string]int{}
	next := RingApp0
	for _, ch := range prog.Types.ChanByID {
		switch classes[ch] {
		case aggregate.ChanExternal, aggregate.ChanLoopback:
			if ch.Consumer == "tx" {
				ringOf[ch.Name] = RingTx
			} else {
				ringOf[ch.Name] = next
				next++
			}
		}
	}
	layout := BuildLayout(prog.Types, prog.NumLocks, next-RingApp0, 512)

	img := &Image{
		Types:  prog.Types,
		Layout: layout,
		Plan:   plan,
		RingOf: ringOf,
		Opts:   opts,
	}
	if facts != nil {
		img.ChanFacts = facts.ChanInputs
	} else {
		img.ChanFacts = map[string]soar.Input{}
	}
	for _, m := range merged {
		if m.Agg.Target != aggregate.TargetME {
			img.XScale = append(img.XScale, m)
			continue
		}
		c, err := compileAggregate(prog, m, layout, ringOf, img.ChanFacts, classes, opts)
		if err != nil {
			return nil, err
		}
		img.MECode = append(img.MECode, c)
	}
	return img, nil
}

// compileAggregate emits the dispatch loop plus every entry body as one
// program, then register-allocates it.
func compileAggregate(prog *ir.Program, m *aggregate.Merged, layout *Layout,
	ringOf map[string]int, chanFacts map[string]soar.Input,
	classes map[*types.Channel]aggregate.ChannelClass, opts Options) (*Compiled, error) {

	l := &lowerer{
		opts:   opts,
		layout: layout,
		tp:     prog.Types,
		chans:  chanFacts,
		labels: map[string]int{},
		fixups: map[int]string{},
		ringOf: ringOf,
	}
	c := &Compiled{Agg: m.Agg}

	// Entry polling order matters for liveness: loopback channels (an
	// aggregate feeding itself, e.g. an MPLS label-stack pop) must drain
	// with priority over fresh rx work, or every thread ends up holding a
	// new packet while spinning on the full loopback ring. Order:
	// loopback first, then external channels, rx last; the dispatch loop
	// rescans from the top after each packet.
	rank := func(e *aggregate.Entry) int {
		if e.In == nil {
			return 2 // rx
		}
		if classes[e.In] == aggregate.ChanLoopback {
			return 0
		}
		return 1
	}
	entries := append([]*aggregate.Entry(nil), m.Entries...)
	sort.Slice(entries, func(i, j int) bool {
		ri, rj := rank(entries[i]), rank(entries[j])
		if ri != rj {
			return ri < rj
		}
		ii, ij := -1, -1
		if entries[i].In != nil {
			ii = entries[i].In.ID
		}
		if entries[j].In != nil {
			ij = entries[j].In.ID
		}
		return ii < ij
	})

	l.label("dispatch")
	for ei, e := range entries {
		ring := RingRx
		var fact soar.Input
		fact = soar.Input{Known: true, Off: 0, Align: 8}
		if e.In != nil {
			ring = ringOf[e.In.Name]
			if f, ok := chanFacts[e.In.Name]; ok {
				fact = f
			} else {
				fact = soar.Input{}
			}
		}
		c.InputRings = append(c.InputRings, ring)
		nextLabel := fmt.Sprintf("entry%d_next", ei)
		// Poll this input: descriptor pair (pktID, head<<16|end).
		v0 := l.newVReg()
		v1 := l.newVReg()
		l.emit(&Instr{Op: IRingGet, Ring: ring, Dst: v0, Dst2: v1,
			Class: ClassPacketRing, Comment: "poll " + labelName(e)})
		l.emitBccImm(CEq, v0, InvalidPktID, nextLabel)

		if err := l.lowerEntry(prog, e, v0, v1, fact); err != nil {
			return nil, err
		}
		l.emitBr("dispatch")
		l.label(nextLabel)
	}
	// Nothing available on any input: yield and retry.
	l.emit(&Instr{Op: ICtxArb})
	l.emitBr("dispatch")

	if l.err != nil {
		return nil, l.err
	}
	// Patch branch targets.
	for idx, lab := range l.fixups {
		t, ok := l.labels[lab]
		if !ok {
			return nil, fmt.Errorf("cg: unresolved label %q", lab)
		}
		l.code[idx].Target = t
	}
	p := &Program{Name: m.Agg.PPFs[0], Code: l.code}
	if err := Allocate(p, l.nvreg); err != nil {
		return nil, err
	}
	c.Program = p
	return c, nil
}

func containsBlock(list []*ir.Block, b *ir.Block) bool {
	for _, x := range list {
		if x == b {
			return true
		}
	}
	return false
}

func labelName(e *aggregate.Entry) string {
	if e.In == nil {
		return "rx"
	}
	return e.In.Name
}

// lowerEntry binds the entry function's handle parameter to the ring
// descriptor and lowers the body.
func (l *lowerer) lowerEntry(prog *ir.Program, e *aggregate.Entry, v0, v1 PReg, fact soar.Input) error {
	fn := e.Func
	l.handles = map[ir.Reg]*handleInfo{}
	l.regmap = map[ir.Reg]PReg{}

	h := &handleInfo{pkt: v0, length: l.newVReg(), headReg: NoPReg, align: 8}
	// Descriptor word1 = head<<16 | end; both are buffer-relative byte
	// offsets (the packet's first byte starts at BufHeadroom, so front
	// growth from packet_encap never goes negative).
	l.emitALUImm(AAnd, h.length, v1, 0xffff)
	if fact.Known {
		h.headStatic = int32(l.layout.BufHeadroom) + fact.Off
	} else {
		h.headReg = l.newVReg()
		l.emitALUImm(AShrU, h.headReg, v1, 16)
		h.align = fact.Align
		if h.align == 0 {
			h.align = 1
		}
	}
	if len(fn.Params) != 1 {
		return fmt.Errorf("cg: entry %s must take one handle", fn.Name)
	}
	l.handles[fn.Params[0]] = h

	return l.lowerBody(prog, fn)
}

// lowerBody emits CGIR for the function CFG. Blocks are laid out in their
// slice order; OpRet becomes a branch to the end label.
func (l *lowerer) lowerBody(prog *ir.Program, fn *ir.Func) error {
	done := fmt.Sprintf("%s_done_%d", fn.Name, len(l.code))
	blockLabel := func(b *ir.Block) string {
		return fmt.Sprintf("%s_b%d_%s", fn.Name, b.ID, done)
	}
	// Lay blocks out in reverse postorder: dominators precede dominated
	// blocks, so values defined along the way (e.g. the CAM entry of a
	// software-cache lookup consumed by its fill) are lowered first.
	blocks := analysis.ReversePostorder(fn.Entry)
	for _, b := range fn.Blocks {
		if !containsBlock(blocks, b) {
			blocks = append(blocks, b)
		}
	}
	for _, b := range blocks {
		l.label(blockLabel(b))
		for _, in := range b.Instrs {
			if err := l.lowerInstr(prog, fn, in, blockLabel, done); err != nil {
				return err
			}
		}
	}
	l.label(done)
	return l.err
}

func (l *lowerer) lowerInstr(prog *ir.Program, fn *ir.Func, in *ir.Instr,
	blockLabel func(*ir.Block) string, done string) error {

	isHandle := func(r ir.Reg) bool {
		return int(r) < len(fn.RegClasses) && fn.RegClasses[r] == ir.ClassHandle
	}
	switch in.Op {
	case ir.OpConst:
		l.emitImmed(l.vregOf(in.Dst[0]), uint32(in.Imm))
	case ir.OpMov:
		if isHandle(in.Dst[0]) {
			src := l.handleOf(in.Args[0])
			cp := *src
			l.handles[in.Dst[0]] = &cp
			return nil
		}
		l.emitALU(AMov, l.vregOf(in.Dst[0]), l.vregOf(in.Args[0]), NoPReg)
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDivU, ir.OpRemU, ir.OpAnd,
		ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShrU, ir.OpShrS:
		l.emitALU(aluFor(in.Op), l.vregOf(in.Dst[0]),
			l.vregOf(in.Args[0]), l.vregOf(in.Args[1]))
	case ir.OpNot:
		l.emitALU(ANot, l.vregOf(in.Dst[0]), l.vregOf(in.Args[0]), NoPReg)
	case ir.OpNeg:
		l.emitALU(ANeg, l.vregOf(in.Dst[0]), l.vregOf(in.Args[0]), NoPReg)
	case ir.OpEq, ir.OpNe, ir.OpLtU, ir.OpLeU, ir.OpLtS, ir.OpLeS:
		// Materialize the 0/1; handle comparisons compare buffer ids.
		a, b := in.Args[0], in.Args[1]
		var ra, rb PReg
		if isHandle(a) {
			ra, rb = l.handleOf(a).pkt, l.handleOf(b).pkt
		} else {
			ra, rb = l.vregOf(a), l.vregOf(b)
		}
		dst := l.vregOf(in.Dst[0])
		tLab := fmt.Sprintf("cmp_t_%d", len(l.code))
		eLab := fmt.Sprintf("cmp_e_%d", len(l.code))
		l.emitBcc(condFor(in.Op), ra, rb, tLab)
		l.emitImmed(dst, 0)
		l.emitBr(eLab)
		l.label(tLab)
		l.emitImmed(dst, 1)
		l.label(eLab)
	case ir.OpBr:
		l.emitBr(blockLabel(in.Blocks[0]))
	case ir.OpCondBr:
		l.emitBccImm(CNe, l.vregOf(in.Args[0]), 0, blockLabel(in.Blocks[0]))
		l.emitBr(blockLabel(in.Blocks[1]))
	case ir.OpRet:
		l.emitBr(done)
	case ir.OpCall:
		return fmt.Errorf("cg: %s: residual call to %q (ME code must be fully inlined)", fn.Name, in.Callee)
	case ir.OpLoad, ir.OpStore:
		l.globalAccess(in)
	case ir.OpPktLoad, ir.OpPktStore:
		l.pktAccess(in)
	case ir.OpMetaLoad, ir.OpMetaStore:
		l.metaAccess(in)
	case ir.OpDecap:
		l.lowerDecap(in)
	case ir.OpEncap:
		l.lowerEncap(in)
	case ir.OpPktCopy:
		l.lowerPktCopy(in)
	case ir.OpPktCreate:
		l.lowerPktCreate(in)
	case ir.OpPktDrop:
		h := l.handleOf(in.Args[0])
		z := l.newVReg()
		l.emitImmed(z, 0)
		okd := l.newVReg()
		l.emit(&Instr{Op: IRingPut, Ring: RingFree, SrcA: h.pkt, SrcB: z,
			Dst: okd, Class: ClassPacketRing, Comment: "drop: free buffer"})
	case ir.OpAddTail, ir.OpRemoveTail:
		h := l.handleOf(in.Args[0])
		n := l.vregOf(in.Args[1])
		op := AAdd
		if in.Op == ir.OpRemoveTail {
			op = ASub
		}
		l.emitALU(op, h.length, h.length, n)
		// Persist the new length for Tx/other aggregates.
		maddr := l.metaAddr(h)
		l.emit(&Instr{Op: IMem, Level: MemSRAM, Store: true, Addr: maddr,
			AddrOff: MetaLenOff, NWords: 1, Data: []PReg{h.length},
			Class: ClassPacketMeta, Comment: "length update"})
	case ir.OpPktLength:
		h := l.handleOf(in.Args[0])
		l.emitALUImm(ASub, l.vregOf(in.Dst[0]), h.length, l.layout.BufHeadroom)
	case ir.OpChanPut:
		l.lowerChanPut(in)
	case ir.OpLockAcquire:
		l.lowerLock(in, true)
	case ir.OpLockRelease:
		l.lowerLock(in, false)
	case ir.OpCacheLookup:
		l.lowerCacheLookup(in)
	case ir.OpCacheFill:
		l.lowerCacheFill(in)
	case ir.OpCacheFlush:
		l.emit(&Instr{Op: ICAMClear, Comment: "swc flush " + in.Global.Name})
	default:
		return fmt.Errorf("cg: unhandled IR op %s", in.Op)
	}
	return nil
}

func aluFor(op ir.Op) ALUOp {
	switch op {
	case ir.OpAdd:
		return AAdd
	case ir.OpSub:
		return ASub
	case ir.OpMul:
		return AMul
	case ir.OpDivU:
		return ADivU
	case ir.OpRemU:
		return ARemU
	case ir.OpAnd:
		return AAnd
	case ir.OpOr:
		return AOr
	case ir.OpXor:
		return AXor
	case ir.OpShl:
		return AShl
	case ir.OpShrU:
		return AShrU
	case ir.OpShrS:
		return AShrS
	}
	return AMov
}

func condFor(op ir.Op) CondOp {
	switch op {
	case ir.OpEq:
		return CEq
	case ir.OpNe:
		return CNe
	case ir.OpLtU:
		return CLtU
	case ir.OpLeU:
		return CLeU
	case ir.OpLtS:
		return CLtS
	case ir.OpLeS:
		return CLeS
	}
	return CEq
}

// globalAccess lowers OpLoad/OpStore against the global's assigned level.
func (l *lowerer) globalAccess(in *ir.Instr) {
	g := in.Global
	base, ok := l.layout.GlobalAddr[g.Name]
	if !ok {
		l.failf("no layout address for global %s", g.Name)
		return
	}
	level := MemSRAM
	switch g.Space {
	case types.SpaceScratch:
		level = MemScratch
	case types.SpaceLocal:
		level = MemLocal
	}
	class := ClassAppData
	if g.Synthetic && g.Space == types.SpaceLocal {
		class = ClassNone
	}
	addr := NoPReg
	off := base + uint32(in.Off)
	if len(in.Args) > 0 && in.Args[0] != ir.NoReg {
		addr = l.vregOf(in.Args[0])
	}
	if in.Op == ir.OpLoad {
		data := make([]PReg, len(in.Dst))
		for i, d := range in.Dst {
			data[i] = l.vregOf(d)
		}
		l.emit(&Instr{Op: IMem, Level: level, Addr: addr, AddrOff: off,
			NWords: len(data), Data: data, Class: class, Comment: g.Name})
		return
	}
	data := make([]PReg, 0, len(in.Args)-1)
	for _, a := range in.Args[1:] {
		data = append(data, l.vregOf(a))
	}
	l.emit(&Instr{Op: IMem, Level: level, Store: true, Addr: addr, AddrOff: off,
		NWords: len(data), Data: data, Class: class, Comment: g.Name})
}

// lowerDecap moves the handle's head past the decapped header. Without
// PHR the head_ptr lives in SRAM metadata and pays a read-modify-write;
// with PHR it stays in a register or constant (free when SOAR resolved
// it). A dynamic demux (IPv4's hlen<<2) additionally reads the header
// word holding the demux fields.
func (l *lowerer) lowerDecap(in *ir.Instr) {
	src := l.handleOf(in.Args[0])
	from := l.tp.ProtoByID[in.Imm]
	nh := &handleInfo{pkt: src.pkt, length: src.length,
		headStatic: src.headStatic, headReg: src.headReg, align: src.align}

	var sizeReg PReg = NoPReg
	staticSize := int32(from.FixedSize)
	if from.FixedSize < 0 {
		sizeReg = l.compileDemux(src, from, in)
	}

	if l.opts.PHR {
		switch {
		case in.StaticOff != ir.UnknownOff && l.opts.SOAR && from.FixedSize >= 0:
			nh.headStatic = int32(l.layout.BufHeadroom) + in.StaticOff + staticSize
			nh.headReg = NoPReg
		case sizeReg == NoPReg && nh.headReg == NoPReg:
			nh.headStatic += staticSize
		default:
			cur := nh.headReg
			if cur == NoPReg {
				cur = l.newVReg()
				l.emitImmed(cur, uint32(nh.headStatic))
			}
			out := l.newVReg()
			if sizeReg == NoPReg {
				l.emitALUImm(AAdd, out, cur, uint32(staticSize))
			} else {
				l.emitALU(AAdd, out, cur, sizeReg)
			}
			nh.headReg = out
			nh.align = 1
			if sizeReg == NoPReg {
				nh.align = src.align
			}
		}
		l.handles[in.Dst[0]] = nh
		return
	}
	// PHR off: head_ptr RMW in SRAM metadata.
	maddr := l.metaAddr(src)
	cur := l.newVReg()
	l.emit(&Instr{Op: IMem, Level: MemSRAM, Addr: maddr, AddrOff: MetaHeadOff,
		NWords: 1, Data: []PReg{cur}, Class: ClassPacketMeta, Comment: "head_ptr RMW read"})
	out := l.newVReg()
	if sizeReg == NoPReg {
		l.emitALUImm(AAdd, out, cur, uint32(staticSize))
	} else {
		l.emitALU(AAdd, out, cur, sizeReg)
	}
	l.emit(&Instr{Op: IMem, Level: MemSRAM, Store: true, Addr: maddr,
		AddrOff: MetaHeadOff, NWords: 1, Data: []PReg{out},
		Class: ClassPacketMeta, Comment: "head_ptr RMW write"})
	nh.headReg = out
	nh.align = 1
	l.handles[in.Dst[0]] = nh
}

// lowerEncap mirrors lowerDecap for packet_encap (head moves back by the
// outer protocol's fixed size; front growth is handled by the simulator's
// buffer headroom, mirroring packet.Packet.Encap).
func (l *lowerer) lowerEncap(in *ir.Instr) {
	src := l.handleOf(in.Args[0])
	size := in.Proto.FixedSize
	if size < 0 {
		size = in.Proto.HeaderMin
	}
	nh := &handleInfo{pkt: src.pkt, length: src.length,
		headStatic: src.headStatic, headReg: src.headReg, align: src.align}
	if l.opts.PHR {
		if in.StaticOff != ir.UnknownOff && l.opts.SOAR {
			off := in.StaticOff - int32(size)
			nh.headStatic = int32(l.layout.BufHeadroom) + off
			nh.headReg = NoPReg
		} else if nh.headReg == NoPReg {
			nh.headStatic -= int32(size)
		} else {
			out := l.newVReg()
			l.emitALUImm(ASub, out, nh.headReg, uint32(size))
			nh.headReg = out
		}
		l.handles[in.Dst[0]] = nh
		return
	}
	maddr := l.metaAddr(src)
	cur := l.newVReg()
	l.emit(&Instr{Op: IMem, Level: MemSRAM, Addr: maddr, AddrOff: MetaHeadOff,
		NWords: 1, Data: []PReg{cur}, Class: ClassPacketMeta, Comment: "head_ptr RMW read"})
	out := l.newVReg()
	l.emitALUImm(ASub, out, cur, uint32(size))
	l.emit(&Instr{Op: IMem, Level: MemSRAM, Store: true, Addr: maddr,
		AddrOff: MetaHeadOff, NWords: 1, Data: []PReg{out},
		Class: ClassPacketMeta, Comment: "head_ptr RMW write"})
	nh.headReg = out
	nh.align = 1
	l.handles[in.Dst[0]] = nh
}

// lowerChanPut emits the descriptor hand-off: two ring words (pktID,
// head<<16|len).
func (l *lowerer) lowerChanPut(in *ir.Instr) {
	h := l.handleOf(in.Args[0])
	ring, ok := l.ringOf[in.Chan.Name]
	if !ok {
		l.failf("chanput to internal channel %s survived merging", in.Chan.Name)
		return
	}
	var headVal PReg
	if h.headReg != NoPReg {
		headVal = h.headReg
	} else {
		headVal = l.newVReg()
		l.emitImmed(headVal, uint32(h.headStatic))
	}
	desc := l.newVReg()
	l.emitALUImm(AShl, desc, headVal, 16)
	d2 := l.newVReg()
	l.emitALU(AOr, d2, desc, h.length)
	okr := l.newVReg()
	lab := fmt.Sprintf("put_retry_%d", len(l.code))
	l.label(lab)
	l.emit(&Instr{Op: IRingPut, Ring: ring, SrcA: h.pkt, SrcB: d2, Dst: okr,
		Class: ClassPacketRing, Comment: "chanput " + in.Chan.Name})
	l.emitBccImm(CEq, okr, 0, lab) // downstream full: spin (backpressure)
}

// lowerLock implements critical sections with a scratch test-and-set spin
// loop.
func (l *lowerer) lowerLock(in *ir.Instr, acquire bool) {
	addr := l.layout.LockBase + uint32(in.Imm)*4
	if acquire {
		lab := fmt.Sprintf("lock_retry_%d", len(l.code))
		l.label(lab)
		old := l.newVReg()
		l.emit(&Instr{Op: IMem, Level: MemScratch, Addr: NoPReg, AddrOff: addr,
			NWords: 1, Data: []PReg{old}, Atomic: true, Class: ClassAppData,
			Comment: fmt.Sprintf("lock %d test-and-set", in.Imm)})
		l.emitBccImm(CNe, old, 0, lab)
		return
	}
	z := l.newVReg()
	l.emitImmed(z, 0)
	l.emit(&Instr{Op: IMem, Level: MemScratch, Store: true, Addr: NoPReg,
		AddrOff: addr, NWords: 1, Data: []PReg{z}, Class: ClassAppData,
		Comment: fmt.Sprintf("lock %d release", in.Imm)})
}

// lowerCacheLookup: CAM probe + Local Memory line read. The matched (or
// LRU victim) entry lands in the IR-visible Dst[1] register so the
// miss path's CacheFill tags and fills the same entry — several lookup
// sites may cache the same global, so the entry cannot be resolved per
// global name.
func (l *lowerer) lowerCacheLookup(in *ir.Instr) {
	base := l.layout.GlobalAddr[in.Global.Name]
	key := l.newVReg()
	if len(in.Args) > 0 && in.Args[0] != ir.NoReg {
		l.emitALUImm(AAdd, key, l.vregOf(in.Args[0]), base+uint32(in.Off))
	} else {
		l.emitImmed(key, base+uint32(in.Off))
	}
	hit := l.vregOf(in.Dst[0])
	entry := l.vregOf(in.Dst[1])
	l.emit(&Instr{Op: ICAMLookup, Dst: hit, Dst2: entry, SrcA: key,
		Comment: "swc lookup " + in.Global.Name})
	// Line address in Local Memory: SWCLineBase + entry*32.
	la := l.newVReg()
	l.emitALUImm(AShl, la, entry, 5)
	data := make([]PReg, len(in.Dst)-2)
	for i := range data {
		data[i] = l.vregOf(in.Dst[i+2])
	}
	if len(data) > 0 {
		l.emit(&Instr{Op: IMem, Level: MemLocal, Addr: la,
			AddrOff: l.layout.SWCLineBase, NWords: len(data), Data: data,
			Class: ClassNone, Comment: "swc line read"})
	}
}

// lowerCacheFill: CAM tag write + Local Memory line write at the entry
// its own lookup returned (Args[0]); Args[1] is the optional index
// register and Args[2:] the line words.
func (l *lowerer) lowerCacheFill(in *ir.Instr) {
	entry := l.vregOf(in.Args[0])
	base := l.layout.GlobalAddr[in.Global.Name]
	key := l.newVReg()
	if in.Args[1] != ir.NoReg {
		l.emitALUImm(AAdd, key, l.vregOf(in.Args[1]), base+uint32(in.Off))
	} else {
		l.emitImmed(key, base+uint32(in.Off))
	}
	l.emit(&Instr{Op: ICAMWrite, SrcA: entry, SrcB: key,
		Comment: "swc tag " + in.Global.Name})
	la := l.newVReg()
	l.emitALUImm(AShl, la, entry, 5)
	data := make([]PReg, 0, len(in.Args)-2)
	for _, a := range in.Args[2:] {
		data = append(data, l.vregOf(a))
	}
	if len(data) > 0 {
		l.emit(&Instr{Op: IMem, Level: MemLocal, Store: true, Addr: la,
			AddrOff: l.layout.SWCLineBase, NWords: len(data), Data: data,
			Class: ClassNone, Comment: "swc line write"})
	}
}

// lowerPktCopy allocates a fresh buffer and copies data + metadata.
func (l *lowerer) lowerPktCopy(in *ir.Instr) {
	src := l.handleOf(in.Args[0])
	nid := l.newVReg()
	junk := l.newVReg()
	l.emit(&Instr{Op: IRingGet, Ring: RingFree, Dst: nid, Dst2: junk,
		Class: ClassPacketRing, Comment: "alloc buffer (packet_copy)"})
	// Copy loop: 64 bytes per iteration, len/64+1 iterations.
	sAddr := l.newVReg()
	l.emitALUImm(AShl, sAddr, src.pkt, 8)
	dAddr := l.newVReg()
	l.emitALUImm(AShl, dAddr, nid, 8)
	cnt := l.newVReg()
	l.emitALUImm(AShrU, cnt, src.length, 6)
	l.emitALUImm(AAdd, cnt, cnt, 1)
	lab := fmt.Sprintf("copy_loop_%d", len(l.code))
	endLab := fmt.Sprintf("copy_done_%d", len(l.code))
	l.label(lab)
	l.emitBccImm(CEq, cnt, 0, endLab)
	buf := make([]PReg, 16)
	for i := range buf {
		buf[i] = l.newVReg()
	}
	l.emit(&Instr{Op: IMem, Level: MemDRAM, Addr: sAddr, AddrOff: 0,
		NWords: 16, Data: buf, Class: ClassPacketData, Comment: "copy read"})
	l.emit(&Instr{Op: IMem, Level: MemDRAM, Store: true, Addr: dAddr, AddrOff: 0,
		NWords: 16, Data: buf, Class: ClassPacketData, Comment: "copy write"})
	l.emitALUImm(AAdd, sAddr, sAddr, 64)
	l.emitALUImm(AAdd, dAddr, dAddr, 64)
	l.emitALUImm(ASub, cnt, cnt, 1)
	l.emitBr(lab)
	l.label(endLab)
	// Copy the metadata record.
	sm := l.metaAddr(src)
	nh := &handleInfo{pkt: nid, length: src.length,
		headStatic: src.headStatic, headReg: src.headReg, align: src.align}
	dm := l.metaAddr(nh)
	mwords := int(l.layout.MetaRecBytes / 4)
	if mwords > 8 {
		mwords = 8
	}
	mb := make([]PReg, mwords)
	for i := range mb {
		mb[i] = l.newVReg()
	}
	l.emit(&Instr{Op: IMem, Level: MemSRAM, Addr: sm, AddrOff: 0,
		NWords: mwords, Data: mb, Class: ClassPacketMeta, Comment: "meta copy read"})
	l.emit(&Instr{Op: IMem, Level: MemSRAM, Store: true, Addr: dm, AddrOff: 0,
		NWords: mwords, Data: mb, Class: ClassPacketMeta, Comment: "meta copy write"})
	l.handles[in.Dst[0]] = nh
}

// lowerPktCreate allocates a buffer for a fresh packet of the protocol's
// (minimum) size.
func (l *lowerer) lowerPktCreate(in *ir.Instr) {
	nid := l.newVReg()
	junk := l.newVReg()
	l.emit(&Instr{Op: IRingGet, Ring: RingFree, Dst: nid, Dst2: junk,
		Class: ClassPacketRing, Comment: "alloc buffer (packet_create)"})
	size := in.Proto.FixedSize
	if size < 0 {
		size = in.Proto.HeaderMin
	}
	lenReg := l.newVReg()
	l.emitImmed(lenReg, l.layout.BufHeadroom+uint32(size))
	h := &handleInfo{pkt: nid, length: lenReg,
		headStatic: int32(l.layout.BufHeadroom), headReg: NoPReg, align: 8}
	// Persist length in the metadata record.
	maddr := l.metaAddr(h)
	l.emit(&Instr{Op: IMem, Level: MemSRAM, Store: true, Addr: maddr,
		AddrOff: MetaLenOff, NWords: 1, Data: []PReg{lenReg},
		Class: ClassPacketMeta, Comment: "length init"})
	l.handles[in.Dst[0]] = h
}

// compileDemux emits code evaluating a dynamic demux expression (e.g.
// IPv4's "hlen << 2") against the header at the handle's current offset:
// one DRAM burst covering every referenced field, then extraction and the
// expression arithmetic. Returns the register holding the header size in
// bytes.
func (l *lowerer) compileDemux(src *handleInfo, from *types.Protocol, site *ir.Instr) PReg {
	// Byte span of referenced fields.
	hi := 4
	var walkSpan func(e ast.Expr)
	walkSpan = func(e ast.Expr) {
		switch e := e.(type) {
		case *ast.Ident:
			if f := from.Field(e.Name); f != nil {
				_, fhi := f.ByteSpan()
				if fhi > hi {
					hi = fhi
				}
			}
		case *ast.UnaryExpr:
			walkSpan(e.X)
		case *ast.BinaryExpr:
			walkSpan(e.X)
			walkSpan(e.Y)
		}
	}
	walkSpan(from.Demux)
	nwords := (hi + 3) / 4

	// Load the covering words from the header start.
	hr, hs, _ := l.headForAccess(src, site)
	addr := l.newVReg()
	l.emitALUImm(AShl, addr, src.pkt, 8)
	off := uint32(0)
	if hs != ir.UnknownOff {
		off += uint32(hs)
	} else if hr != NoPReg {
		t := l.newVReg()
		l.emitALU(AAdd, t, addr, hr)
		addr = t
	}
	words := make([]PReg, nwords)
	for i := range words {
		words[i] = l.newVReg()
	}
	l.emit(&Instr{Op: IMem, Level: MemDRAM, Addr: addr, AddrOff: off,
		NWords: nwords, Data: words, Class: ClassPacketData,
		Comment: "demux field read (" + from.Name + ")"})

	var eval func(e ast.Expr) PReg
	eval = func(e ast.Expr) PReg {
		switch e := e.(type) {
		case *ast.IntLit:
			r := l.newVReg()
			l.emitImmed(r, uint32(e.Value))
			return r
		case *ast.Ident:
			if f := from.Field(e.Name); f != nil {
				r := l.newVReg()
				l.extractFieldInto(r, f, words, 0)
				return r
			}
			r := l.newVReg()
			l.emitImmed(r, uint32(l.tp.Consts[e.Name]))
			return r
		case *ast.UnaryExpr:
			x := eval(e.X)
			r := l.newVReg()
			switch e.Op.String() {
			case "-":
				l.emitALU(ANeg, r, x, NoPReg)
			case "~":
				l.emitALU(ANot, r, x, NoPReg)
			default:
				l.emitALU(AMov, r, x, NoPReg)
			}
			return r
		case *ast.BinaryExpr:
			x := eval(e.X)
			y := eval(e.Y)
			r := l.newVReg()
			var op ALUOp
			switch e.Op.String() {
			case "+":
				op = AAdd
			case "-":
				op = ASub
			case "*":
				op = AMul
			case "/":
				op = ADivU
			case "<<":
				op = AShl
			case ">>":
				op = AShrU
			case "&":
				op = AAnd
			case "|":
				op = AOr
			case "^":
				op = AXor
			default:
				op = AAdd
			}
			l.emitALU(op, r, x, y)
			return r
		}
		r := l.newVReg()
		l.emitImmed(r, 0)
		return r
	}
	return eval(from.Demux)
}

// extractFieldInto is extractField generalized to an arbitrary
// destination register (used by the demux compiler).
func (l *lowerer) extractFieldInto(dst PReg, fld *types.ProtoField, data []PReg, wlo int) {
	relBit := fld.BitOff - wlo*8
	wi := relBit / 32
	bitInWord := relBit % 32
	bits := fld.Bits
	if bitInWord+bits <= 32 {
		sh := uint32(32 - bitInWord - bits)
		cur := data[wi]
		if sh > 0 {
			t := l.newVReg()
			l.emitALUImm(AShrU, t, cur, sh)
			cur = t
		}
		if bits < 32 {
			l.emitALUImm(AAnd, dst, cur, uint32(1<<uint(bits)-1))
		} else {
			l.emitALU(AMov, dst, cur, NoPReg)
		}
		return
	}
	hiBits := 32 - bitInWord
	loBits := bits - hiBits
	hp := l.newVReg()
	l.emitALUImm(AAnd, hp, data[wi], uint32(1<<uint(hiBits)-1))
	hs := l.newVReg()
	l.emitALUImm(AShl, hs, hp, uint32(loBits))
	lp := l.newVReg()
	l.emitALUImm(AShrU, lp, data[wi+1], uint32(32-loBits))
	l.emitALU(AOr, dst, hs, lp)
}
