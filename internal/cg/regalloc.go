package cg

import (
	"fmt"
	"sort"

	"shangrila/internal/cg/stackalloc"
)

// Register allocation: virtual registers (indices >= NumRegs) are mapped
// onto the ME's two 16-register banks. The ME constraint the paper calls
// out in §4.1 applies: an instruction with two register source operands
// must read them from different banks, so bank assignment happens first
// (inserting cross-bank copies where the constraint is unsatisfiable),
// followed by per-bank linear-scan allocation with spills to the thread's
// Local Memory stack frame (§5.4), overflowing to SRAM when the 48-word
// frame is exhausted.

// Usable registers per bank after reserving SP (a15), the SRAM spill base
// (b15) and the two assembler temps (a14/b14).
const (
	RegSSP       PReg = 31 // bank B: SRAM spill-area base (per-thread)
	regsPerBankA      = 14
	regsPerBankB      = 14
)

// Allocate rewrites p.Code in place from virtual to physical registers.
func Allocate(p *Program, nvreg int) error {
	a := &allocator{p: p, nvreg: nvreg}
	a.assignBanks()
	a.computeIntervals()
	if err := a.scan(); err != nil {
		return err
	}
	a.rewrite()
	return a.err
}

type interval struct {
	vreg       PReg
	start, end int
	bank       int
	phys       PReg // NoPReg if spilled
	slot       int  // spill slot index, -1 otherwise
}

type allocator struct {
	p     *Program
	nvreg int
	bank  map[PReg]int
	ivals map[PReg]*interval
	err   error

	frame *stackalloc.Frame
}

func isVirtual(r PReg) bool { return int(r) >= NumRegs }

// regUses returns pointers to every register operand of in (sources and
// destinations separately).
func regOperands(in *Instr) (defs, uses []*PReg) {
	switch in.Op {
	case IALU:
		uses = append(uses, &in.SrcA)
		if in.ALU != AMov && in.ALU != ANot && in.ALU != ANeg {
			uses = append(uses, &in.SrcB)
		}
		defs = append(defs, &in.Dst)
	case IALUImm:
		uses = append(uses, &in.SrcA)
		defs = append(defs, &in.Dst)
	case IImmed:
		defs = append(defs, &in.Dst)
	case IBcc:
		uses = append(uses, &in.SrcA, &in.SrcB)
	case IBccImm:
		uses = append(uses, &in.SrcA)
	case IMem:
		if in.Addr != NoPReg {
			uses = append(uses, &in.Addr)
		}
		for i := range in.Data {
			if in.Store {
				uses = append(uses, &in.Data[i])
			} else {
				defs = append(defs, &in.Data[i])
			}
		}
	case ICAMLookup:
		uses = append(uses, &in.SrcA)
		defs = append(defs, &in.Dst, &in.Dst2)
	case ICAMWrite:
		uses = append(uses, &in.SrcA, &in.SrcB)
	case IRingGet:
		defs = append(defs, &in.Dst, &in.Dst2)
	case IRingPut:
		uses = append(uses, &in.SrcA, &in.SrcB)
		if in.Dst != NoPReg {
			defs = append(defs, &in.Dst)
		}
	}
	// Filter out absent operands (zero-valued fields that aren't real
	// registers are encoded as NoPReg by the lowerer; physical registers
	// like RegSP pass through).
	f := func(list []*PReg) []*PReg {
		out := list[:0]
		for _, r := range list {
			if *r != NoPReg {
				out = append(out, r)
			}
		}
		return out
	}
	return f(defs), f(uses)
}

// assignBanks 2-colors the source-pair conflict graph greedily, inserting
// cross-bank copies when both operands of an instruction already share a
// bank.
func (a *allocator) assignBanks() {
	a.bank = map[PReg]int{}
	balance := 0
	get := func(v PReg) (int, bool) {
		b, ok := a.bank[v]
		return b, ok
	}
	set := func(v PReg, b int) { a.bank[v] = b }

	var out []*Instr
	for _, in := range a.p.Code {
		twoSrc := in.Op == IALU && in.ALU != AMov && in.ALU != ANot && in.ALU != ANeg ||
			in.Op == IBcc || in.Op == ICAMWrite || in.Op == IRingPut
		if twoSrc && isVirtual(in.SrcA) && isVirtual(in.SrcB) && in.SrcA != in.SrcB {
			ba, okA := get(in.SrcA)
			bb, okB := get(in.SrcB)
			switch {
			case !okA && !okB:
				set(in.SrcA, 0)
				set(in.SrcB, 1)
			case okA && !okB:
				set(in.SrcB, 1-ba)
			case !okA && okB:
				set(in.SrcA, 1-bb)
			case ba == bb:
				// Copy SrcB into a fresh vreg of the opposite bank.
				t := PReg(NumRegs + a.nvreg)
				a.nvreg++
				set(t, 1-ba)
				out = append(out, &Instr{Op: IALU, ALU: AMov, Dst: t, SrcA: in.SrcB,
					Comment: "bank-conflict copy"})
				in.SrcB = t
			}
		} else if twoSrc && isVirtual(in.SrcA) && in.SrcA == in.SrcB {
			// Same register on both sides: duplicate through a copy.
			t := PReg(NumRegs + a.nvreg)
			a.nvreg++
			ba, ok := get(in.SrcA)
			if !ok {
				ba = 0
				set(in.SrcA, ba)
			}
			set(t, 1-ba)
			out = append(out, &Instr{Op: IALU, ALU: AMov, Dst: t, SrcA: in.SrcB,
				Comment: "same-source copy"})
			in.SrcB = t
		}
		out = append(out, in)
	}
	// Unconstrained vregs: balance banks.
	for _, in := range out {
		defs, uses := regOperands(in)
		for _, lists := range [][]*PReg{defs, uses} {
			for _, r := range lists {
				if isVirtual(*r) {
					if _, ok := get(*r); !ok {
						set(*r, balance&1)
						balance++
					}
				}
			}
		}
	}
	// Inserting copies shifted instruction indices: retarget branches.
	if len(out) != len(a.p.Code) {
		remap := make([]int, len(a.p.Code)+1)
		oi := 0
		for i, in := range a.p.Code {
			for out[oi] != in {
				oi++
			}
			remap[i] = oi
		}
		remap[len(a.p.Code)] = len(out)
		for _, in := range out {
			switch in.Op {
			case IBr, IBcc, IBccImm:
				in.Target = remap[in.Target]
			}
		}
	}
	a.p.Code = out
}

// computeIntervals builds conservative [first,last] hulls per vreg using
// block-level liveness over the CGIR CFG.
func (a *allocator) computeIntervals() {
	code := a.p.Code
	n := len(code)
	// Leaders.
	leader := make([]bool, n+1)
	leader[0] = true
	for i, in := range code {
		switch in.Op {
		case IBr, IBcc, IBccImm:
			if in.Target <= n {
				leader[in.Target] = true
			}
			if i+1 <= n {
				leader[i+1] = true
			}
		}
	}
	var starts []int
	for i := 0; i < n; i++ {
		if leader[i] {
			starts = append(starts, i)
		}
	}
	blockOf := make([]int, n)
	ends := make([]int, len(starts))
	for bi, s := range starts {
		e := n
		if bi+1 < len(starts) {
			e = starts[bi+1]
		}
		ends[bi] = e
		for i := s; i < e; i++ {
			blockOf[i] = bi
		}
	}
	succs := make([][]int, len(starts))
	for bi, s := range starts {
		e := ends[bi]
		if e == s {
			continue
		}
		last := code[e-1]
		switch last.Op {
		case IBr:
			succs[bi] = append(succs[bi], blockOf[min(last.Target, n-1)])
		case IBcc, IBccImm:
			succs[bi] = append(succs[bi], blockOf[min(last.Target, n-1)])
			if e < n {
				succs[bi] = append(succs[bi], blockOf[e])
			}
		case IHalt:
		default:
			if e < n {
				succs[bi] = append(succs[bi], blockOf[e])
			}
		}
	}
	// Block gen/kill.
	gen := make([]map[PReg]bool, len(starts))
	kill := make([]map[PReg]bool, len(starts))
	for bi, s := range starts {
		g, k := map[PReg]bool{}, map[PReg]bool{}
		for i := s; i < ends[bi]; i++ {
			defs, uses := regOperands(code[i])
			for _, u := range uses {
				if isVirtual(*u) && !k[*u] {
					g[*u] = true
				}
			}
			for _, d := range defs {
				if isVirtual(*d) {
					k[*d] = true
				}
			}
		}
		gen[bi], kill[bi] = g, k
	}
	liveIn := make([]map[PReg]bool, len(starts))
	liveOut := make([]map[PReg]bool, len(starts))
	for i := range starts {
		liveIn[i] = map[PReg]bool{}
		liveOut[i] = map[PReg]bool{}
	}
	for changed := true; changed; {
		changed = false
		for bi := len(starts) - 1; bi >= 0; bi-- {
			out := map[PReg]bool{}
			for _, s := range succs[bi] {
				for r := range liveIn[s] {
					out[r] = true
				}
			}
			in := map[PReg]bool{}
			for r := range gen[bi] {
				in[r] = true
			}
			for r := range out {
				if !kill[bi][r] {
					in[r] = true
				}
			}
			if len(in) != len(liveIn[bi]) || len(out) != len(liveOut[bi]) {
				changed = true
			}
			liveIn[bi], liveOut[bi] = in, out
		}
	}
	// Hull intervals.
	a.ivals = map[PReg]*interval{}
	touch := func(v PReg, i int) {
		iv := a.ivals[v]
		if iv == nil {
			iv = &interval{vreg: v, start: i, end: i, bank: a.bank[v], slot: -1, phys: NoPReg}
			a.ivals[v] = iv
		}
		if i < iv.start {
			iv.start = i
		}
		if i > iv.end {
			iv.end = i
		}
	}
	for i, in := range code {
		defs, uses := regOperands(in)
		for _, d := range defs {
			if isVirtual(*d) {
				touch(*d, i)
			}
		}
		for _, u := range uses {
			if isVirtual(*u) {
				touch(*u, i)
			}
		}
	}
	for bi, s := range starts {
		for r := range liveIn[bi] {
			touch(r, s)
		}
		for r := range liveOut[bi] {
			touch(r, ends[bi]-1)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// scan performs per-bank linear scan. Registers written by multi-word
// memory bursts, ring gets or CAM lookups cannot be spilled (one
// instruction would need several assembler temps), so the victim search
// skips them.
func (a *allocator) scan() error {
	a.frame = stackalloc.NewFrame(stackalloc.DefaultConfig())
	unspillable := map[PReg]bool{}
	for _, in := range a.p.Code {
		defs, _ := regOperands(in)
		if len(defs) > 1 {
			for _, d := range defs {
				if isVirtual(*d) {
					unspillable[*d] = true
				}
			}
		}
	}
	var ivals []*interval
	for _, iv := range a.ivals {
		ivals = append(ivals, iv)
	}
	sort.Slice(ivals, func(i, j int) bool {
		if ivals[i].start != ivals[j].start {
			return ivals[i].start < ivals[j].start
		}
		return ivals[i].vreg < ivals[j].vreg
	})
	free := [2][]PReg{}
	for r := PReg(0); r < regsPerBankA; r++ {
		free[0] = append(free[0], r)
	}
	for r := PReg(BankSize); r < BankSize+regsPerBankB; r++ {
		free[1] = append(free[1], r)
	}
	var active [2][]*interval
	expire := func(bank, at int) {
		kept := active[bank][:0]
		for _, iv := range active[bank] {
			if iv.end < at {
				free[bank] = append(free[bank], iv.phys)
			} else {
				kept = append(kept, iv)
			}
		}
		active[bank] = kept
	}
	for _, iv := range ivals {
		b := iv.bank
		expire(b, iv.start)
		if len(free[b]) > 0 {
			iv.phys = free[b][0]
			free[b] = free[b][1:]
			active[b] = append(active[b], iv)
			continue
		}
		// Spill the active interval with the furthest end (or this one),
		// skipping unspillable burst registers.
		var victim *interval
		if !unspillable[iv.vreg] {
			victim = iv
		}
		for _, cand := range active[b] {
			if unspillable[cand.vreg] {
				continue
			}
			if victim == nil || cand.end > victim.end {
				victim = cand
			}
		}
		if victim == nil {
			return fmt.Errorf("cg: register pressure too high: no spillable interval in bank %d", b)
		}
		if victim != iv {
			iv.phys = victim.phys
			victim.phys = NoPReg
			victim.slot = a.frame.AllocSlot()
			na := active[b][:0]
			for _, c := range active[b] {
				if c != victim {
					na = append(na, c)
				}
			}
			active[b] = append(na, iv)
		} else {
			iv.slot = a.frame.AllocSlot()
		}
	}
	return nil
}

// rewrite replaces vregs with physical registers, inserting spill loads
// and stores through the assembler temps.
func (a *allocator) rewrite() {
	var out []*Instr
	remap := make([]int, len(a.p.Code)+1)
	spillMem := func(iv *interval, store bool, tmp PReg) *Instr {
		loc := a.frame.Slot(iv.slot)
		level := MemLocal
		addr := RegSP
		off := loc.Offset
		if !loc.Local {
			level = MemSRAM
			addr = RegSSP
		}
		cls := ClassNone
		if !loc.Local {
			cls = ClassPacketMeta // SRAM stack traffic (rare; §5.4)
			a.p.SRAMSpillWords++
		}
		return &Instr{Op: IMem, Level: level, Store: store, Addr: addr,
			AddrOff: off, NWords: 1, Data: []PReg{tmp}, Class: cls,
			Comment: fmt.Sprintf("spill v%d", int(iv.vreg))}
	}
	for i, in := range a.p.Code {
		remap[i] = len(out)
		defs, uses := regOperands(in)
		tmps := []PReg{RegTmpA, RegTmpB}
		ti := 0
		var post []*Instr
		for _, u := range uses {
			if !isVirtual(*u) {
				continue
			}
			iv := a.ivals[*u]
			if iv == nil {
				*u = RegTmpA
				continue
			}
			if iv.phys != NoPReg {
				*u = iv.phys
				continue
			}
			if ti >= len(tmps) {
				a.err = fmt.Errorf("cg: instruction needs more than two spilled sources")
				return
			}
			t := tmps[ti]
			ti++
			out = append(out, spillMem(iv, false, t))
			*u = t
		}
		spilledDefs := 0
		for _, d := range defs {
			if !isVirtual(*d) {
				continue
			}
			iv := a.ivals[*d]
			if iv == nil {
				*d = RegTmpA
				continue
			}
			if iv.phys != NoPReg {
				*d = iv.phys
				continue
			}
			if spilledDefs > 0 {
				a.err = fmt.Errorf("cg: instruction defines more than one spilled register")
				return
			}
			spilledDefs++
			*d = RegTmpA
			post = append(post, spillMem(iv, true, RegTmpA))
		}
		out = append(out, in)
		out = append(out, post...)
	}
	remap[len(a.p.Code)] = len(out)
	for _, in := range out {
		switch in.Op {
		case IBr, IBcc, IBccImm:
			in.Target = remap[in.Target]
		}
	}
	a.p.Code = out
	a.p.StackBytes = a.frame.Bytes()
}
