package cg_test

import (
	"testing"

	"shangrila/internal/aggregate"
	"shangrila/internal/baker/types"
	"shangrila/internal/cg"
	"shangrila/internal/opt"
	"shangrila/internal/packet"
	"shangrila/internal/profiler"
	"shangrila/internal/testutil"
	"shangrila/internal/trace"
)

const appSrc = `
protocol ether { dst_hi:16; dst_lo:32; src_hi:16; src_lo:32; type:16; demux { 14 }; }
protocol ipv4 { ver:4; hlen:4; tos:8; length:16; id:16; flags:3; frag:13;
                ttl:8; proto:8; cksum:16; src:32; dst:32; demux { hlen << 2 }; }
metadata { rx_port:16; next_hop:16; }
module m {
	struct Rt { dst:uint; nh:uint; }
	Rt table[32];
	uint hits;
	channel out : ether;
	ppf f(ether ph) {
		uint ty = ph->type;
		if (ty == 0x0800) {
			ipv4 iph = packet_decap(ph);
			uint dst = iph->dst;
			uint nh = 0;
			for (uint i = 0; i < 32; i++) {
				if (table[i].dst == dst) { nh = table[i].nh; break; }
			}
			iph->ttl = iph->ttl - 1;
			iph->meta.next_hop = nh;
			hits += 1;
			ether eph = packet_encap(iph);
			channel_put(out, eph);
		} else {
			packet_drop(ph);
		}
	}
	control func add(uint i, uint d, uint n) { table[i].dst = d; table[i].nh = n; }
	wiring { rx -> f; out -> tx; }
}
`

// compile builds the app through aggregation + CG at full optimization.
func compile(t *testing.T, opts cg.Options) *cg.Image {
	t.Helper()
	prog := testutil.BuildIR(t, appSrc)
	trc := buildTrace(t, prog.Types, 64)
	stats, err := profiler.ProfileWithControls(prog, trc,
		[]profiler.Control{{Name: "m.add", Args: []uint32{0, 0x0a000001, 3}}})
	if err != nil {
		t.Fatal(err)
	}
	opt.Optimize(prog, opt.Options{Scalar: true, Inline: true})
	plan, err := aggregate.Build(prog, stats, aggregate.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	classes := aggregate.ClassifyChannels(prog, plan)
	merged, err := aggregate.BuildMerged(prog, plan, classes)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range merged {
		opt.Optimize(m.Prog, opt.Options{Scalar: true})
	}
	img, err := cg.Compile(prog, plan, merged, classes, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func buildTrace(t *testing.T, tp *types.Program, n int) []*packet.Packet {
	t.Helper()
	var out []*packet.Packet
	for i := 0; i < n; i++ {
		p, err := trace.Build([]trace.Layer{
			{Proto: tp.Protocols["ether"], Fields: map[string]uint32{"type": 0x0800}},
			{Proto: tp.Protocols["ipv4"], Fields: map[string]uint32{
				"ver": 4, "hlen": 5, "ttl": 9, "dst": 0x0a000001}, Size: 20},
		}, 64, tp.Metadata.Bytes)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, p)
	}
	return out
}

func TestBankConstraintHolds(t *testing.T) {
	img := compile(t, cg.Options{O2: true, SOAR: true, PHR: true})
	for _, c := range img.MECode {
		for pc, in := range c.Program.Code {
			twoSrc := in.Op == cg.IALU &&
				in.ALU != cg.AMov && in.ALU != cg.ANot && in.ALU != cg.ANeg
			if in.Op == cg.IBcc || in.Op == cg.ICAMWrite || in.Op == cg.IRingPut {
				twoSrc = true
			}
			if !twoSrc || in.SrcA == cg.NoPReg || in.SrcB == cg.NoPReg {
				continue
			}
			if in.SrcA == in.SrcB {
				t.Errorf("pc %d: identical sources %v", pc, in)
			}
			if in.SrcA.Bank() == in.SrcB.Bank() {
				t.Errorf("pc %d: bank conflict %v (both bank %d)", pc, in, in.SrcA.Bank())
			}
		}
	}
}

func TestPhysicalRegistersOnly(t *testing.T) {
	img := compile(t, cg.Options{O2: true})
	for _, c := range img.MECode {
		for pc, in := range c.Program.Code {
			check := func(r cg.PReg, what string) {
				if r != cg.NoPReg && (int(r) < 0 || int(r) >= cg.NumRegs) {
					t.Errorf("pc %d: %s register %d not physical: %v", pc, what, int(r), in)
				}
			}
			check(in.Dst, "dst")
			check(in.Dst2, "dst2")
			check(in.SrcA, "srcA")
			check(in.SrcB, "srcB")
			check(in.Addr, "addr")
			for _, d := range in.Data {
				check(d, "data")
			}
		}
	}
}

func TestBranchTargetsInRange(t *testing.T) {
	img := compile(t, cg.Options{})
	for _, c := range img.MECode {
		n := len(c.Program.Code)
		for pc, in := range c.Program.Code {
			switch in.Op {
			case cg.IBr, cg.IBcc, cg.IBccImm:
				if in.Target < 0 || in.Target >= n {
					t.Errorf("pc %d: branch target %d out of range [0,%d)", pc, in.Target, n)
				}
			}
		}
	}
}

func TestCodeSizeShrinksWithOptions(t *testing.T) {
	base := compile(t, cg.Options{})
	opt := compile(t, cg.Options{O2: true, SOAR: true, PHR: true})
	b := len(base.MECode[0].Program.Code)
	o := len(opt.MECode[0].Program.Code)
	if o >= b {
		t.Errorf("optimized code %d >= base %d instructions", o, b)
	}
	if b > cg.CodeStoreLimit {
		t.Errorf("base code %d exceeds the code store", b)
	}
}

func TestLayoutInvariants(t *testing.T) {
	img := compile(t, cg.Options{})
	lay := img.Layout
	// Metadata record size is a power of two.
	if lay.MetaRecBytes&(lay.MetaRecBytes-1) != 0 {
		t.Errorf("MetaRecBytes %d not a power of two", lay.MetaRecBytes)
	}
	// Global addresses are word aligned and non-overlapping per space.
	type span struct{ lo, hi uint32 }
	bySpace := map[types.MemSpace][]span{}
	for name, g := range img.Types.Globals {
		addr := lay.GlobalAddr[name]
		if addr%4 != 0 {
			t.Errorf("global %s at unaligned %d", name, addr)
		}
		size := uint32((g.Type.SizeBytes() + 3) &^ 3)
		for _, s := range bySpace[g.Space] {
			if addr < s.hi && s.lo < addr+size {
				t.Errorf("global %s overlaps another in %v", name, g.Space)
			}
		}
		bySpace[g.Space] = append(bySpace[g.Space], span{addr, addr + size})
	}
	// Rings fit in scratch.
	last := lay.RingBase(lay.NumRings-1) + lay.RingBytes
	if last > 16<<10 {
		t.Errorf("rings end at %d, beyond 16KiB scratch", last)
	}
	// Thread stacks fit Local Memory.
	if lay.StackBase+8*lay.StackSize > 2560 {
		t.Errorf("stacks end at %d, beyond 2560B local memory", lay.StackBase+8*lay.StackSize)
	}
}
