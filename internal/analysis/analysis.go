// Package analysis provides the CFG analyses shared by the optimizer and
// code generator: dominators, post-dominators, liveness, and def/use
// inspection of IR instructions.
package analysis

import (
	"shangrila/internal/ir"
)

// Defs returns the registers defined by an instruction.
func Defs(in *ir.Instr) []ir.Reg { return in.Dst }

// Uses returns the registers read by an instruction (NoReg entries are
// skipped).
func Uses(in *ir.Instr) []ir.Reg {
	var out []ir.Reg
	for _, a := range in.Args {
		if a != ir.NoReg {
			out = append(out, a)
		}
	}
	return out
}

// HasSideEffects reports whether in must be preserved even if its results
// are unused.
func HasSideEffects(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpStore, ir.OpPktStore, ir.OpMetaStore, ir.OpChanPut,
		ir.OpPktDrop, ir.OpAddTail, ir.OpRemoveTail,
		ir.OpLockAcquire, ir.OpLockRelease, ir.OpCall,
		ir.OpBr, ir.OpCondBr, ir.OpRet,
		ir.OpEncap, ir.OpDecap, // they move the packet's head pointer
		ir.OpPktCopy, ir.OpPktCreate, // allocation
		ir.OpCacheFill, ir.OpCacheFlush:
		return true
	case ir.OpDivU, ir.OpRemU:
		return true // may trap on zero
	}
	return false
}

// Dominators computes the immediate dominator of every block using the
// iterative Cooper–Harvey–Kennedy algorithm. The entry block's idom is
// itself.
type Dominators struct {
	idom  map[*ir.Block]*ir.Block
	order map[*ir.Block]int // reverse postorder index
}

// ComputeDominators builds dominator information for f (call f.ComputeCFG
// first).
func ComputeDominators(f *ir.Func) *Dominators {
	rpo := ReversePostorder(f.Entry)
	order := make(map[*ir.Block]int, len(rpo))
	for i, b := range rpo {
		order[b] = i
	}
	d := &Dominators{idom: map[*ir.Block]*ir.Block{}, order: order}
	d.idom[f.Entry] = f.Entry
	changed := true
	for changed {
		changed = false
		for _, b := range rpo {
			if b == f.Entry {
				continue
			}
			var newIdom *ir.Block
			for _, p := range b.Preds {
				if d.idom[p] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = d.intersect(p, newIdom)
				}
			}
			if newIdom != nil && d.idom[b] != newIdom {
				d.idom[b] = newIdom
				changed = true
			}
		}
	}
	return d
}

func (d *Dominators) intersect(a, b *ir.Block) *ir.Block {
	for a != b {
		for d.order[a] > d.order[b] {
			a = d.idom[a]
		}
		for d.order[b] > d.order[a] {
			b = d.idom[b]
		}
	}
	return a
}

// Idom returns b's immediate dominator (entry's is itself).
func (d *Dominators) Idom(b *ir.Block) *ir.Block { return d.idom[b] }

// Dominates reports whether a dominates b (reflexive).
func (d *Dominators) Dominates(a, b *ir.Block) bool {
	for {
		if a == b {
			return true
		}
		next := d.idom[b]
		if next == nil || next == b {
			return false
		}
		b = next
	}
}

// ReversePostorder returns blocks reachable from entry in reverse
// postorder.
func ReversePostorder(entry *ir.Block) []*ir.Block {
	var post []*ir.Block
	seen := map[*ir.Block]bool{}
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		seen[b] = true
		for _, s := range b.Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	if entry != nil {
		dfs(entry)
	}
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// PostDominators computes post-dominance over f's CFG. Blocks that cannot
// reach an exit post-dominate nothing. A virtual exit joins all OpRet
// blocks.
type PostDominators struct {
	pdom map[*ir.Block]map[*ir.Block]bool // pdom[b] = set of post-dominators of b
}

// ComputePostDominators builds post-dominator sets using the classic
// iterative dataflow formulation (fine at the CFG sizes Baker produces).
func ComputePostDominators(f *ir.Func) *PostDominators {
	var exits []*ir.Block
	for _, b := range f.Blocks {
		if t := b.Terminator(); t != nil && t.Op == ir.OpRet {
			exits = append(exits, b)
		}
	}
	all := map[*ir.Block]bool{}
	for _, b := range f.Blocks {
		all[b] = true
	}
	pd := &PostDominators{pdom: map[*ir.Block]map[*ir.Block]bool{}}
	for _, b := range f.Blocks {
		if isExit(b) {
			pd.pdom[b] = map[*ir.Block]bool{b: true}
		} else {
			cp := map[*ir.Block]bool{}
			for k := range all {
				cp[k] = true
			}
			pd.pdom[b] = cp
		}
	}
	_ = exits
	changed := true
	for changed {
		changed = false
		for _, b := range f.Blocks {
			if isExit(b) {
				continue
			}
			var inter map[*ir.Block]bool
			for _, s := range b.Succs {
				if inter == nil {
					inter = map[*ir.Block]bool{}
					for k := range pd.pdom[s] {
						inter[k] = true
					}
				} else {
					for k := range inter {
						if !pd.pdom[s][k] {
							delete(inter, k)
						}
					}
				}
			}
			if inter == nil {
				inter = map[*ir.Block]bool{}
			}
			inter[b] = true
			if !sameSet(inter, pd.pdom[b]) {
				pd.pdom[b] = inter
				changed = true
			}
		}
	}
	return pd
}

func isExit(b *ir.Block) bool {
	t := b.Terminator()
	return t != nil && t.Op == ir.OpRet
}

func sameSet(a, b map[*ir.Block]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// PostDominates reports whether a post-dominates b.
func (pd *PostDominators) PostDominates(a, b *ir.Block) bool { return pd.pdom[b][a] }

// Liveness holds per-block live-in/live-out register sets.
type Liveness struct {
	In  map[*ir.Block]map[ir.Reg]bool
	Out map[*ir.Block]map[ir.Reg]bool
}

// ComputeLiveness solves backward liveness over f.
func ComputeLiveness(f *ir.Func) *Liveness {
	lv := &Liveness{
		In:  map[*ir.Block]map[ir.Reg]bool{},
		Out: map[*ir.Block]map[ir.Reg]bool{},
	}
	gen := map[*ir.Block]map[ir.Reg]bool{}
	kill := map[*ir.Block]map[ir.Reg]bool{}
	for _, b := range f.Blocks {
		g, k := map[ir.Reg]bool{}, map[ir.Reg]bool{}
		for _, in := range b.Instrs {
			for _, u := range Uses(in) {
				if !k[u] {
					g[u] = true
				}
			}
			for _, d := range Defs(in) {
				k[d] = true
			}
		}
		gen[b], kill[b] = g, k
		lv.In[b] = map[ir.Reg]bool{}
		lv.Out[b] = map[ir.Reg]bool{}
	}
	changed := true
	for changed {
		changed = false
		for i := len(f.Blocks) - 1; i >= 0; i-- {
			b := f.Blocks[i]
			out := map[ir.Reg]bool{}
			for _, s := range b.Succs {
				for r := range lv.In[s] {
					out[r] = true
				}
			}
			in := map[ir.Reg]bool{}
			for r := range gen[b] {
				in[r] = true
			}
			for r := range out {
				if !kill[b][r] {
					in[r] = true
				}
			}
			if len(out) != len(lv.Out[b]) || len(in) != len(lv.In[b]) {
				changed = true
			} else {
				for r := range in {
					if !lv.In[b][r] {
						changed = true
						break
					}
				}
			}
			lv.In[b], lv.Out[b] = in, out
		}
	}
	return lv
}

// DefCounts returns, per register, how many instructions define it.
func DefCounts(f *ir.Func) []int {
	counts := make([]int, f.NumRegs)
	for _, p := range f.Params {
		counts[p]++
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, d := range in.Dst {
				counts[d]++
			}
		}
	}
	return counts
}
