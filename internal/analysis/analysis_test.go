package analysis_test

import (
	"testing"

	"shangrila/internal/analysis"
	"shangrila/internal/ir"
	"shangrila/internal/testutil"
)

const diamondSrc = `
protocol p { x:32; demux { 4 }; }
module m {
	uint g;
	ppf f(p ph) {
		uint v = ph->x;
		if (v > 10) { g = 1; } else { g = 2; }
		g = v;
		packet_drop(ph);
	}
	wiring { rx -> f; }
}`

func TestDominators(t *testing.T) {
	prog := testutil.BuildIR(t, diamondSrc)
	f := prog.Funcs["m.f"]
	dom := analysis.ComputeDominators(f)
	entry := f.Entry
	for _, b := range f.Blocks {
		if !dom.Dominates(entry, b) {
			t.Errorf("entry must dominate b%d", b.ID)
		}
		if !dom.Dominates(b, b) {
			t.Errorf("dominance must be reflexive (b%d)", b.ID)
		}
	}
	// The two branch arms must not dominate each other or the join.
	term := entry.Terminator()
	if term.Op != ir.OpCondBr {
		t.Fatalf("entry terminator = %v", term.Op)
	}
	thenB, elseB := term.Blocks[0], term.Blocks[1]
	if dom.Dominates(thenB, elseB) || dom.Dominates(elseB, thenB) {
		t.Error("branch arms must not dominate each other")
	}
	// The join block (successor of both arms) is not dominated by either arm.
	if len(thenB.Succs) == 1 {
		join := thenB.Succs[0]
		if dom.Dominates(thenB, join) {
			t.Error("then-arm must not dominate join")
		}
		if !dom.Dominates(entry, join) {
			t.Error("entry must dominate join")
		}
	}
}

func TestPostDominators(t *testing.T) {
	prog := testutil.BuildIR(t, diamondSrc)
	f := prog.Funcs["m.f"]
	pd := analysis.ComputePostDominators(f)
	// The exit block post-dominates everything.
	var exit *ir.Block
	for _, b := range f.Blocks {
		if t := b.Terminator(); t != nil && t.Op == ir.OpRet {
			exit = b
		}
	}
	if exit == nil {
		t.Fatal("no exit block")
	}
	for _, b := range f.Blocks {
		if !pd.PostDominates(exit, b) {
			t.Errorf("exit must post-dominate b%d", b.ID)
		}
	}
	// Branch arms do not post-dominate the entry.
	term := f.Entry.Terminator()
	if term.Op == ir.OpCondBr {
		if pd.PostDominates(term.Blocks[0], f.Entry) {
			t.Error("then-arm must not post-dominate entry")
		}
	}
}

func TestLiveness(t *testing.T) {
	prog := testutil.BuildIR(t, diamondSrc)
	f := prog.Funcs["m.f"]
	lv := analysis.ComputeLiveness(f)
	// The handle parameter is used by packet_drop at the end, so it must
	// be live-out of the entry block.
	h := f.Params[0]
	if !lv.Out[f.Entry][h] {
		t.Errorf("handle %v not live-out of entry", h)
	}
	// Nothing is live out of the exit block.
	for _, b := range f.Blocks {
		if t2 := b.Terminator(); t2 != nil && t2.Op == ir.OpRet {
			if len(lv.Out[b]) != 0 {
				t.Errorf("exit block has live-out regs: %v", lv.Out[b])
			}
		}
	}
}

func TestDefCountsIncludesParams(t *testing.T) {
	prog := testutil.BuildIR(t, diamondSrc)
	f := prog.Funcs["m.f"]
	counts := analysis.DefCounts(f)
	if counts[f.Params[0]] == 0 {
		t.Error("param must count as a definition")
	}
}
