package trace

import (
	"testing"

	"shangrila/internal/baker/parser"
	"shangrila/internal/baker/types"
)

func env(t *testing.T) *types.Program {
	t.Helper()
	src := `
protocol ether { dst_hi:16; dst_lo:32; src_hi:16; src_lo:32; type:16; demux { 14 }; }
protocol ipv4 { ver:4; hlen:4; tos:8; length:16; id:16; flags:3; frag:13;
                ttl:8; proto:8; cksum:16; src:32; dst:32; demux { hlen << 2 }; }
module m { ppf f(ether ph){ packet_drop(ph); } wiring { rx -> f; } }
`
	prog, err := parser.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := types.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestBuildLayers(t *testing.T) {
	tp := env(t)
	eth := tp.Protocols["ether"]
	ip := tp.Protocols["ipv4"]
	p, err := Build([]Layer{
		{Proto: eth, Fields: map[string]uint32{"type": 0x0800}},
		{Proto: ip, Fields: map[string]uint32{"ver": 4, "hlen": 5, "ttl": 64, "dst": 0x0a000001}, Size: 20},
	}, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 64 {
		t.Fatalf("len = %d, want 64", p.Len())
	}
	v, err := p.ReadField(0, eth.Field("type"))
	if err != nil || v != 0x0800 {
		t.Fatalf("type = %#x, err %v", v, err)
	}
	head, err := p.Decap(0, eth, tp.Consts)
	if err != nil {
		t.Fatal(err)
	}
	dst, _ := p.ReadField(head, ip.Field("dst"))
	if dst != 0x0a000001 {
		t.Fatalf("dst = %#x", dst)
	}
	hs, err := p.HeaderSize(head, ip, tp.Consts)
	if err != nil || hs != 20 {
		t.Fatalf("hlen propagated wrong: %d %v", hs, err)
	}
}

func TestBuildErrors(t *testing.T) {
	tp := env(t)
	ip := tp.Protocols["ipv4"]
	if _, err := Build([]Layer{{Proto: ip}}, 64, 4); err == nil {
		t.Fatal("dynamic layer without Size must error")
	}
	eth := tp.Protocols["ether"]
	if _, err := Build([]Layer{{Proto: eth, Fields: map[string]uint32{"bogus": 1}}}, 64, 4); err == nil {
		t.Fatal("unknown field must error")
	}
}

func TestPrefixMatch(t *testing.T) {
	pf := Prefix{Addr: 0x0a010000, Len: 16, NextHop: 1}
	if !pf.Match(0x0a01ffff) || !pf.Match(0x0a010000) {
		t.Error("address inside the prefix did not match")
	}
	if pf.Match(0x0a020000) {
		t.Error("address outside the prefix matched")
	}
	if !(Prefix{Len: 0}).Match(0xdeadbeef) {
		t.Error("default route must match everything")
	}
}
