package trace

import (
	"testing"
	"testing/quick"

	"shangrila/internal/baker/parser"
	"shangrila/internal/baker/types"
)

func env(t *testing.T) *types.Program {
	t.Helper()
	src := `
protocol ether { dst_hi:16; dst_lo:32; src_hi:16; src_lo:32; type:16; demux { 14 }; }
protocol ipv4 { ver:4; hlen:4; tos:8; length:16; id:16; flags:3; frag:13;
                ttl:8; proto:8; cksum:16; src:32; dst:32; demux { hlen << 2 }; }
module m { ppf f(ether ph){ packet_drop(ph); } wiring { rx -> f; } }
`
	prog, err := parser.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := types.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(43)
	same := true
	a = NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Next() != c.Next() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestBuildLayers(t *testing.T) {
	tp := env(t)
	eth := tp.Protocols["ether"]
	ip := tp.Protocols["ipv4"]
	p, err := Build([]Layer{
		{Proto: eth, Fields: map[string]uint32{"type": 0x0800}},
		{Proto: ip, Fields: map[string]uint32{"ver": 4, "hlen": 5, "ttl": 64, "dst": 0x0a000001}, Size: 20},
	}, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 64 {
		t.Fatalf("len = %d, want 64", p.Len())
	}
	v, err := p.ReadField(0, eth.Field("type"))
	if err != nil || v != 0x0800 {
		t.Fatalf("type = %#x, err %v", v, err)
	}
	head, err := p.Decap(0, eth, tp.Consts)
	if err != nil {
		t.Fatal(err)
	}
	dst, _ := p.ReadField(head, ip.Field("dst"))
	if dst != 0x0a000001 {
		t.Fatalf("dst = %#x", dst)
	}
	hs, err := p.HeaderSize(head, ip, tp.Consts)
	if err != nil || hs != 20 {
		t.Fatalf("hlen propagated wrong: %d %v", hs, err)
	}
}

func TestBuildErrors(t *testing.T) {
	tp := env(t)
	ip := tp.Protocols["ipv4"]
	if _, err := Build([]Layer{{Proto: ip}}, 64, 4); err == nil {
		t.Fatal("dynamic layer without Size must error")
	}
	eth := tp.Protocols["ether"]
	if _, err := Build([]Layer{{Proto: eth, Fields: map[string]uint32{"bogus": 1}}}, 64, 4); err == nil {
		t.Fatal("unknown field must error")
	}
}

func TestPrefixMatchProperty(t *testing.T) {
	r := NewRand(7)
	f := func(seed uint64) bool {
		rr := NewRand(seed)
		pfs := GenPrefixes(rr, 8)
		for _, pf := range pfs {
			addr := AddrInPrefix(r, pf)
			if !pf.Match(addr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGenPrefixesDistinctNextHops(t *testing.T) {
	pfs := GenPrefixes(NewRand(1), 32)
	seen := map[uint32]bool{}
	for _, pf := range pfs {
		if seen[pf.NextHop] {
			t.Fatalf("duplicate next hop %d", pf.NextHop)
		}
		seen[pf.NextHop] = true
		if pf.Len < 8 || pf.Len > 24 {
			t.Fatalf("prefix length %d out of range", pf.Len)
		}
		mask := ^uint32(0) << uint(32-pf.Len)
		if pf.Addr&^mask != 0 {
			t.Fatalf("prefix %08x has host bits set", pf.Addr)
		}
	}
}
