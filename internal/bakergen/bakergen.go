// Package bakergen generates random-but-valid Baker programs for
// metamorphic compiler fuzzing. A seeded generator (NewSpec) draws a
// JSON-serializable program Spec — protocol layouts, a PPF pipeline with
// channel wiring, metadata hand-off, table-driven control functions,
// optional dynamic-demux layers, MPLS-style label-stack loops that drive
// SOAR to lattice bottom, and header pushes that grow the packet front —
// and Build renders it into a first-class apps.App: Baker source, the
// control-plane calls that populate its table, and a TraceSpec producing
// packets the program can parse.
//
// The fuzzing oracle is differential: a generated program has no
// hand-written expected output; instead the harness requires every
// optimization level to transmit exactly the frames the host reference
// interpreter produces (harness.Differential). To make that comparison
// sound under out-of-order ME completion, generated programs are
// engineered so per-packet output is independent of cross-packet state:
// every injected packet carries a unique 32-bit seq field (so frames are
// pairwise distinct) and module globals are either runtime-read-only
// tables or write-only counters that never feed back into packet bytes.
//
// Specs survive JSON round trips, which is what the checked-in
// fuzz-corpus regression files, the delta-debugging minimizer and the
// fuzz report all rely on.
package bakergen

import "encoding/json"

// Field is one bit field of a generated protocol.
type Field struct {
	Name string `json:"name"`
	Bits int    `json:"bits"`
}

// Proto is a generated protocol header: named bit fields whose widths sum
// to whole 32-bit words. With DynDemux the header carries its size in its
// leading 8-bit "hl" field and declares `demux { hl << 2 }` (the IPv4
// idiom), exercising the compiler's dynamic-demux path; otherwise the
// demux is the constant byte size.
type Proto struct {
	Name     string  `json:"name"`
	Fields   []Field `json:"fields"`
	DynDemux bool    `json:"dyn_demux,omitempty"`
}

// SizeBytes returns the header size implied by the field widths.
func (p *Proto) SizeBytes() int {
	bits := 0
	for _, f := range p.Fields {
		bits += f.Bits
	}
	return bits / 8
}

// Field returns the named field, or nil.
func (p *Proto) Field(name string) *Field {
	for i := range p.Fields {
		if p.Fields[i].Name == name {
			return &p.Fields[i]
		}
	}
	return nil
}

// StackSpec adds an MPLS-style header stack: packets carry 1..MaxDepth
// shim headers (the last with its trailing "s" byte set), popped by a
// self-looping PPF — the channel join across loop iterations is exactly
// what drives SOAR's offset lattice to bottom.
type StackSpec struct {
	Shim     Proto `json:"shim"`
	MaxDepth int   `json:"max_depth"`
}

// Op is one statement of a generated stage body.
//
// Work-stage kinds:
//
//	counter  — increment the stage's write-only global counter
//	rewrite  — ph->Field = ph->Src + Imm
//	table    — ph->meta.next_hop = tbl[ph->Src & mask]
//	metaput  — ph->meta.flow_id = ph->Src
//	metaget  — ph->Field = ph->meta.flow_id
//	dropif   — guard: if ((ph->Field & Imm) == Imm) drop, else run the
//	           rest of the stage (at most one per stage, always first)
//
// Push-stage kind:
//
//	pushwrite — write the pushed header's Field from Imm, plus the
//	            pre-encap value of Src when Src is set (the value is
//	            captured into a local before packet_encap releases the
//	            inner handle)
type Op struct {
	Kind  string `json:"kind"`
	Field string `json:"field,omitempty"`
	Src   string `json:"src,omitempty"`
	Imm   uint32 `json:"imm,omitempty"`
}

// Stage is one pipeline PPF. A nil Push is a work stage operating on the
// current packet view; a non-nil Push encapsulates that protocol (moving
// the packet head toward — possibly past — the packet front) and hands
// the new view downstream.
type Stage struct {
	Name string `json:"name"`
	Push *Proto `json:"push,omitempty"`
	Ops  []Op   `json:"ops"`
}

// Spec is a complete generated program description. The packet layout it
// implies, outermost first: Base, then Mid (when present), then 1..
// Stack.MaxDepth shims (when present), then Inner, then Payload bytes.
// The pipeline classifies/pops down to the Inner view, runs Stages in
// order, and a sink sets tx_port and transmits.
type Spec struct {
	Seed    uint64     `json:"seed"`
	Base    Proto      `json:"base"`
	Mid     *Proto     `json:"mid,omitempty"`
	Stack   *StackSpec `json:"stack,omitempty"`
	Inner   Proto      `json:"inner"`
	Stages  []Stage    `json:"stages"`
	Table   []uint32   `json:"table"`
	Payload int        `json:"payload"`
	// Invalid, when non-empty, makes Source emit a program with one
	// deliberate defect of the named class (see InvalidClasses) for
	// negative frontend testing.
	Invalid string `json:"invalid,omitempty"`
}

// Clone returns a deep copy (specs are plain data; the JSON round trip is
// the simplest faithful copy).
func (s *Spec) Clone() *Spec {
	b, err := json.Marshal(s)
	if err != nil {
		panic("bakergen: spec not serializable: " + err.Error())
	}
	var c Spec
	if err := json.Unmarshal(b, &c); err != nil {
		panic("bakergen: spec round trip: " + err.Error())
	}
	return &c
}

// views returns the pipeline view chain: views[i] is the protocol stage i
// operates on, and the final element is the sink's view.
func (s *Spec) views() []Proto {
	out := make([]Proto, 0, len(s.Stages)+1)
	cur := s.Inner
	for _, st := range s.Stages {
		out = append(out, cur)
		if st.Push != nil {
			cur = *st.Push
		}
	}
	return append(out, cur)
}

// Features returns the spec's feature-coverage contribution: structural
// features and op kinds, the histogram fuzz campaigns aggregate to show
// what the generated population actually exercised.
func (s *Spec) Features() map[string]int {
	f := map[string]int{"program": 1}
	if s.Mid != nil {
		f["mid-dyndemux"]++
	}
	decapMin := s.Base.SizeBytes()
	if s.Mid != nil {
		decapMin += s.Mid.SizeBytes()
	}
	if s.Stack != nil {
		f["stack"]++
		f["stack-depth-max"] += s.Stack.MaxDepth
		decapMin += s.Stack.Shim.SizeBytes()
	}
	pushBytes := 0
	for _, st := range s.Stages {
		if st.Push != nil {
			f["push"]++
			pushBytes += st.Push.SizeBytes()
		} else {
			f["work"]++
		}
		for _, op := range st.Ops {
			f["op-"+op.Kind]++
		}
	}
	// A push chain deeper than the already-popped headers moves the head
	// in front of the original packet start — the negative-offset regime
	// for PAC clustering and SOAR's encap transfer.
	if pushBytes > decapMin {
		f["front-growth"]++
	}
	return f
}
