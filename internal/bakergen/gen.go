package bakergen

import (
	"fmt"

	"shangrila/internal/workload"
)

// Generation limits. Push depth is capped so the worst-case front growth
// stays well inside the 64-byte buffer headroom both executors reserve.
const (
	tableSize  = 16
	maxPayload = 16
)

// NewSpec draws a random valid program spec from the seed. The draw
// sequence is part of no compatibility contract (corpus files persist
// specs, not seeds), but for one binary the mapping is deterministic:
// equal seeds give equal specs.
func NewSpec(seed uint64) *Spec {
	r := workload.NewSource(seed)
	s := &Spec{Seed: seed}
	// Wire layout, outermost first. Base always leads with the unique
	// 32-bit seq word; Inner repeats it so output frames stay pairwise
	// distinct even after Base is popped.
	s.Base = genProto(r, "pb", 2+r.Intn(2), Field{Name: "seq", Bits: 32})
	if r.Intn(100) < 45 {
		m := genMid(r)
		s.Mid = &m
	}
	if r.Intn(100) < 40 {
		s.Stack = &StackSpec{Shim: genShim(r), MaxDepth: 1 + r.Intn(3)}
	}
	s.Inner = genProto(r, "pi", 2+r.Intn(3), Field{Name: "seq", Bits: 32})

	// Pipeline: 1..4 work stages with 0..2 pushes spliced between them.
	nWork := 1 + r.Intn(4)
	nPush := r.Intn(3)
	kinds := make([]bool, 0, nWork+nPush) // true = push
	for i := 0; i < nWork; i++ {
		kinds = append(kinds, false)
	}
	for i := 0; i < nPush; i++ {
		// Insert at a random position after at least one work stage, so
		// pushed views also get exercised by downstream work stages when
		// the draw lands before the end.
		at := 1 + r.Intn(len(kinds))
		kinds = append(kinds[:at], append([]bool{true}, kinds[at:]...)...)
	}
	view := s.Inner
	pushIdx := 0
	for i, isPush := range kinds {
		st := Stage{Name: fmt.Sprintf("s%d", i)}
		if isPush {
			p := genProto(r, fmt.Sprintf("pp%d", pushIdx), 1+r.Intn(2), Field{})
			pushIdx++
			st.Push = &p
			st.Ops = genPushOps(r, &view, &p)
			view = p
		} else {
			st.Ops = genWorkOps(r, &view)
		}
		s.Stages = append(s.Stages, st)
	}

	s.Table = make([]uint32, tableSize)
	for i := range s.Table {
		s.Table[i] = r.Uint32()
	}
	s.Payload = r.Intn(maxPayload + 1)
	return s
}

// genProto generates a protocol of the given word count. A non-zero
// first field is forced as the leading field; the rest of each 32-bit
// word is partitioned into random widths.
func genProto(r *workload.Source, name string, words int, first Field) Proto {
	p := Proto{Name: name}
	idx := 0
	rem := words * 32
	if first.Bits > 0 {
		p.Fields = append(p.Fields, first)
		rem -= first.Bits
	}
	for rem > 0 {
		w := fieldWidth(r, rem)
		p.Fields = append(p.Fields, Field{Name: fmt.Sprintf("f%d", idx), Bits: w})
		idx++
		rem -= w
	}
	return p
}

// genMid generates the dynamic-demux middle layer: a leading 8-bit "hl"
// field carrying the header size in words, IPv4-style.
func genMid(r *workload.Source) Proto {
	p := genProto(r, "pm", 1+r.Intn(3), Field{Name: "hl", Bits: 8})
	p.DynDemux = true
	return p
}

// genShim generates the stack shim: random fields with a trailing 8-bit
// "s" bottom-of-stack flag, MPLS-style.
func genShim(r *workload.Source) Proto {
	words := 1 + r.Intn(2)
	p := Proto{Name: "ps"}
	rem := words*32 - 8
	idx := 0
	for rem > 0 {
		w := fieldWidth(r, rem)
		p.Fields = append(p.Fields, Field{Name: fmt.Sprintf("f%d", idx), Bits: w})
		idx++
		rem -= w
	}
	p.Fields = append(p.Fields, Field{Name: "s", Bits: 8})
	return p
}

// fieldWidth draws one field width (a multiple of 4 bits, at most 32)
// that fits in rem without stranding a sliver too small to be a field.
func fieldWidth(r *workload.Source, rem int) int {
	if rem <= 8 {
		return rem
	}
	w := 4 * (1 + r.Intn(8)) // 4..32
	if w > rem {
		w = rem
	}
	if rem-w > 0 && rem-w < 4 {
		w = rem // absorb the sliver
	}
	return w
}

// genWorkOps draws a work-stage body over the given view.
func genWorkOps(r *workload.Source, view *Proto) []Op {
	var ops []Op
	if r.Intn(100) < 30 {
		f := randField(r, view)
		ops = append(ops, Op{Kind: "dropif", Field: f.Name, Imm: dropMask(r, f.Bits)})
	}
	n := 1 + r.Intn(5)
	for i := 0; i < n; i++ {
		switch pickWeighted(r, []int{35, 15, 10, 10, 15}) {
		case 0:
			ops = append(ops, Op{Kind: "rewrite",
				Field: randField(r, view).Name, Src: randField(r, view).Name,
				Imm: r.Uint32() & 0xff})
		case 1:
			ops = append(ops, Op{Kind: "table", Src: randField(r, view).Name})
		case 2:
			ops = append(ops, Op{Kind: "metaput", Src: randField(r, view).Name})
		case 3:
			ops = append(ops, Op{Kind: "metaget", Field: randField(r, view).Name})
		case 4:
			ops = append(ops, Op{Kind: "counter"})
		}
	}
	return ops
}

// genPushOps draws the pushed header's field writes; the first field is
// always written so every push exercises a post-encap store.
func genPushOps(r *workload.Source, view *Proto, push *Proto) []Op {
	var ops []Op
	for i := range push.Fields {
		if i > 0 && r.Intn(100) >= 70 {
			continue
		}
		op := Op{Kind: "pushwrite", Field: push.Fields[i].Name, Imm: r.Uint32() & 0xfff}
		if r.Intn(100) < 50 {
			op.Src = randField(r, view).Name
		}
		ops = append(ops, op)
	}
	return ops
}

func randField(r *workload.Source, p *Proto) *Field {
	return &p.Fields[r.Intn(len(p.Fields))]
}

// dropMask picks a 1-2 bit mask inside the field width, so a dropif
// discards 25-50% of uniformly random field values.
func dropMask(r *workload.Source, bits int) uint32 {
	if bits > 32 {
		bits = 32
	}
	m := uint32(1) << uint(r.Intn(bits))
	if r.Intn(2) == 1 {
		m |= uint32(1) << uint(r.Intn(bits))
	}
	return m
}

func pickWeighted(r *workload.Source, weights []int) int {
	total := 0
	for _, w := range weights {
		total += w
	}
	roll := r.Intn(total)
	acc := 0
	for i, w := range weights {
		acc += w
		if roll < acc {
			return i
		}
	}
	return len(weights) - 1
}
