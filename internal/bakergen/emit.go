package bakergen

import (
	"fmt"
	"strings"

	"shangrila/internal/apps"
	"shangrila/internal/baker/types"
	"shangrila/internal/packet"
	"shangrila/internal/profiler"
	"shangrila/internal/trace"
	"shangrila/internal/workload"
)

// module is the generated module name; control-plane calls are qualified
// with it ("fz.set_tbl").
const module = "fz"

// Source renders the spec as Baker program text. For valid specs the
// result must compile at every optimization level — the generator
// validity tests pin that; a non-empty Invalid class plants exactly one
// frontend defect of that class instead.
func (s *Spec) Source() string {
	var b strings.Builder
	emitProto(&b, &s.Base, s.Invalid == "dup-field")
	if s.Mid != nil {
		emitProto(&b, s.Mid, false)
	}
	if s.Stack != nil {
		emitProto(&b, &s.Stack.Shim, false)
	}
	for i := range s.Stages {
		if p := s.Stages[i].Push; p != nil {
			emitProto(&b, p, false)
		}
	}
	emitProto(&b, &s.Inner, false)
	b.WriteString("metadata {\n    rx_port  : 8;\n    tx_port  : 8;\n    next_hop : 16;\n    flow_id  : 16;\n}\n\n")

	views := s.views()
	sink := views[len(views)-1]
	fmt.Fprintf(&b, "module %s {\n", module)
	fmt.Fprintf(&b, "    uint tbl[%d];\n    uint drops;\n", len(s.Table))
	for i := range s.Stages {
		fmt.Fprintf(&b, "    uint k%d;\n", i)
	}
	// Channels, in pipeline order.
	if s.Mid != nil {
		fmt.Fprintf(&b, "    channel m_cc : %s;\n", s.Mid.Name)
	}
	if s.Stack != nil {
		fmt.Fprintf(&b, "    channel sk_cc : %s;\n", s.Stack.Shim.Name)
	}
	for i, v := range views[:len(views)-1] {
		fmt.Fprintf(&b, "    channel w%d_cc : %s;\n", i, v.Name)
	}
	fmt.Fprintf(&b, "    channel z_cc : %s;\n", sink.Name)
	outProto := sink.Name
	if s.Invalid == "chan-type" {
		outProto = s.Base.Name
	}
	fmt.Fprintf(&b, "    channel out_cc : %s;\n\n", outProto)

	s.emitClassify(&b)
	if s.Mid != nil {
		s.emitPopMid(&b)
	}
	if s.Stack != nil {
		s.emitPopper(&b)
	}
	for i := range s.Stages {
		s.emitStage(&b, i, &views[i])
	}
	s.emitSink(&b, &sink)

	tblGlobal := "tbl"
	if s.Invalid == "control-global" {
		tblGlobal = "zz_missing"
	}
	fmt.Fprintf(&b, "    control func set_tbl(uint i, uint v) {\n        %s[i & %d] = v;\n    }\n\n",
		tblGlobal, len(s.Table)-1)

	b.WriteString("    wiring {\n        rx -> classify;\n")
	if s.Mid != nil {
		b.WriteString("        m_cc -> popmid;\n")
	}
	if s.Stack != nil {
		b.WriteString("        sk_cc -> popper;\n")
	}
	for i := range s.Stages {
		fmt.Fprintf(&b, "        w%d_cc -> %s;\n", i, s.Stages[i].Name)
	}
	b.WriteString("        z_cc -> sink;\n")
	if s.Invalid == "wiring" {
		b.WriteString("        bogus_cc -> sink;\n")
	}
	b.WriteString("        out_cc -> tx;\n    }\n")
	if s.Invalid != "syntax" {
		b.WriteString("}\n")
	}
	return b.String()
}

func emitProto(b *strings.Builder, p *Proto, dupField bool) {
	fmt.Fprintf(b, "protocol %s {\n", p.Name)
	for i, f := range p.Fields {
		name := f.Name
		if dupField && i == 1 {
			name = p.Fields[0].Name
		}
		fmt.Fprintf(b, "    %s : %d;\n", name, f.Bits)
	}
	if p.DynDemux {
		b.WriteString("    demux { hl << 2 };\n")
	} else {
		fmt.Fprintf(b, "    demux { %d };\n", p.SizeBytes())
	}
	b.WriteString("}\n\n")
}

// decapTarget returns the layer under Base and the channel carrying it.
func (s *Spec) decapTarget() (proto, chan_ string) {
	switch {
	case s.Mid != nil:
		return s.Mid.Name, "m_cc"
	case s.Stack != nil:
		return s.Stack.Shim.Name, "sk_cc"
	default:
		return s.Inner.Name, "w0_cc"
	}
}

// innerChan is the channel feeding the first stage (or the sink when the
// minimizer removed every stage).
func (s *Spec) innerChan() string {
	if len(s.Stages) > 0 {
		return "w0_cc"
	}
	return "z_cc"
}

func (s *Spec) emitClassify(b *strings.Builder) {
	proto, cc := s.decapTarget()
	if proto == s.Inner.Name {
		cc = s.innerChan()
	}
	fmt.Fprintf(b, "    ppf classify(%s ph) {\n", s.Base.Name)
	// Metadata hand-off from the outermost header: the low bits of seq
	// ride the per-packet flow_id down the pipeline.
	b.WriteString("        ph->meta.flow_id = ph->seq & 0xffff;\n")
	fmt.Fprintf(b, "        %s nh = packet_decap(ph);\n        channel_put(%s, nh);\n    }\n\n", proto, cc)
}

func (s *Spec) emitPopMid(b *strings.Builder) {
	proto, cc := s.Inner.Name, s.innerChan()
	if s.Stack != nil {
		proto, cc = s.Stack.Shim.Name, "sk_cc"
	}
	fmt.Fprintf(b, "    ppf popmid(%s ph) {\n", s.Mid.Name)
	fmt.Fprintf(b, "        %s nh = packet_decap(ph);\n        channel_put(%s, nh);\n    }\n\n", proto, cc)
}

// emitPopper emits the self-looping stack pop: offsets differ per loop
// iteration, so the join over sk_cc's producers drives SOAR to bottom.
func (s *Spec) emitPopper(b *strings.Builder) {
	shim := s.Stack.Shim.Name
	fmt.Fprintf(b, "    ppf popper(%s ph) {\n", shim)
	fmt.Fprintf(b, "        if (ph->s == 1) {\n")
	fmt.Fprintf(b, "            %s ih = packet_decap(ph);\n            channel_put(%s, ih);\n", s.Inner.Name, s.innerChan())
	fmt.Fprintf(b, "        } else {\n")
	fmt.Fprintf(b, "            %s nh = packet_decap(ph);\n            channel_put(sk_cc, nh);\n", shim)
	fmt.Fprintf(b, "        }\n    }\n\n")
}

// nextChan names the channel a stage forwards into.
func (s *Spec) nextChan(i int) string {
	if i+1 < len(s.Stages) {
		return fmt.Sprintf("w%d_cc", i+1)
	}
	return "z_cc"
}

func (s *Spec) emitStage(b *strings.Builder, i int, view *Proto) {
	st := &s.Stages[i]
	fmt.Fprintf(b, "    ppf %s(%s ph) {\n", st.Name, view.Name)
	if st.Push != nil {
		s.emitPushBody(b, i, st, view)
	} else {
		s.emitWorkBody(b, i, st, view)
	}
	b.WriteString("    }\n\n")
}

func (s *Spec) emitWorkBody(b *strings.Builder, i int, st *Stage, view *Proto) {
	indent := "        "
	ops := st.Ops
	if len(ops) > 0 && ops[0].Kind == "dropif" {
		imm := maskImm(ops[0].Imm, view.Field(ops[0].Field))
		fmt.Fprintf(b, "%sif ((ph->%s & %d) == %d) {\n", indent, ops[0].Field, imm, imm)
		fmt.Fprintf(b, "%s    drops += 1;\n%s    packet_drop(ph);\n%s} else {\n", indent, indent, indent)
		defer fmt.Fprintf(b, "%s}\n", indent)
		indent += "    "
		ops = ops[1:]
	}
	for _, op := range ops {
		switch op.Kind {
		case "counter":
			fmt.Fprintf(b, "%sk%d += 1;\n", indent, i)
		case "rewrite":
			fmt.Fprintf(b, "%sph->%s = ph->%s + %d;\n", indent, op.Field, op.Src, op.Imm)
		case "table":
			fmt.Fprintf(b, "%sph->meta.next_hop = tbl[ph->%s & %d];\n", indent, op.Src, len(s.Table)-1)
		case "metaput":
			fmt.Fprintf(b, "%sph->meta.flow_id = ph->%s;\n", indent, op.Src)
		case "metaget":
			fmt.Fprintf(b, "%sph->%s = ph->meta.flow_id;\n", indent, op.Field)
		}
	}
	fmt.Fprintf(b, "%schannel_put(%s, ph);\n", indent, s.nextChan(i))
}

// emitPushBody captures pre-encap source values into locals, encapsulates
// (releasing ph), then writes the pushed header — the ler_impose shape
// whose combined post-encap stores exercise PAC and SOAR front growth.
func (s *Spec) emitPushBody(b *strings.Builder, i int, st *Stage, view *Proto) {
	locals := map[string]string{} // src field -> local name
	for _, op := range st.Ops {
		if op.Src != "" {
			if _, ok := locals[op.Src]; !ok {
				l := fmt.Sprintf("x%d", len(locals))
				locals[op.Src] = l
				fmt.Fprintf(b, "        uint %s = ph->%s;\n", l, op.Src)
			}
		}
	}
	fmt.Fprintf(b, "        k%d += 1;\n", i)
	fmt.Fprintf(b, "        %s sh = packet_encap(ph);\n", st.Push.Name)
	for _, op := range st.Ops {
		if op.Src != "" {
			fmt.Fprintf(b, "        sh->%s = %s + %d;\n", op.Field, locals[op.Src], op.Imm)
		} else {
			fmt.Fprintf(b, "        sh->%s = %d;\n", op.Field, op.Imm)
		}
	}
	fmt.Fprintf(b, "        channel_put(%s, sh);\n", s.nextChan(i))
}

func (s *Spec) emitSink(b *strings.Builder, view *Proto) {
	fmt.Fprintf(b, "    ppf sink(%s ph) {\n", view.Name)
	if s.Invalid == "unknown-field" {
		b.WriteString("        ph->meta.flow_id = ph->zz_missing;\n")
	}
	fmt.Fprintf(b, "        ph->meta.tx_port = tbl[ph->%s & %d] & 3;\n",
		view.Fields[0].Name, len(s.Table)-1)
	b.WriteString("        channel_put(out_cc, ph);\n    }\n\n")
}

// maskImm clamps an immediate into the field's width so dropif guards
// stay satisfiable; a masked-to-zero guard would never drop, so keep at
// least one bit.
func maskImm(imm uint32, f *Field) uint32 {
	if f == nil || f.Bits >= 32 {
		return imm
	}
	m := imm & (1<<uint(f.Bits) - 1)
	if m == 0 {
		m = 1
	}
	return m
}

// Build renders the spec into a first-class application: source, the
// control-plane calls populating its table, and the traffic generator.
// Invalid specs still build (their defect surfaces as a compile error).
func (s *Spec) Build() *apps.App {
	controls := make([]profiler.Control, len(s.Table))
	for i, v := range s.Table {
		controls[i] = profiler.Control{Name: module + ".set_tbl", Args: []uint32{uint32(i), v}}
	}
	return &apps.App{
		Name:     fmt.Sprintf("fuzz-%d", s.Seed),
		Source:   s.Source(),
		Controls: controls,
		Traffic:  s.traceSpec(),
	}
}

// traceSpec builds the single-case traffic generator: every packet is the
// spec's layer stack with random field values, a unique seq, and (when a
// stack is present) a varying shim depth.
func (s *Spec) traceSpec() apps.TraceSpec {
	spec := s.Clone() // detach from later mutation by the minimizer
	return apps.TraceSpec{Cases: []apps.TraceCase{{
		Name: "fuzz", Weight: 1,
		Build: func(tp *types.Program, r *workload.Source, i int) *packet.Packet {
			seq := uint32(i)
			layers := []trace.Layer{protoLayer(tp, &spec.Base, r, map[string]uint32{"seq": seq})}
			if spec.Mid != nil {
				layers = append(layers, protoLayer(tp, spec.Mid, r,
					map[string]uint32{"hl": uint32(spec.Mid.SizeBytes() / 4)}))
			}
			if spec.Stack != nil {
				depth := 1 + r.Intn(spec.Stack.MaxDepth)
				for d := 0; d < depth; d++ {
					bos := uint32(0)
					if d == depth-1 {
						bos = 1
					}
					layers = append(layers, protoLayer(tp, &spec.Stack.Shim, r,
						map[string]uint32{"s": bos}))
				}
			}
			layers = append(layers, protoLayer(tp, &spec.Inner, r, map[string]uint32{"seq": seq}))
			hdr := 0
			for _, l := range layers {
				hdr += l.Size
			}
			p, err := trace.Build(layers, hdr+spec.Payload, tp.Metadata.Bytes)
			if err != nil {
				panic(fmt.Sprintf("bakergen: trace build: %v", err))
			}
			for b := hdr; b < hdr+spec.Payload; b++ {
				p.Bytes()[b] = byte(r.Uint32())
			}
			p.Port = uint32(r.Intn(3))
			return p
		},
	}}}
}

// protoLayer fills one header layer: forced fields as given, every other
// field uniformly random in its width.
func protoLayer(tp *types.Program, p *Proto, r *workload.Source, forced map[string]uint32) trace.Layer {
	tproto := tp.Protocols[p.Name]
	if tproto == nil {
		panic("bakergen: protocol " + p.Name + " missing from compiled program")
	}
	fields := make(map[string]uint32, len(p.Fields))
	for _, f := range p.Fields {
		if v, ok := forced[f.Name]; ok {
			fields[f.Name] = v
			continue
		}
		mask := uint32(1)<<uint(f.Bits) - 1
		if f.Bits >= 32 {
			mask = ^uint32(0)
		}
		fields[f.Name] = r.Uint32() & mask
	}
	return trace.Layer{Proto: tproto, Fields: fields, Size: p.SizeBytes()}
}
