package bakergen

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"shangrila/internal/driver"
)

// TestSpecDeterminism pins the generator contract: equal seeds produce
// equal specs (and therefore equal sources), for one binary.
func TestSpecDeterminism(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		a, b := NewSpec(seed), NewSpec(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: NewSpec not deterministic", seed)
		}
		if a.Source() != b.Source() {
			t.Fatalf("seed %d: Source not deterministic", seed)
		}
	}
}

// TestSpecJSONRoundTrip: specs survive the JSON round trip the corpus,
// the minimizer and the fuzz report all rely on.
func TestSpecJSONRoundTrip(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		s := NewSpec(seed)
		raw, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var back Spec
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatal(err)
		}
		if back.Source() != s.Source() {
			t.Fatalf("seed %d: source changed across JSON round trip", seed)
		}
	}
}

// TestGeneratedProgramsCompile: every generated program must pass the
// full frontend and IR lowering — the generator's validity contract.
func TestGeneratedProgramsCompile(t *testing.T) {
	for seed := uint64(0); seed < 100; seed++ {
		s := NewSpec(seed)
		if _, err := driver.LowerSource("gen.baker", s.Source()); err != nil {
			t.Fatalf("seed %d: generated program rejected: %v\n%s", seed, err, s.Source())
		}
	}
}

// TestProtoShapes pins structural invariants the emitter depends on:
// whole-word protocols, the forced seq/hl/s marker fields, and bounded
// front growth (headroom safety).
func TestProtoShapes(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		s := NewSpec(seed)
		protos := []*Proto{&s.Base, &s.Inner}
		if s.Mid != nil {
			protos = append(protos, s.Mid)
		}
		if s.Stack != nil {
			protos = append(protos, &s.Stack.Shim)
		}
		for _, st := range s.Stages {
			if st.Push != nil {
				protos = append(protos, st.Push)
			}
		}
		pushBytes := 0
		for _, st := range s.Stages {
			if st.Push != nil {
				pushBytes += st.Push.SizeBytes()
			}
		}
		if pushBytes >= 60 {
			t.Fatalf("seed %d: push chain %dB can escape the 64B headroom", seed, pushBytes)
		}
		for _, p := range protos {
			bits := 0
			for _, f := range p.Fields {
				bits += f.Bits
			}
			if bits%32 != 0 {
				t.Fatalf("seed %d: proto %s is %d bits (not whole words)", seed, p.Name, bits)
			}
		}
		if s.Base.Fields[0].Name != "seq" || s.Base.Fields[0].Bits != 32 {
			t.Fatalf("seed %d: base must lead with seq:32", seed)
		}
		if s.Inner.Field("seq") == nil {
			t.Fatalf("seed %d: inner must carry seq", seed)
		}
		if s.Mid != nil && (s.Mid.Fields[0].Name != "hl" || !s.Mid.DynDemux) {
			t.Fatalf("seed %d: mid must be dyn-demux with leading hl", seed)
		}
		if s.Stack != nil {
			last := s.Stack.Shim.Fields[len(s.Stack.Shim.Fields)-1]
			if last.Name != "s" || last.Bits != 8 {
				t.Fatalf("seed %d: shim must end with s:8", seed)
			}
		}
	}
}

// TestMinimize: the minimizer must reach a fixpoint that still satisfies
// keep, never mutate its input, and strip structure the predicate does
// not require.
func TestMinimize(t *testing.T) {
	s := NewSpec(42)
	orig := s.Clone()
	// Keep = "program still has at least one work stage".
	keep := func(c *Spec) bool {
		for _, st := range c.Stages {
			if st.Push == nil {
				return true
			}
		}
		return false
	}
	min := Minimize(s, keep)
	if !reflect.DeepEqual(s, orig) {
		t.Fatal("Minimize mutated its input")
	}
	if !keep(min) {
		t.Fatal("minimized spec no longer satisfies keep")
	}
	if len(min.Stages) != 1 || min.Stages[0].Push != nil {
		t.Fatalf("expected a single work stage, got %d stages", len(min.Stages))
	}
	if min.Mid != nil || min.Stack != nil || min.Payload != 0 {
		t.Fatalf("minimizer left removable structure: mid=%v stack=%v payload=%d",
			min.Mid != nil, min.Stack != nil, min.Payload)
	}
	if len(min.Stages[0].Ops) != 0 {
		t.Fatalf("minimizer left %d removable ops", len(min.Stages[0].Ops))
	}
	// The minimized program must still be frontend-valid.
	if _, err := driver.LowerSource("min.baker", min.Source()); err != nil {
		t.Fatalf("minimized program rejected: %v", err)
	}
}

// TestFeatures spot-checks the coverage histogram against a known seed's
// structure.
func TestFeatures(t *testing.T) {
	s := NewSpec(7)
	f := s.Features()
	if f["program"] != 1 {
		t.Fatalf("program feature = %d", f["program"])
	}
	work, push := 0, 0
	for _, st := range s.Stages {
		if st.Push != nil {
			push++
		} else {
			work++
		}
	}
	if f["work"] != work || f["push"] != push {
		t.Fatalf("stage counts: got work=%d push=%d, want %d/%d",
			f["work"], f["push"], work, push)
	}
	if (s.Stack != nil) != (f["stack"] == 1) {
		t.Fatal("stack feature mismatch")
	}
}

// TestMutateClasses: every invalid class produces a program the frontend
// rejects, and Mutate leaves the original untouched.
func TestMutateClasses(t *testing.T) {
	s := NewSpec(3)
	orig := s.Source()
	for _, class := range InvalidClasses() {
		m := Mutate(s, class)
		if m.Invalid != class {
			t.Fatalf("class %s not recorded", class)
		}
		if _, err := driver.LowerSource("bad.baker", m.Source()); err == nil {
			t.Errorf("class %s: frontend accepted the mutant", class)
		}
	}
	if s.Source() != orig {
		t.Fatal("Mutate mutated its input")
	}
	if strings.Contains(s.Source(), "zz_missing") {
		t.Fatal("valid program contains injected defect")
	}
}
