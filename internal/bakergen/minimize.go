package bakergen

// Minimize delta-debugs a spec: it greedily applies the smallest
// structural reductions — drop a stage, drop an op, remove the mid
// layer, flatten the stack, strip payload — keeping a reduction only
// when keep still holds (for a fuzz failure: "the differential oracle
// still diverges"), and repeats to a fixed point. The input is never
// mutated; the returned spec is the reduced reproducer to check into the
// corpus.
func Minimize(s *Spec, keep func(*Spec) bool) *Spec {
	cur := s.Clone()
	for changed := true; changed; {
		changed = false
		for _, cand := range reductions(cur) {
			if keep(cand) {
				cur = cand
				changed = true
				break
			}
		}
	}
	return cur
}

// reductions enumerates every single-step reduction of s, smallest
// effect last so whole-stage removals are tried first.
func reductions(s *Spec) []*Spec {
	var out []*Spec
	for i := range s.Stages {
		c := s.Clone()
		c.Stages = append(c.Stages[:i], c.Stages[i+1:]...)
		repairViews(c)
		out = append(out, c)
	}
	if s.Mid != nil {
		c := s.Clone()
		c.Mid = nil
		out = append(out, c)
	}
	if s.Stack != nil {
		c := s.Clone()
		c.Stack = nil
		out = append(out, c)
		if s.Stack.MaxDepth > 1 {
			c := s.Clone()
			c.Stack.MaxDepth = 1
			out = append(out, c)
		}
	}
	if s.Payload > 0 {
		c := s.Clone()
		c.Payload = 0
		out = append(out, c)
	}
	for i := range s.Stages {
		for j := range s.Stages[i].Ops {
			c := s.Clone()
			st := &c.Stages[i]
			st.Ops = append(st.Ops[:j], st.Ops[j+1:]...)
			out = append(out, c)
		}
	}
	return out
}

// repairViews restores spec validity after a stage removal changed the
// view chain: ops referring to fields the (new) current view no longer
// has are dropped.
func repairViews(s *Spec) {
	view := s.Inner
	for i := range s.Stages {
		st := &s.Stages[i]
		var kept []Op
		for _, op := range st.Ops {
			if fieldOK(&view, op.Field, st.Push != nil) && srcOK(&view, op.Src) {
				kept = append(kept, op)
			}
		}
		st.Ops = kept
		if st.Push != nil {
			view = *st.Push
		}
	}
}

// fieldOK checks an op's target field against the view; push targets
// live in the pushed proto and are always fine.
func fieldOK(view *Proto, name string, isPush bool) bool {
	return name == "" || isPush || view.Field(name) != nil
}

func srcOK(view *Proto, name string) bool {
	return name == "" || view.Field(name) != nil
}
