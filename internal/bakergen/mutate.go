package bakergen

// Invalid-mutation classes: each plants exactly one frontend defect in an
// otherwise-valid generated program. The negative test suite requires the
// parser/typechecker to reject every class with a positioned error — and
// never to panic — so the fuzzer exercises the error paths of the
// frontend, not just the happy path.
const (
	// InvalidSyntax drops the module's closing brace (parser error).
	InvalidSyntax = "syntax"
	// InvalidDupField declares the base protocol's second field with the
	// first field's name (duplicate-field check).
	InvalidDupField = "dup-field"
	// InvalidUnknownField makes the sink read a field the view does not
	// declare (field resolution).
	InvalidUnknownField = "unknown-field"
	// InvalidChanType declares out_cc with the base protocol while the
	// sink puts the final pipeline view (channel type check).
	InvalidChanType = "chan-type"
	// InvalidWiring wires a channel that was never declared.
	InvalidWiring = "wiring"
	// InvalidControlGlobal makes the control function store to an
	// undeclared global (global resolution).
	InvalidControlGlobal = "control-global"
)

// InvalidClasses lists every mutation class.
func InvalidClasses() []string {
	return []string{InvalidSyntax, InvalidDupField, InvalidUnknownField,
		InvalidChanType, InvalidWiring, InvalidControlGlobal}
}

// Mutate returns a copy of s carrying the named defect class.
func Mutate(s *Spec, class string) *Spec {
	c := s.Clone()
	c.Invalid = class
	return c
}
