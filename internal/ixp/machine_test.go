package ixp

import (
	"testing"
	"testing/quick"

	"shangrila/internal/cg"
)

func TestRingFIFO(t *testing.T) {
	r := newRing(4)
	for i := uint32(0); i < 4; i++ {
		if !r.Put(i, i*10) {
			t.Fatalf("put %d failed", i)
		}
	}
	if r.Put(9, 9) {
		t.Fatal("put into full ring succeeded")
	}
	for i := uint32(0); i < 4; i++ {
		a, b, ok := r.Get()
		if !ok || a != i || b != i*10 {
			t.Fatalf("get %d = (%d,%d,%v)", i, a, b, ok)
		}
	}
	if _, _, ok := r.Get(); ok {
		t.Fatal("get from empty ring succeeded")
	}
	// Wrap-around.
	for round := 0; round < 10; round++ {
		r.Put(uint32(round), 0)
		if a, _, ok := r.Get(); !ok || a != uint32(round) {
			t.Fatalf("wrap round %d", round)
		}
	}
}

func TestRingBackpressureOnFull(t *testing.T) {
	r := newRing(2)
	if !r.Put(1, 10) || !r.Put(2, 20) {
		t.Fatal("fill failed")
	}
	// Repeated puts into a full ring all fail and leave contents intact.
	for i := 0; i < 5; i++ {
		if r.Put(99, 99) {
			t.Fatalf("put %d into full ring succeeded", i)
		}
	}
	if r.Len() != 2 || r.Space() != 0 || r.MaxOcc() != 2 {
		t.Errorf("len=%d space=%d hwm=%d after rejected puts", r.Len(), r.Space(), r.MaxOcc())
	}
	if a, b, ok := r.Get(); !ok || a != 1 || b != 10 {
		t.Errorf("head entry corrupted by rejected puts: (%d,%d,%v)", a, b, ok)
	}
	// After draining one slot, a put succeeds again and the high-water
	// mark remembers the peak.
	if !r.Put(3, 30) {
		t.Error("put after drain failed")
	}
	if r.MaxOcc() != 2 {
		t.Errorf("hwm = %d, want 2", r.MaxOcc())
	}
}

func TestGrowRingPreservesEntries(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RingSlots = 4
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 4; i++ {
		m.Rings[0].Put(i, i*2)
	}
	m.GrowRing(0, 16)
	if m.Rings[0].Cap() != 16 || m.Rings[0].Len() != 4 {
		t.Fatalf("cap=%d len=%d after grow", m.Rings[0].Cap(), m.Rings[0].Len())
	}
	for i := uint32(0); i < 4; i++ {
		a, b, ok := m.Rings[0].Get()
		if !ok || a != i || b != i*2 {
			t.Fatalf("entry %d = (%d,%d,%v) after grow", i, a, b, ok)
		}
	}
	// Shrinking below occupancy keeps the FIFO head and drops the tail.
	for i := uint32(0); i < 4; i++ {
		m.Rings[0].Put(i, 0)
	}
	m.GrowRing(0, 2)
	if m.Rings[0].Len() != 2 {
		t.Fatalf("len=%d after shrink, want 2", m.Rings[0].Len())
	}
	if a, _, _ := m.Rings[0].Get(); a != 0 {
		t.Errorf("shrink dropped the head, got %d", a)
	}
}

// TestGrowRingMidRun grows the Tx ring while the machine is between Run
// windows with traffic in flight: queued descriptors must survive and
// forwarding must continue.
func TestGrowRingMidRun(t *testing.T) {
	m := runLoop(t, 1)
	before := m.Snapshot()
	inFlight := m.Rings[cg.RingRx].Len() + m.Rings[cg.RingTx].Len() + m.Rings[cg.RingFree].Len()
	m.GrowRing(cg.RingTx, 256)
	m.GrowRing(cg.RingRx, 256)
	after := m.Rings[cg.RingRx].Len() + m.Rings[cg.RingTx].Len() + m.Rings[cg.RingFree].Len()
	if after != inFlight {
		t.Fatalf("grow lost descriptors: %d -> %d", inFlight, after)
	}
	if err := m.Run(200_000); err != nil {
		t.Fatal(err)
	}
	st := m.Snapshot()
	if st.TxPackets <= before.TxPackets {
		t.Errorf("no forwarding after mid-run grow: %d -> %d", before.TxPackets, st.TxPackets)
	}
}

func TestControllerBandwidth(t *testing.T) {
	c := &controller{level: cg.MemSRAM, latency: 90, svcBase: 8, svcWord: 1}
	st := &Stats{}
	// Two back-to-back 1-word requests at t=0: the second queues behind
	// the first's service slot.
	firstStart, first := c.access(0, 1, st)
	secondStart, second := c.access(0, 1, st)
	if firstStart != 0 || first != 0+9+90 {
		t.Errorf("first start/completion %d/%d, want 0/99", firstStart, first)
	}
	if secondStart != 9 || second != 9+9+90 {
		t.Errorf("second start/completion %d/%d, want 9/108 (queued)", secondStart, second)
	}
	// After the controller drains, a later request sees no queueing.
	thirdStart, third := c.access(1000, 4, st)
	if thirdStart != 1000 || third != 1000+12+90 {
		t.Errorf("third start/completion %d/%d, want 1000/1102", thirdStart, third)
	}
	if st.Busy[cg.MemSRAM] != 9+9+12 {
		t.Errorf("busy = %d, want 30", st.Busy[cg.MemSRAM])
	}
}

func TestALUSemantics(t *testing.T) {
	f := func(a, b uint32) bool {
		checks := []struct {
			op   cg.ALUOp
			want uint32
		}{
			{cg.AAdd, a + b},
			{cg.ASub, a - b},
			{cg.AAnd, a & b},
			{cg.AOr, a | b},
			{cg.AXor, a ^ b},
			{cg.AShl, a << (b & 31)},
			{cg.AShrU, a >> (b & 31)},
			{cg.AShrS, uint32(int32(a) >> (b & 31))},
			{cg.ANot, ^a},
			{cg.ANeg, -a},
			{cg.AMov, a},
		}
		for _, c := range checks {
			if aluEval(c.op, a, b) != c.want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCondSemantics(t *testing.T) {
	f := func(a, b uint32) bool {
		return condEval(cg.CEq, a, b) == (a == b) &&
			condEval(cg.CNe, a, b) == (a != b) &&
			condEval(cg.CLtU, a, b) == (a < b) &&
			condEval(cg.CLeU, a, b) == (a <= b) &&
			condEval(cg.CLtS, a, b) == (int32(a) < int32(b)) &&
			condEval(cg.CLeS, a, b) == (int32(a) <= int32(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// loopProg returns a program that increments a counter in scratch and
// forwards descriptors.
func loopProg() *cg.Program {
	return &cg.Program{Name: "loop", Code: []*cg.Instr{
		{Op: cg.IRingGet, Ring: cg.RingRx, Dst: 0, Dst2: 16, Class: cg.ClassPacketRing},
		{Op: cg.IBccImm, Cond: cg.CNe, SrcA: 0, Imm: cg.InvalidPktID, Target: 4},
		{Op: cg.ICtxArb},
		{Op: cg.IBr, Target: 0},
		{Op: cg.IMem, Level: cg.MemScratch, Addr: cg.NoPReg, AddrOff: 256,
			NWords: 1, Data: []cg.PReg{1}, Class: cg.ClassAppData},
		{Op: cg.IALUImm, ALU: cg.AAdd, Dst: 1, SrcA: 1, Imm: 1},
		{Op: cg.IMem, Level: cg.MemScratch, Store: true, Addr: cg.NoPReg, AddrOff: 256,
			NWords: 1, Data: []cg.PReg{1}, Class: cg.ClassAppData},
		{Op: cg.IRingPut, Ring: cg.RingTx, SrcA: 0, SrcB: 16, Dst: 1, Class: cg.ClassPacketRing},
		{Op: cg.IBr, Target: 0},
	}}
}

func runLoop(t *testing.T, seed int) *Machine {
	t.Helper()
	cfg := DefaultConfig()
	cfg.SampleInterval = 10_000
	cfg.RingSlots = 64
	m, err := New(cfg, WithMedia(&FixedDescMedia{}))
	if err != nil {
		t.Fatal(err)
	}
	m.GrowRing(cg.RingFree, 128)
	for i := 0; i < 100; i++ {
		m.Rings[cg.RingFree].Put(uint32(i), 64<<16|128)
	}
	m.LoadProgram(0, loopProg())
	m.LoadProgram(1, loopProg())
	if err := m.Run(200_000); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMachineForwardsAndCounts(t *testing.T) {
	m := runLoop(t, 1)
	st := m.Snapshot()
	if st.TxPackets == 0 {
		t.Fatal("nothing forwarded")
	}
	// The scratch counter was incremented once per forwarded packet
	// (remaining in-flight packets may have bumped it too).
	got := beWord(m.Scratch[256:])
	if uint64(got) < st.TxPackets {
		t.Errorf("counter %d < tx %d", got, st.TxPackets)
	}
	// ME-issued accounting: 2 app-scratch accesses per processed packet.
	app := st.MEAccesses[AccessKey{cg.MemScratch, cg.ClassAppData}]
	if app < 2*st.TxPackets {
		t.Errorf("app scratch %d < 2*tx %d", app, st.TxPackets)
	}
}

func TestSnapshotIsDetached(t *testing.T) {
	m := runLoop(t, 1)
	st := m.Snapshot()
	st.MEAccesses[AccessKey{cg.MemScratch, cg.ClassAppData}] = 0
	st.MEInstrs[0] = 0
	st.MEBusy[0] = 0
	again := m.Snapshot()
	if again.MEAccesses[AccessKey{cg.MemScratch, cg.ClassAppData}] == 0 {
		t.Error("mutating a snapshot map reached the machine's counters")
	}
	if again.MEInstrs[0] == 0 || again.MEBusy[0] == 0 {
		t.Error("mutating a snapshot slice reached the machine's counters")
	}
}

func TestMachineDeterminism(t *testing.T) {
	a := runLoop(t, 1).Snapshot()
	b := runLoop(t, 1).Snapshot()
	if a.TxPackets != b.TxPackets || a.Cycles != b.Cycles {
		t.Errorf("non-deterministic: %d/%d vs %d/%d packets/cycles",
			a.TxPackets, a.Cycles, b.TxPackets, b.Cycles)
	}
}

func TestPortRateCapsThroughput(t *testing.T) {
	m := runLoop(t, 1)
	st := m.Snapshot()
	gbps := st.Gbps(m.Cfg.ClockMHz)
	if gbps > m.Cfg.PortGbps*1.05 {
		t.Errorf("rate %.2f exceeds port capacity %.1f", gbps, m.Cfg.PortGbps)
	}
}

func TestTelemetrySampling(t *testing.T) {
	m := runLoop(t, 1) // SampleInterval 10k over 200k cycles
	snap := m.Metrics().Snapshot()
	util := snap.Series["me0.util"]
	if len(util) < 15 {
		t.Fatalf("me0.util has %d samples, want ~20", len(util))
	}
	var maxU float64
	for _, s := range util {
		if s.V < 0 || s.V > 1.0 {
			t.Errorf("utilization sample %v out of [0,1]", s.V)
		}
		if s.V > maxU {
			maxU = s.V
		}
	}
	if maxU == 0 {
		t.Error("ME0 ran a forwarding loop but sampled utilization stayed 0")
	}
	// Disabled MEs never execute.
	for _, s := range snap.Series["me7.util"] {
		if s.V != 0 {
			t.Errorf("disabled ME shows utilization %v", s.V)
		}
	}
	sat := snap.Series["ctrl.scratch.sat"]
	if len(sat) == 0 {
		t.Fatal("no scratch controller saturation samples")
	}
	var satSum float64
	for _, s := range sat {
		satSum += s.V
	}
	if satSum == 0 {
		t.Error("scratch controller served ring traffic but saturation stayed 0")
	}
	if len(snap.Series["ring0.occ"]) == 0 {
		t.Error("no ring occupancy samples")
	}
	// Aggregate stats agree in direction with the sampled series.
	st := m.Snapshot()
	if st.Utilization(0) <= 0 || st.Saturation(cg.MemScratch) <= 0 {
		t.Errorf("aggregate util=%v sat=%v, want positive",
			st.Utilization(0), st.Saturation(cg.MemScratch))
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.ClockMHz = 0 },
		func(c *Config) { c.ClockMHz = -600 },
		func(c *Config) { c.PortGbps = 0 },
		func(c *Config) { c.PortGbps = -1 },
		func(c *Config) { c.NumMEs = 0 },
		func(c *Config) { c.ThreadsPerME = -1 },
		func(c *Config) { c.ScratchBytes = 0 },
		func(c *Config) { c.SRAMLatency = -5 },
		func(c *Config) { c.CAMEntries = 0 },
		func(c *Config) { c.SampleInterval = -1 },
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New accepted an invalid config", i)
		}
	}
	cfg := DefaultConfig()
	cfg.NumRings = -1
	if _, err := New(cfg); err == nil {
		t.Error("New accepted a negative ring count")
	}
	cfg = DefaultConfig()
	cfg.RingSlots = 0
	if _, err := New(cfg); err == nil {
		t.Error("New accepted zero ring slots")
	}
}

func TestRxIntervalDegenerateConfigs(t *testing.T) {
	for _, c := range []Config{
		{PortGbps: 0, ClockMHz: 600},
		{PortGbps: -2, ClockMHz: 600},
		{PortGbps: 3, ClockMHz: 0},
		{PortGbps: 3, ClockMHz: -1},
	} {
		if iv := c.RxIntervalOrDefault(); iv != 64 {
			t.Errorf("config %+v: interval %d, want fallback 64", c, iv)
		}
	}
	// Absurdly fast port: interval clamps to >= 1 instead of 0.
	c := Config{PortGbps: 1e6, ClockMHz: 600}
	if iv := c.RxIntervalOrDefault(); iv < 1 {
		t.Errorf("interval %d, want >= 1", iv)
	}
}

func TestGbpsDegenerateClock(t *testing.T) {
	s := &Stats{Cycles: 1000, TxBits: 64_000}
	for _, clock := range []float64{0, -600} {
		if g := s.Gbps(clock); g != 0 {
			t.Errorf("Gbps(%v) = %v, want 0 (not NaN/Inf)", clock, g)
		}
	}
}

func TestCAMLRUReplacement(t *testing.T) {
	cfg := DefaultConfig()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	me := m.MEs[0]
	// Fill all 16 entries.
	for i := 0; i < 16; i++ {
		hit, entry := m.camLookup(me, uint32(100+i))
		if hit != 0 {
			t.Fatalf("unexpected hit for %d", i)
		}
		me.cam[entry] = camEntry{tag: uint32(100 + i), valid: true}
		m.camTouch(me, int(entry))
	}
	// All hits now.
	for i := 0; i < 16; i++ {
		if hit, _ := m.camLookup(me, uint32(100+i)); hit != 1 {
			t.Fatalf("miss for cached key %d", i)
		}
	}
	// Touch 100..114, leaving 115 LRU; a miss must evict entry of 115.
	for i := 0; i < 15; i++ {
		m.camLookup(me, uint32(100+i))
	}
	_, victim := m.camLookup(me, 999)
	if me.cam[victim].tag != 115 {
		t.Errorf("LRU victim holds %d, want 115", me.cam[victim].tag)
	}
}

func TestMemOutOfRangeFaults(t *testing.T) {
	cfg := DefaultConfig()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prog := &cg.Program{Name: "bad", Code: []*cg.Instr{
		{Op: cg.IMem, Level: cg.MemScratch, Addr: cg.NoPReg,
			AddrOff: uint32(cfg.ScratchBytes), NWords: 1, Data: []cg.PReg{0}},
		{Op: cg.IHalt},
	}}
	m.LoadProgram(0, prog)
	if err := m.Run(10_000); err == nil {
		t.Fatal("expected machine check for out-of-range access")
	}
}

func TestAtomicTestAndSet(t *testing.T) {
	cfg := DefaultConfig()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prog := &cg.Program{Name: "tas", Code: []*cg.Instr{
		{Op: cg.IMem, Level: cg.MemScratch, Addr: cg.NoPReg, AddrOff: 512,
			NWords: 1, Data: []cg.PReg{2}, Atomic: true, Class: cg.ClassAppData},
		{Op: cg.IHalt},
	}}
	m.LoadProgram(0, prog)
	if err := m.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if beWord(m.Scratch[512:]) != 1 {
		t.Errorf("test-and-set did not set the lock word")
	}
	if m.MEs[0].threads[0].regs[2] != 0 {
		t.Errorf("test-and-set returned %d, want previous value 0", m.MEs[0].threads[0].regs[2])
	}
}
