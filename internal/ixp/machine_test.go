package ixp

import (
	"testing"
	"testing/quick"

	"shangrila/internal/cg"
)

func TestRingFIFO(t *testing.T) {
	r := newRing(4)
	for i := uint32(0); i < 4; i++ {
		if !r.Put(i, i*10) {
			t.Fatalf("put %d failed", i)
		}
	}
	if r.Put(9, 9) {
		t.Fatal("put into full ring succeeded")
	}
	for i := uint32(0); i < 4; i++ {
		a, b, ok := r.Get()
		if !ok || a != i || b != i*10 {
			t.Fatalf("get %d = (%d,%d,%v)", i, a, b, ok)
		}
	}
	if _, _, ok := r.Get(); ok {
		t.Fatal("get from empty ring succeeded")
	}
	// Wrap-around.
	for round := 0; round < 10; round++ {
		r.Put(uint32(round), 0)
		if a, _, ok := r.Get(); !ok || a != uint32(round) {
			t.Fatalf("wrap round %d", round)
		}
	}
}

func TestControllerBandwidth(t *testing.T) {
	c := &controller{level: cg.MemSRAM, latency: 90, svcBase: 8, svcWord: 1}
	st := &Stats{}
	// Two back-to-back 1-word requests at t=0: the second queues behind
	// the first's service slot.
	first := c.access(0, 1, st)
	second := c.access(0, 1, st)
	if first != 0+9+90 {
		t.Errorf("first completion %d, want 99", first)
	}
	if second != 9+9+90 {
		t.Errorf("second completion %d, want 108 (queued)", second)
	}
	// After the controller drains, a later request sees no queueing.
	third := c.access(1000, 4, st)
	if third != 1000+12+90 {
		t.Errorf("third completion %d, want 1102", third)
	}
	if st.Busy[cg.MemSRAM] != 9+9+12 {
		t.Errorf("busy = %d, want 30", st.Busy[cg.MemSRAM])
	}
}

func TestALUSemantics(t *testing.T) {
	f := func(a, b uint32) bool {
		checks := []struct {
			op   cg.ALUOp
			want uint32
		}{
			{cg.AAdd, a + b},
			{cg.ASub, a - b},
			{cg.AAnd, a & b},
			{cg.AOr, a | b},
			{cg.AXor, a ^ b},
			{cg.AShl, a << (b & 31)},
			{cg.AShrU, a >> (b & 31)},
			{cg.AShrS, uint32(int32(a) >> (b & 31))},
			{cg.ANot, ^a},
			{cg.ANeg, -a},
			{cg.AMov, a},
		}
		for _, c := range checks {
			if aluEval(c.op, a, b) != c.want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCondSemantics(t *testing.T) {
	f := func(a, b uint32) bool {
		return condEval(cg.CEq, a, b) == (a == b) &&
			condEval(cg.CNe, a, b) == (a != b) &&
			condEval(cg.CLtU, a, b) == (a < b) &&
			condEval(cg.CLeU, a, b) == (a <= b) &&
			condEval(cg.CLtS, a, b) == (int32(a) < int32(b)) &&
			condEval(cg.CLeS, a, b) == (int32(a) <= int32(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// loopProg returns a program that increments a counter in scratch and
// forwards descriptors.
func loopProg() *cg.Program {
	return &cg.Program{Name: "loop", Code: []*cg.Instr{
		{Op: cg.IRingGet, Ring: cg.RingRx, Dst: 0, Dst2: 16, Class: cg.ClassPacketRing},
		{Op: cg.IBccImm, Cond: cg.CNe, SrcA: 0, Imm: cg.InvalidPktID, Target: 4},
		{Op: cg.ICtxArb},
		{Op: cg.IBr, Target: 0},
		{Op: cg.IMem, Level: cg.MemScratch, Addr: cg.NoPReg, AddrOff: 256,
			NWords: 1, Data: []cg.PReg{1}, Class: cg.ClassAppData},
		{Op: cg.IALUImm, ALU: cg.AAdd, Dst: 1, SrcA: 1, Imm: 1},
		{Op: cg.IMem, Level: cg.MemScratch, Store: true, Addr: cg.NoPReg, AddrOff: 256,
			NWords: 1, Data: []cg.PReg{1}, Class: cg.ClassAppData},
		{Op: cg.IRingPut, Ring: cg.RingTx, SrcA: 0, SrcB: 16, Dst: 1, Class: cg.ClassPacketRing},
		{Op: cg.IBr, Target: 0},
	}}
}

func runLoop(t *testing.T, seed int) *Machine {
	t.Helper()
	cfg := DefaultConfig()
	m := New(cfg, 3, 64)
	m.GrowRing(cg.RingFree, 128)
	for i := 0; i < 100; i++ {
		m.Rings[cg.RingFree].Put(uint32(i), 64<<16|128)
	}
	m.RxInject = func(m *Machine) bool {
		id, _, ok := m.Rings[cg.RingFree].Get()
		if !ok || m.Rings[cg.RingRx].Space() == 0 {
			if ok {
				m.Rings[cg.RingFree].Put(id, 0)
			}
			return false
		}
		m.Rings[cg.RingRx].Put(id, 64<<16|128)
		m.Stats.RxPackets++
		return true
	}
	m.OnTx = func(m *Machine, w0, w1 uint32) int {
		m.Rings[cg.RingFree].Put(w0, 64<<16|128)
		return 64
	}
	m.LoadProgram(0, loopProg())
	m.LoadProgram(1, loopProg())
	if err := m.Run(200_000); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMachineForwardsAndCounts(t *testing.T) {
	m := runLoop(t, 1)
	if m.Stats.TxPackets == 0 {
		t.Fatal("nothing forwarded")
	}
	// The scratch counter was incremented once per forwarded packet
	// (remaining in-flight packets may have bumped it too).
	got := beWord(m.Scratch[256:])
	if uint64(got) < m.Stats.TxPackets {
		t.Errorf("counter %d < tx %d", got, m.Stats.TxPackets)
	}
	// ME-issued accounting: 2 app-scratch accesses per processed packet.
	app := m.Stats.MEAccesses[AccessKey{cg.MemScratch, cg.ClassAppData}]
	if app < 2*m.Stats.TxPackets {
		t.Errorf("app scratch %d < 2*tx %d", app, m.Stats.TxPackets)
	}
}

func TestMachineDeterminism(t *testing.T) {
	a := runLoop(t, 1)
	b := runLoop(t, 1)
	if a.Stats.TxPackets != b.Stats.TxPackets || a.Stats.Cycles != b.Stats.Cycles {
		t.Errorf("non-deterministic: %d/%d vs %d/%d packets/cycles",
			a.Stats.TxPackets, a.Stats.Cycles, b.Stats.TxPackets, b.Stats.Cycles)
	}
}

func TestPortRateCapsThroughput(t *testing.T) {
	m := runLoop(t, 1)
	gbps := m.Stats.Gbps(m.Cfg.ClockMHz)
	if gbps > m.Cfg.PortGbps*1.05 {
		t.Errorf("rate %.2f exceeds port capacity %.1f", gbps, m.Cfg.PortGbps)
	}
}

func TestCAMLRUReplacement(t *testing.T) {
	cfg := DefaultConfig()
	m := New(cfg, 3, 8)
	me := m.MEs[0]
	// Fill all 16 entries.
	for i := 0; i < 16; i++ {
		hit, entry := m.camLookup(me, uint32(100+i))
		if hit != 0 {
			t.Fatalf("unexpected hit for %d", i)
		}
		me.cam[entry] = camEntry{tag: uint32(100 + i), valid: true}
		m.camTouch(me, int(entry))
	}
	// All hits now.
	for i := 0; i < 16; i++ {
		if hit, _ := m.camLookup(me, uint32(100+i)); hit != 1 {
			t.Fatalf("miss for cached key %d", i)
		}
	}
	// Touch 100..114, leaving 115 LRU; a miss must evict entry of 115.
	for i := 0; i < 15; i++ {
		m.camLookup(me, uint32(100+i))
	}
	_, victim := m.camLookup(me, 999)
	if me.cam[victim].tag != 115 {
		t.Errorf("LRU victim holds %d, want 115", me.cam[victim].tag)
	}
}

func TestMemOutOfRangeFaults(t *testing.T) {
	cfg := DefaultConfig()
	m := New(cfg, 3, 8)
	prog := &cg.Program{Name: "bad", Code: []*cg.Instr{
		{Op: cg.IMem, Level: cg.MemScratch, Addr: cg.NoPReg,
			AddrOff: uint32(cfg.ScratchBytes), NWords: 1, Data: []cg.PReg{0}},
		{Op: cg.IHalt},
	}}
	m.LoadProgram(0, prog)
	if err := m.Run(10_000); err == nil {
		t.Fatal("expected machine check for out-of-range access")
	}
}

func TestAtomicTestAndSet(t *testing.T) {
	cfg := DefaultConfig()
	m := New(cfg, 3, 8)
	prog := &cg.Program{Name: "tas", Code: []*cg.Instr{
		{Op: cg.IMem, Level: cg.MemScratch, Addr: cg.NoPReg, AddrOff: 512,
			NWords: 1, Data: []cg.PReg{2}, Atomic: true, Class: cg.ClassAppData},
		{Op: cg.IHalt},
	}}
	m.LoadProgram(0, prog)
	if err := m.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if beWord(m.Scratch[512:]) != 1 {
		t.Errorf("test-and-set did not set the lock word")
	}
	if m.MEs[0].threads[0].regs[2] != 0 {
		t.Errorf("test-and-set returned %d, want previous value 0", m.MEs[0].threads[0].regs[2])
	}
}
