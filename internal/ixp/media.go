package ixp

import "shangrila/internal/cg"

// FixedDescMedia is the simplest Media: a closed loop of identical
// fixed-size frames. Inject recycles buffer ids from the free ring into
// the Rx ring with a constant descriptor, paced at line rate for the
// frame size; Transmit returns ids to the free ring. Kernel
// micro-benchmarks (Figure 6, the hand-tuned comparison point) and
// machine tests use it; real traffic comes from the runtime's trace
// player or the workload engine.
type FixedDescMedia struct {
	FrameBytes int    // wire frame length; 0 means 64
	Desc       uint32 // descriptor second word; 0 means 64<<16|128
	MetaWords  int    // metadata DMA words billed per packet; 0 means 4
}

func (fd *FixedDescMedia) frame() int {
	if fd.FrameBytes <= 0 {
		return 64
	}
	return fd.FrameBytes
}

func (fd *FixedDescMedia) desc() uint32 {
	if fd.Desc == 0 {
		return 64<<16 | 128
	}
	return fd.Desc
}

// Inject moves one free buffer to the Rx ring. A full Rx ring or an
// empty free list is not a loss in the closed loop — every buffer is in
// flight — so it retries after a short idle gap instead of dropping.
func (fd *FixedDescMedia) Inject(m *Machine) float64 {
	if m.Rings[cg.RingRx].Space() == 0 {
		return 32
	}
	id, _, ok := m.Rings[cg.RingFree].Get()
	if !ok {
		return 32
	}
	frame := fd.frame()
	meta := fd.MetaWords
	if meta <= 0 {
		meta = 4
	}
	m.ChargeRxDMA(frame, meta)
	m.Rings[cg.RingRx].Put(id, fd.desc())
	m.Observer().RxPacket(id, frame)
	return m.Cfg.RxIntervalCycles(float64(frame * 8))
}

// Transmit recycles the buffer and reports the fixed frame length.
func (fd *FixedDescMedia) Transmit(m *Machine, w0, w1 uint32) int {
	m.Rings[cg.RingFree].Put(w0, fd.desc())
	return fd.frame()
}
