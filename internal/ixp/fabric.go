package ixp

// The inter-chip switch fabric's per-machine attachment point. In a
// multi-NPU line card (internal/cluster) every simulated IXP2400 sits
// behind a FabricPort: the cluster's flow-hash load balancer schedules
// arrivals into the port's frame source, and the port is the machine's
// Media — it paces deliveries exactly like the single-machine workload
// player, so a one-chip cluster is bit-identical to a plain run.

// FrameSource supplies a fabric port's scheduled arrivals. The cluster
// load balancer implements it per chip, sharding one deterministic
// workload stream by flow hash.
type FrameSource interface {
	// NextFrame pops the port's next scheduled arrival: the wire frame
	// length in bytes, the flow it belongs to, and the fractional-cycle
	// gap until the port's following arrival. ok=false means the source
	// is dry — drained, or permanently idle — and the port re-polls
	// after a fixed gap. Implementations may block briefly (a shared
	// generator behind a mutex) but must be deterministic: the frame
	// sequence a chip sees may not depend on how other chips interleave.
	NextFrame() (frameBytes, flow int, gap float64, ok bool)
}

// FabricSink materializes delivered frames into a machine's Rx path and
// recycles transmitted buffers — the chip's runtime. rts.Runtime
// implements it.
type FabricSink interface {
	// DeliverFrame copies one arriving frame into the machine (payload
	// selection by flow, descriptor push, Observer accounting). A false
	// return means the Rx path was saturated and the frame was counted
	// as a loss; the arrival is consumed either way (open loop).
	DeliverFrame(m *Machine, frameBytes, flow int) bool
	// Transmit consumes one descriptor popped from the Tx ring and
	// returns the frame length in bytes (Media.Transmit semantics).
	Transmit(m *Machine, w0, w1 uint32) int
}

// fabricPollGap is the idle re-poll spacing (cycles) when the frame
// source is dry. It has no observable effect: a dry poll neither
// delivers nor accounts anything.
const fabricPollGap = 64

// FabricPort joins one machine to the cluster switch fabric. It is the
// machine's Media: Inject pulls due frames from the source and hands
// them to the sink, returning the source's inter-arrival gap so the
// machine's fractional-cycle Rx pacing reproduces the scheduled arrival
// times; Transmit delegates recycling to the sink.
type FabricPort struct {
	src  FrameSource
	sink FabricSink

	// latency is the one-time delivery offset modelling the load
	// balancer and fabric traversal: the first pull is deferred by this
	// many cycles. Constant per-hop latency cancels out of inter-arrival
	// gaps, so an offset is the whole observable effect.
	latency  float64
	started  bool
	draining bool
}

// NewFabricPort builds a port delivering src's frames into sink, with
// the first delivery deferred by latencyCycles (0 = immediate).
func NewFabricPort(src FrameSource, sink FabricSink, latencyCycles int64) *FabricPort {
	return &FabricPort{src: src, sink: sink, latency: float64(latencyCycles)}
}

// SetSink installs the sink after construction (the chip runtime is
// built with the port as its Media, so the two reference each other).
func (p *FabricPort) SetSink(s FabricSink) { p.sink = s }

// Drain takes the port out of service: subsequent Inject calls deliver
// nothing, letting in-flight packets complete while the load balancer
// redistributes the chip's flows. Call it only while the machine is not
// running (the cluster scheduler drains at epoch barriers).
func (p *FabricPort) Drain() { p.draining = true }

// Draining reports whether the port has been drained.
func (p *FabricPort) Draining() bool { return p.draining }

// Inject implements Media.
func (p *FabricPort) Inject(m *Machine) float64 {
	if !p.started {
		p.started = true
		if p.latency > 0 {
			return p.latency
		}
	}
	if p.draining || p.sink == nil {
		return fabricPollGap
	}
	frameBytes, flow, gap, ok := p.src.NextFrame()
	if !ok {
		return fabricPollGap
	}
	p.sink.DeliverFrame(m, frameBytes, flow)
	return gap
}

// Transmit implements Media.
func (p *FabricPort) Transmit(m *Machine, w0, w1 uint32) int {
	return p.sink.Transmit(m, w0, w1)
}
