package ixp

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"shangrila/internal/cg"
)

// ChromeTracer records the event stream in the Chrome trace_event JSON
// format (the "JSON Array Format" with a traceEvents envelope), loadable
// in chrome://tracing and Perfetto. Thread dispatch windows and memory /
// ring accesses become complete ("X") slices on one track per hardware
// thread, ring occupancies become counter ("C") tracks, and Rx/Tx packet
// events become instants on the media tracks.
//
// Timestamps are microseconds (the format's unit), converted from cycles
// with the machine clock; durations under a cycle are preserved as
// fractional µs. Event capacity is bounded by Limit so a runaway trace
// cannot exhaust memory — WriteJSON reports how many events were dropped.
type ChromeTracer struct {
	clockMHz float64
	// Limit caps recorded events (DefaultTraceLimit when 0). Recording
	// stops at the cap; Dropped counts the excess.
	Limit   int
	events  []chromeEvent
	dropped int
	seen    map[int64]struct{} // pid/tid pairs needing metadata
}

// DefaultTraceLimit bounds a trace to ~2M events (hundreds of MB of JSON)
// unless the caller raises ChromeTracer.Limit.
const DefaultTraceLimit = 2 << 20

// Synthetic thread ids for the media engines and counter tracks.
const (
	rxTid      = 1000
	txTid      = 1001
	counterTid = 0
)

// chromeEvent is one trace_event record. Optional fields are omitted when
// zero so instants stay compact.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// NewChromeTracer converts cycles to µs with clockMHz (the machine's
// configured clock; a non-positive value falls back to 1 MHz, i.e. raw
// cycles as µs).
func NewChromeTracer(clockMHz float64) *ChromeTracer {
	if clockMHz <= 0 {
		clockMHz = 1
	}
	return &ChromeTracer{clockMHz: clockMHz, seen: map[int64]struct{}{}}
}

func (ct *ChromeTracer) us(cycles int64) float64 { return float64(cycles) / ct.clockMHz }

func (ct *ChromeTracer) tid(me, thread int) int { return me*64 + thread + 1 }

func (ct *ChromeTracer) add(ev chromeEvent) {
	limit := ct.Limit
	if limit <= 0 {
		limit = DefaultTraceLimit
	}
	if len(ct.events) >= limit {
		ct.dropped++
		return
	}
	ct.seen[int64(ev.Pid)<<32|int64(ev.Tid)] = struct{}{}
	ct.events = append(ct.events, ev)
}

// ThreadRun implements Tracer.
func (ct *ChromeTracer) ThreadRun(t int64, me, thread int, cycles int64, reason YieldReason) {
	ct.add(chromeEvent{
		Name: "run", Cat: "thread", Ph: "X",
		TS: ct.us(t), Dur: ct.us(cycles),
		Pid: 0, Tid: ct.tid(me, thread),
		Args: map[string]any{"yield": reason.String()},
	})
}

// MemAccess implements Tracer.
func (ct *ChromeTracer) MemAccess(issue int64, me, thread int, level cg.MemLevel, words int, start, done int64) {
	ct.add(chromeEvent{
		Name: fmt.Sprintf("%v[%dw]", level, words), Cat: "mem", Ph: "X",
		TS: ct.us(issue), Dur: ct.us(done - issue),
		Pid: 0, Tid: ct.tid(me, thread),
		Args: map[string]any{"queue_cycles": start - issue},
	})
}

// RingOp implements Tracer.
func (ct *ChromeTracer) RingOp(issue int64, me, thread int, ring int, kind RingOpKind, ok bool, occ int, start, done int64) {
	ct.add(chromeEvent{
		Name: fmt.Sprintf("ring%d %v", ring, kind), Cat: "ring", Ph: "X",
		TS: ct.us(issue), Dur: ct.us(done - issue),
		Pid: 0, Tid: ct.tid(me, thread),
		Args: map[string]any{"ok": ok, "occupancy": occ, "queue_cycles": start - issue},
	})
	ct.add(chromeEvent{
		Name: fmt.Sprintf("ring%d.occ", ring), Ph: "C",
		TS: ct.us(issue), Pid: 0, Tid: counterTid,
		Args: map[string]any{"entries": occ},
	})
}

// Rx implements Tracer.
func (ct *ChromeTracer) Rx(t int64, id uint32, frameBytes int, dropped bool) {
	name := "rx"
	if dropped {
		name = "rx-drop"
	}
	args := map[string]any{"bytes": frameBytes}
	if !dropped {
		args["buf"] = id
	}
	ct.add(chromeEvent{
		Name: name, Cat: "media", Ph: "i", S: "t",
		TS: ct.us(t), Pid: 0, Tid: rxTid, Args: args,
	})
}

// Tx implements Tracer.
func (ct *ChromeTracer) Tx(t int64, id uint32, frameBytes int, latency int64) {
	args := map[string]any{"bytes": frameBytes, "buf": id}
	if latency >= 0 {
		args["latency_cycles"] = latency
	}
	ct.add(chromeEvent{
		Name: "tx", Cat: "media", Ph: "i", S: "t",
		TS: ct.us(t), Pid: 0, Tid: txTid, Args: args,
	})
}

// Len returns the number of recorded events; Dropped the number lost to
// the cap.
func (ct *ChromeTracer) Len() int     { return len(ct.events) }
func (ct *ChromeTracer) Dropped() int { return ct.dropped }

// metadata builds the process/thread naming events viewers use for track
// labels, in deterministic tid order.
func (ct *ChromeTracer) metadata() []chromeEvent {
	meta := []chromeEvent{{
		Name: "process_name", Ph: "M", Pid: 0, Tid: 0,
		Args: map[string]any{"name": "ixp2400"},
	}}
	tids := make([]int, 0, len(ct.seen))
	for k := range ct.seen {
		tids = append(tids, int(k&0xffffffff))
	}
	sort.Ints(tids)
	for _, tid := range tids {
		var name string
		switch {
		case tid == counterTid:
			continue
		case tid == rxTid:
			name = "Rx engine"
		case tid == txTid:
			name = "Tx engine"
		default:
			name = fmt.Sprintf("ME%d/T%d", (tid-1)/64, (tid-1)%64)
		}
		meta = append(meta, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: tid,
			Args: map[string]any{"name": name},
		}, chromeEvent{
			Name: "thread_sort_index", Ph: "M", Pid: 0, Tid: tid,
			Args: map[string]any{"sort_index": tid},
		})
	}
	return meta
}

// chromeTraceDoc is the trace_event envelope ("JSON Object Format").
type chromeTraceDoc struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// WriteJSON writes the whole trace as one trace_event document. Events
// appear in emission (simulation) order after the naming metadata, so
// identical runs produce identical bytes.
func (ct *ChromeTracer) WriteJSON(w io.Writer) error {
	doc := chromeTraceDoc{
		TraceEvents:     append(ct.metadata(), ct.events...),
		DisplayTimeUnit: "ns",
		OtherData: map[string]any{
			"clock_mhz": ct.clockMHz,
			"events":    len(ct.events),
			"dropped":   ct.dropped,
		},
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
