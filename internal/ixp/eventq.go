package ixp

// The simulator's event core. It replaces the earlier container/heap of
// *event, whose every schedule allocated one event box and whose every
// compare went through an interface method table. Events are plain values
// and the structure is a hierarchical timing wheel:
//
//   - A wheel of wheelSize buckets covers the near future [base,
//     base+wheelSize). Pushing appends to the bucket time&wheelMask — O(1),
//     no comparisons — and because simulated time partitions the window,
//     each live bucket holds events of exactly one timestamp, already in
//     seq order (the schedule counter is monotone). Popping takes the
//     current bucket's head and advances the cursor across empty buckets;
//     event density makes that scan O(1) amortized.
//
//   - Events beyond the window (deep controller backlogs, far-off samples)
//     go to a four-ary min-heap of values, the `far` overflow. Whenever the
//     wheel's base advances, far events entering the window migrate into
//     their buckets. Migration happens strictly before any same-timestamp
//     event can be pushed directly (a direct push at time T requires T
//     inside the window, and the window only moves forward when the base
//     advances — exactly when migration runs), so bucket seq order is
//     preserved.
//
//   - Events scheduled before base (a control-plane At() aimed at the
//     past) go to the `past` heap, which peek consults first. In steady
//     state it is empty and costs one length check per peek.
//
// Ordering guarantee: pops are strictly ascending in (time, seq), exactly
// as a single min-heap over the same keys would produce — every
// determinism property of the simulation is independent of this layout.

import "math/bits"

// event kinds
type evKind uint8

const (
	evActivate evKind = iota
	evReady
	evRxTick
	evTxTick
	evXScale
	evCallback
	evSample
)

// event is pointer-free by design: callback closures live in the
// machine's callback registry and events carry only their index (cb).
// Pointer-free events mean no write barriers on the wheel's hot push
// path and nothing for the garbage collector to scan in the buckets.
type event struct {
	time   int64
	seq    int64
	kind   evKind
	me     int32
	thread int32
	cb     int32 // callback registry index; meaningful for evCallback only
}

// before is the queue order: earliest time first, schedule order breaking
// ties.
func (e *event) before(o *event) bool {
	if e.time != o.time {
		return e.time < o.time
	}
	return e.seq < o.seq
}

const (
	wheelSize = 4096 // covers typical memory/ring/media horizons (≤ ~2k cycles)
	wheelMask = wheelSize - 1
)

// bucket is one wheel slot: a FIFO of same-timestamp events in seq order.
// head indexes the next event to pop; the slice is reset (capacity kept)
// when it drains, so steady-state operation does not allocate.
type bucket struct {
	ev   []event
	head int
}

// eventQueue is the timing wheel plus its two heap fallbacks. The zero
// value is an empty queue ready for use (buckets are sized on first push).
type eventQueue struct {
	base    int64 // timestamp of buckets[cursor]; no unpopped event is earlier (except `past`)
	cursor  int   // bucket index of base
	inWheel int   // events currently in buckets
	buckets []bucket
	// occ is the bucket-occupancy bitmap (bit i ⇔ buckets[i] non-empty):
	// locate skips empty stretches a word at a time instead of walking
	// buckets one by one.
	occ  [wheelSize / 64]uint64
	far  heap4 // time >= base+wheelSize
	past heap4 // time < base (control-plane At aimed backward)
	n    int   // total events across wheel and heaps
}

func (q *eventQueue) len() int { return q.n }

// push inserts e. Amortized zero-alloc: buckets and heap arrays retain
// their capacity across pops.
func (q *eventQueue) push(e event) {
	q.n++
	if q.buckets == nil {
		q.buckets = make([]bucket, wheelSize)
		q.base = e.time
		q.cursor = int(e.time) & wheelMask
	}
	switch d := e.time - q.base; {
	case d < 0:
		q.past.push(e)
	case d >= wheelSize:
		q.far.push(e)
	default:
		idx := int(e.time) & wheelMask
		b := &q.buckets[idx]
		b.ev = append(b.ev, e)
		q.occ[idx>>6] |= 1 << uint(idx&63)
		q.inWheel++
	}
}

// locate advances the wheel to the earliest pending event and returns its
// bucket. It only moves the cursor/base bookkeeping — no event is removed
// — so peek and pop share it. Callers guarantee the wheel or overflow is
// non-empty and the past heap is empty.
func (q *eventQueue) locate() *bucket {
	if q.inWheel == 0 {
		// Everything pending is beyond the window: jump the window to the
		// overflow's earliest event, then migrate the events it reaches.
		q.base = q.far.ev[0].time
		q.cursor = int(q.base) & wheelMask
		q.migrate()
	}
	// Jump straight to the next occupied bucket. The jump is sound because
	// every far event's time is at least base+wheelSize, which is beyond any
	// bucket still in the window — no far event can be earlier than the
	// bucket the bitmap finds. Migration runs once after the base advances,
	// and the events it admits land at the far end of the window, ahead of
	// the cursor.
	idx := q.nextOcc(q.cursor)
	if d := (idx - q.cursor) & wheelMask; d > 0 {
		q.base += int64(d)
		q.cursor = idx
		if q.far.len() > 0 && q.far.ev[0].time < q.base+wheelSize {
			q.migrate()
		}
	}
	return &q.buckets[idx]
}

// nextOcc returns the first occupied bucket at or cyclically after c.
// Callers guarantee the wheel is non-empty.
func (q *eventQueue) nextOcc(c int) int {
	w := c >> 6
	if rest := q.occ[w] >> uint(c&63); rest != 0 {
		return c + bits.TrailingZeros64(rest)
	}
	for i := 1; i <= len(q.occ); i++ {
		w2 := (w + i) & (len(q.occ) - 1)
		if word := q.occ[w2]; word != 0 {
			return w2<<6 + bits.TrailingZeros64(word)
		}
	}
	return c // unreachable while inWheel > 0
}

// drained resets a bucket the caller just emptied and clears its
// occupancy bit. The cursor still points at it.
func (q *eventQueue) drained(b *bucket) {
	b.ev = b.ev[:0]
	b.head = 0
	q.occ[q.cursor>>6] &^= 1 << uint(q.cursor&63)
}

// migrate moves overflow events that entered the window into their
// buckets. The far heap yields them in (time, seq) order and no
// same-timestamp event can have been pushed directly while they were in
// overflow (its time was outside the window until now), so appending
// preserves each bucket's seq order.
func (q *eventQueue) migrate() {
	horizon := q.base + wheelSize
	for q.far.len() > 0 && q.far.ev[0].time < horizon {
		e := q.far.pop()
		idx := int(e.time) & wheelMask
		b := &q.buckets[idx]
		b.ev = append(b.ev, e)
		q.occ[idx>>6] |= 1 << uint(idx&63)
		q.inWheel++
	}
}

// peek returns the earliest event without removing it, or nil when the
// queue is empty. The pointer is into the queue's backing storage: it is
// invalidated by the next push or pop.
func (q *eventQueue) peek() *event {
	if q.past.len() > 0 {
		return &q.past.ev[0]
	}
	if q.n == 0 {
		return nil
	}
	b := q.locate()
	return &b.ev[b.head]
}

// pop removes and returns the earliest event.
func (q *eventQueue) pop() event {
	if q.past.len() > 0 {
		q.n--
		return q.past.pop()
	}
	b := q.locate()
	e := b.ev[b.head]
	b.head++
	if b.head == len(b.ev) {
		q.drained(b)
	}
	q.inWheel--
	q.n--
	return e
}

// popUntil removes and returns the earliest event if its time is at most
// deadline; otherwise it leaves the queue untouched and reports false.
// This is the event loop's single entry: one locate per event instead of
// a peek/pop pair.
func (q *eventQueue) popUntil(deadline int64) (event, bool) {
	if q.past.len() > 0 {
		if q.past.ev[0].time > deadline {
			return event{}, false
		}
		q.n--
		return q.past.pop(), true
	}
	if q.n == 0 {
		return event{}, false
	}
	b := q.locate()
	e := b.ev[b.head]
	if e.time > deadline {
		return event{}, false
	}
	b.head++
	if b.head == len(b.ev) {
		q.drained(b)
	}
	q.inWheel--
	q.n--
	return e, true
}

// heap4 is a four-ary min-heap of event values ordered by (time, seq),
// used for the rare events outside the wheel's window.
type heap4 struct {
	ev []event
}

func (h *heap4) len() int { return len(h.ev) }

func (h *heap4) push(e event) {
	h.ev = append(h.ev, e)
	h.siftUp(len(h.ev) - 1)
}

func (h *heap4) pop() event {
	ev := h.ev
	top := ev[0]
	n := len(ev) - 1
	ev[0] = ev[n]
	h.ev = ev[:n]
	if n > 1 {
		h.siftDown(0)
	}
	return top
}

func (h *heap4) siftUp(i int) {
	ev := h.ev
	e := ev[i]
	for i > 0 {
		p := (i - 1) / 4
		if !e.before(&ev[p]) {
			break
		}
		ev[i] = ev[p]
		i = p
	}
	ev[i] = e
}

func (h *heap4) siftDown(i int) {
	ev := h.ev
	n := len(ev)
	e := ev[i]
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		least := c
		for k := c + 1; k < end; k++ {
			if ev[k].before(&ev[least]) {
				least = k
			}
		}
		if !ev[least].before(&e) {
			break
		}
		ev[i] = ev[least]
		i = least
	}
	ev[i] = e
}
