package ixp

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"shangrila/internal/cg"
)

// decodedTrace mirrors the trace_event JSON Object Format envelope with
// events kept generic so the test validates the actual wire fields.
type decodedTrace struct {
	TraceEvents     []map[string]any `json:"traceEvents"`
	DisplayTimeUnit string           `json:"displayTimeUnit"`
	OtherData       map[string]any   `json:"otherData"`
}

// TestChromeTraceFormat runs a traced forwarding loop, exports it, and
// validates the document against the trace_event format: a traceEvents
// array whose records carry name/ph/ts/pid/tid, duration events with
// non-negative dur, instants with a scope, and naming metadata for every
// thread track that appears.
func TestChromeTraceFormat(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RingSlots = 64
	m, err := New(cfg, WithMedia(&FixedDescMedia{}))
	if err != nil {
		t.Fatal(err)
	}
	ct := NewChromeTracer(cfg.ClockMHz)
	m.Observer().SetTracer(ct)
	m.GrowRing(cg.RingFree, 128)
	for i := 0; i < 100; i++ {
		m.Rings[cg.RingFree].Put(uint32(i), 64<<16|128)
	}
	m.LoadProgram(0, loopProg())
	if err := m.Run(50_000); err != nil {
		t.Fatal(err)
	}
	if ct.Len() == 0 || ct.Dropped() != 0 {
		t.Fatalf("recorded %d events, dropped %d", ct.Len(), ct.Dropped())
	}

	var buf bytes.Buffer
	if err := ct.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc decodedTrace
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit %q", doc.DisplayTimeUnit)
	}

	phases := map[string]int{}
	namedTids := map[float64]bool{}
	seenTids := map[float64]bool{}
	for i, ev := range doc.TraceEvents {
		name, _ := ev["name"].(string)
		ph, _ := ev["ph"].(string)
		if name == "" || ph == "" {
			t.Fatalf("event %d missing name/ph: %v", i, ev)
		}
		phases[ph]++
		switch ph {
		case "M": // metadata: no timestamp required
			if name == "thread_name" {
				namedTids[ev["tid"].(float64)] = true
			}
			continue
		case "X", "i", "C":
		default:
			t.Fatalf("event %d has unknown phase %q", i, ph)
		}
		ts, ok := ev["ts"].(float64)
		if !ok || ts < 0 || math.IsNaN(ts) || math.IsInf(ts, 0) {
			t.Fatalf("event %d has bad ts %v", i, ev["ts"])
		}
		if _, ok := ev["pid"].(float64); !ok {
			t.Fatalf("event %d missing pid", i)
		}
		tid, ok := ev["tid"].(float64)
		if !ok {
			t.Fatalf("event %d missing tid", i)
		}
		seenTids[tid] = true
		if ph == "X" {
			if dur, ok := ev["dur"].(float64); ok && dur < 0 {
				t.Fatalf("event %d negative dur %v", i, dur)
			}
		}
		if ph == "i" {
			if s, _ := ev["s"].(string); s == "" {
				t.Fatalf("instant %d missing scope", i)
			}
		}
	}
	// The run exercised every event kind.
	for _, ph := range []string{"X", "i", "C", "M"} {
		if phases[ph] == 0 {
			t.Errorf("no %q events in trace (phases: %v)", ph, phases)
		}
	}
	// Every thread track (counter track 0 excepted) is named for viewers.
	for tid := range seenTids {
		if tid != counterTid && !namedTids[tid] {
			t.Errorf("tid %v has events but no thread_name metadata", tid)
		}
	}
	if doc.OtherData["clock_mhz"].(float64) != cfg.ClockMHz {
		t.Errorf("otherData clock_mhz = %v, want %v", doc.OtherData["clock_mhz"], cfg.ClockMHz)
	}
}

// TestChromeTraceDeterministicAndBounded: identical runs export identical
// bytes, and the event cap drops the excess instead of growing without
// bound.
func TestChromeTraceDeterministic(t *testing.T) {
	export := func() []byte {
		cfg := DefaultConfig()
		cfg.RingSlots = 64
		m, err := New(cfg, WithMedia(&FixedDescMedia{}))
		if err != nil {
			t.Fatal(err)
		}
		ct := NewChromeTracer(cfg.ClockMHz)
		m.Observer().SetTracer(ct)
		m.GrowRing(cg.RingFree, 128)
		for i := 0; i < 100; i++ {
			m.Rings[cg.RingFree].Put(uint32(i), 64<<16|128)
		}
		m.LoadProgram(0, loopProg())
		if err := m.Run(30_000); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := ct.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := export(), export()
	if !bytes.Equal(a, b) {
		t.Error("identical runs produced different trace bytes")
	}
}

func TestChromeTraceLimit(t *testing.T) {
	ct := NewChromeTracer(600)
	ct.Limit = 8
	for i := 0; i < 20; i++ {
		ct.ThreadRun(int64(i*10), 0, 0, 5, YieldCtx)
	}
	if ct.Len() != 8 {
		t.Errorf("recorded %d events, want the cap 8", ct.Len())
	}
	if ct.Dropped() != 12 {
		t.Errorf("dropped %d, want 12", ct.Dropped())
	}
	var buf bytes.Buffer
	if err := ct.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc decodedTrace
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.OtherData["dropped"].(float64) != 12 {
		t.Errorf("otherData dropped = %v, want 12", doc.OtherData["dropped"])
	}
}
