package ixp

import (
	"fmt"
	"strings"

	"shangrila/internal/cg"
)

// StallTracer folds the machine's event stream into a per-ME × per-thread
// stall breakdown: every simulated cycle of the measurement window is
// attributed to exactly one of compute, per-level memory latency,
// per-level memory-controller queueing (the bandwidth-saturation signal),
// ring backpressure, or idle. The attribution is conservative by
// construction — Report's categories sum exactly to the window — which is
// what lets the paper's causal claims ("flattening is bandwidth
// saturation") be asserted directly instead of inferred from rates.
//
// Attribution rules (see DESIGN.md "Observability"):
//
//   - A thread dispatch window is compute. Overlapping windows of one ME
//     (a model artifact of instantaneous dispatch) are counted once.
//   - A gap in which no thread of an ME runs is a stall. It is attributed
//     to the blocked access whose completion ends the gap: the part of
//     the gap overlapping that access's controller-queue wait is
//     queueing, the remainder is latency.
//   - A stall ended by a *failed* ring push is ring backpressure; one
//     ended by a failed (empty) ring pop is idle — the ME had nothing to
//     do. Successful ring ops attribute like scratch memory accesses.
//   - Gaps no pending access explains are the 1-cycle context switch
//     (compute) or genuine idleness.
type StallTracer struct {
	start   int64 // window origin (cycle of the last ResetWindow)
	threads int
	mes     []meAcc
}

// stall categories for pending-wake attribution.
type stallCat uint8

const (
	catMem stallCat = iota // level in pendingWake.level
	catRing
	catIdle
)

// pendingWake is one blocked thread's expected resume: the access that
// blocked it, split into the controller-queue wait [issue, svcStart) and
// the service+latency remainder [svcStart, ready).
type pendingWake struct {
	valid    bool
	cat      stallCat
	level    cg.MemLevel
	issue    int64
	svcStart int64
	ready    int64
}

type threadAcc struct {
	compute int64
	memLat  [4]int64
	memQ    [4]int64
	ring    int64
	idle    int64
}

type meAcc struct {
	covered int64 // accounted-up-to cycle (compute coverage frontier)
	compute int64
	memLat  [4]int64
	memQ    [4]int64
	ring    int64
	idle    int64
	pend    []pendingWake
	// prev holds each thread's last *completed* wake, displaced when the
	// woken thread issues its next access before its dispatch window is
	// emitted (the machine reports MemAccess before the enclosing
	// ThreadRun). The gap that wake ended still needs it for attribution.
	prev    []pendingWake
	threads []threadAcc
}

// NewStallTracer sizes the tracer for a machine: one accumulator per ME
// and per hardware thread. Attach it before running (warm-up included);
// Machine.ResetStats restarts its window alongside the statistics.
func NewStallTracer(numMEs, threadsPerME int) *StallTracer {
	st := &StallTracer{threads: threadsPerME, mes: make([]meAcc, numMEs)}
	for i := range st.mes {
		st.mes[i].pend = make([]pendingWake, threadsPerME)
		st.mes[i].prev = make([]pendingWake, threadsPerME)
		st.mes[i].threads = make([]threadAcc, threadsPerME)
	}
	return st
}

// ResetWindow restarts the breakdown at cycle now, keeping in-flight
// block records so stalls straddling the warm-up boundary attribute
// correctly. Machine.ResetStats calls it through the windowResetter hook.
func (st *StallTracer) ResetWindow(now int64) {
	st.start = now
	for i := range st.mes {
		a := &st.mes[i]
		a.covered = now
		a.compute, a.ring, a.idle = 0, 0, 0
		a.memLat, a.memQ = [4]int64{}, [4]int64{}
		for t := range a.threads {
			a.threads[t] = threadAcc{}
		}
	}
}

// ctxSwitchCycles is the dispatch overhead between thread windows; gaps of
// at most this length with no blocked access to blame are charged to
// compute (the ME's arbiter is working, not stalled).
const ctxSwitchCycles = 1

func overlap(a0, a1, b0, b1 int64) int64 {
	lo, hi := a0, a1
	if b0 > lo {
		lo = b0
	}
	if b1 < hi {
		hi = b1
	}
	if hi < lo {
		return 0
	}
	return hi - lo
}

// attributeGap charges the stall [g0, g1) to the access whose completion
// ends it: the earliest wake strictly inside (g0, g1], considering both
// in-flight accesses and each thread's last completed one (a wake that
// ended the gap may already be displaced by the woken thread's next
// access). With no such wake, short gaps are the context switch and long
// ones are idle.
func (a *meAcc) attributeGap(g0, g1 int64) {
	if g1 <= g0 {
		return
	}
	var p pendingWake
	for i := range a.pend {
		for _, c := range [2]pendingWake{a.pend[i], a.prev[i]} {
			if c.valid && c.ready > g0 && (!p.valid || c.ready < p.ready) {
				p = c
			}
		}
	}
	gap := g1 - g0
	if !p.valid || p.ready > g1 {
		if gap <= ctxSwitchCycles {
			a.compute += gap
		} else {
			a.idle += gap
		}
		return
	}
	switch p.cat {
	case catRing:
		a.ring += gap
	case catIdle:
		a.idle += gap
	default:
		q := overlap(g0, g1, p.issue, p.svcStart)
		a.memQ[p.level] += q
		a.memLat[p.level] += gap - q
	}
}

// ThreadRun implements Tracer.
func (st *StallTracer) ThreadRun(t int64, me, thread int, cycles int64, reason YieldReason) {
	if me >= len(st.mes) {
		return
	}
	a := &st.mes[me]
	if t > a.covered {
		a.attributeGap(a.covered, t)
		a.covered = t
	}
	// Count each cycle of compute once even when dispatch windows overlap
	// (instantaneous-dispatch artifact) or start before the window origin.
	end := t + cycles
	if run := end - a.covered; run > 0 {
		a.compute += run
		a.covered = end
	}
	if thread < len(a.threads) {
		a.threads[thread].compute += cycles
		// Clear the wake that explained this thread's last stall. An access
		// issued *inside* this window (issue > t: the machine emits MemAccess
		// before the enclosing ThreadRun) is the thread's next block — keep it.
		if p := &a.pend[thread]; p.valid && p.issue <= t {
			p.valid = false
		}
	}
}

// MemAccess implements Tracer.
func (st *StallTracer) MemAccess(issue int64, me, thread int, level cg.MemLevel, words int, start, done int64) {
	if me >= len(st.mes) || thread >= st.threads {
		return
	}
	a := &st.mes[me]
	if p := a.pend[thread]; p.valid && p.ready <= issue {
		a.prev[thread] = p
	}
	a.pend[thread] = pendingWake{valid: true, cat: catMem, level: level,
		issue: issue, svcStart: start, ready: done}
	a.threads[thread].memQ[level] += start - issue
	a.threads[thread].memLat[level] += done - start
}

// RingOp implements Tracer.
func (st *StallTracer) RingOp(issue int64, me, thread int, ring int, kind RingOpKind, ok bool, occ int, start, done int64) {
	if me >= len(st.mes) || thread >= st.threads {
		return
	}
	a := &st.mes[me]
	p := pendingWake{valid: true, cat: catMem, level: cg.MemScratch,
		issue: issue, svcStart: start, ready: done}
	th := &a.threads[thread]
	switch {
	case !ok && kind == RingPush:
		p.cat = catRing
		th.ring += done - issue
	case !ok && kind == RingPop:
		p.cat = catIdle
		th.idle += done - issue
	default:
		th.memQ[cg.MemScratch] += start - issue
		th.memLat[cg.MemScratch] += done - start
	}
	if old := a.pend[thread]; old.valid && old.ready <= issue {
		a.prev[thread] = old
	}
	a.pend[thread] = p
}

// Rx implements Tracer (media events carry no ME stall information).
func (st *StallTracer) Rx(t int64, id uint32, frameBytes int, dropped bool) {}

// Tx implements Tracer.
func (st *StallTracer) Tx(t int64, id uint32, frameBytes int, latency int64) {}

// ---------------------------------------------------------------------------
// Reporting

// levelKeys orders the controller levels in breakdown maps.
var levelKeys = []cg.MemLevel{cg.MemScratch, cg.MemSRAM, cg.MemDRAM}

// Stall is one accounting row: cycles by category. MemLatency and
// MemQueue are keyed by controller level name (scratch/sram/dram); fixed
// keys make the JSON canonical.
type Stall struct {
	Cycles     int64            `json:"cycles"`
	Compute    int64            `json:"compute"`
	MemLatency map[string]int64 `json:"mem_latency"`
	MemQueue   map[string]int64 `json:"mem_queue"`
	Ring       int64            `json:"ring_backpressure"`
	Idle       int64            `json:"idle"`
}

// Total returns the sum of every category (== Cycles for conservative
// rows).
func (s *Stall) Total() int64 {
	t := s.Compute + s.Ring + s.Idle
	for _, v := range s.MemLatency {
		t += v
	}
	for _, v := range s.MemQueue {
		t += v
	}
	return t
}

// StallShare returns category cycles as a fraction of the row's total
// window (0 on an empty row). Categories: "compute", "ring", "idle",
// "mem_latency", "mem_queue", or a level-qualified "mem_queue.dram" /
// "mem_latency.sram" form.
func (s *Stall) StallShare(category string) float64 {
	if s.Cycles == 0 {
		return 0
	}
	var v int64
	switch {
	case category == "compute":
		v = s.Compute
	case category == "ring":
		v = s.Ring
	case category == "idle":
		v = s.Idle
	case category == "mem_latency":
		for _, x := range s.MemLatency {
			v += x
		}
	case category == "mem_queue":
		for _, x := range s.MemQueue {
			v += x
		}
	case strings.HasPrefix(category, "mem_latency."):
		v = s.MemLatency[strings.TrimPrefix(category, "mem_latency.")]
	case strings.HasPrefix(category, "mem_queue."):
		v = s.MemQueue[strings.TrimPrefix(category, "mem_queue.")]
	}
	return float64(v) / float64(s.Cycles)
}

// ThreadStall is one hardware thread's accounting. Thread rows attribute
// each thread's own blocked intervals; they overlap in time (threads
// block concurrently), so they do not sum to the ME window — conservation
// holds at the ME level.
type ThreadStall struct {
	Thread int `json:"thread"`
	Stall
}

// MEStall is one microengine's conservative breakdown plus its program
// label (the aggregate's PPF names, set by the runtime loader).
type MEStall struct {
	ME      int           `json:"me"`
	Label   string        `json:"label,omitempty"`
	Threads []ThreadStall `json:"threads,omitempty"`
	Stall
}

// StallReport is the full machine breakdown over one measurement window.
type StallReport struct {
	// Cycles is the window length; every ME row's categories sum to it.
	Cycles int64     `json:"cycles"`
	MEs    []MEStall `json:"mes"`
}

func stallRow(cycles, compute int64, memLat, memQ [4]int64, ring, idle int64) Stall {
	s := Stall{
		Cycles:     cycles,
		Compute:    compute,
		Ring:       ring,
		Idle:       idle,
		MemLatency: make(map[string]int64, len(levelKeys)),
		MemQueue:   make(map[string]int64, len(levelKeys)),
	}
	for _, lvl := range levelKeys {
		s.MemLatency[lvl.String()] = memLat[lvl]
		s.MemQueue[lvl.String()] = memQ[lvl]
	}
	return s
}

// Report closes the window at cycle now and returns the breakdown.
// labels[i] (optional) names ME i's program. The report is detached: the
// tracer keeps accumulating and can report again later.
func (st *StallTracer) Report(now int64, labels []string) *StallReport {
	window := now - st.start
	if window < 0 {
		window = 0
	}
	rep := &StallReport{Cycles: window}
	for i := range st.mes {
		a := st.mes[i]
		// Account the tail gap up to the window edge.
		compute, memLat, memQ, ring, idle := a.compute, a.memLat, a.memQ, a.ring, a.idle
		if a.covered < now {
			tail := meAcc{covered: a.covered, pend: a.pend, prev: a.prev}
			tail.attributeGap(a.covered, now)
			for _, lvl := range levelKeys {
				memLat[lvl] += tail.memLat[lvl]
				memQ[lvl] += tail.memQ[lvl]
			}
			compute += tail.compute
			ring += tail.ring
			idle += tail.idle
		}
		// Conservation: a dispatch window straddling the deadline extends
		// past it (the machine trims Stats.Cycles, not the window), so trim
		// the overrun from compute; any unaccounted remainder is idle.
		total := compute + ring + idle
		for _, lvl := range levelKeys {
			total += memLat[lvl] + memQ[lvl]
		}
		if over := total - window; over > 0 {
			if over > compute {
				over = compute
			}
			compute -= over
		} else if over < 0 {
			idle += -over
		}
		row := MEStall{ME: i, Stall: stallRow(window, compute, memLat, memQ, ring, idle)}
		if i < len(labels) {
			row.Label = labels[i]
		}
		for t := range a.threads {
			th := a.threads[t]
			row.Threads = append(row.Threads, ThreadStall{
				Thread: t,
				Stall:  stallRow(window, th.compute, th.memLat, th.memQ, th.ring, th.idle),
			})
		}
		rep.MEs = append(rep.MEs, row)
	}
	return rep
}

// Totals sums the per-ME rows (Cycles becomes window × MEs).
func (r *StallReport) Totals() Stall {
	var memLat, memQ [4]int64
	var compute, ring, idle, cycles int64
	for _, me := range r.MEs {
		cycles += me.Cycles
		compute += me.Compute
		ring += me.Ring
		idle += me.Idle
		for _, lvl := range levelKeys {
			memLat[lvl] += me.MemLatency[lvl.String()]
			memQ[lvl] += me.MemQueue[lvl.String()]
		}
	}
	return stallRow(cycles, compute, memLat, memQ, ring, idle)
}

// ActiveTotals sums only MEs that executed at least one cycle — the
// packet-processing engines, excluding disabled (all-idle) ones whose
// windows would dilute stall shares.
func (r *StallReport) ActiveTotals() Stall {
	var memLat, memQ [4]int64
	var compute, ring, idle, cycles int64
	for _, me := range r.MEs {
		if me.Compute == 0 {
			continue
		}
		cycles += me.Cycles
		compute += me.Compute
		ring += me.Ring
		idle += me.Idle
		for _, lvl := range levelKeys {
			memLat[lvl] += me.MemLatency[lvl.String()]
			memQ[lvl] += me.MemQueue[lvl.String()]
		}
	}
	return stallRow(cycles, compute, memLat, memQ, ring, idle)
}

// ThreadTotals sums the thread rows of active MEs. Where the ME-level
// rows answer "what was the engine doing" (conservatively: a starved
// engine is idle even while some threads sit in controller queues), the
// thread-level sum answers "what blocks the work that exists": each
// thread's queueing time is counted whether or not a sibling thread hid
// it. Cycles becomes window × active threads, so StallShare on the result
// is a fraction of thread-cycles. This is the row the bandwidth-saturation
// claims read — controller queueing a concurrency-hiding ME view would
// mask.
func (r *StallReport) ThreadTotals() Stall {
	var memLat, memQ [4]int64
	var compute, ring, idle, cycles int64
	for _, me := range r.MEs {
		if me.Compute == 0 {
			continue
		}
		for _, th := range me.Threads {
			cycles += me.Cycles
			compute += th.Compute
			ring += th.Ring
			idle += th.Idle
			for _, lvl := range levelKeys {
				memLat[lvl] += th.MemLatency[lvl.String()]
				memQ[lvl] += th.MemQueue[lvl.String()]
			}
		}
	}
	return stallRow(cycles, compute, memLat, memQ, ring, idle)
}

// String renders the breakdown as an aligned table of percentages.
func (r *StallReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stall breakdown (%d cycles/ME)\n", r.Cycles)
	fmt.Fprintf(&b, "%-4s %8s %8s %8s %8s %8s %8s %8s  %s\n",
		"ME", "compute", "scr q", "sram q", "dram q", "memlat", "ring", "idle", "label")
	for _, me := range r.MEs {
		var lat int64
		for _, v := range me.MemLatency {
			lat += v
		}
		pct := func(v int64) float64 {
			if me.Cycles == 0 {
				return 0
			}
			return 100 * float64(v) / float64(me.Cycles)
		}
		fmt.Fprintf(&b, "ME%-2d %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%%  %s\n",
			me.ME, pct(me.Compute),
			pct(me.MemQueue["scratch"]), pct(me.MemQueue["sram"]), pct(me.MemQueue["dram"]),
			pct(lat), pct(me.Ring), pct(me.Idle), me.Label)
	}
	// Thread rows count each thread's own blocked time even when sibling
	// threads hid it from the engine — the controller-queueing signal a
	// concurrency-hiding ME view masks.
	if tt := r.ThreadTotals(); tt.Cycles > 0 {
		fmt.Fprintf(&b, "thr  %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%%  (share of thread-cycles)\n",
			100*tt.StallShare("compute"),
			100*tt.StallShare("mem_queue.scratch"), 100*tt.StallShare("mem_queue.sram"),
			100*tt.StallShare("mem_queue.dram"), 100*tt.StallShare("mem_latency"),
			100*tt.StallShare("ring"), 100*tt.StallShare("idle"))
	}
	return b.String()
}
