package ixp

import "shangrila/internal/metrics"

// Observer is the machine's observability surface: the packet-accounting
// hooks media implementations and the runtime call, the snapshot accessors
// the harness reads, and tracer attachment. It replaces the ad-hoc
// Machine.Note* family so external packages stop reaching into machine
// internals — everything an outside component may observe or account goes
// through this one type. An Observer is a cheap value (one pointer); take
// it fresh from Machine.Observer whenever needed.
type Observer struct {
	m *Machine
}

// Observer returns the machine's observability surface.
func (m *Machine) Observer() Observer { return Observer{m} }

// ---------------------------------------------------------------------------
// Accounting hooks (media / runtime → machine)

// RxPacket counts one received packet of frameBytes and stamps its buffer
// id with the current cycle, opening a latency sample that closes when the
// id reaches the Tx ring (or is cancelled when the buffer is recycled
// without transmission). Media implementations call it from Inject for
// every packet they enqueue.
func (o Observer) RxPacket(id uint32, frameBytes int) {
	m := o.m
	m.stats.RxPackets++
	m.stats.RxBits += uint64(frameBytes * 8)
	m.rxStamp[id] = m.now
	if m.tracer != nil {
		m.tracer.Rx(m.now, id, frameBytes, false)
	}
}

// RxDrop counts one saturation loss of frameBytes at the Rx ring (called
// by Media.Inject when the ring is full or buffers ran out). The dropped
// bits still count toward offered load.
func (o Observer) RxDrop(frameBytes int) {
	m := o.m
	m.stats.RxDropped++
	m.stats.RxDroppedBits += uint64(frameBytes * 8)
	if m.tracer != nil {
		m.tracer.Rx(m.now, 0, frameBytes, true)
	}
}

// PacketFreed counts one dropped-or-recycled packet returned to the free
// list outside ME ring operations (XScale drops, hook recycling) and
// cancels its pending latency sample.
func (o Observer) PacketFreed(id uint32) {
	m := o.m
	m.stats.FreedPackets++
	delete(m.rxStamp, id)
}

// SetMELabel names ME i's program (the runtime loader passes the
// aggregate's PPF names) so stall breakdowns and traces can say which
// pipeline stage an engine runs.
func (o Observer) SetMELabel(i int, label string) {
	m := o.m
	for len(m.meLabels) <= i {
		m.meLabels = append(m.meLabels, "")
	}
	m.meLabels[i] = label
}

// ---------------------------------------------------------------------------
// Snapshot accessors (machine → harness)

// Snapshot returns an immutable deep copy of the run statistics.
func (o Observer) Snapshot() Stats { return o.m.Snapshot() }

// Latency summarizes the Rx→Tx latency (in core cycles) of every packet
// transmitted since the last stats reset.
func (o Observer) Latency() metrics.HistogramSnapshot { return o.m.lat.Snapshot() }

// MergeLatencyInto folds the machine's Rx→Tx latency histogram (every
// sample since the last stats reset) into dst, preserving exact bucket
// counts — the cluster harness aggregates per-chip distributions into
// one line-card tail this way.
func (o Observer) MergeLatencyInto(dst *metrics.Histogram) { dst.Merge(o.m.lat) }

// RingMaxOcc returns each ring's high-water occupancy since the last stats
// reset, indexed by ring number.
func (o Observer) RingMaxOcc() []int {
	out := make([]int, len(o.m.Rings))
	for i, r := range o.m.Rings {
		out[i] = r.MaxOcc()
	}
	return out
}

// Metrics returns the machine's telemetry registry (the one Config.Metrics
// supplied, or the machine's private registry).
func (o Observer) Metrics() *metrics.Registry { return o.m.reg }

// MELabels returns the per-ME program labels (indexes past the last
// SetMELabel call are empty).
func (o Observer) MELabels() []string {
	out := make([]string, o.m.Cfg.NumMEs)
	copy(out, o.m.meLabels)
	return out
}

// InFlight returns the number of accepted packets whose buffers have
// neither been transmitted nor freed — the population conservation tests
// balance against: RxPackets + inFlight(start) = TxPackets + FreedPackets
// + inFlight(end).
func (o Observer) InFlight() int { return len(o.m.rxStamp) }

// ---------------------------------------------------------------------------
// Tracing

// SetTracer installs the event sink (nil disables tracing; compose several
// sinks with MultiTracer). Attach before Run — events are emitted from the
// event loop, so installing mid-run starts the stream at the current
// cycle.
func (o Observer) SetTracer(t Tracer) { o.m.tracer = t }

// Tracer returns the installed event sink (nil when tracing is off).
func (o Observer) Tracer() Tracer { return o.m.tracer }

// StallReport builds the breakdown of an attached StallTracer over the
// window since the last stats reset, labelled with the ME program labels.
// It returns nil when no StallTracer is attached (directly or inside a
// MultiTracer).
func (o Observer) StallReport() *StallReport {
	st := findStallTracer(o.m.tracer)
	if st == nil {
		return nil
	}
	return st.Report(o.m.now, o.MELabels())
}

func findStallTracer(t Tracer) *StallTracer {
	switch tt := t.(type) {
	case *StallTracer:
		return tt
	case multiTracer:
		for _, sub := range tt {
			if st := findStallTracer(sub); st != nil {
				return st
			}
		}
	}
	return nil
}
