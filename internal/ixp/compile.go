package ixp

import "shangrila/internal/cg"

// Staged block compilation. compileProg lowers a predecoded program one
// more rung (the Sham playbook, stage 2): every straight-line run that
// can start a thread activation is specialized into a native Go closure
// at load time, with operands bound at closure-construction time:
//
//   - Constant and affine folding. A staging pass abstractly interprets
//     the run over a constant/affine lattice (cval) seeded by the
//     wired-zero register and immediates. Instructions whose sources are
//     all known fold away entirely; add/sub chains of known amounts onto
//     one register fold into a single pending delta; known operands of
//     dynamic instructions are inlined into the emitted closure (shift
//     amounts pre-masked, zero divisors folded to the architected 0).
//     Registers whose value at the run's end is a known constant are
//     materialized by one batched store, pending deltas by one add —
//     intermediate register states inside a run are unobservable, so
//     only the final state must match the interpreter.
//
//   - Shape-specialized emission. Each surviving instruction becomes a
//     closure specialized on its ALU op and operand shape (reg/reg,
//     reg/const, const/reg, unary), so the hot loop runs without dKind
//     dispatch, aluEval's op switch, or the fused/budget bookkeeping of
//     execRun. Closures chain through a quad-tree sequencer, keeping
//     call depth logarithmic in the run length.
//
//   - Block-edge accounting. A compiled run executes only when it fits
//     the activation budget whole, so its instruction and cycle counts
//     batch into the activation accumulators in one step, exactly as the
//     interpreter's run accounting does.
//
// Run terminators (branches, memory, rings, CAM, yields) compile into
// exit closures returning a typed block-exit (cExit) that the dispatcher
// (compiled.go) maps onto scheduler state — the same protocol for every
// terminator kind, replacing runME's dispatch switch.
//
// Bit-identity with the interpreter is by construction:
//
//   - Run closures are compiled only at static entry points — pc 0,
//     branch targets (cg.Program.Leaders), the slot after a terminator,
//     and fused-pair tail slots (budget-split resume points). A thread
//     entering a run anywhere else (a mid-run budget split, or a runtime
//     SetPC stage entry) falls back to execRun on the shared dProg until
//     it reaches the next entry point, so partial runs follow the
//     interpreter instruction by instruction.
//   - Inside a run, instruction count equals slot count (a fused head's
//     weight-2 covers its own slot and the tail's), so the staging
//     compiler walks slot by slot, treating fused heads as their head
//     instruction, and next-pc is entry + run length.
//   - Exit closures perform the identical state mutations, in the
//     identical order, as runME's dispatch cases; the dispatcher applies
//     the identical scheduling, tracing and statistics as runME's
//     prologue and epilogue.

// regFile is an ME thread's register file plus the wired-zero slot.
type regFile = [cg.NumRegs + 1]uint32

// cExitKind classifies a block exit.
type cExitKind uint8

const (
	cexNext  cExitKind = iota // continue at cExit.next within the activation
	cexBlock                  // thread blocked; evReady scheduled at cExit.at
	cexYield                  // voluntary yield (ctx_arb)
	cexHalt                   // thread halted
	cexFault                  // machine check; the closure already called m.fail
)

// cExit is the typed block-exit an exit closure returns: what the
// activation does next, and where the thread resumes.
type cExit struct {
	kind   cExitKind
	reason YieldReason // cexBlock: YieldMem or YieldRing
	next   int32       // resume pc
	at     int64       // cexBlock: absolute evReady time
}

// cCtx is the dispatcher-to-closure context for exit closures. The
// dispatcher syncs its activation accumulators into it before each exit
// closure and back after, so closures that charge extra cycles (CAM,
// Local Memory) or consume budget (fused branch tails) mutate the same
// accounting the interpreter does. It lives as a value field on Machine,
// keeping the steady state allocation-free.
type cCtx struct {
	m      *Machine
	mx     *ME
	th     *Thread
	regs   *regFile
	ti     int
	cycles int64
	instrs uint64
	budget int64
}

// cSlot is one staged instruction slot: a compiled run body (entry
// points only), or an exit closure (terminators).
type cSlot struct {
	run    func(*regFile)    // non-nil only at compiled run entry points
	exit   func(*cCtx) cExit // non-nil exactly when runLen == 0
	runLen int32             // dInstr.run of the slot
	next   int32             // pc after the whole run (entry + runLen)
}

// cProg is the staged form of one predecoded program. It is immutable
// after construction, so machines and shard workers share it freely.
type cProg struct {
	slots []cSlot
}

// compileProg stages a predecoded program. Entry points are the pcs a
// thread activation can start a run at without having split it: program
// entry, branch targets, terminator fall-throughs, and fused tails.
func compileProg(d *dProg, p *cg.Program) *cProg {
	code := d.code
	cp := &cProg{slots: make([]cSlot, len(code))}
	leaders := p.Leaders()
	for i := range code {
		s := &cp.slots[i]
		in := &code[i]
		if in.run > 0 {
			s.runLen = in.run
			s.next = int32(i) + in.run // slot count == instruction count
			if isRunEntry(code, leaders, i) {
				s.run = compileRun(code, i, in.run)
			}
			continue
		}
		s.exit = compileExit(code, i)
	}
	return cp
}

// isRunEntry reports whether a thread activation can begin at slot i
// with the run intact (as opposed to resuming a split run mid-way).
func isRunEntry(code []dInstr, leaders []bool, i int) bool {
	if i == 0 || (i < len(leaders) && leaders[i]) {
		return true
	}
	switch k := code[i-1].kind; {
	case k >= lastSimpleKind:
		return true // fall-through past a terminator
	case k == dFusedALUImmALUImm, k == dFusedImmedALU, k == dFusedImmedALUImm:
		return true // budget-split resume at a fused tail
	}
	return false
}

// cval is the staging compiler's lattice value for a register:
//
//   - cvUnk: the register holds whatever the emitted ops so far left in
//     it (at run entry, its architectural value).
//   - cvConst: the register's value is the known constant v; the write
//     that produced it folded away and is materialized at the run's end.
//   - cvAffine: the register's value is its current runtime content plus
//     the pending delta v — an add/sub chain folded onto one deferred
//     `r[d] += v`. Self-based only (delta over the register's own
//     value), so materialization never depends on another register's
//     entry value and ordering hazards cannot arise. A chain that nets
//     to delta 0 vanishes entirely.
type cval struct {
	kind uint8
	v    uint32
}

const (
	cvUnk uint8 = iota
	cvConst
	cvAffine
)

// constStore is one batched end-of-run materialization of a register
// whose final value folded to a constant.
type constStore struct {
	reg int16
	val uint32
}

// compileRun stages the n-instruction straight-line run at pc into one
// closure over the register file. The walk abstractly interprets the
// run: fused heads are treated as their head instruction and the tail
// slot follows on its own, so exactly n slots are consumed.
func compileRun(code []dInstr, pc int, n int32) func(*regFile) {
	var st [cg.NumRegs + 1]cval
	st[zeroReg] = cval{kind: cvConst} // wired zero
	var ops []func(*regFile)

	setConst := func(d int16, v uint32) {
		st[d] = cval{kind: cvConst, v: v}
	}
	setDyn := func(d int16) {
		st[d] = cval{}
	}
	// materialize flushes a pending affine delta before the register is
	// read by an emitted op (its runtime content would otherwise be stale
	// by the delta). Constants never need this: every read of a cvConst
	// register folds or inlines.
	materialize := func(a int16) {
		if st[a].kind == cvAffine {
			if delta := st[a].v; delta != 0 {
				ops = append(ops, emitAddDelta(a, delta))
			}
			st[a] = cval{}
		}
	}
	// stageALU folds or emits one ALU instruction with register source a
	// and source b either register (bReg) or immediate (bImm).
	stageALU := func(op cg.ALUOp, d, a int16, bReg int16, bImm uint32, bIsImm bool) {
		if isUnaryALU(op) {
			if st[a].kind == cvConst {
				setConst(d, aluEval(op, st[a].v, 0))
				return
			}
			materialize(a)
			ops = append(ops, emitALUUnary(op, d, a))
			setDyn(d)
			return
		}
		bv := cval{kind: cvConst, v: bImm}
		if !bIsImm {
			bv = st[bReg]
		}
		// Add/sub of a known amount onto the same register folds into the
		// pending delta — counter chains of any length stage to one op.
		if (op == cg.AAdd || op == cg.ASub) && d == a && bv.kind == cvConst {
			switch st[a].kind {
			case cvConst:
				setConst(a, aluEval(op, st[a].v, bv.v))
				return
			case cvUnk, cvAffine:
				delta := st[a].v // 0 when cvUnk
				if op == cg.AAdd {
					delta += bv.v
				} else {
					delta -= bv.v
				}
				st[a] = cval{kind: cvAffine, v: delta}
				return
			}
		}
		av := st[a]
		if !bIsImm && bv.kind == cvAffine {
			materialize(bReg)
			bv = st[bReg]
		}
		switch {
		case av.kind == cvConst && bv.kind == cvConst:
			setConst(d, aluEval(op, av.v, bv.v))
		case (op == cg.ADivU || op == cg.ARemU) && bv.kind == cvConst && bv.v == 0:
			setConst(d, 0) // architected zero regardless of the dividend
		case bv.kind == cvConst:
			materialize(a)
			ops = append(ops, emitALUConstB(op, d, a, bv.v))
			setDyn(d)
		case av.kind == cvConst:
			ops = append(ops, emitALUConstA(op, d, av.v, bReg))
			setDyn(d)
		default:
			materialize(a)
			if bReg != a {
				materialize(bReg)
			}
			ops = append(ops, emitALURR(op, d, a, bReg))
			setDyn(d)
		}
	}

	for i, left := pc, n; left > 0; left-- {
		in := &code[i]
		switch in.kind {
		case dNop:
		case dALU:
			stageALU(in.alu, in.dst, in.srcA, in.srcB, 0, false)
		case dALUImm, dFusedALUImmALUImm:
			stageALU(in.alu, in.dst, in.srcA, 0, in.imm, true)
		case dImmed, dFusedImmedALU, dFusedImmedALUImm:
			setConst(in.dst, in.imm)
		}
		i++
	}

	var cs []constStore
	for r := 0; r < cg.NumRegs; r++ {
		switch st[r].kind {
		case cvConst:
			cs = append(cs, constStore{reg: int16(r), val: st[r].v})
		case cvAffine:
			if st[r].v != 0 {
				ops = append(ops, emitAddDelta(int16(r), st[r].v))
			}
		}
	}
	if len(cs) > 0 {
		ops = append(ops, emitConstStores(cs))
	}
	return seqOps(ops)
}

// emitAddDelta materializes a folded add/sub chain: the register's
// pending delta applied in one step.
func emitAddDelta(d int16, delta uint32) func(*regFile) {
	return func(r *regFile) { r[d] += delta }
}

func isUnaryALU(op cg.ALUOp) bool {
	return op == cg.ANot || op == cg.ANeg || op == cg.AMov
}

// emitALURR stages op with two dynamic register sources.
func emitALURR(op cg.ALUOp, d, a, b int16) func(*regFile) {
	switch op {
	case cg.AAdd:
		return func(r *regFile) { r[d] = r[a] + r[b] }
	case cg.ASub:
		return func(r *regFile) { r[d] = r[a] - r[b] }
	case cg.AMul:
		return func(r *regFile) { r[d] = r[a] * r[b] }
	case cg.AAnd:
		return func(r *regFile) { r[d] = r[a] & r[b] }
	case cg.AOr:
		return func(r *regFile) { r[d] = r[a] | r[b] }
	case cg.AXor:
		return func(r *regFile) { r[d] = r[a] ^ r[b] }
	case cg.AShl:
		return func(r *regFile) { r[d] = r[a] << (r[b] & 31) }
	case cg.AShrU:
		return func(r *regFile) { r[d] = r[a] >> (r[b] & 31) }
	case cg.AShrS:
		return func(r *regFile) { r[d] = uint32(int32(r[a]) >> (r[b] & 31)) }
	case cg.ADivU:
		return func(r *regFile) {
			if r[b] == 0 {
				r[d] = 0
			} else {
				r[d] = r[a] / r[b]
			}
		}
	case cg.ARemU:
		return func(r *regFile) {
			if r[b] == 0 {
				r[d] = 0
			} else {
				r[d] = r[a] % r[b]
			}
		}
	}
	return func(r *regFile) { r[d] = 0 } // aluEval's default for unknown ops
}

// emitALUConstB stages op with a dynamic a and constant b (the ALUImm
// shape, and reg/reg ops whose b folded). Shift amounts pre-mask.
func emitALUConstB(op cg.ALUOp, d, a int16, b uint32) func(*regFile) {
	switch op {
	case cg.AAdd:
		return func(r *regFile) { r[d] = r[a] + b }
	case cg.ASub:
		return func(r *regFile) { r[d] = r[a] - b }
	case cg.AMul:
		return func(r *regFile) { r[d] = r[a] * b }
	case cg.AAnd:
		return func(r *regFile) { r[d] = r[a] & b }
	case cg.AOr:
		return func(r *regFile) { r[d] = r[a] | b }
	case cg.AXor:
		return func(r *regFile) { r[d] = r[a] ^ b }
	case cg.AShl:
		sh := b & 31
		return func(r *regFile) { r[d] = r[a] << sh }
	case cg.AShrU:
		sh := b & 31
		return func(r *regFile) { r[d] = r[a] >> sh }
	case cg.AShrS:
		sh := b & 31
		return func(r *regFile) { r[d] = uint32(int32(r[a]) >> sh) }
	case cg.ADivU:
		if b == 0 { // folded by the stager; kept for safety
			return func(r *regFile) { r[d] = 0 }
		}
		return func(r *regFile) { r[d] = r[a] / b }
	case cg.ARemU:
		if b == 0 {
			return func(r *regFile) { r[d] = 0 }
		}
		return func(r *regFile) { r[d] = r[a] % b }
	}
	return func(r *regFile) { r[d] = 0 }
}

// emitALUConstA stages op with a constant a and dynamic b.
func emitALUConstA(op cg.ALUOp, d int16, a uint32, b int16) func(*regFile) {
	switch op {
	case cg.AAdd:
		return func(r *regFile) { r[d] = a + r[b] }
	case cg.ASub:
		return func(r *regFile) { r[d] = a - r[b] }
	case cg.AMul:
		return func(r *regFile) { r[d] = a * r[b] }
	case cg.AAnd:
		return func(r *regFile) { r[d] = a & r[b] }
	case cg.AOr:
		return func(r *regFile) { r[d] = a | r[b] }
	case cg.AXor:
		return func(r *regFile) { r[d] = a ^ r[b] }
	case cg.AShl:
		return func(r *regFile) { r[d] = a << (r[b] & 31) }
	case cg.AShrU:
		return func(r *regFile) { r[d] = a >> (r[b] & 31) }
	case cg.AShrS:
		return func(r *regFile) { r[d] = uint32(int32(a) >> (r[b] & 31)) }
	case cg.ADivU:
		return func(r *regFile) {
			if r[b] == 0 {
				r[d] = 0
			} else {
				r[d] = a / r[b]
			}
		}
	case cg.ARemU:
		return func(r *regFile) {
			if r[b] == 0 {
				r[d] = 0
			} else {
				r[d] = a % r[b]
			}
		}
	}
	return func(r *regFile) { r[d] = 0 }
}

// emitALUUnary stages ANot/ANeg/AMov (the ops that ignore source b).
func emitALUUnary(op cg.ALUOp, d, a int16) func(*regFile) {
	switch op {
	case cg.ANot:
		return func(r *regFile) { r[d] = ^r[a] }
	case cg.ANeg:
		return func(r *regFile) { r[d] = -r[a] }
	default: // AMov
		return func(r *regFile) { r[d] = r[a] }
	}
}

// emitConstStores materializes the registers whose final run value
// folded to a constant, in one batched closure.
func emitConstStores(cs []constStore) func(*regFile) {
	switch len(cs) {
	case 1:
		d, v := cs[0].reg, cs[0].val
		return func(r *regFile) { r[d] = v }
	case 2:
		d0, v0 := cs[0].reg, cs[0].val
		d1, v1 := cs[1].reg, cs[1].val
		return func(r *regFile) {
			r[d0] = v0
			r[d1] = v1
		}
	default:
		cs = append([]constStore(nil), cs...)
		return func(r *regFile) {
			for _, s := range cs {
				r[s.reg] = s.val
			}
		}
	}
}

// cNop is the body of a run that folded away completely.
func cNop(*regFile) {}

// seqOps chains emitted closures, reducing in quads so the call depth
// stays logarithmic in the run length.
func seqOps(ops []func(*regFile)) func(*regFile) {
	switch len(ops) {
	case 0:
		return cNop
	case 1:
		return ops[0]
	case 2:
		f0, f1 := ops[0], ops[1]
		return func(r *regFile) {
			f0(r)
			f1(r)
		}
	case 3:
		f0, f1, f2 := ops[0], ops[1], ops[2]
		return func(r *regFile) {
			f0(r)
			f1(r)
			f2(r)
		}
	case 4:
		f0, f1, f2, f3 := ops[0], ops[1], ops[2], ops[3]
		return func(r *regFile) {
			f0(r)
			f1(r)
			f2(r)
			f3(r)
		}
	}
	var quads []func(*regFile)
	for i := 0; i < len(ops); i += 4 {
		j := i + 4
		if j > len(ops) {
			j = len(ops)
		}
		quads = append(quads, seqOps(ops[i:j]))
	}
	return seqOps(quads)
}

// compileExit stages the terminator at pc into an exit closure. Each
// closure performs exactly the state mutations of runME's corresponding
// dispatch case (the dispatcher has already applied the uniform
// instruction/cycle/budget step) and returns the typed block-exit.
func compileExit(code []dInstr, pc int) func(*cCtx) cExit {
	in := &code[pc]
	fall := int32(pc + 1)
	switch in.kind {
	case dBr:
		t := in.target
		return func(*cCtx) cExit { return cExit{next: t} }
	case dBcc:
		pred := emitCondRR(in.cond, in.srcA, in.srcB)
		t := in.target
		return func(c *cCtx) cExit {
			if pred(c.regs) {
				return cExit{next: t}
			}
			return cExit{next: fall}
		}
	case dBccImm:
		pred := emitCondRI(in.cond, in.srcA, in.imm)
		t := in.target
		return func(c *cCtx) cExit {
			if pred(c.regs) {
				return cExit{next: t}
			}
			return cExit{next: fall}
		}
	case dFusedImmedBcc, dFusedImmedBccImm:
		// Immediate head plus branch tail. The tail executes only if it
		// fits the budget; a split resumes at the tail slot, exactly as
		// runME's fused-branch cases.
		tail := &code[pc+1]
		var pred func(*regFile) bool
		if in.kind == dFusedImmedBcc {
			pred = emitCondRR(tail.cond, tail.srcA, tail.srcB)
		} else {
			pred = emitCondRI(tail.cond, tail.srcA, tail.imm)
		}
		d, imm, t, fall2 := in.dst, in.imm, tail.target, int32(pc+2)
		return func(c *cCtx) cExit {
			c.regs[d] = imm
			if c.budget > 0 {
				c.instrs++
				c.cycles++
				c.budget--
				if pred(c.regs) {
					return cExit{next: t}
				}
				return cExit{next: fall2}
			}
			return cExit{next: fall} // split: resume at the tail slot
		}
	case dMem:
		isLocal := in.level == cg.MemLocal
		return func(c *cCtx) cExit {
			done, block := c.m.execMem(c.mx, c.th, c.ti, in, c.cycles)
			if !done {
				return cExit{kind: cexFault}
			}
			if isLocal {
				c.cycles += c.m.Cfg.LocalLatency - 1
			}
			if block > 0 {
				return cExit{kind: cexBlock, reason: YieldMem, next: fall, at: block}
			}
			return cExit{next: fall}
		}
	case dCAMLookup:
		a, d, d2 := in.srcA, in.dst, in.dst2
		return func(c *cCtx) cExit {
			hit, entry := c.m.camLookup(c.mx, c.regs[a])
			c.regs[d] = hit
			c.regs[d2] = entry
			c.cycles += 2
			return cExit{next: fall}
		}
	case dCAMWrite:
		a, b := in.srcA, in.srcB
		return func(c *cCtx) cExit {
			e := c.regs[a] % uint32(len(c.mx.cam))
			c.mx.cam[e] = camEntry{tag: c.regs[b], valid: true}
			c.m.camTouch(c.mx, int(e))
			return cExit{next: fall}
		}
	case dCAMClear:
		return func(c *cCtx) cExit {
			c.m.stats.CAMClears[c.mx.idx]++
			for i := range c.mx.cam {
				c.mx.cam[i].valid = false
			}
			return cExit{next: fall}
		}
	case dRingGet:
		return func(c *cCtx) cExit {
			if at := c.m.ringGet(c.mx, c.th, c.ti, in, c.cycles); at > 0 {
				return cExit{kind: cexBlock, reason: YieldRing, next: fall, at: at}
			}
			return cExit{next: fall}
		}
	case dRingPut:
		return func(c *cCtx) cExit {
			if at := c.m.ringPut(c.mx, c.th, c.ti, in, c.cycles); at > 0 {
				return cExit{kind: cexBlock, reason: YieldRing, next: fall, at: at}
			}
			return cExit{next: fall}
		}
	case dCtxArb:
		return func(*cCtx) cExit { return cExit{kind: cexYield, next: fall} }
	case dHalt:
		return func(c *cCtx) cExit {
			c.th.state = tDead
			c.mx.setReady(c.ti, false)
			return cExit{kind: cexHalt, next: fall}
		}
	default: // dBad
		op := in.op
		return func(c *cCtx) cExit {
			c.m.fail("ME%d: bad opcode %v", c.mx.idx, op)
			return cExit{kind: cexFault}
		}
	}
}

// emitCondRR specializes a register/register branch predicate.
func emitCondRR(cond cg.CondOp, a, b int16) func(*regFile) bool {
	switch cond {
	case cg.CEq:
		return func(r *regFile) bool { return r[a] == r[b] }
	case cg.CNe:
		return func(r *regFile) bool { return r[a] != r[b] }
	case cg.CLtU:
		return func(r *regFile) bool { return r[a] < r[b] }
	case cg.CLeU:
		return func(r *regFile) bool { return r[a] <= r[b] }
	case cg.CLtS:
		return func(r *regFile) bool { return int32(r[a]) < int32(r[b]) }
	case cg.CLeS:
		return func(r *regFile) bool { return int32(r[a]) <= int32(r[b]) }
	}
	return func(*regFile) bool { return false } // condEval's default
}

// emitCondRI specializes a register/immediate branch predicate.
func emitCondRI(cond cg.CondOp, a int16, b uint32) func(*regFile) bool {
	switch cond {
	case cg.CEq:
		return func(r *regFile) bool { return r[a] == b }
	case cg.CNe:
		return func(r *regFile) bool { return r[a] != b }
	case cg.CLtU:
		return func(r *regFile) bool { return r[a] < b }
	case cg.CLeU:
		return func(r *regFile) bool { return r[a] <= b }
	case cg.CLtS:
		sb := int32(b)
		return func(r *regFile) bool { return int32(r[a]) < sb }
	case cg.CLeS:
		sb := int32(b)
		return func(r *regFile) bool { return int32(r[a]) <= sb }
	}
	return func(*regFile) bool { return false }
}
