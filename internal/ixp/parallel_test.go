package ixp

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"shangrila/internal/cg"
)

// richProg exercises every ME-local and shared-state path the parallel
// engine handles differently: local memory (inline in the shard phase),
// CAM ops, non-local loads/stores at SRAM and DRAM, an atomic scratch
// test-and-set, ring gets/puts and context yields.
func richProg() *cg.Program {
	return &cg.Program{Name: "rich", Code: []*cg.Instr{
		{Op: cg.IRingGet, Ring: cg.RingRx, Dst: 0, Dst2: 16, Class: cg.ClassPacketRing},
		{Op: cg.IBccImm, Cond: cg.CNe, SrcA: 0, Imm: cg.InvalidPktID, Target: 4},
		{Op: cg.ICtxArb},
		{Op: cg.IBr, Target: 0},
		// Local memory counter (ME-private, executes in the shard phase).
		{Op: cg.IMem, Level: cg.MemLocal, Addr: cg.NoPReg, AddrOff: 16,
			NWords: 2, Data: []cg.PReg{2, 3}, Class: cg.ClassAppData},
		{Op: cg.IALUImm, ALU: cg.AAdd, Dst: 2, SrcA: 2, Imm: 1},
		{Op: cg.IMem, Level: cg.MemLocal, Store: true, Addr: cg.NoPReg, AddrOff: 16,
			NWords: 2, Data: []cg.PReg{2, 3}, Class: cg.ClassAppData},
		// CAM: look the packet id up, write it into the reported slot.
		{Op: cg.ICAMLookup, SrcA: 0, Dst: 4, Dst2: 5},
		{Op: cg.ICAMWrite, SrcA: 5, SrcB: 0},
		// SRAM read-modify-write at a packet-derived address.
		{Op: cg.IALUImm, ALU: cg.AAnd, Dst: 6, SrcA: 0, Imm: 0x3f},
		{Op: cg.IALUImm, ALU: cg.AShl, Dst: 6, SrcA: 6, Imm: 2},
		{Op: cg.IMem, Level: cg.MemSRAM, Addr: 6, NWords: 1,
			Data: []cg.PReg{7}, Class: cg.ClassAppData},
		{Op: cg.IALUImm, ALU: cg.AAdd, Dst: 7, SrcA: 7, Imm: 3},
		{Op: cg.IMem, Level: cg.MemSRAM, Store: true, Addr: 6, NWords: 1,
			Data: []cg.PReg{7}, Class: cg.ClassAppData},
		// DRAM burst (packet data class).
		{Op: cg.IMem, Level: cg.MemDRAM, Addr: cg.NoPReg, AddrOff: 512,
			NWords: 4, Data: []cg.PReg{8, 9, 10, 11}, Class: cg.ClassPacketData},
		// Scratch test-and-set lock probe.
		{Op: cg.IMem, Level: cg.MemScratch, Atomic: true, Addr: cg.NoPReg, AddrOff: 128,
			NWords: 1, Data: []cg.PReg{12}, Class: cg.ClassAppData},
		{Op: cg.IRingPut, Ring: cg.RingTx, SrcA: 0, SrcB: 16, Dst: 1, Class: cg.ClassPacketRing},
		{Op: cg.IBr, Target: 0},
	}}
}

// buildEngineMachine constructs a traced machine running prog on every
// ME, with the free list seeded the way runLoop does.
func buildEngineMachine(t *testing.T, spec EngineSpec, prog *cg.Program) (*Machine, *StallTracer) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.SampleInterval = 10_000
	cfg.RingSlots = 64
	st := NewStallTracer(cfg.NumMEs, cfg.ThreadsPerME)
	m, err := New(cfg,
		WithMedia(&FixedDescMedia{}),
		WithEngine(spec),
		WithTracer(st))
	if err != nil {
		t.Fatal(err)
	}
	m.GrowRing(cg.RingFree, 128)
	for i := 0; i < 100; i++ {
		m.Rings[cg.RingFree].Put(uint32(i), 64<<16|128)
	}
	for me := 0; me < cfg.NumMEs; me++ {
		m.LoadProgram(me, prog)
	}
	return m, st
}

// compareMachines asserts every observable (and the engines' internal
// clock and sequence counter) is identical between the serial reference
// and a parallel machine.
func compareMachines(t *testing.T, ref, got *Machine, refSt, gotSt *StallTracer, label string) {
	t.Helper()
	if ref.now != got.now || ref.seq != got.seq {
		t.Errorf("%s: clock/seq diverged: serial (now=%d seq=%d) parallel (now=%d seq=%d)",
			label, ref.now, ref.seq, got.now, got.seq)
	}
	if !reflect.DeepEqual(ref.Snapshot(), got.Snapshot()) {
		t.Errorf("%s: stats diverged:\nserial:   %+v\nparallel: %+v",
			label, ref.Snapshot(), got.Snapshot())
	}
	if !bytes.Equal(ref.Scratch, got.Scratch) || !bytes.Equal(ref.SRAM, got.SRAM) ||
		!bytes.Equal(ref.DRAM, got.DRAM) {
		t.Errorf("%s: shared memory contents diverged", label)
	}
	for i := range ref.Rings {
		if ref.Rings[i].Len() != got.Rings[i].Len() {
			t.Errorf("%s: ring %d occupancy %d vs %d",
				label, i, ref.Rings[i].Len(), got.Rings[i].Len())
		}
	}
	if !reflect.DeepEqual(ref.LatencySnapshot(), got.LatencySnapshot()) {
		t.Errorf("%s: latency histogram diverged", label)
	}
	if refSt != nil && gotSt != nil {
		if !reflect.DeepEqual(ref.Observer().StallReport(), got.Observer().StallReport()) {
			t.Errorf("%s: stall report diverged", label)
		}
	}
}

// TestParallelDeterminism runs the forwarding loop under the serial
// engine and under the parallel engine at several shard counts —
// including degenerate single-shard and one-ME-per-shard partitions —
// across two Run windows, and demands bit-identical observables.
func TestParallelDeterminism(t *testing.T) {
	for _, prog := range []*cg.Program{loopProg(), richProg()} {
		ref, refSt := buildEngineMachine(t, EngineSerial{}, prog)
		if err := ref.Run(60_000); err != nil {
			t.Fatal(err)
		}
		if err := ref.Run(140_000); err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{1, 2, 4, DefaultConfig().NumMEs} {
			m, st := buildEngineMachine(t, EngineParallel{Shards: shards}, prog)
			if name, got := m.EngineInfo(); name != "parallel" || got != shards {
				t.Fatalf("EngineInfo = (%s, %d), want (parallel, %d)", name, got, shards)
			}
			if err := m.Run(60_000); err != nil {
				t.Fatal(err)
			}
			if err := m.Run(140_000); err != nil {
				t.Fatal(err)
			}
			compareMachines(t, ref, m, refSt, st,
				prog.Name+"/shards="+itoa(shards))
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestParallelResetStats checks the warm-up + measure protocol (the
// harness's shape) stays identical across engines.
func TestParallelResetStats(t *testing.T) {
	ref, _ := buildEngineMachine(t, EngineSerial{}, loopProg())
	par, _ := buildEngineMachine(t, EngineParallel{Shards: 3}, loopProg())
	for _, m := range []*Machine{ref, par} {
		if err := m.Run(50_000); err != nil {
			t.Fatal(err)
		}
		m.ResetStats()
		if err := m.Run(100_000); err != nil {
			t.Fatal(err)
		}
	}
	compareMachines(t, ref, par, nil, nil, "reset-stats")
}

// TestParallelDrainsQueue checks the queue-drain exit (no media, finite
// work): the clock must stop at the last event, not the deadline.
func TestParallelDrainsQueue(t *testing.T) {
	halt := &cg.Program{Name: "halt", Code: []*cg.Instr{
		{Op: cg.IALUImm, ALU: cg.AAdd, Dst: 1, SrcA: 1, Imm: 7},
		{Op: cg.IMem, Level: cg.MemScratch, Store: true, Addr: cg.NoPReg, AddrOff: 64,
			NWords: 1, Data: []cg.PReg{1}, Class: cg.ClassAppData},
		{Op: cg.IHalt},
	}}
	run := func(spec EngineSpec) *Machine {
		cfg := DefaultConfig()
		cfg.NumRings = 1 // no Tx ring: no perpetual media tick chain
		m, err := New(cfg, WithEngine(spec))
		if err != nil {
			t.Fatal(err)
		}
		for me := 0; me < cfg.NumMEs; me++ {
			m.LoadProgram(me, halt)
		}
		if err := m.Run(1_000_000); err != nil {
			t.Fatal(err)
		}
		return m
	}
	ref := run(EngineSerial{})
	par := run(EngineParallel{Shards: 4})
	if ref.now == 1_000_000 {
		t.Fatalf("serial reference ran to the deadline; expected an early drain")
	}
	compareMachines(t, ref, par, nil, nil, "drain")
}

// TestParallelFaultMatchesSerial checks a machine-check fault surfaces
// at the same cycle with the same error text and the same statistics
// under both engines, while other MEs keep running up to the fault.
func TestParallelFaultMatchesSerial(t *testing.T) {
	bad := &cg.Program{Name: "bad", Code: []*cg.Instr{
		{Op: cg.IALUImm, ALU: cg.AAdd, Dst: 1, SrcA: 1, Imm: 1},
		{Op: cg.IBccImm, Cond: cg.CLtU, SrcA: 1, Imm: 3000, Target: 0},
		// Out-of-range SRAM access once the counter trips.
		{Op: cg.IMem, Level: cg.MemSRAM, Addr: cg.NoPReg, AddrOff: 1 << 30,
			NWords: 1, Data: []cg.PReg{2}, Class: cg.ClassAppData},
		{Op: cg.IBr, Target: 0},
	}}
	run := func(spec EngineSpec) (*Machine, error) {
		cfg := DefaultConfig()
		m, err := New(cfg, WithEngine(spec))
		if err != nil {
			t.Fatal(err)
		}
		m.LoadProgram(0, loopProg())
		m.LoadProgram(1, bad)
		return m, m.Run(500_000)
	}
	ref, refErr := run(EngineSerial{})
	par, parErr := run(EngineParallel{Shards: 4})
	if refErr == nil || parErr == nil {
		t.Fatalf("expected faults, got serial=%v parallel=%v", refErr, parErr)
	}
	if refErr.Error() != parErr.Error() {
		t.Errorf("fault text diverged:\nserial:   %v\nparallel: %v", refErr, parErr)
	}
	compareMachines(t, ref, par, nil, nil, "fault")
}

// TestParallelCallbacksAndAt checks control-plane At callbacks (a global
// event family) interleave identically with ME work.
func TestParallelCallbacksAndAt(t *testing.T) {
	run := func(spec EngineSpec) (*Machine, []int64) {
		m, _ := buildEngineMachine(t, spec, loopProg())
		var seen []int64
		m.At(25_000, func() { seen = append(seen, m.Now()) })
		m.At(25_001, func() {
			seen = append(seen, m.Now())
			m.At(25_050, func() { seen = append(seen, m.Now()) })
		})
		if err := m.Run(100_000); err != nil {
			t.Fatal(err)
		}
		return m, seen
	}
	ref, refSeen := run(EngineSerial{})
	par, parSeen := run(EngineParallel{Shards: 4})
	if !reflect.DeepEqual(refSeen, parSeen) {
		t.Errorf("callback times diverged: serial %v parallel %v", refSeen, parSeen)
	}
	compareMachines(t, ref, par, nil, nil, "callbacks")
}

// TestEngineValidation exercises the typed construction-time failures
// and the auto shard count.
func TestEngineValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Engine = EngineParallel{Shards: -1}
	var ece *EngineConfigError
	if _, err := New(cfg); !errors.As(err, &ece) {
		t.Fatalf("Shards=-1: got %v, want *EngineConfigError", err)
	} else if ece.Shards != -1 || ece.NumMEs != cfg.NumMEs {
		t.Errorf("error fields = %+v", ece)
	}
	cfg.Engine = EngineParallel{Shards: cfg.NumMEs + 1}
	if _, err := New(cfg); !errors.As(err, &ece) {
		t.Fatalf("Shards=NumMEs+1: got %v, want *EngineConfigError", err)
	}
	// Zero means auto: resolved to at most NumMEs, at least 1.
	m, err := New(DefaultConfig(), WithEngine(EngineParallel{Shards: 0}))
	if err != nil {
		t.Fatal(err)
	}
	if name, shards := m.EngineInfo(); name != "parallel" || shards < 1 || shards > DefaultConfig().NumMEs {
		t.Errorf("auto shards resolved to (%s, %d)", name, shards)
	}
	// The serial default reports itself.
	m2, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if name, shards := m2.EngineInfo(); name != "serial" || shards != 0 {
		t.Errorf("serial EngineInfo = (%s, %d)", name, shards)
	}
}
