// Cycle-level event tracing. The machine emits typed events — thread
// dispatch windows, memory issues with their controller queueing delay,
// ring operations, Rx/Tx packet events — through the Tracer interface.
// Tracing is strictly opt-in: with no tracer attached every emit site is
// a single nil check, so the timing model pays nothing when observability
// is off (BenchmarkTracerOverhead pins the cost).
//
// Two built-in sinks consume the stream: StallTracer folds events into a
// per-ME × per-thread stall breakdown that accounts for 100% of simulated
// cycles (stall.go), and ChromeTracer exports the run in the Chrome
// trace_event JSON format for chrome://tracing or Perfetto
// (chrometrace.go).
package ixp

import "shangrila/internal/cg"

// YieldReason says why a thread dispatch window ended.
type YieldReason uint8

const (
	// YieldMem: the thread blocked on a scratch/SRAM/DRAM access.
	YieldMem YieldReason = iota
	// YieldRing: the thread blocked on a ring operation's scratch access.
	YieldRing
	// YieldCtx: voluntary ctx_arb — the thread stays ready and the ME
	// pays the context-switch cycle.
	YieldCtx
	// YieldHalt: the thread executed IHalt and is dead.
	YieldHalt
	// YieldBudget: the activation's instruction budget ran out mid-stretch
	// (long ALU runs); the thread stays ready.
	YieldBudget
	// YieldFault: a machine check stopped the thread.
	YieldFault
)

var yieldNames = [...]string{"mem", "ring", "ctx", "halt", "budget", "fault"}

func (y YieldReason) String() string {
	if int(y) < len(yieldNames) {
		return yieldNames[y]
	}
	return "?"
}

// RingOpKind distinguishes ring pushes from pops.
type RingOpKind uint8

const (
	RingPush RingOpKind = iota
	RingPop
)

func (k RingOpKind) String() string {
	if k == RingPush {
		return "put"
	}
	return "get"
}

// Tracer receives the machine's execution events. Times are absolute
// simulation cycles. Implementations must not mutate the machine; they
// run synchronously inside the event loop, so cheap handlers keep traced
// runs fast. A nil Tracer on the machine disables every emit site.
type Tracer interface {
	// ThreadRun records one dispatch window: thread (me, thread) executed
	// [t, t+cycles) and stopped for reason. Windows of one ME never
	// interleave with its stall gaps; the 1-cycle context-switch overhead
	// between windows is not included.
	ThreadRun(t int64, me, thread int, cycles int64, reason YieldReason)
	// MemAccess records one ME-issued memory reference: issued at issue,
	// controller service began at start (start-issue is the queueing delay
	// behind other requests — the bandwidth signal), and the thread's
	// resume event fires at done (service + pipeline latency).
	MemAccess(issue int64, me, thread int, level cg.MemLevel, words int, start, done int64)
	// RingOp records a descriptor-ring push or pop. ok=false means the
	// push hit a full ring (backpressure) or the pop found it empty
	// (poll miss). occ is the ring occupancy after the operation; the
	// scratch-controller access that carries the op spans
	// [issue, done) with service starting at start, like MemAccess.
	RingOp(issue int64, me, thread int, ring int, kind RingOpKind, ok bool, occ int, start, done int64)
	// Rx records a media arrival: accepted (dropped=false, id valid) or
	// lost to Rx-path saturation (dropped=true, id unused).
	Rx(t int64, id uint32, frameBytes int, dropped bool)
	// Tx records a transmitted frame and its Rx→Tx latency in cycles
	// (latency < 0 when the buffer had no Rx stamp).
	Tx(t int64, id uint32, frameBytes int, latency int64)
}

// multiTracer fans events out to several sinks in order.
type multiTracer []Tracer

// MultiTracer composes tracers: every event goes to each non-nil sink in
// argument order. With zero or one effective sink it collapses to nil or
// the sink itself, keeping the disabled path free.
func MultiTracer(ts ...Tracer) Tracer {
	var live multiTracer
	for _, t := range ts {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

func (m multiTracer) ThreadRun(t int64, me, thread int, cycles int64, reason YieldReason) {
	for _, tr := range m {
		tr.ThreadRun(t, me, thread, cycles, reason)
	}
}

func (m multiTracer) MemAccess(issue int64, me, thread int, level cg.MemLevel, words int, start, done int64) {
	for _, tr := range m {
		tr.MemAccess(issue, me, thread, level, words, start, done)
	}
}

func (m multiTracer) RingOp(issue int64, me, thread int, ring int, kind RingOpKind, ok bool, occ int, start, done int64) {
	for _, tr := range m {
		tr.RingOp(issue, me, thread, ring, kind, ok, occ, start, done)
	}
}

func (m multiTracer) Rx(t int64, id uint32, frameBytes int, dropped bool) {
	for _, tr := range m {
		tr.Rx(t, id, frameBytes, dropped)
	}
}

func (m multiTracer) Tx(t int64, id uint32, frameBytes int, latency int64) {
	for _, tr := range m {
		tr.Tx(t, id, frameBytes, latency)
	}
}

// windowResetter is implemented by tracers whose accounting is scoped to
// the measurement window (StallTracer): Machine.ResetStats forwards the
// reset so warm-up cycles never leak into the breakdown.
type windowResetter interface {
	ResetWindow(now int64)
}

// ResetWindow forwards a stats reset to every composed sink that scopes
// its accounting to the measurement window.
func (m multiTracer) ResetWindow(now int64) {
	for _, tr := range m {
		if wr, ok := tr.(windowResetter); ok {
			wr.ResetWindow(now)
		}
	}
}
