package ixp

import (
	"fmt"
	"runtime"
)

// Engine selection. The machine's discrete-event core comes in two
// implementations with bit-identical observable behavior:
//
//   - EngineSerial: the single-goroutine timing-wheel event loop
//     (eventq.go). The default.
//
//   - EngineParallel: the sharded engine (parallel.go). Microengines are
//     partitioned across worker goroutines that execute ME-local work
//     concurrently inside conservative time windows; all shared-state
//     effects (memory bytes, rings, controllers, stats, tracing, event
//     sequencing) are replayed serially at epoch barriers in exactly the
//     serial engine's (time, seq) order, so every observable quantity —
//     stats, goldens, stall breakdowns, latency histograms — is
//     byte-identical to EngineSerial at any shard count.
//
// Select one at construction: ixp.New(cfg, ixp.WithEngine(ixp.EngineParallel{Shards: 4})).

// EngineSpec selects a simulation engine implementation. The zero spec
// (a nil Config.Engine) means EngineSerial.
type EngineSpec interface {
	// EngineName is the engine's stable identifier ("serial", "parallel"),
	// used by report schemas and CLI flags.
	EngineName() string
}

// EngineSerial selects the single-goroutine event loop (the default).
type EngineSerial struct{}

// EngineName implements EngineSpec.
func (EngineSerial) EngineName() string { return "serial" }

// EngineParallel selects the sharded engine. Shards is the number of
// worker goroutines MEs are partitioned across; 0 picks
// min(NumMEs, GOMAXPROCS). Config.Validate rejects negative counts and
// counts above NumMEs with an *EngineConfigError.
type EngineParallel struct {
	Shards int
}

// EngineName implements EngineSpec.
func (EngineParallel) EngineName() string { return "parallel" }

// EngineConfigError reports an engine configuration Config.Validate
// rejected: a shard count outside 0..NumMEs, or a memory-controller
// timing model whose conservative lookahead window is empty.
type EngineConfigError struct {
	Shards int
	NumMEs int
	Reason string
}

func (e *EngineConfigError) Error() string {
	return fmt.Sprintf("ixp: config: parallel engine with %d shard(s) on %d ME(s): %s",
		e.Shards, e.NumMEs, e.Reason)
}

// lookahead is the conservative synchronization window of the parallel
// engine: the minimum completion time of any blocking shared-memory or
// ring operation. Every such operation issued at t completes no earlier
// than t + latency + svcBase + svcWord (one-word service), so a thread
// blocked during the window [T, T+lookahead) cannot resume before the
// window ends — ME-local execution inside one window is independent
// across MEs.
func (c *Config) lookahead() int64 {
	w := c.ScratchLatency + c.ScratchSvcBase + c.ScratchSvcWord
	if v := c.SRAMLatency + c.SRAMSvcBase + c.SRAMSvcWord; v < w {
		w = v
	}
	if v := c.DRAMLatency + c.DRAMSvcBase + c.DRAMSvcWord; v < w {
		w = v
	}
	return w
}

// validateEngine is the Config.Validate leg for the engine selection.
func (c *Config) validateEngine() error {
	p, ok := c.Engine.(EngineParallel)
	if !ok {
		return nil
	}
	if p.Shards < 0 || p.Shards > c.NumMEs {
		return &EngineConfigError{Shards: p.Shards, NumMEs: c.NumMEs,
			Reason: fmt.Sprintf("shard count must be 0 (auto) to NumMEs, got %d", p.Shards)}
	}
	if c.lookahead() < 1 {
		return &EngineConfigError{Shards: p.Shards, NumMEs: c.NumMEs,
			Reason: "conservative lookahead is empty: every memory controller needs latency+service of at least 1 cycle"}
	}
	return nil
}

// resolveShards maps a requested shard count to the effective worker
// count.
func (c *Config) resolveShards(requested int) int {
	n := requested
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > c.NumMEs {
		n = c.NumMEs
	}
	if n < 1 {
		n = 1
	}
	return n
}

// engine is the machine's event core: m.schedule routes every event
// through push, and Machine.Run delegates to run. Implementations own
// their pending-event storage; the (time, seq) processing order contract
// of eventq.go binds both.
type engine interface {
	push(e event)
	pending() int
	run(m *Machine, cycles int64) error
}

// buildEngine constructs the engine the validated Config selects.
func buildEngine(m *Machine) engine {
	switch sp := m.Cfg.Engine.(type) {
	case EngineParallel:
		return newParallelEngine(m, m.Cfg.resolveShards(sp.Shards))
	default:
		return &serialEngine{}
	}
}

// EngineInfo reports the resolved engine selection: the engine name and,
// for the parallel engine, the effective shard count (0 for serial).
// Report schemas record both so measurements from different engines are
// never silently merged.
func (m *Machine) EngineInfo() (name string, shards int) {
	if p, ok := m.eng.(*parallelEngine); ok {
		return "parallel", p.shards
	}
	return "serial", 0
}

// ---------------------------------------------------------------------------
// Serial engine: the single-goroutine timing-wheel event loop.

type serialEngine struct {
	q eventQueue
}

func (s *serialEngine) push(e event) { s.q.push(e) }

func (s *serialEngine) pending() int { return s.q.len() }

// run advances the simulation until the cycle budget elapses or an error
// occurs. It can be called repeatedly for warm-up + measure phases.
func (s *serialEngine) run(m *Machine, cycles int64) error {
	deadline := m.now + cycles
	m.kickoff()
	for m.err == nil {
		ev, ok := s.q.popUntil(deadline)
		if !ok {
			if s.q.len() > 0 {
				// The next event is past the budget: leave it queued for a
				// future Run call (the old engine popped and re-pushed here,
				// churning the heap on every deadline).
				m.now = deadline
				m.stats.Cycles = m.now - m.statsBase
				return m.err
			}
			break
		}
		if ev.time > m.now {
			m.now = ev.time
		}
		switch ev.kind {
		case evActivate:
			m.MEs[ev.me].scheduled = false
			m.runME(int(ev.me))
		case evReady:
			m.readyThread(int(ev.me), int(ev.thread))
			// Drain further wakeups sharing this timestamp: they are the
			// next pops regardless (any activation they schedule carries a
			// later seq), so handling them here preserves event order while
			// skipping the dispatch loop.
			for {
				h := s.q.peek()
				if h == nil || h.kind != evReady || h.time != m.now {
					break
				}
				e := s.q.pop()
				m.readyThread(int(e.me), int(e.thread))
			}
		case evRxTick:
			m.rxTick()
		case evTxTick:
			m.txTick()
		case evXScale:
			m.xscaleTick()
		case evCallback:
			m.takeCB(ev.cb)()
		case evSample:
			m.sampleTick()
		}
	}
	m.stats.Cycles = m.now - m.statsBase
	return m.err
}
