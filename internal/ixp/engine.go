package ixp

import (
	"fmt"
	"runtime"
	"strings"
)

// Engine selection. The machine's discrete-event core comes in three
// implementations with bit-identical observable behavior:
//
//   - EngineSerial: the single-goroutine timing-wheel event loop
//     (eventq.go) over predecoded blocks. The default and the reference
//     implementation.
//
//   - EngineParallel: the sharded engine (parallel.go). Microengines are
//     partitioned across worker goroutines that execute ME-local work
//     concurrently inside conservative time windows; all shared-state
//     effects (memory bytes, rings, controllers, stats, tracing, event
//     sequencing) are replayed serially at epoch barriers in exactly the
//     serial engine's (time, seq) order, so every observable quantity —
//     stats, goldens, stall breakdowns, latency histograms — is
//     byte-identical to EngineSerial at any shard count.
//
//   - EngineCompiled: staged block compilation (compile.go/compiled.go).
//     At load time every straight-line run of the predecoded program is
//     specialized into a native Go closure — constants folded,
//     wired-zero reads elided, fused pairs inlined — with cycle and
//     statistics accounting batched at block edges; terminators return a
//     typed block-exit the dispatcher maps onto scheduler state. Shards
//     composes it with the sharded engine: positive counts run the
//     compiled closures inside EngineParallel's shard phase.
//
// Select one at construction: ixp.New(cfg, ixp.WithEngine(ixp.EngineCompiled{})).

// EngineSpec selects a simulation engine implementation. The zero spec
// (a nil Config.Engine) means EngineSerial.
type EngineSpec interface {
	// EngineName is the engine's stable identifier (one of EngineNames),
	// used by report schemas and CLI flags.
	EngineName() string
}

// EngineNames lists the valid engine identifiers in CLI presentation
// order. It is the single source of truth shared by ParseEngine, the
// -engine flag help and the report schemas, so usage text can never
// drift from what actually parses.
func EngineNames() []string { return []string{"serial", "parallel", "compiled"} }

// ParseEngine resolves an -engine/-shards flag pair into an EngineSpec
// (nil for the serial default, ready for Config.Engine or WithEngine).
// It accepts exactly the names EngineNames lists; anything else errors
// with the valid set.
func ParseEngine(name string, shards int) (EngineSpec, error) {
	switch name {
	case "", "serial":
		if shards != 0 {
			return nil, fmt.Errorf("ixp: -shards requires -engine parallel or compiled")
		}
		return nil, nil
	case "parallel":
		return EngineParallel{Shards: shards}, nil
	case "compiled":
		return EngineCompiled{Shards: shards}, nil
	default:
		return nil, fmt.Errorf("ixp: unknown engine %q (valid: %s)",
			name, strings.Join(EngineNames(), ", "))
	}
}

// EngineSerial selects the single-goroutine event loop (the default).
type EngineSerial struct{}

// EngineName implements EngineSpec.
func (EngineSerial) EngineName() string { return "serial" }

// EngineParallel selects the sharded engine. Shards is the number of
// worker goroutines MEs are partitioned across; 0 picks
// min(NumMEs, GOMAXPROCS). Config.Validate rejects negative counts and
// counts above NumMEs with an *EngineConfigError.
type EngineParallel struct {
	Shards int
}

// EngineName implements EngineSpec.
func (EngineParallel) EngineName() string { return "parallel" }

// EngineCompiled selects the staged-compilation engine: predecoded runs
// execute as specialized Go closures built at load time (compile.go),
// bit-identical to EngineSerial. Shards composes it with the sharded
// engine — 0 runs the single-goroutine event loop with compiled
// dispatch; 1..NumMEs partitions MEs across that many workers whose
// shard phases execute the compiled closures. Config.Validate rejects
// negative counts and counts above NumMEs with an *EngineConfigError.
type EngineCompiled struct {
	Shards int
}

// EngineName implements EngineSpec.
func (EngineCompiled) EngineName() string { return "compiled" }

// EngineConfigError reports an engine configuration Config.Validate
// rejected: a shard count outside 0..NumMEs, or a memory-controller
// timing model whose conservative lookahead window is empty.
type EngineConfigError struct {
	Shards int
	NumMEs int
	Reason string
}

func (e *EngineConfigError) Error() string {
	return fmt.Sprintf("ixp: config: parallel engine with %d shard(s) on %d ME(s): %s",
		e.Shards, e.NumMEs, e.Reason)
}

// lookahead is the conservative synchronization window of the parallel
// engine: the minimum completion time of any blocking shared-memory or
// ring operation. Every such operation issued at t completes no earlier
// than t + latency + svcBase + svcWord (one-word service), so a thread
// blocked during the window [T, T+lookahead) cannot resume before the
// window ends — ME-local execution inside one window is independent
// across MEs.
func (c *Config) lookahead() int64 {
	w := c.ScratchLatency + c.ScratchSvcBase + c.ScratchSvcWord
	if v := c.SRAMLatency + c.SRAMSvcBase + c.SRAMSvcWord; v < w {
		w = v
	}
	if v := c.DRAMLatency + c.DRAMSvcBase + c.DRAMSvcWord; v < w {
		w = v
	}
	return w
}

// validateEngine is the Config.Validate leg for the engine selection.
func (c *Config) validateEngine() error {
	var shards int
	sharded := false
	switch sp := c.Engine.(type) {
	case EngineParallel:
		shards, sharded = sp.Shards, true
		if sp.Shards < 0 || sp.Shards > c.NumMEs {
			return &EngineConfigError{Shards: sp.Shards, NumMEs: c.NumMEs,
				Reason: fmt.Sprintf("shard count must be 0 (auto) to NumMEs, got %d", sp.Shards)}
		}
	case EngineCompiled:
		shards, sharded = sp.Shards, sp.Shards > 0
		if sp.Shards < 0 || sp.Shards > c.NumMEs {
			return &EngineConfigError{Shards: sp.Shards, NumMEs: c.NumMEs,
				Reason: fmt.Sprintf("shard count must be 0 (serial dispatch) to NumMEs, got %d", sp.Shards)}
		}
	default:
		return nil
	}
	if sharded && c.lookahead() < 1 {
		return &EngineConfigError{Shards: shards, NumMEs: c.NumMEs,
			Reason: "conservative lookahead is empty: every memory controller needs latency+service of at least 1 cycle"}
	}
	return nil
}

// resolveShards maps a requested shard count to the effective worker
// count.
func (c *Config) resolveShards(requested int) int {
	n := requested
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > c.NumMEs {
		n = c.NumMEs
	}
	if n < 1 {
		n = 1
	}
	return n
}

// engine is the machine's event core: m.schedule routes every event
// through push, and Machine.Run delegates to run. Implementations own
// their pending-event storage; the (time, seq) processing order contract
// of eventq.go binds both.
type engine interface {
	push(e event)
	pending() int
	run(m *Machine, cycles int64) error
}

// buildEngine constructs the engine the validated Config selects.
func buildEngine(m *Machine) engine {
	switch sp := m.Cfg.Engine.(type) {
	case EngineParallel:
		return newParallelEngine(m, m.Cfg.resolveShards(sp.Shards))
	case EngineCompiled:
		if sp.Shards > 0 {
			pe := newParallelEngine(m, m.Cfg.resolveShards(sp.Shards))
			pe.compiled = true
			return pe
		}
		return &serialEngine{compiled: true}
	default:
		return &serialEngine{}
	}
}

// EngineInfo reports the resolved engine selection: the engine name and
// the effective shard count (0 for single-goroutine dispatch). Report
// schemas record both so measurements from different engines are never
// silently merged.
func (m *Machine) EngineInfo() (name string, shards int) {
	switch e := m.eng.(type) {
	case *parallelEngine:
		if e.compiled {
			return "compiled", e.shards
		}
		return "parallel", e.shards
	case *serialEngine:
		if e.compiled {
			return "compiled", 0
		}
	}
	return "serial", 0
}

// compiledDispatch reports whether the engine executes activations
// through the staged-closure dispatcher; LoadProgram stages programs
// eagerly only then.
func (m *Machine) compiledDispatch() bool {
	switch e := m.eng.(type) {
	case *serialEngine:
		return e.compiled
	case *parallelEngine:
		return e.compiled
	}
	return false
}

// ---------------------------------------------------------------------------
// Serial engine: the single-goroutine timing-wheel event loop.

type serialEngine struct {
	q        eventQueue
	compiled bool // dispatch activations through the staged closures
}

func (s *serialEngine) push(e event) { s.q.push(e) }

func (s *serialEngine) pending() int { return s.q.len() }

// run advances the simulation until the cycle budget elapses or an error
// occurs. It can be called repeatedly for warm-up + measure phases.
func (s *serialEngine) run(m *Machine, cycles int64) error {
	deadline := m.now + cycles
	m.kickoff()
	for m.err == nil {
		ev, ok := s.q.popUntil(deadline)
		if !ok {
			if s.q.len() > 0 {
				// The next event is past the budget: leave it queued for a
				// future Run call (the old engine popped and re-pushed here,
				// churning the heap on every deadline).
				m.now = deadline
				m.stats.Cycles = m.now - m.statsBase
				return m.err
			}
			break
		}
		if ev.time > m.now {
			m.now = ev.time
		}
		switch ev.kind {
		case evActivate:
			m.MEs[ev.me].scheduled = false
			if s.compiled {
				m.runMECompiled(int(ev.me))
			} else {
				m.runME(int(ev.me))
			}
		case evReady:
			m.readyThread(int(ev.me), int(ev.thread))
			// Drain further wakeups sharing this timestamp: they are the
			// next pops regardless (any activation they schedule carries a
			// later seq), so handling them here preserves event order while
			// skipping the dispatch loop.
			for {
				h := s.q.peek()
				if h == nil || h.kind != evReady || h.time != m.now {
					break
				}
				e := s.q.pop()
				m.readyThread(int(e.me), int(e.thread))
			}
		case evRxTick:
			m.rxTick()
		case evTxTick:
			m.txTick()
		case evXScale:
			m.xscaleTick()
		case evCallback:
			m.takeCB(ev.cb)()
		case evSample:
			m.sampleTick()
		}
	}
	m.stats.Cycles = m.now - m.statsBase
	return m.err
}
