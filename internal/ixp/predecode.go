package ixp

import "shangrila/internal/cg"

// Predecoded block execution. LoadProgram decodes each cg.Program once
// into a flat value-typed instruction array (dInstr) annotated with block
// structure:
//
//   - Straight-line runs. Every slot carries the length of the maximal
//     stretch of pure register instructions (ALU, immediates, nops)
//     starting there. The interpreter executes a whole run in a tight
//     loop — no memory/ring/yield checks, no stats or tracer hooks, no
//     bounds checks — and batches the run's instruction and cycle counts
//     into the activation's accumulators in one step. Control falls back
//     to the general dispatch only at run terminators: branches, memory
//     references, ring and CAM operations, and yields.
//
//   - Superinstructions. The dominant adjacent pairs in generated code
//     (measured statically over all example apps × levels: alui+alui,
//     immed+alu/alui, and the compare-setup pairs immed+bcc/bcci) fuse
//     into single dispatch slots. The pair's second instruction keeps its
//     standalone decode in its own slot, so a branch or thread entry that
//     lands on it executes it unfused — fusion never changes observable
//     behavior, and the predecoder additionally restricts fusion to pairs
//     within one basic block (cg.Program.Leaders). When the activation's
//     instruction budget splits a pair, only the first half executes and
//     the thread resumes at the tail slot.
//
// Semantics are bit-identical to the per-instruction reference
// interpreter: instruction counts, cycle accounting, stats, tracer events
// and event-queue scheduling order are unchanged (locked by the harness's
// differential golden suite).

// dKind is the predecoded dispatch kind.
type dKind uint8

const (
	// Simple kinds: executable inside a straight-line run.
	dNop dKind = iota
	dALU
	dALUImm
	dImmed
	dFusedALUImmALUImm // IALUImm;IALUImm — the dominant generated pair
	dFusedImmedALU     // IImmed;IALU
	dFusedImmedALUImm  // IImmed;IALUImm
	lastSimpleKind     // sentinel: kinds below terminate runs

	// Run terminators: general dispatch path.
	dBr
	dBcc
	dBccImm
	dFusedImmedBcc    // IImmed;IBcc — compare-operand setup + branch
	dFusedImmedBccImm // IImmed;IBccImm
	dMem
	dCAMLookup
	dCAMWrite
	dCAMClear
	dRingGet
	dRingPut
	dCtxArb
	dHalt
	dBad // undecodable: faults with the original opcode if executed
)

// zeroReg is the wired-zero register: one slot past the architectural
// register file. Reads of absent operands (cg.NoPReg) are predecoded to
// it, making operand fetch branch-free; nothing ever writes it.
const zeroReg = cg.NumRegs

// dInstr is one predecoded instruction slot. Fields are value-typed and
// compact so a run's slots share cache lines; the data slice (memory burst
// registers) is the decoded program's only per-slot allocation.
type dInstr struct {
	kind dKind
	op   cg.Opcode // original opcode, for machine-check messages

	alu  cg.ALUOp
	cond cg.CondOp

	dst, dst2  int16 // writes: validated 0..NumRegs-1 (dst of ring put: -1 = none)
	srcA, srcB int16 // reads: absent operands map to zeroReg
	imm        uint32

	// Memory reference fields.
	level   cg.MemLevel
	store   bool
	atomic  bool
	addr    int16 // base register; absolute addressing maps to zeroReg
	addrOff uint32
	nwords  int32
	data    []cg.PReg
	accIdx  int16 // flat Stats accounting index, -1 when unclassified

	ring   int32
	target int32

	// run is the instruction count of the maximal straight-line stretch of
	// simple slots starting here (0 for terminators). Fused slots count
	// both halves; entering at a fused tail uses the tail's own run value.
	run int32
}

// dProg is one predecoded program.
type dProg struct {
	code []dInstr
}

// accIndex flattens (level, class) into the machine's access-counter
// array; -1 for unclassified accesses, which are not accounted.
func accIndex(level cg.MemLevel, class cg.AccessClass) int16 {
	if class == cg.ClassNone {
		return -1
	}
	return int16(int(level)*numAccessClasses + int(class))
}

// numMemLevels and numAccessClasses size the flat access-counter array
// (levels × classes, cf. cg.MemLevel and cg.AccessClass).
const (
	numMemLevels     = 4
	numAccessClasses = 5
)

// reg validates a read operand: absent maps to the wired zero.
func decodeReadReg(r cg.PReg) (int16, bool) {
	if r == cg.NoPReg {
		return zeroReg, true
	}
	if r < 0 || int(r) >= cg.NumRegs {
		return 0, false
	}
	return int16(r), true
}

// decodeWriteReg validates a mandatory destination register.
func decodeWriteReg(r cg.PReg) (int16, bool) {
	if r < 0 || int(r) >= cg.NumRegs {
		return 0, false
	}
	return int16(r), true
}

// predecode lowers a cg.Program into its block-structured executable form.
// Invalid operands decode to dBad rather than failing eagerly: like the
// reference interpreter, a program only machine-checks if the bad
// instruction is actually executed.
func predecode(p *cg.Program) *dProg {
	n := len(p.Code)
	d := &dProg{code: make([]dInstr, n)}
	for i, in := range p.Code {
		d.code[i] = decodeOne(in)
	}
	fuse(d, p)
	computeRuns(d)
	return d
}

// decodeOne decodes a single instruction, standalone.
func decodeOne(in *cg.Instr) dInstr {
	out := dInstr{kind: dBad, op: in.Op, dst: -1, dst2: -1, srcA: zeroReg, srcB: zeroReg, accIdx: -1}
	ok := true
	switch in.Op {
	case cg.INop:
		out.kind = dNop
	case cg.IALU:
		out.kind = dALU
		out.alu = in.ALU
		out.dst, ok = decodeWriteReg(in.Dst)
		if ok {
			out.srcA, ok = decodeReadReg(in.SrcA)
		}
		if ok {
			out.srcB, ok = decodeReadReg(in.SrcB)
		}
	case cg.IALUImm:
		out.kind = dALUImm
		out.alu = in.ALU
		out.imm = in.Imm
		out.dst, ok = decodeWriteReg(in.Dst)
		if ok {
			out.srcA, ok = decodeReadReg(in.SrcA)
		}
	case cg.IImmed:
		out.kind = dImmed
		out.imm = in.Imm
		out.dst, ok = decodeWriteReg(in.Dst)
	case cg.IBr:
		out.kind = dBr
		out.target = int32(in.Target)
	case cg.IBcc:
		out.kind = dBcc
		out.cond = in.Cond
		out.target = int32(in.Target)
		out.srcA, ok = decodeReadReg(in.SrcA)
		if ok {
			out.srcB, ok = decodeReadReg(in.SrcB)
		}
	case cg.IBccImm:
		out.kind = dBccImm
		out.cond = in.Cond
		out.imm = in.Imm
		out.target = int32(in.Target)
		out.srcA, ok = decodeReadReg(in.SrcA)
	case cg.IMem:
		out.kind = dMem
		out.level = in.Level
		out.store = in.Store
		out.atomic = in.Atomic
		out.addrOff = in.AddrOff
		out.nwords = int32(in.NWords)
		out.data = in.Data
		out.accIdx = accIndex(in.Level, in.Class)
		out.addr, ok = decodeReadReg(in.Addr)
		for _, r := range in.Data {
			if r < 0 || int(r) >= cg.NumRegs {
				ok = false
			}
		}
	case cg.ICAMLookup:
		out.kind = dCAMLookup
		out.dst, ok = decodeWriteReg(in.Dst)
		if ok {
			out.dst2, ok = decodeWriteReg(in.Dst2)
		}
		if ok {
			out.srcA, ok = decodeReadReg(in.SrcA)
		}
	case cg.ICAMWrite:
		out.kind = dCAMWrite
		out.srcA, ok = decodeReadReg(in.SrcA)
		if ok {
			out.srcB, ok = decodeReadReg(in.SrcB)
		}
	case cg.ICAMClear:
		out.kind = dCAMClear
	case cg.IRingGet:
		out.kind = dRingGet
		out.ring = int32(in.Ring)
		out.accIdx = accIndex(cg.MemScratch, in.Class)
		out.dst, ok = decodeWriteReg(in.Dst)
		if ok {
			out.dst2, ok = decodeWriteReg(in.Dst2)
		}
	case cg.IRingPut:
		out.kind = dRingPut
		out.ring = int32(in.Ring)
		out.accIdx = accIndex(cg.MemScratch, in.Class)
		out.srcA, ok = decodeReadReg(in.SrcA)
		if ok {
			out.srcB, ok = decodeReadReg(in.SrcB)
		}
		if in.Dst != cg.NoPReg { // success flag is optional
			var w int16
			w, ok = decodeWriteReg(in.Dst)
			if ok {
				out.dst = w
			}
		}
	case cg.ICtxArb:
		out.kind = dCtxArb
	case cg.IHalt:
		out.kind = dHalt
	}
	if !ok {
		return dInstr{kind: dBad, op: in.Op, accIdx: -1}
	}
	return out
}

// fuse rewrites adjacent instruction pairs into superinstruction heads.
// The tail slot keeps its standalone decode; fusion is restricted to pairs
// inside one basic block so superinstructions mirror the compiler's
// straight-line code shape.
func fuse(d *dProg, p *cg.Program) {
	leaders := p.Leaders()
	for i := 0; i+1 < len(d.code); i++ {
		if leaders[i+1] {
			continue
		}
		head, tail := d.code[i].kind, d.code[i+1].kind
		var fused dKind
		switch {
		case head == dALUImm && tail == dALUImm:
			fused = dFusedALUImmALUImm
		case head == dImmed && tail == dALU:
			fused = dFusedImmedALU
		case head == dImmed && tail == dALUImm:
			fused = dFusedImmedALUImm
		case head == dImmed && tail == dBcc:
			fused = dFusedImmedBcc
		case head == dImmed && tail == dBccImm:
			fused = dFusedImmedBccImm
		default:
			continue
		}
		d.code[i].kind = fused
		i++ // the tail cannot also head a fusion
	}
}

// execRun executes exactly n instructions of the straight-line run
// starting at pc and returns the pc after them. n must not exceed the
// run length at pc (callers clamp it to the activation budget). This is
// the interpreter's hottest loop, shared by the serial engine's runME
// and the parallel engine's shard-side activation runner: every
// instruction here costs one cycle and touches only the thread's
// register file, so callers batch the cycle/instruction accounting.
func execRun(code []dInstr, regs *[cg.NumRegs + 1]uint32, pc int, n int64) int {
	rem := n
	for rem > 0 {
		d := &code[pc]
		switch d.kind {
		case dNop:
			pc++
			rem--
		case dALU:
			regs[d.dst] = aluEval(d.alu, regs[d.srcA], regs[d.srcB])
			pc++
			rem--
		case dALUImm:
			regs[d.dst] = aluEval(d.alu, regs[d.srcA], d.imm)
			pc++
			rem--
		case dImmed:
			regs[d.dst] = d.imm
			pc++
			rem--
		case dFusedALUImmALUImm:
			regs[d.dst] = aluEval(d.alu, regs[d.srcA], d.imm)
			if rem == 1 { // budget split the pair; resume at the tail
				pc++
				rem = 0
				break
			}
			t := &code[pc+1]
			regs[t.dst] = aluEval(t.alu, regs[t.srcA], t.imm)
			pc += 2
			rem -= 2
		case dFusedImmedALU:
			regs[d.dst] = d.imm
			if rem == 1 {
				pc++
				rem = 0
				break
			}
			t := &code[pc+1]
			regs[t.dst] = aluEval(t.alu, regs[t.srcA], regs[t.srcB])
			pc += 2
			rem -= 2
		case dFusedImmedALUImm:
			regs[d.dst] = d.imm
			if rem == 1 {
				pc++
				rem = 0
				break
			}
			t := &code[pc+1]
			regs[t.dst] = aluEval(t.alu, regs[t.srcA], t.imm)
			pc += 2
			rem -= 2
		}
	}
	return pc
}

// computeRuns annotates every slot with the straight-line run length
// starting there. Fused simple slots contribute both halves; a fused
// branch head terminates its run like the branch it contains.
func computeRuns(d *dProg) {
	code := d.code
	for i := len(code) - 1; i >= 0; i-- {
		k := code[i].kind
		if k >= lastSimpleKind {
			continue // run stays 0
		}
		w := int32(1)
		if k == dFusedALUImmALUImm || k == dFusedImmedALU || k == dFusedImmedALUImm {
			w = 2
		}
		if next := i + int(w); next < len(code) {
			code[i].run = w + code[next].run
		} else {
			code[i].run = w
		}
	}
}
